lib/cells/sram6t.ml: Array Celltech Float Vstat_circuit Vstat_device Vstat_opt Vstat_util
