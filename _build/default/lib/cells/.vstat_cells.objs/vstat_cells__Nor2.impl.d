lib/cells/nor2.ml: Array Celltech Float Inverter Printf Vstat_circuit Vstat_device
