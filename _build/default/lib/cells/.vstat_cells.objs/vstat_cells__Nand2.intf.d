lib/cells/nand2.mli: Celltech Gates
