lib/cells/gates.mli: Celltech Vstat_circuit Vstat_device
