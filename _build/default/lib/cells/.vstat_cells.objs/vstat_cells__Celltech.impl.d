lib/cells/celltech.ml: Vstat_device
