lib/cells/inverter.mli: Celltech Gates
