lib/cells/gates.ml: Celltech Vstat_circuit Vstat_device
