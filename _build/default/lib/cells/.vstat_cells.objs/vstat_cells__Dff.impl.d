lib/cells/dff.ml: Array Celltech Gates Vstat_circuit Vstat_device Vstat_opt
