lib/cells/nand2.ml: Array Celltech Float Gates Inverter Printf Vstat_circuit
