lib/cells/nor2.mli: Celltech Vstat_device
