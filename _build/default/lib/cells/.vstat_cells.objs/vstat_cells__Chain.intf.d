lib/cells/chain.mli: Celltech Gates
