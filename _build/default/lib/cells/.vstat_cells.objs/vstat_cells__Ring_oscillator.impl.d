lib/cells/ring_oscillator.ml: Array Celltech Float Gates Int List Printf Vstat_circuit Vstat_device
