lib/cells/chain.ml: Array Celltech Float Gates Int Inverter Printf Vstat_circuit
