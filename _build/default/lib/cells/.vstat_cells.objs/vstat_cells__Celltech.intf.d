lib/cells/celltech.mli: Vstat_device
