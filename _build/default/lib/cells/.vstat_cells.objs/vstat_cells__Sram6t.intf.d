lib/cells/sram6t.mli: Celltech Vstat_device
