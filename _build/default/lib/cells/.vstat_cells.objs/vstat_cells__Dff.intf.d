lib/cells/dff.mli: Celltech Gates Vstat_device
