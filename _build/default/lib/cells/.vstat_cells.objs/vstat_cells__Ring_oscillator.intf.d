lib/cells/ring_oscillator.mli: Celltech Gates
