lib/cells/inverter.ml: Array Celltech Float Gates Printf Vstat_circuit
