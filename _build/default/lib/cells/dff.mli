(** Master–slave register built from NMOS-only pass transistors
    (paper Fig. 8(a)) with setup/hold characterization (Fig. 8(c)).

    The master is transparent while CLK is high and latches on the falling
    edge; the slave is transparent while CLK is low.  Setup/hold times are
    found by bisection on the data-edge arrival time — the indirect,
    simulation-hungry measurement the paper highlights as the use case where
    an ultra-compact model pays off most. *)

type sample = {
  vdd : float;
  inverters : Gates.inverter_devices array;  (** I1..I4 *)
  passes : Vstat_device.Device_model.t array;  (** M1..M4 (NMOS) *)
}

val sample :
  ?inv_wp_nm:float -> ?inv_wn_nm:float -> ?pass_w_nm:float ->
  Celltech.t -> sample
(** Draw one register instance.  Defaults follow the paper: inverters
    P/N = 600/300 nm, pass transistors 300 nm. *)

val capture_ok :
  ?t_clk:float -> ?settle:float -> sample -> t_d:float -> data_rising:bool ->
  bool
(** Simulate one capture attempt: the data edge (rising for setup tests,
    falling for hold tests) happens at [t_d]; CLK falls at [t_clk]
    (default 200 ps).  True when Q ends at the post-edge data value. *)

val setup_time : ?t_clk:float -> ?search:float -> sample -> float
(** Latest data-rise time that still captures, reported as the margin
    [t_clk - t_d] (s).  [search] bounds the bisection window (default
    150 ps before the clock edge). *)

val hold_time : ?t_clk:float -> ?search:float -> sample -> float
(** Earliest data-fall time (after a captured 1) that keeps Q high,
    reported as [t_d - t_clk] (s); negative values mean data may change
    before the clock edge. *)
