type t = {
  label : string;
  vdd : float;
  l_nm : float;
  nmos : w_nm:float -> Vstat_device.Device_model.t;
  pmos : w_nm:float -> Vstat_device.Device_model.t;
}

let nominal_bsim ?(vdd = Vstat_device.Cards.vdd_nominal) () =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  {
    label = "bsim-nominal";
    vdd;
    l_nm;
    nmos =
      (fun ~w_nm ->
        Vstat_device.Cards.bsim_device ~polarity:Vstat_device.Device_model.Nmos
          ~w_nm ~l_nm);
    pmos =
      (fun ~w_nm ->
        Vstat_device.Cards.bsim_device ~polarity:Vstat_device.Device_model.Pmos
          ~w_nm ~l_nm);
  }

let nominal_vs_seed ?(vdd = Vstat_device.Cards.vdd_nominal) () =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  {
    label = "vs-seed-nominal";
    vdd;
    l_nm;
    nmos =
      (fun ~w_nm ->
        Vstat_device.Cards.vs_seed_device
          ~polarity:Vstat_device.Device_model.Nmos ~w_nm ~l_nm);
    pmos =
      (fun ~w_nm ->
        Vstat_device.Cards.vs_seed_device
          ~polarity:Vstat_device.Device_model.Pmos ~w_nm ~l_nm);
  }

let with_vdd t vdd = { t with vdd }
