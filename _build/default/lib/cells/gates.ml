module N = Vstat_circuit.Netlist

type inverter_devices = {
  pmos : Vstat_device.Device_model.t;
  nmos : Vstat_device.Device_model.t;
}

type nand2_devices = {
  pmos_a : Vstat_device.Device_model.t;
  pmos_b : Vstat_device.Device_model.t;
  nmos_a : Vstat_device.Device_model.t;
  nmos_b : Vstat_device.Device_model.t;
}

let sample_inverter (tech : Celltech.t) ~wp_nm ~wn_nm =
  { pmos = tech.pmos ~w_nm:wp_nm; nmos = tech.nmos ~w_nm:wn_nm }

let sample_nand2 (tech : Celltech.t) ~wp_nm ~wn_nm =
  {
    pmos_a = tech.pmos ~w_nm:wp_nm;
    pmos_b = tech.pmos ~w_nm:wp_nm;
    nmos_a = tech.nmos ~w_nm:wn_nm;
    nmos_b = tech.nmos ~w_nm:wn_nm;
  }

let add_inverter net ~name ~devices ~input ~output ~vdd_node ~gnd =
  N.mosfet net (name ^ ".mp") ~d:output ~g:input ~s:vdd_node ~b:vdd_node
    ~dev:devices.pmos;
  N.mosfet net (name ^ ".mn") ~d:output ~g:input ~s:gnd ~b:gnd
    ~dev:devices.nmos

let add_nand2 net ~name ~devices ~input_a ~input_b ~output ~vdd_node ~gnd =
  let mid = N.node net (name ^ ".mid") in
  N.mosfet net (name ^ ".mpa") ~d:output ~g:input_a ~s:vdd_node ~b:vdd_node
    ~dev:devices.pmos_a;
  N.mosfet net (name ^ ".mpb") ~d:output ~g:input_b ~s:vdd_node ~b:vdd_node
    ~dev:devices.pmos_b;
  N.mosfet net (name ^ ".mna") ~d:output ~g:input_a ~s:mid ~b:gnd
    ~dev:devices.nmos_a;
  N.mosfet net (name ^ ".mnb") ~d:mid ~g:input_b ~s:gnd ~b:gnd
    ~dev:devices.nmos_b

let add_nmos_pass net ~name ~dev ~a ~b ~gate ~gnd =
  N.mosfet net name ~d:a ~g:gate ~s:b ~b:gnd ~dev
