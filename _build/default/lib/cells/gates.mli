(** Netlist fragments for static CMOS gates, built from explicit device
    instances (so statistical samples can be threaded through). *)

type inverter_devices = {
  pmos : Vstat_device.Device_model.t;
  nmos : Vstat_device.Device_model.t;
}

type nand2_devices = {
  pmos_a : Vstat_device.Device_model.t;
  pmos_b : Vstat_device.Device_model.t;
  nmos_a : Vstat_device.Device_model.t;  (** top of the series stack *)
  nmos_b : Vstat_device.Device_model.t;  (** bottom of the series stack *)
}

val sample_inverter : Celltech.t -> wp_nm:float -> wn_nm:float -> inverter_devices
(** Draw a fresh inverter's device pair from the technology. *)

val sample_nand2 : Celltech.t -> wp_nm:float -> wn_nm:float -> nand2_devices

val add_inverter :
  Vstat_circuit.Netlist.t ->
  name:string ->
  devices:inverter_devices ->
  input:Vstat_circuit.Netlist.node ->
  output:Vstat_circuit.Netlist.node ->
  vdd_node:Vstat_circuit.Netlist.node ->
  gnd:Vstat_circuit.Netlist.node ->
  unit

val add_nand2 :
  Vstat_circuit.Netlist.t ->
  name:string ->
  devices:nand2_devices ->
  input_a:Vstat_circuit.Netlist.node ->
  input_b:Vstat_circuit.Netlist.node ->
  output:Vstat_circuit.Netlist.node ->
  vdd_node:Vstat_circuit.Netlist.node ->
  gnd:Vstat_circuit.Netlist.node ->
  unit
(** Input A drives the NMOS nearest the output (worst-case switching input). *)

val add_nmos_pass :
  Vstat_circuit.Netlist.t ->
  name:string ->
  dev:Vstat_device.Device_model.t ->
  a:Vstat_circuit.Netlist.node ->
  b:Vstat_circuit.Netlist.node ->
  gate:Vstat_circuit.Netlist.node ->
  gnd:Vstat_circuit.Netlist.node ->
  unit
(** NMOS pass transistor between [a] and [b] (bulk to ground). *)
