(** Fanout-of-N NOR2 gate (series PMOS stack) — completes the paper's
    "standard library logic cells (INV, NAND2, ...)" set.

    Worst-case single-input switching: input A switches with B held low;
    A drives the PMOS nearest the output. *)

type sample = {
  vdd : float;
  driver : devices;
  dut : devices;
  loads : devices array;
}

and devices = {
  pmos_a : Vstat_device.Device_model.t;  (** top of the series stack *)
  pmos_b : Vstat_device.Device_model.t;
  nmos_a : Vstat_device.Device_model.t;
  nmos_b : Vstat_device.Device_model.t;
}

type result = { tphl : float; tplh : float; tpd : float; leakage : float }

val sample : Celltech.t -> wp_nm:float -> wn_nm:float -> fanout:int -> sample
(** NOR pull-ups stack in series, so [wp_nm] is typically ~2x an inverter's
    PMOS width. *)

val measure : ?window:float -> ?steps:int -> sample -> result
val measure_nominal :
  Celltech.t -> wp_nm:float -> wn_nm:float -> fanout:int -> result
