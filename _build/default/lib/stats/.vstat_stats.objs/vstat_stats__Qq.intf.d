lib/stats/qq.mli:
