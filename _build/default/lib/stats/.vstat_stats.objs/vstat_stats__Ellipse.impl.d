lib/stats/ellipse.ml: Array Descriptive Float Vstat_linalg Vstat_util
