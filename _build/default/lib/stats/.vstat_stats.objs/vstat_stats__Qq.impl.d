lib/stats/qq.ml: Array Descriptive Float Vstat_util
