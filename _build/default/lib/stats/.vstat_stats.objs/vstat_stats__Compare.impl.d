lib/stats/compare.ml: Array Descriptive Float Histogram Vstat_util
