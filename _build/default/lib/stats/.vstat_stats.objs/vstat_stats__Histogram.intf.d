lib/stats/histogram.mli:
