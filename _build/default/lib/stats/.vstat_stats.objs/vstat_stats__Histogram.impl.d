lib/stats/histogram.ml: Array Buffer Descriptive Float Int Vstat_util
