lib/stats/descriptive.mli:
