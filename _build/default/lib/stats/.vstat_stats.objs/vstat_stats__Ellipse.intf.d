lib/stats/ellipse.mli:
