lib/stats/compare.mli:
