let against_normal xs =
  let n = Array.length xs in
  if n < 3 then invalid_arg "Qq.against_normal: need >= 3 samples";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  Array.mapi
    (fun i y ->
      let p = (Float.of_int i +. 0.5) /. Float.of_int n in
      (Vstat_util.Special.normal_quantile p, y))
    sorted

let linearity_r2 xs =
  let series = against_normal xs in
  let qs = Array.map fst series and ys = Array.map snd series in
  let r = Descriptive.correlation qs ys in
  r *. r

let tail_deviation xs =
  let lo = Descriptive.quantile xs 0.00135 in
  let hi = Descriptive.quantile xs 0.99865 in
  let sigma = Descriptive.std xs in
  ((hi -. lo) /. (6.0 *. sigma)) -. 1.0
