(** Quantitative distribution comparisons.

    The paper's claim is that the statistical VS model produces "almost
    identical distributions" to the golden BSIM model.  These utilities turn
    that into numbers: two-sample Kolmogorov–Smirnov distance, relative
    moment differences, and overlap of kernel density estimates. *)

val ks_statistic : float array -> float array -> float
(** Two-sample Kolmogorov–Smirnov statistic D in [0, 1]
    (0 = identical empirical CDFs). *)

val ks_p_value : float array -> float array -> float
(** Asymptotic p-value for the two-sample KS test (Kolmogorov distribution
    series).  Large p = no evidence the distributions differ. *)

val relative_std_diff : float array -> float array -> float
(** |std a - std b| / std b — the paper's Table III comparison metric. *)

val relative_mean_diff : float array -> float array -> float

val density_overlap : ?points:int -> float array -> float array -> float
(** Integral of min(f, g) for the two KDE densities, in [0, 1]
    (1 = identical densities). *)
