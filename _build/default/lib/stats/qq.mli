(** Quantile–quantile analysis against the standard normal.

    Reproduces the paper's Fig. 7(d–f) and Fig. 9(f): the Q–Q series itself,
    plus scalar summaries of its curvature used as pass/fail checks on
    "non-Gaussianity grows as Vdd drops". *)

val against_normal : float array -> (float * float) array
(** [against_normal xs] pairs theoretical standard-normal quantiles (x) with
    sample order statistics (y), using the (i - 0.5)/n plotting positions. *)

val linearity_r2 : float array -> float
(** Squared correlation of the Q–Q series — 1.0 for a perfect Gaussian; the
    Shapiro–Francia W' statistic. *)

val tail_deviation : float array -> float
(** Relative deviation of the empirical 3-sigma span from the Gaussian
    prediction: (q(0.99865) - q(0.00135)) / (6 * std) - 1.  Near 0 for a
    Gaussian sample, positive for heavy upper tails. *)
