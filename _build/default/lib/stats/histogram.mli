(** Histograms and kernel density estimates.

    The paper's delay/SNM "probability density" figures are reproduced as
    density series: bin centers (or evaluation points) paired with estimated
    density values. *)

type t = {
  edges : float array;    (** n+1 bin edges, ascending *)
  counts : int array;     (** n bin occupation counts *)
  total : int;            (** number of samples binned *)
}

val build : ?bins:int -> float array -> t
(** [build xs] bins the samples into [bins] equal-width bins spanning
    [min xs, max xs].  Default bin count follows the Freedman–Diaconis rule
    clamped to [8, 128].  @raise Invalid_argument on empty input. *)

val density : t -> (float * float) array
(** Bin centers paired with normalized density (integrates to 1). *)

val kde : ?bandwidth:float -> ?points:int -> float array -> (float * float) array
(** Gaussian kernel density estimate evaluated on an even grid spanning the
    sample range extended by 3 bandwidths.  Default bandwidth is Silverman's
    rule of thumb; default 101 evaluation points. *)

val sparkline : ?width:int -> float array -> string
(** Unicode mini-plot of a density/series, for terminal output. *)
