(** Bivariate Gaussian confidence ellipses (paper Fig. 4).

    An ellipse is derived from the sample mean and covariance of paired
    observations; its axes are the covariance eigenvectors scaled by
    sqrt(eigenvalue * chi2_quantile). *)

type t = {
  center : float * float;
  axis_lengths : float * float;  (** semi-axes, major first *)
  angle : float;                 (** major-axis angle w.r.t. +x, radians *)
  confidence : float;            (** coverage probability, e.g. 0.393 for 1σ *)
}

val of_samples : confidence:float -> float array -> float array -> t
(** Fit the [confidence]-coverage ellipse to paired samples.
    @raise Invalid_argument on mismatched or short input. *)

val of_sigma_level : n_sigma:int -> float array -> float array -> t
(** The paper's "1σ, 2σ, 3σ" ellipses: Mahalanobis radius equal to
    [n_sigma], i.e. coverage 1 - exp(-k²/2) in 2D. *)

val points : t -> n:int -> (float * float) array
(** [n] points around the ellipse boundary, for plotting/export. *)

val contains : t -> float * float -> bool
(** Whether a point lies inside the ellipse. *)

val coverage : t -> float array -> float array -> float
(** Fraction of the paired samples falling inside the ellipse — the empirical
    check that the ellipse matches its nominal coverage. *)
