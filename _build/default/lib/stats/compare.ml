let ks_statistic a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then invalid_arg "Compare.ks_statistic: empty sample";
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort Float.compare sa;
  Array.sort Float.compare sb;
  let d = ref 0.0 in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = Float.min sa.(!i) sb.(!j) in
    while !i < na && sa.(!i) <= x do incr i done;
    while !j < nb && sb.(!j) <= x do incr j done;
    let fa = Float.of_int !i /. Float.of_int na in
    let fb = Float.of_int !j /. Float.of_int nb in
    d := Float.max !d (Float.abs (fa -. fb))
  done;
  !d

let ks_p_value a b =
  let d = ks_statistic a b in
  let na = Float.of_int (Array.length a) and nb = Float.of_int (Array.length b) in
  let ne = na *. nb /. (na +. nb) in
  let lambda = (sqrt ne +. 0.12 +. (0.11 /. sqrt ne)) *. d in
  (* Kolmogorov distribution tail series. *)
  let acc = ref 0.0 in
  for k = 1 to 100 do
    let k = Float.of_int k in
    let term =
      ((-1.0) ** (k -. 1.0)) *. exp (-2.0 *. k *. k *. lambda *. lambda)
    in
    acc := !acc +. term
  done;
  Vstat_util.Floatx.clamp ~lo:0.0 ~hi:1.0 (2.0 *. !acc)

let relative_std_diff a b =
  Float.abs (Descriptive.std a -. Descriptive.std b) /. Descriptive.std b

let relative_mean_diff a b =
  Float.abs (Descriptive.mean a -. Descriptive.mean b)
  /. Float.abs (Descriptive.mean b)

let density_overlap ?(points = 201) a b =
  let lo = Float.min (fst (Descriptive.min_max a)) (fst (Descriptive.min_max b)) in
  let hi = Float.max (snd (Descriptive.min_max a)) (snd (Descriptive.min_max b)) in
  let span = if hi > lo then hi -. lo else 1.0 in
  let lo = lo -. (0.05 *. span) and hi = hi +. (0.05 *. span) in
  let grid = Vstat_util.Floatx.linspace lo hi points in
  let kde xs =
    let series = Histogram.kde ~points xs in
    let gx = Array.map fst series and gy = Array.map snd series in
    Array.map (fun x -> Vstat_util.Floatx.interp_linear ~xs:gx ~ys:gy x) grid
  in
  let fa = kde a and fb = kde b in
  let dx = (hi -. lo) /. Float.of_int (points - 1) in
  let acc = ref 0.0 in
  for i = 0 to points - 1 do
    acc := !acc +. (Float.min (Float.max fa.(i) 0.0) (Float.max fb.(i) 0.0) *. dx)
  done;
  Float.min 1.0 !acc
