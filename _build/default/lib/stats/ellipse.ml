type t = {
  center : float * float;
  axis_lengths : float * float;
  angle : float;
  confidence : float;
}

let fit ~radius2 ~confidence xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Ellipse: length mismatch";
  if Array.length xs < 3 then invalid_arg "Ellipse: need >= 3 samples";
  let cxx = Descriptive.variance xs in
  let cyy = Descriptive.variance ys in
  let cxy = Descriptive.covariance xs ys in
  let cov = Vstat_linalg.Matrix.of_rows [| [| cxx; cxy |]; [| cxy; cyy |] |] in
  let { Vstat_linalg.Eigen_sym.values; vectors } =
    Vstat_linalg.Eigen_sym.decompose cov
  in
  let major = sqrt (Float.max values.(0) 0.0 *. radius2) in
  let minor = sqrt (Float.max values.(1) 0.0 *. radius2) in
  let vx = Vstat_linalg.Matrix.get vectors 0 0 in
  let vy = Vstat_linalg.Matrix.get vectors 1 0 in
  {
    center = (Descriptive.mean xs, Descriptive.mean ys);
    axis_lengths = (major, minor);
    angle = Float.atan2 vy vx;
    confidence;
  }

let of_samples ~confidence xs ys =
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Ellipse.of_samples: confidence in (0, 1)";
  let radius2 = Vstat_util.Special.chi2_quantile ~p:confidence ~dof:2 in
  fit ~radius2 ~confidence xs ys

let of_sigma_level ~n_sigma xs ys =
  if n_sigma < 1 then invalid_arg "Ellipse.of_sigma_level: n_sigma >= 1";
  let k = Float.of_int n_sigma in
  let radius2 = k *. k in
  let confidence = 1.0 -. exp (-.radius2 /. 2.0) in
  fit ~radius2 ~confidence xs ys

let points t ~n =
  let cx, cy = t.center in
  let a, b = t.axis_lengths in
  let ca = cos t.angle and sa = sin t.angle in
  Array.init n (fun i ->
      let theta = 2.0 *. Float.pi *. Float.of_int i /. Float.of_int n in
      let ex = a *. cos theta and ey = b *. sin theta in
      (cx +. (ca *. ex) -. (sa *. ey), cy +. (sa *. ex) +. (ca *. ey)))

let contains t (x, y) =
  let cx, cy = t.center in
  let a, b = t.axis_lengths in
  let ca = cos t.angle and sa = sin t.angle in
  let dx = x -. cx and dy = y -. cy in
  (* Rotate into the ellipse frame. *)
  let u = (ca *. dx) +. (sa *. dy) in
  let v = (-.sa *. dx) +. (ca *. dy) in
  if a <= 0.0 || b <= 0.0 then false
  else ((u /. a) ** 2.0) +. ((v /. b) ** 2.0) <= 1.0

let coverage t xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Ellipse.coverage: length mismatch";
  let inside = ref 0 in
  Array.iteri
    (fun i x -> if contains t (x, ys.(i)) then incr inside)
    xs;
  Float.of_int !inside /. Float.of_int (Array.length xs)
