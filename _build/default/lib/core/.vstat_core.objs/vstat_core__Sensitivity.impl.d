lib/core/sensitivity.ml: Float List Vs_statistical Vstat_device
