lib/core/bpv.ml: Array Float List Mc_device Sensitivity Variation Vstat_linalg Vstat_stats
