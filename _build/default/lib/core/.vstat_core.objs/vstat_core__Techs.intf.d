lib/core/techs.mli: Pipeline Vstat_cells Vstat_util
