lib/core/inter_die.ml: Float Pipeline Vs_statistical Vstat_cells Vstat_device Vstat_stats Vstat_util
