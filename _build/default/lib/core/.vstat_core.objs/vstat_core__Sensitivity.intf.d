lib/core/sensitivity.mli: Vs_statistical Vstat_device
