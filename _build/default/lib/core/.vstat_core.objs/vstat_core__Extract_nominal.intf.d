lib/core/extract_nominal.mli: Vstat_device
