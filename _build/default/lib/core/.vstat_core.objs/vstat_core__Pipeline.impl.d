lib/core/pipeline.ml: Bpv Bsim_statistical Extract_nominal List Logs Variation Vs_statistical Vstat_device Vstat_util
