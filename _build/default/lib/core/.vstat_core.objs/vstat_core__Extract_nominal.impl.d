lib/core/extract_nominal.ml: Array Float List Vstat_device Vstat_opt Vstat_util
