lib/core/mc_device.ml: Array Bsim_statistical Vs_statistical Vstat_device
