lib/core/bsim_statistical.ml: Float Variation Vstat_device Vstat_util
