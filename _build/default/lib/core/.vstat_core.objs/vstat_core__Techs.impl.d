lib/core/techs.ml: Bsim_statistical Pipeline Vs_statistical Vstat_cells Vstat_device
