lib/core/inter_die.mli: Pipeline Vstat_cells Vstat_device Vstat_util
