lib/core/vs_statistical.mli: Variation Vstat_device Vstat_util
