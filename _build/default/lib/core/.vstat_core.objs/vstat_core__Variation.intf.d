lib/core/variation.mli:
