lib/core/variation.ml:
