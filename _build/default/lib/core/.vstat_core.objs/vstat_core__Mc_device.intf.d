lib/core/mc_device.mli: Bsim_statistical Vs_statistical Vstat_device Vstat_util
