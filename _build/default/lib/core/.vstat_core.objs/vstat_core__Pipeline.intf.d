lib/core/pipeline.mli: Bpv Bsim_statistical Extract_nominal Vs_statistical
