lib/core/bpv.mli: Bsim_statistical Sensitivity Variation Vs_statistical Vstat_util
