lib/core/bsim_statistical.mli: Variation Vstat_device Vstat_util
