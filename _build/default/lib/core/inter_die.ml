type die_shift = { g_dvt0 : float; g_dl_nm : float; g_dmu_rel : float }

type t = { sigma_vt0 : float; sigma_l_nm : float; sigma_mu_rel : float }

let default_40nm = { sigma_vt0 = 0.015; sigma_l_nm = 1.0; sigma_mu_rel = 0.02 }

let draw t rng =
  let gauss sigma = Vstat_util.Rng.gaussian_scaled rng ~mean:0.0 ~sigma in
  {
    g_dvt0 = gauss t.sigma_vt0;
    g_dl_nm = gauss t.sigma_l_nm;
    g_dmu_rel = gauss t.sigma_mu_rel;
  }

let apply_vs die (p : Vstat_device.Vs_model.params) =
  let dmu = die.g_dmu_rel *. p.mu /. 1e-4 in
  Vs_statistical.apply_shifts p
    {
      Vs_statistical.dvt0 = die.g_dvt0;
      dl_nm = die.g_dl_nm;
      dw_nm = 0.0;
      dmu;
      dcinv = 0.0;
    }

let die_tech (pl : Pipeline.t) ~die ~rng ~vdd =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  let sample (model : Vs_statistical.t) ~w_nm =
    (* Global shift first, then independent local mismatch on top. *)
    let shifted = apply_vs die (model.nominal ~w_nm ~l_nm) in
    let local = Vs_statistical.draw_shifts model rng ~w_nm ~l_nm in
    Vstat_device.Vs_model.device ~name:model.label ~polarity:model.polarity
      (Vs_statistical.apply_shifts shifted local)
  in
  {
    Vstat_cells.Celltech.label = "vs-statistical+inter-die";
    vdd;
    l_nm;
    nmos = (fun ~w_nm -> sample pl.vs_nmos ~w_nm);
    pmos = (fun ~w_nm -> sample pl.vs_pmos ~w_nm);
  }

let decompose_variance ~total ~within =
  let vt = Vstat_stats.Descriptive.variance total in
  let vw = Vstat_stats.Descriptive.variance within in
  sqrt (Float.max 0.0 (vt -. vw))
