module Vs = Vstat_device.Vs_model

type t = {
  label : string;
  polarity : Vstat_device.Device_model.polarity;
  alphas : Variation.alphas;
  nominal : w_nm:float -> l_nm:float -> Vs.params;
}

type shifts = {
  dvt0 : float;
  dl_nm : float;
  dw_nm : float;
  dmu : float;
  dcinv : float;
}

let zero_shifts = { dvt0 = 0.0; dl_nm = 0.0; dw_nm = 0.0; dmu = 0.0; dcinv = 0.0 }

let apply_shifts ?(slave_vxo = true) (p : Vs.params) s =
  let l' = Float.max (p.l +. Vstat_device.Cards.nm s.dl_nm) 1e-9 in
  let w' = Float.max (p.w +. Vstat_device.Cards.nm s.dw_nm) 1e-9 in
  let mu' =
    Float.max (p.mu +. Vstat_device.Cards.cm2_per_vs s.dmu) (0.05 *. p.mu)
  in
  let cinv' =
    Float.max
      (p.cinv +. Vstat_device.Cards.uf_per_cm2 s.dcinv)
      (0.5 *. p.cinv)
  in
  (* vxo is slaved to the mobility and DIBL shifts (paper eq. (5)). *)
  let ddelta = Vs.delta_of_length p.dibl l' -. Vs.delta_of_length p.dibl p.l in
  let dmu_rel = (mu' -. p.mu) /. p.mu in
  let vxo_shift =
    if slave_vxo then
      Variation.vxo_relative_shift ~ballistic_b:p.ballistic_b ~dmu_rel ~ddelta
    else 0.0
  in
  let vxo' = Float.max (p.vxo *. (1.0 +. vxo_shift)) (0.05 *. p.vxo) in
  {
    p with
    Vs.vt0 = p.vt0 +. s.dvt0;
    l = l';
    w = w';
    mu = mu';
    cinv = cinv';
    vxo = vxo';
  }

let draw_shifts t rng ~w_nm ~l_nm =
  let s = Variation.sigmas_of_alphas t.alphas ~w_nm ~l_nm in
  let gauss sigma = Vstat_util.Rng.gaussian_scaled rng ~mean:0.0 ~sigma in
  {
    dvt0 = gauss s.s_vt0;
    dl_nm = gauss s.s_l;
    dw_nm = gauss s.s_w;
    dmu = gauss s.s_mu;
    dcinv = gauss s.s_cinv;
  }

let sample_params t rng ~w_nm ~l_nm =
  apply_shifts (t.nominal ~w_nm ~l_nm) (draw_shifts t rng ~w_nm ~l_nm)

let sample_device t rng ~w_nm ~l_nm =
  Vs.device ~name:t.label ~polarity:t.polarity
    (sample_params t rng ~w_nm ~l_nm)

let nominal_device t ~w_nm ~l_nm =
  Vs.device ~name:t.label ~polarity:t.polarity (t.nominal ~w_nm ~l_nm)

let seed_nmos =
  {
    label = "vs-seed-nmos";
    polarity = Vstat_device.Device_model.Nmos;
    alphas = Variation.paper_alphas_nmos;
    nominal = (fun ~w_nm ~l_nm -> Vstat_device.Cards.vs_seed_nmos ~w_nm ~l_nm);
  }

let seed_pmos =
  {
    label = "vs-seed-pmos";
    polarity = Vstat_device.Device_model.Pmos;
    alphas = Variation.paper_alphas_pmos;
    nominal = (fun ~w_nm ~l_nm -> Vstat_device.Cards.vs_seed_pmos ~w_nm ~l_nm);
  }
