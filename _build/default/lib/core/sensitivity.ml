type metric = Idsat | Log10_ioff | Cgg

let all_metrics = [ Idsat; Log10_ioff; Cgg ]

let metric_name = function
  | Idsat -> "Idsat"
  | Log10_ioff -> "log10(Ioff)"
  | Cgg -> "Cgg@Vdd"

let metric_value dev ~vdd = function
  | Idsat -> Vstat_device.Metrics.idsat dev ~vdd
  | Log10_ioff -> Vstat_device.Metrics.log10_ioff dev ~vdd
  | Cgg -> Vstat_device.Metrics.cgg dev ~vdd

type parameter = [ `Vt0 | `L | `W | `Mu | `Cinv ]

let all_parameters = ([ `Vt0; `L; `W; `Mu; `Cinv ] : parameter list)

let parameter_name = function
  | `Vt0 -> "VT0"
  | `L -> "Leff"
  | `W -> "Weff"
  | `Mu -> "mu"
  | `Cinv -> "Cinv"

(* Steps chosen to sit well inside the linear-response region while staying
   far above float noise: ~1 sigma of a mid-size device. *)
let step (t : Vs_statistical.t) ~w_nm ~l_nm = function
  | `Vt0 -> 2e-3
  | `L -> Float.max 0.2 (0.005 *. l_nm)
  | `W -> Float.max 0.5 (0.005 *. w_nm)
  | `Mu ->
    let p = t.Vs_statistical.nominal ~w_nm ~l_nm in
    0.01 *. p.Vstat_device.Vs_model.mu /. 1e-4
  | `Cinv ->
    let p = t.Vs_statistical.nominal ~w_nm ~l_nm in
    0.005 *. p.Vstat_device.Vs_model.cinv /. 1e-2

let shifts_of_parameter param h =
  let z = Vs_statistical.zero_shifts in
  match param with
  | `Vt0 -> { z with Vs_statistical.dvt0 = h }
  | `L -> { z with Vs_statistical.dl_nm = h }
  | `W -> { z with Vs_statistical.dw_nm = h }
  | `Mu -> { z with Vs_statistical.dmu = h }
  | `Cinv -> { z with Vs_statistical.dcinv = h }

let vs_derivative (t : Vs_statistical.t) ~w_nm ~l_nm ~vdd metric param =
  let nominal = t.nominal ~w_nm ~l_nm in
  let h = step t ~w_nm ~l_nm param in
  let eval h =
    let p = Vs_statistical.apply_shifts nominal (shifts_of_parameter param h) in
    let dev = Vstat_device.Vs_model.device ~polarity:t.polarity p in
    metric_value dev ~vdd metric
  in
  (eval h -. eval (-.h)) /. (2.0 *. h)

let vs_jacobian t ~w_nm ~l_nm ~vdd =
  List.map
    (fun m ->
      ( m,
        List.map
          (fun p -> (p, vs_derivative t ~w_nm ~l_nm ~vdd m p))
          all_parameters ))
    all_metrics
