(** Variation-source taxonomy and Pelgrom geometry scaling
    (paper Table I and eq. (8)).

    The five independent statistical parameters and their physical origins:

    - [VT0]  <- random dopant fluctuation (RDF)
    - [Leff] <- line-edge roughness (LER)
    - [Weff] <- line-edge roughness (LER)
    - [mu]   <- local mechanical-stress fluctuation
    - [Cinv] <- oxide-thickness fluctuation (OTF)

    Standard deviations follow the area law sigma_p / p ∝ 1 / sqrt(W L),
    expressed through the alpha coefficients with the paper's
    geometry-specific forms:

    {v
      sigma_VT0  = alpha1 / sqrt(W L)        (V;  alpha1 in V.nm)
      sigma_Leff = alpha2 . sqrt(L / W)      (nm; alpha2 in nm)
      sigma_Weff = alpha3 . sqrt(W / L)      (nm; alpha3 in nm)
      sigma_mu   = alpha4 / sqrt(W L)        (cm^2/Vs; alpha4 in nm.cm^2/Vs)
      sigma_Cinv = alpha5 / sqrt(W L)        (uF/cm^2; alpha5 in nm.uF/cm^2)
    v}

    with W and L in nanometers.  Note alpha2 = alpha3 implies
    sigma_L / sigma_W = L / W, the paper's LER tie. *)

type source = Rdf | Ler | Otf | Stress
(** Physical origin labels (Table I). *)

val source_of_parameter : [ `Vt0 | `Leff | `Weff | `Mu | `Cinv ] -> source

type alphas = {
  a_vt0 : float;   (** alpha1, V.nm *)
  a_l : float;     (** alpha2, nm *)
  a_w : float;     (** alpha3, nm *)
  a_mu : float;    (** alpha4, nm.cm^2/(V.s) *)
  a_cinv : float;  (** alpha5, nm.uF/cm^2 *)
}

type sigmas = {
  s_vt0 : float;   (** V *)
  s_l : float;     (** nm *)
  s_w : float;     (** nm *)
  s_mu : float;    (** cm^2/(V.s) *)
  s_cinv : float;  (** uF/cm^2 *)
}

val sigmas_of_alphas : alphas -> w_nm:float -> l_nm:float -> sigmas
(** Evaluate the Pelgrom forms at a geometry. *)

val vxo_mu_exponent : float
(** alpha ~ 0.5: power-law index relating vxo to mobility (paper eq. (5)). *)

val vxo_gamma : float
(** gamma ~ 0.45: second power-law index of eq. (5). *)

val vxo_delta_sensitivity : float
(** d(vxo)/(vxo d(delta)) ~ 2 for the targeted technology (paper Sec. II-B). *)

val vxo_relative_shift :
  ballistic_b:float -> dmu_rel:float -> ddelta:float -> float
(** Paper eq. (5): the relative virtual-source-velocity shift induced by a
    relative mobility shift [dmu_rel] and an absolute DIBL shift [ddelta]:
    [(alpha + (1-B)(1-alpha+gamma)) . dmu_rel + 2 . ddelta]. *)

val ballistic_efficiency : lambda_mfp:float -> l_critical:float -> float
(** Paper eq. (6): B = lambda / (lambda + 2 l). *)

val paper_alphas_nmos : alphas
(** Table II NMOS column — used as the golden model's ground truth. *)

val paper_alphas_pmos : alphas
(** Table II PMOS column. *)
