(** Finite-difference sensitivities of the BPV observables with respect to
    the VS statistical parameters — the entries of the paper's eq. (10)
    sensitivity matrix ("calculated from SPICE simulation using VS model").

    Derivatives are taken in the customary units of {!Variation}
    (V, nm, nm, cm^2/Vs, uF/cm^2) so that products with Pelgrom sigmas give
    metric standard deviations directly. *)

type metric = Idsat | Log10_ioff | Cgg

val all_metrics : metric list
val metric_name : metric -> string

val metric_value : Vstat_device.Device_model.t -> vdd:float -> metric -> float

type parameter = [ `Vt0 | `L | `W | `Mu | `Cinv ]

val all_parameters : parameter list
val parameter_name : parameter -> string

val vs_derivative :
  Vs_statistical.t ->
  w_nm:float -> l_nm:float -> vdd:float ->
  metric -> parameter ->
  float
(** Central finite difference of the metric through
    {!Vs_statistical.apply_shifts}, so shifting [`L] carries the DIBL and
    vxo couplings exactly as Monte Carlo sampling does. *)

val vs_jacobian :
  Vs_statistical.t ->
  w_nm:float -> l_nm:float -> vdd:float ->
  (metric * (parameter * float) list) list
(** All derivatives at one geometry, metric-major. *)
