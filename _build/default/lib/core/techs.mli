(** Bridge between statistical device models and the benchmark cells:
    {!Vstat_cells.Celltech.t} handles whose every device request draws a
    fresh mismatch sample (or returns the nominal card). *)

val stochastic_vs :
  Pipeline.t -> rng:Vstat_util.Rng.t -> vdd:float -> Vstat_cells.Celltech.t
(** Statistical VS technology: each [nmos]/[pmos] call is an independent
    Monte Carlo draw from the extracted statistical VS model. *)

val stochastic_bsim :
  Pipeline.t -> rng:Vstat_util.Rng.t -> vdd:float -> Vstat_cells.Celltech.t
(** Statistical golden technology (the reference in every figure). *)

val nominal_vs : Pipeline.t -> vdd:float -> Vstat_cells.Celltech.t
val nominal_bsim : Pipeline.t -> vdd:float -> Vstat_cells.Celltech.t
