type source = Rdf | Ler | Otf | Stress

let source_of_parameter = function
  | `Vt0 -> Rdf
  | `Leff | `Weff -> Ler
  | `Cinv -> Otf
  | `Mu -> Stress

type alphas = {
  a_vt0 : float;
  a_l : float;
  a_w : float;
  a_mu : float;
  a_cinv : float;
}

type sigmas = {
  s_vt0 : float;
  s_l : float;
  s_w : float;
  s_mu : float;
  s_cinv : float;
}

let sigmas_of_alphas a ~w_nm ~l_nm =
  if w_nm <= 0.0 || l_nm <= 0.0 then
    invalid_arg "Variation.sigmas_of_alphas: geometry must be positive";
  let sqrt_wl = sqrt (w_nm *. l_nm) in
  {
    s_vt0 = a.a_vt0 /. sqrt_wl;
    s_l = a.a_l *. sqrt (l_nm /. w_nm);
    s_w = a.a_w *. sqrt (w_nm /. l_nm);
    s_mu = a.a_mu /. sqrt_wl;
    s_cinv = a.a_cinv /. sqrt_wl;
  }

let vxo_mu_exponent = 0.5
let vxo_gamma = 0.45
let vxo_delta_sensitivity = 2.0

let vxo_relative_shift ~ballistic_b ~dmu_rel ~ddelta =
  let coeff =
    vxo_mu_exponent
    +. ((1.0 -. ballistic_b) *. (1.0 -. vxo_mu_exponent +. vxo_gamma))
  in
  (coeff *. dmu_rel) +. (vxo_delta_sensitivity *. ddelta)

let ballistic_efficiency ~lambda_mfp ~l_critical =
  lambda_mfp /. (lambda_mfp +. (2.0 *. l_critical))

let paper_alphas_nmos =
  { a_vt0 = 2.3; a_l = 3.71; a_w = 3.71; a_mu = 944.0; a_cinv = 0.29 }

let paper_alphas_pmos =
  { a_vt0 = 2.86; a_l = 3.66; a_w = 3.66; a_mu = 781.0; a_cinv = 0.81 }
