(** The statistical Virtual Source model — the paper's contribution.

    A nominal VS card (typically produced by {!Extract_nominal}) is combined
    with the five extracted alpha coefficients.  Sampling draws independent
    Gaussian shifts for (VT0, Leff, Weff, mu, Cinv) with Pelgrom scaling and
    then applies the model's internal couplings:

    - DIBL is re-evaluated at the sampled Leff (paper eq. (4));
    - vxo is *not* an independent statistical parameter: it is slaved to the
      sampled mobility and DIBL shifts through eq. (5), preserving the
      independence of the p_j set required by the BPV assumption. *)

type t = {
  label : string;
  polarity : Vstat_device.Device_model.polarity;
  alphas : Variation.alphas;
  nominal : w_nm:float -> l_nm:float -> Vstat_device.Vs_model.params;
}

type shifts = {
  dvt0 : float;    (** V *)
  dl_nm : float;   (** nm *)
  dw_nm : float;   (** nm *)
  dmu : float;     (** cm^2/(V.s) *)
  dcinv : float;   (** uF/cm^2 *)
}

val zero_shifts : shifts

val apply_shifts :
  ?slave_vxo:bool ->
  Vstat_device.Vs_model.params -> shifts -> Vstat_device.Vs_model.params
(** Deterministically perturb a card: shifts in the customary units of
    {!Variation}, DIBL recomputed at the new Leff, vxo slaved via eq. (5).
    Used by both Monte Carlo sampling and finite-difference sensitivities so
    the two always agree on the meaning of a parameter shift.
    [slave_vxo] (default true) is the paper's treatment; pass false for the
    ablation where vxo ignores the mobility/DIBL couplings. *)

val draw_shifts : t -> Vstat_util.Rng.t -> w_nm:float -> l_nm:float -> shifts
(** Independent Gaussian shifts at this geometry's Pelgrom sigmas. *)

val sample_params :
  t -> Vstat_util.Rng.t -> w_nm:float -> l_nm:float ->
  Vstat_device.Vs_model.params

val sample_device :
  t -> Vstat_util.Rng.t -> w_nm:float -> l_nm:float ->
  Vstat_device.Device_model.t

val nominal_device :
  t -> w_nm:float -> l_nm:float -> Vstat_device.Device_model.t

val seed_nmos : t
(** Statistical model over the hand-written seed card with the paper's
    Table II alphas — useful before extraction has run (tests, examples). *)

val seed_pmos : t
