type samples = {
  idsat : float array;
  log10_ioff : float array;
  cgg : float array;
}

let run ~sampler ~rng ~n ~vdd =
  if n < 1 then invalid_arg "Mc_device.run: n >= 1";
  let idsat = Array.make n 0.0 in
  let log10_ioff = Array.make n 0.0 in
  let cgg = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let dev = sampler rng in
    idsat.(i) <- Vstat_device.Metrics.idsat dev ~vdd;
    log10_ioff.(i) <- Vstat_device.Metrics.log10_ioff dev ~vdd;
    cgg.(i) <- Vstat_device.Metrics.cgg dev ~vdd
  done;
  { idsat; log10_ioff; cgg }

let of_vs t ~rng ~n ~w_nm ~l_nm ~vdd =
  run ~sampler:(fun rng -> Vs_statistical.sample_device t rng ~w_nm ~l_nm)
    ~rng ~n ~vdd

let of_bsim t ~rng ~n ~w_nm ~l_nm ~vdd =
  run ~sampler:(fun rng -> Bsim_statistical.sample_device t rng ~w_nm ~l_nm)
    ~rng ~n ~vdd
