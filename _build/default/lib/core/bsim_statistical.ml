type t = {
  label : string;
  polarity : Vstat_device.Device_model.polarity;
  alphas : Variation.alphas;
  nominal : w_nm:float -> l_nm:float -> Vstat_device.Bsim4lite.params;
}

let golden_nmos =
  {
    label = "bsim-golden-nmos";
    polarity = Vstat_device.Device_model.Nmos;
    alphas = Variation.paper_alphas_nmos;
    nominal = (fun ~w_nm ~l_nm -> Vstat_device.Cards.bsim_nmos ~w_nm ~l_nm);
  }

let golden_pmos =
  {
    label = "bsim-golden-pmos";
    polarity = Vstat_device.Device_model.Pmos;
    alphas = Variation.paper_alphas_pmos;
    nominal = (fun ~w_nm ~l_nm -> Vstat_device.Cards.bsim_pmos ~w_nm ~l_nm);
  }

let sample_params t rng ~w_nm ~l_nm =
  let s = Variation.sigmas_of_alphas t.alphas ~w_nm ~l_nm in
  let p = t.nominal ~w_nm ~l_nm in
  let gauss sigma = Vstat_util.Rng.gaussian_scaled rng ~mean:0.0 ~sigma in
  let dvt0 = gauss s.s_vt0 in
  let dl = Vstat_device.Cards.nm (gauss s.s_l) in
  let dw = Vstat_device.Cards.nm (gauss s.s_w) in
  let dmu = Vstat_device.Cards.cm2_per_vs (gauss s.s_mu) in
  let dcox = Vstat_device.Cards.uf_per_cm2 (gauss s.s_cinv) in
  {
    p with
    Vstat_device.Bsim4lite.vth0 = p.Vstat_device.Bsim4lite.vth0 +. dvt0;
    l = Float.max (p.l +. dl) 1e-9;
    w = Float.max (p.w +. dw) 1e-9;
    u0 = Float.max (p.u0 +. dmu) (0.05 *. p.u0);
    cox = Float.max (p.cox +. dcox) (0.5 *. p.cox);
  }

let sample_device t rng ~w_nm ~l_nm =
  Vstat_device.Bsim4lite.device ~name:t.label ~polarity:t.polarity
    (sample_params t rng ~w_nm ~l_nm)

let nominal_device t ~w_nm ~l_nm =
  Vstat_device.Bsim4lite.device ~name:t.label ~polarity:t.polarity
    (t.nominal ~w_nm ~l_nm)
