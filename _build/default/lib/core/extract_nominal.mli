(** Nominal VS parameter extraction: fit the VS model's I–V surface to the
    golden model's data (paper Fig. 1 — "VS model fitting for NMOS with data
    from a 40-nm BSIM4 industrial design kit").

    The fit runs Nelder–Mead on six free parameters (VT0, delta0, n0, vxo,
    mu, beta) against a mixed dataset: log-current transfer curves at low
    and high Vds (weights the subthreshold region) plus relative-error
    output curves at several gate voltages.  Cinv is taken directly from the
    golden card (the same "measured through oxide thickness" shortcut the
    paper uses for its statistics). *)

type dataset = {
  transfer : (float * float * float) array;
      (** (vgs, vds, id) points fitted in log space *)
  output : (float * float * float) array;
      (** (vgs, vds, id) points fitted in relative linear space *)
  cv : (float * float) array;
      (** (vgs, Cgg at Vds = 0) points — the C–V part of the fit; without
          it, vt0 can trade against vxo leaving the charge wrong *)
  gm : (float * float) array;
      (** (vgs, gm at Vds = Vdd) points: transconductance fidelity controls
          how the extracted statistics transfer to circuit timing *)
}

val golden_dataset :
  Vstat_device.Device_model.t -> vdd:float -> dataset
(** Sample the golden device: Id–Vg at Vds = 50 mV and Vdd (21 points each)
    and Id–Vd at four gate voltages (13 points each). *)

type result = {
  fitted : Vstat_device.Vs_model.params;     (** at the fit geometry *)
  params_of : w_nm:float -> l_nm:float -> Vstat_device.Vs_model.params;
      (** the same extracted card retargeted to any geometry *)
  rms_log_error : float;   (** RMS decades over the transfer set *)
  rms_rel_error : float;   (** RMS relative error over the output set *)
  iterations : int;
}

val default_fit_geometries : (float * float) list
(** (W, L) in nm.  Besides the primary 300/40 device, a narrow (120/40) and
    a long-channel (600/80) device pin the geometry dependence (DIBL length
    scale) that BPV's cross-geometry system relies on. *)

val fit :
  ?w_nm:float -> ?l_nm:float -> ?max_iter:int ->
  ?geometries:(float * float) list ->
  polarity:Vstat_device.Device_model.polarity ->
  unit ->
  result
(** Fit the VS model to the golden devices over [geometries] (default:
    the primary W/L = 300/40 nm of the paper's Fig. 1 plus
    {!default_fit_geometries}); errors are reported at the primary
    geometry. *)

val objective :
  polarity:Vstat_device.Device_model.polarity ->
  dataset ->
  Vstat_device.Vs_model.params ->
  float
(** The scalar misfit minimized by {!fit} (exposed for tests/benches). *)
