(** Inter-die (global) variation on top of within-die mismatch.

    The paper focuses on within-die variation but notes (eq. (1)) that the
    same BPV machinery applies across dies, with the inter-die component
    recovered by variance subtraction:

    {v sigma^2_inter-die = sigma^2_total - sigma^2_within-die v}

    This module models a die as one *shared* parameter shift applied to
    every device, composed with independent per-device mismatch, and
    provides the variance-decomposition helper. *)

type die_shift = {
  g_dvt0 : float;   (** V, applied to every device on the die *)
  g_dl_nm : float;
  g_dmu_rel : float;  (** relative mobility shift *)
}

type t = {
  sigma_vt0 : float;     (** inter-die sigma of VT0, V *)
  sigma_l_nm : float;    (** inter-die sigma of Leff, nm *)
  sigma_mu_rel : float;  (** inter-die relative mobility sigma *)
}

val default_40nm : t
(** A plausible global corner spread for the synthetic node
    (sigma_VT0 = 15 mV, sigma_L = 1 nm, sigma_mu = 2 %). *)

val draw : t -> Vstat_util.Rng.t -> die_shift
(** One die's global shift (independent Gaussians). *)

val apply_vs :
  die_shift -> Vstat_device.Vs_model.params -> Vstat_device.Vs_model.params
(** Apply a die's shared shift to a VS card (through
    {!Vs_statistical.apply_shifts}, so the vxo/DIBL couplings hold). *)

val die_tech :
  Pipeline.t -> die:die_shift -> rng:Vstat_util.Rng.t -> vdd:float ->
  Vstat_cells.Celltech.t
(** Technology handle for one die: every requested device combines the
    die's shared shift with a fresh within-die mismatch draw. *)

val decompose_variance :
  total:float array -> within:float array -> float
(** Paper eq. (1): sqrt(max(0, var(total) - var(within))) — the implied
    inter-die sigma of a metric. *)
