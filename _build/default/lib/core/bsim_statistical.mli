(** Statistical golden model: Bsim4lite with Pelgrom mismatch.

    Plays the role of the paper's industrial statistical BSIM kit: its
    mismatch coefficients are the *ground truth* (we seed them with the
    paper's Table II values), its Monte Carlo outputs are the "measured"
    variances fed to BPV, and its distributions are the "golden" reference
    every validation figure compares against. *)

type t = {
  label : string;
  polarity : Vstat_device.Device_model.polarity;
  alphas : Variation.alphas;
  nominal : w_nm:float -> l_nm:float -> Vstat_device.Bsim4lite.params;
}

val golden_nmos : t
(** Synthetic-node NMOS with the paper's NMOS Table II coefficients. *)

val golden_pmos : t

val sample_params :
  t -> Vstat_util.Rng.t -> w_nm:float -> l_nm:float ->
  Vstat_device.Bsim4lite.params
(** Draw one mismatch instance: independent Gaussian shifts on
    Vth0, L, W, u0 and Cox with the Pelgrom sigmas of this geometry. *)

val sample_device :
  t -> Vstat_util.Rng.t -> w_nm:float -> l_nm:float ->
  Vstat_device.Device_model.t

val nominal_device : t -> w_nm:float -> l_nm:float -> Vstat_device.Device_model.t
