let l_nm = Vstat_device.Cards.l_nominal_nm

let stochastic_vs (p : Pipeline.t) ~rng ~vdd =
  {
    Vstat_cells.Celltech.label = "vs-statistical";
    vdd;
    l_nm;
    nmos = (fun ~w_nm -> Vs_statistical.sample_device p.vs_nmos rng ~w_nm ~l_nm);
    pmos = (fun ~w_nm -> Vs_statistical.sample_device p.vs_pmos rng ~w_nm ~l_nm);
  }

let stochastic_bsim (p : Pipeline.t) ~rng ~vdd =
  {
    Vstat_cells.Celltech.label = "bsim-statistical";
    vdd;
    l_nm;
    nmos =
      (fun ~w_nm -> Bsim_statistical.sample_device p.golden_nmos rng ~w_nm ~l_nm);
    pmos =
      (fun ~w_nm -> Bsim_statistical.sample_device p.golden_pmos rng ~w_nm ~l_nm);
  }

let nominal_vs (p : Pipeline.t) ~vdd =
  {
    Vstat_cells.Celltech.label = "vs-nominal";
    vdd;
    l_nm;
    nmos = (fun ~w_nm -> Vs_statistical.nominal_device p.vs_nmos ~w_nm ~l_nm);
    pmos = (fun ~w_nm -> Vs_statistical.nominal_device p.vs_pmos ~w_nm ~l_nm);
  }

let nominal_bsim (p : Pipeline.t) ~vdd =
  {
    Vstat_cells.Celltech.label = "bsim-nominal";
    vdd;
    l_nm;
    nmos =
      (fun ~w_nm -> Bsim_statistical.nominal_device p.golden_nmos ~w_nm ~l_nm);
    pmos =
      (fun ~w_nm -> Bsim_statistical.nominal_device p.golden_pmos ~w_nm ~l_nm);
  }
