(** Device-level Monte Carlo: sample mismatch instances and collect the
    electrical metric distributions (paper Table III, Figs. 3 and 4). *)

type samples = {
  idsat : float array;        (** A *)
  log10_ioff : float array;
  cgg : float array;          (** F *)
}

val run :
  sampler:(Vstat_util.Rng.t -> Vstat_device.Device_model.t) ->
  rng:Vstat_util.Rng.t ->
  n:int ->
  vdd:float ->
  samples
(** Draw [n] devices and measure all three metrics on each. *)

val of_vs :
  Vs_statistical.t -> rng:Vstat_util.Rng.t -> n:int ->
  w_nm:float -> l_nm:float -> vdd:float -> samples

val of_bsim :
  Bsim_statistical.t -> rng:Vstat_util.Rng.t -> n:int ->
  w_nm:float -> l_nm:float -> vdd:float -> samples
