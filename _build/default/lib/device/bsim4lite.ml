type params = {
  w : float;
  l : float;
  dl : float;
  dw : float;
  cox : float;
  vth0 : float;
  k1 : float;
  phis : float;
  dvt0 : float;
  dvt_l : float;
  eta0 : float;
  eta_l : float;
  u0 : float;
  ua : float;
  ub : float;
  vsat : float;
  n_ss : float;
  lambda : float;
  phit : float;
  cov : float;
}

let leff p = Float.max (p.l -. p.dl) 1e-9
let weff p = Float.max (p.w -. p.dw) 1e-9

let vth p ~vds ~vbs =
  let l = leff p in
  let body =
    p.k1 *. (sqrt (Float.max (p.phis -. vbs) 1e-3) -. sqrt p.phis)
  in
  let rolloff = p.dvt0 *. exp (-.l /. p.dvt_l) in
  let dibl = p.eta0 *. exp (-.l /. p.eta_l) *. vds in
  p.vth0 +. body -. rolloff -. dibl

let canonical p ~vgs ~vds ~vbs =
  let l = leff p and w = weff p in
  let phit = p.phit in
  let vth = vth p ~vds ~vbs in
  (* Smoothed effective overdrive: exponential subthreshold, linear above. *)
  let nphit = p.n_ss *. phit in
  let vgsteff = nphit *. Vstat_util.Floatx.softplus ((vgs -. vth) /. nphit) in
  (* Vertical-field mobility degradation. *)
  let mu_eff =
    p.u0 /. (1.0 +. (p.ua *. vgsteff) +. (p.ub *. vgsteff *. vgsteff))
  in
  let esat = 2.0 *. p.vsat /. mu_eff in
  let esat_l = esat *. l in
  let vdsat = esat_l *. vgsteff /. (esat_l +. vgsteff +. 1e-12) in
  let vdsat = Float.max vdsat (2.0 *. phit) in
  (* Smooth minimum of Vds and Vdsat. *)
  let m = 4.0 in
  let vdseff = vds /. ((1.0 +. ((vds /. vdsat) ** m)) ** (1.0 /. m)) in
  (* BSIM-style bulk-charge factor keeps the current positive all the way
     into subthreshold, where Vdseff saturates at ~2 phit. *)
  let charge_factor = 1.0 -. (vdseff /. (2.0 *. (vgsteff +. (2.0 *. phit)))) in
  let id_core =
    mu_eff *. p.cox *. (w /. l)
    *. vgsteff *. vdseff *. charge_factor
    /. (1.0 +. (vdseff /. esat_l))
  in
  let id = id_core *. (1.0 +. (p.lambda *. (vds -. vdseff))) in
  (* Terminal charges: inversion charge ~ W L Cox Vgsteff, partitioned
     50/50 in triode to 60/40 in saturation; linear overlap caps. *)
  let qi = w *. l *. p.cox *. vgsteff in
  let sat_ratio = Vstat_util.Floatx.clamp ~lo:0.0 ~hi:1.0 (vdseff /. vdsat) in
  let qd_frac = 0.5 -. (0.1 *. sat_ratio) in
  let qov_s = p.cov *. w *. vgs in
  let qov_d = p.cov *. w *. (vgs -. vds) in
  {
    Device_model.id;
    qg = qi +. qov_s +. qov_d;
    qd = (-.qd_frac *. qi) -. qov_d;
    qs = (-.(1.0 -. qd_frac) *. qi) -. qov_s;
    qb = 0.0;
  }

let device ?(name = "bsim4lite") ~polarity p =
  Device_model.make ~name ~polarity ~width:(weff p) ~length:(leff p)
    ~canonical:(canonical p)

let parameter_count = 20
