type dibl = { delta0 : float; l_nominal : float; l_scale : float }

(* Clamped to a physical range: DIBL beyond ~0.4 V/V means punch-through,
   outside the model's validity (also keeps extreme Monte Carlo length draws
   from producing absurd devices). *)
let delta_of_length d l =
  Vstat_util.Floatx.clamp ~lo:1e-4 ~hi:0.4
    (d.delta0 *. exp ((d.l_nominal -. l) /. d.l_scale))

type params = {
  w : float;
  l : float;
  cinv : float;
  vt0 : float;
  dibl : dibl;
  n0 : float;
  nd : float;
  vxo : float;
  mu : float;
  beta : float;
  alpha_q : float;
  phit : float;
  gamma_body : float;
  phib : float;
  cov : float;
  ballistic_b : float;
}

let delta p = delta_of_length p.dibl p.l

(* Exponentials are guarded so that wild Newton iterates (tens of volts)
   saturate smoothly instead of overflowing. *)
let exp_guard x = exp (Vstat_util.Floatx.clamp ~lo:(-60.0) ~hi:60.0 x)

let canonical p ~vgs ~vds ~vbs =
  let phit = p.phit in
  let n = p.n0 +. (p.nd *. vds) in
  let vt_body =
    p.gamma_body *. (sqrt (Float.max (p.phib -. vbs) 1e-3) -. sqrt p.phib)
  in
  let vt = p.vt0 +. vt_body -. (delta p *. vds) in
  let aphit = p.alpha_q *. phit in
  (* Inversion transition function: 1 in subthreshold, 0 in strong inversion. *)
  let ff = 1.0 /. (1.0 +. exp_guard ((vgs -. (vt -. (aphit /. 2.0))) /. aphit)) in
  let qixo =
    p.cinv *. n *. phit
    *. Vstat_util.Floatx.softplus ((vgs -. (vt -. (aphit *. ff))) /. (n *. phit))
  in
  (* Saturation voltage blends from vxo.L/mu (strong inversion) to phit. *)
  let vdsats = p.vxo *. p.l /. p.mu in
  let vdsat = (vdsats *. (1.0 -. ff)) +. (phit *. ff) in
  let ratio = vds /. vdsat in
  let fsat = ratio /. ((1.0 +. (ratio ** p.beta)) ** (1.0 /. p.beta)) in
  let id = p.w *. fsat *. qixo *. p.vxo in
  (* Channel charge with a 50/50 (linear) to 60/40 (saturation) partition. *)
  let qi = p.w *. p.l *. qixo in
  let qd_frac = 0.5 -. (0.1 *. fsat) in
  let qov_s = p.cov *. p.w *. vgs in
  let qov_d = p.cov *. p.w *. (vgs -. vds) in
  {
    Device_model.id;
    qg = qi +. qov_s +. qov_d;
    qd = (-.qd_frac *. qi) -. qov_d;
    qs = (-.(1.0 -. qd_frac) *. qi) -. qov_s;
    qb = 0.0;
  }

let device ?(name = "vs") ~polarity p =
  Device_model.make ~name ~polarity ~width:p.w ~length:p.l
    ~canonical:(canonical p)

(* W, Leff, Cinv, VT0, delta0, n0, nd, vxo, mu, beta, gamma_body — matching
   the paper's "11 for DC" headline count (alpha_q and phit are universal
   constants; phib rides with gamma_body). *)
let dc_parameter_count = 11
