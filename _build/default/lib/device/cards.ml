let nm x = x *. 1e-9
let uf_per_cm2 x = x *. 1e-2
let cm2_per_vs x = x *. 1e-4
let cm_per_s x = x *. 1e-2

let vdd_nominal = 0.9
let l_nominal_nm = 40.0
let phit_300k = 0.025852

let bsim_nmos ~w_nm ~l_nm =
  {
    Bsim4lite.w = nm w_nm;
    l = nm l_nm;
    dl = 0.0;
    dw = 0.0;
    cox = uf_per_cm2 1.70;
    vth0 = 0.34;
    k1 = 0.35;
    phis = 0.80;
    dvt0 = 0.50;
    dvt_l = nm 15.0;
    eta0 = 0.50;
    eta_l = nm 25.0;
    u0 = cm2_per_vs 250.0;
    ua = 0.35;
    ub = 0.08;
    vsat = cm_per_s 1.0e7;
    n_ss = 1.40;
    lambda = 0.10;
    phit = phit_300k;
    cov = 3.0e-10;
  }

let bsim_pmos ~w_nm ~l_nm =
  {
    Bsim4lite.w = nm w_nm;
    l = nm l_nm;
    dl = 0.0;
    dw = 0.0;
    cox = uf_per_cm2 1.70;
    vth0 = 0.37;
    k1 = 0.40;
    phis = 0.80;
    dvt0 = 0.45;
    dvt_l = nm 15.0;
    eta0 = 0.55;
    eta_l = nm 25.0;
    u0 = cm2_per_vs 90.0;
    ua = 0.25;
    ub = 0.05;
    vsat = cm_per_s 0.80e7;
    n_ss = 1.45;
    lambda = 0.12;
    phit = phit_300k;
    cov = 3.2e-10;
  }

let vs_dibl_nmos =
  { Vs_model.delta0 = 0.10; l_nominal = nm l_nominal_nm; l_scale = nm 25.0 }

let vs_dibl_pmos =
  { Vs_model.delta0 = 0.11; l_nominal = nm l_nominal_nm; l_scale = nm 25.0 }

let vs_seed_nmos ~w_nm ~l_nm =
  {
    Vs_model.w = nm w_nm;
    l = nm l_nm;
    cinv = uf_per_cm2 1.70;
    vt0 = 0.38;
    dibl = vs_dibl_nmos;
    n0 = 1.40;
    nd = 0.0;
    vxo = cm_per_s 1.0e7;
    mu = cm2_per_vs 200.0;
    beta = 1.8;
    alpha_q = 3.5;
    phit = phit_300k;
    gamma_body = 0.20;
    phib = 0.80;
    cov = 3.0e-10;
    ballistic_b = 0.25;
  }

let vs_seed_pmos ~w_nm ~l_nm =
  {
    Vs_model.w = nm w_nm;
    l = nm l_nm;
    cinv = uf_per_cm2 1.70;
    vt0 = 0.40;
    dibl = vs_dibl_pmos;
    n0 = 1.45;
    nd = 0.0;
    vxo = cm_per_s 0.70e7;
    mu = cm2_per_vs 80.0;
    beta = 1.8;
    alpha_q = 3.5;
    phit = phit_300k;
    gamma_body = 0.22;
    phib = 0.80;
    cov = 3.2e-10;
    ballistic_b = 0.20;
  }

let bsim_device ~polarity ~w_nm ~l_nm =
  match polarity with
  | Device_model.Nmos ->
    Bsim4lite.device ~name:"bsim-nmos" ~polarity (bsim_nmos ~w_nm ~l_nm)
  | Device_model.Pmos ->
    Bsim4lite.device ~name:"bsim-pmos" ~polarity (bsim_pmos ~w_nm ~l_nm)

let vs_seed_device ~polarity ~w_nm ~l_nm =
  match polarity with
  | Device_model.Nmos ->
    Vs_model.device ~name:"vs-nmos" ~polarity (vs_seed_nmos ~w_nm ~l_nm)
  | Device_model.Pmos ->
    Vs_model.device ~name:"vs-pmos" ~polarity (vs_seed_pmos ~w_nm ~l_nm)
