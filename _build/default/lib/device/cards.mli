(** Model cards for the synthetic 40 nm bulk CMOS node.

    The paper uses an industrial 40 nm design kit; these cards define the
    stand-in node (see DESIGN.md).  Golden Bsim4lite cards define the node's
    "truth"; the VS seed cards are starting points for nominal extraction
    (fitting VS to golden I–V data reproduces the paper's Fig. 1 workflow).

    Constructors take geometry in nanometers, matching how the paper quotes
    sizes (e.g. W/L = 600/40); everything is converted to SI internally. *)

val nm : float -> float
(** Nanometers to meters. *)

val uf_per_cm2 : float -> float
(** uF/cm^2 to F/m^2. *)

val cm2_per_vs : float -> float
(** cm^2/(V.s) to m^2/(V.s). *)

val cm_per_s : float -> float
(** cm/s to m/s. *)

val vdd_nominal : float
(** Nominal supply of the node, 0.9 V (as in the paper's benchmarks). *)

val l_nominal_nm : float
(** Nominal gate length, 40 nm. *)

val bsim_nmos : w_nm:float -> l_nm:float -> Bsim4lite.params
(** Golden NMOS card at the given drawn geometry. *)

val bsim_pmos : w_nm:float -> l_nm:float -> Bsim4lite.params
(** Golden PMOS card (parameters are magnitudes; polarity is applied by
    {!Device_model.make}). *)

val vs_seed_nmos : w_nm:float -> l_nm:float -> Vs_model.params
(** Hand-written VS starting card for NMOS nominal extraction. *)

val vs_seed_pmos : w_nm:float -> l_nm:float -> Vs_model.params

val bsim_device :
  polarity:Device_model.polarity -> w_nm:float -> l_nm:float -> Device_model.t
(** Convenience: golden device of the requested polarity and geometry. *)

val vs_seed_device :
  polarity:Device_model.polarity -> w_nm:float -> l_nm:float -> Device_model.t
