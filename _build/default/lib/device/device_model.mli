(** First-class MOSFET compact-model instances.

    A [t] is a fully-instantiated four-terminal transistor: geometry and
    process parameters are already bound, so the circuit simulator only sees
    node voltages.  Polarity handling (PMOS as a mirrored NMOS) and
    source–drain symmetry (swap when the applied Vds is negative) are
    implemented here once, so concrete models ({!Vs_model}, {!Bsim4lite})
    only provide equations for the canonical NMOS, Vds >= 0 quadrant. *)

type polarity = Nmos | Pmos

type terminal_state = {
  id : float;  (** drain-to-source channel current, A (into drain terminal) *)
  qg : float;  (** gate terminal charge, C *)
  qd : float;  (** drain terminal charge, C *)
  qs : float;  (** source terminal charge, C *)
  qb : float;  (** bulk terminal charge, C *)
}

type canonical_eval = vgs:float -> vds:float -> vbs:float -> terminal_state
(** Model equations in the canonical quadrant.  Caller guarantees
    [vds >= 0]; values follow NMOS sign conventions (id >= 0 for normal
    operation, charges in natural NMOS polarity). *)

type t = {
  name : string;
  polarity : polarity;
  width : float;    (** electrical channel width, m *)
  length : float;   (** electrical channel length, m *)
  eval : vg:float -> vd:float -> vs:float -> vb:float -> terminal_state;
}

val make :
  name:string ->
  polarity:polarity ->
  width:float ->
  length:float ->
  canonical:canonical_eval ->
  t
(** Wrap canonical equations with polarity mirroring and Vds < 0 swap. *)

val ids : t -> vg:float -> vd:float -> vs:float -> vb:float -> float
(** Drain current only (sign follows the real terminal convention: positive
    current flows into the drain for an NMOS in normal operation). *)

val gm : ?dv:float -> t -> vg:float -> vd:float -> vs:float -> vb:float -> float
(** Transconductance dId/dVg by central finite difference. *)

val gds : ?dv:float -> t -> vg:float -> vd:float -> vs:float -> vb:float -> float
(** Output conductance dId/dVd. *)

val cgg : ?dv:float -> t -> vg:float -> vd:float -> vs:float -> vb:float -> float
(** Total gate capacitance dQg/dVg (F), central finite difference. *)
