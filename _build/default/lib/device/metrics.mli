(** Electrical performance metrics — the paper's BPV observables
    [e_i = {Idsat, log10 Ioff, Cgg@Vdd}] plus I–V curve sampling.

    All metrics are polarity-aware: a PMOS is measured with source and bulk
    at Vdd and the gate/drain pulled low, so [idsat] is always a positive
    on-current magnitude for both polarities. *)

val idsat : Device_model.t -> vdd:float -> float
(** On-current magnitude: |Id| at |Vgs| = |Vds| = Vdd (A). *)

val ioff : Device_model.t -> vdd:float -> float
(** Off-current magnitude: |Id| at Vgs = 0, |Vds| = Vdd (A). *)

val log10_ioff : Device_model.t -> vdd:float -> float
(** log10 of {!ioff}; the paper's preferred Gaussian-behaved leakage metric. *)

val cgg : Device_model.t -> vdd:float -> float
(** Total gate capacitance at |Vgs| = Vdd, Vds = 0 (F): the C–V measurement
    configuration used for the third BPV observable. *)

val id_vd_curve :
  Device_model.t -> vgs:float -> vds_points:float array -> (float * float) array
(** Output characteristic: (Vds, Id) pairs at fixed Vgs, NMOS sign
    convention (magnitudes for PMOS). *)

val id_vg_curve :
  Device_model.t -> vds:float -> vgs_points:float array -> (float * float) array
(** Transfer characteristic: (Vgs, Id) pairs at fixed Vds. *)
