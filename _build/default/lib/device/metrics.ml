(* Bias a device in its natural measurement frame: NMOS referenced to a
   grounded source, PMOS referenced to a source at vdd. *)
let bias_current (t : Device_model.t) ~vgs ~vds ~vdd =
  match t.polarity with
  | Device_model.Nmos ->
    Float.abs (Device_model.ids t ~vg:vgs ~vd:vds ~vs:0.0 ~vb:0.0)
  | Device_model.Pmos ->
    Float.abs
      (Device_model.ids t ~vg:(vdd -. vgs) ~vd:(vdd -. vds) ~vs:vdd ~vb:vdd)

let idsat t ~vdd = bias_current t ~vgs:vdd ~vds:vdd ~vdd

let ioff t ~vdd = bias_current t ~vgs:0.0 ~vds:vdd ~vdd

let log10_ioff t ~vdd = Vstat_util.Floatx.log10_safe (ioff t ~vdd)

let cgg (t : Device_model.t) ~vdd =
  match t.polarity with
  | Device_model.Nmos ->
    Float.abs (Device_model.cgg t ~vg:vdd ~vd:0.0 ~vs:0.0 ~vb:0.0)
  | Device_model.Pmos ->
    Float.abs (Device_model.cgg t ~vg:0.0 ~vd:vdd ~vs:vdd ~vb:vdd)

let id_vd_curve t ~vgs ~vds_points =
  Array.map
    (fun vds -> (vds, bias_current t ~vgs ~vds ~vdd:(Float.max vgs vds)))
    vds_points

let id_vg_curve t ~vds ~vgs_points =
  Array.map
    (fun vgs -> (vgs, bias_current t ~vgs ~vds ~vdd:(Float.max vgs vds)))
    vgs_points
