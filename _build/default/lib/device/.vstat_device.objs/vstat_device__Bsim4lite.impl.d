lib/device/bsim4lite.ml: Device_model Float Vstat_util
