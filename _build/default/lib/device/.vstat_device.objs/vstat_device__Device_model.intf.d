lib/device/device_model.mli:
