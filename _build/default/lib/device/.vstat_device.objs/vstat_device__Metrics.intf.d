lib/device/metrics.mli: Device_model
