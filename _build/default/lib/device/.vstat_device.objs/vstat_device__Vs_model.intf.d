lib/device/vs_model.mli: Device_model
