lib/device/metrics.ml: Array Device_model Float Vstat_util
