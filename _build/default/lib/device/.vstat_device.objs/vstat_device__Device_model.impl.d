lib/device/device_model.ml:
