lib/device/cards.mli: Bsim4lite Device_model Vs_model
