lib/device/vs_model.ml: Device_model Float Vstat_util
