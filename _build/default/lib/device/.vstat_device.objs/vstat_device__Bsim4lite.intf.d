lib/device/bsim4lite.mli: Device_model
