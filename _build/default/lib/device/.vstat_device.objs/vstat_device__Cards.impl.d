lib/device/cards.ml: Bsim4lite Device_model Vs_model
