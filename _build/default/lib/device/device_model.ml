type polarity = Nmos | Pmos

type terminal_state = {
  id : float;
  qg : float;
  qd : float;
  qs : float;
  qb : float;
}

type canonical_eval = vgs:float -> vds:float -> vbs:float -> terminal_state

type t = {
  name : string;
  polarity : polarity;
  width : float;
  length : float;
  eval : vg:float -> vd:float -> vs:float -> vb:float -> terminal_state;
}

let make ~name ~polarity ~width ~length ~canonical =
  let sign = match polarity with Nmos -> 1.0 | Pmos -> -1.0 in
  let eval ~vg ~vd ~vs ~vb =
    (* Mirror a PMOS into the NMOS quadrant. *)
    let vg = sign *. vg and vd = sign *. vd and vs = sign *. vs
    and vb = sign *. vb in
    (* Source–drain symmetry: the model is written for vds >= 0. *)
    let swapped = vd < vs in
    let d, s = if swapped then (vs, vd) else (vd, vs) in
    let state = canonical ~vgs:(vg -. s) ~vds:(d -. s) ~vbs:(vb -. s) in
    let id = if swapped then -.state.id else state.id in
    let qd, qs = if swapped then (state.qs, state.qd) else (state.qd, state.qs) in
    {
      id = sign *. id;
      qg = sign *. state.qg;
      qd = sign *. qd;
      qs = sign *. qs;
      qb = sign *. state.qb;
    }
  in
  { name; polarity; width; length; eval }

let ids t ~vg ~vd ~vs ~vb = (t.eval ~vg ~vd ~vs ~vb).id

let central f x dv = (f (x +. dv) -. f (x -. dv)) /. (2.0 *. dv)

let gm ?(dv = 1e-5) t ~vg ~vd ~vs ~vb =
  central (fun vg -> ids t ~vg ~vd ~vs ~vb) vg dv

let gds ?(dv = 1e-5) t ~vg ~vd ~vs ~vb =
  central (fun vd -> ids t ~vg ~vd ~vs ~vb) vd dv

let cgg ?(dv = 1e-5) t ~vg ~vd ~vs ~vb =
  central (fun vg -> (t.eval ~vg ~vd ~vs ~vb).qg) vg dv
