let check a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: length mismatch" name)

let dot a b =
  check a b "dot";
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a =
  Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

let add a b =
  check a b "add";
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check a b "sub";
  Array.mapi (fun i x -> x -. b.(i)) a

let scale s a = Array.map (fun x -> s *. x) a

let axpy ~alpha ~x ~y =
  check x y "axpy";
  Array.iteri (fun i xi -> y.(i) <- y.(i) +. (alpha *. xi)) x

let max_rel_diff a b =
  check a b "max_rel_diff";
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let denom = Float.max 1.0 (Float.max (Float.abs x) (Float.abs b.(i))) in
      acc := Float.max !acc (Float.abs (x -. b.(i)) /. denom))
    a;
  !acc
