lib/linalg/eigen_sym.ml: Array Float Fun List Matrix
