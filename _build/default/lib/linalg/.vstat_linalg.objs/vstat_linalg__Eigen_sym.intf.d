lib/linalg/eigen_sym.mli: Matrix
