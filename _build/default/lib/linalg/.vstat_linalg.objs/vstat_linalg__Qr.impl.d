lib/linalg/qr.ml: Array Float Matrix
