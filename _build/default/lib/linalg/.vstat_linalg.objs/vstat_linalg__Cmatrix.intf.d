lib/linalg/cmatrix.mli: Complex Matrix
