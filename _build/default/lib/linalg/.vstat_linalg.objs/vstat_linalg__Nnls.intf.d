lib/linalg/nnls.mli: Matrix
