lib/linalg/cmatrix.ml: Array Complex Matrix
