lib/linalg/nnls.ml: Array Float Fun List Matrix Qr
