lib/linalg/vec.mli:
