lib/linalg/lu.mli: Matrix
