type t = {
  lu : Matrix.t;          (* combined L (unit diagonal) and U factors *)
  pivots : int array;     (* row permutation *)
  sign : float;           (* permutation parity, for the determinant *)
}

exception Singular of int

let factor a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.factor: matrix must be square";
  let lu = Matrix.copy a in
  let pivots = Array.init n Fun.id in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: find the largest remaining entry in column k. *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs (Matrix.get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Matrix.get lu i k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    if !pivot_val < 1e-280 then raise (Singular k);
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get lu k j in
        Matrix.set lu k j (Matrix.get lu !pivot_row j);
        Matrix.set lu !pivot_row j tmp
      done;
      let tmp = pivots.(k) in
      pivots.(k) <- pivots.(!pivot_row);
      pivots.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let ukk = Matrix.get lu k k in
    for i = k + 1 to n - 1 do
      let lik = Matrix.get lu i k /. ukk in
      Matrix.set lu i k lik;
      for j = k + 1 to n - 1 do
        Matrix.add_to lu i j (-.lik *. Matrix.get lu k j)
      done
    done
  done;
  { lu; pivots; sign = !sign }

let solve_factored { lu; pivots; _ } b =
  let n = Matrix.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve_factored: rhs length";
  let x = Array.init n (fun i -> b.(pivots.(i))) in
  (* Forward substitution with unit-diagonal L. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (Matrix.get lu i j *. x.(j))
    done
  done;
  (* Backward substitution with U. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (Matrix.get lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. Matrix.get lu i i
  done;
  x

let solve a b = solve_factored (factor a) b

let det { lu; sign; _ } =
  let n = Matrix.rows lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Matrix.get lu i i
  done;
  !d

let inverse a =
  let n = Matrix.rows a in
  let f = factor a in
  let inv = Matrix.create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1.0 else 0.0) in
    let x = solve_factored f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j x.(i)
    done
  done;
  inv
