(** Vector helpers over plain [float array]. *)

val dot : float array -> float array -> float
val norm2 : float array -> float
(** Euclidean norm. *)

val norm_inf : float array -> float
val add : float array -> float array -> float array
val sub : float array -> float array -> float array
val scale : float -> float array -> float array
val axpy : alpha:float -> x:float array -> y:float array -> unit
(** In-place y := y + alpha * x. *)

val max_rel_diff : float array -> float array -> float
(** max_i |a_i - b_i| / max(1, |a_i|, |b_i|); convergence metric for Newton. *)
