(** Eigendecomposition of real symmetric matrices (cyclic Jacobi).

    Used for covariance analysis: confidence ellipses (2x2) and sanity
    checks on larger covariance matrices from Monte Carlo runs. *)

type result = {
  values : float array;   (** eigenvalues, descending *)
  vectors : Matrix.t;     (** column j is the unit eigenvector of values.(j) *)
}

val decompose : ?max_sweeps:int -> Matrix.t -> result
(** [decompose a] for symmetric [a].  The input is symmetrized as
    (a + a^T)/2 before iterating, so mild asymmetry from finite differences
    is tolerated.
    @raise Invalid_argument on non-square input.
    @raise Failure if Jacobi sweeps fail to converge. *)
