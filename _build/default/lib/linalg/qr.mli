(** Householder QR factorization and linear least squares.

    Used by the BPV extraction (stacked over-determined system, eq. (10) of
    the paper) and by the Levenberg–Marquardt optimizer. *)

type t
(** QR factorization of an m x n matrix with m >= n. *)

val factor : Matrix.t -> t
(** Factor.  @raise Invalid_argument if rows < cols. *)

val least_squares : Matrix.t -> float array -> float array
(** [least_squares a b] minimizes ||a x - b||_2 for full-column-rank [a].
    @raise Failure on rank deficiency (zero diagonal in R). *)

val solve_r : t -> float array -> float array
(** Solve R x = (Q^T b truncated) given the factorization; building block for
    [least_squares]. *)

val q_transpose_apply : t -> float array -> float array
(** Apply Q^T to a vector of length [rows]. *)

val r : t -> Matrix.t
(** The n x n upper-triangular factor. *)
