(** Non-negative least squares (Lawson–Hanson active set).

    BPV solves a linear system whose unknowns are *variances*
    (the alpha_j^2 coefficients of the paper's eq. (10)); enforcing
    non-negativity at the solver level keeps the extracted model physical
    even when the measured data is noisy. *)

val solve : ?max_iter:int -> Matrix.t -> float array -> float array
(** [solve a b] minimizes ||a x - b||_2 subject to x >= 0 componentwise.
    [a] is m x n with m >= n typically over-determined.
    @raise Failure if the active-set iteration fails to converge. *)

val residual_norm : Matrix.t -> float array -> float array -> float
(** [residual_norm a x b] is ||a x - b||_2, for diagnostics. *)
