(** One-dimensional root finding and minimization helpers.

    Used by cell analyses: the DFF setup/hold search is a 1-D root find on
    "does the register still capture the data?", and SNM extraction uses a
    1-D maximization of the embedded-square size. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** Root of a continuous scalar function on a bracketing interval
    (f(lo) and f(hi) must have opposite signs).
    @raise Invalid_argument if the interval does not bracket a sign change. *)

val bisect_predicate :
  ?tol:float -> ?max_iter:int -> f:(float -> bool) -> lo:float -> hi:float ->
  unit -> float
(** Boundary between a false region (at [lo]) and a true region (at [hi])
    of a monotone predicate — the register pass/fail search.
    @raise Invalid_argument unless f lo = false and f hi = true. *)

val golden_max :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float * float
(** Golden-section maximization of a unimodal function; returns (x, f x). *)
