lib/opt/nelder_mead.ml: Array Float Fun Vstat_linalg
