lib/opt/levenberg_marquardt.mli:
