lib/opt/scalar.ml: Float
