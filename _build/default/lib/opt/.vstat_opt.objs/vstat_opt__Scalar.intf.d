lib/opt/scalar.mli:
