lib/opt/levenberg_marquardt.ml: Array Float Vstat_linalg
