(** Nelder–Mead downhill simplex minimization.

    Used for the nominal VS parameter extraction: fitting the VS model's
    I–V surface to the golden model's data (paper Fig. 1) is a smooth
    low-dimensional problem where derivative-free simplex search is robust
    to the model's piecewise-smooth regions. *)

type result = {
  x : float array;        (** best point found *)
  f : float;              (** objective at [x] *)
  iterations : int;
  converged : bool;       (** simplex collapsed below tolerance *)
}

val minimize :
  ?max_iter:int ->
  ?f_tol:float ->
  ?x_tol:float ->
  ?initial_step:float array ->
  f:(float array -> float) ->
  x0:float array ->
  unit ->
  result
(** [minimize ~f ~x0 ()] runs the standard simplex recipe
    (reflection 1, expansion 2, contraction 0.5, shrink 0.5).
    [initial_step] sets the per-coordinate size of the starting simplex
    (default: 5 % of |x0_i|, or 0.01 where x0_i = 0).
    Convergence: simplex function spread < [f_tol] (default 1e-12 relative)
    or vertex spread < [x_tol] (default 1e-10 relative). *)

val minimize_restarts :
  ?restarts:int ->
  ?max_iter:int ->
  f:(float array -> float) ->
  x0:float array ->
  unit ->
  result
(** Re-run [minimize] from each successive optimum with a fresh simplex;
    cheap insurance against premature simplex collapse. *)
