module M = Vstat_linalg.Matrix

type result = {
  x : float array;
  residual_norm : float;
  iterations : int;
  converged : bool;
}

let norm2 v = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v)

let jacobian ~residual ~fd_step x r0 =
  let n = Array.length x and m = Array.length r0 in
  let j = M.create ~rows:m ~cols:n in
  for k = 0 to n - 1 do
    let h = fd_step *. Float.max 1.0 (Float.abs x.(k)) in
    let xk = Array.copy x in
    xk.(k) <- xk.(k) +. h;
    let rk = residual xk in
    if Array.length rk <> m then
      invalid_arg "Levenberg_marquardt: residual length changed";
    for i = 0 to m - 1 do
      M.set j i k ((rk.(i) -. r0.(i)) /. h)
    done
  done;
  j

let minimize ?(max_iter = 200) ?(lambda0 = 1e-3) ?(g_tol = 1e-12)
    ?(x_tol = 1e-12) ?(fd_step = 1e-7) ~residual ~x0 () =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Levenberg_marquardt.minimize: empty x0";
  let x = ref (Array.copy x0) in
  let r = ref (residual !x) in
  let cost = ref (norm2 !r) in
  let lambda = ref lambda0 in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let j = jacobian ~residual ~fd_step !x !r in
    (* Normal equations: (J^T J + lambda diag(J^T J)) dx = -J^T r. *)
    let jt = M.transpose j in
    let jtj = M.mul jt j in
    let g = M.mul_vec jt !r in
    let gnorm = norm2 g in
    if gnorm < g_tol *. Float.max 1.0 !cost then converged := true
    else begin
      (* Try increasing damping until a step reduces the cost. *)
      let stepped = ref false in
      let attempts = ref 0 in
      while (not !stepped) && !attempts < 30 do
        incr attempts;
        let a = M.copy jtj in
        for k = 0 to n - 1 do
          let d = M.get jtj k k in
          M.add_to a k k (!lambda *. Float.max d 1e-12)
        done;
        match Vstat_linalg.Lu.solve a (Array.map (fun v -> -.v) g) with
        | exception Vstat_linalg.Lu.Singular _ -> lambda := !lambda *. 10.0
        | dx ->
          let x' = Array.mapi (fun i xi -> xi +. dx.(i)) !x in
          let r' = residual x' in
          let cost' = norm2 r' in
          if cost' < !cost then begin
            (* Accept: relax damping toward Gauss-Newton. *)
            let step_small =
              norm2 dx < x_tol *. Float.max 1.0 (norm2 !x)
            in
            x := x';
            r := r';
            cost := cost';
            lambda := Float.max (!lambda /. 10.0) 1e-12;
            stepped := true;
            if step_small then converged := true
          end
          else lambda := !lambda *. 10.0
      done;
      if not !stepped then converged := true (* damping saturated: stall *)
    end
  done;
  {
    x = !x;
    residual_norm = !cost;
    iterations = !iterations;
    converged = !converged;
  }
