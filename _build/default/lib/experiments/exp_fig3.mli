(** Fig. 3 — Idsat mismatch (sigma/mu) versus width at L = 40 nm, decomposed
    into the underlying process-parameter contributions. *)

type row = {
  w_nm : float;
  total_pct : float;          (** sigma(Idsat)/mean(Idsat), percent, from MC *)
  predicted_pct : float;      (** same via linear propagation (eq. 9) *)
  vt0_pct : float;
  geometry_pct : float;       (** combined Leff & Weff contribution *)
  mu_pct : float;
  cinv_pct : float;
}

type t = { l_nm : float; rows : row list }

val run :
  ?widths:float list -> ?n:int -> ?seed:int -> Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
