type t = {
  n : int;
  setup : Mc_compare.pair;
  hold : Mc_compare.pair option;
}

let run ?(n = 120) ?(seed = 37) ?(include_hold = false)
    (p : Vstat_core.Pipeline.t) =
  let setup =
    Mc_compare.run p ~label:"DFF setup time" ~vdd:p.vdd ~n ~seed
      ~measure:(fun tech ->
        Vstat_cells.Dff.setup_time (Vstat_cells.Dff.sample tech))
  in
  let hold =
    if include_hold then
      Some
        (Mc_compare.run p ~label:"DFF hold time" ~vdd:p.vdd ~n ~seed:(seed + 5)
           ~measure:(fun tech ->
             Vstat_cells.Dff.hold_time (Vstat_cells.Dff.sample tech)))
    else None
  in
  { n; setup; hold }

let pp ppf t =
  Format.fprintf ppf
    "Fig.8: DFF (master-slave, NMOS pass) setup time, %d MC samples per model@\n"
    t.n;
  Mc_compare.pp_pair ppf t.setup;
  match t.hold with
  | Some hold -> Mc_compare.pp_pair ppf hold
  | None -> ()
