type t = {
  extracted_nmos : Vstat_core.Variation.alphas;
  extracted_pmos : Vstat_core.Variation.alphas;
  truth_nmos : Vstat_core.Variation.alphas;
  truth_pmos : Vstat_core.Variation.alphas;
}

let run (p : Vstat_core.Pipeline.t) =
  {
    extracted_nmos = p.bpv_nmos.alphas;
    extracted_pmos = p.bpv_pmos.alphas;
    truth_nmos = p.golden_nmos.alphas;
    truth_pmos = p.golden_pmos.alphas;
  }

let pp ppf t =
  Format.fprintf ppf
    "Table II: extracted alpha coefficients (BPV) vs golden ground truth@\n";
  let row name f =
    [
      name;
      Printf.sprintf "%.3g" (f t.extracted_nmos);
      Printf.sprintf "%.3g" (f t.truth_nmos);
      Printf.sprintf "%.3g" (f t.extracted_pmos);
      Printf.sprintf "%.3g" (f t.truth_pmos);
    ]
  in
  Vstat_util.Floatx.pp_table ppf
    ~header:[ "coef"; "NMOS extr"; "NMOS truth"; "PMOS extr"; "PMOS truth" ]
    ~rows:
      [
        row "a1 (V.nm)" (fun a -> a.Vstat_core.Variation.a_vt0);
        row "a2 (nm)" (fun a -> a.a_l);
        row "a3 (nm)" (fun a -> a.a_w);
        row "a4 (nm.cm2/Vs)" (fun a -> a.a_mu);
        row "a5 (nm.uF/cm2)" (fun a -> a.a_cinv);
      ];
  Format.fprintf ppf
    "(a4 extracts below truth because vxo is slaved to mu in the VS model,@\n\
    \ amplifying mobility sensitivity - the paper reports the same effect.)@\n"
