let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write ~dir ~name ~header ~rows =
  ensure_dir dir;
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc
            (String.concat "," (List.map (Printf.sprintf "%.9g") row));
          output_char oc '\n')
        rows);
  path

let write_columns ~dir ~name columns =
  ensure_dir dir;
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," (List.map fst columns));
      output_char oc '\n';
      let depth =
        List.fold_left (fun acc (_, c) -> Int.max acc (Array.length c)) 0
          columns
      in
      for i = 0 to depth - 1 do
        let cells =
          List.map
            (fun (_, c) ->
              if i < Array.length c then Printf.sprintf "%.9g" c.(i) else "")
            columns
        in
        output_string oc (String.concat "," cells);
        output_char oc '\n'
      done);
  path
