type row = {
  workload : string;
  samples : int;
  vs_runtime_s : float;
  bsim_runtime_s : float;
  vs_alloc_mb : float;
  bsim_alloc_mb : float;
}

type t = { rows : row list }

let speedup r = r.bsim_runtime_s /. r.vs_runtime_s
let alloc_ratio r = r.bsim_alloc_mb /. r.vs_alloc_mb

let timed f =
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  f ();
  let a1 = Gc.allocated_bytes () in
  let t1 = Unix.gettimeofday () in
  (t1 -. t0, (a1 -. a0) /. 1048576.0)

let run_workload p ~workload ~samples ~seed ~measure =
  let run tech_of_rng =
    let rng = Vstat_util.Rng.create ~seed in
    timed (fun () ->
        for _ = 1 to samples do
          let tech = tech_of_rng (Vstat_util.Rng.split rng) in
          (try ignore (measure tech) with _ -> ())
        done)
  in
  let vs_runtime_s, vs_alloc_mb =
    run (fun rng -> Vstat_core.Techs.stochastic_vs p ~rng ~vdd:p.vdd)
  in
  let bsim_runtime_s, bsim_alloc_mb =
    run (fun rng -> Vstat_core.Techs.stochastic_bsim p ~rng ~vdd:p.vdd)
  in
  { workload; samples; vs_runtime_s; bsim_runtime_s; vs_alloc_mb; bsim_alloc_mb }

(* The paper's "SRAM AC" workload: small-signal sweep of a half-cell at the
   read operating point (10 frequency points per Monte Carlo sample). *)
let sram_ac_measure (tech : Vstat_cells.Celltech.t) =
  let cell = Vstat_cells.Sram6t.sample tech in
  let net = Vstat_circuit.Netlist.create () in
  let gnd = Vstat_circuit.Netlist.ground net in
  let nvdd = Vstat_circuit.Netlist.node net "vdd" in
  let nin = Vstat_circuit.Netlist.node net "in" in
  let nout = Vstat_circuit.Netlist.node net "out" in
  let nbl = Vstat_circuit.Netlist.node net "bl" in
  let nwl = Vstat_circuit.Netlist.node net "wl" in
  Vstat_circuit.Netlist.vsource net "vvdd" ~plus:nvdd ~minus:gnd
    ~wave:(Vstat_circuit.Waveform.Dc tech.vdd);
  Vstat_circuit.Netlist.vsource net "vin" ~plus:nin ~minus:gnd
    ~wave:(Vstat_circuit.Waveform.Dc (0.45 *. tech.vdd));
  Vstat_circuit.Netlist.vsource net "vbl" ~plus:nbl ~minus:gnd
    ~wave:(Vstat_circuit.Waveform.Dc tech.vdd);
  Vstat_circuit.Netlist.vsource net "vwl" ~plus:nwl ~minus:gnd
    ~wave:(Vstat_circuit.Waveform.Dc tech.vdd);
  Vstat_circuit.Netlist.mosfet net "mpu" ~d:nout ~g:nin ~s:nvdd ~b:nvdd
    ~dev:cell.left.pullup;
  Vstat_circuit.Netlist.mosfet net "mpd" ~d:nout ~g:nin ~s:gnd ~b:gnd
    ~dev:cell.left.pulldown;
  Vstat_circuit.Netlist.mosfet net "macc" ~d:nbl ~g:nwl ~s:nout ~b:gnd
    ~dev:cell.left.access;
  let eng = Vstat_circuit.Engine.compile net in
  let op = Vstat_circuit.Engine.dc eng in
  let ac =
    Vstat_circuit.Ac.sweep eng ~op ~source:"vin"
      ~freqs_hz:(Vstat_util.Floatx.logspace 6.0 11.0 10)
  in
  Vstat_circuit.Ac.node_transfer eng ac nout

let run ?(n_nand2 = 100) ?(n_dff = 20) ?(n_sram = 100) ?(seed = 43)
    (p : Vstat_core.Pipeline.t) =
  let nand2 =
    run_workload p ~workload:"NAND2 tran" ~samples:n_nand2 ~seed
      ~measure:(fun tech ->
        Vstat_cells.Nand2.measure
          (Vstat_cells.Nand2.sample tech ~wp_nm:300.0 ~wn_nm:300.0 ~fanout:3))
  in
  let dff =
    run_workload p ~workload:"DFF setup" ~samples:n_dff ~seed:(seed + 1)
      ~measure:(fun tech ->
        Vstat_cells.Dff.setup_time (Vstat_cells.Dff.sample tech))
  in
  let sram =
    run_workload p ~workload:"SRAM SNM" ~samples:n_sram ~seed:(seed + 2)
      ~measure:(fun tech ->
        Vstat_cells.Sram6t.snm
          (Vstat_cells.Sram6t.sample tech)
          ~mode:Vstat_cells.Sram6t.Read)
  in
  let sram_ac =
    run_workload p ~workload:"SRAM AC" ~samples:n_sram ~seed:(seed + 3)
      ~measure:sram_ac_measure
  in
  { rows = [ nand2; dff; sram; sram_ac ] }

let model_eval_comparison ?(evals = 200_000) (p : Vstat_core.Pipeline.t) =
  let vs_dev =
    Vstat_core.Vs_statistical.nominal_device p.vs_nmos ~w_nm:600.0 ~l_nm:40.0
  in
  let bsim_dev =
    Vstat_core.Bsim_statistical.nominal_device p.golden_nmos ~w_nm:600.0
      ~l_nm:40.0
  in
  let loop dev =
    let acc = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to evals - 1 do
      let vg = 0.9 *. Float.of_int (i mod 10) /. 9.0 in
      acc :=
        !acc
        +. Vstat_device.Device_model.ids dev ~vg ~vd:0.9 ~vs:0.0 ~vb:0.0
    done;
    ignore !acc;
    Unix.gettimeofday () -. t0
  in
  (* Warm up, then measure. *)
  ignore (loop vs_dev);
  ignore (loop bsim_dev);
  let t_vs = loop vs_dev in
  let t_bsim = loop bsim_dev in
  t_bsim /. t_vs

let pp ppf t =
  Format.fprintf ppf
    "Table IV: Monte Carlo runtime/allocation, VS vs golden (same engine)@\n";
  Vstat_util.Floatx.pp_table ppf
    ~header:
      [
        "workload"; "n"; "VS time (s)"; "BSIM time (s)"; "speedup";
        "VS alloc (MB)"; "BSIM alloc (MB)"; "alloc ratio";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.workload;
             string_of_int r.samples;
             Printf.sprintf "%.2f" r.vs_runtime_s;
             Printf.sprintf "%.2f" r.bsim_runtime_s;
             Printf.sprintf "%.2fx" (speedup r);
             Printf.sprintf "%.0f" r.vs_alloc_mb;
             Printf.sprintf "%.0f" r.bsim_alloc_mb;
             Printf.sprintf "%.2fx" (alloc_ratio r);
           ])
         t.rows)
