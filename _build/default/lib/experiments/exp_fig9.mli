(** Fig. 9 — 6T SRAM: butterfly curves (READ and HOLD) from the statistical
    VS model, SNM distributions for both models, and the Q–Q analysis of
    the HOLD SNM (slightly non-Gaussian in the paper). *)

type t = {
  n : int;
  butterfly_read : Vstat_cells.Sram6t.butterfly;   (** one VS sample *)
  butterfly_hold : Vstat_cells.Sram6t.butterfly;
  read_snm : Mc_compare.pair;
  hold_snm : Mc_compare.pair;
  hold_qq_r2_vs : float;
  hold_qq_vs : (float * float) array;
}

val run : ?n:int -> ?seed:int -> Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
