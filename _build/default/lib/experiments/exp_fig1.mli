(** Fig. 1 — VS model fitted to the golden model's I–V, NMOS W = 300 nm:
    output characteristics (Id–Vd family) and transfer characteristics
    (Id–Vg at low/high Vds, read on a log axis). *)

type curve = { label : string; points : (float * float) array }

type t = {
  id_vd : (curve * curve) list;
      (** per gate voltage: (golden, vs) output curves *)
  id_vg : (curve * curve) list;
      (** per drain voltage: (golden, vs) transfer curves *)
  rms_log_error : float;
  rms_rel_error : float;
}

val run : ?w_nm:float -> Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
