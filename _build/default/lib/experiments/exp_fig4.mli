(** Fig. 4 — Ion vs log10(Ioff) bivariate scatter for the medium device
    (W/L = 600/40) with 1σ, 2σ, 3σ confidence ellipses from both models. *)

type model_result = {
  label : string;
  idsat : float array;
  log10_ioff : float array;
  ellipses : Vstat_stats.Ellipse.t list;  (** 1, 2, 3 sigma *)
  coverages : float list;  (** empirical coverage of each ellipse *)
}

type t = {
  w_nm : float;
  l_nm : float;
  n : int;
  golden : model_result;
  vs : model_result;
  correlation_golden : float;  (** corr(Idsat, log10 Ioff) *)
  correlation_vs : float;
}

val run :
  ?w_nm:float -> ?n:int -> ?seed:int -> Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
