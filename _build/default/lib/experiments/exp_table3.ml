type entry = {
  label : string;
  w_nm : float;
  l_nm : float;
  polarity : [ `N | `P ];
  bsim_sigma_idsat : float;
  vs_sigma_idsat : float;
  bsim_sigma_logioff : float;
  vs_sigma_logioff : float;
}

type t = { n : int; entries : entry list }

let geometries = [ ("Wide", 1500.0); ("Medium", 600.0); ("Short", 120.0) ]

let run ?(n = 1500) ?(seed = 13) (p : Vstat_core.Pipeline.t) =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  let rng = Vstat_util.Rng.create ~seed in
  let entries =
    List.concat_map
      (fun (label, w_nm) ->
        List.map
          (fun polarity ->
            let golden, vs =
              match polarity with
              | `N -> (p.golden_nmos, p.vs_nmos)
              | `P -> (p.golden_pmos, p.vs_pmos)
            in
            let b =
              Vstat_core.Mc_device.of_bsim golden
                ~rng:(Vstat_util.Rng.split rng) ~n ~w_nm ~l_nm ~vdd:p.vdd
            in
            let v =
              Vstat_core.Mc_device.of_vs vs ~rng:(Vstat_util.Rng.split rng) ~n
                ~w_nm ~l_nm ~vdd:p.vdd
            in
            {
              label;
              w_nm;
              l_nm;
              polarity;
              bsim_sigma_idsat = Vstat_stats.Descriptive.std b.idsat;
              vs_sigma_idsat = Vstat_stats.Descriptive.std v.idsat;
              bsim_sigma_logioff = Vstat_stats.Descriptive.std b.log10_ioff;
              vs_sigma_logioff = Vstat_stats.Descriptive.std v.log10_ioff;
            })
          [ `N; `P ])
      geometries
  in
  { n; entries }

let worst_rel_diff t =
  List.fold_left
    (fun acc e ->
      let d1 =
        Float.abs (e.vs_sigma_idsat -. e.bsim_sigma_idsat)
        /. e.bsim_sigma_idsat
      in
      let d2 =
        Float.abs (e.vs_sigma_logioff -. e.bsim_sigma_logioff)
        /. e.bsim_sigma_logioff
      in
      Float.max acc (Float.max d1 d2))
    0.0 t.entries

let pp ppf t =
  Format.fprintf ppf
    "Table III: MC sigma comparison, VS vs golden (n=%d per cell)@\n" t.n;
  Vstat_util.Floatx.pp_table ppf
    ~header:
      [
        "device"; "W/L"; "pol"; "sIdsat bsim (uA)"; "sIdsat VS (uA)";
        "slogIoff bsim"; "slogIoff VS";
      ]
    ~rows:
      (List.map
         (fun e ->
           [
             e.label;
             Printf.sprintf "%.0f/%.0f" e.w_nm e.l_nm;
             (match e.polarity with `N -> "N" | `P -> "P");
             Printf.sprintf "%.2f" (e.bsim_sigma_idsat *. 1e6);
             Printf.sprintf "%.2f" (e.vs_sigma_idsat *. 1e6);
             Printf.sprintf "%.3f" e.bsim_sigma_logioff;
             Printf.sprintf "%.3f" e.vs_sigma_logioff;
           ])
         t.entries);
  Format.fprintf ppf "worst relative sigma difference = %.1f%%@\n"
    (100.0 *. worst_rel_diff t)
