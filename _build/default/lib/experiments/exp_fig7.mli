(** Fig. 7 — NAND2 FO3 delay distributions at Vdd = 0.9 / 0.7 / 0.55 V with
    quantile–quantile analysis: the delay distribution becomes markedly
    non-Gaussian as the supply drops, and the statistical VS model must
    track that despite its variation parameters being independent
    Gaussians. *)

type per_vdd = {
  vdd : float;
  pair : Mc_compare.pair;
  skew_golden : float;
  skew_vs : float;
  qq_r2_golden : float;      (** Q–Q linearity; 1 = Gaussian *)
  qq_r2_vs : float;
  tail_dev_golden : float;   (** 3-sigma span vs Gaussian prediction *)
  tail_dev_vs : float;
  qq_vs : (float * float) array;  (** the VS Q–Q series for export *)
}

type t = { n : int; results : per_vdd list }

val run :
  ?vdds:float list -> ?n:int -> ?seed:int -> Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
