type size = { name : string; wp_nm : float; wn_nm : float }

let paper_sizes =
  [
    { name = "1x (P/N=300/150)"; wp_nm = 300.0; wn_nm = 150.0 };
    { name = "2x (P/N=600/300)"; wp_nm = 600.0; wn_nm = 300.0 };
    { name = "4x (P/N=1200/600)"; wp_nm = 1200.0; wn_nm = 600.0 };
  ]

type t = { n : int; vdd : float; results : (size * Mc_compare.pair) list }

let run ?(sizes = paper_sizes) ?(n = 400) ?(seed = 23) ?vdd
    (p : Vstat_core.Pipeline.t) =
  let vdd = match vdd with Some v -> v | None -> p.vdd in
  let results =
    List.map
      (fun size ->
        let measure tech =
          let s =
            Vstat_cells.Inverter.sample tech ~wp_nm:size.wp_nm
              ~wn_nm:size.wn_nm ~fanout:3
          in
          (Vstat_cells.Inverter.measure s).tpd
        in
        let pair =
          Mc_compare.run p ~label:("INV FO3 delay " ^ size.name) ~vdd ~n ~seed
            ~measure
        in
        (size, pair))
      sizes
  in
  { n; vdd; results }

let pp ppf t =
  Format.fprintf ppf
    "Fig.5: INV FO3 delay distributions, %d MC samples per model, Vdd=%.2fV@\n"
    t.n t.vdd;
  List.iter (fun (_, pair) -> Mc_compare.pp_pair ppf pair) t.results
