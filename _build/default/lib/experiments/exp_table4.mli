(** Table IV — speed and memory comparison for Monte Carlo simulation with
    the VS model vs the golden BSIM-style model.

    Both models run in the same MNA engine, so the ratio isolates compact-
    model evaluation cost, mirroring the paper's Verilog-A-VS vs C-BSIM4
    comparison (they report 4.2x runtime and 8.7x memory advantages; our
    models are both native OCaml, so the gap reflects equation complexity
    only).  Memory is measured as bytes allocated during the workload. *)

type row = {
  workload : string;
  samples : int;
  vs_runtime_s : float;
  bsim_runtime_s : float;
  vs_alloc_mb : float;
  bsim_alloc_mb : float;
}

type t = { rows : row list }

val speedup : row -> float
(** bsim_runtime / vs_runtime. *)

val alloc_ratio : row -> float

val run :
  ?n_nand2:int -> ?n_dff:int -> ?n_sram:int -> ?seed:int ->
  Vstat_core.Pipeline.t -> t
(** Default sample counts are scaled down from the paper's (2000/250/2000)
    to keep the default CLI run short; pass the full counts to reproduce the
    table at paper scale. *)

val model_eval_comparison : ?evals:int -> Vstat_core.Pipeline.t -> float
(** Microbenchmark: ratio of per-evaluation cost (golden / VS) for a single
    device evaluation loop. *)

val pp : Format.formatter -> t -> unit
