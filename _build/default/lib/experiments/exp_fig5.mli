(** Fig. 5 — INV (fanout-3) delay probability densities for three cell
    sizes, statistical VS vs golden. *)

type size = { name : string; wp_nm : float; wn_nm : float }

val paper_sizes : size list
(** P/N = 300/150, 600/300, 1200/600 nm as in the paper. *)

type t = { n : int; vdd : float; results : (size * Mc_compare.pair) list }

val run :
  ?sizes:size list -> ?n:int -> ?seed:int -> ?vdd:float ->
  Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
