(** Fig. 2 — relative difference in the extracted sigma(VT0), sigma(Leff)
    and sigma(Weff) between solving the BPV system for each geometry
    individually and solving the stacked system jointly. *)

type row = {
  w_nm : float;
  l_nm : float;
  diff_vt0_pct : float;
  diff_leff_pct : float;
  diff_weff_pct : float;
}

type t = { rows : row list; max_abs_diff_pct : float }

val run : ?polarity:[ `N | `P ] -> Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
