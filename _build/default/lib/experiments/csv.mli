(** Tiny CSV writer for exporting experiment series to plotting tools. *)

val write :
  dir:string -> name:string -> header:string list -> rows:float list list ->
  string
(** [write ~dir ~name ~header ~rows] creates [dir] if needed and writes
    [dir]/[name].csv; returns the path.  All values are printed with
    full float precision ("%.9g"). *)

val write_columns :
  dir:string -> name:string -> (string * float array) list -> string
(** Column-oriented variant: pads shorter columns with empty cells. *)
