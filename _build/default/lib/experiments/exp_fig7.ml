type per_vdd = {
  vdd : float;
  pair : Mc_compare.pair;
  skew_golden : float;
  skew_vs : float;
  qq_r2_golden : float;
  qq_r2_vs : float;
  tail_dev_golden : float;
  tail_dev_vs : float;
  qq_vs : (float * float) array;
}

type t = { n : int; results : per_vdd list }

let run ?(vdds = [ 0.9; 0.7; 0.55; 0.45 ]) ?(n = 400) ?(seed = 31)
    (p : Vstat_core.Pipeline.t) =
  let results =
    List.map
      (fun vdd ->
        let measure tech =
          let s =
            Vstat_cells.Nand2.sample tech ~wp_nm:300.0 ~wn_nm:300.0 ~fanout:3
          in
          (Vstat_cells.Nand2.measure s).tpd
        in
        let pair =
          Mc_compare.run p
            ~label:(Printf.sprintf "NAND2 FO3 delay @ %.2fV" vdd)
            ~vdd ~n ~seed ~measure
        in
        {
          vdd;
          pair;
          skew_golden = Vstat_stats.Descriptive.skewness pair.golden;
          skew_vs = Vstat_stats.Descriptive.skewness pair.vs;
          qq_r2_golden = Vstat_stats.Qq.linearity_r2 pair.golden;
          qq_r2_vs = Vstat_stats.Qq.linearity_r2 pair.vs;
          tail_dev_golden = Vstat_stats.Qq.tail_deviation pair.golden;
          tail_dev_vs = Vstat_stats.Qq.tail_deviation pair.vs;
          qq_vs = Vstat_stats.Qq.against_normal pair.vs;
        })
      vdds
  in
  { n; results }

let pp ppf t =
  Format.fprintf ppf
    "Fig.7: NAND2 FO3 delay vs supply voltage, %d MC samples per model@\n" t.n;
  List.iter
    (fun r ->
      Mc_compare.pp_pair ppf r.pair;
      Format.fprintf ppf
        "  gaussianity: skew g=%+.2f vs=%+.2f | qq R2 g=%.4f vs=%.4f | tail dev g=%+.3f vs=%+.3f@\n"
        r.skew_golden r.skew_vs r.qq_r2_golden r.qq_r2_vs r.tail_dev_golden
        r.tail_dev_vs)
    t.results;
  (* The headline check: non-Gaussianity should grow as Vdd drops, in both
     models, and the VS model should track the golden skew. *)
  match (List.nth_opt t.results 0, List.nth_opt t.results (List.length t.results - 1)) with
  | Some hi, Some lo when hi.vdd > lo.vdd ->
    Format.fprintf ppf
      "non-Gaussian trend: skew(vs) %.2f -> %.2f as Vdd %.2f -> %.2f@\n"
      hi.skew_vs lo.skew_vs hi.vdd lo.vdd
  | _ -> ()
