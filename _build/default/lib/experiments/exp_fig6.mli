(** Fig. 6 — total circuit leakage vs frequency (1/delay) scatter for the
    INV FO3 harness; the paper reports a ~37x leakage spread against a
    ~45-50 % frequency spread from within-die variation alone. *)

type model_scatter = {
  label : string;
  leakage : float array;     (** A *)
  frequency : float array;   (** Hz, 1/tpd *)
  leakage_spread : float;    (** max/min *)
  freq_spread_pct : float;   (** (max-min)/mean * 100 *)
}

type t = {
  n : int;
  golden : model_scatter;
  vs : model_scatter;
  leakage_pair : Mc_compare.pair;
  frequency_pair : Mc_compare.pair;
}

val run :
  ?wp_nm:float -> ?wn_nm:float -> ?n:int -> ?seed:int ->
  Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
