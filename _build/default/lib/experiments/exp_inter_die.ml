type t = {
  n_dies : int;
  per_die : int;
  within_delays : float array;
  total_delays : float array;
  sigma_within : float;
  sigma_total : float;
  sigma_inter_implied : float;
}

let measure_delay tech =
  let s = Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
  (Vstat_cells.Inverter.measure s).tpd

let run ?(n_dies = 20) ?(per_die = 8) ?(seed = 53)
    ?(spec = Vstat_core.Inter_die.default_40nm) (p : Vstat_core.Pipeline.t) =
  let rng = Vstat_util.Rng.create ~seed in
  let vdd = p.vdd in
  let total = ref [] and within = ref [] in
  for _ = 1 to n_dies do
    let die = Vstat_core.Inter_die.draw spec rng in
    let die_rng = Vstat_util.Rng.split rng in
    let within_rng = Vstat_util.Rng.split rng in
    for _ = 1 to per_die do
      let tech_total =
        Vstat_core.Inter_die.die_tech p ~die ~rng:die_rng ~vdd
      in
      total := measure_delay tech_total :: !total;
      let tech_within =
        Vstat_core.Techs.stochastic_vs p ~rng:within_rng ~vdd
      in
      within := measure_delay tech_within :: !within
    done
  done;
  let within_delays = Array.of_list !within in
  let total_delays = Array.of_list !total in
  let sigma_within = Vstat_stats.Descriptive.std within_delays in
  let sigma_total = Vstat_stats.Descriptive.std total_delays in
  {
    n_dies;
    per_die;
    within_delays;
    total_delays;
    sigma_within;
    sigma_total;
    sigma_inter_implied =
      Vstat_core.Inter_die.decompose_variance ~total:total_delays
        ~within:within_delays;
  }

let pp ppf t =
  Format.fprintf ppf
    "Extension: inter-die + within-die delay variation (eq. 1), %d dies x %d cells@\n"
    t.n_dies t.per_die;
  Format.fprintf ppf
    "  sigma(within-die only)     = %.3f ps@\n\
    \  sigma(total, with global)  = %.3f ps@\n\
    \  implied inter-die sigma    = %.3f ps  (variance subtraction)@\n"
    (1e12 *. t.sigma_within) (1e12 *. t.sigma_total)
    (1e12 *. t.sigma_inter_implied)
