(** Fig. 8 — setup-time distribution of the master–slave NMOS-pass register
    (250 Monte Carlo runs in the paper).  Hold times are characterized too
    (the paper analyses both constraints, eqs. (11)–(12)). *)

type t = {
  n : int;
  setup : Mc_compare.pair;
  hold : Mc_compare.pair option;  (** only when [include_hold] *)
}

val run :
  ?n:int -> ?seed:int -> ?include_hold:bool -> Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
