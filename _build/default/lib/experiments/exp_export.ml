let write_all ~dir ?(n = 300) ?(seed = 42) p =
  let paths = ref [] in
  let add path = paths := path :: !paths in
  (* Fig. 1 *)
  let f1 = Exp_fig1.run p in
  let idvd_columns =
    List.concat_map
      (fun ((g : Exp_fig1.curve), (v : Exp_fig1.curve)) ->
        [
          ("vds", Array.map fst g.points);
          (g.label ^ " id", Array.map snd g.points);
          (v.label ^ " id", Array.map snd v.points);
        ])
      f1.id_vd
  in
  add (Csv.write_columns ~dir ~name:"fig1_idvd" idvd_columns);
  let idvg_columns =
    List.concat_map
      (fun ((g : Exp_fig1.curve), (v : Exp_fig1.curve)) ->
        [
          ("vgs", Array.map fst g.points);
          (g.label ^ " id", Array.map snd g.points);
          (v.label ^ " id", Array.map snd v.points);
        ])
      f1.id_vg
  in
  add (Csv.write_columns ~dir ~name:"fig1_idvg" idvg_columns);
  (* Fig. 4 *)
  let f4 = Exp_fig4.run ~n:(Int.max n 400) ~seed p in
  add
    (Csv.write_columns ~dir ~name:"fig4_scatter"
       [
         ("golden_idsat", f4.golden.idsat);
         ("golden_log10_ioff", f4.golden.log10_ioff);
         ("vs_idsat", f4.vs.idsat);
         ("vs_log10_ioff", f4.vs.log10_ioff);
       ]);
  let ellipse_columns =
    List.concat
      (List.concat_map
         (fun (m : Exp_fig4.model_result) ->
           List.mapi
             (fun i e ->
               let pts = Vstat_stats.Ellipse.points e ~n:72 in
               [
                 ( Printf.sprintf "%s_%dsigma_x" m.label (i + 1),
                   Array.map fst pts );
                 ( Printf.sprintf "%s_%dsigma_y" m.label (i + 1),
                   Array.map snd pts );
               ])
             m.ellipses)
         [ f4.golden; f4.vs ])
  in
  add (Csv.write_columns ~dir ~name:"fig4_ellipses" ellipse_columns);
  (* Fig. 5 *)
  let f5 = Exp_fig5.run ~n ~seed p in
  let delay_columns =
    List.concat_map
      (fun ((size : Exp_fig5.size), (pair : Mc_compare.pair)) ->
        [
          ("golden " ^ size.name, pair.golden);
          ("vs " ^ size.name, pair.vs);
        ])
      f5.results
  in
  add (Csv.write_columns ~dir ~name:"fig5_delays" delay_columns);
  (* Fig. 7 *)
  let f7 = Exp_fig7.run ~n ~seed p in
  let qq_columns =
    List.concat_map
      (fun (r : Exp_fig7.per_vdd) ->
        [
          (Printf.sprintf "normal_quantile_%.2fV" r.vdd, Array.map fst r.qq_vs);
          (Printf.sprintf "vs_delay_%.2fV" r.vdd, Array.map snd r.qq_vs);
        ])
      f7.results
  in
  add (Csv.write_columns ~dir ~name:"fig7_qq" qq_columns);
  (* Fig. 9 *)
  let f9 = Exp_fig9.run ~n ~seed p in
  add
    (Csv.write_columns ~dir ~name:"fig9_butterfly"
       [
         ("read_c1_q", Array.map fst f9.butterfly_read.curve1);
         ("read_c1_qb", Array.map snd f9.butterfly_read.curve1);
         ("read_c2_q", Array.map fst f9.butterfly_read.curve2);
         ("read_c2_qb", Array.map snd f9.butterfly_read.curve2);
         ("hold_c1_q", Array.map fst f9.butterfly_hold.curve1);
         ("hold_c1_qb", Array.map snd f9.butterfly_hold.curve1);
         ("hold_c2_q", Array.map fst f9.butterfly_hold.curve2);
         ("hold_c2_qb", Array.map snd f9.butterfly_hold.curve2);
       ]);
  add
    (Csv.write_columns ~dir ~name:"fig9_snm"
       [
         ("golden_read", f9.read_snm.golden);
         ("vs_read", f9.read_snm.vs);
         ("golden_hold", f9.hold_snm.golden);
         ("vs_hold", f9.hold_snm.vs);
       ]);
  List.rev !paths
