(** Table II — extracted standard-deviation coefficients alpha1..alpha5 from
    the BPV method, NMOS and PMOS, compared against the golden model's
    ground-truth coefficients. *)

type t = {
  extracted_nmos : Vstat_core.Variation.alphas;
  extracted_pmos : Vstat_core.Variation.alphas;
  truth_nmos : Vstat_core.Variation.alphas;
  truth_pmos : Vstat_core.Variation.alphas;
}

val run : Vstat_core.Pipeline.t -> t
val pp : Format.formatter -> t -> unit
