type model_result = {
  label : string;
  idsat : float array;
  log10_ioff : float array;
  ellipses : Vstat_stats.Ellipse.t list;
  coverages : float list;
}

type t = {
  w_nm : float;
  l_nm : float;
  n : int;
  golden : model_result;
  vs : model_result;
  correlation_golden : float;
  correlation_vs : float;
}

let analyze label (s : Vstat_core.Mc_device.samples) =
  let ellipses =
    List.map
      (fun k ->
        Vstat_stats.Ellipse.of_sigma_level ~n_sigma:k s.idsat s.log10_ioff)
      [ 1; 2; 3 ]
  in
  let coverages =
    List.map
      (fun e -> Vstat_stats.Ellipse.coverage e s.idsat s.log10_ioff)
      ellipses
  in
  {
    label;
    idsat = s.idsat;
    log10_ioff = s.log10_ioff;
    ellipses;
    coverages;
  }

let run ?(w_nm = 600.0) ?(n = 1000) ?(seed = 17) (p : Vstat_core.Pipeline.t) =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  let rng = Vstat_util.Rng.create ~seed in
  let b =
    Vstat_core.Mc_device.of_bsim p.golden_nmos ~rng:(Vstat_util.Rng.split rng)
      ~n ~w_nm ~l_nm ~vdd:p.vdd
  in
  let v =
    Vstat_core.Mc_device.of_vs p.vs_nmos ~rng:(Vstat_util.Rng.split rng) ~n
      ~w_nm ~l_nm ~vdd:p.vdd
  in
  {
    w_nm;
    l_nm;
    n;
    golden = analyze "golden" b;
    vs = analyze "vs" v;
    correlation_golden =
      Vstat_stats.Descriptive.correlation b.idsat b.log10_ioff;
    correlation_vs = Vstat_stats.Descriptive.correlation v.idsat v.log10_ioff;
  }

let pp ppf t =
  Format.fprintf ppf
    "Fig.4: Ion vs log10(Ioff) scatter + confidence ellipses (W/L=%.0f/%.0f, n=%d)@\n"
    t.w_nm t.l_nm t.n;
  let describe m =
    Format.fprintf ppf "  %s: mean Ion=%.1f uA  mean log10Ioff=%.3f@\n" m.label
      (1e6 *. Vstat_stats.Descriptive.mean m.idsat)
      (Vstat_stats.Descriptive.mean m.log10_ioff);
    List.iteri
      (fun i (e : Vstat_stats.Ellipse.t) ->
        let a, b = e.axis_lengths in
        Format.fprintf ppf
          "    %dsigma ellipse: axes (%.3g, %.3g) angle %.1f deg  nominal cov %.3f  empirical %.3f@\n"
          (i + 1) a b
          (e.angle *. 180.0 /. Float.pi)
          e.confidence
          (List.nth m.coverages i))
      m.ellipses
  in
  describe t.golden;
  describe t.vs;
  Format.fprintf ppf
    "  corr(Ion, log10Ioff): golden=%.3f  vs=%.3f (strongly coupled via VT)@\n"
    t.correlation_golden t.correlation_vs
