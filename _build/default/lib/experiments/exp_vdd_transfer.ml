type row = {
  vdd : float;
  golden_sigma_idsat : float;
  transfer_sigma_idsat : float;
  reextract_sigma_idsat : float;
  golden_sigma_logioff : float;
  transfer_sigma_logioff : float;
  reextract_sigma_logioff : float;
}

type t = { w_nm : float; l_nm : float; n : int; rows : row list }

let run ?(vdds = [ 0.9; 0.7; 0.55 ]) ?(w_nm = 600.0) ?(n = 1500) ?(seed = 47)
    (p : Vstat_core.Pipeline.t) =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  let rng = Vstat_util.Rng.create ~seed in
  let rows =
    List.map
      (fun vdd ->
        let golden =
          Vstat_core.Mc_device.of_bsim p.golden_nmos
            ~rng:(Vstat_util.Rng.split rng) ~n ~w_nm ~l_nm ~vdd
        in
        (* (a) alphas extracted at the nominal supply, used as-is. *)
        let transfer =
          Vstat_core.Mc_device.of_vs p.vs_nmos
            ~rng:(Vstat_util.Rng.split rng) ~n ~w_nm ~l_nm ~vdd
        in
        (* (b) a fresh BPV at this supply (observations and sensitivities
           both taken at vdd). *)
        let observations =
          List.map
            (fun (w_nm, l_nm) ->
              Vstat_core.Bpv.observe_golden p.golden_nmos
                ~rng:(Vstat_util.Rng.split rng) ~n ~vdd ~w_nm ~l_nm)
            p.geometries
        in
        let options = p.bpv_nmos.options in
        let re =
          Vstat_core.Bpv.extract ~vs:p.vs_nmos ~vdd ~options observations
        in
        let vs_re = { p.vs_nmos with alphas = re.alphas } in
        let reextract =
          Vstat_core.Mc_device.of_vs vs_re ~rng:(Vstat_util.Rng.split rng) ~n
            ~w_nm ~l_nm ~vdd
        in
        let std = Vstat_stats.Descriptive.std in
        {
          vdd;
          golden_sigma_idsat = std golden.idsat;
          transfer_sigma_idsat = std transfer.idsat;
          reextract_sigma_idsat = std reextract.idsat;
          golden_sigma_logioff = std golden.log10_ioff;
          transfer_sigma_logioff = std transfer.log10_ioff;
          reextract_sigma_logioff = std reextract.log10_ioff;
        })
      vdds
  in
  { w_nm; l_nm; n; rows }

let worst_transfer_error t =
  List.fold_left
    (fun acc r ->
      let e1 =
        Float.abs (r.transfer_sigma_idsat -. r.golden_sigma_idsat)
        /. r.golden_sigma_idsat
      in
      let e2 =
        Float.abs (r.transfer_sigma_logioff -. r.golden_sigma_logioff)
        /. r.golden_sigma_logioff
      in
      Float.max acc (Float.max e1 e2))
    0.0 t.rows

let pp ppf t =
  Format.fprintf ppf
    "Ablation: Vdd transfer of the statistical model (NMOS %.0f/%.0f, n=%d)@\n"
    t.w_nm t.l_nm t.n;
  Vstat_util.Floatx.pp_table ppf
    ~header:
      [
        "Vdd"; "sIdsat gold (uA)"; "transfer"; "re-extract";
        "slogIoff gold"; "transfer"; "re-extract";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Printf.sprintf "%.2f" r.vdd;
             Printf.sprintf "%.2f" (1e6 *. r.golden_sigma_idsat);
             Printf.sprintf "%.2f" (1e6 *. r.transfer_sigma_idsat);
             Printf.sprintf "%.2f" (1e6 *. r.reextract_sigma_idsat);
             Printf.sprintf "%.3f" r.golden_sigma_logioff;
             Printf.sprintf "%.3f" r.transfer_sigma_logioff;
             Printf.sprintf "%.3f" r.reextract_sigma_logioff;
           ])
         t.rows);
  Format.fprintf ppf
    "worst transfer error = %.1f%%  (paper: one nominal-Vdd extraction is@\n\
    \ enough; the transfer column should track golden nearly as well as@\n\
    \ the re-extraction column)@\n"
    (100.0 *. worst_transfer_error t)
