type curve = { label : string; points : (float * float) array }

type t = {
  id_vd : (curve * curve) list;
  id_vg : (curve * curve) list;
  rms_log_error : float;
  rms_rel_error : float;
}

let run ?(w_nm = 300.0) (p : Vstat_core.Pipeline.t) =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  let vdd = p.vdd in
  let golden =
    Vstat_core.Bsim_statistical.nominal_device p.golden_nmos ~w_nm ~l_nm
  in
  let vs = Vstat_core.Vs_statistical.nominal_device p.vs_nmos ~w_nm ~l_nm in
  let vds_grid = Vstat_util.Floatx.linspace 0.0 vdd 25 in
  let vgs_grid = Vstat_util.Floatx.linspace 0.0 vdd 25 in
  let id_vd =
    List.map
      (fun frac ->
        let vgs = frac *. vdd in
        let label model = Printf.sprintf "%s Vg=%.2f" model vgs in
        ( { label = label "golden";
            points = Vstat_device.Metrics.id_vd_curve golden ~vgs ~vds_points:vds_grid },
          { label = label "vs";
            points = Vstat_device.Metrics.id_vd_curve vs ~vgs ~vds_points:vds_grid } ))
      [ 0.33; 0.55; 0.78; 1.0 ]
  in
  let id_vg =
    List.map
      (fun vds ->
        let label model = Printf.sprintf "%s Vd=%.2f" model vds in
        ( { label = label "golden";
            points = Vstat_device.Metrics.id_vg_curve golden ~vds ~vgs_points:vgs_grid },
          { label = label "vs";
            points = Vstat_device.Metrics.id_vg_curve vs ~vds ~vgs_points:vgs_grid } ))
      [ 0.05; vdd ]
  in
  {
    id_vd;
    id_vg;
    rms_log_error = p.fit_nmos.rms_log_error;
    rms_rel_error = p.fit_pmos.rms_rel_error;
  }

let pp ppf t =
  Format.fprintf ppf
    "Fig.1: VS fit to golden I-V (NMOS, W=300nm)@\n\
     fit quality: rms log error = %.4f decades, rms rel error = %.4f@\n@\n"
    t.rms_log_error t.rms_rel_error;
  let pp_pair (g, v) =
    let rel_errors =
      Array.map2
        (fun (_, ig) (_, iv) ->
          Float.abs (iv -. ig) /. Float.max (Float.abs ig) 1e-12)
        g.points v.points
    in
    let worst = Array.fold_left Float.max 0.0 rel_errors in
    let spark =
      Vstat_stats.Histogram.sparkline (Array.map snd v.points)
    in
    Format.fprintf ppf "  %-18s |%s| worst rel err vs golden = %5.1f%%@\n"
      v.label spark (100.0 *. worst)
  in
  Format.fprintf ppf "Id-Vd family (VS curves, golden compared pointwise):@\n";
  List.iter pp_pair t.id_vd;
  Format.fprintf ppf "Id-Vg transfer (log-axis comparison):@\n";
  List.iter
    (fun (g, v) ->
      let log_errors =
        Array.map2
          (fun (_, ig) (_, iv) ->
            Float.abs
              (Vstat_util.Floatx.log10_safe iv -. Vstat_util.Floatx.log10_safe ig))
          g.points v.points
      in
      let worst = Array.fold_left Float.max 0.0 log_errors in
      let spark =
        Vstat_stats.Histogram.sparkline
          (Array.map (fun (_, i) -> Vstat_util.Floatx.log10_safe i) v.points)
      in
      Format.fprintf ppf "  %-18s |%s| worst log10 err = %.3f decades@\n"
        v.label spark worst)
    t.id_vg
