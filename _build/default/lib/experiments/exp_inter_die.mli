(** Extension — inter-die plus within-die variation (paper eq. (1)).

    Samples INV FO3 delays under (a) within-die mismatch only and
    (b) within-die mismatch composed with a shared per-die global shift,
    then recovers the implied inter-die sigma by variance subtraction. *)

type t = {
  n_dies : int;
  per_die : int;
  within_delays : float array;
  total_delays : float array;
  sigma_within : float;
  sigma_total : float;
  sigma_inter_implied : float;  (** via variance subtraction, eq. (1) *)
}

val run :
  ?n_dies:int -> ?per_die:int -> ?seed:int ->
  ?spec:Vstat_core.Inter_die.t ->
  Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit
