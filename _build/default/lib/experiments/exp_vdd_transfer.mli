(** Ablation — Vdd transferability of the statistical extraction.

    The paper's claim (Sec. I and IV-B): BPV is run once at the nominal
    Vdd, yet "the resulting statistical model is valid over a whole range
    of Vdd's" — unlike PSP-style statistical models that need extra
    variance terms per bias point.  This experiment measures device-metric
    sigmas at reduced supplies using (a) the alphas extracted at nominal
    Vdd and (b) alphas re-extracted at the reduced Vdd, against golden
    Monte Carlo truth at that Vdd. *)

type row = {
  vdd : float;
  golden_sigma_idsat : float;
  transfer_sigma_idsat : float;     (** VS MC, alphas from nominal Vdd *)
  reextract_sigma_idsat : float;    (** VS MC, alphas re-extracted at vdd *)
  golden_sigma_logioff : float;
  transfer_sigma_logioff : float;
  reextract_sigma_logioff : float;
}

type t = { w_nm : float; l_nm : float; n : int; rows : row list }

val run :
  ?vdds:float list -> ?w_nm:float -> ?n:int -> ?seed:int ->
  Vstat_core.Pipeline.t -> t

val pp : Format.formatter -> t -> unit

val worst_transfer_error : t -> float
(** Largest relative sigma error of the transferred (nominal-Vdd) alphas. *)
