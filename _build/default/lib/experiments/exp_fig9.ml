type t = {
  n : int;
  butterfly_read : Vstat_cells.Sram6t.butterfly;
  butterfly_hold : Vstat_cells.Sram6t.butterfly;
  read_snm : Mc_compare.pair;
  hold_snm : Mc_compare.pair;
  hold_qq_r2_vs : float;
  hold_qq_vs : (float * float) array;
}

let run ?(n = 500) ?(seed = 41) (p : Vstat_core.Pipeline.t) =
  (* One representative VS sample for the butterfly plots. *)
  let rng = Vstat_util.Rng.create ~seed:(seed + 100) in
  let tech = Vstat_core.Techs.stochastic_vs p ~rng ~vdd:p.vdd in
  let cell = Vstat_cells.Sram6t.sample tech in
  let butterfly_read =
    Vstat_cells.Sram6t.butterfly cell ~mode:Vstat_cells.Sram6t.Read
  in
  let butterfly_hold =
    Vstat_cells.Sram6t.butterfly cell ~mode:Vstat_cells.Sram6t.Hold
  in
  let snm_measure mode tech =
    Vstat_cells.Sram6t.snm (Vstat_cells.Sram6t.sample tech) ~mode
  in
  let read_snm =
    Mc_compare.run p ~label:"SRAM READ SNM" ~vdd:p.vdd ~n ~seed
      ~measure:(snm_measure Vstat_cells.Sram6t.Read)
  in
  let hold_snm =
    Mc_compare.run p ~label:"SRAM HOLD SNM" ~vdd:p.vdd ~n ~seed:(seed + 1)
      ~measure:(snm_measure Vstat_cells.Sram6t.Hold)
  in
  {
    n;
    butterfly_read;
    butterfly_hold;
    read_snm;
    hold_snm;
    hold_qq_r2_vs = Vstat_stats.Qq.linearity_r2 hold_snm.vs;
    hold_qq_vs = Vstat_stats.Qq.against_normal hold_snm.vs;
  }

let pp ppf t =
  Format.fprintf ppf "Fig.9: 6T SRAM noise margins, %d MC samples per model@\n"
    t.n;
  let pp_butterfly label (b : Vstat_cells.Sram6t.butterfly) =
    let snm = Vstat_cells.Sram6t.snm_of_butterfly b in
    Format.fprintf ppf "  %s butterfly (one VS sample): SNM = %.1f mV@\n" label
      (snm *. 1e3);
    let spark curve =
      Vstat_stats.Histogram.sparkline (Array.map snd curve)
    in
    Format.fprintf ppf "    curve1 |%s|@\n    curve2 |%s|@\n" (spark b.curve1)
      (spark b.curve2)
  in
  pp_butterfly "READ" t.butterfly_read;
  pp_butterfly "HOLD" t.butterfly_hold;
  Mc_compare.pp_pair ppf t.read_snm;
  Mc_compare.pp_pair ppf t.hold_snm;
  Format.fprintf ppf "  HOLD SNM qq R2 (vs) = %.4f (slightly non-Gaussian)@\n"
    t.hold_qq_r2_vs
