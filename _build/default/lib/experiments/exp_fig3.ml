type row = {
  w_nm : float;
  total_pct : float;
  predicted_pct : float;
  vt0_pct : float;
  geometry_pct : float;
  mu_pct : float;
  cinv_pct : float;
}

type t = { l_nm : float; rows : row list }

let run ?(widths = [ 120.0; 300.0; 600.0; 1000.0; 1500.0 ]) ?(n = 1500)
    ?(seed = 11) (p : Vstat_core.Pipeline.t) =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  let rng = Vstat_util.Rng.create ~seed in
  let rows =
    List.map
      (fun w_nm ->
        let samples =
          Vstat_core.Mc_device.of_vs p.vs_nmos ~rng ~n ~w_nm ~l_nm ~vdd:p.vdd
        in
        let mean = Vstat_stats.Descriptive.mean samples.idsat in
        let total_pct =
          100.0 *. Vstat_stats.Descriptive.std samples.idsat /. mean
        in
        let contributions =
          Vstat_core.Bpv.contribution_breakdown ~vs:p.vs_nmos
            ~alphas:p.bpv_nmos.alphas ~vdd:p.vdd ~w_nm ~l_nm
            Vstat_core.Sensitivity.Idsat
        in
        let get param =
          match List.assoc_opt param contributions with
          | Some c -> 100.0 *. c /. mean
          | None -> 0.0
        in
        let predicted =
          Vstat_core.Bpv.predicted_sigma ~vs:p.vs_nmos
            ~alphas:p.bpv_nmos.alphas ~vdd:p.vdd ~w_nm ~l_nm
            Vstat_core.Sensitivity.Idsat
        in
        {
          w_nm;
          total_pct;
          predicted_pct = 100.0 *. predicted /. mean;
          vt0_pct = get `Vt0;
          geometry_pct = Float.hypot (get `L) (get `W);
          mu_pct = get `Mu;
          cinv_pct = get `Cinv;
        })
      widths
  in
  { l_nm; rows }

let pp ppf t =
  Format.fprintf ppf
    "Fig.3: Idsat mismatch and process-parameter contributions (L=%.0fnm)@\n"
    t.l_nm;
  Vstat_util.Floatx.pp_table ppf
    ~header:
      [ "W (nm)"; "sigma/mu %"; "pred %"; "VT0 %"; "L&W %"; "mu %"; "Cinv %" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Printf.sprintf "%.0f" r.w_nm;
             Printf.sprintf "%.2f" r.total_pct;
             Printf.sprintf "%.2f" r.predicted_pct;
             Printf.sprintf "%.2f" r.vt0_pct;
             Printf.sprintf "%.2f" r.geometry_pct;
             Printf.sprintf "%.2f" r.mu_pct;
             Printf.sprintf "%.2f" r.cinv_pct;
           ])
         t.rows)
