lib/experiments/csv.mli:
