lib/experiments/exp_table3.mli: Format Vstat_core
