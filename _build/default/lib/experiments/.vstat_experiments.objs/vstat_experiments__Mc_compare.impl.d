lib/experiments/mc_compare.ml: Array Format List Logs Printexc Printf Vstat_core Vstat_stats Vstat_util
