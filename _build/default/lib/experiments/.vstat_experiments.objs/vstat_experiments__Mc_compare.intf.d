lib/experiments/mc_compare.mli: Format Vstat_cells Vstat_core
