lib/experiments/exp_vdd_transfer.mli: Format Vstat_core
