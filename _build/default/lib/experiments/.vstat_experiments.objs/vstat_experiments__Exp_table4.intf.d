lib/experiments/exp_table4.mli: Format Vstat_core
