lib/experiments/exp_fig9.mli: Format Mc_compare Vstat_cells Vstat_core
