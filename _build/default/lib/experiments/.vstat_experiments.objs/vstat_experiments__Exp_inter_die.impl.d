lib/experiments/exp_inter_die.ml: Array Format Vstat_cells Vstat_core Vstat_stats Vstat_util
