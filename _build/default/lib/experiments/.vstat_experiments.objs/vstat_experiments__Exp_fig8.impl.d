lib/experiments/exp_fig8.ml: Format Mc_compare Vstat_cells Vstat_core
