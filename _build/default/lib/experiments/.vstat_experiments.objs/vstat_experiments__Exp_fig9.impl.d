lib/experiments/exp_fig9.ml: Array Format Mc_compare Vstat_cells Vstat_core Vstat_stats Vstat_util
