lib/experiments/exp_fig2.ml: Float Format List Printf Vstat_core Vstat_util
