lib/experiments/exp_fig3.mli: Format Vstat_core
