lib/experiments/exp_fig1.ml: Array Float Format List Printf Vstat_core Vstat_device Vstat_stats Vstat_util
