lib/experiments/exp_ssta.mli: Format Vstat_core
