lib/experiments/exp_fig4.mli: Format Vstat_core Vstat_stats
