lib/experiments/exp_table2.mli: Format Vstat_core
