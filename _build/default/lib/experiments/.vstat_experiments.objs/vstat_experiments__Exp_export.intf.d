lib/experiments/exp_export.mli: Vstat_core
