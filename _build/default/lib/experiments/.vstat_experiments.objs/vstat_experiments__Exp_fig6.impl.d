lib/experiments/exp_fig6.ml: Format List Mc_compare Vstat_cells Vstat_core Vstat_stats
