lib/experiments/exp_table3.ml: Float Format List Printf Vstat_core Vstat_device Vstat_stats Vstat_util
