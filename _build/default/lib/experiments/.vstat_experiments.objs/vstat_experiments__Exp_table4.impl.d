lib/experiments/exp_table4.ml: Float Format Gc List Printf Unix Vstat_cells Vstat_circuit Vstat_core Vstat_device Vstat_util
