lib/experiments/exp_vdd_transfer.ml: Float Format List Printf Vstat_core Vstat_device Vstat_stats Vstat_util
