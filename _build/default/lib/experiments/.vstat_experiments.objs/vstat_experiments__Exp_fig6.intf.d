lib/experiments/exp_fig6.mli: Format Mc_compare Vstat_core
