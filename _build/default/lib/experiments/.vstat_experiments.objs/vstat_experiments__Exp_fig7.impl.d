lib/experiments/exp_fig7.ml: Format List Mc_compare Printf Vstat_cells Vstat_core Vstat_stats
