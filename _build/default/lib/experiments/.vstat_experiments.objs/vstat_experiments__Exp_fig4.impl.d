lib/experiments/exp_fig4.ml: Float Format List Vstat_core Vstat_device Vstat_stats Vstat_util
