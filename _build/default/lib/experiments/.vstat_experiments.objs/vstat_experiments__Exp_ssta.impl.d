lib/experiments/exp_ssta.ml: Array Float Format List Logs Printexc Printf Vstat_cells Vstat_core Vstat_stats Vstat_util
