lib/experiments/exp_fig8.mli: Format Mc_compare Vstat_core
