lib/experiments/exp_export.ml: Array Csv Exp_fig1 Exp_fig4 Exp_fig5 Exp_fig7 Exp_fig9 Int List Mc_compare Printf Vstat_stats
