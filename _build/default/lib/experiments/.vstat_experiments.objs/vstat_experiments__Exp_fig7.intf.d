lib/experiments/exp_fig7.mli: Format Mc_compare Vstat_core
