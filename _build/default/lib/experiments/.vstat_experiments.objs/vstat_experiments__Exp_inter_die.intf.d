lib/experiments/exp_inter_die.mli: Format Vstat_core
