lib/experiments/csv.ml: Array Filename Fun Int List Printf String Sys
