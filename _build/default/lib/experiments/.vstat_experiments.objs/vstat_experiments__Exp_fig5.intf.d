lib/experiments/exp_fig5.mli: Format Mc_compare Vstat_core
