lib/experiments/exp_fig2.mli: Format Vstat_core
