lib/experiments/exp_fig5.ml: Format List Mc_compare Vstat_cells Vstat_core
