lib/experiments/exp_fig1.mli: Format Vstat_core
