lib/experiments/exp_table2.ml: Format Printf Vstat_core Vstat_util
