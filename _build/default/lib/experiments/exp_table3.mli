(** Table III — Monte Carlo standard deviations of Idsat and log10(Ioff)
    for wide/medium/short devices, statistical VS vs golden model, both
    polarities. *)

type entry = {
  label : string;       (** Wide / Medium / Short *)
  w_nm : float;
  l_nm : float;
  polarity : [ `N | `P ];
  bsim_sigma_idsat : float;   (** A *)
  vs_sigma_idsat : float;
  bsim_sigma_logioff : float;
  vs_sigma_logioff : float;
}

type t = { n : int; entries : entry list }

val run : ?n:int -> ?seed:int -> Vstat_core.Pipeline.t -> t
val pp : Format.formatter -> t -> unit

val worst_rel_diff : t -> float
(** Largest relative sigma disagreement across all entries/metrics. *)
