type model_scatter = {
  label : string;
  leakage : float array;
  frequency : float array;
  leakage_spread : float;
  freq_spread_pct : float;
}

type t = {
  n : int;
  golden : model_scatter;
  vs : model_scatter;
  leakage_pair : Mc_compare.pair;
  frequency_pair : Mc_compare.pair;
}

let scatter_of label leakage frequency =
  let lo_l, hi_l = Vstat_stats.Descriptive.min_max leakage in
  let lo_f, hi_f = Vstat_stats.Descriptive.min_max frequency in
  {
    label;
    leakage;
    frequency;
    leakage_spread = hi_l /. lo_l;
    freq_spread_pct =
      100.0 *. (hi_f -. lo_f) /. Vstat_stats.Descriptive.mean frequency;
  }

let run ?(wp_nm = 600.0) ?(wn_nm = 300.0) ?(n = 600) ?(seed = 29)
    (p : Vstat_core.Pipeline.t) =
  let measure tech =
    let s = Vstat_cells.Inverter.sample tech ~wp_nm ~wn_nm ~fanout:3 in
    let r = Vstat_cells.Inverter.measure s in
    [ r.leakage; 1.0 /. r.tpd ]
  in
  match
    Mc_compare.run_many p ~label:"INV FO3" ~vdd:p.vdd ~n ~seed ~measure
  with
  | [ leakage_pair; frequency_pair ] ->
    {
      n;
      golden =
        scatter_of "golden" leakage_pair.golden frequency_pair.golden;
      vs = scatter_of "vs" leakage_pair.vs frequency_pair.vs;
      leakage_pair = { leakage_pair with label = "INV FO3 leakage" };
      frequency_pair = { frequency_pair with label = "INV FO3 frequency" };
    }
  | _ -> assert false

let pp ppf t =
  Format.fprintf ppf
    "Fig.6: leakage vs frequency scatter, INV FO3, %d MC samples per model@\n"
    t.n;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  %s: leakage spread = %.1fx   frequency spread = %.1f%% of mean@\n"
        s.label s.leakage_spread s.freq_spread_pct)
    [ t.golden; t.vs ];
  Mc_compare.pp_pair ppf t.leakage_pair;
  Mc_compare.pp_pair ppf t.frequency_pair
