(** Export the figure data series to CSV files for external plotting
    (one file per figure panel; see the returned manifest). *)

val write_all :
  dir:string -> ?n:int -> ?seed:int -> Vstat_core.Pipeline.t -> string list
(** Runs the series-producing experiments at a moderate sample count
    (default 300) and writes:

    - [fig1_idvd.csv], [fig1_idvg.csv] — I–V curves, golden and VS;
    - [fig4_scatter.csv], [fig4_ellipses.csv] — Ion/Ioff clouds + 3 ellipses;
    - [fig5_delays.csv] — INV FO3 delay samples per size and model;
    - [fig7_qq.csv] — VS delay Q–Q series per supply;
    - [fig9_butterfly.csv], [fig9_snm.csv] — butterfly curves + SNM samples.

    Returns the list of written paths. *)
