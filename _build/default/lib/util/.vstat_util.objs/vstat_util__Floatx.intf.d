lib/util/floatx.mli: Format
