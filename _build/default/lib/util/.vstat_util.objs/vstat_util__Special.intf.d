lib/util/special.mli:
