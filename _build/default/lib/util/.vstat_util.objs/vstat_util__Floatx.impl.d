lib/util/floatx.ml: Array Float Format Int List String
