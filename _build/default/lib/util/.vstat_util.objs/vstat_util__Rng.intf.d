lib/util/rng.mli:
