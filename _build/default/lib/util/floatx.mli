(** Small floating-point helpers shared across the library. *)

val close : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [close a b] holds when |a - b| <= atol + rtol * max(|a|, |b|).
    Defaults: rtol = 1e-9, atol = 1e-12. *)

val clamp : lo:float -> hi:float -> float -> float
(** Restrict a value to [lo, hi]. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b] inclusive.
    [n] must be >= 2. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] points spaced evenly in log10 from 10^a to 10^b. *)

val interp_linear : xs:float array -> ys:float array -> float -> float
(** Piecewise-linear interpolation of the sampled function (xs, ys) at a
    point; [xs] must be strictly increasing.  Extrapolates linearly from the
    end segments. *)

val first_crossing :
  xs:float array -> ys:float array -> level:float -> rising:bool -> float option
(** [first_crossing ~xs ~ys ~level ~rising] is the abscissa at which the
    sampled waveform first crosses [level] in the requested direction,
    located by linear interpolation inside the bracketing segment. *)

val log10_safe : float -> float
(** log10 clamped away from non-positive arguments (returns log10 of a tiny
    positive floor instead of nan/-inf), used for [log10 Ioff] metrics. *)

val softplus : float -> float
(** Numerically-stable ln(1 + exp x): linear for large x, exp for small. *)

val pp_table :
  Format.formatter -> header:string list -> rows:string list list -> unit
(** Render an aligned ASCII table (used by the experiment CLI). *)
