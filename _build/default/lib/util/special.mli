(** Special functions needed by the statistics substrate.

    Implemented from standard rational approximations (Abramowitz & Stegun;
    Acklam's inverse normal CDF) — accurate to well below the Monte Carlo
    noise floor of any experiment in this repository. *)

val erf : float -> float
(** Error function, |error| < 1.5e-7. *)

val erfc : float -> float
(** Complementary error function. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_pdf : float -> float
(** Standard normal probability density function. *)

val normal_quantile : float -> float
(** [normal_quantile p] is the inverse standard normal CDF for
    [p] in (0, 1); relative error < 1.15e-9 (Acklam's algorithm with one
    Halley refinement step).
    @raise Invalid_argument if [p] is outside (0, 1). *)

val log_gamma : float -> float
(** Natural log of the Gamma function (Lanczos), for x > 0. *)

val chi2_quantile : p:float -> dof:int -> float
(** Quantile of the chi-square distribution (used for confidence-ellipse
    scaling, e.g. dof = 2 for bivariate ellipses).  Computed by
    Newton–bisection on the regularized lower incomplete gamma. *)
