(** Circuit netlist builder.

    Nodes are created by name ("vdd", "out", …); the reserved name "0" (or
    {!ground}) is the reference node.  Elements reference nodes by the
    handles returned from {!node}.  The builder is mutable; once handed to
    the engine the structure is treated as frozen. *)

type node
(** Opaque node handle. *)

type t

type element =
  | Resistor of { name : string; a : node; b : node; ohms : float }
  | Capacitor of { name : string; a : node; b : node; farads : float }
  | Vsource of { name : string; plus : node; minus : node; wave : Waveform.t }
  | Isource of { name : string; from_ : node; to_ : node; wave : Waveform.t }
      (** Positive current flows from [from_] to [to_] through the source. *)
  | Mosfet of {
      name : string;
      d : node;
      g : node;
      s : node;
      b : node;
      dev : Vstat_device.Device_model.t;
    }

val create : unit -> t

val ground : t -> node
(** The reference node (0 V by definition). *)

val node : t -> string -> node
(** Get or create a named node. *)

val node_name : t -> node -> string
val node_index : node -> int
(** 0 for ground, 1.. for unknowns (engine use). *)

val resistor : t -> string -> a:node -> b:node -> ohms:float -> unit
val capacitor : t -> string -> a:node -> b:node -> farads:float -> unit
val vsource : t -> string -> plus:node -> minus:node -> wave:Waveform.t -> unit
val isource : t -> string -> from_:node -> to_:node -> wave:Waveform.t -> unit

val mosfet :
  t -> string ->
  d:node -> g:node -> s:node -> b:node ->
  dev:Vstat_device.Device_model.t -> unit

val elements : t -> element list
(** Elements in insertion order. *)

val node_count : t -> int
(** Number of non-ground nodes. *)

val vsource_names : t -> string list
(** Voltage-source names in insertion order (their branch currents are part
    of the MNA solution vector, in this order). *)

val find_node : t -> string -> node option

val all_nodes : t -> (string * node) list
(** Every non-ground node with its primary name, in creation order. *)
