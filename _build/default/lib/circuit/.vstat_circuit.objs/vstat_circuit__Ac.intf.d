lib/circuit/ac.mli: Complex Engine Netlist
