lib/circuit/netlist.ml: List Printf Vstat_device Waveform
