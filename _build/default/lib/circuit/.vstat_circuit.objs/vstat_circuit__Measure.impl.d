lib/circuit/measure.ml: Array Engine Float Int Vstat_util
