lib/circuit/engine.ml: Array Float Int List Netlist Printf Vstat_device Vstat_linalg Vstat_util Waveform
