lib/circuit/engine.mli: Netlist Vstat_linalg
