lib/circuit/measure.mli: Engine
