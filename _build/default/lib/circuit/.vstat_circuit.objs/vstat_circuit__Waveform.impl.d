lib/circuit/waveform.ml: Array Float Vstat_util
