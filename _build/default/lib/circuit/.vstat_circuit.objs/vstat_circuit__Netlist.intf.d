lib/circuit/netlist.mli: Vstat_device Waveform
