lib/circuit/ac.ml: Array Complex Engine Float List Netlist Vstat_linalg
