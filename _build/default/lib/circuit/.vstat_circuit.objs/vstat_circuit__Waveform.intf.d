lib/circuit/waveform.mli:
