lib/circuit/spice_parser.ml: Array Char Fun Hashtbl In_channel List Netlist Printf String Vstat_device Waveform
