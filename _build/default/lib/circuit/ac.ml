type point = { freq_hz : float; response : Complex.t array }
type t = { points : point list; source : string }

let sweep engine ~op ~source ~freqs_hz =
  let g, c = Engine.linearize engine op in
  let n = Vstat_linalg.Matrix.rows g in
  (* The AC excitation appears on the RHS of the excited source's branch
     row: the constraint row reads v+ - v- - V = 0, so a unit AC amplitude
     puts 1 in that row. *)
  let row = Engine.branch_row engine source in
  let b = Array.make n Complex.zero in
  b.(row) <- Complex.one;
  let points =
    Array.to_list
      (Array.map
         (fun freq_hz ->
           let omega = 2.0 *. Float.pi *. freq_hz in
           let a = Vstat_linalg.Cmatrix.combine ~g ~c ~omega in
           { freq_hz; response = Vstat_linalg.Cmatrix.solve a b })
         freqs_hz)
  in
  { points; source }

let node_transfer _engine t node =
  let i = Netlist.node_index node in
  Array.of_list
    (List.map
       (fun p ->
         let v = if i = 0 then Complex.zero else p.response.(i - 1) in
         (p.freq_hz, v))
       t.points)

let magnitude_db h = 20.0 *. log10 (Float.max (Complex.norm h) 1e-300)

let phase_deg h = Complex.arg h *. 180.0 /. Float.pi

let corner_frequency engine t node =
  let series = node_transfer engine t node in
  if Array.length series = 0 then None
  else begin
    let reference = magnitude_db (snd series.(0)) in
    let target = reference -. 3.0103 in
    let rec scan i =
      if i >= Array.length series - 1 then None
      else begin
        let f0, h0 = series.(i) and f1, h1 = series.(i + 1) in
        let m0 = magnitude_db h0 and m1 = magnitude_db h1 in
        if m0 > target && m1 <= target then begin
          (* log-frequency interpolation *)
          let frac = (m0 -. target) /. (m0 -. m1) in
          Some (10.0 ** (log10 f0 +. (frac *. (log10 f1 -. log10 f0))))
        end
        else scan (i + 1)
      end
    in
    scan 0
  end
