(** Modified-nodal-analysis solver: Newton–Raphson DC and transient.

    The solution vector stacks node voltages (nodes 1..N) followed by the
    branch currents of voltage sources (in netlist insertion order).
    Nonlinear devices are linearized each Newton iteration with one-sided
    finite differences of their current and terminal charges; convergence
    aids are a gmin floor, gmin stepping and source stepping. *)

type t
(** Compiled system (frozen netlist + index maps + workspaces). *)

exception No_convergence of string

val compile : Netlist.t -> t

val unknowns : t -> int
(** Size of the MNA solution vector. *)

type op = {
  x : float array;       (** converged solution vector *)
  time : float;          (** time at which sources were evaluated *)
}

val dc : ?guess:float array -> ?time:float -> t -> op
(** Operating point.  Tries direct Newton from [guess] (default: all zeros),
    then gmin stepping, then source stepping.
    @raise No_convergence if every strategy fails. *)

val voltage : t -> op -> Netlist.node -> float
val source_current : t -> op -> string -> float
(** Branch current of a named voltage source (positive current flows into
    the [plus] terminal through the source toward [minus]).
    @raise Not_found for unknown names. *)

type trace = {
  times : float array;
  states : float array array;  (** states.(k) is the solution at times.(k) *)
}

val transient :
  ?trap:bool ->
  ?dt_min_factor:float ->
  t -> tstop:float -> dt:float -> trace
(** Integrate from a t=0 operating point to [tstop] with maximum step [dt]
    (backward Euler by default, trapezoidal when [trap]).  The step is
    halved on Newton failure (down to [dt * dt_min_factor], default 1/256)
    and grown back on easy convergence.
    @raise No_convergence if a step fails at the minimum size. *)

val node_wave : t -> trace -> Netlist.node -> float array
val source_current_wave : t -> trace -> string -> float array

val residual_norm : t -> op -> float
(** Largest |KCL/constraint residual| of a DC solution — a direct measure of
    solve quality (well-converged operating points sit near 1e-12). *)

val branch_row : t -> string -> int
(** Index of a voltage source's branch-constraint row/column in the MNA
    system (used by {!Ac} to place the excitation).
    @raise Not_found for unknown names. *)

val linearize : t -> op -> Vstat_linalg.Matrix.t * Vstat_linalg.Matrix.t
(** [linearize t op] is the small-signal (G, C) pair at the operating
    point: G is the conductance Jacobian, C the charge Jacobian, both over
    the full MNA unknown vector.  The AC system at angular frequency omega
    is (G + j omega C); see {!Ac}. *)

val stats_newton_iterations : t -> int
(** Cumulative Newton iterations since [compile] — the workload counter the
    runtime comparison (paper Table IV) normalizes against. *)

val stats_model_evaluations : t -> int
(** Cumulative compact-model evaluations since [compile]. *)
