(** Time-dependent source values for independent V/I sources. *)

type pulse_shape = {
  low : float;
  high : float;
  delay : float;     (** time the first edge starts, s *)
  rise : float;      (** rise time, s *)
  fall : float;      (** fall time, s *)
  width : float;     (** time spent at [high] between edges, s *)
  period : float;    (** repetition period; 0 or less = single pulse *)
}

type t =
  | Dc of float
      (** Constant value. *)
  | Var of float ref
      (** Mutable constant — the handle used by DC sweeps, which update the
          ref between operating-point solves. *)
  | Pulse of pulse_shape
  | Pwl of (float * float) array
      (** Piecewise-linear (time, value) points, times ascending; clamps to
          the end values outside the covered range. *)
  | Sine of sine_shape

and sine_shape = {
  offset : float;
  amplitude : float;
  freq_hz : float;
  phase : float;  (** radians *)
}

val value : t -> float -> float
(** Evaluate at a time (negative times clamp to the initial value). *)

val step : ?delay:float -> ?rise:float -> low:float -> high:float -> unit -> t
(** Single rising edge: low until [delay], then a linear ramp of duration
    [rise] (default 10 ps) to [high]. *)

val falling_step : ?delay:float -> ?fall:float -> high:float -> low:float -> unit -> t
