type pulse_shape = {
  low : float;
  high : float;
  delay : float;
  rise : float;
  fall : float;
  width : float;
  period : float;
}

type t =
  | Dc of float
  | Var of float ref
  | Pulse of pulse_shape
  | Pwl of (float * float) array
  | Sine of sine_shape

and sine_shape = {
  offset : float;
  amplitude : float;
  freq_hz : float;
  phase : float;
}

let pulse_value p time =
  let t = time -. p.delay in
  if t < 0.0 then p.low
  else begin
    let t = if p.period > 0.0 then Float.rem t p.period else t in
    if t < p.rise then p.low +. ((p.high -. p.low) *. t /. p.rise)
    else if t < p.rise +. p.width then p.high
    else if t < p.rise +. p.width +. p.fall then
      p.high -. ((p.high -. p.low) *. (t -. p.rise -. p.width) /. p.fall)
    else p.low
  end

let pwl_value points time =
  let n = Array.length points in
  if n = 0 then invalid_arg "Waveform.Pwl: empty point list";
  let t0, v0 = points.(0) in
  let tn, vn = points.(n - 1) in
  if time <= t0 then v0
  else if time >= tn then vn
  else begin
    let xs = Array.map fst points and ys = Array.map snd points in
    Vstat_util.Floatx.interp_linear ~xs ~ys time
  end

let value t time =
  match t with
  | Dc v -> v
  | Var r -> !r
  | Pulse p -> pulse_value p time
  | Pwl points -> pwl_value points time
  | Sine s ->
    s.offset +. (s.amplitude *. sin ((2.0 *. Float.pi *. s.freq_hz *. time) +. s.phase))

let step ?(delay = 0.0) ?(rise = 10e-12) ~low ~high () =
  Pwl [| (delay, low); (delay +. rise, high) |]

let falling_step ?(delay = 0.0) ?(fall = 10e-12) ~high ~low () =
  Pwl [| (delay, high); (delay +. fall, low) |]
