exception No_convergence of string

type mode = Dc | Tran of { h : float; trap : bool }

type t = {
  elems : Netlist.element array;
  nn : int;                          (* node-voltage unknowns *)
  nv : int;                          (* vsource branch unknowns *)
  vsrc_index : (string * int) list;  (* source name -> branch slot *)
  charge_offset : int array;         (* per element; -1 = no charge state *)
  n_charges : int;
  mutable newton_iters : int;
  mutable model_evals : int;
}

let compile netlist =
  let elems = Array.of_list (Netlist.elements netlist) in
  let nn = Netlist.node_count netlist in
  let charge_offset = Array.make (Array.length elems) (-1) in
  let n_charges = ref 0 in
  let nv = ref 0 in
  let vsrc_index = ref [] in
  Array.iteri
    (fun k e ->
      match e with
      | Netlist.Capacitor _ ->
        charge_offset.(k) <- !n_charges;
        n_charges := !n_charges + 1
      | Netlist.Mosfet _ ->
        charge_offset.(k) <- !n_charges;
        n_charges := !n_charges + 4
      | Netlist.Vsource { name; _ } ->
        vsrc_index := (name, !nv) :: !vsrc_index;
        incr nv
      | Netlist.Resistor _ | Netlist.Isource _ -> ())
    elems;
  {
    elems;
    nn;
    nv = !nv;
    vsrc_index = List.rev !vsrc_index;
    charge_offset;
    n_charges = !n_charges;
    newton_iters = 0;
    model_evals = 0;
  }

let unknowns t = t.nn + t.nv

let fd_dv = 1e-6

(* Voltage of a node handle under candidate solution [x]. *)
let nodev x n =
  let i = Netlist.node_index n in
  if i = 0 then 0.0 else x.(i - 1)

(* Assemble Jacobian and residual at candidate [x]; also writes the present
   element charges into [q_out] and (in transient) terminal currents into
   [i_out] so the accepted solution can become the next step's state. *)
let assemble t ~mode ~time ~x ~q_prev ~i_prev ~gmin ~sscale ~jac ~res ~q_out
    ~i_out =
  let nn = t.nn in
  Vstat_linalg.Matrix.fill jac 0.0;
  Array.fill res 0 (Array.length res) 0.0;
  for i = 0 to nn - 1 do
    Vstat_linalg.Matrix.add_to jac i i gmin;
    res.(i) <- res.(i) +. (gmin *. x.(i))
  done;
  (* Stamp a current [i] leaving node [n] with its derivatives. *)
  let res_add n v =
    let i = Netlist.node_index n in
    if i > 0 then res.(i - 1) <- res.(i - 1) +. v
  in
  let jac_add n col v =
    let i = Netlist.node_index n in
    if i > 0 then Vstat_linalg.Matrix.add_to jac (i - 1) col v
  in
  let jac_add_node n ncol v =
    let j = Netlist.node_index ncol in
    if j > 0 then jac_add n (j - 1) v
  in
  let branch = ref 0 in
  Array.iteri
    (fun k e ->
      match e with
      | Netlist.Resistor { a; b; ohms; _ } ->
        let g = 1.0 /. ohms in
        let i = g *. (nodev x a -. nodev x b) in
        res_add a i;
        res_add b (-.i);
        jac_add_node a a g;
        jac_add_node a b (-.g);
        jac_add_node b a (-.g);
        jac_add_node b b g
      | Netlist.Capacitor { a; b; farads; _ } ->
        let q = farads *. (nodev x a -. nodev x b) in
        let off = t.charge_offset.(k) in
        q_out.(off) <- q;
        (match mode with
        | Dc -> i_out.(off) <- 0.0
        | Tran { h; trap } ->
          let factor = (if trap then 2.0 else 1.0) /. h in
          let i =
            (factor *. (q -. q_prev.(off)))
            -. (if trap then i_prev.(off) else 0.0)
          in
          i_out.(off) <- i;
          let geq = factor *. farads in
          res_add a i;
          res_add b (-.i);
          jac_add_node a a geq;
          jac_add_node a b (-.geq);
          jac_add_node b a (-.geq);
          jac_add_node b b geq)
      | Netlist.Vsource { plus; minus; wave; _ } ->
        let col = nn + !branch in
        let row = nn + !branch in
        incr branch;
        let ibr = x.(col) in
        res_add plus ibr;
        res_add minus (-.ibr);
        jac_add plus col 1.0;
        jac_add minus col (-1.0);
        res.(row) <-
          nodev x plus -. nodev x minus -. (sscale *. Waveform.value wave time);
        let stamp_row n v =
          let j = Netlist.node_index n in
          if j > 0 then Vstat_linalg.Matrix.add_to jac row (j - 1) v
        in
        stamp_row plus 1.0;
        stamp_row minus (-1.0)
      | Netlist.Isource { from_; to_; wave; _ } ->
        let i = sscale *. Waveform.value wave time in
        res_add from_ i;
        res_add to_ (-.i)
      | Netlist.Mosfet { d; g; s; b; dev; _ } ->
        let vg = nodev x g and vd = nodev x d and vs = nodev x s
        and vb = nodev x b in
        let eval ~vg ~vd ~vs ~vb =
          t.model_evals <- t.model_evals + 1;
          dev.Vstat_device.Device_model.eval ~vg ~vd ~vs ~vb
        in
        let base = eval ~vg ~vd ~vs ~vb in
        let perturbed =
          [|
            eval ~vg:(vg +. fd_dv) ~vd ~vs ~vb;
            eval ~vg ~vd:(vd +. fd_dv) ~vs ~vb;
            eval ~vg ~vd ~vs:(vs +. fd_dv) ~vb;
            eval ~vg ~vd ~vs ~vb:(vb +. fd_dv);
          |]
        in
        let terminals = [| g; d; s; b |] in
        (* Channel current. *)
        res_add d base.id;
        res_add s (-.base.id);
        Array.iteri
          (fun j p ->
            let did =
              (p.Vstat_device.Device_model.id -. base.id) /. fd_dv
            in
            jac_add_node d terminals.(j) did;
            jac_add_node s terminals.(j) (-.did))
          perturbed;
        (* Terminal charges. *)
        let off = t.charge_offset.(k) in
        let q_of (st : Vstat_device.Device_model.terminal_state) = function
          | 0 -> st.qg
          | 1 -> st.qd
          | 2 -> st.qs
          | _ -> st.qb
        in
        for c = 0 to 3 do
          q_out.(off + c) <- q_of base c
        done;
        (match mode with
        | Dc ->
          for c = 0 to 3 do
            i_out.(off + c) <- 0.0
          done
        | Tran { h; trap } ->
          let factor = (if trap then 2.0 else 1.0) /. h in
          for c = 0 to 3 do
            let q = q_out.(off + c) in
            let i =
              (factor *. (q -. q_prev.(off + c)))
              -. (if trap then i_prev.(off + c) else 0.0)
            in
            i_out.(off + c) <- i;
            res_add terminals.(c) i;
            Array.iteri
              (fun j p ->
                let dq = (q_of p c -. q) /. fd_dv in
                jac_add_node terminals.(c) terminals.(j) (factor *. dq))
              perturbed
          done))
    t.elems

type newton_result = {
  nx : float array;
  nq : float array;
  ni : float array;
}

let newton t ~mode ~time ~x0 ~q_prev ~i_prev ~gmin ~sscale ~max_iter =
  let n = unknowns t in
  let x = Array.copy x0 in
  let jac = Vstat_linalg.Matrix.create ~rows:(Int.max n 1) ~cols:(Int.max n 1) in
  let res = Array.make n 0.0 in
  let q_out = Array.make (Int.max t.n_charges 1) 0.0 in
  let i_out = Array.make (Int.max t.n_charges 1) 0.0 in
  let rec loop iter =
    if iter >= max_iter then None
    else begin
      t.newton_iters <- t.newton_iters + 1;
      assemble t ~mode ~time ~x ~q_prev ~i_prev ~gmin ~sscale ~jac ~res ~q_out
        ~i_out;
      match Vstat_linalg.Lu.solve jac (Array.map (fun r -> -.r) res) with
      | exception Vstat_linalg.Lu.Singular _ -> None
      | delta ->
        if Array.exists (fun d -> not (Float.is_finite d)) delta then None
        else begin
          (* Damp voltage updates; exponential nonlinearities diverge under
             full Newton steps far from the solution. *)
          let dmax = ref 0.0 in
          for i = 0 to n - 1 do
            let d =
              if i < t.nn then Vstat_util.Floatx.clamp ~lo:(-0.5) ~hi:0.5 delta.(i)
              else delta.(i)
            in
            x.(i) <- x.(i) +. d;
            if i < t.nn then dmax := Float.max !dmax (Float.abs d)
            else begin
              let rel = Float.abs d /. Float.max 1e-9 (Float.abs x.(i)) in
              dmax := Float.max !dmax (Float.min rel (Float.abs d))
            end
          done;
          if !dmax < 1e-11 then begin
            (* Final assembly at the accepted solution refreshes q/i state. *)
            assemble t ~mode ~time ~x ~q_prev ~i_prev ~gmin ~sscale ~jac ~res
              ~q_out ~i_out;
            Some { nx = x; nq = Array.copy q_out; ni = Array.copy i_out }
          end
          else loop (iter + 1)
        end
    end
  in
  loop 0

type op = { x : float array; time : float }

let zeros t = Array.make (Int.max t.n_charges 1) 0.0

let dc ?guess ?(time = 0.0) t =
  let n = unknowns t in
  let x0 = match guess with Some g -> g | None -> Array.make n 0.0 in
  let q = zeros t and i = zeros t in
  let attempt ~x0 ~gmin ~sscale =
    newton t ~mode:Dc ~time ~x0 ~q_prev:q ~i_prev:i ~gmin ~sscale ~max_iter:80
  in
  let direct = attempt ~x0 ~gmin:1e-12 ~sscale:1.0 in
  let result =
    match direct with
    | Some r -> Some r
    | None ->
      (* gmin stepping. *)
      let rec gmin_steps x0 = function
        | [] -> None
        | g :: rest -> (
          match attempt ~x0 ~gmin:g ~sscale:1.0 with
          | Some r -> if rest = [] then Some r else gmin_steps r.nx rest
          | None -> None)
      in
      let stepped =
        gmin_steps (Array.make n 0.0)
          [ 1e-2; 1e-4; 1e-6; 1e-8; 1e-10; 1e-12 ]
      in
      (match stepped with
      | Some r -> Some r
      | None ->
        (* Source stepping with a mild gmin, then a final exact solve. *)
        let rec src_steps x0 = function
          | [] -> attempt ~x0 ~gmin:1e-12 ~sscale:1.0
          | sc :: rest -> (
            match attempt ~x0 ~gmin:1e-9 ~sscale:sc with
            | Some r -> src_steps r.nx rest
            | None -> None)
        in
        src_steps (Array.make n 0.0)
          [ 0.05; 0.15; 0.3; 0.45; 0.6; 0.75; 0.9; 1.0 ])
  in
  match result with
  | Some r -> { x = r.nx; time }
  | None -> raise (No_convergence "dc: all continuation strategies failed")

let voltage _t op n = nodev op.x n

let branch_slot t name =
  match List.assoc_opt name t.vsrc_index with
  | Some k -> t.nn + k
  | None -> raise Not_found

let source_current t op name = op.x.(branch_slot t name)

let branch_row = branch_slot

type trace = { times : float array; states : float array array }

let transient ?(trap = false) ?(dt_min_factor = 1.0 /. 256.0) t ~tstop ~dt =
  let start = dc ~time:0.0 t in
  (* Recover the consistent charge state at t = 0. *)
  let n = unknowns t in
  let jac = Vstat_linalg.Matrix.create ~rows:(Int.max n 1) ~cols:(Int.max n 1) in
  let res = Array.make n 0.0 in
  let q = zeros t and i = zeros t in
  assemble t ~mode:Dc ~time:0.0 ~x:start.x ~q_prev:q ~i_prev:i ~gmin:1e-12
    ~sscale:1.0 ~jac ~res ~q_out:q ~i_out:i;
  let times = ref [ 0.0 ] in
  let states = ref [ Array.copy start.x ] in
  let x = ref start.x in
  let q_prev = ref q and i_prev = ref i in
  let time = ref 0.0 in
  let h = ref dt in
  let dt_min = dt *. dt_min_factor in
  while !time < tstop -. 1e-18 do
    let h_now = Float.min !h (tstop -. !time) in
    let t_next = !time +. h_now in
    let mode = Tran { h = h_now; trap } in
    match
      newton t ~mode ~time:t_next ~x0:!x ~q_prev:!q_prev ~i_prev:!i_prev
        ~gmin:1e-12 ~sscale:1.0 ~max_iter:40
    with
    | Some r ->
      time := t_next;
      x := r.nx;
      q_prev := r.nq;
      i_prev := r.ni;
      times := t_next :: !times;
      states := Array.copy r.nx :: !states;
      h := Float.min dt (!h *. 1.4)
    | None ->
      h := h_now /. 2.0;
      if !h < dt_min then
        raise
          (No_convergence
             (Printf.sprintf "transient: step rejected below dt_min at t=%.3e"
                !time))
  done;
  {
    times = Array.of_list (List.rev !times);
    states = Array.of_list (List.rev !states);
  }

let node_wave _t trace n =
  let i = Netlist.node_index n in
  Array.map (fun x -> if i = 0 then 0.0 else x.(i - 1)) trace.states

let source_current_wave t trace name =
  let slot = branch_slot t name in
  Array.map (fun x -> x.(slot)) trace.states

let residual_norm t op =
  let n = unknowns t in
  let res = Array.make n 0.0 in
  let q = zeros t and i = zeros t in
  let jac = Vstat_linalg.Matrix.create ~rows:(Int.max n 1) ~cols:(Int.max n 1) in
  assemble t ~mode:Dc ~time:op.time ~x:op.x ~q_prev:q ~i_prev:i ~gmin:1e-12
    ~sscale:1.0 ~jac ~res ~q_out:q ~i_out:i;
  Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 0.0 res

let linearize t op =
  let n = unknowns t in
  let res = Array.make n 0.0 in
  let q = zeros t and i = zeros t in
  let jac_dc = Vstat_linalg.Matrix.create ~rows:n ~cols:n in
  assemble t ~mode:Dc ~time:op.time ~x:op.x ~q_prev:q ~i_prev:i ~gmin:1e-12
    ~sscale:1.0 ~jac:jac_dc ~res ~q_out:q ~i_out:i;
  (* With h = 1 and the charge state equal to the operating-point charges,
     the transient Jacobian is exactly G + C. *)
  let jac_tr = Vstat_linalg.Matrix.create ~rows:n ~cols:n in
  assemble t
    ~mode:(Tran { h = 1.0; trap = false })
    ~time:op.time ~x:op.x ~q_prev:q ~i_prev:i ~gmin:1e-12 ~sscale:1.0
    ~jac:jac_tr ~res ~q_out:q ~i_out:i;
  (jac_dc, Vstat_linalg.Matrix.sub jac_tr jac_dc)

let stats_newton_iterations t = t.newton_iters
let stats_model_evaluations t = t.model_evals
