(** Small-signal AC analysis.

    Linearizes the circuit at a DC operating point and solves the complex
    MNA system (G + j omega C) x = b over a frequency sweep, with a unit AC
    excitation superimposed on one named voltage source — the classic
    ".ac" analysis (the paper's Table IV runs its SRAM workload in AC). *)

type point = {
  freq_hz : float;
  response : Complex.t array;  (** full MNA small-signal solution vector *)
}

type t = {
  points : point list;
  source : string;
}

val sweep :
  Engine.t -> op:Engine.op -> source:string -> freqs_hz:float array -> t
(** AC-sweep with a 1 V amplitude on [source] (all other independent
    sources are AC-quiet).
    @raise Not_found for an unknown source name. *)

val node_transfer : Engine.t -> t -> Netlist.node -> (float * Complex.t) array
(** (frequency, complex node voltage) pairs — the transfer function from
    the excited source to a node. *)

val magnitude_db : Complex.t -> float
(** 20 log10 |H|. *)

val phase_deg : Complex.t -> float

val corner_frequency :
  Engine.t -> t -> Netlist.node -> float option
(** First frequency at which the node's magnitude falls 3 dB below its
    value at the lowest swept frequency (linear interpolation in log-log);
    [None] if it never does within the sweep. *)
