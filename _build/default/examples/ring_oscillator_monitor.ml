(* Process-monitor study: ring-oscillator frequency under within-die and
   inter-die variation — the silicon speed monitor every fab tracks, driven
   entirely by the statistical VS model.

   Run with:  dune exec examples/ring_oscillator_monitor.exe *)

module D = Vstat_stats.Descriptive
module Ro = Vstat_cells.Ring_oscillator

let dies = 12
let ros_per_die = 5

let () =
  let p = Vstat_core.Pipeline.build ~seed:42 ~mc_per_geometry:1000 () in
  let vdd = p.vdd in
  let spec = Vstat_core.Inter_die.default_40nm in
  let rng = Vstat_util.Rng.create ~seed:33 in
  Printf.printf
    "5-stage ring oscillator, %d dies x %d monitors, within-die + inter-die\n\n"
    dies ros_per_die;
  Printf.printf "%5s %12s %12s %12s\n" "die" "mean (GHz)" "sigma (MHz)" "global dVT0 (mV)";
  let all_freqs = ref [] in
  let die_means = ref [] in
  for die_idx = 1 to dies do
    let die = Vstat_core.Inter_die.draw spec rng in
    let die_rng = Vstat_util.Rng.split rng in
    let freqs =
      Array.init ros_per_die (fun _ ->
          let tech = Vstat_core.Inter_die.die_tech p ~die ~rng:die_rng ~vdd in
          (Ro.measure (Ro.sample tech)).frequency_hz)
    in
    all_freqs := Array.to_list freqs @ !all_freqs;
    die_means := D.mean freqs :: !die_means;
    Printf.printf "%5d %12.3f %12.1f %12.1f\n" die_idx
      (D.mean freqs /. 1e9)
      (D.std freqs /. 1e6)
      (1e3 *. die.g_dvt0)
  done;
  let all = Array.of_list !all_freqs in
  let means = Array.of_list !die_means in
  Printf.printf "\nacross everything: mean=%.3f GHz  sigma=%.1f MHz\n"
    (D.mean all /. 1e9) (D.std all /. 1e6);
  Printf.printf "die-to-die sigma of the die means: %.1f MHz\n"
    (D.std means /. 1e6);
  Printf.printf
    "(the paper's eq. (1): total variance = inter-die + within-die in\n\
    \ quadrature; the per-die sigma above is the within-die component)\n"
