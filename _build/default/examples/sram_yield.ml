(* SRAM parametric-yield estimation: Monte Carlo static noise margins of a
   6T cell under within-die mismatch, with a yield estimate against a noise
   specification (the paper's Fig. 9 workload taken one step further toward
   a real design task).

   Run with:  dune exec examples/sram_yield.exe *)

module D = Vstat_stats.Descriptive
module Sram = Vstat_cells.Sram6t

let n = 250
let snm_spec = 0.04 (* V: minimum acceptable READ noise margin *)

let () =
  let p = Vstat_core.Pipeline.build ~seed:42 ~mc_per_geometry:1000 () in
  let vdd = p.vdd in
  let rng = Vstat_util.Rng.create ~seed:21 in
  let read = Array.make n 0.0 and hold = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let tech =
      Vstat_core.Techs.stochastic_vs p ~rng:(Vstat_util.Rng.split rng) ~vdd
    in
    let cell = Sram.sample tech in
    read.(i) <- Sram.snm cell ~mode:Sram.Read;
    hold.(i) <- Sram.snm cell ~mode:Sram.Hold
  done;
  Printf.printf "6T SRAM (PD/PU/ACC = 150/80/105 nm), %d cells sampled\n\n" n;
  Printf.printf "  READ SNM: mean=%5.1f mV  sigma=%4.1f mV  min=%5.1f mV\n"
    (1e3 *. D.mean read) (1e3 *. D.std read)
    (1e3 *. fst (D.min_max read));
  Printf.printf "  HOLD SNM: mean=%5.1f mV  sigma=%4.1f mV  min=%5.1f mV\n\n"
    (1e3 *. D.mean hold) (1e3 *. D.std hold)
    (1e3 *. fst (D.min_max hold));
  (* Empirical yield plus the Gaussian-extrapolated estimate. *)
  let failures = Array.fold_left (fun acc s -> if s < snm_spec then acc + 1 else acc) 0 read in
  let z = (D.mean read -. snm_spec) /. D.std read in
  Printf.printf "Yield against READ SNM > %.0f mV:\n" (1e3 *. snm_spec);
  Printf.printf "  empirical: %d/%d cells fail\n" failures n;
  Printf.printf "  Gaussian extrapolation: %.1f sigma margin -> %.2e fail probability\n"
    z
    (Vstat_util.Special.normal_cdf (-.z));
  Printf.printf
    "  (the HOLD tail is slightly non-Gaussian — qq R2 = %.4f — so tail\n\
    \   extrapolation from moments alone underestimates risk; see Fig. 9.)\n"
    (Vstat_stats.Qq.linearity_r2 hold);
  (* One cell's butterfly, as a visual. *)
  let tech = Vstat_core.Techs.nominal_vs p ~vdd in
  let cell = Sram.sample tech in
  let b = Sram.butterfly cell ~mode:Sram.Read in
  Printf.printf "\nNominal READ butterfly (VS model):\n";
  Printf.printf "  qb(q):  %s\n"
    (Vstat_stats.Histogram.sparkline (Array.map snd b.curve1));
  Printf.printf "  q(qb):  %s\n"
    (Vstat_stats.Histogram.sparkline (Array.map snd b.curve2))
