(* Low-power / dynamic-voltage-scaling study: NAND2 delay distributions as
   the supply drops (the paper's Fig. 7 motivation).  One statistical VS
   extraction — done at the nominal 0.9 V — predicts timing distributions
   at every supply with no re-fitting.

   Run with:  dune exec examples/low_power_timing.exe *)

module D = Vstat_stats.Descriptive

let n = 120

let () =
  let p = Vstat_core.Pipeline.build ~seed:42 ~mc_per_geometry:1000 () in
  Printf.printf
    "NAND2 FO3 delay vs supply voltage (statistical VS model, %d samples)\n\n" n;
  Printf.printf "%6s %10s %10s %10s %8s %8s\n" "Vdd" "mean(ps)" "sigma(ps)"
    "sigma/mu" "skew" "qq R2";
  List.iter
    (fun vdd ->
      let rng = Vstat_util.Rng.create ~seed:11 in
      let delays = Array.make n 0.0 in
      for i = 0 to n - 1 do
        let tech =
          Vstat_core.Techs.stochastic_vs p ~rng:(Vstat_util.Rng.split rng) ~vdd
        in
        let s =
          Vstat_cells.Nand2.sample tech ~wp_nm:300.0 ~wn_nm:300.0 ~fanout:3
        in
        delays.(i) <- (Vstat_cells.Nand2.measure s).tpd
      done;
      Printf.printf "%6.2f %10.2f %10.2f %9.1f%% %8.2f %8.4f\n" vdd
        (1e12 *. D.mean delays)
        (1e12 *. D.std delays)
        (100.0 *. D.sigma_over_mu delays)
        (D.skewness delays)
        (Vstat_stats.Qq.linearity_r2 delays))
    [ 0.9; 0.8; 0.7; 0.6; 0.55; 0.5 ];
  Printf.printf
    "\nAs Vdd approaches VT the distribution widens and skews right — the\n\
     non-Gaussian regime that makes low-voltage SSTA hard (paper Sec. IV-B).\n"
