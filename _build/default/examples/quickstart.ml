(* Quickstart: build the statistical VS model and look at one transistor.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Build the full pipeline: fit nominal VS cards to the golden node,
     measure its mismatch statistics, run BPV.  Takes a few seconds. *)
  let p = Vstat_core.Pipeline.build ~seed:42 ~mc_per_geometry:1000 () in
  Printf.printf "Nominal VS card fitted to the golden 40nm node:\n";
  let f = p.fit_nmos.fitted in
  Printf.printf
    "  NMOS: VT0=%.3f V  DIBL=%.3f V/V  n0=%.2f  vxo=%.2e cm/s  mu=%.0f cm2/Vs\n"
    f.vt0 (Vstat_device.Vs_model.delta f) f.n0 (f.vxo /. 1e-2) (f.mu /. 1e-4);
  Printf.printf "  fit error: %.3f decades (log I-V), %.1f%% (linear I-V)\n\n"
    p.fit_nmos.rms_log_error
    (100.0 *. p.fit_nmos.rms_rel_error);

  (* 2. The extracted statistical coefficients (paper Table II). *)
  let a = p.bpv_nmos.alphas in
  Printf.printf "Extracted mismatch coefficients (BPV):\n";
  Printf.printf "  alpha1=%.2f V.nm  alpha2=alpha3=%.2f nm  alpha4=%.0f nm.cm2/Vs  alpha5=%.2f\n\n"
    a.a_vt0 a.a_l a.a_mu a.a_cinv;

  (* 3. Evaluate the nominal device. *)
  let vdd = p.vdd in
  let dev = Vstat_core.Vs_statistical.nominal_device p.vs_nmos ~w_nm:600.0 ~l_nm:40.0 in
  Printf.printf "Nominal NMOS 600/40 at Vdd=%.2f V:\n" vdd;
  Printf.printf "  Idsat = %.1f uA   Ioff = %.2f nA   Cgg = %.2f fF\n\n"
    (1e6 *. Vstat_device.Metrics.idsat dev ~vdd)
    (1e9 *. Vstat_device.Metrics.ioff dev ~vdd)
    (1e15 *. Vstat_device.Metrics.cgg dev ~vdd);

  (* 4. Draw a few Monte Carlo mismatch instances. *)
  let rng = Vstat_util.Rng.create ~seed:7 in
  Printf.printf "Five mismatch draws of the same layout:\n";
  for i = 1 to 5 do
    let d = Vstat_core.Vs_statistical.sample_device p.vs_nmos rng ~w_nm:600.0 ~l_nm:40.0 in
    Printf.printf "  #%d: Idsat = %.1f uA   log10(Ioff) = %.2f\n" i
      (1e6 *. Vstat_device.Metrics.idsat d ~vdd)
      (Vstat_device.Metrics.log10_ioff d ~vdd)
  done
