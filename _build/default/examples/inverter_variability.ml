(* Standard-cell variability sweep: Monte Carlo delay and leakage of a
   fanout-of-3 inverter with the statistical VS model, compared against the
   golden model (the paper's Figs. 5 and 6 workflow).

   Run with:  dune exec examples/inverter_variability.exe *)

module D = Vstat_stats.Descriptive

let n = 150

let mc_delays ~tech_of_rng ~seed =
  let rng = Vstat_util.Rng.create ~seed in
  let delays = Array.make n 0.0 and leaks = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let tech = tech_of_rng (Vstat_util.Rng.split rng) in
    let s = Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
    let r = Vstat_cells.Inverter.measure s in
    delays.(i) <- r.tpd;
    leaks.(i) <- r.leakage
  done;
  (delays, leaks)

let () =
  let p = Vstat_core.Pipeline.build ~seed:42 ~mc_per_geometry:1000 () in
  let vdd = p.vdd in
  Printf.printf "INV FO3 (P/N = 600/300 nm), %d Monte Carlo samples per model\n\n" n;
  let vs_delays, vs_leaks =
    mc_delays ~seed:1
      ~tech_of_rng:(fun rng -> Vstat_core.Techs.stochastic_vs p ~rng ~vdd)
  in
  let g_delays, g_leaks =
    mc_delays ~seed:2
      ~tech_of_rng:(fun rng -> Vstat_core.Techs.stochastic_bsim p ~rng ~vdd)
  in
  let report name xs scale unit =
    Printf.printf "  %-22s mean=%7.2f%s  sigma=%6.2f%s  sigma/mu=%4.1f%%\n" name
      (scale *. D.mean xs) unit (scale *. D.std xs) unit
      (100.0 *. D.sigma_over_mu xs)
  in
  report "delay (VS)" vs_delays 1e12 "ps";
  report "delay (golden)" g_delays 1e12 "ps";
  report "leakage (VS)" vs_leaks 1e9 "nA";
  report "leakage (golden)" g_leaks 1e9 "nA";
  Printf.printf "\nAgreement (VS vs golden):\n";
  Printf.printf "  delay:   KS=%.3f  density overlap=%.2f\n"
    (Vstat_stats.Compare.ks_statistic vs_delays g_delays)
    (Vstat_stats.Compare.density_overlap vs_delays g_delays);
  Printf.printf "  leakage: KS=%.3f  density overlap=%.2f\n"
    (Vstat_stats.Compare.ks_statistic vs_leaks g_leaks)
    (Vstat_stats.Compare.density_overlap vs_leaks g_leaks);
  let lo, hi = D.min_max vs_leaks in
  Printf.printf "\nLeakage spread across the VS population: %.1fx\n" (hi /. lo);
  let freq = Array.map (fun d -> 1.0 /. d) vs_delays in
  let flo, fhi = D.min_max freq in
  Printf.printf "Frequency (1/delay) spread: %.1f%% of mean\n"
    (100.0 *. (fhi -. flo) /. D.mean freq);
  Printf.printf "\nVS delay density:\n  %s\n"
    (Vstat_stats.Histogram.sparkline
       (Array.map snd (Vstat_stats.Histogram.kde ~points:64 vs_delays)))
