(* Tests for Vstat_opt: Nelder-Mead and scalar search. *)

module Nm = Vstat_opt.Nelder_mead
module S = Vstat_opt.Scalar

let check_float ?(eps = 1e-6) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Nelder-Mead --- *)

let test_nm_quadratic () =
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let r = Nm.minimize ~f ~x0:[| 0.0; 0.0 |] () in
  Alcotest.(check bool) "converged" true r.converged;
  check_float ~eps:1e-4 "x0" 3.0 r.x.(0);
  check_float ~eps:1e-4 "x1" (-1.0) r.x.(1)

let test_nm_rosenbrock () =
  let f x =
    let a = 1.0 -. x.(0) in
    let b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let r = Nm.minimize_restarts ~restarts:4 ~max_iter:5000 ~f ~x0:[| -1.2; 1.0 |] () in
  check_float ~eps:1e-3 "rosenbrock x" 1.0 r.x.(0);
  check_float ~eps:1e-3 "rosenbrock y" 1.0 r.x.(1)

let test_nm_1d () =
  (* |x - c| is non-smooth at the optimum; restarts recover from simplex
     stagnation on the kink. *)
  let f x = Float.abs (x.(0) -. 0.25) in
  let r = Nm.minimize_restarts ~restarts:5 ~f ~x0:[| 10.0 |] () in
  check_float ~eps:1e-3 "1d" 0.25 r.x.(0)

let test_nm_respects_initial_step () =
  let f x = (x.(0) -. 100.0) ** 2.0 in
  let r = Nm.minimize ~initial_step:[| 50.0 |] ~f ~x0:[| 0.0 |] () in
  check_float ~eps:1e-3 "large step reaches far optimum" 100.0 r.x.(0)

let test_nm_empty_rejected () =
  match Nm.minimize ~f:(fun _ -> 0.0) ~x0:[||] () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_nm_iterations_bounded () =
  let f x = x.(0) *. x.(0) in
  let r = Nm.minimize ~max_iter:5 ~f ~x0:[| 1.0 |] () in
  Alcotest.(check bool) "stopped at cap" true (r.iterations <= 5)

(* --- Levenberg-Marquardt --- *)

module Lm = Vstat_opt.Levenberg_marquardt

let test_lm_linear_fit () =
  (* Fit y = a x + b exactly through noise-free points. *)
  let xs = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (1.7 *. x) -. 0.4) xs in
  let residual p = Array.mapi (fun i x -> (p.(0) *. x) +. p.(1) -. ys.(i)) xs in
  let r = Lm.minimize ~residual ~x0:[| 0.0; 0.0 |] () in
  check_float ~eps:1e-8 "slope" 1.7 r.x.(0);
  check_float ~eps:1e-8 "intercept" (-0.4) r.x.(1);
  Alcotest.(check bool) "tiny residual" true (r.residual_norm < 1e-8)

let test_lm_exponential_fit () =
  (* Nonlinear: y = A exp(k x). *)
  let xs = [| 0.0; 0.5; 1.0; 1.5; 2.0; 2.5 |] in
  let ys = Array.map (fun x -> 2.0 *. exp (0.8 *. x)) xs in
  let residual p =
    Array.mapi (fun i x -> (p.(0) *. exp (p.(1) *. x)) -. ys.(i)) xs
  in
  let r = Lm.minimize ~residual ~x0:[| 1.0; 0.1 |] () in
  check_float ~eps:1e-6 "amplitude" 2.0 r.x.(0);
  check_float ~eps:1e-6 "rate" 0.8 r.x.(1)

let test_lm_rosenbrock_as_least_squares () =
  (* Rosenbrock is a 2-residual least-squares problem. *)
  let residual p = [| 1.0 -. p.(0); 10.0 *. (p.(1) -. (p.(0) *. p.(0))) |] in
  let r = Lm.minimize ~max_iter:500 ~residual ~x0:[| -1.2; 1.0 |] () in
  check_float ~eps:1e-6 "x" 1.0 r.x.(0);
  check_float ~eps:1e-6 "y" 1.0 r.x.(1)

let test_lm_overdetermined_regression () =
  (* Least squares solution of an inconsistent system matches QR. *)
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 0.1; 1.9; 4.2; 5.8 |] in
  let residual p = Array.mapi (fun i x -> (p.(0) *. x) +. p.(1) -. ys.(i)) xs in
  let r = Lm.minimize ~residual ~x0:[| 0.0; 0.0 |] () in
  (* Reference solution from QR least squares on the same system. *)
  let a =
    Vstat_linalg.Matrix.init ~rows:4 ~cols:2 ~f:(fun i j ->
        if j = 0 then xs.(i) else 1.0)
  in
  let q = Vstat_linalg.Qr.least_squares a ys in
  check_float ~eps:1e-6 "slope" q.(0) r.x.(0);
  check_float ~eps:1e-6 "intercept" q.(1) r.x.(1)

let test_lm_empty_rejected () =
  match Lm.minimize ~residual:(fun _ -> [| 0.0 |]) ~x0:[||] () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- Scalar --- *)

let test_bisect_root () =
  let root = S.bisect ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  check_float ~eps:1e-9 "sqrt 2" (sqrt 2.0) root

let test_bisect_linear () =
  let root = S.bisect ~f:(fun x -> x -. 0.3) ~lo:(-1.0) ~hi:1.0 () in
  check_float ~eps:1e-9 "linear root" 0.3 root

let test_bisect_requires_bracket () =
  match S.bisect ~f:(fun x -> x +. 10.0) ~lo:0.0 ~hi:1.0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_bisect_predicate () =
  let boundary = S.bisect_predicate ~f:(fun x -> x > 0.7) ~lo:0.0 ~hi:1.0 () in
  check_float ~eps:1e-9 "predicate boundary" 0.7 boundary

let test_bisect_predicate_requires_transition () =
  match S.bisect_predicate ~f:(fun _ -> true) ~lo:0.0 ~hi:1.0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_golden_max () =
  let x, fx = S.golden_max ~f:(fun x -> -.((x -. 0.4) ** 2.0)) ~lo:0.0 ~hi:1.0 () in
  check_float ~eps:1e-6 "argmax" 0.4 x;
  check_float ~eps:1e-9 "max value" 0.0 fx

let test_golden_max_asymmetric () =
  let x, _ = S.golden_max ~f:(fun x -> x *. exp (-.x)) ~lo:0.0 ~hi:10.0 () in
  check_float ~eps:1e-5 "x e^-x peaks at 1" 1.0 x

(* --- qcheck --- *)

let prop_nm_finds_shifted_quadratic =
  QCheck.Test.make ~name:"NM minimizes shifted quadratics" ~count:50
    QCheck.(pair (float_range (-20.0) 20.0) (float_range (-20.0) 20.0))
    (fun (a, b) ->
      let f x = ((x.(0) -. a) ** 2.0) +. (2.0 *. ((x.(1) -. b) ** 2.0)) in
      let r = Nm.minimize_restarts ~restarts:3 ~f ~x0:[| 0.0; 0.0 |] () in
      Float.abs (r.x.(0) -. a) < 1e-2 && Float.abs (r.x.(1) -. b) < 1e-2)

let prop_bisect_finds_root_of_monotone =
  QCheck.Test.make ~name:"bisect solves monotone cubics" ~count:100
    QCheck.(float_range (-3.0) 3.0)
    (fun c ->
      let f x = (x ** 3.0) +. x -. c in
      (* f is strictly increasing; root within +-4 for |c| <= 3. *)
      let root = S.bisect ~f ~lo:(-4.0) ~hi:4.0 () in
      Float.abs (f root) < 1e-6)

let () =
  Alcotest.run "vstat_opt"
    [
      ( "nelder-mead",
        [
          Alcotest.test_case "quadratic" `Quick test_nm_quadratic;
          Alcotest.test_case "rosenbrock" `Quick test_nm_rosenbrock;
          Alcotest.test_case "1d" `Quick test_nm_1d;
          Alcotest.test_case "initial step" `Quick test_nm_respects_initial_step;
          Alcotest.test_case "empty rejected" `Quick test_nm_empty_rejected;
          Alcotest.test_case "iteration cap" `Quick test_nm_iterations_bounded;
          QCheck_alcotest.to_alcotest prop_nm_finds_shifted_quadratic;
        ] );
      ( "levenberg-marquardt",
        [
          Alcotest.test_case "linear fit" `Quick test_lm_linear_fit;
          Alcotest.test_case "exponential fit" `Quick test_lm_exponential_fit;
          Alcotest.test_case "rosenbrock" `Quick test_lm_rosenbrock_as_least_squares;
          Alcotest.test_case "overdetermined" `Quick test_lm_overdetermined_regression;
          Alcotest.test_case "empty rejected" `Quick test_lm_empty_rejected;
        ] );
      ( "scalar",
        [
          Alcotest.test_case "bisect root" `Quick test_bisect_root;
          Alcotest.test_case "bisect linear" `Quick test_bisect_linear;
          Alcotest.test_case "bisect bracket" `Quick test_bisect_requires_bracket;
          Alcotest.test_case "predicate" `Quick test_bisect_predicate;
          Alcotest.test_case "predicate transition" `Quick test_bisect_predicate_requires_transition;
          Alcotest.test_case "golden max" `Quick test_golden_max;
          Alcotest.test_case "golden asymmetric" `Quick test_golden_max_asymmetric;
          QCheck_alcotest.to_alcotest prop_bisect_finds_root_of_monotone;
        ] );
    ]
