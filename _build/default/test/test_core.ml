(* Tests for the statistical VS core: Pelgrom scaling, the vxo coupling,
   shift application, sensitivities, BPV extraction, nominal extraction and
   the end-to-end pipeline. *)

module V = Vstat_core.Variation
module Vss = Vstat_core.Vs_statistical
module Bss = Vstat_core.Bsim_statistical
module Sens = Vstat_core.Sensitivity
module Bpv = Vstat_core.Bpv
module Mc = Vstat_core.Mc_device
module En = Vstat_core.Extract_nominal
module P = Vstat_core.Pipeline
module D = Vstat_stats.Descriptive
module Rng = Vstat_util.Rng

let vdd = Vstat_device.Cards.vdd_nominal

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* Shared small pipeline for the expensive integration tests. *)
let pipeline = lazy (P.build ~seed:42 ~mc_per_geometry:800 ())

(* --- Variation --- *)

let test_pelgrom_forms () =
  let a = { V.a_vt0 = 2.0; a_l = 4.0; a_w = 4.0; a_mu = 900.0; a_cinv = 0.3 } in
  let s = V.sigmas_of_alphas a ~w_nm:400.0 ~l_nm:100.0 in
  check_float ~eps:1e-12 "sigma vt0" (2.0 /. 200.0) s.s_vt0;
  check_float ~eps:1e-12 "sigma L = a2 sqrt(L/W)" (4.0 *. 0.5) s.s_l;
  check_float ~eps:1e-12 "sigma W = a3 sqrt(W/L)" (4.0 *. 2.0) s.s_w;
  check_float ~eps:1e-12 "sigma mu" (900.0 /. 200.0) s.s_mu;
  (* The paper's LER tie: sigma_L / sigma_W = L / W. *)
  check_float ~eps:1e-12 "LER tie" (100.0 /. 400.0) (s.s_l /. s.s_w)

let test_pelgrom_area_law () =
  let a = V.paper_alphas_nmos in
  let s1 = V.sigmas_of_alphas a ~w_nm:600.0 ~l_nm:40.0 in
  let s4 = V.sigmas_of_alphas a ~w_nm:2400.0 ~l_nm:160.0 in
  (* 16x area -> 4x smaller relative spread for area-law parameters. *)
  check_float ~eps:1e-12 "vt0 area law" (s1.s_vt0 /. 4.0) s4.s_vt0;
  check_float ~eps:1e-12 "mu area law" (s1.s_mu /. 4.0) s4.s_mu

let test_pelgrom_rejects_bad_geometry () =
  match V.sigmas_of_alphas V.paper_alphas_nmos ~w_nm:0.0 ~l_nm:40.0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_vxo_shift_formula () =
  (* alpha + (1-B)(1-alpha+gamma) with alpha=0.5, gamma=0.45. *)
  let b = 0.25 in
  let coeff = 0.5 +. (0.75 *. 0.95) in
  check_float ~eps:1e-12 "mu term"
    (coeff *. 0.02)
    (V.vxo_relative_shift ~ballistic_b:b ~dmu_rel:0.02 ~ddelta:0.0);
  check_float ~eps:1e-12 "delta term" (2.0 *. 0.01)
    (V.vxo_relative_shift ~ballistic_b:b ~dmu_rel:0.0 ~ddelta:0.01)

let test_ballistic_efficiency () =
  check_float ~eps:1e-12 "B = lambda/(lambda+2l)" 0.2
    (V.ballistic_efficiency ~lambda_mfp:10e-9 ~l_critical:20e-9);
  Alcotest.(check bool) "B in (0,1)" true
    (let b = V.ballistic_efficiency ~lambda_mfp:15e-9 ~l_critical:40e-9 in
     b > 0.0 && b < 1.0)

let test_source_taxonomy () =
  Alcotest.(check bool) "vt0 <- RDF" true (V.source_of_parameter `Vt0 = V.Rdf);
  Alcotest.(check bool) "leff <- LER" true (V.source_of_parameter `Leff = V.Ler);
  Alcotest.(check bool) "cinv <- OTF" true (V.source_of_parameter `Cinv = V.Otf);
  Alcotest.(check bool) "mu <- stress" true (V.source_of_parameter `Mu = V.Stress)

(* --- Vs_statistical --- *)

let test_apply_shifts_identity () =
  let p = Vstat_device.Cards.vs_seed_nmos ~w_nm:600.0 ~l_nm:40.0 in
  let p' = Vss.apply_shifts p Vss.zero_shifts in
  check_float ~eps:1e-15 "vt0 unchanged" p.vt0 p'.vt0;
  check_float ~eps:1e-15 "vxo unchanged" p.vxo p'.vxo

let test_apply_shifts_length_coupling () =
  let p = Vstat_device.Cards.vs_seed_nmos ~w_nm:600.0 ~l_nm:40.0 in
  let shorter = Vss.apply_shifts p { Vss.zero_shifts with dl_nm = -2.0 } in
  (* Shorter channel -> more DIBL -> higher delta -> vxo increases via the
     2x delta sensitivity. *)
  Alcotest.(check bool) "delta up" true
    (Vstat_device.Vs_model.delta shorter > Vstat_device.Vs_model.delta p);
  Alcotest.(check bool) "vxo slaved up" true (shorter.vxo > p.vxo)

let test_apply_shifts_mobility_coupling () =
  let p = Vstat_device.Cards.vs_seed_nmos ~w_nm:600.0 ~l_nm:40.0 in
  let s = { Vss.zero_shifts with dmu = 20.0 } in
  (* +10% mobility in cm2/Vs units *)
  let p' = Vss.apply_shifts p s in
  let expected_rel =
    V.vxo_relative_shift ~ballistic_b:p.ballistic_b ~dmu_rel:0.01 ~ddelta:0.0
  in
  check_float ~eps:1e-9 "vxo tracks mu"
    (p.vxo *. (1.0 +. (expected_rel *. 10.0)))
    p'.vxo

let test_vxo_slaving_ablation () =
  (* With slaving off, vxo must ignore the mobility shift entirely. *)
  let p = Vstat_device.Cards.vs_seed_nmos ~w_nm:600.0 ~l_nm:40.0 in
  let s = { Vss.zero_shifts with dmu = 20.0 } in
  let slaved = Vss.apply_shifts p s in
  let unslaved = Vss.apply_shifts ~slave_vxo:false p s in
  check_float ~eps:1e-15 "vxo frozen without slaving" p.vxo unslaved.vxo;
  Alcotest.(check bool) "slaving amplifies the response" true
    (slaved.vxo > unslaved.vxo);
  (* The amplification factor on Idsat sensitivity is what makes the paper's
     extracted alpha4 smaller than the golden truth. *)
  let dev_of params = Vstat_device.Vs_model.device ~polarity:Vstat_device.Device_model.Nmos params in
  let i_slaved = Vstat_device.Metrics.idsat (dev_of slaved) ~vdd in
  let i_unslaved = Vstat_device.Metrics.idsat (dev_of unslaved) ~vdd in
  let i_base = Vstat_device.Metrics.idsat (dev_of p) ~vdd in
  Alcotest.(check bool) "slaved response larger" true
    (i_slaved -. i_base > 1.5 *. (i_unslaved -. i_base))

let test_sampling_deterministic () =
  let t = Vss.seed_nmos in
  let d1 = Vss.sample_params t (Rng.create ~seed:3) ~w_nm:600.0 ~l_nm:40.0 in
  let d2 = Vss.sample_params t (Rng.create ~seed:3) ~w_nm:600.0 ~l_nm:40.0 in
  check_float ~eps:1e-18 "same seed, same sample" d1.vt0 d2.vt0

let test_sampling_spread_matches_alphas () =
  let t = Vss.seed_nmos in
  let rng = Rng.create ~seed:4 in
  let n = 4000 in
  let vts =
    Array.init n (fun _ ->
        (Vss.sample_params t rng ~w_nm:600.0 ~l_nm:40.0).vt0)
  in
  let expected = (V.sigmas_of_alphas t.alphas ~w_nm:600.0 ~l_nm:40.0).s_vt0 in
  check_float ~eps:(0.05 *. expected) "sampled sigma(vt0)" expected (D.std vts)

(* --- Bsim_statistical --- *)

let test_bsim_sampling_perturbs_all () =
  let t = Bss.golden_nmos in
  let rng = Rng.create ~seed:5 in
  let nominal = t.nominal ~w_nm:600.0 ~l_nm:40.0 in
  let sample = Bss.sample_params t rng ~w_nm:600.0 ~l_nm:40.0 in
  Alcotest.(check bool) "vth moved" true (sample.vth0 <> nominal.vth0);
  Alcotest.(check bool) "l moved" true (sample.l <> nominal.l);
  Alcotest.(check bool) "u0 moved" true (sample.u0 <> nominal.u0);
  Alcotest.(check bool) "u0 stays positive" true (sample.u0 > 0.0)

(* --- Sensitivity --- *)

let test_sensitivity_signs () =
  let t = Vss.seed_nmos in
  let d = Sens.vs_derivative t ~w_nm:600.0 ~l_nm:40.0 ~vdd in
  (* Higher VT0 -> lower on-current, lower (more negative decades) Ioff. *)
  Alcotest.(check bool) "dIdsat/dVt0 < 0" true (d Sens.Idsat `Vt0 < 0.0);
  Alcotest.(check bool) "dlogIoff/dVt0 < 0" true (d Sens.Log10_ioff `Vt0 < 0.0);
  (* More mobility -> more current. *)
  Alcotest.(check bool) "dIdsat/dMu > 0" true (d Sens.Idsat `Mu > 0.0);
  (* Wider -> more current, more capacitance. *)
  Alcotest.(check bool) "dIdsat/dW > 0" true (d Sens.Idsat `W > 0.0);
  Alcotest.(check bool) "dCgg/dW > 0" true (d Sens.Cgg `W > 0.0);
  (* Cgg at vds=0 is nearly VT0-independent in strong inversion (the paper's
     matrix has a literal 0 there). *)
  let cgg_vt0 = Float.abs (d Sens.Cgg `Vt0) in
  let cgg_w = Float.abs (d Sens.Cgg `W) in
  Alcotest.(check bool) "Cgg ~ vt0-insensitive" true
    (cgg_vt0 *. 0.0148 < 0.05 *. (cgg_w *. 14.4))

let test_subthreshold_slope_sensitivity () =
  (* dlog10Ioff/dVT0 ~ -1/(n phit ln10). *)
  let t = Vss.seed_nmos in
  let p = t.nominal ~w_nm:600.0 ~l_nm:40.0 in
  let d = Sens.vs_derivative t ~w_nm:600.0 ~l_nm:40.0 ~vdd Sens.Log10_ioff `Vt0 in
  let ideal = -1.0 /. (p.n0 *. p.phit *. log 10.0) in
  (* Softened by the Ff transition; see the matching device test. *)
  Alcotest.(check bool) "ioff slope within (0.7, 1.05) of ideal" true
    (d < 0.7 *. ideal && d > 1.05 *. ideal)

(* --- BPV --- *)

(* Noise-free observations generated by forward propagation through the VS
   model itself: extraction must recover the generating alphas almost
   exactly (validates the solver independently of model-affinity issues). *)
let test_bpv_roundtrip_exact () =
  let t = { Vss.seed_nmos with alphas = V.paper_alphas_nmos } in
  let options =
    { Bpv.default_options with known_cinv_alpha = V.paper_alphas_nmos.a_cinv }
  in
  let observations =
    List.map
      (fun (w_nm, l_nm) ->
        let pred m =
          Bpv.predicted_sigma ~vs:t ~alphas:V.paper_alphas_nmos ~vdd ~w_nm
            ~l_nm m
        in
        {
          Bpv.w_nm;
          l_nm;
          sigma_idsat = pred Sens.Idsat;
          sigma_log10_ioff = pred Sens.Log10_ioff;
          sigma_cgg = pred Sens.Cgg;
        })
      [ (120.0, 40.0); (300.0, 40.0); (600.0, 40.0); (1500.0, 40.0) ]
  in
  let r = Bpv.extract ~vs:t ~vdd ~options observations in
  check_float ~eps:0.02 "a1 recovered" V.paper_alphas_nmos.a_vt0 r.alphas.a_vt0;
  check_float ~eps:0.05 "a2 recovered" V.paper_alphas_nmos.a_l r.alphas.a_l;
  check_float ~eps:20.0 "a4 recovered" V.paper_alphas_nmos.a_mu r.alphas.a_mu;
  Alcotest.(check bool) "tiny residual" true (r.residual < 1e-3)

let test_bpv_tie_enforced () =
  let t = { Vss.seed_nmos with alphas = V.paper_alphas_nmos } in
  let options =
    { Bpv.default_options with known_cinv_alpha = V.paper_alphas_nmos.a_cinv }
  in
  let observations =
    [
      Bpv.
        {
          w_nm = 600.0;
          l_nm = 40.0;
          sigma_idsat = 20e-6;
          sigma_log10_ioff = 0.19;
          sigma_cgg = 2e-17;
        };
    ]
  in
  let r = Bpv.extract ~vs:t ~vdd ~options observations in
  check_float ~eps:1e-12 "a2 = a3" r.alphas.a_l r.alphas.a_w;
  check_float ~eps:1e-12 "a5 passthrough" V.paper_alphas_nmos.a_cinv
    r.alphas.a_cinv

let test_bpv_untied_variant () =
  let t = { Vss.seed_nmos with alphas = V.paper_alphas_nmos } in
  let options =
    { Bpv.default_options with tie_l_w = false; known_cinv_alpha = 0.29 }
  in
  let observations =
    List.map
      (fun (w_nm, l_nm) ->
        let pred m =
          Bpv.predicted_sigma ~vs:t ~alphas:V.paper_alphas_nmos ~vdd ~w_nm
            ~l_nm m
        in
        {
          Bpv.w_nm;
          l_nm;
          sigma_idsat = pred Sens.Idsat;
          sigma_log10_ioff = pred Sens.Log10_ioff;
          sigma_cgg = pred Sens.Cgg;
        })
      [ (120.0, 40.0); (300.0, 40.0); (600.0, 40.0); (1500.0, 40.0) ]
  in
  let r = Bpv.extract ~vs:t ~vdd ~options observations in
  Alcotest.(check bool) "all alphas nonnegative" true
    (r.alphas.a_vt0 >= 0.0 && r.alphas.a_l >= 0.0 && r.alphas.a_w >= 0.0
   && r.alphas.a_mu >= 0.0)

let test_bpv_empty_rejected () =
  let t = Vss.seed_nmos in
  match Bpv.extract ~vs:t ~vdd ~options:Bpv.default_options [] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_contribution_breakdown_quadrature () =
  let t = { Vss.seed_nmos with alphas = V.paper_alphas_nmos } in
  let contributions =
    Bpv.contribution_breakdown ~vs:t ~alphas:t.alphas ~vdd ~w_nm:600.0
      ~l_nm:40.0 Sens.Idsat
  in
  let total =
    sqrt (List.fold_left (fun acc (_, c) -> acc +. (c *. c)) 0.0 contributions)
  in
  let predicted =
    Bpv.predicted_sigma ~vs:t ~alphas:t.alphas ~vdd ~w_nm:600.0 ~l_nm:40.0
      Sens.Idsat
  in
  check_float ~eps:1e-12 "quadrature sum" predicted total;
  Alcotest.(check int) "five contributors" 5 (List.length contributions)

let test_correlated_propagation_reduces_to_independent () =
  let t = { Vss.seed_nmos with alphas = V.paper_alphas_nmos } in
  let zero _ _ = 0.0 in
  let a =
    Bpv.predicted_sigma_correlated ~vs:t ~alphas:t.alphas ~vdd ~w_nm:600.0
      ~l_nm:40.0 ~correlation:zero Sens.Idsat
  in
  let b =
    Bpv.predicted_sigma ~vs:t ~alphas:t.alphas ~vdd ~w_nm:600.0 ~l_nm:40.0
      Sens.Idsat
  in
  check_float ~eps:1e-15 "r=0 reduces to eq. (9)" b a

let test_correlated_propagation_sign () =
  (* A positive VT0-mu correlation: dIdsat/dVT0 < 0 while dIdsat/dMu > 0,
     so positive correlation *cancels* variance and sigma shrinks. *)
  let t = { Vss.seed_nmos with alphas = V.paper_alphas_nmos } in
  let corr p q =
    match (p, q) with
    | `Vt0, `Mu | `Mu, `Vt0 -> 0.6
    | _ -> 0.0
  in
  let with_corr =
    Bpv.predicted_sigma_correlated ~vs:t ~alphas:t.alphas ~vdd ~w_nm:600.0
      ~l_nm:40.0 ~correlation:corr Sens.Idsat
  in
  let independent =
    Bpv.predicted_sigma ~vs:t ~alphas:t.alphas ~vdd ~w_nm:600.0 ~l_nm:40.0
      Sens.Idsat
  in
  Alcotest.(check bool) "cancelling correlation shrinks sigma" true
    (with_corr < independent)

(* --- Extract_nominal --- *)

let test_fit_improves_on_seed () =
  let lazy p = pipeline in
  Alcotest.(check bool) "log error < 0.15 decades" true
    (p.fit_nmos.rms_log_error < 0.15);
  Alcotest.(check bool) "rel error < 10%" true (p.fit_nmos.rms_rel_error < 0.10);
  Alcotest.(check bool) "pmos too" true (p.fit_pmos.rms_rel_error < 0.10)

let test_fit_physical_parameters () =
  let lazy p = pipeline in
  let f = p.fit_nmos.fitted in
  Alcotest.(check bool) "vt0 plausible" true (f.vt0 > 0.1 && f.vt0 < 0.6);
  Alcotest.(check bool) "n0 plausible" true (f.n0 > 1.0 && f.n0 < 2.0);
  Alcotest.(check bool) "vxo plausible" true (f.vxo > 2e4 && f.vxo < 3e5);
  Alcotest.(check bool) "beta plausible" true (f.beta > 1.0 && f.beta < 4.0)

let test_fit_params_retarget () =
  let lazy p = pipeline in
  let a = p.fit_nmos.params_of ~w_nm:600.0 ~l_nm:40.0 in
  let b = p.fit_nmos.params_of ~w_nm:1200.0 ~l_nm:40.0 in
  check_float ~eps:1e-15 "same vt0 across geometry" a.vt0 b.vt0;
  check_float ~eps:1e-15 "w retargeted" 1200e-9 b.w

(* --- Mc_device --- *)

let test_mc_device_shapes () =
  let rng = Rng.create ~seed:6 in
  let s = Mc.of_vs Vss.seed_nmos ~rng ~n:50 ~w_nm:600.0 ~l_nm:40.0 ~vdd in
  Alcotest.(check int) "n idsat" 50 (Array.length s.idsat);
  Alcotest.(check bool) "all positive" true (Array.for_all (fun x -> x > 0.0) s.idsat);
  Alcotest.(check bool) "all finite" true
    (Array.for_all Float.is_finite s.log10_ioff)

let test_mc_sigma_shrinks_with_width () =
  let rng = Rng.create ~seed:7 in
  let narrow = Mc.of_vs Vss.seed_nmos ~rng ~n:600 ~w_nm:120.0 ~l_nm:40.0 ~vdd in
  let wide = Mc.of_vs Vss.seed_nmos ~rng ~n:600 ~w_nm:1500.0 ~l_nm:40.0 ~vdd in
  Alcotest.(check bool) "relative sigma shrinks" true
    (D.sigma_over_mu wide.idsat < D.sigma_over_mu narrow.idsat)

(* --- Pipeline (integration) --- *)

let test_pipeline_extraction_close_to_truth () =
  let lazy p = pipeline in
  let rel a b = Float.abs (a -. b) /. b in
  Alcotest.(check bool) "a1 within 25%" true
    (rel p.bpv_nmos.alphas.a_vt0 V.paper_alphas_nmos.a_vt0 < 0.25);
  Alcotest.(check bool) "a2 within 15%" true
    (rel p.bpv_nmos.alphas.a_l V.paper_alphas_nmos.a_l < 0.15);
  Alcotest.(check bool) "pmos a1 within 25%" true
    (rel p.bpv_pmos.alphas.a_vt0 V.paper_alphas_pmos.a_vt0 < 0.25)

let test_pipeline_validation_sigma_match () =
  let lazy p = pipeline in
  let rng = Rng.create ~seed:8 in
  let golden =
    Mc.of_bsim p.golden_nmos ~rng ~n:800 ~w_nm:600.0 ~l_nm:40.0 ~vdd:p.vdd
  in
  let vs = Mc.of_vs p.vs_nmos ~rng ~n:800 ~w_nm:600.0 ~l_nm:40.0 ~vdd:p.vdd in
  let rel a b = Float.abs (a -. b) /. b in
  Alcotest.(check bool) "sigma idsat within 12%" true
    (rel (D.std vs.idsat) (D.std golden.idsat) < 0.12);
  Alcotest.(check bool) "sigma logioff within 12%" true
    (rel (D.std vs.log10_ioff) (D.std golden.log10_ioff) < 0.12)

let test_pipeline_techs () =
  let lazy p = pipeline in
  let rng = Rng.create ~seed:9 in
  let tech = Vstat_core.Techs.stochastic_vs p ~rng ~vdd:p.vdd in
  let d1 = tech.nmos ~w_nm:300.0 in
  let d2 = tech.nmos ~w_nm:300.0 in
  (* Each call must be a fresh mismatch draw. *)
  let i1 = Vstat_device.Metrics.idsat d1 ~vdd in
  let i2 = Vstat_device.Metrics.idsat d2 ~vdd in
  Alcotest.(check bool) "independent draws" true (i1 <> i2);
  let nom = Vstat_core.Techs.nominal_vs p ~vdd:p.vdd in
  let j1 = Vstat_device.Metrics.idsat (nom.nmos ~w_nm:300.0) ~vdd in
  let j2 = Vstat_device.Metrics.idsat (nom.nmos ~w_nm:300.0) ~vdd in
  check_float ~eps:1e-18 "nominal repeats" j1 j2

(* --- Inter_die --- *)

let test_inter_die_draw_deterministic () =
  let spec = Vstat_core.Inter_die.default_40nm in
  let a = Vstat_core.Inter_die.draw spec (Rng.create ~seed:1) in
  let b = Vstat_core.Inter_die.draw spec (Rng.create ~seed:1) in
  check_float ~eps:1e-18 "same die shift" a.g_dvt0 b.g_dvt0

let test_inter_die_apply_shifts_vt () =
  let p = Vstat_device.Cards.vs_seed_nmos ~w_nm:600.0 ~l_nm:40.0 in
  let die = { Vstat_core.Inter_die.g_dvt0 = 0.02; g_dl_nm = 0.0; g_dmu_rel = 0.0 } in
  let p' = Vstat_core.Inter_die.apply_vs die p in
  check_float ~eps:1e-12 "vt0 shifted by die" (p.vt0 +. 0.02) p'.vt0

let test_inter_die_variance_subtraction () =
  (* Synthetic: total = within (+) independent global; eq. (1) must recover
     the global sigma. *)
  let rng = Rng.create ~seed:30 in
  let n = 20_000 in
  let within = Array.init n (fun _ -> Rng.gaussian_scaled rng ~mean:10.0 ~sigma:1.0) in
  let total =
    Array.init n (fun _ ->
        Rng.gaussian_scaled rng ~mean:10.0 ~sigma:1.0
        +. Rng.gaussian_scaled rng ~mean:0.0 ~sigma:0.5)
  in
  let implied = Vstat_core.Inter_die.decompose_variance ~total ~within in
  check_float ~eps:0.05 "eq. (1) recovers global sigma" 0.5 implied

let test_inter_die_clamps_negative () =
  (* If "total" happens to be tighter than "within" (sampling noise), the
     subtraction must clamp at zero, not go NaN. *)
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 0.0; 5.0; 10.0 |] in
  check_float "clamped" 0.0 (Vstat_core.Inter_die.decompose_variance ~total:a ~within:b)

(* --- qcheck --- *)

let prop_sigmas_positive =
  QCheck.Test.make ~name:"Pelgrom sigmas positive for all geometries"
    ~count:200
    QCheck.(pair (float_range 50.0 5000.0) (float_range 20.0 500.0))
    (fun (w_nm, l_nm) ->
      let s = V.sigmas_of_alphas V.paper_alphas_nmos ~w_nm ~l_nm in
      s.s_vt0 > 0.0 && s.s_l > 0.0 && s.s_w > 0.0 && s.s_mu > 0.0
      && s.s_cinv > 0.0)

let prop_sampled_devices_finite =
  QCheck.Test.make ~name:"sampled VS devices produce finite metrics"
    ~count:100 QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let d = Vss.sample_device Vss.seed_nmos rng ~w_nm:300.0 ~l_nm:40.0 in
      Float.is_finite (Vstat_device.Metrics.idsat d ~vdd)
      && Float.is_finite (Vstat_device.Metrics.log10_ioff d ~vdd))

let () =
  Alcotest.run "vstat_core"
    [
      ( "variation",
        [
          Alcotest.test_case "Pelgrom forms" `Quick test_pelgrom_forms;
          Alcotest.test_case "area law" `Quick test_pelgrom_area_law;
          Alcotest.test_case "bad geometry" `Quick test_pelgrom_rejects_bad_geometry;
          Alcotest.test_case "vxo shift" `Quick test_vxo_shift_formula;
          Alcotest.test_case "ballistic efficiency" `Quick test_ballistic_efficiency;
          Alcotest.test_case "taxonomy" `Quick test_source_taxonomy;
          QCheck_alcotest.to_alcotest prop_sigmas_positive;
        ] );
      ( "vs-statistical",
        [
          Alcotest.test_case "identity shifts" `Quick test_apply_shifts_identity;
          Alcotest.test_case "length coupling" `Quick test_apply_shifts_length_coupling;
          Alcotest.test_case "mobility coupling" `Quick test_apply_shifts_mobility_coupling;
          Alcotest.test_case "vxo slaving ablation" `Quick test_vxo_slaving_ablation;
          Alcotest.test_case "deterministic" `Quick test_sampling_deterministic;
          Alcotest.test_case "sampled spread" `Slow test_sampling_spread_matches_alphas;
          QCheck_alcotest.to_alcotest prop_sampled_devices_finite;
        ] );
      ( "bsim-statistical",
        [ Alcotest.test_case "perturbs all" `Quick test_bsim_sampling_perturbs_all ] );
      ( "sensitivity",
        [
          Alcotest.test_case "signs" `Quick test_sensitivity_signs;
          Alcotest.test_case "subthreshold slope" `Quick test_subthreshold_slope_sensitivity;
        ] );
      ( "bpv",
        [
          Alcotest.test_case "roundtrip" `Quick test_bpv_roundtrip_exact;
          Alcotest.test_case "LER tie" `Quick test_bpv_tie_enforced;
          Alcotest.test_case "untied" `Quick test_bpv_untied_variant;
          Alcotest.test_case "empty rejected" `Quick test_bpv_empty_rejected;
          Alcotest.test_case "contribution quadrature" `Quick test_contribution_breakdown_quadrature;
          Alcotest.test_case "correlated reduces" `Quick test_correlated_propagation_reduces_to_independent;
          Alcotest.test_case "correlated sign" `Quick test_correlated_propagation_sign;
        ] );
      ( "extract-nominal",
        [
          Alcotest.test_case "fit quality" `Slow test_fit_improves_on_seed;
          Alcotest.test_case "fit physical" `Slow test_fit_physical_parameters;
          Alcotest.test_case "retarget" `Slow test_fit_params_retarget;
        ] );
      ( "mc-device",
        [
          Alcotest.test_case "shapes" `Quick test_mc_device_shapes;
          Alcotest.test_case "width scaling" `Slow test_mc_sigma_shrinks_with_width;
        ] );
      ( "inter-die",
        [
          Alcotest.test_case "deterministic draw" `Quick test_inter_die_draw_deterministic;
          Alcotest.test_case "vt shift" `Quick test_inter_die_apply_shifts_vt;
          Alcotest.test_case "variance subtraction" `Slow test_inter_die_variance_subtraction;
          Alcotest.test_case "clamps" `Quick test_inter_die_clamps_negative;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "extraction near truth" `Slow test_pipeline_extraction_close_to_truth;
          Alcotest.test_case "sigma validation" `Slow test_pipeline_validation_sigma_match;
          Alcotest.test_case "techs" `Slow test_pipeline_techs;
        ] );
    ]
