(* Tests for the benchmark cells: INV/NAND2 harnesses, the pass-transistor
   DFF and the 6T SRAM (including the SNM geometry on synthetic curves). *)

module T = Vstat_cells.Celltech
module Inv = Vstat_cells.Inverter
module Nand = Vstat_cells.Nand2
module Dff = Vstat_cells.Dff
module Sram = Vstat_cells.Sram6t

let tech = T.nominal_bsim ()
let tech_vs = T.nominal_vs_seed ()

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Inverter --- *)

let test_inverter_delay_positive () =
  let r = Inv.measure_nominal tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
  Alcotest.(check bool) "tphl > 0" true (r.tphl > 0.0);
  Alcotest.(check bool) "tplh > 0" true (r.tplh > 0.0);
  check_float ~eps:1e-15 "tpd is the mean" (0.5 *. (r.tphl +. r.tplh)) r.tpd;
  Alcotest.(check bool) "delay in ps range" true (r.tpd > 1e-12 && r.tpd < 100e-12)

let test_inverter_fanout_slows () =
  let r1 = Inv.measure_nominal tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:1 in
  let r6 = Inv.measure_nominal tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:6 in
  Alcotest.(check bool) "more fanout, more delay" true (r6.tpd > 1.3 *. r1.tpd)

let test_inverter_leakage_positive () =
  let r = Inv.measure_nominal tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
  Alcotest.(check bool) "leakage window" true
    (r.leakage > 1e-12 && r.leakage < 1e-5)

let test_inverter_lower_vdd_slower () =
  let slow =
    Inv.measure_nominal (T.with_vdd tech 0.6) ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3
  in
  let fast = Inv.measure_nominal tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
  Alcotest.(check bool) "vdd scaling" true (slow.tpd > 1.5 *. fast.tpd)

let test_inverter_deterministic_on_nominal_tech () =
  let a = Inv.measure_nominal tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
  let b = Inv.measure_nominal tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
  check_float ~eps:1e-18 "reproducible" a.tpd b.tpd

let test_inverter_vs_close_to_bsim () =
  (* Extraction is tested elsewhere; even the seed card should be within a
     factor of two. *)
  let a = Inv.measure_nominal tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
  let b = Inv.measure_nominal tech_vs ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
  Alcotest.(check bool) "same order" true
    (b.tpd > 0.5 *. a.tpd && b.tpd < 2.0 *. a.tpd)

let test_inverter_bad_fanout () =
  match Inv.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- NAND2 --- *)

let test_nand2_slower_than_inverter () =
  let inv = Inv.measure_nominal tech ~wp_nm:300.0 ~wn_nm:300.0 ~fanout:3 in
  let nand = Nand.measure_nominal tech ~wp_nm:300.0 ~wn_nm:300.0 ~fanout:3 in
  Alcotest.(check bool) "stacked nmos is slower" true (nand.tpd > inv.tpd)

let test_nand2_vdd_scaling_monotone () =
  let delays =
    List.map
      (fun v ->
        (Nand.measure_nominal (T.with_vdd tech v) ~wp_nm:300.0 ~wn_nm:300.0
           ~fanout:3)
          .tpd)
      [ 0.9; 0.7; 0.55 ]
  in
  match delays with
  | [ d9; d7; d55 ] ->
    Alcotest.(check bool) "monotone slowdown" true (d9 < d7 && d7 < d55)
  | _ -> assert false

(* --- DFF --- *)

let test_dff_setup_positive_and_sane () =
  let s = Dff.sample tech in
  let tsu = Dff.setup_time s in
  Alcotest.(check bool) "setup in (0, 150ps)" true (tsu > 0.0 && tsu < 150e-12)

let test_dff_hold_less_than_setup () =
  let s = Dff.sample tech in
  let tsu = Dff.setup_time s in
  let th = Dff.hold_time s in
  (* The decision window must be positive: setup + hold > 0. *)
  Alcotest.(check bool) "positive window" true (tsu +. th > 0.0);
  Alcotest.(check bool) "hold below setup" true (th < tsu)

let test_dff_capture_monotone () =
  let s = Dff.sample tech in
  (* Very early data is captured, very late data is not. *)
  Alcotest.(check bool) "early ok" true
    (Dff.capture_ok s ~t_d:50e-12 ~data_rising:true);
  Alcotest.(check bool) "late fails" false
    (Dff.capture_ok s ~t_d:230e-12 ~data_rising:true)

(* --- SRAM --- *)

let test_sram_vtc_monotone () =
  let cell = Sram.sample tech in
  List.iter
    (fun mode ->
      let curve = Sram.vtc cell ~side:`Left ~mode ~points:41 in
      for i = 0 to Array.length curve - 2 do
        if snd curve.(i + 1) > snd curve.(i) +. 1e-6 then
          Alcotest.fail "VTC must be non-increasing"
      done)
    [ Sram.Read; Sram.Hold ]

let test_sram_hold_snm_exceeds_read () =
  let cell = Sram.sample tech in
  let read = Sram.snm cell ~mode:Sram.Read in
  let hold = Sram.snm cell ~mode:Sram.Hold in
  Alcotest.(check bool) "hold > read" true (hold > read);
  Alcotest.(check bool) "read SNM plausible" true (read > 0.02 && read < 0.3);
  Alcotest.(check bool) "hold SNM plausible" true (hold > 0.15 && hold < 0.45)

let test_sram_read_disturb_visible () =
  (* In READ mode the low output level is pulled up by the access device. *)
  let cell = Sram.sample tech in
  let low_read =
    let c = Sram.vtc cell ~side:`Left ~mode:Sram.Read ~points:21 in
    snd c.(20)
  in
  let low_hold =
    let c = Sram.vtc cell ~side:`Left ~mode:Sram.Hold ~points:21 in
    snd c.(20)
  in
  Alcotest.(check bool) "read disturb" true (low_read > low_hold +. 0.02)

(* Synthetic symmetric butterfly built from two sharp sigmoids; the exact
   SNM is not closed-form, but the geometry obeys exact laws we can check:
   it is positive, bounded by the lobe size, scale-equivariant, and zero for
   coincident curves. *)
let synthetic_butterfly ~vdd ~steepness =
  let sigmoid x = vdd /. (1.0 +. exp ((x -. (vdd /. 2.0)) /. steepness)) in
  let grid = Vstat_util.Floatx.linspace 0.0 vdd 181 in
  let curve1 = Array.map (fun q -> (q, sigmoid q)) grid in
  (* curve2: q = f(qb), stored as (q, qb) points. *)
  let curve2 = Array.map (fun qb -> (sigmoid qb, qb)) grid in
  { Sram.curve1; curve2 }

let test_snm_synthetic_bounds () =
  let b = synthetic_butterfly ~vdd:0.9 ~steepness:0.02 in
  let snm = Sram.snm_of_butterfly b in
  (* A sharp symmetric butterfly approaches the ideal-inverter bound of
     vdd/2 per lobe; it must be large but cannot exceed it. *)
  Alcotest.(check bool) "snm in (0.25, 0.45)" true (snm > 0.25 && snm < 0.45)

let test_snm_scale_equivariant () =
  let b1 = synthetic_butterfly ~vdd:0.9 ~steepness:0.02 in
  let b2 = synthetic_butterfly ~vdd:0.45 ~steepness:0.01 in
  let s1 = Sram.snm_of_butterfly b1 in
  let s2 = Sram.snm_of_butterfly b2 in
  Alcotest.(check (float 0.01)) "halved geometry halves SNM" (s1 /. 2.0) s2

let test_snm_coincident_curves_zero () =
  let grid = Vstat_util.Floatx.linspace 0.0 0.9 91 in
  let line = Array.map (fun q -> (q, 0.9 -. q)) grid in
  let snm = Sram.snm_of_butterfly { Sram.curve1 = line; curve2 = line } in
  Alcotest.(check (float 0.02)) "no lobes, no margin" 0.0 snm

let test_snm_smoother_curves_lower_margin () =
  let sharp = Sram.snm_of_butterfly (synthetic_butterfly ~vdd:0.9 ~steepness:0.01) in
  let soft = Sram.snm_of_butterfly (synthetic_butterfly ~vdd:0.9 ~steepness:0.08) in
  Alcotest.(check bool) "lower gain, lower SNM" true (soft < sharp)

let test_butterfly_curves_cover_rails () =
  let cell = Sram.sample tech in
  let b = Sram.butterfly cell ~mode:Sram.Hold in
  let q_values = Array.map fst b.curve1 in
  let lo, hi = (Array.fold_left Float.min infinity q_values,
                Array.fold_left Float.max neg_infinity q_values) in
  Alcotest.(check bool) "covers rails" true (lo <= 0.01 && hi >= 0.89)

(* --- NOR2 --- *)

let test_nor2_delay_and_ordering () =
  let r = Vstat_cells.Nor2.measure_nominal tech ~wp_nm:1200.0 ~wn_nm:300.0 ~fanout:3 in
  Alcotest.(check bool) "tpd positive ps-range" true
    (r.tpd > 1e-12 && r.tpd < 100e-12);
  (* Widening the stacked pull-up must speed the rising edge specifically. *)
  let narrow =
    Vstat_cells.Nor2.measure_nominal tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3
  in
  Alcotest.(check bool) "wider pull-up, faster rise" true (r.tplh < narrow.tplh)

let test_nor2_bad_fanout () =
  match Vstat_cells.Nor2.sample tech ~wp_nm:1200.0 ~wn_nm:300.0 ~fanout:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- Ring oscillator --- *)

let test_ring_oscillates () =
  let s = Vstat_cells.Ring_oscillator.sample tech in
  let r = Vstat_cells.Ring_oscillator.measure s in
  Alcotest.(check bool) "GHz range" true
    (r.frequency_hz > 1e9 && r.frequency_hz < 100e9);
  Alcotest.(check (float 1e-15)) "stage delay consistency"
    (r.period_s /. 10.0) r.stage_delay_s;
  Alcotest.(check bool) "leakage positive" true (r.leakage > 0.0)

let test_ring_more_stages_slower () =
  let f stages =
    let s = Vstat_cells.Ring_oscillator.sample ~stages tech in
    (Vstat_cells.Ring_oscillator.measure s).frequency_hz
  in
  Alcotest.(check bool) "f(3) > f(7)" true (f 3 > f 7)

let test_ring_rejects_even_stage_count () =
  match Vstat_cells.Ring_oscillator.sample ~stages:4 tech with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_ring_lower_vdd_slower () =
  let f vdd =
    let s = Vstat_cells.Ring_oscillator.sample (T.with_vdd tech vdd) in
    (Vstat_cells.Ring_oscillator.measure s).frequency_hz
  in
  Alcotest.(check bool) "0.9V faster than 0.6V" true (f 0.9 > 1.3 *. f 0.6)

(* --- Chain --- *)

let test_chain_delay_scales_with_stages () =
  let d stages =
    Vstat_cells.Chain.measure (Vstat_cells.Chain.sample ~stages tech)
  in
  let d4 = d 4 and d8 = d 8 in
  Alcotest.(check bool) "8 stages ~ 2x 4 stages" true
    (d8 > 1.6 *. d4 && d8 < 2.4 *. d4)

let test_chain_even_and_odd_parities () =
  (* Both parities must measure (the final edge polarity flips). *)
  let d3 = Vstat_cells.Chain.measure (Vstat_cells.Chain.sample ~stages:3 tech) in
  let d4 = Vstat_cells.Chain.measure (Vstat_cells.Chain.sample ~stages:4 tech) in
  Alcotest.(check bool) "both positive" true (d3 > 0.0 && d4 > d3)

let test_chain_rejects_zero_stages () =
  match Vstat_cells.Chain.sample ~stages:0 tech with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "vstat_cells"
    [
      ( "inverter",
        [
          Alcotest.test_case "delay positive" `Quick test_inverter_delay_positive;
          Alcotest.test_case "fanout slows" `Quick test_inverter_fanout_slows;
          Alcotest.test_case "leakage" `Quick test_inverter_leakage_positive;
          Alcotest.test_case "vdd scaling" `Quick test_inverter_lower_vdd_slower;
          Alcotest.test_case "deterministic" `Quick test_inverter_deterministic_on_nominal_tech;
          Alcotest.test_case "vs vs bsim order" `Quick test_inverter_vs_close_to_bsim;
          Alcotest.test_case "bad fanout" `Quick test_inverter_bad_fanout;
        ] );
      ( "nand2",
        [
          Alcotest.test_case "slower than inv" `Quick test_nand2_slower_than_inverter;
          Alcotest.test_case "vdd scaling" `Quick test_nand2_vdd_scaling_monotone;
        ] );
      ( "dff",
        [
          Alcotest.test_case "setup sane" `Slow test_dff_setup_positive_and_sane;
          Alcotest.test_case "hold < setup" `Slow test_dff_hold_less_than_setup;
          Alcotest.test_case "capture monotone" `Slow test_dff_capture_monotone;
        ] );
      ( "nor2",
        [
          Alcotest.test_case "delay ordering" `Quick test_nor2_delay_and_ordering;
          Alcotest.test_case "bad fanout" `Quick test_nor2_bad_fanout;
        ] );
      ( "ring-oscillator",
        [
          Alcotest.test_case "oscillates" `Quick test_ring_oscillates;
          Alcotest.test_case "stages slow it" `Quick test_ring_more_stages_slower;
          Alcotest.test_case "even rejected" `Quick test_ring_rejects_even_stage_count;
          Alcotest.test_case "vdd scaling" `Quick test_ring_lower_vdd_slower;
        ] );
      ( "chain",
        [
          Alcotest.test_case "stage scaling" `Quick test_chain_delay_scales_with_stages;
          Alcotest.test_case "parities" `Quick test_chain_even_and_odd_parities;
          Alcotest.test_case "zero rejected" `Quick test_chain_rejects_zero_stages;
        ] );
      ( "sram",
        [
          Alcotest.test_case "vtc monotone" `Quick test_sram_vtc_monotone;
          Alcotest.test_case "hold > read" `Quick test_sram_hold_snm_exceeds_read;
          Alcotest.test_case "read disturb" `Quick test_sram_read_disturb_visible;
          Alcotest.test_case "synthetic SNM bounds" `Quick test_snm_synthetic_bounds;
          Alcotest.test_case "SNM scale equivariance" `Quick test_snm_scale_equivariant;
          Alcotest.test_case "SNM coincident zero" `Quick test_snm_coincident_curves_zero;
          Alcotest.test_case "SNM gain monotonicity" `Quick test_snm_smoother_curves_lower_margin;
          Alcotest.test_case "butterfly rails" `Quick test_butterfly_curves_cover_rails;
        ] );
    ]
