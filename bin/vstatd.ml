(* vstatd — the variation-analysis daemon.

   Thin CLI shell over Vstat_service.Service: parse and validate flags
   (bad values are usage errors, exit 2), build the service, wire SIGTERM
   and SIGINT to graceful shutdown (the in-flight job drains at a sample
   boundary and flushes its journal), and block in the accept loop. *)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

open Cmdliner

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 1 -> Ok j
    | Some _ -> Error (`Msg "must be a positive integer (>= 1)")
    | None ->
      Error (`Msg (Printf.sprintf "invalid value %S, expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable progress logging.")

let state_dir_t =
  Arg.(
    value & opt string "vstatd-state"
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Journal cache directory. Completed runs persist here under \
           their content address; a restarted daemon re-serves them \
           bit-identically and resumes interrupted ones.")

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain listen socket (default: $(b,vstatd.sock) inside \
           --state-dir).")

let queue_max_t =
  Arg.(
    value & opt positive_int 32
    & info [ "queue-max" ] ~docv:"N"
        ~doc:
          "Admission bound: submissions beyond $(docv) queued jobs are shed \
           with a typed queue-full rejection instead of queueing without \
           bound.")

let jobs_t =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains per Monte Carlo job. Results are bit-identical \
           for any value.")

let workers_t =
  Arg.(
    value & opt positive_int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker-pool width: jobs executed concurrently, each on its own \
           supervised domain. Crashed or hung workers are replaced and \
           their jobs requeued; results are bit-identical for any value.")

let poison_retries_t =
  Arg.(
    value & opt positive_int 3
    & info [ "poison-retries" ] ~docv:"K"
        ~doc:
          "Rounds a job may crash or hang its worker before it is \
           quarantined with a terminal status instead of being requeued \
           again.")

let hang_timeout_t =
  let pos_float =
    let parse s =
      match float_of_string_opt s with
      | Some v when Float.is_finite v && v > 0.0 -> Ok v
      | Some _ -> Error (`Msg "must be a positive number of seconds")
      | None ->
        Error (`Msg (Printf.sprintf "invalid value %S, expected seconds" s))
    in
    Arg.conv (parse, Format.pp_print_float)
  in
  Arg.(
    value & opt pos_float 30.0
    & info [ "hang-timeout" ] ~docv:"SEC"
        ~doc:
          "Watchdog floor: a busy worker whose heartbeat is silent this \
           long is declared hung and replaced (the effective budget also \
           scales with the observed per-sample time).")

let state_max_bytes_t =
  Arg.(
    value & opt int 0
    & info [ "state-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "LRU byte budget for --state-dir: least-recently-finished \
           journals are evicted once the directory exceeds $(docv). 0 \
           (default) disables the bound. Queued and running jobs are \
           never evicted.")

let pipeline_seed_t =
  Arg.(
    value & opt int 42
    & info [ "pipeline-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the statistical-VS extraction pipeline built at \
           startup. Part of every job's cache identity.")

let bpv_samples_t =
  Arg.(
    value & opt positive_int 300
    & info [ "bpv-samples" ] ~docv:"N"
        ~doc:
          "Golden MC samples per geometry for the startup extraction \
           (larger = slower startup, tighter alphas). Part of every job's \
           cache identity.")

let inject_t =
  let inject_conv =
    let parse s =
      match Vstat_device.Fault_inject.Service.parse_spec s with
      | Ok cfg -> Ok cfg
      | Error m -> Error (`Msg m)
    in
    let print ppf cfg =
      Format.pp_print_string ppf
        (Vstat_device.Fault_inject.Service.spec_to_string cfg)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some inject_conv) None
    & info [ "inject" ] ~docv:"RATE[:KIND[:SEC]]"
        ~doc:
          "Service-layer chaos: deterministically stall ($(b,stall)), \
           abort ($(b,abort)), crash ($(b,crash)), or heartbeat-freeze \
           ($(b,hang)) workers at the given rate ($(b,mix) = stalls and \
           aborts, $(b,chaos) = equal quarters of all four). Aborts ride \
           the retry ladder; crashes and hangs exercise the supervisor's \
           requeue path. None changes any sample value, so results stay \
           bit-identical.")

let run verbose state_dir socket queue_max workers jobs poison_retries
    hang_timeout_s state_max_bytes pipeline_seed bpv_samples inject =
  setup_logs verbose;
  let config =
    {
      Vstat_service.Service.socket_path =
        (match socket with
        | Some p -> p
        | None -> Filename.concat state_dir "vstatd.sock");
      state_dir;
      queue_max;
      workers;
      jobs = Option.value jobs ~default:1;
      poison_retries;
      hang_timeout_s;
      state_max_bytes = Int.max 0 state_max_bytes;
      pipeline_seed;
      mc_per_geometry = bpv_samples;
      inject;
    }
  in
  (* A client that vanishes mid-response must not kill the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = Vstat_service.Service.create config in
  let graceful _ = Vstat_service.Service.stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful);
  Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
  Vstat_service.Service.serve t

let () =
  let info =
    Cmd.info "vstatd" ~version:"1.0.0"
      ~doc:
        "Fault-tolerant variation-analysis daemon: bounded admission with \
         client-fair queueing, a supervised worker pool (crash requeue, \
         hung-job watchdog, poison-job quarantine), per-request deadlines \
         with graceful degradation, and a crash-safe journal-backed result \
         cache bounded by an LRU byte budget"
  in
  let term =
    Term.(
      const run $ verbose_t $ state_dir_t $ socket_t $ queue_max_t
      $ workers_t $ jobs_t $ poison_retries_t $ hang_timeout_t
      $ state_max_bytes_t $ pipeline_seed_t $ bpv_samples_t $ inject_t)
  in
  match Cmd.eval ~catch:false (Cmd.v info term) with
  | exception Unix.Unix_error (e, fn, arg) ->
    Format.eprintf "vstatd: %s(%s): %s@." fn arg (Unix.error_message e);
    exit 1
  | exception e ->
    Format.eprintf "vstatd: internal error: %s@." (Printexc.to_string e);
    exit 125
  | code -> exit (if code = Cmd.Exit.cli_error then 2 else code)
