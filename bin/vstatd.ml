(* vstatd — the variation-analysis daemon.

   Thin CLI shell over Vstat_service.Service: parse and validate flags
   (bad values are usage errors, exit 2), build the service, wire SIGTERM
   and SIGINT to graceful shutdown (the in-flight job drains at a sample
   boundary and flushes its journal), and block in the accept loop. *)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

open Cmdliner

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 1 -> Ok j
    | Some _ -> Error (`Msg "must be a positive integer (>= 1)")
    | None ->
      Error (`Msg (Printf.sprintf "invalid value %S, expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable progress logging.")

let state_dir_t =
  Arg.(
    value & opt string "vstatd-state"
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Journal cache directory. Completed runs persist here under \
           their content address; a restarted daemon re-serves them \
           bit-identically and resumes interrupted ones.")

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain listen socket (default: $(b,vstatd.sock) inside \
           --state-dir).")

let queue_max_t =
  Arg.(
    value & opt positive_int 32
    & info [ "queue-max" ] ~docv:"N"
        ~doc:
          "Admission bound: submissions beyond $(docv) queued jobs are shed \
           with a typed queue-full rejection instead of queueing without \
           bound.")

let jobs_t =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains per Monte Carlo job. Results are bit-identical \
           for any value.")

let pipeline_seed_t =
  Arg.(
    value & opt int 42
    & info [ "pipeline-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the statistical-VS extraction pipeline built at \
           startup. Part of every job's cache identity.")

let bpv_samples_t =
  Arg.(
    value & opt positive_int 300
    & info [ "bpv-samples" ] ~docv:"N"
        ~doc:
          "Golden MC samples per geometry for the startup extraction \
           (larger = slower startup, tighter alphas). Part of every job's \
           cache identity.")

let inject_t =
  let inject_conv =
    let parse s =
      match Vstat_device.Fault_inject.Service.parse_spec s with
      | Ok cfg -> Ok cfg
      | Error m -> Error (`Msg m)
    in
    let print ppf cfg =
      Format.pp_print_string ppf
        (Vstat_device.Fault_inject.Service.spec_to_string cfg)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some inject_conv) None
    & info [ "inject" ] ~docv:"RATE[:KIND[:SEC]]"
        ~doc:
          "Service-layer chaos: deterministically stall ($(b,stall)) or \
           abort ($(b,abort)) worker samples at the given rate ($(b,mix) = \
           half each). Aborts ride the retry ladder; neither changes any \
           sample value, so results stay bit-identical.")

let run verbose state_dir socket queue_max jobs pipeline_seed bpv_samples
    inject =
  setup_logs verbose;
  let config =
    {
      Vstat_service.Service.socket_path =
        (match socket with
        | Some p -> p
        | None -> Filename.concat state_dir "vstatd.sock");
      state_dir;
      queue_max;
      jobs = Option.value jobs ~default:1;
      pipeline_seed;
      mc_per_geometry = bpv_samples;
      inject;
    }
  in
  (* A client that vanishes mid-response must not kill the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = Vstat_service.Service.create config in
  let graceful _ = Vstat_service.Service.stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful);
  Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
  Vstat_service.Service.serve t

let () =
  let info =
    Cmd.info "vstatd" ~version:"1.0.0"
      ~doc:
        "Fault-tolerant variation-analysis daemon: bounded admission, \
         per-request deadlines with graceful degradation, and a crash-safe \
         journal-backed result cache"
  in
  let term =
    Term.(
      const run $ verbose_t $ state_dir_t $ socket_t $ queue_max_t $ jobs_t
      $ pipeline_seed_t $ bpv_samples_t $ inject_t)
  in
  match Cmd.eval ~catch:false (Cmd.v info term) with
  | exception Unix.Unix_error (e, fn, arg) ->
    Format.eprintf "vstatd: %s(%s): %s@." fn arg (Unix.error_message e);
    exit 1
  | exception e ->
    Format.eprintf "vstatd: internal error: %s@." (Printexc.to_string e);
    exit 125
  | code -> exit (if code = Cmd.Exit.cli_error then 2 else code)
