(* vstat_lint — the project-invariant static-analysis pass.

   Usage: vstat_lint [options] PATH...

   Scans every .ml under the given paths (directories are walked
   recursively, skipping _build/.git and --exclude'd directory names),
   checks the rule families documented in DESIGN.md ("Static analysis &
   invariants"), and exits non-zero when violations remain after
   suppressions ([@vstat.allow "rule"] attributes and the lint.allow
   file). *)

module L = Vstat_lint_core

let () =
  let format = ref L.Report.Text in
  let allow_file = ref (if Sys.file_exists "lint.allow" then "lint.allow" else "") in
  let excludes = ref [ "_build"; ".git" ] in
  let paths = ref [] in
  let list_rules = ref false in
  let spec =
    [
      ( "--format",
        Arg.String
          (fun s ->
            match L.Report.format_of_string s with
            | Some f -> format := f
            | None ->
              raise (Arg.Bad (Printf.sprintf "unknown format %S" s))),
        "FMT  output format: text (default) or json" );
      ( "--allow",
        Arg.Set_string allow_file,
        "FILE suppression file (default: ./lint.allow when present; pass \
         an empty string to disable)" );
      ( "--exclude",
        Arg.String (fun d -> excludes := d :: !excludes),
        "DIR  directory name to skip during the walk (repeatable; _build \
         and .git are always skipped)" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
    ]
  in
  let usage = "vstat_lint [options] PATH..." in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    L.Rules.pp_list Format.std_formatter ();
    exit 0
  end;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let allow =
    if !allow_file = "" then L.Allowlist.empty
    else
      match L.Allowlist.load !allow_file with
      | a -> a
      | exception L.Allowlist.Malformed { file; lineno; text } ->
        Printf.eprintf "vstat_lint: malformed allow entry %s:%d: %s\n" file
          lineno text;
        exit 2
      | exception Sys_error msg ->
        Printf.eprintf "vstat_lint: cannot read allow file: %s\n" msg;
        exit 2
  in
  let cfg = L.Engine.default_config ~allow () in
  match L.Engine.run ~excludes:!excludes cfg (List.rev !paths) with
  | files_scanned, diags ->
    L.Report.print !format stdout ~files_scanned diags;
    exit (if diags = [] then 0 else 1)
  | exception Sys_error msg ->
    Printf.eprintf "vstat_lint: %s\n" msg;
    exit 2
