(* vstat_lint — the project-invariant static-analysis pass.

   Usage: vstat_lint [options] PATH...

   Scans every .ml under the given paths (directories are walked
   recursively, skipping _build/.git and --exclude'd directory names),
   checks the rule families documented in DESIGN.md ("Static analysis &
   invariants"), and exits non-zero when violations remain after
   suppressions ([@vstat.allow "rule"] attributes and the lint.allow
   file).

   With --deep, the per-file pass additionally feeds a two-phase
   cross-module analysis: per-module summaries (cached under
   --summary-cache, keyed by source + environment digests) are resolved
   into a project call graph and checked for determinism taint reaching
   [@vstat.entry] hot entry points and for unguarded module-level mutable
   state reachable from Domain.spawn roots.  Findings carry the full
   cross-module call path. *)

module L = Vstat_lint_core

let () =
  let format = ref L.Report.Text in
  let allow_file = ref (if Sys.file_exists "lint.allow" then "lint.allow" else "") in
  let excludes = ref [ "_build"; ".git" ] in
  let paths = ref [] in
  let list_rules = ref false in
  let deep = ref false in
  let cache_dir = ref "" in
  let root = ref "" in
  let jobs = ref 0 in
  let spec =
    [
      ( "--format",
        Arg.String
          (fun s ->
            match L.Report.format_of_string s with
            | Some f -> format := f
            | None ->
              raise (Arg.Bad (Printf.sprintf "unknown format %S" s))),
        "FMT  output format: text (default) or json" );
      ( "--allow",
        Arg.Set_string allow_file,
        "FILE suppression file (default: ./lint.allow when present; pass \
         an empty string to disable)" );
      ( "--exclude",
        Arg.String (fun d -> excludes := d :: !excludes),
        "DIR  directory name to skip during the walk (repeatable; _build \
         and .git are always skipped)" );
      ( "--deep",
        Arg.Set deep,
        " run the cross-module pass (determinism-taint, domain-safety) on \
         top of the per-file rules" );
      ( "--summary-cache",
        Arg.Set_string cache_dir,
        "DIR  with --deep: cache per-module summaries here, re-summarizing \
         only files whose source or suppression environment changed" );
      ( "--root",
        Arg.Set_string root,
        "DIR  chdir here before scanning, so paths (and lint.allow \
         prefixes) are repo-relative" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N    with --deep: worker domains for the summarization phase \
         (default: the runtime's default pool size); diagnostics are \
         identical for every N" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
    ]
  in
  let usage = "vstat_lint [options] PATH..." in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    L.Rules.pp_list Format.std_formatter ();
    exit 0
  end;
  if !root <> "" then begin
    match Sys.chdir !root with
    | () -> ()
    | exception Sys_error msg ->
      Printf.eprintf "vstat_lint: --root: %s\n" msg;
      exit 2
  end;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let allow =
    if !allow_file = "" then L.Allowlist.empty
    else
      match L.Allowlist.load !allow_file with
      | a -> a
      | exception L.Allowlist.Malformed { file; lineno; text } ->
        Printf.eprintf "vstat_lint: malformed allow entry %s:%d: %s\n" file
          lineno text;
        exit 2
      | exception Sys_error msg ->
        Printf.eprintf "vstat_lint: cannot read allow file: %s\n" msg;
        exit 2
  in
  let cfg = L.Engine.default_config ~allow () in
  let paths = List.rev !paths in
  if !deep then begin
    let cache_dir = if !cache_dir = "" then None else Some !cache_dir in
    let jobs = if !jobs > 0 then Some !jobs else None in
    match L.Engine.run_deep ?jobs ?cache_dir ~excludes:!excludes cfg paths with
    | r ->
      L.Report.print !format stdout
        ~files_scanned:r.L.Engine.deep_files
        ~deep:(r.L.Engine.deep_rebuilt, r.L.Engine.deep_cached)
        r.L.Engine.deep_diags;
      exit (if r.L.Engine.deep_diags = [] then 0 else 1)
    | exception Sys_error msg ->
      Printf.eprintf "vstat_lint: %s\n" msg;
      exit 2
  end
  else
    match L.Engine.run ~excludes:!excludes cfg paths with
    | files_scanned, diags ->
      L.Report.print !format stdout ~files_scanned diags;
      exit (if diags = [] then 0 else 1)
    | exception Sys_error msg ->
      Printf.eprintf "vstat_lint: %s\n" msg;
      exit 2
