(* vstat — reproduce every table and figure of "Statistical Modeling with
   the Virtual Source MOSFET Model" (DATE 2013) on the synthetic 40 nm node.

   Each subcommand prints the corresponding experiment's rows/series; `all`
   runs the full set.  Sample counts default to fast-but-meaningful values;
   use -n to reach the paper's counts (e.g. 2500 for Fig. 5). *)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let pipeline samples_per_geometry seed =
  Vstat_core.Pipeline.build ~seed ~mc_per_geometry:samples_per_geometry ()

open Cmdliner

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable progress logging.")

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 1 -> Ok j
    | Some _ -> Error (`Msg "must be a positive integer (>= 1)")
    | None -> Error (`Msg (Printf.sprintf "invalid value %S, expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_t =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for Monte Carlo sampling (Vstat_runtime). Defaults \
           to $(b,VSTAT_JOBS) from the environment, else the machine's \
           recommended domain count. Results are bit-identical for any \
           value.")

let seed_t =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let retry_t =
  Arg.(
    value & opt int 1
    & info [ "retry" ] ~docv:"ATTEMPTS"
        ~doc:
          "Max attempts per Monte Carlo sample. Failed samples are re-run \
           with escalated solver options on the same RNG substream, so \
           results stay deterministic and jobs-independent. 1 disables \
           retries.")

let inject_fault_t =
  let fault_conv =
    let parse s =
      match Vstat_device.Fault_inject.parse_spec s with
      | Ok cfg -> Ok cfg
      | Error m -> Error (`Msg m)
    in
    let print ppf cfg =
      Format.pp_print_string ppf (Vstat_device.Fault_inject.spec_to_string cfg)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "inject-fault" ] ~docv:"RATE[:KIND]"
        ~doc:
          "Chaos testing: deterministically inject device-model faults at \
           the given per-sample rate. KIND is one of nan, inf, perturb, \
           raise (default raise). Injection is keyed by sample index and \
           retry attempt, so it is reproducible and independent of --jobs.")

let apply_resilience retry inject =
  if retry < 1 then begin
    Format.eprintf "--retry must be >= 1@.";
    exit 2
  end;
  if retry > 1 then
    Vstat_experiments.Mc_compare.set_default_retry
      (Vstat_runtime.Runtime.retry retry);
  Vstat_experiments.Mc_compare.set_default_inject inject

let samples_t default =
  Arg.(
    value & opt int default
    & info [ "n"; "samples" ] ~docv:"N"
        ~doc:"Monte Carlo samples per model (paper-scale values are larger).")

let geometry_mc_t =
  Arg.(
    value & opt int 2000
    & info [ "bpv-samples" ] ~docv:"N"
        ~doc:"Golden MC samples per geometry used for BPV observation.")

let std_formatter_flush () = Format.pp_print_flush Format.std_formatter ()

let run_cmd name doc ~default_n f =
  let run verbose jobs seed retry inject bpv_n n =
    setup_logs verbose;
    Option.iter Vstat_runtime.Runtime.set_default_jobs jobs;
    apply_resilience retry inject;
    let p = pipeline bpv_n seed in
    f p ~n ~seed;
    std_formatter_flush ()
  in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const run $ verbose_t $ jobs_t $ seed_t $ retry_t $ inject_fault_t
      $ geometry_mc_t $ samples_t default_n)

let fmt = Format.std_formatter

let fig1 p ~n:_ ~seed:_ = Vstat_experiments.Exp_fig1.pp fmt (Vstat_experiments.Exp_fig1.run p)

let fig2 p ~n:_ ~seed:_ = Vstat_experiments.Exp_fig2.pp fmt (Vstat_experiments.Exp_fig2.run p)

let table1 _p ~n:_ ~seed:_ =
  Format.fprintf fmt
    "Table I: VS model parameters used for statistical modeling@\n";
  Vstat_util.Floatx.pp_table fmt
    ~header:[ "source"; "parameter"; "description" ]
    ~rows:
      [
        [ "LER"; "Leff (nm)"; "effective channel length" ];
        [ "LER"; "Weff (nm)"; "effective channel width" ];
        [ "RDF"; "VT0 (V)"; "zero-bias threshold voltage" ];
        [ "OTF"; "Cinv (uF/cm2)"; "effective gate-to-channel capacitance" ];
        [ "Stress"; "mu (cm2/V.s)"; "carrier mobility" ];
        [ "Stress"; "vxo (cm/s)";
          "virtual source velocity (slaved to mu and DIBL, eq. 5)" ];
      ]

let table2 p ~n:_ ~seed:_ =
  Vstat_experiments.Exp_table2.pp fmt (Vstat_experiments.Exp_table2.run p)

let fig3 p ~n ~seed = Vstat_experiments.Exp_fig3.pp fmt (Vstat_experiments.Exp_fig3.run ~n ~seed p)

let table3 p ~n ~seed =
  Vstat_experiments.Exp_table3.pp fmt (Vstat_experiments.Exp_table3.run ~n ~seed p)

let fig4 p ~n ~seed = Vstat_experiments.Exp_fig4.pp fmt (Vstat_experiments.Exp_fig4.run ~n ~seed p)

let fig5 p ~n ~seed = Vstat_experiments.Exp_fig5.pp fmt (Vstat_experiments.Exp_fig5.run ~n ~seed p)

let fig6 p ~n ~seed = Vstat_experiments.Exp_fig6.pp fmt (Vstat_experiments.Exp_fig6.run ~n ~seed p)

let fig7 p ~n ~seed = Vstat_experiments.Exp_fig7.pp fmt (Vstat_experiments.Exp_fig7.run ~n ~seed p)

let fig8 p ~n ~seed = Vstat_experiments.Exp_fig8.pp fmt (Vstat_experiments.Exp_fig8.run ~n ~seed p)

let fig9 p ~n ~seed = Vstat_experiments.Exp_fig9.pp fmt (Vstat_experiments.Exp_fig9.run ~n ~seed p)

let table4 p ~n ~seed =
  let t =
    Vstat_experiments.Exp_table4.run ~n_nand2:n ~n_dff:(Int.max 5 (n / 5))
      ~n_sram:n ~seed p
  in
  Vstat_experiments.Exp_table4.pp fmt t;
  Format.fprintf fmt "raw model-eval cost ratio (golden/VS): %.2fx@\n"
    (Vstat_experiments.Exp_table4.model_eval_comparison p)

let ablation_vdd p ~n ~seed =
  Vstat_experiments.Exp_vdd_transfer.pp fmt
    (Vstat_experiments.Exp_vdd_transfer.run ~n ~seed p)

let inter_die p ~n ~seed =
  Vstat_experiments.Exp_inter_die.pp fmt
    (Vstat_experiments.Exp_inter_die.run ~n_dies:(Int.max 4 (n / 8))
       ~per_die:8 ~seed p)

let ssta p ~n ~seed =
  Vstat_experiments.Exp_ssta.pp fmt
    (Vstat_experiments.Exp_ssta.run ~n ~seed p)

let export dir p ~n ~seed =
  let paths = Vstat_experiments.Exp_export.write_all ~dir ~n ~seed p in
  List.iter (fun path -> Format.fprintf fmt "wrote %s@\n" path) paths

let all p ~n ~seed =
  let section title =
    Format.fprintf fmt "@\n=== %s ===@\n" title
  in
  section "Fig.1";  fig1 p ~n ~seed;
  section "Fig.2";  fig2 p ~n ~seed;
  section "Table I"; table1 p ~n ~seed;
  section "Table II"; table2 p ~n ~seed;
  section "Fig.3";  fig3 p ~n:(Int.min n 1500) ~seed;
  section "Table III"; table3 p ~n:(Int.min n 1500) ~seed;
  section "Fig.4";  fig4 p ~n:(Int.min n 1000) ~seed;
  section "Fig.5";  fig5 p ~n:(Int.min n 300) ~seed;
  section "Fig.6";  fig6 p ~n:(Int.min n 400) ~seed;
  section "Fig.7";  fig7 p ~n:(Int.min n 300) ~seed;
  section "Fig.8";  fig8 p ~n:(Int.min n 60) ~seed;
  section "Fig.9";  fig9 p ~n:(Int.min n 400) ~seed;
  section "Table IV"; table4 p ~n:(Int.min n 60) ~seed;
  section "Ablation: Vdd transfer"; ablation_vdd p ~n:(Int.min n 1000) ~seed;
  section "Extension: inter-die"; inter_die p ~n:(Int.min n 120) ~seed;
  section "Extension: SSTA"; ssta p ~n:(Int.min n 150) ~seed

let export_cmd =
  let dir_t =
    Arg.(
      value & opt string "csv"
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run verbose jobs seed retry inject bpv_n n dir =
    setup_logs verbose;
    Option.iter Vstat_runtime.Runtime.set_default_jobs jobs;
    apply_resilience retry inject;
    let p = pipeline bpv_n seed in
    export dir p ~n ~seed;
    std_formatter_flush ()
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export figure data series to CSV files")
    Term.(
      const run $ verbose_t $ jobs_t $ seed_t $ retry_t $ inject_fault_t
      $ geometry_mc_t $ samples_t 300 $ dir_t)

let cmds =
  [
    export_cmd;
    run_cmd "fig1" "VS-vs-golden I-V fit (Fig. 1)" ~default_n:0 fig1;
    run_cmd "fig2" "Per-geometry vs stacked BPV (Fig. 2)" ~default_n:0 fig2;
    run_cmd "table1" "Variation parameter list (Table I)" ~default_n:0 table1;
    run_cmd "table2" "Extracted alpha coefficients (Table II)" ~default_n:0
      table2;
    run_cmd "fig3" "Idsat mismatch contributions vs width (Fig. 3)"
      ~default_n:1500 fig3;
    run_cmd "table3" "Device MC sigma comparison (Table III)" ~default_n:1500
      table3;
    run_cmd "fig4" "Ion/Ioff scatter + confidence ellipses (Fig. 4)"
      ~default_n:1000 fig4;
    run_cmd "fig5" "INV FO3 delay PDFs, three sizes (Fig. 5)" ~default_n:400
      fig5;
    run_cmd "fig6" "Leakage vs frequency scatter (Fig. 6)" ~default_n:600 fig6;
    run_cmd "fig7" "NAND2 delay vs Vdd + QQ plots (Fig. 7)" ~default_n:400
      fig7;
    run_cmd "fig8" "DFF setup-time distribution (Fig. 8)" ~default_n:120 fig8;
    run_cmd "fig9" "SRAM butterfly + SNM distributions (Fig. 9)"
      ~default_n:500 fig9;
    run_cmd "table4" "Runtime/memory comparison (Table IV)" ~default_n:100
      table4;
    run_cmd "ablation-vdd"
      "Ablation: nominal-Vdd extraction reused at low Vdd" ~default_n:1500
      ablation_vdd;
    run_cmd "inter-die" "Extension: inter-die + within-die variation (eq. 1)"
      ~default_n:160 inter_die;
    run_cmd "ssta" "Extension: Gaussian SSTA vs transistor-level MC"
      ~default_n:300 ssta;
    run_cmd "all" "Run every experiment at reduced sample counts"
      ~default_n:1000 all;
  ]

let () =
  let info =
    Cmd.info "vstat" ~version:"1.0.0"
      ~doc:
        "Statistical Virtual Source MOSFET model: reproduction of the DATE \
         2013 experiments"
  in
  exit (Cmd.eval (Cmd.group info cmds))
