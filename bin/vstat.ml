(* vstat — reproduce every table and figure of "Statistical Modeling with
   the Virtual Source MOSFET Model" (DATE 2013) on the synthetic 40 nm node.

   Each subcommand prints the corresponding experiment's rows/series; `all`
   runs the full set.  Sample counts default to fast-but-meaningful values;
   use -n to reach the paper's counts (e.g. 2500 for Fig. 5). *)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

(* Checkpoint/deadline state shared between the pipeline build and the
   experiment runs: one watchdog instance is the whole process's budget. *)
let checkpoint_settings : Vstat_runtime.Checkpoint.settings option ref =
  ref None

let process_deadline : (unit -> bool) option ref = ref None
let graceful_signals = [ Sys.sigint; Sys.sigterm ]

let pipeline samples_per_geometry seed =
  Vstat_core.Pipeline.build ~seed ?checkpoint:!checkpoint_settings
    ?deadline:!process_deadline ~signals:graceful_signals
    ~mc_per_geometry:samples_per_geometry ()

open Cmdliner

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable progress logging.")

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 1 -> Ok j
    | Some _ -> Error (`Msg "must be a positive integer (>= 1)")
    | None -> Error (`Msg (Printf.sprintf "invalid value %S, expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let nonneg_int =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 0 -> Ok j
    | Some _ -> Error (`Msg "must be a non-negative integer (>= 0)")
    | None ->
      Error (`Msg (Printf.sprintf "invalid value %S, expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let positive_float =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v > 0.0 -> Ok v
    | Some _ -> Error (`Msg "must be a finite positive number")
    | None ->
      Error (`Msg (Printf.sprintf "invalid value %S, expected a number" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let jobs_t =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for Monte Carlo sampling (Vstat_runtime). Defaults \
           to $(b,VSTAT_JOBS) from the environment, else the machine's \
           recommended domain count. Results are bit-identical for any \
           value.")

let seed_t =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let retry_t =
  Arg.(
    value & opt positive_int 1
    & info [ "retry" ] ~docv:"ATTEMPTS"
        ~doc:
          "Max attempts per Monte Carlo sample. Failed samples are re-run \
           with escalated solver options on the same RNG substream, so \
           results stay deterministic and jobs-independent. 1 disables \
           retries.")

let deadline_t =
  Arg.(
    value
    & opt (some positive_float) None
    & info [ "deadline" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget (seconds) for the whole invocation, measured \
           on the monotonic clock. When it expires, the Monte Carlo run in \
           flight stops at a sample boundary, checkpoints (if enabled) and \
           reports a partial result with honestly widened confidence \
           intervals.")

let checkpoint_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Journal completed Monte Carlo samples into $(docv) (one .ckpt \
           snapshot + .json manifest per run label), written atomically so \
           a crash never leaves a torn file. Use $(b,--resume) to continue \
           from them.")

let checkpoint_every_t =
  Arg.(
    value & opt nonneg_int 100
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Flush a snapshot after every $(docv) newly completed samples (0 \
           = only at run end / interruption).")

let resume_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"DIR"
        ~doc:
          "Resume from snapshots in $(docv) (implies \
           $(b,--checkpoint-dir) $(docv)). Snapshots are verified against \
           the run identity (label, seed, sample count, retry depth, \
           injection config); a mismatched or corrupt snapshot aborts with \
           a typed error. Only incomplete sample indices are re-run, on \
           their original RNG substreams: the resumed result is \
           bit-identical to an uninterrupted run.")

let inject_fault_t =
  let fault_conv =
    let parse s =
      match Vstat_device.Fault_inject.parse_spec s with
      | Ok cfg -> Ok cfg
      | Error m -> Error (`Msg m)
    in
    let print ppf cfg =
      Format.pp_print_string ppf (Vstat_device.Fault_inject.spec_to_string cfg)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "inject-fault" ] ~docv:"RATE[:KIND]"
        ~doc:
          "Chaos testing: deterministically inject device-model faults at \
           the given per-sample rate. KIND is one of nan, inf, perturb, \
           raise (default raise). Injection is keyed by sample index and \
           retry attempt, so it is reproducible and independent of --jobs.")

type controls = {
  retry : int;
  inject : Vstat_device.Fault_inject.config option;
  deadline_s : float option;
  ckpt_dir : string option;
  ckpt_every : int;
  resume_dir : string option;
}

let controls_t =
  let mk retry inject deadline_s ckpt_dir ckpt_every resume_dir =
    { retry; inject; deadline_s; ckpt_dir; ckpt_every; resume_dir }
  in
  Term.(
    const mk $ retry_t $ inject_fault_t $ deadline_t $ checkpoint_dir_t
    $ checkpoint_every_t $ resume_t)

let apply_controls c =
  if c.retry > 1 then
    Vstat_experiments.Mc_compare.set_default_retry
      (Vstat_runtime.Runtime.retry c.retry);
  Vstat_experiments.Mc_compare.set_default_inject c.inject;
  (match (c.ckpt_dir, c.resume_dir) with
  | Some _, Some _ ->
    Format.eprintf
      "--checkpoint-dir and --resume are mutually exclusive (--resume DIR \
       already checkpoints into DIR)@.";
    exit 2
  | _ -> ());
  let settings =
    match (c.resume_dir, c.ckpt_dir) with
    | Some dir, _ ->
      Some
        (Vstat_runtime.Checkpoint.settings ~every:c.ckpt_every ~resume:true
           dir)
    | None, Some dir ->
      Some (Vstat_runtime.Checkpoint.settings ~every:c.ckpt_every dir)
    | None, None -> None
  in
  checkpoint_settings := settings;
  Vstat_experiments.Mc_compare.set_default_checkpoint settings;
  (* One watchdog for the whole process: every subsequent run shares the
     same wall-clock budget (created here, at CLI-parse time — the only
     sanctioned wall-clock use, inside Vstat_runtime.Deadline). *)
  (match c.deadline_s with
  | Some seconds ->
    let w = Vstat_runtime.Deadline.watchdog ~seconds in
    process_deadline := Some w;
    Vstat_experiments.Mc_compare.set_default_deadline (Some w)
  | None -> ());
  Vstat_experiments.Mc_compare.set_default_signals graceful_signals

(* Validated numeric convs everywhere: a negative -n or zero --bpv-samples
   used to raise Invalid_argument deep inside the runtime (exit 125); bad
   flag values must be a usage error (exit 2) instead. *)
let samples_t default =
  Arg.(
    value & opt nonneg_int default
    & info [ "n"; "samples" ] ~docv:"N"
        ~doc:"Monte Carlo samples per model (paper-scale values are larger).")

let geometry_mc_t =
  Arg.(
    value & opt positive_int 2000
    & info [ "bpv-samples" ] ~docv:"N"
        ~doc:"Golden MC samples per geometry used for BPV observation.")

let std_formatter_flush () = Format.pp_print_flush Format.std_formatter ()

let run_cmd name doc ~default_n f =
  let run verbose jobs seed controls bpv_n n =
    setup_logs verbose;
    Option.iter Vstat_runtime.Runtime.set_default_jobs jobs;
    apply_controls controls;
    let p = pipeline bpv_n seed in
    f p ~n ~seed;
    std_formatter_flush ()
  in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const run $ verbose_t $ jobs_t $ seed_t $ controls_t $ geometry_mc_t
      $ samples_t default_n)

let fmt = Format.std_formatter

let fig1 p ~n:_ ~seed:_ = Vstat_experiments.Exp_fig1.pp fmt (Vstat_experiments.Exp_fig1.run p)

let fig2 p ~n:_ ~seed:_ = Vstat_experiments.Exp_fig2.pp fmt (Vstat_experiments.Exp_fig2.run p)

let table1 _p ~n:_ ~seed:_ =
  Format.fprintf fmt
    "Table I: VS model parameters used for statistical modeling@\n";
  Vstat_util.Floatx.pp_table fmt
    ~header:[ "source"; "parameter"; "description" ]
    ~rows:
      [
        [ "LER"; "Leff (nm)"; "effective channel length" ];
        [ "LER"; "Weff (nm)"; "effective channel width" ];
        [ "RDF"; "VT0 (V)"; "zero-bias threshold voltage" ];
        [ "OTF"; "Cinv (uF/cm2)"; "effective gate-to-channel capacitance" ];
        [ "Stress"; "mu (cm2/V.s)"; "carrier mobility" ];
        [ "Stress"; "vxo (cm/s)";
          "virtual source velocity (slaved to mu and DIBL, eq. 5)" ];
      ]

let table2 p ~n:_ ~seed:_ =
  Vstat_experiments.Exp_table2.pp fmt (Vstat_experiments.Exp_table2.run p)

let fig3 p ~n ~seed = Vstat_experiments.Exp_fig3.pp fmt (Vstat_experiments.Exp_fig3.run ~n ~seed p)

let table3 p ~n ~seed =
  Vstat_experiments.Exp_table3.pp fmt (Vstat_experiments.Exp_table3.run ~n ~seed p)

let fig4 p ~n ~seed = Vstat_experiments.Exp_fig4.pp fmt (Vstat_experiments.Exp_fig4.run ~n ~seed p)

let fig5 p ~n ~seed = Vstat_experiments.Exp_fig5.pp fmt (Vstat_experiments.Exp_fig5.run ~n ~seed p)

let fig6 p ~n ~seed = Vstat_experiments.Exp_fig6.pp fmt (Vstat_experiments.Exp_fig6.run ~n ~seed p)

let fig7 p ~n ~seed = Vstat_experiments.Exp_fig7.pp fmt (Vstat_experiments.Exp_fig7.run ~n ~seed p)

let fig8 p ~n ~seed = Vstat_experiments.Exp_fig8.pp fmt (Vstat_experiments.Exp_fig8.run ~n ~seed p)

let fig9 p ~n ~seed = Vstat_experiments.Exp_fig9.pp fmt (Vstat_experiments.Exp_fig9.run ~n ~seed p)

let table4 p ~n ~seed =
  let t =
    Vstat_experiments.Exp_table4.run ~n_nand2:n ~n_dff:(Int.max 5 (n / 5))
      ~n_sram:n ~seed p
  in
  Vstat_experiments.Exp_table4.pp fmt t;
  Format.fprintf fmt "raw model-eval cost ratio (golden/VS): %.2fx@\n"
    (Vstat_experiments.Exp_table4.model_eval_comparison p)

let ablation_vdd p ~n ~seed =
  Vstat_experiments.Exp_vdd_transfer.pp fmt
    (Vstat_experiments.Exp_vdd_transfer.run ~n ~seed p)

let inter_die p ~n ~seed =
  Vstat_experiments.Exp_inter_die.pp fmt
    (Vstat_experiments.Exp_inter_die.run ~n_dies:(Int.max 4 (n / 8))
       ~per_die:8 ~seed p)

let ssta p ~n ~seed =
  Vstat_experiments.Exp_ssta.pp fmt
    (Vstat_experiments.Exp_ssta.run ~n ~seed p)

let export dir p ~n ~seed =
  let paths = Vstat_experiments.Exp_export.write_all ~dir ~n ~seed p in
  List.iter (fun path -> Format.fprintf fmt "wrote %s@\n" path) paths

let all p ~n ~seed =
  let section title =
    Format.fprintf fmt "@\n=== %s ===@\n" title
  in
  section "Fig.1";  fig1 p ~n ~seed;
  section "Fig.2";  fig2 p ~n ~seed;
  section "Table I"; table1 p ~n ~seed;
  section "Table II"; table2 p ~n ~seed;
  section "Fig.3";  fig3 p ~n:(Int.min n 1500) ~seed;
  section "Table III"; table3 p ~n:(Int.min n 1500) ~seed;
  section "Fig.4";  fig4 p ~n:(Int.min n 1000) ~seed;
  section "Fig.5";  fig5 p ~n:(Int.min n 300) ~seed;
  section "Fig.6";  fig6 p ~n:(Int.min n 400) ~seed;
  section "Fig.7";  fig7 p ~n:(Int.min n 300) ~seed;
  section "Fig.8";  fig8 p ~n:(Int.min n 60) ~seed;
  section "Fig.9";  fig9 p ~n:(Int.min n 400) ~seed;
  section "Table IV"; table4 p ~n:(Int.min n 60) ~seed;
  section "Ablation: Vdd transfer"; ablation_vdd p ~n:(Int.min n 1000) ~seed;
  section "Extension: inter-die"; inter_die p ~n:(Int.min n 120) ~seed;
  section "Extension: SSTA"; ssta p ~n:(Int.min n 150) ~seed

let sram_yield_cmd =
  let rare_t =
    Arg.(
      value
      & opt (enum [ ("is", `Is); ("blockade", `Blockade); ("all", `All) ]) `All
      & info [ "rare" ] ~docv:"ESTIMATOR"
          ~doc:
            "Rare-event estimator: $(b,is) (importance sampling under a \
             pilot-aimed defensive mixture proposal), $(b,blockade) \
             (classifier-filtered Monte Carlo), or $(b,all) (both, \
             cross-validated against a brute-force golden run).")
  in
  let sigma_shift_t =
    Arg.(
      value & opt positive_float 1.0
      & info [ "sigma-shift" ] ~docv:"SCALE"
          ~doc:
            "Sigma multiplier of the importance-sampling proposal around \
             its pilot-derived mean shifts (1.0 = shift only).")
  in
  let pilot_n_t =
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "pilot-n" ] ~docv:"N"
          ~doc:
            "Pilot samples used to aim the IS proposal and to train the \
             blockade classifier (defaults: 200 for IS, max(100, n/20) \
             for blockade).")
  in
  let threshold_t =
    Arg.(
      value & opt positive_float 0.025
      & info [ "tail-threshold" ] ~docv:"VOLT"
          ~doc:"Failure threshold: the cell fails when SNM < $(docv).")
  in
  let vdd_t =
    Arg.(
      value & opt positive_float 0.80
      & info [ "vdd" ] ~docv:"VOLT"
          ~doc:"Supply voltage for the yield question.")
  in
  let run verbose jobs seed controls bpv_n n rare sigma_shift pilot_n
      threshold vdd =
    setup_logs verbose;
    Option.iter Vstat_runtime.Runtime.set_default_jobs jobs;
    apply_controls controls;
    let p = pipeline bpv_n seed in
    let module Y = Vstat_experiments.Exp_sram_yield in
    (match rare with
    | `All ->
      Y.pp fmt
        (Y.run ~n ~seed ~vdd ~threshold ~sigma_shift ?pilot_n p)
    | `Is ->
      let r =
        Y.estimate_is ~n ~seed ~vdd ~threshold ~sigma_shift ?pilot_n p
      in
      Vstat_rare.Importance.pp fmt r;
      Format.fprintf fmt
        "  plain-MC samples for this interval width: %.0f (%.1fx speedup)@\n"
        (Vstat_rare.Importance.mc_equivalent_samples r)
        (Vstat_rare.Importance.mc_equivalent_samples r /. Float.of_int r.n)
    | `Blockade ->
      let r = Y.estimate_blockade ~n ~seed ~vdd ~threshold ?pilot_n p in
      Vstat_rare.Blockade.pp fmt r);
    std_formatter_flush ()
  in
  Cmd.v
    (Cmd.info "sram-yield"
       ~doc:
         "Rare-event SRAM yield: P(SNM < threshold) at low Vdd via \
          importance sampling and statistical blockade")
    Term.(
      const run $ verbose_t $ jobs_t $ seed_t $ controls_t $ geometry_mc_t
      $ samples_t 4000 $ rare_t $ sigma_shift_t $ pilot_n_t $ threshold_t
      $ vdd_t)

let submit_cmd =
  let module P = Vstat_service.Protocol in
  let socket_t =
    Arg.(
      value
      & opt string (Filename.concat "vstatd-state" "vstatd.sock")
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket the vstatd daemon listens on.")
  in
  let kind_t =
    Arg.(
      value
      & opt
          (enum
             [
               ("inv", `Inv);
               ("snm-read", `SnmRead);
               ("snm-hold", `SnmHold);
               ("idsat", `Idsat);
             ])
          `Inv
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Job kind: $(b,inv) (FO-N inverter delay), $(b,snm-read) / \
             $(b,snm-hold) (6T SRAM static noise margin), $(b,idsat) \
             (NMOS on-current draw).")
  in
  let fanout_t =
    Arg.(
      value & opt positive_int 3
      & info [ "fanout" ] ~docv:"N" ~doc:"Inverter fanout (kind inv).")
  in
  let submit_n_t =
    Arg.(
      value & opt positive_int 200
      & info [ "n"; "samples" ] ~docv:"N" ~doc:"Monte Carlo samples.")
  in
  let vdd_t =
    Arg.(
      value & opt positive_float 1.0
      & info [ "vdd" ] ~docv:"VOLT" ~doc:"Supply voltage.")
  in
  let submit_deadline_t =
    Arg.(
      value
      & opt (some positive_float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:
            "Per-request deadline, anchored at submission. The daemon sheds \
             the request up front if its backlog estimate already exceeds \
             the budget, and otherwise returns a partial result (fewer \
             samples, honestly wider confidence interval) when the budget \
             expires mid-run.")
  in
  let no_wait_t =
    Arg.(
      value & flag
      & info [ "no-wait" ]
          ~doc:"Print the job id after admission and exit without polling.")
  in
  let client_t =
    Arg.(
      value & opt string "default"
      & info [ "client" ] ~docv:"ID"
          ~doc:
            "Fairness identity: the daemon serves queued jobs round-robin \
             across client ids, so a flooding client delays only itself. \
             Does not affect the job's cache identity.")
  in
  let timeout_t =
    Arg.(
      value & opt positive_float 600.0
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:"Give up polling for the result after $(docv) seconds.")
  in
  let run verbose socket kind fanout n seed retry vdd deadline no_wait
      client timeout =
    setup_logs verbose;
    let kind =
      match kind with
      | `Inv -> P.Inverter_tpd { fanout }
      | `SnmRead -> P.Sram_snm { read = true }
      | `SnmHold -> P.Sram_snm { read = false }
      | `Idsat -> P.Idsat
    in
    let spec = { P.kind; n; seed; vdd; retry } in
    let deadline_s = Option.value deadline ~default:0.0 in
    let reason_line = function
      | P.Queue_full { queued; queue_max } ->
        Printf.sprintf "queue full (%d/%d jobs)" queued queue_max
      | P.Over_deadline { estimated_wait_s; deadline_s } ->
        Printf.sprintf
          "over deadline (estimated backlog %.2fs > budget %.2fs)"
          estimated_wait_s deadline_s
      | P.Bad_request { detail } -> "bad request: " ^ detail
    in
    match
      Vstat_service.Client.submit ~seed ~client ~socket_path:socket ~spec
        ~deadline_s ()
    with
    | Error msg ->
      Format.eprintf "vstat submit: %s@." msg;
      exit 1
    | Ok (P.Rejected { reason }) ->
      Format.eprintf "vstat submit: rejected: %s@." (reason_line reason);
      exit 3
    | Ok (P.Accepted { id; cached }) ->
      Format.printf "job %s%s@." id (if cached then " (cached)" else "");
      if not no_wait then begin
        match
          Vstat_service.Client.await ~seed ~timeout_s:timeout
            ~socket_path:socket ~id ()
        with
        | Error (Vstat_service.Client.Await_quarantined _ as e) ->
          (* Terminal daemon-side verdict, distinct from transport
             trouble: the job is poisoned, resubmitting will not help. *)
          Format.eprintf "vstat submit: job %s %s@." id
            (Vstat_service.Client.await_error_to_string e);
          exit 4
        | Error e ->
          Format.eprintf "vstat submit: %s@."
            (Vstat_service.Client.await_error_to_string e);
          exit 1
        | Ok s ->
          Format.printf
            "%s: %s%s  n=%d/%d  failed=%d  retried=%d  wall=%.3fs@."
            s.P.id s.P.cause
            (if s.P.cached then " (cached)" else "")
            s.P.completed s.P.n s.P.failed s.P.retried s.P.wall_s;
          Format.printf "mean=%.6g  std=%.6g  95%%-CI=[%.6g, %.6g]@." s.P.mean
            s.P.std s.P.ci_lo s.P.ci_hi;
          if s.P.partial then
            Format.printf
              "(partial: %d of %d samples — interval honestly widened)@."
              s.P.completed s.P.n
      end;
      std_formatter_flush ()
    | Ok _ ->
      Format.eprintf "vstat submit: unexpected daemon response@.";
      exit 1
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a Monte Carlo job to a running vstatd daemon and wait for \
          the (possibly cached or deadline-degraded) result")
    Term.(
      const run $ verbose_t $ socket_t $ kind_t $ fanout_t $ submit_n_t
      $ seed_t $ retry_t $ vdd_t $ submit_deadline_t $ no_wait_t $ client_t
      $ timeout_t)

let export_cmd =
  let dir_t =
    Arg.(
      value & opt string "csv"
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run verbose jobs seed controls bpv_n n dir =
    setup_logs verbose;
    Option.iter Vstat_runtime.Runtime.set_default_jobs jobs;
    apply_controls controls;
    let p = pipeline bpv_n seed in
    export dir p ~n ~seed;
    std_formatter_flush ()
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export figure data series to CSV files")
    Term.(
      const run $ verbose_t $ jobs_t $ seed_t $ controls_t $ geometry_mc_t
      $ samples_t 300 $ dir_t)

let cmds =
  [
    export_cmd;
    submit_cmd;
    sram_yield_cmd;
    run_cmd "fig1" "VS-vs-golden I-V fit (Fig. 1)" ~default_n:0 fig1;
    run_cmd "fig2" "Per-geometry vs stacked BPV (Fig. 2)" ~default_n:0 fig2;
    run_cmd "table1" "Variation parameter list (Table I)" ~default_n:0 table1;
    run_cmd "table2" "Extracted alpha coefficients (Table II)" ~default_n:0
      table2;
    run_cmd "fig3" "Idsat mismatch contributions vs width (Fig. 3)"
      ~default_n:1500 fig3;
    run_cmd "table3" "Device MC sigma comparison (Table III)" ~default_n:1500
      table3;
    run_cmd "fig4" "Ion/Ioff scatter + confidence ellipses (Fig. 4)"
      ~default_n:1000 fig4;
    run_cmd "fig5" "INV FO3 delay PDFs, three sizes (Fig. 5)" ~default_n:400
      fig5;
    run_cmd "fig6" "Leakage vs frequency scatter (Fig. 6)" ~default_n:600 fig6;
    run_cmd "fig7" "NAND2 delay vs Vdd + QQ plots (Fig. 7)" ~default_n:400
      fig7;
    run_cmd "fig8" "DFF setup-time distribution (Fig. 8)" ~default_n:120 fig8;
    run_cmd "fig9" "SRAM butterfly + SNM distributions (Fig. 9)"
      ~default_n:500 fig9;
    run_cmd "table4" "Runtime/memory comparison (Table IV)" ~default_n:100
      table4;
    run_cmd "ablation-vdd"
      "Ablation: nominal-Vdd extraction reused at low Vdd" ~default_n:1500
      ablation_vdd;
    run_cmd "inter-die" "Extension: inter-die + within-die variation (eq. 1)"
      ~default_n:160 inter_die;
    run_cmd "ssta" "Extension: Gaussian SSTA vs transistor-level MC"
      ~default_n:300 ssta;
    run_cmd "all" "Run every experiment at reduced sample counts"
      ~default_n:1000 all;
  ]

let () =
  let info =
    Cmd.info "vstat" ~version:"1.0.0"
      ~doc:
        "Statistical Virtual Source MOSFET model: reproduction of the DATE \
         2013 experiments"
  in
  match Cmd.eval ~catch:false (Cmd.group info cmds) with
  | exception Vstat_runtime.Checkpoint.Interrupted
      { label; signal; completed; n; snapshot } ->
    std_formatter_flush ();
    let signal = Vstat_runtime.Checkpoint.os_signal_number signal in
    Format.eprintf
      "vstat: interrupted by signal %d during %s: %d/%d samples safe%s@."
      signal label completed n
      (match snapshot with
      | Some path -> ", snapshot at " ^ path ^ " (re-run with --resume)"
      | None -> " (no --checkpoint-dir, progress not persisted)");
    exit (128 + signal)
  | exception Vstat_runtime.Journal.Rejected e ->
    Format.eprintf "vstat: cannot resume: %s@."
      (Vstat_runtime.Journal.error_to_string e);
    exit 2
  | exception e ->
    Format.eprintf "vstat: internal error: %s@." (Printexc.to_string e);
    exit 125
  | code ->
    (* cmdliner reports CLI parse/validation errors as its own 124; the
       documented contract here is exit code 2 for bad flags. *)
    exit (if code = Cmd.Exit.cli_error then 2 else code)
