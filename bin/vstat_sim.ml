(* vstat_sim — standalone SPICE-deck simulator on the vstat engine.

   Usage: dune exec bin/vstat_sim.exe -- deck.sp [--csv]

   Runs every analysis directive in the deck and prints results: operating
   point plus, per directive, a table (or CSV with --csv) of node voltages
   over time / sweep value / frequency. *)

module P = Vstat_circuit.Spice_parser
module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine


let print_series ~csv ~x_label ~x ~columns =
  let header = x_label :: List.map fst columns in
  if csv then begin
    print_endline (String.concat "," header);
    Array.iteri
      (fun i xi ->
        let cells =
          Printf.sprintf "%.9g" xi
          :: List.map (fun (_, ys) -> Printf.sprintf "%.9g" ys.(i)) columns
        in
        print_endline (String.concat "," cells))
      x
  end
  else begin
    let rows =
      (* Sample up to ~24 evenly spaced rows for terminal output. *)
      let n = Array.length x in
      let step = Int.max 1 (n / 24) in
      List.filter_map
        (fun i ->
          if i mod step = 0 || i = n - 1 then
            Some
              (Printf.sprintf "%.4g" x.(i)
              :: List.map
                   (fun (_, ys) -> Printf.sprintf "%.5g" ys.(i))
                   columns)
          else None)
        (List.init n Fun.id)
    in
    Vstat_util.Floatx.pp_table Format.std_formatter ~header ~rows;
    Format.pp_print_flush Format.std_formatter ()
  end

(* Rebuild a netlist with every MOSFET's device instance mapped through
   [map_dev] (used to arm injected faults without touching the parse). *)
let map_devices netlist ~map_dev =
  let net2 = N.create () in
  List.iter
    (fun e ->
      let copy n = N.node net2 (N.node_name netlist n) in
      match e with
      | N.Vsource { name; plus; minus; wave } ->
        N.vsource net2 name ~plus:(copy plus) ~minus:(copy minus) ~wave
      | N.Resistor { name; a; b; ohms } ->
        N.resistor net2 name ~a:(copy a) ~b:(copy b) ~ohms
      | N.Capacitor { name; a; b; farads } ->
        N.capacitor net2 name ~a:(copy a) ~b:(copy b) ~farads
      | N.Isource { name; from_; to_; wave } ->
        N.isource net2 name ~from_:(copy from_) ~to_:(copy to_) ~wave
      | N.Mosfet { name; d; g; s; b; dev } ->
        N.mosfet net2 name ~d:(copy d) ~g:(copy g) ~s:(copy s) ~b:(copy b)
          ~dev:(map_dev dev))
    (N.elements netlist);
  net2

module FI = Vstat_device.Fault_inject

let inject_netlist cfg ~attempt netlist =
  match FI.plan cfg ~key:attempt with
  | None -> netlist
  | Some plan ->
    let created = ref 0 in
    map_devices netlist ~map_dev:(fun dev ->
        let ord = !created mod FI.ordinal_span in
        incr created;
        if ord = plan.FI.device_ordinal then FI.wrap plan dev else dev)

let run_netlist ~csv ~deadline (deck : P.deck) netlist =
  let eng = E.compile netlist in
  let nodes = N.all_nodes netlist in
  let names = List.map fst nodes in
  (* Operating point. *)
  let op = E.dc eng in
  Printf.printf "\noperating point:\n";
  List.iter
    (fun (name, n) -> Printf.printf "  v(%s) = %.6g V\n" name (E.voltage eng op n))
    nodes;
  List.iter
    (fun src ->
      Printf.printf "  i(%s) = %.6g A\n" src (E.source_current eng op src))
    (N.vsource_names netlist);
  (* Analyses.  The wall-clock budget is checked between directives: an
     expired deadline skips the remaining analyses (each completed one has
     already been printed) instead of tearing the run mid-solve. *)
  let expired = ref false in
  List.iter
    (fun analysis ->
      if (not !expired) && deadline () then begin
        expired := true;
        Printf.printf
          "\ndeadline reached — skipping the remaining analyses\n"
      end;
      if !expired then ()
      else
      match analysis with
      | P.Tran { tstep; tstop } ->
        Printf.printf "\n.tran %g %g\n" tstep tstop;
        let trace = E.transient eng ~tstop ~dt:tstep in
        let columns =
          List.map
            (fun (name, n) -> ("v(" ^ name ^ ")", E.node_wave eng trace n))
            nodes
        in
        print_series ~csv ~x_label:"time" ~x:trace.E.times ~columns
      | P.Dc_sweep { source; start; stop; step } ->
        Printf.printf "\n.dc %s %g %g %g\n" source start stop step;
        (* Rebuild the deck with the swept source replaced by a Var. *)
        let sweep_ref = ref start in
        let net2 = N.create () in
        List.iter
          (fun e ->
            match e with
            | N.Vsource { name; plus; minus; wave } ->
              let plus = N.node net2 (N.node_name netlist plus) in
              let minus = N.node net2 (N.node_name netlist minus) in
              let wave =
                if String.lowercase_ascii name = source then
                  Vstat_circuit.Waveform.Var sweep_ref
                else wave
              in
              N.vsource net2 name ~plus ~minus ~wave
            | N.Resistor { name; a; b; ohms } ->
              N.resistor net2 name
                ~a:(N.node net2 (N.node_name netlist a))
                ~b:(N.node net2 (N.node_name netlist b))
                ~ohms
            | N.Capacitor { name; a; b; farads } ->
              N.capacitor net2 name
                ~a:(N.node net2 (N.node_name netlist a))
                ~b:(N.node net2 (N.node_name netlist b))
                ~farads
            | N.Isource { name; from_; to_; wave } ->
              N.isource net2 name
                ~from_:(N.node net2 (N.node_name netlist from_))
                ~to_:(N.node net2 (N.node_name netlist to_))
                ~wave
            | N.Mosfet { name; d; g; s; b; dev } ->
              N.mosfet net2 name
                ~d:(N.node net2 (N.node_name netlist d))
                ~g:(N.node net2 (N.node_name netlist g))
                ~s:(N.node net2 (N.node_name netlist s))
                ~b:(N.node net2 (N.node_name netlist b))
                ~dev)
          (N.elements netlist);
        let eng2 = E.compile net2 in
        let nodes2 = List.map (fun name -> (name, N.node net2 name)) names in
        let count = Float.to_int (Float.round (((stop -. start) /. step) +. 1.0)) in
        let xs =
          Array.init count (fun i -> start +. (step *. Float.of_int i))
        in
        let sources = N.vsource_names net2 in
        let guess = ref None in
        let results =
          Array.map
            (fun v ->
              sweep_ref := v;
              let op = E.dc ?guess:!guess eng2 in
              guess := Some (Array.copy op.E.x);
              List.map (fun (_, n) -> E.voltage eng2 op n) nodes2
              @ List.map (fun s -> E.source_current eng2 op s) sources)
            xs
        in
        let labels =
          List.map (fun (name, _) -> "v(" ^ name ^ ")") nodes2
          @ List.map (fun s -> "i(" ^ s ^ ")") sources
        in
        let columns =
          List.mapi
            (fun k label ->
              (label, Array.map (fun r -> List.nth r k) results))
            labels
        in
        print_series ~csv ~x_label:source ~x:xs ~columns
      | P.Ac { points_per_decade; f_start; f_stop; source } ->
        Printf.printf "\n.ac dec %d %g %g (%s)\n" points_per_decade f_start
          f_stop source;
        let decades = log10 (f_stop /. f_start) in
        let points =
          Int.max 2
            (1 + Float.to_int (Float.of_int points_per_decade *. decades))
        in
        let freqs =
          Vstat_util.Floatx.logspace (log10 f_start) (log10 f_stop) points
        in
        let ac = Vstat_circuit.Ac.sweep eng ~op ~source ~freqs_hz:freqs in
        let columns =
          List.concat_map
            (fun (name, n) ->
              let series = Vstat_circuit.Ac.node_transfer eng ac n in
              [
                ( "mag_db(" ^ name ^ ")",
                  Array.map (fun (_, h) -> Vstat_circuit.Ac.magnitude_db h) series );
                ( "phase(" ^ name ^ ")",
                  Array.map (fun (_, h) -> Vstat_circuit.Ac.phase_deg h) series );
              ])
            nodes
        in
        print_series ~csv ~x_label:"freq" ~x:freqs ~columns)
    deck.analyses

let run_deck ~csv ~retry ~inject ~deadline path =
  let deck = P.parse_file path in
  Printf.printf "* %s\n" deck.P.title;
  (* Deterministic retry ladder: re-run the whole deck under escalated
     solver options.  The injection key folds in the attempt number, so a
     retried run rolls an independent fault decision. *)
  let rec attempt_loop attempt =
    let netlist =
      match inject with
      | None -> deck.P.netlist
      | Some cfg -> inject_netlist cfg ~attempt deck.P.netlist
    in
    let opts = E.escalate ~attempt E.default_options in
    match
      E.with_options opts (fun () -> run_netlist ~csv ~deadline deck netlist)
    with
    | () -> ()
    | exception ((Vstat_circuit.Diag.Solver_error _ | FI.Injected _) as e) ->
      if attempt + 1 < retry then begin
        Printf.eprintf
          "vstat_sim: attempt %d failed (%s); retrying with escalated \
           solver options\n%!"
          (attempt + 1)
          (Printexc.to_string e);
        attempt_loop (attempt + 1)
      end
      else raise e
  in
  attempt_loop 0

let () =
  (* Strip "--jobs N" (Vstat_runtime worker count, also settable via
     VSTAT_JOBS), "--retry N" and "--inject-fault RATE[:KIND]" before the
     positional parse. *)
  let retry = ref 1 in
  let inject = ref None in
  let deadline = ref Vstat_runtime.Deadline.never in
  let rec extract acc = function
    | "--deadline" :: v :: rest -> (
      match float_of_string_opt v with
      | Some s when Float.is_finite s && s > 0.0 ->
        (* Built once, at CLI-parse time: the budget covers the whole
           invocation, not each analysis separately. *)
        deadline := Vstat_runtime.Deadline.watchdog ~seconds:s;
        extract acc rest
      | _ ->
        prerr_endline
          "vstat_sim: --deadline expects a positive number of seconds";
        exit 2)
    | "--jobs" :: v :: rest -> (
      match int_of_string_opt v with
      | Some j when j >= 1 ->
        Vstat_runtime.Runtime.set_default_jobs j;
        extract acc rest
      | _ ->
        prerr_endline "vstat_sim: --jobs expects a positive integer";
        exit 2)
    | "--retry" :: v :: rest -> (
      match int_of_string_opt v with
      | Some r when r >= 1 ->
        retry := r;
        extract acc rest
      | _ ->
        prerr_endline "vstat_sim: --retry expects a positive integer";
        exit 2)
    | "--inject-fault" :: v :: rest -> (
      match FI.parse_spec v with
      | Ok cfg ->
        inject := Some cfg;
        extract acc rest
      | Error msg ->
        Printf.eprintf "vstat_sim: --inject-fault: %s\n" msg;
        exit 2)
    | a :: rest -> extract (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract [] (List.tl (Array.to_list Sys.argv)) in
  let retry = !retry and inject = !inject and deadline = !deadline in
  match args with
  | [ path ] -> run_deck ~csv:false ~retry ~inject ~deadline path
  | [ path; "--csv" ] | [ "--csv"; path ] ->
    run_deck ~csv:true ~retry ~inject ~deadline path
  | _ ->
    prerr_endline
      "usage: vstat_sim <deck.sp> [--csv] [--jobs N] [--retry N] \
       [--inject-fault RATE[:KIND]] [--deadline SEC]";
    exit 2
