(* vstat_sim — standalone SPICE-deck simulator on the vstat engine.

   Usage: dune exec bin/vstat_sim.exe -- deck.sp [--csv]

   Runs every analysis directive in the deck and prints results: operating
   point plus, per directive, a table (or CSV with --csv) of node voltages
   over time / sweep value / frequency. *)

module P = Vstat_circuit.Spice_parser
module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine


let print_series ~csv ~x_label ~x ~columns =
  let header = x_label :: List.map fst columns in
  if csv then begin
    print_endline (String.concat "," header);
    Array.iteri
      (fun i xi ->
        let cells =
          Printf.sprintf "%.9g" xi
          :: List.map (fun (_, ys) -> Printf.sprintf "%.9g" ys.(i)) columns
        in
        print_endline (String.concat "," cells))
      x
  end
  else begin
    let rows =
      (* Sample up to ~24 evenly spaced rows for terminal output. *)
      let n = Array.length x in
      let step = Int.max 1 (n / 24) in
      List.filter_map
        (fun i ->
          if i mod step = 0 || i = n - 1 then
            Some
              (Printf.sprintf "%.4g" x.(i)
              :: List.map
                   (fun (_, ys) -> Printf.sprintf "%.5g" ys.(i))
                   columns)
          else None)
        (List.init n Fun.id)
    in
    Vstat_util.Floatx.pp_table Format.std_formatter ~header ~rows;
    Format.pp_print_flush Format.std_formatter ()
  end

let run_deck ~csv path =
  let deck = P.parse_file path in
  if deck.title <> "" then Printf.printf "* %s\n" deck.title;
  let eng = E.compile deck.netlist in
  let nodes = N.all_nodes deck.netlist in
  let names = List.map fst nodes in
  (* Operating point. *)
  let op = E.dc eng in
  Printf.printf "\noperating point:\n";
  List.iter
    (fun (name, n) -> Printf.printf "  v(%s) = %.6g V\n" name (E.voltage eng op n))
    nodes;
  List.iter
    (fun src ->
      Printf.printf "  i(%s) = %.6g A\n" src (E.source_current eng op src))
    (N.vsource_names deck.netlist);
  (* Analyses. *)
  List.iter
    (fun analysis ->
      match analysis with
      | P.Tran { tstep; tstop } ->
        Printf.printf "\n.tran %g %g\n" tstep tstop;
        let trace = E.transient eng ~tstop ~dt:tstep in
        let columns =
          List.map
            (fun (name, n) -> ("v(" ^ name ^ ")", E.node_wave eng trace n))
            nodes
        in
        print_series ~csv ~x_label:"time" ~x:trace.E.times ~columns
      | P.Dc_sweep { source; start; stop; step } ->
        Printf.printf "\n.dc %s %g %g %g\n" source start stop step;
        (* Rebuild the deck with the swept source replaced by a Var. *)
        let sweep_ref = ref start in
        let net2 = N.create () in
        List.iter
          (fun e ->
            match e with
            | N.Vsource { name; plus; minus; wave } ->
              let plus = N.node net2 (N.node_name deck.netlist plus) in
              let minus = N.node net2 (N.node_name deck.netlist minus) in
              let wave =
                if String.lowercase_ascii name = source then
                  Vstat_circuit.Waveform.Var sweep_ref
                else wave
              in
              N.vsource net2 name ~plus ~minus ~wave
            | N.Resistor { name; a; b; ohms } ->
              N.resistor net2 name
                ~a:(N.node net2 (N.node_name deck.netlist a))
                ~b:(N.node net2 (N.node_name deck.netlist b))
                ~ohms
            | N.Capacitor { name; a; b; farads } ->
              N.capacitor net2 name
                ~a:(N.node net2 (N.node_name deck.netlist a))
                ~b:(N.node net2 (N.node_name deck.netlist b))
                ~farads
            | N.Isource { name; from_; to_; wave } ->
              N.isource net2 name
                ~from_:(N.node net2 (N.node_name deck.netlist from_))
                ~to_:(N.node net2 (N.node_name deck.netlist to_))
                ~wave
            | N.Mosfet { name; d; g; s; b; dev } ->
              N.mosfet net2 name
                ~d:(N.node net2 (N.node_name deck.netlist d))
                ~g:(N.node net2 (N.node_name deck.netlist g))
                ~s:(N.node net2 (N.node_name deck.netlist s))
                ~b:(N.node net2 (N.node_name deck.netlist b))
                ~dev)
          (N.elements deck.netlist);
        let eng2 = E.compile net2 in
        let nodes2 = List.map (fun name -> (name, N.node net2 name)) names in
        let count = Float.to_int (Float.round (((stop -. start) /. step) +. 1.0)) in
        let xs =
          Array.init count (fun i -> start +. (step *. Float.of_int i))
        in
        let sources = N.vsource_names net2 in
        let guess = ref None in
        let results =
          Array.map
            (fun v ->
              sweep_ref := v;
              let op = E.dc ?guess:!guess eng2 in
              guess := Some (Array.copy op.E.x);
              List.map (fun (_, n) -> E.voltage eng2 op n) nodes2
              @ List.map (fun s -> E.source_current eng2 op s) sources)
            xs
        in
        let labels =
          List.map (fun (name, _) -> "v(" ^ name ^ ")") nodes2
          @ List.map (fun s -> "i(" ^ s ^ ")") sources
        in
        let columns =
          List.mapi
            (fun k label ->
              (label, Array.map (fun r -> List.nth r k) results))
            labels
        in
        print_series ~csv ~x_label:source ~x:xs ~columns
      | P.Ac { points_per_decade; f_start; f_stop; source } ->
        Printf.printf "\n.ac dec %d %g %g (%s)\n" points_per_decade f_start
          f_stop source;
        let decades = log10 (f_stop /. f_start) in
        let points =
          Int.max 2
            (1 + Float.to_int (Float.of_int points_per_decade *. decades))
        in
        let freqs =
          Vstat_util.Floatx.logspace (log10 f_start) (log10 f_stop) points
        in
        let ac = Vstat_circuit.Ac.sweep eng ~op ~source ~freqs_hz:freqs in
        let columns =
          List.concat_map
            (fun (name, n) ->
              let series = Vstat_circuit.Ac.node_transfer eng ac n in
              [
                ( "mag_db(" ^ name ^ ")",
                  Array.map (fun (_, h) -> Vstat_circuit.Ac.magnitude_db h) series );
                ( "phase(" ^ name ^ ")",
                  Array.map (fun (_, h) -> Vstat_circuit.Ac.phase_deg h) series );
              ])
            nodes
        in
        print_series ~csv ~x_label:"freq" ~x:freqs ~columns)
    deck.analyses

let () =
  (* Strip "--jobs N" (Vstat_runtime worker count, also settable via
     VSTAT_JOBS) before the positional parse. *)
  let rec extract_jobs acc = function
    | "--jobs" :: v :: rest -> (
      match int_of_string_opt v with
      | Some j when j >= 1 ->
        Vstat_runtime.Runtime.set_default_jobs j;
        extract_jobs acc rest
      | _ ->
        prerr_endline "vstat_sim: --jobs expects a positive integer";
        exit 2)
    | a :: rest -> extract_jobs (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_jobs [] (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [ path ] -> run_deck ~csv:false path
  | [ path; "--csv" ] | [ "--csv"; path ] -> run_deck ~csv:true path
  | _ ->
    prerr_endline "usage: vstat_sim <deck.sp> [--csv] [--jobs N]";
    exit 2
