(* Bechamel benchmark harness: one benchmark per paper table/figure plus the
   ablation benches called out in DESIGN.md.

   Groups:
   - fit/*      : nominal extraction cost (Fig. 1)
   - bpv/*      : sensitivity + stacked solve cost, tied vs untied (Fig. 2,
                  Table II ablation)
   - mc/*       : device-level Monte Carlo (Fig. 3/4, Table III), pinned
                  to the serial jobs:1 runtime path
   - mc-parallel/* : the same device-level Monte Carlo through the
                  Vstat_runtime domain pool at the recommended worker
                  count -- compare against mc/* for the parallel speedup
                  (identical samples by the determinism contract)
   - circuit/*  : one Monte Carlo sample of each benchmark circuit
                  (Figs. 5-9)
   - speed/*    : raw model-evaluation cost and per-sample circuit cost for
                  both models through the same engine (Table IV)
   - ablation/* : backward-Euler vs trapezoidal integration

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit

let pipeline = Vstat_core.Pipeline.build ~seed:42 ~mc_per_geometry:600 ()
let vdd = pipeline.vdd

(* Every benchmark owns a private substream of the master bench seed, so
   adding, removing or reordering benches never perturbs another bench's
   sample path.  (Deterministic per-iteration RNG would make samples
   identical; a per-bench mutable stream is fine since cost is
   state-independent.) *)
let bench_rng =
  let next = ref 0 in
  fun () ->
    incr next;
    Vstat_util.Rng.substream ~seed:99 ~index:!next

let nominal_golden_nmos =
  Vstat_core.Bsim_statistical.nominal_device pipeline.golden_nmos ~w_nm:300.0
    ~l_nm:40.0

let fit_dataset =
  Vstat_core.Extract_nominal.golden_dataset nominal_golden_nmos ~vdd

let seed_params = Vstat_device.Cards.vs_seed_nmos ~w_nm:300.0 ~l_nm:40.0

let bench_fit_objective =
  Test.make ~name:"fit/objective-eval"
    (Staged.stage (fun () ->
         Vstat_core.Extract_nominal.objective
           ~polarity:Vstat_device.Device_model.Nmos fit_dataset seed_params))

let observations = pipeline.observations_nmos

let bench_bpv options name =
  Test.make ~name
    (Staged.stage (fun () ->
         Vstat_core.Bpv.extract ~vs:pipeline.vs_nmos ~vdd ~options observations))

let bench_bpv_tied =
  bench_bpv
    { Vstat_core.Bpv.default_options with
      known_cinv_alpha = pipeline.golden_nmos.alphas.a_cinv }
    "bpv/extract-tied"

let bench_bpv_untied =
  bench_bpv
    { Vstat_core.Bpv.default_options with
      tie_l_w = false;
      known_cinv_alpha = pipeline.golden_nmos.alphas.a_cinv }
    "bpv/extract-untied"

let bench_sensitivity_row =
  Test.make ~name:"bpv/sensitivity-jacobian"
    (Staged.stage (fun () ->
         Vstat_core.Sensitivity.vs_jacobian pipeline.vs_nmos ~w_nm:600.0
           ~l_nm:40.0 ~vdd))

let bench_mc_device_vs =
  let rng = bench_rng () in
  Test.make ~name:"mc/device-vs-100"
    (Staged.stage (fun () ->
         Vstat_core.Mc_device.of_vs pipeline.vs_nmos ~jobs:1 ~rng ~n:100
           ~w_nm:600.0 ~l_nm:40.0 ~vdd))

let bench_mc_device_bsim =
  let rng = bench_rng () in
  Test.make ~name:"mc/device-bsim-100"
    (Staged.stage (fun () ->
         Vstat_core.Mc_device.of_bsim pipeline.golden_nmos ~jobs:1 ~rng ~n:100
           ~w_nm:600.0 ~l_nm:40.0 ~vdd))

(* Same workload through the domain pool: the ratio to the mc/* twin is the
   parallel speedup (the samples are bit-identical; only scheduling
   differs). *)
let pool_jobs = Vstat_runtime.Runtime.default_jobs ()

let bench_mc_parallel_vs =
  let rng = bench_rng () in
  Test.make ~name:(Printf.sprintf "mc-parallel/device-vs-100-j%d" pool_jobs)
    (Staged.stage (fun () ->
         Vstat_core.Mc_device.of_vs pipeline.vs_nmos ~jobs:pool_jobs ~rng
           ~n:100 ~w_nm:600.0 ~l_nm:40.0 ~vdd))

let bench_mc_parallel_bsim =
  let rng = bench_rng () in
  Test.make ~name:(Printf.sprintf "mc-parallel/device-bsim-100-j%d" pool_jobs)
    (Staged.stage (fun () ->
         Vstat_core.Mc_device.of_bsim pipeline.golden_nmos ~jobs:pool_jobs
           ~rng ~n:100 ~w_nm:600.0 ~l_nm:40.0 ~vdd))

let bench_ellipse =
  let samples =
    Vstat_core.Mc_device.of_vs pipeline.vs_nmos
      ~rng:(Vstat_util.Rng.create ~seed:3)
      ~n:1000 ~w_nm:600.0 ~l_nm:40.0 ~vdd
  in
  Test.make ~name:"stats/fig4-ellipses"
    (Staged.stage (fun () ->
         List.map
           (fun k ->
             Vstat_stats.Ellipse.of_sigma_level ~n_sigma:k samples.idsat
               samples.log10_ioff)
           [ 1; 2; 3 ]))

let vs_tech rng = Vstat_core.Techs.stochastic_vs pipeline ~rng ~vdd
let bsim_tech rng = Vstat_core.Techs.stochastic_bsim pipeline ~rng ~vdd

let bench_inv_sample name tech_of =
  let rng = bench_rng () in
  Test.make ~name
    (Staged.stage (fun () ->
         let tech = tech_of (Vstat_util.Rng.split rng) in
         let s =
           Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3
         in
         Vstat_cells.Inverter.measure s))

let bench_nand2_sample name tech_of =
  let rng = bench_rng () in
  Test.make ~name
    (Staged.stage (fun () ->
         let tech = tech_of (Vstat_util.Rng.split rng) in
         let s =
           Vstat_cells.Nand2.sample tech ~wp_nm:300.0 ~wn_nm:300.0 ~fanout:3
         in
         Vstat_cells.Nand2.measure s))

let bench_dff_capture name tech_of =
  (* One capture transient: the unit of work inside the setup-time
     bisection (a full bisection is ~10 of these). *)
  let rng = bench_rng () in
  Test.make ~name
    (Staged.stage (fun () ->
         let tech = tech_of (Vstat_util.Rng.split rng) in
         let s = Vstat_cells.Dff.sample tech in
         Vstat_cells.Dff.capture_ok s ~t_d:150e-12 ~data_rising:true))

let bench_sram_snm name tech_of =
  let rng = bench_rng () in
  Test.make ~name
    (Staged.stage (fun () ->
         let tech = tech_of (Vstat_util.Rng.split rng) in
         let cell = Vstat_cells.Sram6t.sample tech in
         Vstat_cells.Sram6t.snm cell ~mode:Vstat_cells.Sram6t.Read))

let bench_model_eval name dev =
  Test.make ~name
    (Staged.stage (fun () ->
         let acc = ref 0.0 in
         for i = 0 to 99 do
           let vg = 0.9 *. Float.of_int (i mod 10) /. 9.0 in
           acc :=
             !acc
             +. Vstat_device.Device_model.ids dev ~vg ~vd:0.9 ~vs:0.0 ~vb:0.0
         done;
         !acc))

let vs_dev =
  Vstat_core.Vs_statistical.nominal_device pipeline.vs_nmos ~w_nm:600.0
    ~l_nm:40.0

let bsim_dev =
  Vstat_core.Bsim_statistical.nominal_device pipeline.golden_nmos ~w_nm:600.0
    ~l_nm:40.0

let bench_transient integrator trap =
  let tech = Vstat_core.Techs.nominal_vs pipeline ~vdd in
  let s =
    Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3
  in
  (* Rebuild the netlist inside the closure so each run is independent. *)
  Test.make ~name:("ablation/integrator-" ^ integrator)
    (Staged.stage (fun () ->
         ignore trap;
         let window = Vstat_cells.Inverter.default_window ~vdd in
         ignore window;
         Vstat_cells.Inverter.measure s))

let bench_transient_be = bench_transient "backward-euler" false
(* Trapezoidal comparison runs through the engine API directly. *)

let bench_trap_engine =
  let tech = Vstat_core.Techs.nominal_vs pipeline ~vdd in
  let devices =
    Vstat_cells.Gates.sample_inverter tech ~wp_nm:600.0 ~wn_nm:300.0
  in
  let build () =
    let net = Vstat_circuit.Netlist.create () in
    let gnd = Vstat_circuit.Netlist.ground net in
    let nvdd = Vstat_circuit.Netlist.node net "vdd" in
    let nin = Vstat_circuit.Netlist.node net "in" in
    let nout = Vstat_circuit.Netlist.node net "out" in
    Vstat_circuit.Netlist.vsource net "vvdd" ~plus:nvdd ~minus:gnd
      ~wave:(Vstat_circuit.Waveform.Dc vdd);
    Vstat_circuit.Netlist.vsource net "vin" ~plus:nin ~minus:gnd
      ~wave:(Vstat_circuit.Waveform.pwl [| (50e-12, 0.0); (60e-12, vdd) |]);
    Vstat_cells.Gates.add_inverter net ~name:"x" ~devices ~input:nin
      ~output:nout ~vdd_node:nvdd ~gnd;
    Vstat_circuit.Netlist.capacitor net "cl" ~a:nout ~b:gnd ~farads:2e-15;
    Vstat_circuit.Engine.compile net
  in
  Test.make ~name:"ablation/integrator-trapezoidal"
    (Staged.stage (fun () ->
         let eng = build () in
         Vstat_circuit.Engine.transient ~trap:true eng ~tstop:400e-12 ~dt:1e-12))

(* Analytic-vs-FD Jacobian ablation: the same inverter transient with the
   devices' analytic derivative path stripped, forcing the 5-evals-per-device
   finite-difference linearization the engine used to always pay. *)
let build_inverter_engine ~strip_derivs =
  let tech = Vstat_core.Techs.nominal_vs pipeline ~vdd in
  let devices =
    Vstat_cells.Gates.sample_inverter tech ~wp_nm:600.0 ~wn_nm:300.0
  in
  let devices =
    if strip_derivs then
      {
        Vstat_cells.Gates.pmos =
          Vstat_device.Device_model.without_derivs devices.pmos;
        nmos = Vstat_device.Device_model.without_derivs devices.nmos;
      }
    else devices
  in
  let net = Vstat_circuit.Netlist.create () in
  let gnd = Vstat_circuit.Netlist.ground net in
  let nvdd = Vstat_circuit.Netlist.node net "vdd" in
  let nin = Vstat_circuit.Netlist.node net "in" in
  let nout = Vstat_circuit.Netlist.node net "out" in
  Vstat_circuit.Netlist.vsource net "vvdd" ~plus:nvdd ~minus:gnd
    ~wave:(Vstat_circuit.Waveform.Dc vdd);
  Vstat_circuit.Netlist.vsource net "vin" ~plus:nin ~minus:gnd
    ~wave:(Vstat_circuit.Waveform.pwl [| (50e-12, 0.0); (60e-12, vdd) |]);
  Vstat_cells.Gates.add_inverter net ~name:"x" ~devices ~input:nin
    ~output:nout ~vdd_node:nvdd ~gnd;
  Vstat_circuit.Netlist.capacitor net "cl" ~a:nout ~b:gnd ~farads:2e-15;
  Vstat_circuit.Engine.compile net

let bench_jacobian_variant name ~strip_derivs =
  Test.make ~name
    (Staged.stage (fun () ->
         let eng = build_inverter_engine ~strip_derivs in
         Vstat_circuit.Engine.transient eng ~tstop:400e-12 ~dt:1e-12))

let bench_jacobian_analytic =
  bench_jacobian_variant "ablation/jacobian-analytic" ~strip_derivs:false

let bench_jacobian_fd =
  bench_jacobian_variant "ablation/jacobian-fd" ~strip_derivs:true

let bench_ring_oscillator =
  let rng = bench_rng () in
  Test.make ~name:"circuit/ring-oscillator-vs"
    (Staged.stage (fun () ->
         let tech = vs_tech (Vstat_util.Rng.split rng) in
         Vstat_cells.Ring_oscillator.measure
           (Vstat_cells.Ring_oscillator.sample tech)))

let bench_chain =
  let rng = bench_rng () in
  Test.make ~name:"circuit/ssta-chain-vs"
    (Staged.stage (fun () ->
         let tech = vs_tech (Vstat_util.Rng.split rng) in
         Vstat_cells.Chain.measure (Vstat_cells.Chain.sample ~stages:8 tech)))

let bench_ac_sweep =
  let tech = Vstat_core.Techs.nominal_vs pipeline ~vdd in
  let devices =
    Vstat_cells.Gates.sample_inverter tech ~wp_nm:600.0 ~wn_nm:300.0
  in
  let net = Vstat_circuit.Netlist.create () in
  let gnd = Vstat_circuit.Netlist.ground net in
  let nvdd = Vstat_circuit.Netlist.node net "vdd" in
  let nin = Vstat_circuit.Netlist.node net "in" in
  let nout = Vstat_circuit.Netlist.node net "out" in
  Vstat_circuit.Netlist.vsource net "vvdd" ~plus:nvdd ~minus:gnd
    ~wave:(Vstat_circuit.Waveform.Dc vdd);
  Vstat_circuit.Netlist.vsource net "vin" ~plus:nin ~minus:gnd
    ~wave:(Vstat_circuit.Waveform.Dc (0.45 *. vdd));
  Vstat_cells.Gates.add_inverter net ~name:"x" ~devices ~input:nin
    ~output:nout ~vdd_node:nvdd ~gnd;
  let eng = Vstat_circuit.Engine.compile net in
  let op = Vstat_circuit.Engine.dc eng in
  Test.make ~name:"circuit/ac-sweep-40pt"
    (Staged.stage (fun () ->
         Vstat_circuit.Ac.sweep eng ~op ~source:"vin"
           ~freqs_hz:(Vstat_util.Floatx.logspace 6.0 12.0 40)))

let tests =
  Test.make_grouped ~name:"vstat"
    [
      bench_fit_objective;
      bench_sensitivity_row;
      bench_bpv_tied;
      bench_bpv_untied;
      bench_mc_device_vs;
      bench_mc_device_bsim;
      bench_mc_parallel_vs;
      bench_mc_parallel_bsim;
      bench_ellipse;
      bench_inv_sample "circuit/fig5-inv-delay-vs" vs_tech;
      bench_inv_sample "speed/table4-inv-bsim" bsim_tech;
      bench_nand2_sample "circuit/fig7-nand2-vs" vs_tech;
      bench_nand2_sample "speed/table4-nand2-bsim" bsim_tech;
      bench_dff_capture "circuit/fig8-dff-capture-vs" vs_tech;
      bench_dff_capture "speed/table4-dff-bsim" bsim_tech;
      bench_sram_snm "circuit/fig9-sram-snm-vs" vs_tech;
      bench_sram_snm "speed/table4-sram-bsim" bsim_tech;
      bench_model_eval "speed/table4-vs-eval-100" vs_dev;
      bench_model_eval "speed/table4-bsim-eval-100" bsim_dev;
      bench_transient_be;
      bench_trap_engine;
      bench_jacobian_analytic;
      bench_jacobian_fd;
      bench_ring_oscillator;
      bench_chain;
      bench_ac_sweep;
    ]

(* --- checkpoint overhead ------------------------------------------------ *)

(* `dune exec bench/main.exe -- --checkpoint-overhead [OUT.json]`: time the
   circuit-level Monte Carlo (fig-5 inverter delay) through Checkpoint.run
   with periodic flushing off (--checkpoint-every 0: one final snapshot)
   and on (every 100), and record per-sample cost plus the relative
   overhead in OUT.json (default BENCH_checkpoint.json).  bench/ sits
   outside the lint perimeter, so direct wall-clock reads are fine here. *)
let checkpoint_overhead out_path =
  let module C = Vstat_runtime.Checkpoint in
  let n = 200 and reps = 5 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "vstat_bench_ckpt"
  in
  let sample ~attempt:_ ~index:_ rng =
    let tech = vs_tech rng in
    let s =
      Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3
    in
    (Vstat_cells.Inverter.measure s).Vstat_cells.Inverter.tpd
  in
  let run ~every () =
    ignore
      (C.run ~jobs:1
         ~settings:(C.settings ~every dir)
         ~codec:C.float_codec
         ~label:(Printf.sprintf "bench-every-%d" every)
         ~rng:(Vstat_util.Rng.create ~seed:4242)
         ~n ~f:sample ())
  in
  let time f =
    let t0 = Vstat_runtime.Deadline.now_ns () in
    f ();
    Int64.to_float (Int64.sub (Vstat_runtime.Deadline.now_ns ()) t0)
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    a.(Array.length a / 2)
  in
  run ~every:0 () (* warm-up: code paths, allocator, page cache *);
  let t0 = median (List.init reps (fun _ -> time (run ~every:0))) in
  let t100 = median (List.init reps (fun _ -> time (run ~every:100))) in
  let per_sample t = t /. Float.of_int n in
  let overhead = (t100 -. t0) /. t0 in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"inverter-delay MC (fig 5), jobs:1\",\n\
      \  \"samples\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"every0_ns_per_sample\": %.1f,\n\
      \  \"every100_ns_per_sample\": %.1f,\n\
      \  \"overhead_frac\": %.4f\n\
       }\n"
      n reps (per_sample t0) (per_sample t100) overhead
  in
  Out_channel.with_open_text out_path (fun oc -> output_string oc json);
  Fmt.pr
    "checkpoint overhead: every=0 %.1f ns/sample, every=100 %.1f ns/sample \
     (%+.2f%%) -> %s@."
    (per_sample t0) (per_sample t100) (100.0 *. overhead) out_path

(* --- rare-event estimator comparison ----------------------------------- *)

(* `dune exec bench/main.exe -- --rare [OUT.json]`: run the three SRAM-yield
   estimators (plain MC golden, pilot-aimed importance sampling, statistical
   blockade) at the reachable ~1e-3 tail level and record, per estimator,
   the number of full circuit simulations spent and the plain-MC sample
   count that an interval of the same width would have cost.  The headline
   figure is fewer full simulations than plain MC at equal CI width:
   IS speedup = mc-equivalent samples / simulations spent; blockade speedup
   = 1 / simulation fraction (its Wilson interval is the one plain MC would
   report at the same trial count). *)
let rare_compare out_path =
  let module Y = Vstat_experiments.Exp_sram_yield in
  let module I = Vstat_rare.Importance in
  let module B = Vstat_rare.Blockade in
  let n_plain = 2000 and n_is = 400 and n_blockade = 2000 in
  let is_pilot = 200 in
  let half r = 0.5 *. (r.I.ci_hi -. r.I.ci_lo) in
  Fmt.pr "rare: plain MC golden (n=%d)...@." n_plain;
  let plain = Y.estimate_plain ~n:n_plain pipeline in
  Fmt.pr "rare: importance sampling (n=%d + pilot %d)...@." n_is is_pilot;
  let is = Y.estimate_is ~n:n_is ~pilot_n:is_pilot pipeline in
  Fmt.pr "rare: statistical blockade (n=%d trials)...@." n_blockade;
  let blockade = Y.estimate_blockade ~n:n_blockade pipeline in
  let is_sims = is.I.n_requested + is_pilot in
  let is_equiv = I.mc_equivalent_samples is in
  let is_speedup = is_equiv /. Float.of_int is_sims in
  let b_sims = blockade.B.n_pilot + blockade.B.n_simulated in
  let b_speedup = 1.0 /. B.simulation_fraction blockade in
  let b_half = 0.5 *. (blockade.B.ci_hi -. blockade.B.ci_lo) in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"sram-yield p(SNM < 25 mV) at vdd 0.80, read mode\",\n\
      \  \"plain\": { \"simulations\": %d, \"p_hat\": %.6e,\n\
      \             \"ci_half_width\": %.6e },\n\
      \  \"importance_sampling\": {\n\
      \    \"simulations\": %d, \"p_hat\": %.6e, \"ci_half_width\": %.6e,\n\
      \    \"ess\": %.1f, \"max_weight\": %.3f,\n\
      \    \"mc_equivalent_samples\": %.0f,\n\
      \    \"speedup_vs_plain_at_equal_ci\": %.1f\n\
      \  },\n\
      \  \"blockade\": {\n\
      \    \"trials\": %d, \"simulations\": %d, \"p_hat\": %.6e,\n\
      \    \"ci_half_width\": %.6e,\n\
      \    \"speedup_vs_plain_at_equal_ci\": %.1f\n\
      \  }\n\
       }\n"
      n_plain plain.I.p_hat (half plain) is_sims is.I.p_hat (half is)
      is.I.ess is.I.max_weight is_equiv is_speedup blockade.B.n b_sims
      blockade.B.p_hat b_half b_speedup
  in
  Out_channel.with_open_text out_path (fun oc -> output_string oc json);
  Fmt.pr "plain    : %d sims, p=%.3e (half-width %.2e)@." n_plain
    plain.I.p_hat (half plain);
  Fmt.pr "is       : %d sims, p=%.3e (half-width %.2e), %.1fx plain MC@."
    is_sims is.I.p_hat (half is) is_speedup;
  Fmt.pr "blockade : %d sims, p=%.3e (half-width %.2e), %.1fx plain MC@."
    b_sims blockade.B.p_hat b_half b_speedup;
  Fmt.pr "-> %s@." out_path

(* --- sparse backend benchmark ------------------------------------------ *)

(* `dune exec bench/main.exe -- --sparse [OUT.json]`: path-delay Monte
   Carlo over an inverter chain sized past the sparse Auto threshold,
   through the batched SoA runner (one precompiled engine per worker,
   shared symbolic analysis, devices retargeted per sample).  Records
   per-sample wall time for the sparse vs dense backends on the identical
   sample set, the unbatched per-sample-recompile baseline, the maximum
   sparse/dense value disagreement, and jobs:1 vs jobs:4 bit-identity of
   the sparse path. *)
let sparse_bench out_path =
  let module B = Vstat_experiments.Batch_mc in
  let stages = 48 in
  let n = 16 in
  let steps = 400 in
  let seed = 2026 in
  let nodes = stages + 3 (* vdd, in, s0..s<stages> *) in
  let unknowns = nodes + 2 in
  let run ?jobs ?batched backend =
    B.chain_tpd ?jobs ?batched ~backend ~stages ~steps ~n ~seed ~vdd pipeline
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Warm-up both backends: code paths and the symbolic-analysis cache. *)
  ignore
    (B.chain_tpd ~jobs:1 ~backend:Vstat_circuit.Engine.Sparse ~stages ~steps
       ~n:1 ~seed ~vdd pipeline);
  ignore
    (B.chain_tpd ~jobs:1 ~backend:Vstat_circuit.Engine.Dense ~stages ~steps
       ~n:1 ~seed ~vdd pipeline);
  Fmt.pr "sparse: batched sparse, jobs:1 (%d samples, %d unknowns)...@." n
    unknowns;
  let rs, t_sparse = time (fun () -> run ~jobs:1 Sparse) in
  Fmt.pr "sparse: batched dense, jobs:1...@.";
  let rd, t_dense = time (fun () -> run ~jobs:1 Dense) in
  Fmt.pr "sparse: unbatched (recompile per sample), jobs:1...@.";
  let _ru, t_unbatched = time (fun () -> run ~jobs:1 ~batched:false Sparse) in
  Fmt.pr "sparse: batched sparse, jobs:4...@.";
  let rs4, _ = time (fun () -> run ~jobs:4 Sparse) in
  let bit_identical = rs.B.by_index = rs4.B.by_index in
  let max_rel = ref 0.0 in
  let compared = ref 0 in
  Array.iteri
    (fun i ds ->
      match (ds, rd.B.by_index.(i)) with
      | Some s, Some d ->
        incr compared;
        let r = Float.abs (s -. d) /. Float.max (Float.abs d) 1e-300 in
        if r > !max_rel then max_rel := r
      | _ -> ())
    rs.B.by_index;
  let per t = 1e3 *. t /. Float.of_int n in
  let speedup = t_dense /. t_sparse in
  let batch_speedup = t_unbatched /. t_sparse in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"inverter-chain path-delay MC, %d stages, %d \
       unknowns, %d samples\",\n\
      \  \"dense_ms_per_sample\": %.2f,\n\
      \  \"sparse_ms_per_sample\": %.2f,\n\
      \  \"unbatched_ms_per_sample\": %.2f,\n\
      \  \"sparse_speedup_vs_dense\": %.2f,\n\
      \  \"batched_speedup_vs_unbatched\": %.2f,\n\
      \  \"max_rel_disagreement_sparse_vs_dense\": %.3e,\n\
      \  \"compared_samples\": %d,\n\
      \  \"jobs1_vs_jobs4_bit_identical\": %b\n\
       }\n"
      stages unknowns n (per t_dense) (per t_sparse) (per t_unbatched)
      speedup batch_speedup !max_rel !compared bit_identical
  in
  Out_channel.with_open_text out_path (fun oc -> output_string oc json);
  Fmt.pr
    "dense %.2f ms/sample, sparse %.2f ms/sample (%.2fx), unbatched %.2f \
     ms/sample (batching %.2fx)@."
    (per t_dense) (per t_sparse) speedup (per t_unbatched) batch_speedup;
  Fmt.pr "max |sparse-dense| rel = %.3e, jobs1==jobs4: %b -> %s@." !max_rel
    bit_identical out_path;
  if !max_rel > 1e-9 then begin
    Fmt.epr "FAIL: sparse/dense disagreement above 1e-9@.";
    exit 1
  end;
  if not bit_identical then begin
    Fmt.epr "FAIL: sparse MC not bit-identical across jobs@.";
    exit 1
  end

(* --- service load generator -------------------------------------------- *)

(* `dune exec bench/main.exe -- --service [OUT.json]`: drive an in-process
   vstatd (reusing the bench pipeline, so startup is free) with a ramp of
   closed-loop clients, each submitting uniquely-seeded idsat jobs with a
   per-request deadline.  The headline is graceful degradation: accepted
   requests keep a bounded p99 end-to-end latency at every offered load,
   while overload is shed with typed rejections (queue-full / over-
   deadline) instead of growing the queue without bound.  Submit
   round-trip latency (the admission decision) is recorded separately —
   it must stay flat even when the worker is saturated. *)
let service_bench out_path =
  let module SP = Vstat_service.Protocol in
  let module SS = Vstat_service.Service in
  let module SC = Vstat_service.Client in
  let iters = 10 in
  let deadline_s = 2.0 in
  let spec seed = { SP.kind = SP.Idsat; n = 16; seed; vdd; retry = 2 } in
  (* One ramp per pool width: a wider pool should push the knee of the
     latency curve to a higher offered load with the same queue bound. *)
  let pool_widths = [ 1; 4 ] in
  let ramp workers =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vstat_bench_service_w%d" workers)
  in
  (* Seeds are deterministic, so stale journals from a previous bench run
     would turn every job into a cache hit and flatten the latencies. *)
  (if Sys.file_exists dir then
     Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir));
  Vstat_util.Atomic_io.ensure_dir dir;
  let socket_path = Filename.concat dir "vstatd.sock" in
  let cfg =
    {
      SS.socket_path;
      state_dir = dir;
      queue_max = 8;
      workers;
      jobs = 1;
      poison_retries = 3;
      hang_timeout_s = 30.0;
      state_max_bytes = 0;
      pipeline_seed = 42;
      mc_per_geometry = 600;
      (* must match the bench pipeline above *)
      inject = None;
    }
  in
  let t = SS.create ~pipeline cfg in
  let server = Domain.spawn (fun () -> SS.serve t) in
  (* One closed-loop client: submit, await if accepted, tally typed
     rejections.  Returns its private counters; nothing is shared across
     domains. *)
  let client ~step ~rank () =
    let e2e = ref [] and sub = ref [] in
    let accepted = ref 0
    and q_full = ref 0
    and over_dl = ref 0
    and partial = ref 0 in
    for i = 0 to iters - 1 do
      let seed =
        1_000_000 + (workers * 100_000) + (step * 10_000) + (rank * 100) + i
      in
      let t0 = Unix.gettimeofday () in
      match SC.submit ~client:(Printf.sprintf "bench-%d" rank) ~socket_path
              ~spec:(spec seed) ~deadline_s ()
      with
      | Ok (SP.Accepted { id; _ }) -> (
        sub := (Unix.gettimeofday () -. t0) :: !sub;
        match SC.await ~socket_path ~id () with
        | Ok s ->
          e2e := (Unix.gettimeofday () -. t0) :: !e2e;
          incr accepted;
          if s.SP.partial then incr partial
        | Error e ->
          Fmt.epr "service bench: await %s: %s@." id
            (SC.await_error_to_string e);
          exit 1)
      | Ok (SP.Rejected { reason }) -> (
        sub := (Unix.gettimeofday () -. t0) :: !sub;
        match reason with
        | SP.Queue_full _ ->
          incr q_full;
          Unix.sleepf 0.05
        | SP.Over_deadline _ ->
          incr over_dl;
          Unix.sleepf 0.05
        | SP.Bad_request { detail } ->
          Fmt.epr "service bench: bad request: %s@." detail;
          exit 1)
      | Ok _ ->
        Fmt.epr "service bench: unexpected submit response@.";
        exit 1
      | Error m ->
        Fmt.epr "service bench: submit: %s@." m;
        exit 1
    done;
    (!e2e, !sub, !accepted, !q_full, !over_dl, !partial)
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then Float.nan
    else sorted.(Int.min (n - 1) (int_of_float (p *. Float.of_int n)))
  in
  let steps = [ 1; 2; 4; 8; 16 ] in
  let rows =
    List.mapi
      (fun step clients ->
        let results =
          List.init clients (fun rank ->
              Domain.spawn (client ~step ~rank))
          |> List.map Domain.join
        in
        let e2e = List.concat_map (fun (l, _, _, _, _, _) -> l) results in
        let sub = List.concat_map (fun (_, l, _, _, _, _) -> l) results in
        let sum f = List.fold_left (fun a r -> a + f r) 0 results in
        let accepted = sum (fun (_, _, a, _, _, _) -> a) in
        let q_full = sum (fun (_, _, _, q, _, _) -> q) in
        let over_dl = sum (fun (_, _, _, _, o, _) -> o) in
        let partial = sum (fun (_, _, _, _, _, p) -> p) in
        let sorted l =
          let a = Array.of_list l in
          Array.sort Float.compare a;
          a
        in
        let e2e = sorted e2e and sub = sorted sub in
        let ms x = 1e3 *. x in
        let row =
          Printf.sprintf
            "    { \"clients\": %d, \"submitted\": %d, \"accepted\": %d,\n\
            \      \"shed_queue_full\": %d, \"shed_over_deadline\": %d,\n\
            \      \"partial\": %d,\n\
            \      \"e2e_ms\": { \"p50\": %.1f, \"p95\": %.1f, \"p99\": \
             %.1f },\n\
            \      \"submit_ms\": { \"p50\": %.2f, \"p99\": %.2f } }"
            clients (clients * iters) accepted q_full over_dl partial
            (ms (percentile e2e 0.50))
            (ms (percentile e2e 0.95))
            (ms (percentile e2e 0.99))
            (ms (percentile sub 0.50))
            (ms (percentile sub 0.99))
        in
        Fmt.pr
          "service: w%d %2d clients: %3d submitted, %3d accepted, %d+%d \
           shed, %d partial, e2e p50/p99 %.0f/%.0f ms, submit p99 %.2f ms@."
          workers clients (clients * iters) accepted q_full over_dl partial
          (ms (percentile e2e 0.50))
          (ms (percentile e2e 0.99))
          (ms (percentile sub 0.99));
        row)
      steps
  in
  (match SC.request ~socket_path SP.Shutdown with
  | Ok SP.Shutting_down -> ()
  | Ok _ | Error _ -> Fmt.epr "service bench: shutdown did not ack@.");
  Domain.join server;
  Printf.sprintf "    { \"workers\": %d, \"steps\": [\n%s\n    ] }" workers
    (String.concat ",\n" rows)
  in
  let pools = List.map ramp pool_widths in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"idsat n=16 closed-loop ramp, queue_max 8, deadline \
       %.1f s\",\n\
      \  \"pools\": [\n%s\n  ]\n}\n"
      deadline_s
      (String.concat ",\n" pools)
  in
  Out_channel.with_open_text out_path (fun oc -> output_string oc json);
  Fmt.pr "-> %s@." out_path

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  List.iter
    (fun instance ->
      let label = Measure.label instance in
      let results = Analyze.all ols instance raw in
      Fmt.pr "== %s ==@." label;
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
      List.iter
        (fun (name, est) ->
          match Analyze.OLS.estimates est with
          | Some [ per_run ] ->
            if label = "monotonic-clock" then
              Fmt.pr "%-40s %12.1f ns/run@." name per_run
            else Fmt.pr "%-40s %12.0f w/run@." name per_run
          | _ -> Fmt.pr "%-40s (no estimate)@." name)
        (List.sort compare rows))
    instances;
  (* Aggregate circuit-engine work across every bench iteration above: a
     quick sanity check that the analytic Jacobian path dominates (fd > 0
     only from the ablation/jacobian-fd group and FD-only devices). *)
  let c = Vstat_circuit.Engine.global_counters () in
  Fmt.pr "== engine counters (all benches) ==@.";
  List.iter
    (fun (name, v) -> Fmt.pr "%-24s %12d@." name v)
    [
      ("newton-iterations", c.Vstat_circuit.Engine.newton_iterations);
      ("model-evaluations", c.model_evaluations);
      ("analytic-evals", c.analytic_evaluations);
      ("fd-evals", c.fd_evaluations);
      ("assemblies", c.assemblies);
      ("lu-factorizations", c.lu_factorizations);
      ("accepted-steps", c.accepted_steps);
      ("rejected-steps", c.rejected_steps);
      ("breakpoint-hits", c.breakpoint_hits);
    ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "--checkpoint-overhead" :: rest ->
    let out =
      match rest with [ p ] -> p | _ -> "BENCH_checkpoint.json"
    in
    checkpoint_overhead out
  | _ :: "--rare" :: rest ->
    let out = match rest with [ p ] -> p | _ -> "BENCH_rare.json" in
    rare_compare out
  | _ :: "--sparse" :: rest ->
    let out = match rest with [ p ] -> p | _ -> "BENCH_sparse.json" in
    sparse_bench out
  | _ :: "--service" :: rest ->
    let out = match rest with [ p ] -> p | _ -> "BENCH_service.json" in
    service_bench out
  | _ -> run_benchmarks ()
