(* SRAM parametric yield as a rare-event problem: the paper's Fig. 9
   workload pushed to the tail.  The failure event is READ SNM < 25 mV at a
   lowered supply (0.80 V), a ~1e-3 probability the plain Monte Carlo of
   the original example can barely resolve.  The Vstat_rare engine answers
   it two ways, each cross-checked against a brute-force golden:

   - importance sampling: a small pilot run regresses each butterfly lobe's
     noise margin on the 30 mismatch coordinates (6 transistors x 5 BPV
     parameters), aims a defensive Gaussian-mixture proposal at the two
     per-lobe design points, and reweights by the exact likelihood ratio;
   - statistical blockade: the same pilot fits a linear classifier that
     blocks samples predicted to be comfortably safe, so only tail
     candidates pay for a full butterfly simulation.

   Run with:  dune exec examples/sram_yield.exe *)

module Y = Vstat_experiments.Exp_sram_yield
module I = Vstat_rare.Importance
module B = Vstat_rare.Blockade

let n_golden = 1000
let n_accel = 300
let pilot_n = 150

let () =
  let p = Vstat_core.Pipeline.build ~seed:42 ~mc_per_geometry:1000 () in
  let vdd = 0.80 and threshold = 0.025 in
  Printf.printf
    "6T SRAM read-stability yield at vdd = %.2f V: p(SNM < %.0f mV)\n\n" vdd
    (1e3 *. threshold);

  (* Brute force: every sample is a full butterfly simulation. *)
  let plain = Y.estimate_plain ~n:n_golden ~vdd ~threshold p in
  Printf.printf "plain MC   %4d sims  p = %.2e  [%.2e, %.2e]\n" plain.I.n
    plain.I.p_hat plain.I.ci_lo plain.I.ci_hi;

  (* Importance sampling: pilot -> per-lobe design points -> mixture. *)
  let is = Y.estimate_is ~n:n_accel ~pilot_n ~vdd ~threshold p in
  Printf.printf
    "IS         %4d sims  p = %.2e  [%.2e, %.2e]  (ess %.0f, max w %.2f)\n"
    (n_accel + pilot_n) is.I.p_hat is.I.ci_lo is.I.ci_hi is.I.ess
    is.I.max_weight;
  Printf.printf
    "           interval as tight as %.0f plain-MC samples -> %.1fx fewer \
     sims\n"
    (I.mc_equivalent_samples is)
    (I.mc_equivalent_samples is /. Float.of_int (n_accel + pilot_n));

  (* Blockade: simulate only what the classifier cannot rule out. *)
  let blockade = Y.estimate_blockade ~n:n_golden ~pilot_n ~vdd ~threshold p in
  let b_sims = blockade.B.n_pilot + blockade.B.n_simulated in
  Printf.printf "blockade   %4d sims  p = %.2e  [%.2e, %.2e]\n" b_sims
    blockade.B.p_hat blockade.B.ci_lo blockade.B.ci_hi;
  Printf.printf
    "           %d of %d trials simulated (cutoff %.1f mV, margin %.2f) -> \
     %.1fx fewer sims\n"
    blockade.B.n_simulated blockade.B.n
    (1e3 *. blockade.B.cutoff)
    blockade.B.margin
    (1.0 /. B.simulation_fraction blockade);

  let overlaps (lo1, hi1) (lo2, hi2) = lo1 <= hi2 && lo2 <= hi1 in
  let golden = (plain.I.ci_lo, plain.I.ci_hi) in
  Printf.printf "\nagreement with the brute-force interval: IS %b, blockade \
                 %b\n"
    (overlaps golden (is.I.ci_lo, is.I.ci_hi))
    (overlaps golden (blockade.B.ci_lo, blockade.B.ci_hi))
