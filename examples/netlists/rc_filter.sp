RC low-pass filter
Vin in 0 SIN(0 1 1meg)
R1 in out 1k
C1 out 0 1n
.ac dec 10 10k 100meg vin
.end
