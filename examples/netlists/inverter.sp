CMOS inverter on the synthetic 40nm node (VS model)
.model nvs vs (type=n)
.model pvs vs (type=p)
Vdd vdd 0 DC 0.9
Vin in 0 PULSE(0 0.9 20p 10p 10p 60p 200p)
Mp out in vdd vdd pvs W=600n L=40n
Mn out in 0 0 nvs W=300n L=40n
Cload out 0 2f
.tran 1p 200p
.end
