NMOS output characteristic (golden bsim4lite card)
.model nb bsim4lite (type=n)
Vg g 0 DC 0.9
Vd d 0 DC 0.9
M1 d g 0 0 nb W=600n L=40n
.dc vd 0 0.9 0.05
.end
