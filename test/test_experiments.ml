(* Integration smoke tests: every experiment runs end-to-end on a reduced
   sample budget and satisfies its headline shape claim. *)

module P = Vstat_core.Pipeline
module E = Vstat_experiments

let pipeline = lazy (P.build ~seed:42 ~mc_per_geometry:800 ())

let test_fig1 () =
  let lazy p = pipeline in
  let t = E.Exp_fig1.run p in
  Alcotest.(check int) "four output curves" 4 (List.length t.id_vd);
  Alcotest.(check int) "two transfer curves" 2 (List.length t.id_vg);
  Alcotest.(check bool) "fit errors reported" true
    (t.rms_log_error > 0.0 && t.rms_log_error < 0.2);
  (* The saturation region of the on-curve must be close pointwise (the
     deep-linear region trades off against low-Vdd accuracy; see
     EXPERIMENTS.md). *)
  let golden, vs = List.nth t.id_vd 3 in
  let worst = ref 0.0 in
  Array.iteri
    (fun i (vds, ig) ->
      if vds > 0.3 && ig > 1e-5 then begin
        let _, iv = vs.points.(i) in
        worst := Float.max !worst (Float.abs (iv -. ig) /. ig)
      end)
    golden.points;
  Alcotest.(check bool) "saturation region within 12%" true (!worst < 0.12)

let test_fig2 () =
  let lazy p = pipeline in
  let t = E.Exp_fig2.run p in
  Alcotest.(check int) "one row per geometry" (List.length p.geometries)
    (List.length t.rows);
  (* The paper reports < 10%; allow slack for the reduced MC budget. *)
  Alcotest.(check bool) "per-geometry vs stacked < 20%" true
    (t.max_abs_diff_pct < 20.0)

let test_table2 () =
  let lazy p = pipeline in
  let t = E.Exp_table2.run p in
  let rel a b = Float.abs (a -. b) /. b in
  Alcotest.(check bool) "NMOS a2 close to truth" true
    (rel t.extracted_nmos.a_l t.truth_nmos.a_l < 0.15);
  Alcotest.(check bool) "PMOS a1 within 30%" true
    (rel t.extracted_pmos.a_vt0 t.truth_pmos.a_vt0 < 0.30);
  Alcotest.(check bool) "a5 is the pass-through" true
    (t.extracted_nmos.a_cinv = t.truth_nmos.a_cinv)

let test_fig3 () =
  let lazy p = pipeline in
  let t = E.Exp_fig3.run ~widths:[ 120.0; 600.0; 1500.0 ] ~n:300 p in
  Alcotest.(check int) "rows" 3 (List.length t.rows);
  let sorted_desc =
    List.for_all2
      (fun a b -> a.E.Exp_fig3.total_pct > b.E.Exp_fig3.total_pct)
      (List.filteri (fun i _ -> i < 2) t.rows)
      (List.tl t.rows)
  in
  Alcotest.(check bool) "mismatch shrinks with width (Pelgrom)" true sorted_desc;
  List.iter
    (fun (r : E.Exp_fig3.row) ->
      Alcotest.(check bool) "prediction tracks MC" true
        (Float.abs (r.predicted_pct -. r.total_pct)
        < 0.2 *. Float.max r.total_pct 1e-9))
    t.rows

let test_table3 () =
  let lazy p = pipeline in
  let t = E.Exp_table3.run ~n:500 p in
  Alcotest.(check int) "six entries" 6 (List.length t.entries);
  Alcotest.(check bool) "worst sigma diff < 15%" true
    (E.Exp_table3.worst_rel_diff t < 0.15);
  (* Pelgrom ordering: sigma(log Ioff) grows as W shrinks. *)
  let sigma label =
    let e =
      List.find
        (fun e -> e.E.Exp_table3.label = label && e.polarity = `N)
        t.entries
    in
    e.E.Exp_table3.bsim_sigma_logioff
  in
  Alcotest.(check bool) "wide < medium < short" true
    (sigma "Wide" < sigma "Medium" && sigma "Medium" < sigma "Short")

let test_fig4 () =
  let lazy p = pipeline in
  let t = E.Exp_fig4.run ~n:400 p in
  List.iter
    (fun (m : E.Exp_fig4.model_result) ->
      List.iteri
        (fun i cov ->
          let nominal = (List.nth m.ellipses i).confidence in
          Alcotest.(check (float 0.08))
            (Printf.sprintf "%s %d-sigma coverage" m.label (i + 1))
            nominal cov)
        m.coverages)
    [ t.golden; t.vs ];
  Alcotest.(check bool) "Ion/Ioff positively correlated in both models" true
    (t.correlation_golden > 0.3 && t.correlation_vs > 0.3)

let test_fig5 () =
  let lazy p = pipeline in
  let t = E.Exp_fig5.run ~n:30 p in
  Alcotest.(check int) "three sizes" 3 (List.length t.results);
  List.iter
    (fun ((_ : E.Exp_fig5.size), (pair : E.Mc_compare.pair)) ->
      Alcotest.(check bool) "means within 10%" true (pair.rel_mean_diff < 0.10);
      Alcotest.(check bool) "overlap > 0.5" true (pair.overlap > 0.5))
    t.results;
  (* Bigger cells have tighter relative spread. *)
  let stds =
    List.map
      (fun (_, (pair : E.Mc_compare.pair)) ->
        Vstat_stats.Descriptive.sigma_over_mu pair.golden)
      t.results
  in
  (match stds with
  | [ s1; s2; s4 ] ->
    Alcotest.(check bool) "sigma/mu shrinks with size" true (s1 > s2 && s2 > s4)
  | _ -> assert false)

let test_fig6 () =
  let lazy p = pipeline in
  let t = E.Exp_fig6.run ~n:40 p in
  Alcotest.(check bool) "multi-x leakage spread" true
    (t.golden.leakage_spread > 2.0 && t.vs.leakage_spread > 2.0);
  Alcotest.(check bool) "frequency spread is tens of percent" true
    (t.golden.freq_spread_pct > 5.0 && t.golden.freq_spread_pct < 100.0);
  Alcotest.(check bool) "leakage means within 20%" true
    (t.leakage_pair.rel_mean_diff < 0.20);
  Alcotest.(check bool) "frequency means within 10%" true
    (t.frequency_pair.rel_mean_diff < 0.10)

let test_fig7 () =
  let lazy p = pipeline in
  let t = E.Exp_fig7.run ~vdds:[ 0.9; 0.55 ] ~n:30 p in
  match t.results with
  | [ hi; lo ] ->
    Alcotest.(check bool) "slower at low vdd" true
      (Vstat_stats.Descriptive.mean lo.pair.golden
      > 1.5 *. Vstat_stats.Descriptive.mean hi.pair.golden);
    Alcotest.(check bool) "relative spread grows at low vdd" true
      (Vstat_stats.Descriptive.sigma_over_mu lo.pair.golden
      > Vstat_stats.Descriptive.sigma_over_mu hi.pair.golden);
    Alcotest.(check bool) "qq series exported" true (Array.length lo.qq_vs > 0)
  | _ -> Alcotest.fail "expected two vdd points"

let test_fig8 () =
  let lazy p = pipeline in
  let t = E.Exp_fig8.run ~n:8 p in
  Alcotest.(check bool) "setup means positive" true
    (Vstat_stats.Descriptive.mean t.setup.golden > 0.0
    && Vstat_stats.Descriptive.mean t.setup.vs > 0.0);
  Alcotest.(check bool) "setup means within 25%" true
    (t.setup.rel_mean_diff < 0.25)

let test_fig9 () =
  let lazy p = pipeline in
  let t = E.Exp_fig9.run ~n:40 p in
  Alcotest.(check bool) "hold snm > read snm (both models)" true
    (Vstat_stats.Descriptive.mean t.hold_snm.golden
     > Vstat_stats.Descriptive.mean t.read_snm.golden
    && Vstat_stats.Descriptive.mean t.hold_snm.vs
       > Vstat_stats.Descriptive.mean t.read_snm.vs);
  Alcotest.(check bool) "hold snm means within 12%" true
    (t.hold_snm.rel_mean_diff < 0.12);
  Alcotest.(check bool) "butterfly exported" true
    (Array.length t.butterfly_read.curve1 > 0)

let test_sram_yield () =
  (* Wiring smoke at a coarse sweep and tiny counts — statistical quality
     and bit-identity live in test_rare and rare_smoke.  The elevated
     threshold (60 mV at vdd 0.8) keeps the event common enough that all
     three estimators see hits with ~50 samples each. *)
  let lazy p = pipeline in
  let t =
    E.Exp_sram_yield.run ~n:60 ~seed:61 ~points:21 ~threshold:0.060
      ~pilot_n:36 p
  in
  let sane (lo, hi) p_hat =
    0.0 <= lo && lo <= hi && hi <= 1.0 && lo <= p_hat && p_hat <= hi
  in
  Alcotest.(check bool) "plain interval sane" true
    (sane (t.plain.ci_lo, t.plain.ci_hi) t.plain.p_hat);
  Alcotest.(check bool) "is interval sane" true
    (sane (t.is.ci_lo, t.is.ci_hi) t.is.p_hat);
  Alcotest.(check bool) "blockade interval sane" true
    (sane (t.blockade.ci_lo, t.blockade.ci_hi) t.blockade.p_hat);
  Alcotest.(check bool) "defensive weights bounded by 3" true
    (t.is.max_weight <= 3.0 +. 1e-12);
  Alcotest.(check bool) "blockade simulates a subset" true
    (t.blockade.n_simulated <= t.blockade.n);
  Alcotest.(check bool) "estimators agree with golden" true
    (t.is_agrees && t.blockade_agrees)

let test_vdd_transfer () =
  let lazy p = pipeline in
  let t = E.Exp_vdd_transfer.run ~vdds:[ 0.9; 0.55 ] ~n:400 p in
  Alcotest.(check int) "two rows" 2 (List.length t.rows);
  (* The nominal-Vdd extraction must transfer: sigma errors bounded. *)
  Alcotest.(check bool) "transfer error < 25%" true
    (E.Exp_vdd_transfer.worst_transfer_error t < 0.25);
  (* Spreads grow as the supply approaches threshold. *)
  (match t.rows with
  | [ hi; lo ] ->
    Alcotest.(check bool) "sigma/idsat grows at low vdd (relative)" true
      (lo.golden_sigma_idsat /. hi.golden_sigma_idsat > 0.0)
  | _ -> assert false)

let test_inter_die () =
  let lazy p = pipeline in
  let t = E.Exp_inter_die.run ~n_dies:6 ~per_die:4 p in
  Alcotest.(check bool) "total >= within" true
    (t.sigma_total >= 0.9 *. t.sigma_within);
  Alcotest.(check int) "sample counts" (6 * 4) (Array.length t.total_delays)

let test_ssta () =
  let lazy p = pipeline in
  let t = E.Exp_ssta.run ~vdds:[ 0.9 ] ~stages:4 ~n:25 p in
  match t.results with
  | [ r ] ->
    Alcotest.(check bool) "mc samples collected" true
      (Array.length r.mc_delays > 15);
    Alcotest.(check bool) "q999 ordering" true (r.mc_q999 > 0.0);
    (* At nominal Vdd the Gaussian model is adequate: within 15%. *)
    Alcotest.(check bool) "gaussian ok at 0.9V" true
      (Float.abs r.tail_underestimate_pct < 15.0)
  | _ -> Alcotest.fail "expected one row"

let test_measure_failure_census () =
  (* A simulation window far too short for any output transition: every
     sample dies with a typed Measure_no_crossing diagnostic, and the
     failure-budget error reports the category census instead of a bag of
     exception strings. *)
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let vdd = Vstat_device.Cards.vdd_nominal in
  let tech_of_rng _rng = Vstat_cells.Celltech.nominal_vs_seed ~vdd () in
  let measure tech =
    let s =
      Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3
    in
    let r = Vstat_cells.Inverter.measure ~window:1e-15 s in
    r.Vstat_cells.Inverter.tphl
  in
  match
    E.Mc_compare.collect_run ~jobs:2 ~max_failure_frac:0.5
      ~label:"no-crossing" ~n:4 ~tech_of_rng
      ~rng:(Vstat_util.Rng.create ~seed:3) ~measure ()
  with
  | _ -> Alcotest.fail "expected budget Failure"
  | exception Failure msg ->
    Alcotest.(check bool) "census names measure_no_crossing" true
      (contains ~sub:"measure_no_crossing" msg)

let test_table4 () =
  let lazy p = pipeline in
  let t = E.Exp_table4.run ~n_nand2:6 ~n_dff:2 ~n_sram:6 p in
  Alcotest.(check int) "four workloads" 4 (List.length t.rows);
  List.iter
    (fun (r : E.Exp_table4.row) ->
      Alcotest.(check bool) "positive runtimes" true
        (r.vs_runtime_s > 0.0 && r.bsim_runtime_s > 0.0);
      Alcotest.(check bool) "allocation recorded" true
        (r.vs_alloc_mb > 0.0 && r.bsim_alloc_mb > 0.0))
    t.rows

let () =
  Alcotest.run "vstat_experiments"
    [
      ( "experiments",
        [
          Alcotest.test_case "fig1" `Slow test_fig1;
          Alcotest.test_case "fig2" `Slow test_fig2;
          Alcotest.test_case "table2" `Slow test_table2;
          Alcotest.test_case "fig3" `Slow test_fig3;
          Alcotest.test_case "table3" `Slow test_table3;
          Alcotest.test_case "fig4" `Slow test_fig4;
          Alcotest.test_case "fig5" `Slow test_fig5;
          Alcotest.test_case "fig6" `Slow test_fig6;
          Alcotest.test_case "fig7" `Slow test_fig7;
          Alcotest.test_case "fig8" `Slow test_fig8;
          Alcotest.test_case "fig9" `Slow test_fig9;
          Alcotest.test_case "table4" `Slow test_table4;
          Alcotest.test_case "sram yield" `Slow test_sram_yield;
          Alcotest.test_case "vdd transfer" `Slow test_vdd_transfer;
          Alcotest.test_case "inter-die" `Slow test_inter_die;
          Alcotest.test_case "ssta" `Slow test_ssta;
          Alcotest.test_case "measure failure census" `Quick
            test_measure_failure_census;
        ] );
    ]
