(* Daemon kill/restart chaos drill (alias @chaos, also wired into @runtest).

   Three vstatd instances run as forked children serving the same job
   spec against the same extraction pipeline settings:

   - golden: jobs:1, no fault injection, runs the job to completion;
   - victim: jobs:2, armed with deterministic worker stalls so the job
     is reliably mid-flight when the parent sends SIGTERM.  The daemon
     drains at a sample boundary and flushes its journal;
   - restart: jobs:4 on the victim's state directory, armed with a
     stall+abort mix to also exercise the retry ladder during resume.
     Startup recovery re-enqueues the interrupted journal; resubmitting
     the same spec dedupes onto it.

   The contract under drill: the restarted daemon's result must be
   bit-identical to the golden daemon's — same sample values, mean, std
   and confidence interval to the last IEEE bit — because every sample is
   a pure function of (spec, index) and fault injection is value-neutral.

   The parent forks before any child builds its pipeline or spawns its
   worker domain, and itself never spawns domains, so fork stays safe. *)

module P = Vstat_service.Protocol
module S = Vstat_service.Service
module Client = Vstat_service.Client
module FS = Vstat_device.Fault_inject.Service

let pipeline_seed = 42
let mc_per_geometry = 40

let spec =
  { P.kind = P.Inverter_tpd { fanout = 3 }; n = 400; seed = 20130318;
    vdd = 1.0; retry = 4 }

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("daemon_chaos: " ^ m);
      exit 1)
    fmt

let config ?(workers = 1) ?(poison_retries = 3) ?(hang_timeout_s = 30.0)
    ?(state_max_bytes = 0) ~dir ~jobs ~inject () =
  {
    S.socket_path = Filename.concat dir "vstatd.sock";
    state_dir = dir;
    queue_max = 16;
    workers;
    jobs;
    poison_retries;
    hang_timeout_s;
    state_max_bytes;
    pipeline_seed;
    mc_per_geometry;
    inject;
  }

(* Fork a child that builds its pipeline, serves, and exits when a
   Shutdown request or SIGTERM arrives.  _exit keeps the child from
   re-running the parent's at_exit machinery. *)
let spawn_daemon cfg =
  match Unix.fork () with
  | 0 ->
    let code =
      try
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let t = S.create cfg in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> S.stop t));
        S.serve t;
        0
      with e ->
        Printf.eprintf "daemon_chaos: daemon died: %s\n%!"
          (Printexc.to_string e);
        1
    in
    Unix._exit code
  | pid -> pid

let wait_exit pid what =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> die "%s daemon exited with %d" what c
  | _, Unix.WSIGNALED s -> die "%s daemon killed by signal %d" what s
  | _, Unix.WSTOPPED _ -> die "%s daemon stopped" what

(* First contact allows extra connect attempts: the child is still
   building its extraction pipeline before the socket exists. *)
let ping ~socket_path =
  match Client.request ~attempts:14 ~socket_path P.Health with
  | Ok (P.Health_report _) -> ()
  | Ok _ -> die "unexpected response to health ping"
  | Error m -> die "health ping failed: %s" m

let submit ?client ?(job = spec) ~socket_path () =
  match Client.submit ?client ~socket_path ~spec:job ~deadline_s:0.0 () with
  | Ok (P.Accepted { id; _ }) -> id
  | Ok (P.Rejected { reason = P.Bad_request { detail } }) ->
    die "submit rejected: %s" detail
  | Ok _ -> die "unexpected response to submit"
  | Error m -> die "submit failed: %s" m

let fetch ~socket_path ~id =
  match Client.await ~socket_path ~id () with
  | Ok s -> s
  | Error e -> die "await %s failed: %s" id (Client.await_error_to_string e)

let shutdown ~socket_path =
  match Client.request ~socket_path P.Shutdown with
  | Ok P.Shutting_down -> ()
  | Ok _ -> die "unexpected response to shutdown"
  | Error m -> die "shutdown failed: %s" m

let bits = Int64.bits_of_float

let assert_summary_identical what (a : P.summary) (b : P.summary) =
  if a.P.n <> b.P.n || a.P.completed <> b.P.completed || a.P.failed <> b.P.failed
  then
    die "%s: shape differs (n %d/%d completed %d/%d failed %d/%d)" what a.P.n
      b.P.n a.P.completed b.P.completed a.P.failed b.P.failed;
  let scalar name x y =
    if not (Int64.equal (bits x) (bits y)) then
      die "%s: %s differs (%h vs %h)" what name x y
  in
  scalar "mean" a.P.mean b.P.mean;
  scalar "std" a.P.std b.P.std;
  scalar "ci_lo" a.P.ci_lo b.P.ci_lo;
  scalar "ci_hi" a.P.ci_hi b.P.ci_hi;
  if Array.length a.P.values <> Array.length b.P.values then
    die "%s: value count differs (%d vs %d)" what (Array.length a.P.values)
      (Array.length b.P.values);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.P.values.(i))) then
        die "%s: sample %d differs (%h vs %h)" what i x b.P.values.(i))
    a.P.values

let fresh_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vstat_daemon_chaos_%d_%s" (Unix.getpid ()) tag)
  in
  (* Stale state from a previous run of this drill must not leak in. *)
  (if Sys.file_exists dir then
     Array.iter
       (fun f -> Sys.remove (Filename.concat dir f))
       (Sys.readdir dir));
  Vstat_util.Atomic_io.ensure_dir dir;
  dir

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;

  (* --- golden: uninterrupted, jobs:1, no injection ------------------- *)
  let golden_dir = fresh_dir "golden" in
  let golden_sock = Filename.concat golden_dir "vstatd.sock" in
  let pid = spawn_daemon (config ~dir:golden_dir ~jobs:1 ~inject:None ()) in
  ping ~socket_path:golden_sock;
  let id = submit ~socket_path:golden_sock () in
  let golden = fetch ~socket_path:golden_sock ~id in
  shutdown ~socket_path:golden_sock;
  wait_exit pid "golden";
  if golden.P.partial || golden.P.completed <> spec.P.n || golden.P.failed <> 0
  then
    die "golden run degraded: completed %d/%d failed %d partial %b"
      golden.P.completed spec.P.n golden.P.failed golden.P.partial;
  Printf.printf "daemon_chaos: golden %s: %d samples, mean %h\n%!" id
    golden.P.completed golden.P.mean;

  (* --- victim: jobs:2, stall-injected, SIGTERM'd mid-run ------------- *)
  let dir = fresh_dir "victim" in
  let sock = Filename.concat dir "vstatd.sock" in
  let inject =
    match FS.parse_spec "0.5:stall:0.02" with
    | Ok c -> Some c
    | Error m -> die "inject spec: %s" m
  in
  let pid = spawn_daemon (config ~dir ~jobs:2 ~inject ()) in
  ping ~socket_path:sock;
  let id' = submit ~socket_path:sock () in
  if not (String.equal id id') then
    die "job id differs across daemons (%s vs %s): content address broken" id
      id';
  (* Poll until the worker has picked the job up, then strike. *)
  let rec wait_running n =
    if n = 0 then die "victim job never started";
    match Client.request ~socket_path:sock (P.Status { id }) with
    | Ok (P.Job_status { state = P.Running; _ }) -> true
    | Ok (P.Job_status { state = P.Done; _ }) -> false
    | Ok (P.Job_status { state = P.Queued _; _ }) | Ok _ ->
      Unix.sleepf 0.005;
      wait_running (n - 1)
    | Error m -> die "status poll failed: %s" m
  in
  let struck_mid_run = wait_running 4000 in
  if struck_mid_run then Unix.sleepf 0.4
  else
    (* The stall budget makes this effectively unreachable, but a fast
       finish still exercises the restart-and-re-serve path below. *)
    print_endline "daemon_chaos: victim finished before SIGTERM (cache drill)";
  Unix.kill pid Sys.sigterm;
  wait_exit pid "victim";
  Printf.printf "daemon_chaos: victim SIGTERM'd %s\n%!"
    (if struck_mid_run then "mid-run" else "after finish");

  (* --- restart: jobs:4 on the victim's journal, mixed injection ------ *)
  let inject =
    match FS.parse_spec "0.2:mix:0.01" with
    | Ok c -> Some c
    | Error m -> die "inject spec: %s" m
  in
  let pid = spawn_daemon (config ~dir ~jobs:4 ~inject ()) in
  ping ~socket_path:sock;
  let id'' = submit ~socket_path:sock () in
  if not (String.equal id id'') then
    die "job id changed across restart (%s vs %s)" id id'';
  let resumed = fetch ~socket_path:sock ~id in
  shutdown ~socket_path:sock;
  wait_exit pid "restart";

  assert_summary_identical "restarted vs golden" golden resumed;
  Printf.printf
    "daemon_chaos: restart re-served %s bit-identically (cached=%b, \
     retried=%d)\n%!"
    id resumed.P.cached resumed.P.retried;

  (* --- pool: workers:4, multiple clients, chaos injection ------------ *)
  (* A low-rate chaos mix (quarter stalls, aborts, crashes, hangs) with a
     tight watchdog floor: worker domains are expected to die and freeze
     mid-job, the supervisor to requeue their victims onto replacement
     generations, and every summary to land anyway.  The golden spec
     rides along under its own client so its result can be checked
     bit-for-bit against the uninterrupted phase-1 run. *)
  let dir = fresh_dir "pool" in
  let sock = Filename.concat dir "vstatd.sock" in
  let inject =
    match FS.parse_spec "0.003:chaos:0.005" with
    | Ok c -> Some c
    | Error m -> die "inject spec: %s" m
  in
  (* The watchdog floor is deliberately below the injected hang length
     (0.75 s default) so real hangs are detected; a loaded machine may
     also trip it spuriously, which is safe — requeue is value-neutral —
     so the retry budget is set far above any plausible requeue count. *)
  let pid =
    spawn_daemon
      (config ~workers:4 ~poison_retries:30 ~hang_timeout_s:0.25 ~dir ~jobs:1
         ~inject ())
  in
  ping ~socket_path:sock;
  let others =
    List.init 6 (fun i ->
        let job = { spec with P.seed = spec.P.seed + 1 + i } in
        let client = Printf.sprintf "c%d" (i mod 3) in
        submit ~client ~job ~socket_path:sock ())
  in
  let id_pool = submit ~client:"golden" ~socket_path:sock () in
  if not (String.equal id id_pool) then
    die "job id changed under the pool daemon (%s vs %s)" id id_pool;
  let pooled = fetch ~socket_path:sock ~id:id_pool in
  List.iter (fun jid -> ignore (fetch ~socket_path:sock ~id:jid)) others;
  (match Client.request ~socket_path:sock P.Health with
  | Ok (P.Health_report h) ->
    if List.length h.P.workers <> 4 then
      die "health reports %d workers, want 4" (List.length h.P.workers);
    if h.P.quarantined <> 0 then
      die "pool drill quarantined %d job(s) unexpectedly" h.P.quarantined;
    Printf.printf
      "daemon_chaos: pool survived chaos (requeued=%d crashes=%d hangs=%d \
       finished=%d)\n%!"
      h.P.requeued h.P.worker_crashes h.P.worker_hangs h.P.finished
  | Ok _ -> die "unexpected response to pool health"
  | Error m -> die "pool health failed: %s" m);
  shutdown ~socket_path:sock;
  wait_exit pid "pool";
  assert_summary_identical "pool vs golden" golden pooled;
  Printf.printf "daemon_chaos: pool re-derived %s bit-identically\n%!" id_pool;

  (* --- poison: every sample crashes the worker; expect quarantine ---- *)
  let dir = fresh_dir "poison" in
  let sock = Filename.concat dir "vstatd.sock" in
  let inject =
    match FS.parse_spec "1:crash" with
    | Ok c -> Some c
    | Error m -> die "inject spec: %s" m
  in
  let pid =
    spawn_daemon
      (config ~workers:2 ~poison_retries:3 ~hang_timeout_s:0.25 ~dir ~jobs:1
         ~inject ())
  in
  ping ~socket_path:sock;
  let poison_job = { spec with P.n = 60; P.seed = 77 } in
  let qid = submit ~job:poison_job ~socket_path:sock () in
  (match Client.await ~socket_path:sock ~id:qid () with
  | Error (Client.Await_quarantined { attempts; detail }) ->
    if attempts <> 3 then
      die "poison job quarantined after %d attempts, want 3" attempts;
    Printf.printf "daemon_chaos: poison job quarantined after %d attempts \
                   (%s)\n%!"
      attempts detail
  | Ok _ -> die "poison job finished despite rate-1 crash injection"
  | Error e ->
    die "poison await failed oddly: %s" (Client.await_error_to_string e));
  (* The daemon itself must outlive its poisoned workers. *)
  ping ~socket_path:sock;
  shutdown ~socket_path:sock;
  wait_exit pid "poison";

  print_endline "daemon_chaos: PASS"
