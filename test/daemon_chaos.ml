(* Daemon kill/restart chaos drill (alias @chaos, also wired into @runtest).

   Three vstatd instances run as forked children serving the same job
   spec against the same extraction pipeline settings:

   - golden: jobs:1, no fault injection, runs the job to completion;
   - victim: jobs:2, armed with deterministic worker stalls so the job
     is reliably mid-flight when the parent sends SIGTERM.  The daemon
     drains at a sample boundary and flushes its journal;
   - restart: jobs:4 on the victim's state directory, armed with a
     stall+abort mix to also exercise the retry ladder during resume.
     Startup recovery re-enqueues the interrupted journal; resubmitting
     the same spec dedupes onto it.

   The contract under drill: the restarted daemon's result must be
   bit-identical to the golden daemon's — same sample values, mean, std
   and confidence interval to the last IEEE bit — because every sample is
   a pure function of (spec, index) and fault injection is value-neutral.

   The parent forks before any child builds its pipeline or spawns its
   worker domain, and itself never spawns domains, so fork stays safe. *)

module P = Vstat_service.Protocol
module S = Vstat_service.Service
module Client = Vstat_service.Client
module FS = Vstat_device.Fault_inject.Service

let pipeline_seed = 42
let mc_per_geometry = 40

let spec =
  { P.kind = P.Inverter_tpd { fanout = 3 }; n = 400; seed = 20130318;
    vdd = 1.0; retry = 4 }

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("daemon_chaos: " ^ m);
      exit 1)
    fmt

let config ~dir ~jobs ~inject =
  {
    S.socket_path = Filename.concat dir "vstatd.sock";
    state_dir = dir;
    queue_max = 8;
    jobs;
    pipeline_seed;
    mc_per_geometry;
    inject;
  }

(* Fork a child that builds its pipeline, serves, and exits when a
   Shutdown request or SIGTERM arrives.  _exit keeps the child from
   re-running the parent's at_exit machinery. *)
let spawn_daemon cfg =
  match Unix.fork () with
  | 0 ->
    let code =
      try
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let t = S.create cfg in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> S.stop t));
        S.serve t;
        0
      with e ->
        Printf.eprintf "daemon_chaos: daemon died: %s\n%!"
          (Printexc.to_string e);
        1
    in
    Unix._exit code
  | pid -> pid

let wait_exit pid what =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> die "%s daemon exited with %d" what c
  | _, Unix.WSIGNALED s -> die "%s daemon killed by signal %d" what s
  | _, Unix.WSTOPPED _ -> die "%s daemon stopped" what

(* First contact allows extra connect attempts: the child is still
   building its extraction pipeline before the socket exists. *)
let ping ~socket_path =
  match Client.request ~attempts:14 ~socket_path P.Health with
  | Ok (P.Health_report _) -> ()
  | Ok _ -> die "unexpected response to health ping"
  | Error m -> die "health ping failed: %s" m

let submit ~socket_path =
  match Client.submit ~socket_path ~spec ~deadline_s:0.0 () with
  | Ok (P.Accepted { id; _ }) -> id
  | Ok (P.Rejected { reason = P.Bad_request { detail } }) ->
    die "submit rejected: %s" detail
  | Ok _ -> die "unexpected response to submit"
  | Error m -> die "submit failed: %s" m

let fetch ~socket_path ~id =
  match Client.await ~socket_path ~id () with
  | Ok s -> s
  | Error m -> die "await %s failed: %s" id m

let shutdown ~socket_path =
  match Client.request ~socket_path P.Shutdown with
  | Ok P.Shutting_down -> ()
  | Ok _ -> die "unexpected response to shutdown"
  | Error m -> die "shutdown failed: %s" m

let bits = Int64.bits_of_float

let assert_summary_identical what (a : P.summary) (b : P.summary) =
  if a.P.n <> b.P.n || a.P.completed <> b.P.completed || a.P.failed <> b.P.failed
  then
    die "%s: shape differs (n %d/%d completed %d/%d failed %d/%d)" what a.P.n
      b.P.n a.P.completed b.P.completed a.P.failed b.P.failed;
  let scalar name x y =
    if not (Int64.equal (bits x) (bits y)) then
      die "%s: %s differs (%h vs %h)" what name x y
  in
  scalar "mean" a.P.mean b.P.mean;
  scalar "std" a.P.std b.P.std;
  scalar "ci_lo" a.P.ci_lo b.P.ci_lo;
  scalar "ci_hi" a.P.ci_hi b.P.ci_hi;
  if Array.length a.P.values <> Array.length b.P.values then
    die "%s: value count differs (%d vs %d)" what (Array.length a.P.values)
      (Array.length b.P.values);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.P.values.(i))) then
        die "%s: sample %d differs (%h vs %h)" what i x b.P.values.(i))
    a.P.values

let fresh_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vstat_daemon_chaos_%d_%s" (Unix.getpid ()) tag)
  in
  (* Stale state from a previous run of this drill must not leak in. *)
  (if Sys.file_exists dir then
     Array.iter
       (fun f -> Sys.remove (Filename.concat dir f))
       (Sys.readdir dir));
  Vstat_util.Atomic_io.ensure_dir dir;
  dir

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;

  (* --- golden: uninterrupted, jobs:1, no injection ------------------- *)
  let golden_dir = fresh_dir "golden" in
  let golden_sock = Filename.concat golden_dir "vstatd.sock" in
  let pid = spawn_daemon (config ~dir:golden_dir ~jobs:1 ~inject:None) in
  ping ~socket_path:golden_sock;
  let id = submit ~socket_path:golden_sock in
  let golden = fetch ~socket_path:golden_sock ~id in
  shutdown ~socket_path:golden_sock;
  wait_exit pid "golden";
  if golden.P.partial || golden.P.completed <> spec.P.n || golden.P.failed <> 0
  then
    die "golden run degraded: completed %d/%d failed %d partial %b"
      golden.P.completed spec.P.n golden.P.failed golden.P.partial;
  Printf.printf "daemon_chaos: golden %s: %d samples, mean %h\n%!" id
    golden.P.completed golden.P.mean;

  (* --- victim: jobs:2, stall-injected, SIGTERM'd mid-run ------------- *)
  let dir = fresh_dir "victim" in
  let sock = Filename.concat dir "vstatd.sock" in
  let inject =
    match FS.parse_spec "0.5:stall:0.02" with
    | Ok c -> Some c
    | Error m -> die "inject spec: %s" m
  in
  let pid = spawn_daemon (config ~dir ~jobs:2 ~inject) in
  ping ~socket_path:sock;
  let id' = submit ~socket_path:sock in
  if not (String.equal id id') then
    die "job id differs across daemons (%s vs %s): content address broken" id
      id';
  (* Poll until the worker has picked the job up, then strike. *)
  let rec wait_running n =
    if n = 0 then die "victim job never started";
    match Client.request ~socket_path:sock (P.Status { id }) with
    | Ok (P.Job_status { state = P.Running; _ }) -> true
    | Ok (P.Job_status { state = P.Done; _ }) -> false
    | Ok (P.Job_status { state = P.Queued _; _ }) | Ok _ ->
      Unix.sleepf 0.005;
      wait_running (n - 1)
    | Error m -> die "status poll failed: %s" m
  in
  let struck_mid_run = wait_running 4000 in
  if struck_mid_run then Unix.sleepf 0.4
  else
    (* The stall budget makes this effectively unreachable, but a fast
       finish still exercises the restart-and-re-serve path below. *)
    print_endline "daemon_chaos: victim finished before SIGTERM (cache drill)";
  Unix.kill pid Sys.sigterm;
  wait_exit pid "victim";
  Printf.printf "daemon_chaos: victim SIGTERM'd %s\n%!"
    (if struck_mid_run then "mid-run" else "after finish");

  (* --- restart: jobs:4 on the victim's journal, mixed injection ------ *)
  let inject =
    match FS.parse_spec "0.2:mix:0.01" with
    | Ok c -> Some c
    | Error m -> die "inject spec: %s" m
  in
  let pid = spawn_daemon (config ~dir ~jobs:4 ~inject) in
  ping ~socket_path:sock;
  let id'' = submit ~socket_path:sock in
  if not (String.equal id id'') then
    die "job id changed across restart (%s vs %s)" id id'';
  let resumed = fetch ~socket_path:sock ~id in
  shutdown ~socket_path:sock;
  wait_exit pid "restart";

  assert_summary_identical "restarted vs golden" golden resumed;
  Printf.printf
    "daemon_chaos: restart re-served %s bit-identically (cached=%b, \
     retried=%d)\n%!"
    id resumed.P.cached resumed.P.retried;
  print_endline "daemon_chaos: PASS"
