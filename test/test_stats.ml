(* Unit and property tests for Vstat_stats. *)

module D = Vstat_stats.Descriptive
module H = Vstat_stats.Histogram
module Qq = Vstat_stats.Qq
module E = Vstat_stats.Ellipse
module C = Vstat_stats.Compare
module Rng = Vstat_util.Rng

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let gaussian_sample ~seed ~n ~mean ~sigma =
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> Rng.gaussian_scaled rng ~mean ~sigma)

(* --- Descriptive --- *)

let test_mean_var_std () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (D.mean xs);
  check_float ~eps:1e-12 "variance (unbiased)" (32.0 /. 7.0) (D.variance xs);
  check_float ~eps:1e-12 "std" (sqrt (32.0 /. 7.0)) (D.std xs)

let test_min_max () =
  let lo, hi = D.min_max [| 3.0; -1.0; 7.0; 2.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_quantiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (D.median xs);
  check_float "q0" 1.0 (D.quantile xs 0.0);
  check_float "q1" 5.0 (D.quantile xs 1.0);
  check_float "q interp" 1.5 (D.quantile xs 0.125)

let test_quantile_unsorted () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median of unsorted" 3.0 (D.median xs)

let test_skewness_symmetric () =
  let xs = gaussian_sample ~seed:1 ~n:50_000 ~mean:0.0 ~sigma:1.0 in
  check_float ~eps:0.05 "gaussian skew ~ 0" 0.0 (D.skewness xs)

let test_skewness_positive_for_lognormal () =
  let rng = Rng.create ~seed:2 in
  let xs = Array.init 20_000 (fun _ -> Rng.lognormal rng ~mu:0.0 ~sigma:0.6) in
  Alcotest.(check bool) "lognormal skew > 0.5" true (D.skewness xs > 0.5)

let test_kurtosis_gaussian () =
  let xs = gaussian_sample ~seed:3 ~n:100_000 ~mean:0.0 ~sigma:2.0 in
  check_float ~eps:0.1 "excess kurtosis ~ 0" 0.0 (D.excess_kurtosis xs)

let test_covariance_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  check_float ~eps:1e-12 "corr linear = 1" 1.0 (D.correlation xs ys);
  let ys_neg = Array.map (fun x -> -.x) xs in
  check_float ~eps:1e-12 "corr anti = -1" (-1.0) (D.correlation xs ys_neg);
  check_float ~eps:1e-12 "cov" (2.0 *. D.variance xs) (D.covariance xs ys)

let test_sigma_over_mu () =
  let xs = [| 9.0; 10.0; 11.0 |] in
  check_float ~eps:1e-12 "sigma/mu" (1.0 /. 10.0) (D.sigma_over_mu xs)

let test_empty_rejected () =
  match D.mean [||] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- weighted descriptive (importance-sampling accumulators) --- *)

let test_weighted_matches_unweighted () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  let w = Array.make (Array.length xs) 3.5 in
  check_float ~eps:1e-12 "uniform weights = mean" (D.mean xs)
    (D.weighted_mean xs ~w);
  (* Reliability-weighted variance reduces to the unbiased sample
     variance under uniform weights. *)
  check_float ~eps:1e-12 "uniform weights = unbiased variance"
    (D.variance xs) (D.weighted_variance xs ~w);
  check_float ~eps:1e-12 "uniform weights = median" (D.median xs)
    (D.weighted_quantile xs ~w 0.5)

let test_weighted_mean_replication () =
  (* Integer weights behave like sample replication. *)
  let xs = [| 1.0; 10.0 |] and w = [| 3.0; 1.0 |] in
  check_float ~eps:1e-12 "3:1 replication" ((3.0 +. 10.0) /. 4.0)
    (D.weighted_mean xs ~w);
  (* Scale invariance: weights are relative masses. *)
  let w10 = Array.map (fun wi -> 10.0 *. wi) w in
  check_float ~eps:1e-12 "weight scale invariant (mean)"
    (D.weighted_mean xs ~w) (D.weighted_mean xs ~w:w10);
  check_float ~eps:1e-12 "weight scale invariant (variance)"
    (D.weighted_variance xs ~w)
    (D.weighted_variance xs ~w:w10)

let test_weighted_zero_weight_ignored () =
  let xs = [| 1.0; 2.0; 1000.0 |] and w = [| 1.0; 1.0; 0.0 |] in
  check_float ~eps:1e-12 "zero-weight sample invisible" 1.5
    (D.weighted_mean xs ~w);
  check_float ~eps:1e-12 "quantile ignores it too" 2.0
    (D.weighted_quantile xs ~w 1.0)

let test_weighted_rejects_bad_weights () =
  let xs = [| 1.0; 2.0 |] in
  (match D.weighted_mean xs ~w:[| 1.0 |] with
  | _ -> Alcotest.fail "expected Invalid_argument (length mismatch)"
  | exception Invalid_argument _ -> ());
  (match D.weighted_mean xs ~w:[| 1.0; -0.5 |] with
  | _ -> Alcotest.fail "expected Invalid_argument (negative weight)"
  | exception Invalid_argument _ -> ());
  match D.weighted_mean xs ~w:[| 0.0; 0.0 |] with
  | _ -> Alcotest.fail "expected Invalid_argument (all-zero weights)"
  | exception Invalid_argument _ -> ()

let test_effective_sample_size () =
  check_float ~eps:1e-9 "uniform weights: ess = n" 4.0
    (D.effective_sample_size [| 2.0; 2.0; 2.0; 2.0 |]);
  check_float ~eps:1e-9 "one dominant weight: ess -> 1" 1.0
    (D.effective_sample_size [| 1e12; 1e-12; 1e-12 |]);
  let ess = D.effective_sample_size [| 4.0; 1.0; 1.0; 1.0; 1.0 |] in
  Alcotest.(check bool) "skewed weights: 1 < ess < n" true
    (ess > 1.0 && ess < 5.0)

(* --- Histogram --- *)

let test_histogram_counts () =
  let xs = [| 0.0; 0.1; 0.9; 1.0 |] in
  let h = H.build ~bins:2 xs in
  Alcotest.(check int) "total" 4 h.total;
  Alcotest.(check int) "bin0" 2 h.counts.(0);
  Alcotest.(check int) "bin1" 2 h.counts.(1)

let test_histogram_density_integrates_to_one () =
  let xs = gaussian_sample ~seed:4 ~n:5000 ~mean:1.0 ~sigma:2.0 in
  let h = H.build xs in
  let d = H.density h in
  let integral =
    Array.fold_left
      (fun acc (i, (_, rho)) ->
        let width = h.edges.(i + 1) -. h.edges.(i) in
        acc +. (rho *. width))
      0.0
      (Array.mapi (fun i p -> (i, p)) d)
  in
  check_float ~eps:1e-9 "density integral" 1.0 integral

let test_kde_integrates_to_one () =
  let xs = gaussian_sample ~seed:5 ~n:2000 ~mean:0.0 ~sigma:1.0 in
  let series = H.kde ~points:201 xs in
  let integral = ref 0.0 in
  for i = 0 to Array.length series - 2 do
    let x0, y0 = series.(i) and x1, y1 = series.(i + 1) in
    integral := !integral +. (0.5 *. (y0 +. y1) *. (x1 -. x0))
  done;
  check_float ~eps:0.02 "kde integral" 1.0 !integral

let test_kde_peak_near_mean () =
  let xs = gaussian_sample ~seed:6 ~n:5000 ~mean:3.0 ~sigma:0.5 in
  let series = H.kde xs in
  let best =
    Array.fold_left
      (fun (bx, by) (x, y) -> if y > by then (x, y) else (bx, by))
      (0.0, neg_infinity) series
  in
  check_float ~eps:0.2 "peak position" 3.0 (fst best)

let test_sparkline_length () =
  let s = H.sparkline ~width:10 (Array.init 100 Float.of_int) in
  Alcotest.(check bool) "non-empty" true (String.length s > 0)

let test_wilson_interval () =
  (* k = 0 must still give an informative interval: lo = 0, hi > 0. *)
  let lo0, hi0 = H.wilson_interval ~k:0 100 in
  check_float ~eps:1e-12 "k=0 lower" 0.0 lo0;
  Alcotest.(check bool) "k=0 upper positive" true (hi0 > 0.0 && hi0 < 0.1);
  let lo, hi = H.wilson_interval ~k:50 100 in
  Alcotest.(check bool) "contains p-hat" true (lo < 0.5 && 0.5 < hi);
  Alcotest.(check bool) "inside [0,1]" true (lo >= 0.0 && hi <= 1.0);
  let lo99, hi99 = H.wilson_interval ~confidence:0.99 ~k:50 100 in
  Alcotest.(check bool) "higher confidence widens" true
    (lo99 < lo && hi99 > hi);
  match H.wilson_interval ~k:5 4 with
  | _ -> Alcotest.fail "expected Invalid_argument (k > n)"
  | exception Invalid_argument _ -> ()

let test_exceedance_tails () =
  let xs = Array.init 100 (fun i -> Float.of_int i) in
  let up = H.exceedance xs 89.5 in
  Alcotest.(check int) "upper count" 10 up.H.t_count;
  check_float ~eps:1e-12 "upper prob" 0.1 up.H.t_prob;
  Alcotest.(check bool) "wilson brackets p-hat" true
    (up.H.t_lo < 0.1 && 0.1 < up.H.t_hi);
  let low = H.exceedance ~tail:`Lower xs 10.0 in
  (* Strict inequality: the sample exactly at the threshold is safe. *)
  Alcotest.(check int) "lower count strict" 10 low.H.t_count

(* --- Qq --- *)

let test_qq_gaussian_is_linear () =
  let xs = gaussian_sample ~seed:7 ~n:4000 ~mean:5.0 ~sigma:2.0 in
  Alcotest.(check bool) "r2 > 0.995" true (Qq.linearity_r2 xs > 0.995)

let test_qq_lognormal_is_nonlinear () =
  let rng = Rng.create ~seed:8 in
  let xs = Array.init 4000 (fun _ -> Rng.lognormal rng ~mu:0.0 ~sigma:0.8) in
  Alcotest.(check bool) "r2 < 0.97" true (Qq.linearity_r2 xs < 0.97)

let test_qq_series_monotone () =
  let xs = gaussian_sample ~seed:9 ~n:100 ~mean:0.0 ~sigma:1.0 in
  let series = Qq.against_normal xs in
  let ok = ref true in
  for i = 0 to Array.length series - 2 do
    if snd series.(i) > snd series.(i + 1) then ok := false;
    if fst series.(i) >= fst series.(i + 1) then ok := false
  done;
  Alcotest.(check bool) "monotone" true !ok

let test_tail_deviation_gaussian () =
  let xs = gaussian_sample ~seed:10 ~n:100_000 ~mean:0.0 ~sigma:1.0 in
  check_float ~eps:0.05 "gaussian tail dev ~ 0" 0.0 (Qq.tail_deviation xs)

(* --- Ellipse --- *)

let bivariate_sample ~seed ~n =
  let rng = Rng.create ~seed in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let u = Rng.gaussian rng and v = Rng.gaussian rng in
    xs.(i) <- (2.0 *. u) +. 1.0;
    (* correlated pair *)
    ys.(i) <- u +. (0.5 *. v) -. 3.0
  done;
  (xs, ys)

let test_ellipse_coverage () =
  let xs, ys = bivariate_sample ~seed:11 ~n:20_000 in
  List.iter
    (fun (k, expected) ->
      let e = E.of_sigma_level ~n_sigma:k xs ys in
      let cov = E.coverage e xs ys in
      check_float ~eps:0.02 (Printf.sprintf "%d-sigma coverage" k) expected cov)
    [ (1, 0.3935); (2, 0.8647); (3, 0.9889) ]

let test_ellipse_of_samples_coverage () =
  let xs, ys = bivariate_sample ~seed:12 ~n:20_000 in
  let e = E.of_samples ~confidence:0.5 xs ys in
  check_float ~eps:0.02 "50% ellipse" 0.5 (E.coverage e xs ys)

let test_ellipse_center () =
  let xs, ys = bivariate_sample ~seed:13 ~n:20_000 in
  let e = E.of_sigma_level ~n_sigma:1 xs ys in
  let cx, cy = e.center in
  check_float ~eps:0.05 "center x" 1.0 cx;
  check_float ~eps:0.05 "center y" (-3.0) cy

let test_ellipse_points_on_boundary () =
  let xs, ys = bivariate_sample ~seed:14 ~n:5000 in
  let e = E.of_sigma_level ~n_sigma:2 xs ys in
  let pts = E.points e ~n:36 in
  Alcotest.(check int) "count" 36 (Array.length pts);
  (* Boundary points must be inside (closed ellipse) but barely: shrink by
     10% -> inside, grow by 10% -> outside. *)
  let cx, cy = e.center in
  Array.iter
    (fun (x, y) ->
      let inside_shrunk =
        E.contains e (cx +. (0.9 *. (x -. cx)), cy +. (0.9 *. (y -. cy)))
      in
      let outside_grown =
        not (E.contains e (cx +. (1.1 *. (x -. cx)), cy +. (1.1 *. (y -. cy))))
      in
      if not (inside_shrunk && outside_grown) then
        Alcotest.fail "boundary point mis-located")
    pts

(* --- Compare --- *)

let test_ks_identical () =
  let xs = gaussian_sample ~seed:15 ~n:500 ~mean:0.0 ~sigma:1.0 in
  check_float "ks self" 0.0 (C.ks_statistic xs xs)

let test_ks_disjoint () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 10.0; 11.0; 12.0 |] in
  check_float "ks disjoint" 1.0 (C.ks_statistic a b)

let test_ks_same_distribution_pvalue () =
  let a = gaussian_sample ~seed:16 ~n:800 ~mean:0.0 ~sigma:1.0 in
  let b = gaussian_sample ~seed:17 ~n:800 ~mean:0.0 ~sigma:1.0 in
  Alcotest.(check bool) "p > 0.01" true (C.ks_p_value a b > 0.01)

let test_ks_different_distribution_pvalue () =
  let a = gaussian_sample ~seed:18 ~n:800 ~mean:0.0 ~sigma:1.0 in
  let b = gaussian_sample ~seed:19 ~n:800 ~mean:1.0 ~sigma:1.0 in
  Alcotest.(check bool) "p < 0.01" true (C.ks_p_value a b < 0.01)

let test_density_overlap () =
  let a = gaussian_sample ~seed:20 ~n:2000 ~mean:0.0 ~sigma:1.0 in
  let b = gaussian_sample ~seed:21 ~n:2000 ~mean:0.0 ~sigma:1.0 in
  Alcotest.(check bool) "self-family overlap > 0.9" true (C.density_overlap a b > 0.9);
  let c = gaussian_sample ~seed:22 ~n:2000 ~mean:8.0 ~sigma:1.0 in
  Alcotest.(check bool) "far overlap < 0.1" true (C.density_overlap a c < 0.1)

let test_relative_diffs () =
  let a = [| 1.0; 2.0; 3.0 |] in
  let b = Array.map (fun x -> 2.0 *. x) a in
  check_float ~eps:1e-12 "mean diff" 0.5 (C.relative_mean_diff a b);
  check_float ~eps:1e-12 "std diff" 0.5 (C.relative_std_diff a b)

(* --- degenerate inputs --- *)

let test_histogram_constant_sample () =
  let h = H.build (Array.make 10 5.0) in
  Alcotest.(check int) "all binned" 10 h.total

let test_variance_needs_two () =
  match D.variance [| 1.0 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    (* The message must carry enough context to debug a partial run:
       which function, what it needed, and what it got. *)
    let contains needle =
      let nl = String.length needle and l = String.length msg in
      let rec go i = i + nl <= l && (String.sub msg i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the function" true
      (contains "Descriptive.variance");
    Alcotest.(check bool) "states the got count" true (contains "got 1")

let test_mean_ci () =
  (* CI for a known sample: mean 2, std 1, n = 4 → half-width z * 1/2. *)
  let xs = [| 1.0; 2.0; 2.0; 3.0 |] in
  let mu = D.mean xs and sd = D.std xs in
  let lo, hi = D.mean_ci xs in
  check_float ~eps:1e-12 "centered" mu ((lo +. hi) /. 2.0);
  check_float ~eps:1e-6 "95% half-width" (1.959964 *. sd /. 2.0)
    ((hi -. lo) /. 2.0);
  (* Wider confidence → wider interval; fewer samples → wider interval:
     a deadline-truncated run reports honestly degraded precision. *)
  let lo99, hi99 = D.mean_ci ~confidence:0.99 xs in
  Alcotest.(check bool) "99% wider than 95%" true (hi99 -. lo99 > hi -. lo);
  let rng = Rng.create ~seed:41 in
  let big = Array.init 400 (fun _ -> Rng.gaussian rng) in
  let part = Array.sub big 0 40 in
  let blo, bhi = D.mean_ci big and plo, phi = D.mean_ci part in
  Alcotest.(check bool) "partial run has a wider CI" true
    (phi -. plo > bhi -. blo);
  (match D.mean_ci [| 1.0 |] with
  | _ -> Alcotest.fail "CI from one sample accepted"
  | exception Invalid_argument _ -> ());
  match D.mean_ci ~confidence:1.0 xs with
  | _ -> Alcotest.fail "confidence 1.0 accepted"
  | exception Invalid_argument _ -> ()

let test_ks_p_value_bounds () =
  let rng = Rng.create ~seed:40 in
  for _ = 1 to 20 do
    let a = Array.init 50 (fun _ -> Rng.gaussian rng) in
    let b = Array.init 50 (fun _ -> Rng.gaussian rng +. Rng.float rng) in
    let p = C.ks_p_value a b in
    if p < 0.0 || p > 1.0 then Alcotest.fail "p out of [0,1]"
  done

let test_ellipse_degenerate_constant () =
  (* Zero-variance axis: the ellipse collapses; contains must not crash and
     coverage must be 0 (nothing strictly inside a zero-area ellipse). *)
  let xs = Array.make 10 1.0 in
  let ys = Array.init 10 Float.of_int in
  let e = E.of_sigma_level ~n_sigma:1 xs ys in
  let cov = E.coverage e xs ys in
  Alcotest.(check bool) "no crash, bounded" true (cov >= 0.0 && cov <= 1.0)

(* --- qcheck --- *)

let nonempty_floats =
  QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.0) 1000.0))

let prop_quantile_bounds =
  QCheck.Test.make ~name:"quantiles stay within min/max" ~count:200
    QCheck.(pair nonempty_floats (float_range 0.0 1.0))
    (fun (xs, p) ->
      let xs = Array.of_list xs in
      let lo, hi = D.min_max xs in
      let q = D.quantile xs p in
      q >= lo -. 1e-9 && q <= hi +. 1e-9)

let prop_std_shift_invariant =
  QCheck.Test.make ~name:"std is shift invariant" ~count:200
    QCheck.(pair nonempty_floats (float_range (-100.0) 100.0))
    (fun (xs, shift) ->
      let xs = Array.of_list xs in
      let shifted = Array.map (fun x -> x +. shift) xs in
      Float.abs (D.std xs -. D.std shifted)
      <= 1e-6 *. Float.max 1.0 (D.std xs))

let prop_ks_symmetric =
  QCheck.Test.make ~name:"KS statistic is symmetric" ~count:100
    QCheck.(pair nonempty_floats nonempty_floats)
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      Float.abs (C.ks_statistic a b -. C.ks_statistic b a) < 1e-12)

let () =
  Alcotest.run "vstat_stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean/var/std" `Quick test_mean_var_std;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "quantile unsorted" `Quick test_quantile_unsorted;
          Alcotest.test_case "skew symmetric" `Slow test_skewness_symmetric;
          Alcotest.test_case "skew lognormal" `Slow test_skewness_positive_for_lognormal;
          Alcotest.test_case "kurtosis gaussian" `Slow test_kurtosis_gaussian;
          Alcotest.test_case "cov/corr" `Quick test_covariance_correlation;
          Alcotest.test_case "sigma/mu" `Quick test_sigma_over_mu;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "variance needs two" `Quick test_variance_needs_two;
          Alcotest.test_case "mean CI" `Quick test_mean_ci;
          Alcotest.test_case "weighted = unweighted on uniform w" `Quick
            test_weighted_matches_unweighted;
          Alcotest.test_case "weighted replication" `Quick
            test_weighted_mean_replication;
          Alcotest.test_case "zero weights ignored" `Quick
            test_weighted_zero_weight_ignored;
          Alcotest.test_case "weighted bad inputs" `Quick
            test_weighted_rejects_bad_weights;
          Alcotest.test_case "effective sample size" `Quick
            test_effective_sample_size;
          QCheck_alcotest.to_alcotest prop_quantile_bounds;
          QCheck_alcotest.to_alcotest prop_std_shift_invariant;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "density integral" `Quick test_histogram_density_integrates_to_one;
          Alcotest.test_case "kde integral" `Quick test_kde_integrates_to_one;
          Alcotest.test_case "kde peak" `Quick test_kde_peak_near_mean;
          Alcotest.test_case "sparkline" `Quick test_sparkline_length;
          Alcotest.test_case "constant sample" `Quick test_histogram_constant_sample;
          Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
          Alcotest.test_case "exceedance tails" `Quick test_exceedance_tails;
        ] );
      ( "qq",
        [
          Alcotest.test_case "gaussian linear" `Quick test_qq_gaussian_is_linear;
          Alcotest.test_case "lognormal nonlinear" `Quick test_qq_lognormal_is_nonlinear;
          Alcotest.test_case "series monotone" `Quick test_qq_series_monotone;
          Alcotest.test_case "tail deviation" `Slow test_tail_deviation_gaussian;
        ] );
      ( "ellipse",
        [
          Alcotest.test_case "sigma coverage" `Slow test_ellipse_coverage;
          Alcotest.test_case "confidence coverage" `Slow test_ellipse_of_samples_coverage;
          Alcotest.test_case "center" `Quick test_ellipse_center;
          Alcotest.test_case "boundary points" `Quick test_ellipse_points_on_boundary;
          Alcotest.test_case "degenerate constant" `Quick test_ellipse_degenerate_constant;
        ] );
      ( "compare",
        [
          Alcotest.test_case "ks identical" `Quick test_ks_identical;
          Alcotest.test_case "ks disjoint" `Quick test_ks_disjoint;
          Alcotest.test_case "ks same dist" `Quick test_ks_same_distribution_pvalue;
          Alcotest.test_case "ks different dist" `Quick test_ks_different_distribution_pvalue;
          Alcotest.test_case "density overlap" `Quick test_density_overlap;
          Alcotest.test_case "relative diffs" `Quick test_relative_diffs;
          Alcotest.test_case "ks p bounds" `Quick test_ks_p_value_bounds;
          QCheck_alcotest.to_alcotest prop_ks_symmetric;
        ] );
    ]
