(* Checkpoint/resume correctness: journal round-trips and typed
   rejection of corrupt/mismatched snapshots, subset execution and stop
   polling in the runtime, codec round-trips, deadline watchdogs, and the
   tentpole property — an interrupted-then-resumed Monte Carlo run is
   bit-identical to an uninterrupted one at any worker count. *)

module R = Vstat_runtime.Runtime
module C = Vstat_runtime.Checkpoint
module J = Vstat_runtime.Journal
module D = Vstat_runtime.Deadline
module Rng = Vstat_util.Rng

let bits = Int64.bits_of_float

let check_bits_array what a b =
  Alcotest.(check int) (what ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.(i))) then
        Alcotest.failf "%s: sample %d differs: %h vs %h" what i x b.(i))
    a

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "vstat_ckpt_test_%d_%d" (Unix.getpid ()) !counter)
    in
    Vstat_util.Atomic_io.ensure_dir dir;
    dir

(* --- CRC32 ------------------------------------------------------------- *)

let test_crc32 () =
  Alcotest.(check int)
    "IEEE check vector" 0xCBF43926
    (Vstat_util.Crc32.digest "123456789");
  Alcotest.(check int) "empty" 0 (Vstat_util.Crc32.digest "");
  Alcotest.(check int)
    "digest_sub matches digest"
    (Vstat_util.Crc32.digest "456")
    (Vstat_util.Crc32.digest_sub "123456789" ~pos:3 ~len:3)

(* --- journal round-trip and rejection ---------------------------------- *)

let identity n =
  { J.label = "t"; fingerprint = "fp"; n; base_seed = 42L; max_attempts = 2 }

let snapshot () =
  let c = C.float_codec in
  let entry i =
    { J.index = i; attempts = 1 + (i mod 2); payload = c.C.encode (float_of_int i *. 1.25) }
  in
  {
    J.identity = identity 10;
    entries = Array.map entry [| 0; 3; 4; 7; 9 |];
    moments =
      [| { J.m_count = 5; m_mean = 1.5; m_m2 = 0.25; m_lo = 0.0; m_hi = 9.0 } |];
  }

let test_journal_roundtrip () =
  let snap = snapshot () in
  match J.decode (J.encode snap) with
  | Error e -> Alcotest.failf "decode failed: %s" (J.error_to_string e)
  | Ok got ->
    Alcotest.(check string) "label" snap.J.identity.J.label got.J.identity.J.label;
    Alcotest.(check int) "n" 10 got.J.identity.J.n;
    Alcotest.(check int) "entries" 5 (Array.length got.J.entries);
    Array.iteri
      (fun k (e : J.entry) ->
        let o = got.J.entries.(k) in
        Alcotest.(check int) "index" e.J.index o.J.index;
        Alcotest.(check int) "attempts" e.J.attempts o.J.attempts;
        Alcotest.(check string) "payload" e.J.payload o.J.payload)
      snap.J.entries;
    let m = got.J.moments.(0) in
    Alcotest.(check int) "moment count" 5 m.J.m_count;
    Alcotest.(check bool) "moment mean" true
      (Int64.equal (bits 1.5) (bits m.J.m_mean))

let expect_error what result pred =
  match result with
  | Ok _ -> Alcotest.failf "%s: decode unexpectedly succeeded" what
  | Error e ->
    if not (pred e) then
      Alcotest.failf "%s: wrong error: %s" what (J.error_to_string e)

let test_journal_rejection () =
  let s = J.encode (snapshot ()) in
  (* Flipped payload byte: CRC catches it. *)
  let corrupt = Bytes.of_string s in
  let mid = String.length s / 2 in
  Bytes.set corrupt mid (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x41));
  expect_error "bad CRC"
    (J.decode (Bytes.to_string corrupt))
    (function J.Corrupt _ -> true | _ -> false);
  (* Truncation. *)
  expect_error "truncated"
    (J.decode (String.sub s 0 (String.length s - 5)))
    (function J.Corrupt _ -> true | _ -> false);
  expect_error "almost empty"
    (J.decode (String.sub s 0 6))
    (function J.Corrupt _ -> true | _ -> false);
  (* Wrong magic. *)
  expect_error "bad magic"
    (J.decode ("XXXXXXXX" ^ String.sub s 8 (String.length s - 8)))
    (function J.Bad_magic _ -> true | _ -> false);
  (* Version skew is detected before the CRC is even checked. *)
  let skewed = Bytes.of_string s in
  Bytes.set_int32_le skewed 8 99l;
  expect_error "version skew"
    (J.decode (Bytes.to_string skewed))
    (function
      | J.Version_skew { found = 99; _ } -> true
      | _ -> false);
  (* Error payloads name the snapshot they describe: in-memory decodes
     carry the sentinel, file reads carry the offending path. *)
  expect_error "in-memory path sentinel"
    (J.decode (Bytes.to_string corrupt))
    (fun e -> String.equal (J.error_path e) J.in_memory);
  let dir = Filename.temp_file "vstat_journal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let bad_path = Filename.concat dir "torn.ckpt" in
  Out_channel.with_open_bin bad_path (fun oc ->
      Out_channel.output_string oc (Bytes.to_string corrupt));
  expect_error "file path in corrupt payload" (J.read ~path:bad_path) (fun e ->
      (match e with J.Corrupt _ -> true | _ -> false)
      && String.equal (J.error_path e) bad_path);
  expect_error "file path in IO payload"
    (J.read ~path:(Filename.concat dir "absent.ckpt"))
    (fun e ->
      (match e with J.Io _ -> true | _ -> false)
      && String.equal (J.error_path e) (Filename.concat dir "absent.ckpt"))

let test_identity_mismatch () =
  let a = identity 10 in
  (match J.check_identity ~expected:a a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "self mismatch: %s" (J.error_to_string e));
  let checks =
    [
      ("label", { a with J.label = "other" });
      ("fingerprint", { a with J.fingerprint = "fp2" });
      ("sample count", { a with J.n = 11 });
      ("RNG base seed", { a with J.base_seed = 43L });
      ("retry ladder depth", { a with J.max_attempts = 1 });
    ]
  in
  List.iter
    (fun (field, found) ->
      match J.check_identity ~expected:a found with
      | Ok () -> Alcotest.failf "%s mismatch not detected" field
      | Error (J.Mismatch m) ->
        Alcotest.(check string) "mismatched field named" field m.field
      | Error e ->
        Alcotest.failf "%s: wrong error %s" field (J.error_to_string e))
    checks

(* --- codecs ------------------------------------------------------------ *)

let test_codecs () =
  let check_rt name codec v equal =
    let got = codec.C.decode (codec.C.encode v) in
    Alcotest.(check bool) (name ^ " round-trip") true (equal v got)
  in
  let feq a b = Int64.equal (bits a) (bits b) in
  check_rt "float" C.float_codec 3.14159 feq;
  check_rt "float negative zero" C.float_codec (-0.0) feq;
  check_rt "float nan" C.float_codec Float.nan feq;
  check_rt "float-array" C.float_array_codec
    [| 1.0; -2.5; Float.infinity |]
    (fun a b -> Array.for_all2 feq a b);
  check_rt "float-list" C.float_list_codec [ 0.1; 0.2 ] (fun a b ->
      List.for_all2 feq a b);
  check_rt "float-triple" C.float_triple_codec (1.0, -1.0, 0.5)
    (fun (a, b, c) (x, y, z) -> feq a x && feq b y && feq c z);
  (* Malformed payloads fail loudly, not silently. *)
  (match C.float_codec.C.decode "abc" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "short float payload accepted");
  (match C.float_array_codec.C.decode "abcdefghi" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "ragged float-array payload accepted")

(* --- runtime subset execution ------------------------------------------ *)

let test_subset () =
  let p =
    R.map_subset_attempt_samples ~jobs:1 ~n:10 ~indices:[| 2; 5; 7 |]
      ~f:(fun ~attempt:_ i -> i * 10)
      ()
  in
  Alcotest.(check int) "evaluated" 3 p.R.evaluated;
  Alcotest.(check bool) "completed" true (p.R.cause = R.Completed);
  Array.iteri
    (fun i slot ->
      let expect_some = i = 2 || i = 5 || i = 7 in
      Alcotest.(check bool)
        (Printf.sprintf "slot %d" i)
        expect_some
        (Option.is_some slot);
      match slot with
      | Some (Ok v) -> Alcotest.(check int) "value" (i * 10) v
      | Some (Error _) -> Alcotest.fail "unexpected failure"
      | None -> ())
    p.R.slots;
  (match
     R.map_subset_attempt_samples ~n:3 ~indices:[| 3 |]
       ~f:(fun ~attempt:_ i -> i)
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range index accepted");
  (* should_stop = always: nothing runs, cause says so. *)
  let stopped =
    R.map_subset_attempt_samples ~jobs:1 ~n:5
      ~indices:[| 0; 1; 2; 3; 4 |]
      ~should_stop:(fun () -> true)
      ~f:(fun ~attempt:_ i -> i)
      ()
  in
  Alcotest.(check int) "none evaluated" 0 stopped.R.evaluated;
  Alcotest.(check bool) "stopped" true (stopped.R.cause = R.Stopped)

(* --- deadline ----------------------------------------------------------- *)

let test_deadline () =
  (match D.watchdog ~seconds:0.0 with
  | exception Invalid_argument _ -> ()
  | (_ : unit -> bool) -> Alcotest.fail "zero-second watchdog accepted");
  let loose = D.watchdog ~seconds:3600.0 in
  Alcotest.(check bool) "fresh budget" false (loose ());
  let tight = D.watchdog ~seconds:1e-6 in
  Unix.sleepf 0.005;
  Alcotest.(check bool) "expired budget" true (tight ());
  Alcotest.(check bool) "never" false (D.never ());
  Alcotest.(check bool) "combine fires on either" true
    (D.combine D.never tight ())

let test_signal_numbers () =
  (* OCaml's portable encodings are negative; exit codes need POSIX. *)
  Alcotest.(check int) "sigterm" 15 (C.os_signal_number Sys.sigterm);
  Alcotest.(check int) "sigint" 2 (C.os_signal_number Sys.sigint);
  Alcotest.(check int) "raw number passes through" 7 (C.os_signal_number 7);
  Alcotest.(check int) "unknown encoding" 0 (C.os_signal_number min_int)

(* --- the tentpole: interrupt, resume, bit-identity ---------------------- *)

let sample ~attempt:_ ~index:_ rng =
  let a = Rng.gaussian rng in
  let b = Rng.gaussian rng in
  (a *. 1.5) +. (b *. b)

let n = 40
let seed = 97

let plain_values ~jobs =
  R.values
    (R.map_rng_attempt_samples ~jobs ~rng:(Rng.create ~seed) ~n ~f:sample ())

let test_checkpointed_matches_plain () =
  let reference = plain_values ~jobs:1 in
  check_bits_array "plain jobs:4" reference (plain_values ~jobs:4);
  let dir = fresh_dir () in
  let o =
    C.run ~jobs:1
      ~settings:(C.settings ~every:7 dir)
      ~codec:C.float_codec ~label:"bit" ~rng:(Rng.create ~seed) ~n ~f:sample
      ()
  in
  Alcotest.(check bool) "complete" true (C.is_complete o);
  Alcotest.(check bool) "finished" true (o.C.cause = C.Finished);
  check_bits_array "checkpointed = plain" reference (C.values o);
  (match o.C.snapshot with
  | Some path -> Alcotest.(check bool) "snapshot exists" true (Sys.file_exists path)
  | None -> Alcotest.fail "no snapshot path");
  match o.C.manifest with
  | Some path ->
    let json =
      match Vstat_util.Atomic_io.read_file ~path with
      | Ok s -> s
      | Error e -> Alcotest.failf "manifest unreadable: %s" e
    in
    let contains needle =
      let nl = String.length needle and l = String.length json in
      let rec go i = i + nl <= l && (String.sub json i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "manifest says complete" true
      (contains "\"status\": \"complete\"")
  | None -> Alcotest.fail "no manifest path"

let interrupt_then_resume ~resume_jobs () =
  let reference = plain_values ~jobs:1 in
  let dir = fresh_dir () in
  let settings = C.settings ~every:4 dir in
  (* Cut the run after ~12 samples via a deterministic "deadline". *)
  let calls = ref 0 in
  let cut () =
    incr calls;
    !calls > 12
  in
  let o1 =
    C.run ~jobs:1 ~settings ~deadline:cut ~codec:C.float_codec ~label:"kr"
      ~rng:(Rng.create ~seed) ~n ~f:sample ()
  in
  Alcotest.(check bool) "stopped early" true (o1.C.cause = C.Deadline_reached);
  Alcotest.(check bool) "partial" true (o1.C.completed < n && o1.C.completed > 0);
  (* "Restart the process": a fresh run resumes from the snapshot. *)
  let o2 =
    C.run ~jobs:resume_jobs
      ~settings:(C.settings ~every:4 ~resume:true dir)
      ~codec:C.float_codec ~label:"kr" ~rng:(Rng.create ~seed) ~n ~f:sample ()
  in
  Alcotest.(check int) "restored what was checkpointed" o1.C.completed
    o2.C.restored;
  Alcotest.(check bool) "resume completes" true (C.is_complete o2);
  check_bits_array
    (Printf.sprintf "resumed(jobs:%d) = uninterrupted" resume_jobs)
    reference (C.values o2);
  (* Resuming a finished run replays nothing. *)
  let o3 =
    C.run ~jobs:1
      ~settings:(C.settings ~resume:true dir)
      ~codec:C.float_codec ~label:"kr" ~rng:(Rng.create ~seed) ~n ~f:sample ()
  in
  Alcotest.(check int) "fully restored" n o3.C.restored;
  check_bits_array "no-op resume" reference (C.values o3)

let test_resume_rejects_mismatch () =
  let dir = fresh_dir () in
  let settings = C.settings dir in
  let run ?(label = "mm") ?(n = 10) ?(seed = 5) ~resume () =
    C.run ~jobs:1
      ~settings:{ settings with C.resume }
      ~codec:C.float_codec ~label ~rng:(Rng.create ~seed) ~n ~f:sample ()
  in
  ignore (run ~resume:false ());
  let expect_rejected what pred f =
    match f () with
    | _ -> Alcotest.failf "%s: resume unexpectedly accepted" what
    | exception J.Rejected e ->
      if not (pred e) then
        Alcotest.failf "%s: wrong rejection: %s" what (J.error_to_string e)
  in
  expect_rejected "different n"
    (function J.Mismatch { field = "sample count"; _ } -> true | _ -> false)
    (fun () -> run ~resume:true ~n:12 ());
  expect_rejected "different seed"
    (function J.Mismatch { field = "RNG base seed"; _ } -> true | _ -> false)
    (fun () -> run ~resume:true ~seed:6 ());
  (* Same label, different codec: the fingerprint catches it. *)
  expect_rejected "different codec"
    (function J.Mismatch { field = "fingerprint"; _ } -> true | _ -> false)
    (fun () ->
      C.run ~jobs:1
        ~settings:{ settings with C.resume = true }
        ~codec:C.float_array_codec ~label:"mm" ~rng:(Rng.create ~seed:5) ~n:10
        ~f:(fun ~attempt ~index rng -> [| sample ~attempt ~index rng |])
        ());
  (* A corrupted snapshot file is refused, not merged. *)
  let path = C.snapshot_path settings "mm" in
  Vstat_util.Atomic_io.write_file ~path "VSTATCKPgarbage-after-magic";
  expect_rejected "corrupt snapshot"
    (function J.Corrupt _ | J.Version_skew _ -> true | _ -> false)
    (fun () -> run ~resume:true ())

let test_retry_attempts_survive_resume () =
  (* A sample that fails on attempt 0 and succeeds on attempt 1 must keep
     its recorded attempt count through checkpoint/resume. *)
  let flaky ~attempt ~index rng =
    let v = sample ~attempt ~index rng in
    if index = 3 && attempt = 0 then failwith "transient";
    v
  in
  let retry = R.retry 2 in
  let dir = fresh_dir () in
  let calls = ref 0 in
  let cut () =
    incr calls;
    !calls > 6
  in
  let o1 =
    C.run ~jobs:1 ~retry ~settings:(C.settings ~every:2 dir) ~deadline:cut
      ~codec:C.float_codec ~label:"flaky" ~rng:(Rng.create ~seed:11) ~n:12
      ~f:flaky ()
  in
  Alcotest.(check bool) "cut early" true (o1.C.completed < 12);
  let o2 =
    C.run ~jobs:1 ~retry
      ~settings:(C.settings ~resume:true dir)
      ~codec:C.float_codec ~label:"flaky" ~rng:(Rng.create ~seed:11) ~n:12
      ~f:flaky ()
  in
  Alcotest.(check bool) "resume completes" true (C.is_complete o2);
  Alcotest.(check int) "sample 3 took two attempts" 2 o2.C.attempts.(3);
  let full =
    R.map_rng_attempt_samples ~jobs:1 ~retry ~rng:(Rng.create ~seed:11) ~n:12
      ~f:flaky ()
  in
  check_bits_array "flaky resumed = uninterrupted" (R.values full)
    (C.values o2)

let () =
  Alcotest.run "checkpoint"
    [
      ( "journal",
        [
          Alcotest.test_case "crc32 vectors" `Quick test_crc32;
          Alcotest.test_case "snapshot round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick test_journal_rejection;
          Alcotest.test_case "identity mismatch" `Quick test_identity_mismatch;
          Alcotest.test_case "codecs" `Quick test_codecs;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "subset execution" `Quick test_subset;
          Alcotest.test_case "deadline watchdog" `Quick test_deadline;
          Alcotest.test_case "signal numbers" `Quick test_signal_numbers;
        ] );
      ( "resume",
        [
          Alcotest.test_case "checkpointed = plain" `Quick
            test_checkpointed_matches_plain;
          Alcotest.test_case "interrupt/resume jobs:1" `Quick
            (interrupt_then_resume ~resume_jobs:1);
          Alcotest.test_case "interrupt/resume jobs:4" `Quick
            (interrupt_then_resume ~resume_jobs:4);
          Alcotest.test_case "mismatch rejected" `Quick
            test_resume_rejects_mismatch;
          Alcotest.test_case "retry ladder survives resume" `Quick
            test_retry_attempts_survive_resume;
        ] );
    ]
