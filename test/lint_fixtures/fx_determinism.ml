(* Positive and negative fixtures for the determinism rule family.  The
   golden test in ../test_lint.ml pins (rule, file, line) for every
   violation below, so keep the line numbers stable when editing. *)

let bad_random () = Random.float 1.0

let bad_self_init () = Random.self_init ()

let bad_gettimeofday () = Unix.gettimeofday ()

let bad_sys_time () = Sys.time ()

let bad_fold tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let bad_iter tbl = Hashtbl.iter (fun _ v -> ignore v) tbl

(* Negative: an adjacent sort re-establishes a total order. *)
let ok_sorted_census tbl =
  let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) xs

(* Negative: inline suppression on the application expression. *)
let ok_suppressed_random () =
  (Random.bits () [@vstat.allow "determinism-random"])

let bad_monotonic () = Monotonic_clock.now ()

(* Negative: the single sanctioned wall-clock read pattern — the deadline
   watchdog in Vstat_runtime.Deadline carries exactly this suppression. *)
let ok_suppressed_monotonic () =
  (Monotonic_clock.now () [@vstat.allow "determinism-wallclock"])
