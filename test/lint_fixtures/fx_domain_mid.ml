(* Middle link of the domain-safety chain fixture. *)

let touch () = Fx_domain_state.counter_bump ()
