(* A deliberately unparseable file: the golden run must report it as a
   parse-error diagnostic rather than crash or skip it silently. *)

let broken = )
