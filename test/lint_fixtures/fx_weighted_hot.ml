(* Hot-path fixtures for the rare-event weighted-accumulator fold: the
   per-sample estimator loop ([@vstat.hot], see Vstat_rare.Importance)
   must not allocate per sample. *)
let[@vstat.hot] bad_weights_map log_weights = List.map exp log_weights

let[@vstat.hot] bad_weighted_pairs ms ws = List.combine ms ws

let[@vstat.hot] bad_weight_trace w = Format.printf "w=%f@." w

let[@vstat.hot] bad_fold_closure (ws : float array) =
  Array.iter (fun w -> ignore (exp w)) ws

(* Negative: the estimator's real shape — a serial index loop over the
   preallocated per-sample arrays feeding mutable accumulator state. *)
let[@vstat.hot] ok_weighted_fold (metrics : float array)
    (log_weights : float array) =
  let s1 = ref 0.0 in
  let hit_mass = ref 0.0 in
  let i = ref 0 in
  while !i < Array.length metrics do
    let w = exp log_weights.(!i) in
    s1 := !s1 +. w;
    if metrics.(!i) < 0.0 then hit_mass := !hit_mass +. w;
    incr i
  done;
  !hit_mass /. !s1

(* Negative: the same combinator is fine in cold reporting code. *)
let ok_cold_weights log_weights = List.map exp log_weights

(* Negative: a sanctioned diagnostic print inside the hot body. *)
let[@vstat.hot] ok_suppressed_trace w =
  (Format.printf "w=%f@." w [@vstat.allow "hot-path"])
