(* Leaf of the determinism-taint chain fixture: a direct Random.* use,
   which is also a per-file determinism-random finding. *)

let leaf x = Random.float x
