(* Positive and negative fixtures for hot-path hygiene ([@vstat.hot]). *)

let[@vstat.hot] bad_printf x = Printf.printf "%f\n" x

let[@vstat.hot] bad_list_map xs = List.map succ xs

let[@vstat.hot] bad_append a b = a @ b

let[@vstat.hot] bad_concat a b = a ^ b

let[@vstat.hot] bad_closure n =
  let f = fun x -> x + n in
  f n

(* Negative: an index loop over a preallocated array allocates nothing. *)
let[@vstat.hot] ok_index_sum (a : float array) =
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. a.(i)
  done;
  !s

(* Negative: the same combinator is fine outside a hot body. *)
let ok_cold_map xs = List.map succ xs

(* Negative: inline suppression inside a hot body. *)
let[@vstat.hot] ok_suppressed_debug x =
  (Printf.printf "debug %f\n" x [@vstat.allow "hot-path"])
