(* Middle link of the determinism-taint chain fixture. *)

let middle x = Fx_taint_c.leaf x +. 1.0
