(* Deep-pass fixture: the [@@@vstat.allow] file floor silences the
   domain-safety access below. *)

[@@@vstat.allow "domain-safety"]

let tally = ref 0

let spin () =
  let d = Domain.spawn (fun () -> incr tally) in
  Domain.join d
