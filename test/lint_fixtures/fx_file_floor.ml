(* The [@@@vstat.allow] file floor: every float-compare in this file is
   sanctioned by the floor attribute, so the golden run must see nothing
   from it. *)

[@@@vstat.allow "float-compare"]

let ok_floored x = x = 1.0

let ok_floored_too x = compare x 2.0
