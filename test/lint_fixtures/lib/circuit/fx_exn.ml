(* Exception-discipline fixtures for the strict layers: this file's path
   contains /lib/circuit/, so the default config applies the full
   failwith / invalid_arg / raise Not_found ban. *)

let bad_failwith () = failwith "boom"

let bad_invalid_arg () = invalid_arg "nope"

let bad_not_found () = raise Not_found

(* Negative: a sanctioned precondition check. *)
let ok_sanctioned x =
  if x < 0 then invalid_arg "x must be >= 0" [@vstat.allow "exn-discipline"]
