(* Exception-discipline fixtures for the failwith-only layers (the path
   contains /lib/linalg/): failwith is banned in favour of the typed
   Linalg_error.Numeric_error, while invalid_arg remains the legitimate
   idiom for caller-precondition violations. *)

let bad_failwith () = failwith "singular"

(* Negative: invalid_arg is the sanctioned precondition idiom here. *)
let ok_precondition n = if n < 0 then invalid_arg "n must be >= 0"
