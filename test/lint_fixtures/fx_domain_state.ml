(* Deep-pass fixture: module-level mutable state for the domain-safety
   chain.  [counter_bump] touches [hits] unguarded; [guarded_bump] goes
   through Mutex.protect and must stay silent. *)

let hits = ref 0
let lock = Mutex.create ()

let counter_bump () = incr hits

let guarded_bump () = Mutex.protect lock (fun () -> incr hits)
