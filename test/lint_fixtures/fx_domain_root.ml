(* Root of the domain-safety chain fixture: the Domain.spawn makes [run] a
   domain root, so everything it reaches runs on at least two domains. *)

let run () =
  let d = Domain.spawn (fun () -> Fx_domain_mid.touch ()) in
  Domain.join d
