(* Exercised twice by ../test_lint.ml: once in the golden run (empty
   allowlist — both violations below appear) and once under a synthetic
   allowlist whose line-pinned entry sanctions only the first. *)

let with_line_entry x = x = 1.0

let without_entry x = x = 2.0
