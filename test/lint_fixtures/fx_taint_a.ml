(* Deep-pass fixture: determinism-taint entry points.  [hot_entry] reaches
   Random.float through the 3-module chain a -> b -> c and must be the one
   reported finding; [sanctioned_entry] takes the same path but carries the
   binding-level allow and must stay silent. *)

let[@vstat.entry] hot_entry x = Fx_taint_b.middle x +. 1.0

let sanctioned_entry x =
  Fx_taint_b.middle x *. 2.0
[@@vstat.entry] [@@vstat.allow "determinism-taint"]
