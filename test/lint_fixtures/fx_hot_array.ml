(* Positive and negative fixtures for the allocating-Array hot-path rule. *)

let[@vstat.hot] bad_make n = Array.make n 0.0

let[@vstat.hot] bad_copy (a : float array) = Array.copy a

let[@vstat.hot] bad_map (a : int array) = Array.map succ a

let[@vstat.hot] bad_sub (a : float array) = Array.sub a 0 1

(* Negatives: fill/blit/length reuse existing storage, so the sparse and
   dense assembly loops keep them. *)
let[@vstat.hot] ok_fill (a : float array) = Array.fill a 0 (Array.length a) 0.0

let[@vstat.hot] ok_blit src dst = Array.blit src 0 dst 0 (Array.length src)

(* Negative: the same allocator is fine outside a hot body. *)
let ok_cold_make n = Array.make n 0.0

(* Negative: inline suppression inside a hot body. *)
let[@vstat.hot] ok_suppressed_scratch n =
  (Array.make n 0.0 [@vstat.allow "hot-path"])
