(* Positive and negative fixtures for the float-compare rule.  Line
   numbers are pinned by the golden test in ../test_lint.ml. *)

let bad_eq x = x = 1.0

let bad_ne x = x <> 0.5

let bad_compare x = compare x 2.0

let bad_min x = min (x : float) 3.0

let bad_max_tuple a b = max (a, 1.0) (b, 2.0)

(* Negatives: explicit float comparators and an inline suppression. *)
let ok_float_equal x = Float.equal x 1.0

let ok_float_compare x = Float.compare x 2.0

let ok_suppressed x = ((x = 1.0) [@vstat.allow "float-compare"])
