(* Tests for the MNA circuit simulator: stamps, DC, transient, sweeps and
   measurements — validated against hand-computable circuits. *)

module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine
module W = Vstat_circuit.Waveform
module M = Vstat_circuit.Measure
module Dm = Vstat_device.Device_model
module Cards = Vstat_device.Cards

(* tiny local bisection helper to avoid depending on vstat_opt here *)
module Vstat_opt_shim = struct
  let bisect f lo hi =
    let lo = ref lo and hi = ref hi in
    let flo = f !lo in
    if flo *. f !hi > 0.0 then invalid_arg "shim bisect: no bracket";
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if f mid *. flo > 0.0 then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
end

let vdd = Cards.vdd_nominal

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Waveform --- *)

let test_waveform_dc_var () =
  check_float "dc" 5.0 (W.value (W.Dc 5.0) 123.0);
  let r = ref 1.0 in
  let w = W.Var r in
  check_float "var" 1.0 (W.value w 0.0);
  r := 2.0;
  check_float "var updated" 2.0 (W.value w 0.0)

let test_waveform_pulse () =
  let p =
    W.Pulse
      { low = 0.0; high = 1.0; delay = 10.0; rise = 2.0; fall = 2.0;
        width = 5.0; period = 20.0 }
  in
  check_float "before" 0.0 (W.value p 5.0);
  check_float "mid rise" 0.5 (W.value p 11.0);
  check_float "plateau" 1.0 (W.value p 14.0);
  check_float "mid fall" 0.5 (W.value p 18.0);
  check_float "after fall" 0.0 (W.value p 19.5);
  check_float "periodic" 1.0 (W.value p 34.0)

let test_waveform_pwl () =
  let w = W.pwl [| (0.0, 0.0); (1.0, 2.0); (3.0, 2.0) |] in
  check_float "clamp left" 0.0 (W.value w (-5.0));
  check_float "interp" 1.0 (W.value w 0.5);
  check_float "flat" 2.0 (W.value w 2.0);
  check_float "clamp right" 2.0 (W.value w 10.0)

let test_waveform_step () =
  let w = W.step ~delay:1e-9 ~rise:1e-9 ~low:0.0 ~high:1.0 () in
  check_float "before" 0.0 (W.value w 0.5e-9);
  check_float "after" 1.0 (W.value w 3e-9);
  check_float "mid" 0.5 (W.value w 1.5e-9)

(* --- DC: linear circuits with known solutions --- *)

let test_resistor_divider () =
  let c = N.create () in
  let gnd = N.ground c in
  let top = N.node c "top" in
  let mid = N.node c "mid" in
  N.vsource c "v1" ~plus:top ~minus:gnd ~wave:(W.Dc 10.0);
  N.resistor c "r1" ~a:top ~b:mid ~ohms:1000.0;
  N.resistor c "r2" ~a:mid ~b:gnd ~ohms:3000.0;
  let eng = E.compile c in
  let op = E.dc eng in
  check_float ~eps:1e-7 "divider" 7.5 (E.voltage eng op mid);
  (* Current through the source: 10 V across 4 kOhm; it flows out of the
     plus terminal, so the branch current is negative. *)
  check_float ~eps:1e-9 "source current" (-0.0025) (E.source_current eng op "v1")

let test_current_source_into_resistor () =
  let c = N.create () in
  let gnd = N.ground c in
  let n1 = N.node c "n1" in
  (* 1 mA pushed from ground into n1 through the source. *)
  N.isource c "i1" ~from_:gnd ~to_:n1 ~wave:(W.Dc 1e-3);
  N.resistor c "r" ~a:n1 ~b:gnd ~ohms:2000.0;
  let eng = E.compile c in
  let op = E.dc eng in
  check_float ~eps:1e-7 "ohm's law" 2.0 (E.voltage eng op n1)

let test_two_sources_superposition () =
  let c = N.create () in
  let gnd = N.ground c in
  let a = N.node c "a" in
  let b = N.node c "b" in
  N.vsource c "va" ~plus:a ~minus:gnd ~wave:(W.Dc 1.0);
  N.vsource c "vb" ~plus:b ~minus:gnd ~wave:(W.Dc 2.0);
  N.resistor c "r" ~a ~b ~ohms:1000.0;
  let eng = E.compile c in
  let op = E.dc eng in
  (* 1 mA flows from b to a; at va it enters the plus terminal. *)
  check_float ~eps:1e-9 "va branch" 1e-3 (E.source_current eng op "va");
  check_float ~eps:1e-9 "vb branch" (-1e-3) (E.source_current eng op "vb")

let test_floating_node_gmin () =
  (* A node connected only through a capacitor must still solve in DC
     thanks to the gmin floor. *)
  let c = N.create () in
  let gnd = N.ground c in
  let n1 = N.node c "n1" in
  N.capacitor c "c1" ~a:n1 ~b:gnd ~farads:1e-15;
  let eng = E.compile c in
  let op = E.dc eng in
  check_float ~eps:1e-6 "floating node at 0" 0.0 (E.voltage eng op n1)

(* --- DC: CMOS inverter --- *)

let build_inverter ?(strip_derivs = false) ?(w_in = W.Dc 0.0) () =
  let c = N.create () in
  let gnd = N.ground c in
  let nvdd = N.node c "vdd" in
  let nin = N.node c "in" in
  let nout = N.node c "out" in
  let dev d = if strip_derivs then Dm.without_derivs d else d in
  N.vsource c "vvdd" ~plus:nvdd ~minus:gnd ~wave:(W.Dc vdd);
  N.vsource c "vin" ~plus:nin ~minus:gnd ~wave:w_in;
  N.mosfet c "mp" ~d:nout ~g:nin ~s:nvdd ~b:nvdd
    ~dev:(dev (Cards.bsim_device ~polarity:Dm.Pmos ~w_nm:600.0 ~l_nm:40.0));
  N.mosfet c "mn" ~d:nout ~g:nin ~s:gnd ~b:gnd
    ~dev:(dev (Cards.bsim_device ~polarity:Dm.Nmos ~w_nm:300.0 ~l_nm:40.0));
  N.capacitor c "cl" ~a:nout ~b:gnd ~farads:1e-15;
  (c, nin, nout)

let test_inverter_rails () =
  let c, _, nout = build_inverter ~w_in:(W.Dc 0.0) () in
  let eng = E.compile c in
  let op = E.dc eng in
  check_float ~eps:1e-3 "in=0 -> out=vdd" vdd (E.voltage eng op nout);
  let c, _, nout = build_inverter ~w_in:(W.Dc vdd) () in
  let eng = E.compile c in
  let op = E.dc eng in
  check_float ~eps:1e-3 "in=vdd -> out=0" 0.0 (E.voltage eng op nout)

let test_inverter_vtc_monotone () =
  let vin_ref = ref 0.0 in
  let c, _, nout = build_inverter ~w_in:(W.Var vin_ref) () in
  let eng = E.compile c in
  let values = Vstat_util.Floatx.linspace 0.0 vdd 31 in
  let outs =
    M.dc_sweep eng
      ~set:(fun v -> vin_ref := v)
      ~values
      ~probe:(fun op -> E.voltage eng op nout)
  in
  for i = 0 to Array.length outs - 2 do
    if outs.(i + 1) > outs.(i) +. 1e-6 then
      Alcotest.fail "VTC must be non-increasing"
  done;
  Alcotest.(check bool) "swings full rail" true
    (outs.(0) > 0.95 *. vdd && outs.(30) < 0.05 *. vdd)

(* --- transient: RC circuits vs analytic solutions --- *)

let test_rc_discharge () =
  (* Node starts at vdd (sourced), source steps to 0 at t=0+: V = vdd e^-t/RC *)
  let c = N.create () in
  let gnd = N.ground c in
  let drive = N.node c "drive" in
  let n1 = N.node c "n1" in
  let r = 1000.0 and cap = 1e-12 in
  N.vsource c "v1" ~plus:drive ~minus:gnd
    ~wave:(W.pwl [| (0.0, 1.0); (1e-12, 0.0) |]);
  N.resistor c "r1" ~a:drive ~b:n1 ~ohms:r;
  N.capacitor c "c1" ~a:n1 ~b:gnd ~farads:cap;
  let eng = E.compile c in
  let tau = r *. cap in
  let trace = E.transient eng ~tstop:(5.0 *. tau) ~dt:(tau /. 200.0) in
  let times = trace.E.times in
  let wave = E.node_wave eng trace n1 in
  (* Compare at t = 2 tau (skip the 1 ps edge offset; it is << tau/10). *)
  let v_2tau =
    Vstat_util.Floatx.interp_linear ~xs:times ~ys:wave (2.0 *. tau)
  in
  check_float ~eps:5e-3 "exp decay at 2tau" (exp (-2.0)) v_2tau

let test_rc_charge_trapezoidal () =
  let c = N.create () in
  let gnd = N.ground c in
  let drive = N.node c "drive" in
  let n1 = N.node c "n1" in
  let r = 1000.0 and cap = 1e-12 in
  N.vsource c "v1" ~plus:drive ~minus:gnd
    ~wave:(W.pwl [| (0.0, 0.0); (1e-13, 1.0) |]);
  N.resistor c "r1" ~a:drive ~b:n1 ~ohms:r;
  N.capacitor c "c1" ~a:n1 ~b:gnd ~farads:cap;
  let eng = E.compile c in
  let tau = r *. cap in
  let trace = E.transient ~trap:true eng ~tstop:(3.0 *. tau) ~dt:(tau /. 100.0) in
  let v_tau =
    Vstat_util.Floatx.interp_linear ~xs:trace.E.times
      ~ys:(E.node_wave eng trace n1) tau
  in
  check_float ~eps:5e-3 "1 - e^-1 at tau" (1.0 -. exp (-1.0)) v_tau

let test_transient_conserves_dc_start () =
  let c, _, nout = build_inverter ~w_in:(W.Dc 0.0) () in
  let eng = E.compile c in
  let trace = E.transient eng ~tstop:10e-12 ~dt:1e-12 in
  let wave = E.node_wave eng trace nout in
  (* No input activity: output must hold its DC value. *)
  check_float ~eps:1e-4 "static output" wave.(0) wave.(Array.length wave - 1)

let test_inverter_switches_in_transient () =
  let c, nin, nout =
    build_inverter ~w_in:(W.pwl [| (20e-12, 0.0); (30e-12, vdd) |]) ()
  in
  let eng = E.compile c in
  let trace = E.transient eng ~tstop:150e-12 ~dt:0.5e-12 in
  let times = trace.E.times in
  let win = E.node_wave eng trace nin in
  let wout = E.node_wave eng trace nout in
  Alcotest.(check bool) "final low" true
    (wout.(Array.length wout - 1) < 0.05 *. vdd);
  match
    M.propagation_delay ~times ~input:win ~output:wout ~v50:(vdd /. 2.0)
      ~input_rising:true ~output_rising:false
  with
  | Some d -> Alcotest.(check bool) "positive sub-50ps delay" true (d > 0.0 && d < 50e-12)
  | None -> Alcotest.fail "expected a measured delay"

(* --- AC small-signal analysis --- *)

let test_ac_rc_lowpass () =
  (* Vsrc - R - node - C - gnd: |H| = 1/sqrt(1+(w R C)^2), fc = 1/(2 pi R C). *)
  let c = N.create () in
  let gnd = N.ground c in
  let src = N.node c "src" in
  let n1 = N.node c "n1" in
  let r = 1000.0 and cap = 1e-12 in
  N.vsource c "vin" ~plus:src ~minus:gnd ~wave:(W.Dc 0.0);
  N.resistor c "r1" ~a:src ~b:n1 ~ohms:r;
  N.capacitor c "c1" ~a:n1 ~b:gnd ~farads:cap;
  let eng = E.compile c in
  let op = E.dc eng in
  let fc = 1.0 /. (2.0 *. Float.pi *. r *. cap) in
  let freqs = Vstat_util.Floatx.logspace (log10 fc -. 2.0) (log10 fc +. 2.0) 81 in
  let ac = Vstat_circuit.Ac.sweep eng ~op ~source:"vin" ~freqs_hz:freqs in
  let series = Vstat_circuit.Ac.node_transfer eng ac n1 in
  (* DC gain 1, -3dB at fc, -20 dB/decade asymptote. *)
  let mag_at f =
    let _, h =
      Array.fold_left
        (fun ((bf, _) as best) ((f', _) as cand) ->
          if Float.abs (log10 f' -. log10 f) < Float.abs (log10 bf -. log10 f)
          then cand
          else best)
        series.(0) series
    in
    Complex.norm h
  in
  check_float ~eps:0.01 "dc gain" 1.0 (mag_at (fc /. 100.0));
  check_float ~eps:0.02 "-3dB at fc" (1.0 /. sqrt 2.0) (mag_at fc);
  (match Vstat_circuit.Ac.corner_frequency eng ac n1 with
  | Some f -> check_float ~eps:(0.05 *. fc) "corner frequency" fc f
  | None -> Alcotest.fail "expected a corner");
  (* Phase approaches -90 degrees well above fc. *)
  let _, h_high = series.(Array.length series - 1) in
  Alcotest.(check bool) "phase -> -90deg" true
    (Vstat_circuit.Ac.phase_deg h_high < -80.0)

let test_ac_inverter_gain_matches_vtc_slope () =
  (* Low-frequency small-signal gain at the VTC midpoint must equal the
     local slope of the DC transfer curve. *)
  let vin_ref = ref 0.0 in
  let c, nin, nout = build_inverter ~w_in:(W.Var vin_ref) () in
  ignore nin;
  let eng = E.compile c in
  (* Find the input where out ~ vdd/2 (the high-gain point). *)
  let vm =
    Vstat_opt_shim.bisect
      (fun v ->
        vin_ref := v;
        E.voltage eng (E.dc eng) nout -. (vdd /. 2.0))
      0.2 0.7
  in
  vin_ref := vm;
  let op = E.dc eng in
  let ac =
    Vstat_circuit.Ac.sweep eng ~op ~source:"vin" ~freqs_hz:[| 1e3 |]
  in
  let gain = Complex.norm (snd (Vstat_circuit.Ac.node_transfer eng ac nout).(0)) in
  (* Numerical VTC slope. *)
  let dv = 1e-4 in
  vin_ref := vm +. dv;
  let v_plus = E.voltage eng (E.dc eng) nout in
  vin_ref := vm -. dv;
  let v_minus = E.voltage eng (E.dc eng) nout in
  let slope = Float.abs ((v_plus -. v_minus) /. (2.0 *. dv)) in
  Alcotest.(check bool) "gain matches slope within 5%" true
    (Float.abs (gain -. slope) < 0.05 *. slope);
  Alcotest.(check bool) "high gain stage" true (gain > 3.0)

(* --- engine bookkeeping --- *)

let test_unknown_source_raises () =
  let c, _, _ = build_inverter () in
  let eng = E.compile c in
  let op = E.dc eng in
  match E.source_current eng op "nope" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    (* The message should name the offending source. *)
    let contains sub s =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message names the source" true
      (contains "nope" msg)

let test_dc_residual_tiny () =
  (* KCL must balance at the converged operating point. *)
  let c, _, _ = build_inverter ~w_in:(W.Dc (vdd /. 2.0)) () in
  let eng = E.compile c in
  let op = E.dc eng in
  Alcotest.(check bool) "residual < 1e-9 A" true (E.residual_norm eng op < 1e-9)

let test_stats_counters_advance () =
  let c, _, _ = build_inverter () in
  let eng = E.compile c in
  let _ = E.dc eng in
  Alcotest.(check bool) "evals counted" true (E.stats_model_evaluations eng > 0);
  Alcotest.(check bool) "iters counted" true (E.stats_newton_iterations eng > 0)

let test_transient_lands_on_waveform_corners () =
  (* PWL corners deliberately off the dt grid: the stepper must place a
     sample exactly on each corner instead of straddling it. *)
  let c = N.create () in
  let gnd = N.ground c in
  let drive = N.node c "drive" in
  let n1 = N.node c "n1" in
  let corners = [ 10.3e-12; 17.9e-12 ] in
  N.vsource c "v1" ~plus:drive ~minus:gnd
    ~wave:(W.pwl [| (10.3e-12, 0.0); (17.9e-12, 1.0) |]);
  N.resistor c "r1" ~a:drive ~b:n1 ~ohms:1000.0;
  N.capacitor c "c1" ~a:n1 ~b:gnd ~farads:1e-15;
  let eng = E.compile c in
  let trace = E.transient eng ~tstop:50e-12 ~dt:2e-12 in
  List.iter
    (fun corner ->
      let hit =
        Array.exists
          (fun t -> Float.abs (t -. corner) < 1e-20)
          trace.E.times
      in
      Alcotest.(check bool)
        (Printf.sprintf "sample at corner %.3g" corner)
        true hit)
    corners;
  let cnt = E.counters eng in
  Alcotest.(check bool)
    "breakpoint hits counted" true
    (cnt.E.breakpoint_hits >= List.length corners)

let test_counters_per_phase () =
  let c, _, _ =
    build_inverter ~w_in:(W.pwl [| (20e-12, 0.0); (30e-12, vdd) |]) ()
  in
  let eng = E.compile c in
  let before_global = E.global_counters () in
  let trace = E.transient eng ~tstop:100e-12 ~dt:1e-12 in
  let cnt = E.counters eng in
  (* One LU factorization per Newton iteration, two assemblies at least
     (every iteration assembles; converged iterations assemble twice). *)
  Alcotest.(check int) "lu = newton" cnt.E.newton_iterations
    cnt.E.lu_factorizations;
  Alcotest.(check bool) "assemblies >= newton" true
    (cnt.E.assemblies >= cnt.E.newton_iterations);
  Alcotest.(check int) "accepted steps = samples - 1"
    (Array.length trace.E.times - 1)
    cnt.E.accepted_steps;
  (* The VS devices carry analytic derivatives: no FD evals anywhere. *)
  Alcotest.(check bool) "analytic evals > 0" true
    (cnt.E.analytic_evaluations > 0);
  Alcotest.(check int) "no fd evals" 0 cnt.E.fd_evaluations;
  Alcotest.(check int) "model evals = analytic" cnt.E.model_evaluations
    cnt.E.analytic_evaluations;
  (* Per-instance counts flushed into the process-wide totals. *)
  let after_global = E.global_counters () in
  let d = E.counters_diff after_global before_global in
  Alcotest.(check bool) "globals absorbed this engine" true
    (d.E.newton_iterations >= cnt.E.newton_iterations);
  (* legacy accessors stay in sync with the record *)
  Alcotest.(check int) "stats_newton_iterations" cnt.E.newton_iterations
    (E.stats_newton_iterations eng);
  Alcotest.(check int) "stats_model_evaluations" cnt.E.model_evaluations
    (E.stats_model_evaluations eng)

let test_fd_fallback_matches_analytic () =
  (* Same inverter with the derivative path stripped: the FD Jacobian must
     converge to the same waveform, and the counters must show the 5x eval
     cost. *)
  let edge = W.pwl [| (20e-12, 0.0); (30e-12, vdd) |] in
  let c1, _, nout1 = build_inverter ~w_in:edge () in
  let eng1 = E.compile c1 in
  let tr1 = E.transient eng1 ~tstop:100e-12 ~dt:1e-12 in
  let w1 = E.node_wave eng1 tr1 nout1 in
  let c2, _, nout2 = build_inverter ~strip_derivs:true ~w_in:edge () in
  let eng2 = E.compile c2 in
  let tr2 = E.transient eng2 ~tstop:100e-12 ~dt:1e-12 in
  let w2 = E.node_wave eng2 tr2 nout2 in
  Alcotest.(check int) "same sample count" (Array.length w1) (Array.length w2);
  Array.iteri
    (fun i v1 ->
      Alcotest.(check bool)
        (Printf.sprintf "waveforms agree at sample %d" i)
        true
        (Float.abs (v1 -. w2.(i)) < 1e-6))
    w1;
  let cnt2 = E.counters eng2 in
  Alcotest.(check int) "fd path counts all evals" cnt2.E.model_evaluations
    cnt2.E.fd_evaluations;
  Alcotest.(check bool) "fd evals are 5 per linearization" true
    (cnt2.E.fd_evaluations mod 5 = 0 && cnt2.E.fd_evaluations > 0)

let test_node_identity () =
  let c = N.create () in
  let a = N.node c "x" in
  let b = N.node c "x" in
  Alcotest.(check int) "same name same node" (N.node_index a) (N.node_index b);
  Alcotest.(check int) "ground is 0" 0 (N.node_index (N.ground c));
  Alcotest.(check string) "name roundtrip" "x" (N.node_name c a)

(* --- measure --- *)

let test_settled_value () =
  let values = Array.append (Array.make 90 0.0) (Array.make 10 1.0) in
  check_float "tail mean" 1.0 (M.settled_value ~values ~tail_fraction:0.1)

let test_propagation_delay_ignores_earlier_output_edges () =
  (* Output crosses before the input edge; the measurement must only count
     crossings after the input edge. *)
  let times = [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let input = [| 0.0; 0.0; 0.0; 1.0; 1.0; 1.0 |] in
  let output = [| 1.0; 0.0; 0.0; 0.0; 1.0; 1.0 |] in
  match
    M.propagation_delay ~times ~input ~output ~v50:0.5 ~input_rising:true
      ~output_rising:true
  with
  | Some d -> check_float ~eps:1e-12 "delay from input edge" 1.0 d
  | None -> Alcotest.fail "expected delay"

let test_propagation_delay_mid_segment_input_edge () =
  (* Regression: the input's 50 % crossing falls strictly inside a sample
     segment, and the output's crossing lies inside the very segment that
     contains the input edge.  The scan used to start at the next sample
     boundary, skipping that segment and reporting no delay at all. *)
  let times = [| 0.0; 1.0; 2.0; 3.0 |] in
  let input = [| 0.0; 0.0; 1.0; 1.0 |] in
  (* t_in = 1.5 *)
  let output = [| 0.0; 0.05; 0.85; 1.0 |] in
  (* output crosses 0.5 at t = 1 + 0.45/0.8 = 1.5625 *)
  match
    M.propagation_delay ~times ~input ~output ~v50:0.5 ~input_rising:true
      ~output_rising:true
  with
  | Some d -> check_float ~eps:1e-12 "mid-segment delay" 0.0625 d
  | None -> Alcotest.fail "expected delay (crossing shares input's segment)"

let test_propagation_delay_discards_pre_edge_crossing () =
  (* The output also crosses before the input edge inside the same segment;
     only the post-edge crossing counts. *)
  let times = [| 0.0; 2.0; 4.0 |] in
  let input = [| 0.0; 1.0; 1.0 |] in
  (* t_in = 1.0 *)
  let output = [| 0.0; 1.0; 1.0 |] in
  (* rising through 0.5 at t = 1.0 = t_in: kept (>= t_in) *)
  match
    M.propagation_delay ~times ~input ~output ~v50:0.5 ~input_rising:true
      ~output_rising:true
  with
  | Some d -> check_float ~eps:1e-12 "coincident edge" 0.0 d
  | None -> Alcotest.fail "expected zero delay"

(* Synthetic ramp pair: linear ramps interpolate exactly on any sampling
   grid, so the measured delay must equal the analytic 50 %-to-50 % offset
   regardless of where the samples fall. *)
let prop_ramp_pair_delay_exact =
  QCheck.Test.make ~name:"ramp-pair delay is grid-independent" ~count:200
    QCheck.(
      triple (float_range 0.05 0.3) (float_range 0.0 0.99)
        (float_range 0.1 2.5))
    (fun (step, phase, offset) ->
      let ramp t0 len t =
        Vstat_util.Floatx.clamp ~lo:0.0 ~hi:1.0 ((t -. t0) /. len)
      in
      let len = 2.0 in
      let t0_in = 2.0 in
      let t0_out = t0_in +. offset in
      let n = Float.to_int (Float.round ((10.0 -. (phase *. step)) /. step)) in
      let times =
        Array.init n (fun k -> (phase *. step) +. (step *. Float.of_int k))
      in
      let input = Array.map (ramp t0_in len) times in
      let output = Array.map (ramp t0_out len) times in
      match
        M.propagation_delay ~times ~input ~output ~v50:0.5 ~input_rising:true
          ~output_rising:true
      with
      | Some d -> Float.abs (d -. offset) < 1e-9
      | None -> false)

let rc_error ~trap ~dt =
  (* Sine-driven RC (smooth, so no startup-discontinuity error): exact
     response of y' = (u - y)/tau from y(0) = 0. *)
  let c = N.create () in
  let gnd = N.ground c in
  let drive = N.node c "drive" in
  let n1 = N.node c "n1" in
  let r = 1000.0 and cap = 1e-12 in
  let freq = 2e8 in
  N.vsource c "v1" ~plus:drive ~minus:gnd
    ~wave:(W.Sine { offset = 0.0; amplitude = 1.0; freq_hz = freq; phase = 0.0 });
  N.resistor c "r1" ~a:drive ~b:n1 ~ohms:r;
  N.capacitor c "c1" ~a:n1 ~b:gnd ~farads:cap;
  let eng = E.compile c in
  let tau = r *. cap in
  let omega = 2.0 *. Float.pi *. freq in
  let wt = omega *. tau in
  let exact t =
    ((sin (omega *. t) -. (wt *. cos (omega *. t))) +. (wt *. exp (-.t /. tau)))
    /. (1.0 +. (wt *. wt))
  in
  let trace = E.transient ~trap eng ~tstop:(3.0 *. tau) ~dt in
  let wave = E.node_wave eng trace n1 in
  let err = ref 0.0 in
  Array.iteri
    (fun i t -> err := Float.max !err (Float.abs (wave.(i) -. exact t)))
    trace.E.times;
  !err

let test_integrator_convergence_order () =
  let tau = 1e-9 in
  (* Backward Euler: first order — halving dt roughly halves the error. *)
  let be1 = rc_error ~trap:false ~dt:(tau /. 50.0) in
  let be2 = rc_error ~trap:false ~dt:(tau /. 100.0) in
  let ratio_be = be1 /. be2 in
  Alcotest.(check bool) "BE ~ O(h)" true (ratio_be > 1.5 && ratio_be < 2.6);
  (* Trapezoidal: second order — halving dt quarters the error. *)
  let tr1 = rc_error ~trap:true ~dt:(tau /. 50.0) in
  let tr2 = rc_error ~trap:true ~dt:(tau /. 100.0) in
  let ratio_tr = tr1 /. tr2 in
  Alcotest.(check bool) "trap ~ O(h^2)" true (ratio_tr > 3.0 && ratio_tr < 5.5);
  (* And trapezoidal beats BE at equal step. *)
  Alcotest.(check bool) "trap more accurate" true (tr1 < be1)

(* --- failure injection --- *)

let conflicting_sources () =
  (* Two ideal voltage sources forcing different values on the same node:
     the MNA matrix is structurally singular. *)
  let c = N.create () in
  let gnd = N.ground c in
  let n1 = N.node c "n1" in
  N.vsource c "v1" ~plus:n1 ~minus:gnd ~wave:(W.Dc 1.0);
  N.vsource c "v2" ~plus:n1 ~minus:gnd ~wave:(W.Dc 2.0);
  E.compile c

let test_dc_no_convergence () =
  let eng = conflicting_sources () in
  match E.dc eng with
  | _ -> Alcotest.fail "expected Solver_error"
  | exception Vstat_circuit.Diag.Solver_error d ->
    Alcotest.(check string)
      "classified as singular" "singular_jacobian"
      (Vstat_circuit.Diag.kind_name d.Vstat_circuit.Diag.kind);
    Alcotest.(check string) "dc analysis" "dc" d.Vstat_circuit.Diag.analysis

let test_transient_no_convergence () =
  let eng = conflicting_sources () in
  match E.transient eng ~tstop:1e-9 ~dt:1e-10 with
  | _ -> Alcotest.fail "expected Solver_error"
  | exception Vstat_circuit.Diag.Solver_error d ->
    Alcotest.(check string)
      "classified as singular" "singular_jacobian"
      (Vstat_circuit.Diag.kind_name d.Vstat_circuit.Diag.kind)

module Diag = Vstat_circuit.Diag

let kind_of_exn = function
  | Diag.Solver_error d -> Diag.kind_name d.Diag.kind
  | e -> raise e

let test_floating_node_singular () =
  (* A node reached only through a capacitor has no DC path: with the gmin
     floor disabled the MNA matrix is exactly singular, and the diagnostic
     must say so rather than reporting a generic convergence failure. *)
  let c = N.create () in
  let gnd = N.ground c in
  let n1 = N.node c "n1" in
  let float_n = N.node c "float" in
  N.vsource c "v" ~plus:n1 ~minus:gnd ~wave:(W.Dc 1.0);
  N.capacitor c "c" ~a:n1 ~b:float_n ~farads:1e-15;
  let eng = E.compile c in
  let options = { E.default_options with E.gmin_floor = 0.0 } in
  (match E.dc ~options eng with
  | _ -> Alcotest.fail "expected Solver_error"
  | exception e ->
    Alcotest.(check string) "singular" "singular_jacobian" (kind_of_exn e));
  (* The default gmin floor regularizes the same circuit. *)
  let op = E.dc eng in
  Alcotest.(check bool) "gmin floor rescues it" true
    (Float.is_finite (E.voltage eng op float_n))

let test_transient_step_floor_typed () =
  (* A moving source with the per-step Newton budget capped at one iteration
     can never accept a step: the halving cascade must bottom out in a typed
     Tran_step_floor diagnostic carrying the analysis context. *)
  let c = N.create () in
  let gnd = N.ground c in
  let n1 = N.node c "n1" in
  let n2 = N.node c "n2" in
  N.vsource c "v" ~plus:n1 ~minus:gnd
    ~wave:
      (W.Sine { W.offset = 0.0; amplitude = 1.0; freq_hz = 1e9; phase = 0.0 });
  N.resistor c "r" ~a:n1 ~b:n2 ~ohms:1e3;
  N.capacitor c "c" ~a:n2 ~b:gnd ~farads:1e-12;
  let eng = E.compile c in
  let options = { E.default_options with E.max_iter_tran = 1 } in
  match E.transient ~options eng ~tstop:1e-9 ~dt:1e-10 with
  | _ -> Alcotest.fail "expected Solver_error"
  | exception Diag.Solver_error d ->
    Alcotest.(check string) "step floor" "tran_step_floor"
      (Diag.kind_name d.Diag.kind);
    Alcotest.(check string) "transient analysis" "transient" d.Diag.analysis;
    Alcotest.(check bool) "failure time recorded" true (d.Diag.time <> None)

let test_work_cap_exceeded () =
  let c, _, _ = build_inverter () in
  let eng = E.compile c in
  let options = { E.default_options with E.work_cap = 2 } in
  (match E.dc ~options eng with
  | _ -> Alcotest.fail "expected Solver_error"
  | exception e ->
    Alcotest.(check string) "work cap" "work_cap_exceeded" (kind_of_exn e));
  (* The counter snapshot travels with the diagnostic. *)
  match E.dc ~options eng with
  | _ -> Alcotest.fail "expected Solver_error"
  | exception Diag.Solver_error d ->
    Alcotest.(check bool) "counters attached" true (d.Diag.counters <> [])

let test_escalate_laws () =
  let o = E.default_options in
  Alcotest.(check bool) "attempt 0 is identity" true (E.escalate ~attempt:0 o = o);
  let o1 = E.escalate ~attempt:1 o in
  (* First escalation is value-neutral: anything that could change the value
     of an already-successful solve must be untouched. *)
  Alcotest.(check bool) "attempt 1 keeps dt_scale" true
    (o1.E.dt_scale = o.E.dt_scale);
  Alcotest.(check bool) "attempt 1 keeps damping" true
    (o1.E.damping_clamp = o.E.damping_clamp);
  Alcotest.(check bool) "attempt 1 keeps gmin floor" true
    (o1.E.gmin_floor = o.E.gmin_floor);
  Alcotest.(check bool) "attempt 1 raises iteration caps" true
    (o1.E.max_iter_dc > o.E.max_iter_dc
    && o1.E.max_iter_tran > o.E.max_iter_tran);
  let o2 = E.escalate ~attempt:2 o in
  Alcotest.(check bool) "attempt 2 shrinks steps" true
    (o2.E.dt_scale < o.E.dt_scale && o2.E.damping_clamp < o.E.damping_clamp);
  Alcotest.(check bool) "escalate is deterministic" true
    (E.escalate ~attempt:3 o = E.escalate ~attempt:3 o);
  (* Behavioral value-neutrality: a solve that succeeds under the defaults
     produces the bit-identical operating point under attempt-1 options. *)
  let c, _, _ = build_inverter () in
  let eng = E.compile c in
  let op0 = E.dc eng in
  let op1 = E.with_options o1 (fun () -> E.dc eng) in
  Alcotest.(check bool) "bit-identical op" true (op0.E.x = op1.E.x)

let test_netlist_validation () =
  let c = N.create () in
  let gnd = N.ground c in
  let n1 = N.node c "n1" in
  (match N.resistor c "r" ~a:n1 ~b:gnd ~ohms:0.0 with
  | _ -> Alcotest.fail "zero ohms accepted"
  | exception Invalid_argument _ -> ());
  match N.capacitor c "c" ~a:n1 ~b:gnd ~farads:(-1e-15) with
  | _ -> Alcotest.fail "negative farads accepted"
  | exception Invalid_argument _ -> ()

let test_pwl_empty_rejected () =
  match W.value (W.pwl [||]) 0.0 with
  | _ -> Alcotest.fail "empty pwl accepted"
  | exception Invalid_argument _ -> ()

(* --- qcheck: random RC ladders solve and are stable --- *)

let prop_rc_ladder_stable =
  QCheck.Test.make ~name:"random RC ladders settle to the source value"
    ~count:25
    QCheck.(pair (int_range 1 5) (int_range 0 1000))
    (fun (stages, seed) ->
      let rng = Vstat_util.Rng.create ~seed in
      let c = N.create () in
      let gnd = N.ground c in
      let src = N.node c "src" in
      N.vsource c "v" ~plus:src ~minus:gnd
        ~wave:(W.pwl [| (0.0, 0.0); (1e-12, 1.0) |]);
      let prev = ref src in
      for i = 1 to stages do
        let n = N.node c (Printf.sprintf "n%d" i) in
        N.resistor c (Printf.sprintf "r%d" i) ~a:!prev ~b:n
          ~ohms:(Vstat_util.Rng.uniform rng ~lo:100.0 ~hi:10_000.0);
        N.capacitor c (Printf.sprintf "c%d" i) ~a:n ~b:gnd
          ~farads:(Vstat_util.Rng.uniform rng ~lo:1e-15 ~hi:1e-13);
        prev := n
      done;
      let eng = E.compile c in
      (* Worst-case time constant bound: all R and C at max, times stages^2. *)
      let trace = E.transient eng ~tstop:100e-9 ~dt:0.5e-9 in
      let final = (E.node_wave eng trace !prev).(Array.length trace.E.times - 1) in
      Float.abs (final -. 1.0) < 0.01)

(* --- Dense vs sparse backend cross-check --- *)

(* An RC ladder with MOS loads, sized past the Auto threshold: every
   element kind (vsource, resistor, capacitor, mosfet) stamps into the
   sparse pattern, and the dense backend is the oracle. *)
let build_big_ladder ~sections =
  let c = N.create () in
  let gnd = N.ground c in
  let nvdd = N.node c "vdd" in
  let src = N.node c "src" in
  N.vsource c "vvdd" ~plus:nvdd ~minus:gnd ~wave:(W.Dc vdd);
  N.vsource c "vin" ~plus:src ~minus:gnd
    ~wave:(W.pwl [| (0.1e-9, 0.0); (0.2e-9, vdd) |]);
  let prev = ref src in
  let probes = ref [ src ] in
  for i = 1 to sections do
    let n = N.node c (Printf.sprintf "n%d" i) in
    N.resistor c (Printf.sprintf "r%d" i) ~a:!prev ~b:n
      ~ohms:(1000.0 +. (37.0 *. Float.of_int i));
    N.capacitor c (Printf.sprintf "c%d" i) ~a:n ~b:gnd ~farads:2e-15;
    if i mod 4 = 0 then begin
      (* Inverter loading the ladder every 4th section. *)
      let out = N.node c (Printf.sprintf "o%d" i) in
      N.mosfet c (Printf.sprintf "mp%d" i) ~d:out ~g:n ~s:nvdd ~b:nvdd
        ~dev:(Cards.bsim_device ~polarity:Dm.Pmos ~w_nm:600.0 ~l_nm:40.0);
      N.mosfet c (Printf.sprintf "mn%d" i) ~d:out ~g:n ~s:gnd ~b:gnd
        ~dev:(Cards.bsim_device ~polarity:Dm.Nmos ~w_nm:300.0 ~l_nm:40.0);
      N.capacitor c (Printf.sprintf "co%d" i) ~a:out ~b:gnd ~farads:1e-15;
      probes := out :: !probes
    end;
    probes := n :: !probes;
    prev := n
  done;
  (c, !probes)

let rel_diff a b =
  Float.abs (a -. b) /. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let test_backend_resolution () =
  let small, _ = (build_inverter (), ()) in
  let c_small, _, _ = small in
  Alcotest.(check bool) "small auto = dense" true
    (E.resolved_backend (E.compile c_small) = E.Dense);
  let big, _ = build_big_ladder ~sections:30 in
  Alcotest.(check bool) "big auto = sparse" true
    (E.resolved_backend (E.compile big) = E.Sparse);
  Alcotest.(check bool) "forced dense" true
    (E.resolved_backend (E.compile ~backend:E.Dense big) = E.Dense);
  Alcotest.(check bool) "forced sparse on small" true
    (E.resolved_backend (E.compile ~backend:E.Sparse c_small) = E.Sparse)

let test_backend_cross_check () =
  let net_d, probes = build_big_ladder ~sections:30 in
  let net_s, _ = build_big_ladder ~sections:30 in
  let ed = E.compile ~backend:E.Dense net_d in
  let es = E.compile ~backend:E.Sparse net_s in
  Alcotest.(check bool) "at least 40 unknowns" true (E.unknowns ed >= 40);
  (* DC operating point. *)
  let opd = E.dc ed and ops = E.dc es in
  List.iter
    (fun n ->
      let vd = E.voltage ed opd n and vs = E.voltage es ops n in
      if rel_diff vd vs > 1e-9 then
        Alcotest.failf "dc %g vs %g: dense/sparse disagree" vd vs)
    probes;
  (* Transient: compare the full final state. *)
  let td = E.transient ed ~tstop:2e-9 ~dt:0.02e-9 in
  let ts = E.transient es ~tstop:2e-9 ~dt:0.02e-9 in
  Alcotest.(check int) "same accepted steps" (Array.length td.E.times)
    (Array.length ts.E.times);
  let xd = td.E.states.(Array.length td.E.states - 1) in
  let xs = ts.E.states.(Array.length ts.E.states - 1) in
  Array.iteri
    (fun i vd ->
      if rel_diff vd xs.(i) > 1e-9 then
        Alcotest.failf "tran unknown %d: %g vs %g" i vd xs.(i))
    xd;
  (* The two backends see the same assembled matrix: linearize at the
     operating point and compare G entrywise. *)
  let gd, _ = E.linearize ed opd in
  let gs, _ = E.linearize es ops in
  let n = E.unknowns ed in
  for r = 0 to n - 1 do
    for cidx = 0 to n - 1 do
      let a = Vstat_linalg.Matrix.get gd r cidx
      and b = Vstat_linalg.Matrix.get gs r cidx in
      if rel_diff a b > 1e-9 then
        Alcotest.failf "G(%d,%d): %g vs %g" r cidx a b
    done
  done

let test_sparse_singular_diag_payload () =
  (* The floating-node circuit with the gmin floor off is numerically
     singular; the sparse backend must classify it identically to the
     dense one and surface the failing pivot in the message. *)
  let c = N.create () in
  let gnd = N.ground c in
  let n1 = N.node c "n1" in
  let float_n = N.node c "float" in
  N.vsource c "v" ~plus:n1 ~minus:gnd ~wave:(W.Dc 1.0);
  N.capacitor c "c" ~a:n1 ~b:float_n ~farads:1e-15;
  let eng = E.compile ~backend:E.Sparse c in
  let options = { E.default_options with E.gmin_floor = 0.0 } in
  match E.dc ~options eng with
  | _ -> Alcotest.fail "expected Solver_error"
  | exception Vstat_circuit.Diag.Solver_error d ->
    Alcotest.(check bool) "typed kind" true
      (match d.kind with
      | Vstat_circuit.Diag.Singular_jacobian -> true
      | _ -> false);
    Alcotest.(check bool) "message names the pivot" true
      (let msg = d.message in
       let sub = "singular pivot" in
       let rec scan i =
         i + String.length sub <= String.length msg
         && (String.sub msg i (String.length sub) = sub || scan (i + 1))
       in
       scan 0)

let () =
  Alcotest.run "vstat_circuit"
    [
      ( "waveform",
        [
          Alcotest.test_case "dc/var" `Quick test_waveform_dc_var;
          Alcotest.test_case "pulse" `Quick test_waveform_pulse;
          Alcotest.test_case "pwl" `Quick test_waveform_pwl;
          Alcotest.test_case "step" `Quick test_waveform_step;
        ] );
      ( "dc",
        [
          Alcotest.test_case "divider" `Quick test_resistor_divider;
          Alcotest.test_case "isource" `Quick test_current_source_into_resistor;
          Alcotest.test_case "two sources" `Quick test_two_sources_superposition;
          Alcotest.test_case "floating node" `Quick test_floating_node_gmin;
          Alcotest.test_case "inverter rails" `Quick test_inverter_rails;
          Alcotest.test_case "inverter VTC" `Quick test_inverter_vtc_monotone;
        ] );
      ( "transient",
        [
          Alcotest.test_case "rc discharge" `Quick test_rc_discharge;
          Alcotest.test_case "rc charge (trap)" `Quick test_rc_charge_trapezoidal;
          Alcotest.test_case "static hold" `Quick test_transient_conserves_dc_start;
          Alcotest.test_case "inverter switches" `Quick test_inverter_switches_in_transient;
          QCheck_alcotest.to_alcotest prop_rc_ladder_stable;
          Alcotest.test_case "integrator order" `Quick test_integrator_convergence_order;
        ] );
      ( "ac",
        [
          Alcotest.test_case "rc lowpass" `Quick test_ac_rc_lowpass;
          Alcotest.test_case "inverter gain" `Quick test_ac_inverter_gain_matches_vtc_slope;
        ] );
      ( "engine",
        [
          Alcotest.test_case "unknown source" `Quick test_unknown_source_raises;
          Alcotest.test_case "stats counters" `Quick test_stats_counters_advance;
          Alcotest.test_case "dc residual" `Quick test_dc_residual_tiny;
          Alcotest.test_case "node identity" `Quick test_node_identity;
          Alcotest.test_case "breakpoint landing" `Quick
            test_transient_lands_on_waveform_corners;
          Alcotest.test_case "per-phase counters" `Quick
            test_counters_per_phase;
          Alcotest.test_case "fd fallback" `Quick
            test_fd_fallback_matches_analytic;
        ] );
      ( "ac-extra",
        [
          Alcotest.test_case "magnitude helpers" `Quick (fun () ->
              check_float ~eps:1e-9 "0 dB" 0.0
                (Vstat_circuit.Ac.magnitude_db Complex.one);
              check_float ~eps:1e-6 "-20 dB" (-20.0)
                (Vstat_circuit.Ac.magnitude_db { Complex.re = 0.1; im = 0.0 });
              check_float ~eps:1e-9 "phase -90" (-90.0)
                (Vstat_circuit.Ac.phase_deg { Complex.re = 0.0; im = -1.0 }));
          Alcotest.test_case "two-pole ladder corner order" `Quick (fun () ->
              (* Two cascaded RC sections: the 3 dB corner of the second
                 node sits below the first node's. *)
              let c = N.create () in
              let gnd = N.ground c in
              let src = N.node c "src" in
              let n1 = N.node c "n1" in
              let n2 = N.node c "n2" in
              N.vsource c "vin" ~plus:src ~minus:gnd ~wave:(W.Dc 0.0);
              N.resistor c "r1" ~a:src ~b:n1 ~ohms:1000.0;
              N.capacitor c "c1" ~a:n1 ~b:gnd ~farads:1e-12;
              N.resistor c "r2" ~a:n1 ~b:n2 ~ohms:1000.0;
              N.capacitor c "c2" ~a:n2 ~b:gnd ~farads:1e-12;
              let eng = E.compile c in
              let op = E.dc eng in
              let freqs = Vstat_util.Floatx.logspace 6.0 10.0 121 in
              let ac = Vstat_circuit.Ac.sweep eng ~op ~source:"vin" ~freqs_hz:freqs in
              match
                ( Vstat_circuit.Ac.corner_frequency eng ac n1,
                  Vstat_circuit.Ac.corner_frequency eng ac n2 )
              with
              | Some f1, Some f2 ->
                Alcotest.(check bool) "second pole corner lower" true (f2 < f1)
              | _ -> Alcotest.fail "expected corners for both nodes");
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "dc no convergence" `Quick test_dc_no_convergence;
          Alcotest.test_case "transient no convergence" `Quick test_transient_no_convergence;
          Alcotest.test_case "floating node singular" `Quick
            test_floating_node_singular;
          Alcotest.test_case "transient step floor typed" `Quick
            test_transient_step_floor_typed;
          Alcotest.test_case "work cap exceeded" `Quick test_work_cap_exceeded;
          Alcotest.test_case "escalate laws" `Quick test_escalate_laws;
          Alcotest.test_case "netlist validation" `Quick test_netlist_validation;
          Alcotest.test_case "empty pwl" `Quick test_pwl_empty_rejected;
        ] );
      ( "backend",
        [
          Alcotest.test_case "auto resolution" `Quick test_backend_resolution;
          Alcotest.test_case "dense vs sparse cross-check" `Quick
            test_backend_cross_check;
          Alcotest.test_case "singular payload" `Quick
            test_sparse_singular_diag_payload;
        ] );
      ( "measure",
        [
          Alcotest.test_case "settled value" `Quick test_settled_value;
          Alcotest.test_case "delay after input edge" `Quick
            test_propagation_delay_ignores_earlier_output_edges;
          Alcotest.test_case "delay from mid-segment input edge" `Quick
            test_propagation_delay_mid_segment_input_edge;
          Alcotest.test_case "delay discards pre-edge crossing" `Quick
            test_propagation_delay_discards_pre_edge_crossing;
          QCheck_alcotest.to_alcotest prop_ramp_pair_delay_exact;
        ] );
    ]
