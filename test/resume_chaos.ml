(* Kill/resume chaos drill (alias @chaos, also wired into @runtest).

   A checkpointed Monte Carlo run is SIGTERM'd from a sibling domain
   mid-flight, exactly as an operator or a batch scheduler would kill the
   process.  Checkpoint.run traps the signal, drains the pool at a sample
   boundary and flushes a final snapshot; we then "restart" by resuming
   from that snapshot — at jobs:1 and at jobs:4 — and require the merged
   results to be bit-identical to an uninterrupted golden run.

   The process-level SIGTERM disposition is parked on a no-op OCaml
   handler first, so a signal that lands after Checkpoint.run has already
   restored the previous handler degrades to a harmless wakeup instead of
   killing the drill itself. *)

module C = Vstat_runtime.Checkpoint
module Rng = Vstat_util.Rng

let () = Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> ()))

let n = 400
let seed = 20130318 (* DATE 2013 *)

(* When armed ([released] = false), samples in the upper half of the index
   range stall until the killer domain has sent its SIGTERM, so the signal
   is guaranteed to land mid-run no matter how fast the pool drains.
   Stalling only delays evaluation: the value still depends solely on
   (index, substream), so bit-identity is untouched. *)
let released = Atomic.make true

let sample ~attempt:_ ~index rng =
  if index >= n / 2 then
    while not (Atomic.get released) do
      Domain.cpu_relax ()
    done;
  let acc = ref 0.0 in
  for _ = 1 to 200 do
    let g = Rng.gaussian rng in
    acc := !acc +. (g *. g)
  done;
  !acc

let bits = Int64.bits_of_float

let assert_bit_identical what a b =
  if Array.length a <> Array.length b then begin
    Printf.eprintf "resume_chaos: %s: length %d vs %d\n" what (Array.length a)
      (Array.length b);
    exit 1
  end;
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.(i))) then begin
        Printf.eprintf "resume_chaos: %s: sample %d differs (%h vs %h)\n" what
          i x b.(i);
        exit 1
      end)
    a

let golden =
  C.values
    (C.run ~jobs:1 ~codec:C.float_codec ~label:"chaos" ~rng:(Rng.create ~seed)
       ~n ~f:sample ())

let () =
  (* The uninterrupted run itself must be worker-count independent. *)
  assert_bit_identical "golden jobs:4"
    golden
    (C.values
       (C.run ~jobs:4 ~codec:C.float_codec ~label:"chaos"
          ~rng:(Rng.create ~seed) ~n ~f:sample ()))

let drill ~resume_jobs =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vstat_resume_chaos_%d_j%d" (Unix.getpid ()) resume_jobs)
  in
  Vstat_util.Atomic_io.ensure_dir dir;
  (* Phase 1: run under checkpointing with a killer domain watching our
     progress: once ~1/8 of the samples have landed it SIGTERMs the
     process, then unblocks the stalled upper-half samples so the pool can
     drain to its snapshot. *)
  Atomic.set released false;
  let progress = Atomic.make 0 in
  let killer =
    Domain.spawn (fun () ->
        while Atomic.get progress < n / 8 do
          Unix.sleepf 0.001
        done;
        Unix.kill (Unix.getpid ()) Sys.sigterm;
        (* A beat for the runtime to deliver the signal before the stalled
           samples resume. *)
        Unix.sleepf 0.02;
        Atomic.set released true)
  in
  let o1 =
    C.run ~jobs:4
      ~on_progress:(fun ~completed ~n:_ -> Atomic.set progress completed)
      ~settings:(C.settings ~every:3 dir)
      ~signals:[ Sys.sigterm ] ~codec:C.float_codec ~label:"chaos"
      ~rng:(Rng.create ~seed) ~n ~f:sample ()
  in
  Domain.join killer;
  (match o1.C.cause with
  | C.Signalled s ->
    Printf.printf
      "resume_chaos: jobs:%d drill: killed by signal %d after %d/%d samples\n"
      resume_jobs (C.os_signal_number s) o1.C.completed o1.C.n
  | C.Finished ->
    (* The race can lose on a fast machine; the resume below then simply
       verifies the no-op-replay path.  Still a pass, but say so. *)
    Printf.printf
      "resume_chaos: jobs:%d drill: run finished before SIGTERM landed\n"
      resume_jobs
  | C.Deadline_reached ->
    prerr_endline "resume_chaos: unexpected deadline in the kill drill";
    exit 1);
  (* Phase 2: "restart the process" — resume from the flushed snapshot. *)
  let o2 =
    C.run ~jobs:resume_jobs
      ~settings:(C.settings ~every:3 ~resume:true dir)
      ~codec:C.float_codec ~label:"chaos" ~rng:(Rng.create ~seed) ~n
      ~f:sample ()
  in
  if not (C.is_complete o2) then begin
    Printf.eprintf "resume_chaos: resume left %d/%d samples incomplete\n"
      (o2.C.n - o2.C.completed) o2.C.n;
    exit 1
  end;
  assert_bit_identical
    (Printf.sprintf "resumed(jobs:%d) vs uninterrupted" resume_jobs)
    golden (C.values o2);
  Printf.printf
    "resume_chaos: jobs:%d resume: restored %d, replayed %d, bit-identical\n"
    resume_jobs o2.C.restored (n - o2.C.restored)

let () =
  drill ~resume_jobs:1;
  drill ~resume_jobs:4;
  print_endline "resume_chaos: PASS"
