(* Tests for the parallel Monte Carlo runtime: substream determinism,
   worker-count invariance (the bit-identity contract), fault capture and
   failure budgets, and the mergeable streaming accumulators. *)

module Rng = Vstat_util.Rng
module Rt = Vstat_runtime.Runtime
module Accum = Vstat_runtime.Accum
module D = Vstat_stats.Descriptive
module Mc = Vstat_core.Mc_device
module Vss = Vstat_core.Vs_statistical

let vdd = Vstat_device.Cards.vdd_nominal

let draws k rng = Array.init k (fun _ -> Rng.bits64 rng)

(* --- Rng.substream --- *)

let test_substream_reproducible () =
  let a = draws 32 (Rng.substream ~seed:7 ~index:5) in
  let b = draws 32 (Rng.substream ~seed:7 ~index:5) in
  Alcotest.(check bool) "identical streams" true (a = b)

let test_substream_distinct () =
  let a = draws 8 (Rng.substream ~seed:7 ~index:0) in
  let b = draws 8 (Rng.substream ~seed:7 ~index:1) in
  let c = draws 8 (Rng.substream ~seed:8 ~index:0) in
  Alcotest.(check bool) "distinct across indices" true (a <> b);
  Alcotest.(check bool) "distinct across seeds" true (a <> c)

let test_substream_negative_index () =
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.substream: index must be >= 0") (fun () ->
      ignore (Rng.substream ~seed:1 ~index:(-1)))

let prop_substream_reproducible =
  QCheck.Test.make ~name:"substream is a pure function of (seed, index)"
    ~count:200
    QCheck.(pair small_nat small_nat)
    (fun (seed, index) ->
      draws 8 (Rng.substream ~seed ~index)
      = draws 8 (Rng.substream ~seed ~index))

let prop_substream_distinct_indices =
  QCheck.Test.make ~name:"substreams at distinct indices differ" ~count:200
    QCheck.(triple small_nat small_nat small_nat)
    (fun (seed, i, dj) ->
      let j = i + dj + 1 in
      draws 8 (Rng.substream ~seed ~index:i)
      <> draws 8 (Rng.substream ~seed ~index:j))

(* --- Runtime.map_samples --- *)

let test_map_identity () =
  List.iter
    (fun jobs ->
      let r = Rt.map_samples ~jobs ~n:17 ~f:(fun i -> i * i) () in
      Alcotest.(check int) "all ok" 17 (Rt.ok_count r);
      Alcotest.(check bool) "index-stable cells" true
        (Array.to_list r.cells
        = List.init 17 (fun i -> Ok (i * i))))
    [ 1; 3 ]

let test_map_empty () =
  let r = Rt.map_samples ~jobs:4 ~n:0 ~f:(fun i -> i) () in
  Alcotest.(check int) "no samples" 0 (Array.length r.cells)

let prop_map_rng_jobs_invariant =
  QCheck.Test.make ~name:"map_rng_samples is independent of jobs" ~count:25
    QCheck.(pair (int_range 1 40) (int_range 2 5))
    (fun (n, jobs) ->
      let f rng = Rng.gaussian rng in
      let run jobs =
        Rt.values (Rt.map_rng_samples ~jobs ~rng:(Rng.create ~seed:5) ~n ~f ())
      in
      run 1 = run jobs)

exception Boom of int

let test_fault_capture () =
  let r =
    Rt.map_samples ~jobs:2 ~n:20
      ~f:(fun i -> if i mod 5 = 0 then raise (Boom i) else i)
      ()
  in
  Alcotest.(check int) "failed count" 4 (Rt.failed_count r);
  Alcotest.(check int) "ok count" 16 (Rt.ok_count r);
  Alcotest.(check (list int)) "failure indices in order" [ 0; 5; 10; 15 ]
    (List.map (fun f -> f.Rt.index) (Rt.failures r));
  (match Rt.failure_census r with
  | [ (_, 4) ] -> ()
  | census ->
    Alcotest.failf "expected one constructor with count 4, got %d entries"
      (List.length census));
  Alcotest.(check bool) "values keep index order, skip failures" true
    (Rt.values r
    = Array.of_list (List.filter (fun i -> i mod 5 <> 0) (List.init 20 Fun.id)))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_budget () =
  let r =
    Rt.map_samples ~jobs:1 ~n:10
      ~f:(fun i -> if i < 3 then failwith "sample blew up" else i)
      ()
  in
  Rt.check_budget ~label:"t" ~max_failure_frac:0.5 r;
  match Rt.check_budget ~label:"t" ~max_failure_frac:0.1 r with
  | () -> Alcotest.fail "over budget must raise Failure"
  | exception Failure msg ->
    Alcotest.(check bool) "message has failed/total counts" true
      (contains ~sub:"3/10" msg);
    Alcotest.(check bool) "message has the exception census" true
      (contains ~sub:"Failure:3" msg)

let test_reraise_first_failure () =
  let r =
    Rt.map_samples ~jobs:3 ~n:12
      ~f:(fun i -> if i >= 7 then raise (Boom i) else i)
      ()
  in
  Alcotest.check_raises "lowest-index exception rethrown" (Boom 7) (fun () ->
      Rt.reraise_first_failure r)

let test_stats_and_progress () =
  let last = ref 0 in
  let r =
    Rt.map_samples ~jobs:2 ~n:30
      ~on_progress:(fun ~completed ~n:_ -> last := Int.max !last completed)
      ~f:(fun i -> i)
      ()
  in
  Alcotest.(check int) "progress saw the last sample" 30 !last;
  Alcotest.(check int) "per-worker tallies sum to n" 30
    (Array.fold_left ( + ) 0 r.stats.per_worker);
  Alcotest.(check int) "worker slots" 2 (Array.length r.stats.per_worker);
  Alcotest.(check bool) "wall time measured" true (r.stats.wall_s >= 0.0)

(* --- resilience: empty runs, census ordering, the retry ladder --- *)

let test_budget_empty_run () =
  (* n = 0 must never trip the budget, even at a zero failure allowance
     (0 * frac = 0 used to compare 0 > 0.0 — the guard keeps it silent). *)
  let r = Rt.map_samples ~jobs:2 ~n:0 ~f:(fun i -> i) () in
  Rt.check_budget ~label:"empty" ~max_failure_frac:0.0 r;
  Alcotest.(check int) "no failures" 0 (Rt.failed_count r);
  Alcotest.(check (list (pair string int))) "empty census" []
    (Rt.failure_census r)

let test_census_ordering () =
  (* Two failure species with different frequencies: the census must come
     back most-frequent-first with exact counts. *)
  let r =
    Rt.map_samples ~jobs:3 ~n:12
      ~f:(fun i ->
        if i < 6 then failwith "common"
        else if i < 8 then raise (Boom i)
        else i)
      ()
  in
  (match Rt.failure_census r with
  | [ (a, 6); (b, 2) ] ->
    Alcotest.(check bool) "categories distinct" true (a <> b)
  | census ->
    Alcotest.failf "unexpected census: %s" (Rt.census_to_string census));
  let s = Rt.census_to_string (Rt.failure_census r) in
  Alcotest.(check bool) "census string lists both" true
    (contains ~sub:":6" s && contains ~sub:":2" s)

let test_retry_policy_validation () =
  Alcotest.(check bool) "retry 1 accepted" true
    ((Rt.retry 1).Rt.max_attempts = 1);
  match Rt.retry 0 with
  | _ -> Alcotest.fail "retry 0 accepted"
  | exception Invalid_argument _ -> ()

let test_retry_ladder_recovers () =
  (* Samples 3 and 7 fail on attempts 0 and 1 and succeed on attempt 2;
     sample 5 always fails.  With 3 attempts the first two recover and the
     history of the dead sample records every attempt. *)
  let flaky ~attempt i =
    if i = 5 then failwith "always dead"
    else if (i = 3 || i = 7) && attempt < 2 then raise (Boom i)
    else i * 10
  in
  let r =
    Rt.map_attempt_samples ~jobs:2 ~retry:(Rt.retry 3) ~n:10
      ~f:(fun ~attempt i -> flaky ~attempt i)
      ()
  in
  Alcotest.(check int) "one sample dead" 1 (Rt.failed_count r);
  Alcotest.(check int) "retried" 3 r.Rt.stats.Rt.retried_samples;
  Alcotest.(check int) "recovered" 2 r.Rt.stats.Rt.recovered_samples;
  Alcotest.(check (list int)) "attempts per sample"
    [ 1; 1; 1; 3; 1; 3; 1; 3; 1; 1 ]
    (Array.to_list r.Rt.attempts);
  (match Rt.failures r with
  | [ f ] ->
    Alcotest.(check int) "dead index" 5 f.Rt.index;
    Alcotest.(check int) "two earlier attempts recorded" 2
      (List.length f.Rt.history);
    List.iteri
      (fun k a ->
        Alcotest.(check int) "history attempt number" k a.Rt.attempt)
      f.Rt.history
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs));
  (* Recovered values land in the same cells as a clean run's would. *)
  Alcotest.(check bool) "values ordered, dead sample skipped" true
    (Rt.values r
    = Array.of_list
        (List.filter_map
           (fun i -> if i = 5 then None else Some (i * 10))
           (List.init 10 Fun.id)))

let test_retry_respects_retryable () =
  let calls = Atomic.make 0 in
  let r =
    Rt.map_attempt_samples ~jobs:1
      ~retry:
        (Rt.retry ~retryable:(function Boom _ -> false | _ -> true) 5)
      ~n:3
      ~f:(fun ~attempt:_ i ->
        if i = 1 then begin
          Atomic.incr calls;
          raise (Boom i)
        end
        else i)
      ()
  in
  Alcotest.(check int) "non-retryable tried exactly once" 1 (Atomic.get calls);
  Alcotest.(check int) "still recorded as failed" 1 (Rt.failed_count r)

let test_retry_rng_value_neutral () =
  (* Under map_rng_attempt_samples every attempt re-reads the same
     substream, so a sample that succeeds on a retry must produce the value
     a never-failing run produces. *)
  let n = 16 in
  let clean =
    Rt.values
      (Rt.map_rng_attempt_samples ~jobs:1 ~rng:(Rng.create ~seed:23) ~n
         ~f:(fun ~attempt:_ ~index:_ rng -> draws 4 rng)
         ())
  in
  let flaky jobs =
    Rt.map_rng_attempt_samples ~jobs ~retry:(Rt.retry 2)
      ~rng:(Rng.create ~seed:23) ~n
      ~f:(fun ~attempt ~index rng ->
        let v = draws 4 rng in
        if index mod 3 = 0 && attempt = 0 then failwith "flaky";
        v)
      ()
  in
  let r1 = flaky 1 in
  Alcotest.(check int) "all recovered" 0 (Rt.failed_count r1);
  Alcotest.(check int) "recovered count" 6 r1.Rt.stats.Rt.recovered_samples;
  Alcotest.(check bool) "recovered values = clean values" true
    (Rt.values r1 = clean);
  (* And the whole recovered run is jobs-invariant. *)
  let r4 = flaky 4 in
  Alcotest.(check bool) "values jobs-invariant under retry" true
    (Rt.values r1 = Rt.values r4);
  Alcotest.(check bool) "attempt counts jobs-invariant" true
    (r1.Rt.attempts = r4.Rt.attempts)

(* --- jobs-count invariance end to end (Mc_device) --- *)

let test_mc_device_jobs_invariant () =
  let run jobs =
    Mc.of_vs Vss.seed_nmos ~jobs ~rng:(Rng.create ~seed:11) ~n:64 ~w_nm:600.0
      ~l_nm:40.0 ~vdd
  in
  let s1 = run 1 and s4 = run 4 in
  Alcotest.(check bool) "idsat bit-identical" true (s1.idsat = s4.idsat);
  Alcotest.(check bool) "log10_ioff bit-identical" true
    (s1.log10_ioff = s4.log10_ioff);
  Alcotest.(check bool) "cgg bit-identical" true (s1.cgg = s4.cgg)

(* --- jobs-count invariance end to end (full circuit transient MC) --- *)

let test_circuit_mc_jobs_invariant () =
  (* Each sample perturbs device widths from its own substream, builds an
     FO3 inverter harness, and runs DC + transient through the engine.  The
     measured delays must be bit-identical for any worker count. *)
  let tech_of_rng rng =
    let base = Vstat_cells.Celltech.nominal_vs_seed ~vdd () in
    let jit w = w *. (1.0 +. (0.03 *. Rng.gaussian rng)) in
    {
      base with
      Vstat_cells.Celltech.label = "vs-jitter";
      nmos = (fun ~w_nm -> base.Vstat_cells.Celltech.nmos ~w_nm:(jit w_nm));
      pmos = (fun ~w_nm -> base.Vstat_cells.Celltech.pmos ~w_nm:(jit w_nm));
    }
  in
  let measure tech =
    let s = Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
    let r = Vstat_cells.Inverter.measure s in
    (r.Vstat_cells.Inverter.tphl, r.Vstat_cells.Inverter.tplh)
  in
  let run jobs =
    Rt.values
      (Rt.map_rng_samples ~jobs ~rng:(Rng.create ~seed:17) ~n:8
         ~f:(fun rng -> measure (tech_of_rng rng))
         ())
  in
  let s1 = run 1 and s4 = run 4 in
  Alcotest.(check int) "all samples measured" 8 (Array.length s1);
  Alcotest.(check bool) "delays bit-identical across jobs" true (s1 = s4)

(* --- Accum --- *)

let close ?(eps = 1e-9) name a b =
  Alcotest.(check bool) name true
    (Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)))

let test_accum_matches_descriptive () =
  let rng = Rng.create ~seed:3 in
  let xs = Array.init 257 (fun _ -> Rng.gaussian_scaled rng ~mean:5.0 ~sigma:2.0) in
  let a = Accum.of_array xs in
  Alcotest.(check int) "count" 257 (Accum.count a);
  close ~eps:1e-12 "mean" (D.mean xs) (Accum.mean a);
  close ~eps:1e-12 "std" (D.std xs) (Accum.std a)

let prop_accum_merge =
  QCheck.Test.make ~name:"merged accumulator = serial fold" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 2 50) (float_range (-10.) 10.)) (int_range 0 49))
    (fun (xs, cut) ->
      let xs = Array.of_list xs in
      let cut = cut mod Array.length xs in
      let left = Array.sub xs 0 cut in
      let right = Array.sub xs cut (Array.length xs - cut) in
      let whole = Accum.of_array xs in
      let merged = Accum.merge (Accum.of_array left) (Accum.of_array right) in
      let feq a b =
        (Float.is_nan a && Float.is_nan b)
        || Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a)
      in
      Accum.count merged = Accum.count whole
      && feq (Accum.mean merged) (Accum.mean whole)
      && feq (Accum.variance merged) (Accum.variance whole)
      && Accum.min merged = Accum.min whole
      && Accum.max merged = Accum.max whole)

let test_histogram_merge () =
  let module H = Accum.Histogram in
  let mk xs =
    let h = H.create ~lo:0.0 ~hi:10.0 ~bins:5 in
    List.iter (H.add h) xs;
    h
  in
  let a = mk [ -1.0; 0.5; 3.0; 9.9 ] in
  let b = mk [ 0.7; 12.0; 5.0 ] in
  let m = H.merge a b in
  Alcotest.(check int) "total" 7 (H.total m);
  Alcotest.(check int) "underflow" 1 (H.underflow m);
  Alcotest.(check int) "overflow" 1 (H.overflow m);
  Alcotest.(check (list int)) "bins add" [ 2; 1; 1; 0; 1 ]
    (Array.to_list (H.counts m))

(* --- default jobs policy (mutates process state: keep last) --- *)

let test_default_jobs_policy () =
  Alcotest.(check bool) "recommended default >= 1" true (Rt.default_jobs () >= 1);
  Rt.set_default_jobs 3;
  Alcotest.(check int) "forced default wins" 3 (Rt.default_jobs ());
  Alcotest.check_raises "jobs >= 1 enforced"
    (Invalid_argument "Runtime.set_default_jobs: jobs must be >= 1") (fun () ->
      Rt.set_default_jobs 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "vstat_runtime"
    [
      ( "substream",
        [
          Alcotest.test_case "reproducible" `Quick test_substream_reproducible;
          Alcotest.test_case "distinct" `Quick test_substream_distinct;
          Alcotest.test_case "negative index" `Quick
            test_substream_negative_index;
          q prop_substream_reproducible;
          q prop_substream_distinct_indices;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "map identity" `Quick test_map_identity;
          Alcotest.test_case "map empty" `Quick test_map_empty;
          Alcotest.test_case "fault capture" `Quick test_fault_capture;
          Alcotest.test_case "failure budget" `Quick test_budget;
          Alcotest.test_case "reraise first" `Quick test_reraise_first_failure;
          Alcotest.test_case "stats + progress" `Quick test_stats_and_progress;
          Alcotest.test_case "mc_device jobs-invariant" `Quick
            test_mc_device_jobs_invariant;
          Alcotest.test_case "circuit mc jobs-invariant" `Quick
            test_circuit_mc_jobs_invariant;
          q prop_map_rng_jobs_invariant;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "empty-run budget" `Quick test_budget_empty_run;
          Alcotest.test_case "census ordering" `Quick test_census_ordering;
          Alcotest.test_case "retry validation" `Quick
            test_retry_policy_validation;
          Alcotest.test_case "retry ladder recovers" `Quick
            test_retry_ladder_recovers;
          Alcotest.test_case "retryable predicate" `Quick
            test_retry_respects_retryable;
          Alcotest.test_case "retry value-neutral + jobs-invariant" `Quick
            test_retry_rng_value_neutral;
        ] );
      ( "accum",
        [
          Alcotest.test_case "matches descriptive" `Quick
            test_accum_matches_descriptive;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          q prop_accum_merge;
        ] );
      ( "policy",
        [ Alcotest.test_case "default jobs" `Quick test_default_jobs_policy ] );
    ]
