(* Wire-protocol codec and service-layer fault-injection tests.

   The codec contract under test: encode/decode round-trips every message
   (checked on encoded bytes, so float payloads compare bit-exactly
   without any float equality), strict prefixes and trailing junk are
   rejected with typed errors, and no input — however hostile — makes a
   decoder raise. *)

module P = Vstat_service.Protocol
module S = Vstat_service.Service
module FQ = Vstat_service.Fair_queue
module FS = Vstat_device.Fault_inject.Service

(* --- generators -------------------------------------------------------- *)

let gen_kind =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map
        (fun fanout -> P.Inverter_tpd { fanout })
        (QCheck.Gen.int_range 1 16);
      QCheck.Gen.map (fun read -> P.Sram_snm { read }) QCheck.Gen.bool;
      QCheck.Gen.return P.Idsat;
    ]

let gen_spec =
  let open QCheck.Gen in
  gen_kind >>= fun kind ->
  int_range 1 100_000 >>= fun n ->
  int >>= fun seed ->
  float_range 0.3 1.5 >>= fun vdd ->
  int_range 1 16 >>= fun retry -> return { P.kind; n; seed; vdd; retry }

let gen_id = QCheck.Gen.string_size ~gen:QCheck.Gen.printable (QCheck.Gen.int_range 0 24)

let gen_request =
  let open QCheck.Gen in
  oneof
    [
      (gen_spec >>= fun spec ->
       float_range (-1.0) 60.0 >>= fun deadline_s ->
       gen_id >>= fun client -> return (P.Submit { spec; deadline_s; client }));
      map (fun id -> P.Status { id }) gen_id;
      map (fun id -> P.Result { id }) gen_id;
      return P.Health;
      return P.Shutdown;
    ]

let gen_float_wild =
  (* Bit-pattern floats: exercises negatives, subnormals, infinities and
     NaN payloads through the codec (values travel as raw IEEE bits). *)
  QCheck.Gen.map Int64.float_of_bits QCheck.Gen.int64

let gen_summary =
  let open QCheck.Gen in
  gen_id >>= fun id ->
  int_range 0 5000 >>= fun n ->
  int_range 0 5000 >>= fun completed ->
  int_range 0 100 >>= fun failed ->
  gen_float_wild >>= fun mean ->
  gen_float_wild >>= fun std ->
  gen_float_wild >>= fun ci_lo ->
  gen_float_wild >>= fun ci_hi ->
  bool >>= fun partial ->
  gen_id >>= fun cause ->
  bool >>= fun cached ->
  float_range 0.0 100.0 >>= fun wall_s ->
  int_range 0 100 >>= fun retried ->
  array_size (int_range 0 40) gen_float_wild >>= fun values ->
  return
    {
      P.id;
      n;
      completed;
      failed;
      mean;
      std;
      ci_lo;
      ci_hi;
      partial;
      cause;
      cached;
      wall_s;
      retried;
      values;
    }

let gen_response =
  let open QCheck.Gen in
  oneof
    [
      (gen_id >>= fun id ->
       bool >>= fun cached -> return (P.Accepted { id; cached }));
      map
        (fun reason -> P.Rejected { reason })
        (oneof
           [
             (int_range 0 100 >>= fun queued ->
              int_range 1 100 >>= fun queue_max ->
              return (P.Queue_full { queued; queue_max }));
             (float_range 0.0 1000.0 >>= fun estimated_wait_s ->
              float_range 0.0 1000.0 >>= fun deadline_s ->
              return (P.Over_deadline { estimated_wait_s; deadline_s }));
             map (fun detail -> P.Bad_request { detail }) gen_id;
           ]);
      (gen_id >>= fun id ->
       oneof
         [
           map (fun position -> P.Queued { position }) (int_range 0 100);
           return P.Running;
           return P.Done;
           (int_range 1 16 >>= fun attempts ->
            gen_id >>= fun detail ->
            return (P.Quarantined { attempts; detail }));
         ]
       >>= fun state -> return (P.Job_status { id; state }));
      map (fun s -> P.Job_result s) gen_summary;
      map (fun id -> P.Unknown_id { id }) gen_id;
      (float_range 0.0 1e6 >>= fun uptime_s ->
       int_range 0 100 >>= fun queued ->
       int_range 0 8 >>= fun running ->
       int_range 0 1000 >>= fun finished ->
       int_range 0 1000 >>= fun rejected ->
       int_range 0 1000 >>= fun cache_hits ->
       int_range 0 1000 >>= fun served ->
       int_range 0 100 >>= fun requeued ->
       int_range 0 100 >>= fun quarantined ->
       int_range 0 100 >>= fun worker_crashes ->
       int_range 0 100 >>= fun worker_hangs ->
       int_range 0 1_000_000 >>= fun state_bytes ->
       int_range 0 100 >>= fun evicted ->
       list_size (int_range 0 8)
         (int_range 0 7 >>= fun wid ->
          int_range 1 50 >>= fun generation ->
          opt gen_id >>= fun busy ->
          float_range 0.0 60.0 >>= fun heartbeat_age_s ->
          int_range 0 500 >>= fun jobs_done ->
          return
            { P.wid; generation; busy; heartbeat_age_s; jobs_done })
       >>= fun workers ->
       return
         (P.Health_report
            {
              uptime_s;
              queued;
              running;
              finished;
              rejected;
              cache_hits;
              served;
              requeued;
              quarantined;
              worker_crashes;
              worker_hangs;
              state_bytes;
              evicted;
              workers;
            }));
      return P.Shutting_down;
    ]

(* --- round-trip properties --------------------------------------------- *)

(* Equality through re-encoding: two messages are the same iff their
   encodings are byte-equal, which compares float fields bit-exactly. *)
let roundtrips encode decode msg =
  let enc = encode msg in
  match decode enc with
  | Error _ -> false
  | Ok msg' -> String.equal enc (encode msg')

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request: decode (encode r) = r" ~count:500
    (QCheck.make gen_request)
    (roundtrips P.encode_request P.decode_request)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response: decode (encode r) = r" ~count:500
    (QCheck.make gen_response)
    (roundtrips P.encode_response P.decode_response)

(* Every strict prefix of a valid payload must be rejected typed — the
   decoder reads identical bytes until a bounds check fails, so the only
   acceptable outcomes are Truncated (or Oversized for a cut that lands
   inside a length field). *)
let prefix_rejected encode decode msg k01 =
  let enc = encode msg in
  let len = String.length enc in
  if len = 0 then true
  else begin
    let cut = Int.min (len - 1) (int_of_float (k01 *. Float.of_int len)) in
    match decode (String.sub enc 0 cut) with
    | Error (P.Truncated _ | P.Oversized _) -> true
    | Error _ | Ok _ -> false
  end

let prop_request_prefix =
  QCheck.Test.make ~name:"request: strict prefixes rejected typed" ~count:500
    QCheck.(make Gen.(pair gen_request (float_range 0.0 1.0)))
    (fun (r, k) -> prefix_rejected P.encode_request P.decode_request r k)

let prop_response_prefix =
  QCheck.Test.make ~name:"response: strict prefixes rejected typed" ~count:500
    QCheck.(make Gen.(pair gen_response (float_range 0.0 1.0)))
    (fun (r, k) -> prefix_rejected P.encode_response P.decode_response r k)

let prop_trailing =
  QCheck.Test.make ~name:"trailing junk rejected typed" ~count:300
    QCheck.(make Gen.(pair gen_request (string_size (Gen.int_range 1 16))))
    (fun (r, junk) ->
      match P.decode_request (P.encode_request r ^ junk) with
      | Error (P.Trailing _) -> true
      | Error _ | Ok _ -> false)

(* Hostile input: arbitrary bytes never escape as an exception. *)
let never_raises decode s =
  match decode s with Ok _ -> true | Error _ -> true | exception _ -> false

let prop_garbage_request =
  QCheck.Test.make ~name:"request: garbage never raises" ~count:1000
    QCheck.(string_gen Gen.char)
    (never_raises P.decode_request)

let prop_garbage_response =
  QCheck.Test.make ~name:"response: garbage never raises" ~count:1000
    QCheck.(string_gen Gen.char)
    (never_raises P.decode_response)

let prop_canonical_roundtrip =
  QCheck.Test.make ~name:"canonical spec string round-trips" ~count:500
    (QCheck.make gen_spec)
    (fun spec ->
      let canonical = P.spec_canonical ~pipeline:"42:300" spec in
      match P.spec_of_canonical canonical with
      | Error _ -> false
      | Ok spec' ->
        (* Compare through the binary codec: bit-exact on vdd. *)
        String.equal
          (P.encode_request (P.Submit { spec; deadline_s = 0.0; client = "c" }))
          (P.encode_request
             (P.Submit { spec = spec'; deadline_s = 0.0; client = "c" }))
        && String.equal (Option.get (P.canonical_pipeline canonical)) "42:300")

(* --- framing ----------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payload = String.init 100_000 (fun i -> Char.chr (i land 0xFF)) in
      (match P.write_frame a payload with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write_frame: %s" (P.error_to_string e));
      match P.read_frame b with
      | Ok got -> Alcotest.(check bool) "payload" true (String.equal got payload)
      | Error e -> Alcotest.failf "read_frame: %s" (P.error_to_string e))

let test_frame_oversized_write () =
  with_socketpair (fun a _ ->
      match P.write_frame a (String.make (P.max_frame + 1) 'x') with
      | Error (P.Oversized _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e)
      | Ok () -> Alcotest.fail "oversized frame accepted")

let test_frame_oversized_read () =
  with_socketpair (fun a b ->
      (* A hostile 512 MiB length prefix must be refused before any
         allocation, not trusted. *)
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 0x20000000l;
      let _ = Unix.write a header 0 4 in
      Unix.close a;
      match P.read_frame b with
      | Error (P.Oversized _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e)
      | Ok _ -> Alcotest.fail "oversized prefix accepted")

let test_frame_eof_mid_payload () =
  with_socketpair (fun a b ->
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 64l;
      let _ = Unix.write a header 0 4 in
      let _ = Unix.write_substring a "short" 0 5 in
      Unix.close a;
      match P.read_frame b with
      | Error (P.Truncated _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e)
      | Ok _ -> Alcotest.fail "torn frame accepted")

let test_bad_version () =
  let enc = P.encode_request P.Health in
  let b = Bytes.of_string enc in
  Bytes.set_int32_le b 0 99l;
  match P.decode_request (Bytes.to_string b) with
  | Error (P.Bad_version { found = 99; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e)
  | Ok _ -> Alcotest.fail "version skew accepted"

(* --- service-layer fault injection ------------------------------------- *)

let base_cfg =
  {
    FS.rate = 0.3;
    abort_frac = 0.5;
    crash_frac = 0.0;
    hang_frac = 0.0;
    stall_s = 0.01;
    hang_s = 0.5;
    seed = 7;
  }

let test_service_plan_deterministic () =
  let cfg = base_cfg in
  let fired = ref 0 and aborts = ref 0 in
  for key = 0 to 9_999 do
    (match FS.plan cfg ~key with
    | None -> ()
    | Some a -> (
      incr fired;
      (match a with
      | FS.Abort -> incr aborts
      | FS.Stall _ -> ()
      | FS.Crash | FS.Hang _ -> Alcotest.fail "zero-fraction kind fired");
      (* replay: pure function of (config, key) *)
      match (FS.plan cfg ~key, a) with
      | Some (FS.Stall _), FS.Stall _ | Some FS.Abort, FS.Abort -> ()
      | _ -> Alcotest.fail "plan not deterministic"))
  done;
  let frac = Float.of_int !fired /. 10_000.0 in
  Alcotest.(check bool) "rate respected" true (frac > 0.25 && frac < 0.35);
  let abort_frac = Float.of_int !aborts /. Float.of_int !fired in
  Alcotest.(check bool) "abort split" true (abort_frac > 0.4 && abort_frac < 0.6)

let test_service_plan_chaos_split () =
  (* Equal quarters: each kind's observed share stays near 0.25. *)
  let cfg =
    {
      base_cfg with
      FS.rate = 1.0;
      abort_frac = 0.25;
      crash_frac = 0.25;
      hang_frac = 0.25;
    }
  in
  let stalls = ref 0 and aborts = ref 0 and crashes = ref 0 and hangs = ref 0 in
  for key = 0 to 9_999 do
    match FS.plan cfg ~key with
    | Some (FS.Stall _) -> incr stalls
    | Some FS.Abort -> incr aborts
    | Some FS.Crash -> incr crashes
    | Some (FS.Hang s) ->
      if not (Float.equal s cfg.FS.hang_s) then
        Alcotest.fail "hang duration not propagated";
      incr hangs
    | None -> Alcotest.fail "rate 1 did not fire"
  done;
  List.iter
    (fun (label, count) ->
      let share = Float.of_int !count /. 10_000.0 in
      if share < 0.2 || share > 0.3 then
        Alcotest.failf "%s share %.3f outside [0.2, 0.3]" label share)
    [ ("stall", stalls); ("abort", aborts); ("crash", crashes); ("hang", hangs) ]

let test_service_plan_edges () =
  let none = { base_cfg with FS.rate = 0.0 } in
  let all = { base_cfg with FS.rate = 1.0; abort_frac = 1.0 } in
  for key = 0 to 99 do
    (match FS.plan none ~key with
    | None -> ()
    | Some _ -> Alcotest.fail "rate 0 fired");
    match FS.plan all ~key with
    | Some FS.Abort -> ()
    | _ -> Alcotest.fail "rate 1 abort_frac 1 did not abort"
  done;
  (match FS.plan { none with FS.rate = Float.nan } ~key:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN rate accepted");
  match
    FS.plan { base_cfg with FS.abort_frac = 0.6; crash_frac = 0.6 } ~key:0
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fractions summing past 1 accepted"

let test_service_parse_spec () =
  let ok s check =
    match FS.parse_spec s with
    | Ok cfg -> check cfg
    | Error m -> Alcotest.failf "parse %S failed: %s" s m
  in
  ok "0.1" (fun c ->
      Alcotest.(check bool) "mix default" true
        (c.FS.rate > 0.09 && c.FS.rate < 0.11 && c.FS.abort_frac > 0.4));
  ok "0.2:stall" (fun c ->
      Alcotest.(check bool) "stall" true (c.FS.abort_frac < 0.01));
  ok "0.2:abort" (fun c ->
      Alcotest.(check bool) "abort" true (c.FS.abort_frac > 0.99));
  ok "0.2:stall:0.5" (fun c ->
      Alcotest.(check bool) "stall secs" true
        (c.FS.stall_s > 0.49 && c.FS.stall_s < 0.51));
  ok "0.2:crash" (fun c ->
      Alcotest.(check bool) "crash" true (c.FS.crash_frac > 0.99));
  ok "0.2:hang:0.4" (fun c ->
      Alcotest.(check bool) "hang secs" true
        (c.FS.hang_frac > 0.99 && c.FS.hang_s > 0.39 && c.FS.hang_s < 0.41));
  ok "0.8:chaos" (fun c ->
      Alcotest.(check bool) "chaos quarters" true
        (c.FS.abort_frac > 0.24 && c.FS.abort_frac < 0.26
        && c.FS.crash_frac > 0.24 && c.FS.crash_frac < 0.26
        && c.FS.hang_frac > 0.24 && c.FS.hang_frac < 0.26));
  List.iter
    (fun bad ->
      match FS.parse_spec bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ "x"; "1.5"; "-0.1"; "0.1:frob"; "0.1:stall:-1"; "0.1:hang:x"; "" ]

(* --- admission validation --------------------------------------------- *)

let test_validate () =
  let cfg = S.default_config in
  let base =
    { P.kind = P.Idsat; n = 100; seed = 1; vdd = 1.0; retry = 1 }
  in
  (match S.validate cfg base with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid spec rejected: %s" m);
  List.iter
    (fun (label, spec) ->
      match S.validate cfg spec with
      | Ok () -> Alcotest.failf "invalid spec accepted: %s" label
      | Error _ -> ())
    [
      ("n=0", { base with P.n = 0 });
      ("n huge", { base with P.n = 1_000_000 });
      ("retry=0", { base with P.retry = 0 });
      ("retry=99", { base with P.retry = 99 });
      ("vdd low", { base with P.vdd = 0.1 });
      ("vdd nan", { base with P.vdd = Float.nan });
      ("fanout=0", { base with P.kind = P.Inverter_tpd { fanout = 0 } });
    ]

let test_estimate_wait () =
  let near a b = Float.abs (a -. b) < 1e-12 in
  Alcotest.(check bool) "single worker" true
    (near (S.estimate_wait_s ~ewma_sample_s:0.01 ~backlog_samples:400 ~workers:1) 4.0);
  Alcotest.(check bool) "pool divides" true
    (near (S.estimate_wait_s ~ewma_sample_s:0.01 ~backlog_samples:400 ~workers:4) 1.0);
  Alcotest.(check bool) "workers clamped to 1" true
    (near (S.estimate_wait_s ~ewma_sample_s:0.01 ~backlog_samples:400 ~workers:0) 4.0);
  Alcotest.(check bool) "cold ewma is free" true
    (near (S.estimate_wait_s ~ewma_sample_s:0.0 ~backlog_samples:1000 ~workers:2) 0.0)

(* --- fair queue --------------------------------------------------------- *)

(* K clients each push a burst, then everything is popped.  Round-robin
   fairness: at every pop prefix, any two clients that still hold pending
   jobs have been served within one job of each other; and the pop order
   restricted to one client is that client's push order (per-client
   FIFO). *)
let prop_fair_queue_skew =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 5) (int_range 0 12)
      >>= fun sizes -> return sizes)
  in
  QCheck.Test.make ~name:"fair queue: bounded skew + per-client FIFO"
    ~count:300 (QCheck.make gen) (fun sizes ->
      let q = FQ.create () in
      let clients = List.mapi (fun i m -> (Printf.sprintf "c%d" i, m)) sizes in
      List.iter
        (fun (c, m) ->
          for j = 0 to m - 1 do
            FQ.push q ~client:c (c, j)
          done)
        clients;
      let total = List.fold_left (fun a (_, m) -> a + m) 0 clients in
      if FQ.length q <> total then false
      else begin
        let served = Hashtbl.create 8 in
        let count c = Option.value (Hashtbl.find_opt served c) ~default:0 in
        let ok = ref true in
        for _ = 1 to total do
          match FQ.pop q with
          | None -> ok := false
          | Some (c, j) ->
            (* per-client FIFO: jobs arrive in push order *)
            if j <> count c then ok := false;
            Hashtbl.replace served c (count c + 1);
            (* bounded skew among clients that still hold jobs *)
            let pending_counts =
              List.filter_map
                (fun (d, m) -> if m - count d > 0 then Some (count d) else None)
                clients
            in
            (match pending_counts with
            | [] -> ()
            | x :: rest ->
              let mn = List.fold_left Int.min x rest in
              let mx = List.fold_left Int.max x rest in
              if mx - mn > 1 then ok := false)
        done;
        !ok && FQ.is_empty q
      end)

let test_fair_queue_push_front () =
  let q = FQ.create () in
  FQ.push q ~client:"a" 1;
  FQ.push q ~client:"a" 2;
  FQ.push q ~client:"b" 10;
  Alcotest.(check int) "clients" 2 (FQ.clients q);
  (match FQ.pop q with
  | Some 1 -> ()
  | _ -> Alcotest.fail "expected a's first job");
  (* The requeue path: a's victim job goes back at the front of a's own
     line, without jumping b's turn in the rotation. *)
  FQ.push_front q ~client:"a" 1;
  let drained = List.init 3 (fun _ -> FQ.pop q) in
  (match drained with
  | [ Some 10; Some 1; Some 2 ] -> ()
  | _ -> Alcotest.fail "push_front broke rotation or per-client order");
  Alcotest.(check bool) "empty" true (FQ.is_empty q);
  Alcotest.(check int) "position of absent" (-1)
    (FQ.position q (fun _ -> true))

let test_fair_queue_position () =
  let q = FQ.create () in
  FQ.push q ~client:"a" 1;
  FQ.push q ~client:"a" 2;
  FQ.push q ~client:"b" 10;
  FQ.push q ~client:"c" 20;
  (* RR drain order: a:1, b:10, c:20, a:2 *)
  List.iter
    (fun (v, want) ->
      Alcotest.(check int)
        (Printf.sprintf "position of %d" v)
        want
        (FQ.position q (fun x -> x = v)))
    [ (1, 0); (10, 1); (20, 2); (2, 3) ]

let () =
  Alcotest.run "vstat_service"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_request_prefix;
          QCheck_alcotest.to_alcotest prop_response_prefix;
          QCheck_alcotest.to_alcotest prop_trailing;
          QCheck_alcotest.to_alcotest prop_garbage_request;
          QCheck_alcotest.to_alcotest prop_garbage_response;
          QCheck_alcotest.to_alcotest prop_canonical_roundtrip;
        ] );
      ( "framing",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversized write refused" `Quick
            test_frame_oversized_write;
          Alcotest.test_case "oversized prefix refused" `Quick
            test_frame_oversized_read;
          Alcotest.test_case "EOF mid-payload refused" `Quick
            test_frame_eof_mid_payload;
          Alcotest.test_case "version skew refused" `Quick test_bad_version;
        ] );
      ( "fault_inject.service",
        [
          Alcotest.test_case "plan deterministic, rates respected" `Quick
            test_service_plan_deterministic;
          Alcotest.test_case "chaos kind split" `Quick
            test_service_plan_chaos_split;
          Alcotest.test_case "edge rates and validation" `Quick
            test_service_plan_edges;
          Alcotest.test_case "spec parsing" `Quick test_service_parse_spec;
        ] );
      ( "admission",
        [
          Alcotest.test_case "spec validation" `Quick test_validate;
          Alcotest.test_case "wait estimate divides by pool width" `Quick
            test_estimate_wait;
        ] );
      ( "fair_queue",
        [
          QCheck_alcotest.to_alcotest prop_fair_queue_skew;
          Alcotest.test_case "push_front requeues without jumping turns"
            `Quick test_fair_queue_push_front;
          Alcotest.test_case "position simulates round-robin drain" `Quick
            test_fair_queue_position;
        ] );
    ]
