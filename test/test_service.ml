(* Wire-protocol codec and service-layer fault-injection tests.

   The codec contract under test: encode/decode round-trips every message
   (checked on encoded bytes, so float payloads compare bit-exactly
   without any float equality), strict prefixes and trailing junk are
   rejected with typed errors, and no input — however hostile — makes a
   decoder raise. *)

module P = Vstat_service.Protocol
module S = Vstat_service.Service
module FS = Vstat_device.Fault_inject.Service

(* --- generators -------------------------------------------------------- *)

let gen_kind =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map
        (fun fanout -> P.Inverter_tpd { fanout })
        (QCheck.Gen.int_range 1 16);
      QCheck.Gen.map (fun read -> P.Sram_snm { read }) QCheck.Gen.bool;
      QCheck.Gen.return P.Idsat;
    ]

let gen_spec =
  let open QCheck.Gen in
  gen_kind >>= fun kind ->
  int_range 1 100_000 >>= fun n ->
  int >>= fun seed ->
  float_range 0.3 1.5 >>= fun vdd ->
  int_range 1 16 >>= fun retry -> return { P.kind; n; seed; vdd; retry }

let gen_id = QCheck.Gen.string_size ~gen:QCheck.Gen.printable (QCheck.Gen.int_range 0 24)

let gen_request =
  let open QCheck.Gen in
  oneof
    [
      (gen_spec >>= fun spec ->
       float_range (-1.0) 60.0 >>= fun deadline_s ->
       return (P.Submit { spec; deadline_s }));
      map (fun id -> P.Status { id }) gen_id;
      map (fun id -> P.Result { id }) gen_id;
      return P.Health;
      return P.Shutdown;
    ]

let gen_float_wild =
  (* Bit-pattern floats: exercises negatives, subnormals, infinities and
     NaN payloads through the codec (values travel as raw IEEE bits). *)
  QCheck.Gen.map Int64.float_of_bits QCheck.Gen.int64

let gen_summary =
  let open QCheck.Gen in
  gen_id >>= fun id ->
  int_range 0 5000 >>= fun n ->
  int_range 0 5000 >>= fun completed ->
  int_range 0 100 >>= fun failed ->
  gen_float_wild >>= fun mean ->
  gen_float_wild >>= fun std ->
  gen_float_wild >>= fun ci_lo ->
  gen_float_wild >>= fun ci_hi ->
  bool >>= fun partial ->
  gen_id >>= fun cause ->
  bool >>= fun cached ->
  float_range 0.0 100.0 >>= fun wall_s ->
  int_range 0 100 >>= fun retried ->
  array_size (int_range 0 40) gen_float_wild >>= fun values ->
  return
    {
      P.id;
      n;
      completed;
      failed;
      mean;
      std;
      ci_lo;
      ci_hi;
      partial;
      cause;
      cached;
      wall_s;
      retried;
      values;
    }

let gen_response =
  let open QCheck.Gen in
  oneof
    [
      (gen_id >>= fun id ->
       bool >>= fun cached -> return (P.Accepted { id; cached }));
      map
        (fun reason -> P.Rejected { reason })
        (oneof
           [
             (int_range 0 100 >>= fun queued ->
              int_range 1 100 >>= fun queue_max ->
              return (P.Queue_full { queued; queue_max }));
             (float_range 0.0 1000.0 >>= fun estimated_wait_s ->
              float_range 0.0 1000.0 >>= fun deadline_s ->
              return (P.Over_deadline { estimated_wait_s; deadline_s }));
             map (fun detail -> P.Bad_request { detail }) gen_id;
           ]);
      (gen_id >>= fun id ->
       oneof
         [
           map (fun position -> P.Queued { position }) (int_range 0 100);
           return P.Running;
           return P.Done;
         ]
       >>= fun state -> return (P.Job_status { id; state }));
      map (fun s -> P.Job_result s) gen_summary;
      map (fun id -> P.Unknown_id { id }) gen_id;
      (float_range 0.0 1e6 >>= fun uptime_s ->
       int_range 0 100 >>= fun queued ->
       int_range 0 1 >>= fun running ->
       int_range 0 1000 >>= fun finished ->
       int_range 0 1000 >>= fun rejected ->
       int_range 0 1000 >>= fun cache_hits ->
       int_range 0 1000 >>= fun served ->
       return
         (P.Health_report
            { uptime_s; queued; running; finished; rejected; cache_hits; served }));
      return P.Shutting_down;
    ]

(* --- round-trip properties --------------------------------------------- *)

(* Equality through re-encoding: two messages are the same iff their
   encodings are byte-equal, which compares float fields bit-exactly. *)
let roundtrips encode decode msg =
  let enc = encode msg in
  match decode enc with
  | Error _ -> false
  | Ok msg' -> String.equal enc (encode msg')

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request: decode (encode r) = r" ~count:500
    (QCheck.make gen_request)
    (roundtrips P.encode_request P.decode_request)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response: decode (encode r) = r" ~count:500
    (QCheck.make gen_response)
    (roundtrips P.encode_response P.decode_response)

(* Every strict prefix of a valid payload must be rejected typed — the
   decoder reads identical bytes until a bounds check fails, so the only
   acceptable outcomes are Truncated (or Oversized for a cut that lands
   inside a length field). *)
let prefix_rejected encode decode msg k01 =
  let enc = encode msg in
  let len = String.length enc in
  if len = 0 then true
  else begin
    let cut = Int.min (len - 1) (int_of_float (k01 *. Float.of_int len)) in
    match decode (String.sub enc 0 cut) with
    | Error (P.Truncated _ | P.Oversized _) -> true
    | Error _ | Ok _ -> false
  end

let prop_request_prefix =
  QCheck.Test.make ~name:"request: strict prefixes rejected typed" ~count:500
    QCheck.(make Gen.(pair gen_request (float_range 0.0 1.0)))
    (fun (r, k) -> prefix_rejected P.encode_request P.decode_request r k)

let prop_response_prefix =
  QCheck.Test.make ~name:"response: strict prefixes rejected typed" ~count:500
    QCheck.(make Gen.(pair gen_response (float_range 0.0 1.0)))
    (fun (r, k) -> prefix_rejected P.encode_response P.decode_response r k)

let prop_trailing =
  QCheck.Test.make ~name:"trailing junk rejected typed" ~count:300
    QCheck.(make Gen.(pair gen_request (string_size (Gen.int_range 1 16))))
    (fun (r, junk) ->
      match P.decode_request (P.encode_request r ^ junk) with
      | Error (P.Trailing _) -> true
      | Error _ | Ok _ -> false)

(* Hostile input: arbitrary bytes never escape as an exception. *)
let never_raises decode s =
  match decode s with Ok _ -> true | Error _ -> true | exception _ -> false

let prop_garbage_request =
  QCheck.Test.make ~name:"request: garbage never raises" ~count:1000
    QCheck.(string_gen Gen.char)
    (never_raises P.decode_request)

let prop_garbage_response =
  QCheck.Test.make ~name:"response: garbage never raises" ~count:1000
    QCheck.(string_gen Gen.char)
    (never_raises P.decode_response)

let prop_canonical_roundtrip =
  QCheck.Test.make ~name:"canonical spec string round-trips" ~count:500
    (QCheck.make gen_spec)
    (fun spec ->
      let canonical = P.spec_canonical ~pipeline:"42:300" spec in
      match P.spec_of_canonical canonical with
      | Error _ -> false
      | Ok spec' ->
        (* Compare through the binary codec: bit-exact on vdd. *)
        String.equal
          (P.encode_request (P.Submit { spec; deadline_s = 0.0 }))
          (P.encode_request (P.Submit { spec = spec'; deadline_s = 0.0 }))
        && String.equal (Option.get (P.canonical_pipeline canonical)) "42:300")

(* --- framing ----------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payload = String.init 100_000 (fun i -> Char.chr (i land 0xFF)) in
      (match P.write_frame a payload with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write_frame: %s" (P.error_to_string e));
      match P.read_frame b with
      | Ok got -> Alcotest.(check bool) "payload" true (String.equal got payload)
      | Error e -> Alcotest.failf "read_frame: %s" (P.error_to_string e))

let test_frame_oversized_write () =
  with_socketpair (fun a _ ->
      match P.write_frame a (String.make (P.max_frame + 1) 'x') with
      | Error (P.Oversized _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e)
      | Ok () -> Alcotest.fail "oversized frame accepted")

let test_frame_oversized_read () =
  with_socketpair (fun a b ->
      (* A hostile 512 MiB length prefix must be refused before any
         allocation, not trusted. *)
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 0x20000000l;
      let _ = Unix.write a header 0 4 in
      Unix.close a;
      match P.read_frame b with
      | Error (P.Oversized _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e)
      | Ok _ -> Alcotest.fail "oversized prefix accepted")

let test_frame_eof_mid_payload () =
  with_socketpair (fun a b ->
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 64l;
      let _ = Unix.write a header 0 4 in
      let _ = Unix.write_substring a "short" 0 5 in
      Unix.close a;
      match P.read_frame b with
      | Error (P.Truncated _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e)
      | Ok _ -> Alcotest.fail "torn frame accepted")

let test_bad_version () =
  let enc = P.encode_request P.Health in
  let b = Bytes.of_string enc in
  Bytes.set_int32_le b 0 99l;
  match P.decode_request (Bytes.to_string b) with
  | Error (P.Bad_version { found = 99; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e)
  | Ok _ -> Alcotest.fail "version skew accepted"

(* --- service-layer fault injection ------------------------------------- *)

let test_service_plan_deterministic () =
  let cfg = { FS.rate = 0.3; abort_frac = 0.5; stall_s = 0.01; seed = 7 } in
  let fired = ref 0 and aborts = ref 0 in
  for key = 0 to 9_999 do
    (match FS.plan cfg ~key with
    | None -> ()
    | Some a -> (
      incr fired;
      (match a with FS.Abort -> incr aborts | FS.Stall _ -> ());
      (* replay: pure function of (config, key) *)
      match (FS.plan cfg ~key, a) with
      | Some (FS.Stall _), FS.Stall _ | Some FS.Abort, FS.Abort -> ()
      | _ -> Alcotest.fail "plan not deterministic"))
  done;
  let frac = Float.of_int !fired /. 10_000.0 in
  Alcotest.(check bool) "rate respected" true (frac > 0.25 && frac < 0.35);
  let abort_frac = Float.of_int !aborts /. Float.of_int !fired in
  Alcotest.(check bool) "abort split" true (abort_frac > 0.4 && abort_frac < 0.6)

let test_service_plan_edges () =
  let none = { FS.rate = 0.0; abort_frac = 0.5; stall_s = 0.01; seed = 1 } in
  let all = { FS.rate = 1.0; abort_frac = 1.0; stall_s = 0.01; seed = 1 } in
  for key = 0 to 99 do
    (match FS.plan none ~key with
    | None -> ()
    | Some _ -> Alcotest.fail "rate 0 fired");
    match FS.plan all ~key with
    | Some FS.Abort -> ()
    | _ -> Alcotest.fail "rate 1 abort_frac 1 did not abort"
  done;
  (match FS.plan { none with FS.rate = Float.nan } ~key:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN rate accepted")

let test_service_parse_spec () =
  let ok s check =
    match FS.parse_spec s with
    | Ok cfg -> check cfg
    | Error m -> Alcotest.failf "parse %S failed: %s" s m
  in
  ok "0.1" (fun c ->
      Alcotest.(check bool) "mix default" true
        (c.FS.rate > 0.09 && c.FS.rate < 0.11 && c.FS.abort_frac > 0.4));
  ok "0.2:stall" (fun c ->
      Alcotest.(check bool) "stall" true (c.FS.abort_frac < 0.01));
  ok "0.2:abort" (fun c ->
      Alcotest.(check bool) "abort" true (c.FS.abort_frac > 0.99));
  ok "0.2:stall:0.5" (fun c ->
      Alcotest.(check bool) "stall secs" true
        (c.FS.stall_s > 0.49 && c.FS.stall_s < 0.51));
  List.iter
    (fun bad ->
      match FS.parse_spec bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ "x"; "1.5"; "-0.1"; "0.1:frob"; "0.1:stall:-1"; "" ]

(* --- admission validation --------------------------------------------- *)

let test_validate () =
  let cfg = S.default_config in
  let base =
    { P.kind = P.Idsat; n = 100; seed = 1; vdd = 1.0; retry = 1 }
  in
  (match S.validate cfg base with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid spec rejected: %s" m);
  List.iter
    (fun (label, spec) ->
      match S.validate cfg spec with
      | Ok () -> Alcotest.failf "invalid spec accepted: %s" label
      | Error _ -> ())
    [
      ("n=0", { base with P.n = 0 });
      ("n huge", { base with P.n = 1_000_000 });
      ("retry=0", { base with P.retry = 0 });
      ("retry=99", { base with P.retry = 99 });
      ("vdd low", { base with P.vdd = 0.1 });
      ("vdd nan", { base with P.vdd = Float.nan });
      ("fanout=0", { base with P.kind = P.Inverter_tpd { fanout = 0 } });
    ]

let () =
  Alcotest.run "vstat_service"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_request_prefix;
          QCheck_alcotest.to_alcotest prop_response_prefix;
          QCheck_alcotest.to_alcotest prop_trailing;
          QCheck_alcotest.to_alcotest prop_garbage_request;
          QCheck_alcotest.to_alcotest prop_garbage_response;
          QCheck_alcotest.to_alcotest prop_canonical_roundtrip;
        ] );
      ( "framing",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversized write refused" `Quick
            test_frame_oversized_write;
          Alcotest.test_case "oversized prefix refused" `Quick
            test_frame_oversized_read;
          Alcotest.test_case "EOF mid-payload refused" `Quick
            test_frame_eof_mid_payload;
          Alcotest.test_case "version skew refused" `Quick test_bad_version;
        ] );
      ( "fault_inject.service",
        [
          Alcotest.test_case "plan deterministic, rates respected" `Quick
            test_service_plan_deterministic;
          Alcotest.test_case "edge rates and validation" `Quick
            test_service_plan_edges;
          Alcotest.test_case "spec parsing" `Quick test_service_parse_spec;
        ] );
      ( "admission",
        [ Alcotest.test_case "spec validation" `Quick test_validate ] );
    ]
