(* Dense-vs-sparse backend smoke on the real batched chain workload:
   - jobs:1 vs jobs:4 bit-identity of the sparse Monte Carlo path;
   - sparse vs dense per-sample agreement within 1e-9 relative;
   - batched (precompiled proxy engine) vs unbatched (recompile per
     sample) agreement on the same parameter buffer.
   Runs under @sparse (the CI sparse job) and the default @runtest. *)

module B = Vstat_experiments.Batch_mc
module E = Vstat_circuit.Engine

let stages = 13
let n = 6
let steps = 200
let seed = 77

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let run ?jobs ?batched backend p =
  B.chain_tpd ?jobs ?batched ~backend ~stages ~steps ~n ~seed ~vdd:0.9 p

let check_close label (a : B.result) (b : B.result) =
  Array.iteri
    (fun i va ->
      match (va, b.by_index.(i)) with
      | Some x, Some y ->
        let rel = Float.abs (x -. y) /. Float.max (Float.abs y) 1e-300 in
        if rel > 1e-9 then
          fail "%s: sample %d disagrees: %.17e vs %.17e (rel %.3e)" label i x
            y rel
      | None, None -> ()
      | _ -> fail "%s: sample %d failed on one side only" label i)
    a.by_index

let () =
  let p = Vstat_core.Pipeline.build ~seed:42 ~mc_per_geometry:300 () in
  let s1 = run ~jobs:1 E.Sparse p in
  (if s1.backend <> E.Sparse then fail "expected sparse backend");
  let s4 = run ~jobs:4 E.Sparse p in
  if s1.by_index <> s4.by_index then
    fail "sparse MC not bit-identical across jobs:1 / jobs:4";
  let d1 = run ~jobs:1 E.Dense p in
  (if d1.backend <> E.Dense then fail "expected dense backend");
  check_close "sparse-vs-dense" s1 d1;
  let u1 = run ~jobs:1 ~batched:false E.Sparse p in
  check_close "batched-vs-unbatched" s1 u1;
  let ok = Array.length s1.delays in
  if ok = 0 then fail "no successful samples";
  Printf.printf
    "sparse smoke OK: %d/%d samples, jobs bit-identical, dense/sparse and \
     batched/unbatched within 1e-9\n"
    ok n
