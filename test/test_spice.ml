(* Tests for the SPICE-deck front end. *)

module P = Vstat_circuit.Spice_parser
module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine
module W = Vstat_circuit.Waveform

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- values --- *)

let test_parse_value () =
  check_float "plain" 42.0 (P.parse_value "42");
  check_float "exponent" 1e-9 (P.parse_value "1e-9");
  check_float ~eps:1e-12 "kilo" 2500.0 (P.parse_value "2.5k");
  check_float ~eps:1e-24 "pico" 10e-12 (P.parse_value "10p");
  check_float ~eps:1e-27 "femto" 2e-15 (P.parse_value "2f");
  check_float "meg" 3e6 (P.parse_value "3meg");
  check_float ~eps:1e-15 "milli" 5e-3 (P.parse_value "5m");
  check_float ~eps:1e-18 "nano" 7e-9 (P.parse_value "7n");
  check_float ~eps:1e-12 "micro" 9e-6 (P.parse_value "9u");
  check_float "giga" 1e9 (P.parse_value "1g");
  check_float "tera" 4e12 (P.parse_value "4t")

(* The full SPICE scale-factor contract: MEG/MIL matched before the
   single-letter factors (so "3MEG" cannot be shadowed into milli), case
   insensitivity, and trailing unit letters ignored. *)
let test_parse_value_suffix_table () =
  check_float "MEG upper" 3e6 (P.parse_value "3MEG");
  check_float "Meg mixed" 3e6 (P.parse_value "3Meg");
  check_float ~eps:1e-12 "megohm unit" 2e6 (P.parse_value "2megohm");
  check_float ~eps:1e-9 "mil" 25.4e-6 (P.parse_value "1mil");
  check_float ~eps:1e-24 "pF unit" 10e-12 (P.parse_value "10pF");
  check_float ~eps:1e-12 "kOhm unit" 1e3 (P.parse_value "1kOhm");
  check_float ~eps:1e-15 "mV unit" 5e-3 (P.parse_value "5mV");
  check_float ~eps:1e-18 "ns unit" 2e-9 (P.parse_value "2ns");
  check_float "bare unit V" 10.0 (P.parse_value "10V");
  check_float "bare unit Hz" 60.0 (P.parse_value "60Hz");
  check_float "K upper" 1e3 (P.parse_value "1K");
  check_float ~eps:1e-27 "F upper femto" 2e-15 (P.parse_value "2F");
  check_float "whitespace" 5.0 (P.parse_value "  5  ")

let test_parse_value_malformed () =
  let expect_error s =
    match P.parse_value s with
    | v -> Alcotest.fail (Printf.sprintf "expected Parse_error for %S, got %g" s v)
    | exception P.Parse_error { line = 0; _ } -> ()
  in
  expect_error "abc";
  expect_error "";
  expect_error "1.2.3";
  expect_error "4k2"

(* --- deck structure --- *)

let divider_deck =
  "resistor divider\n\
   V1 top 0 DC 10\n\
   R1 top mid 1k\n\
   R2 mid 0 3k\n\
   .end\n"

let test_parse_divider () =
  let deck = P.parse_string divider_deck in
  Alcotest.(check string) "title" "resistor divider" deck.title;
  Alcotest.(check int) "nodes" 2 (N.node_count deck.netlist);
  Alcotest.(check int) "elements" 3 (List.length (N.elements deck.netlist));
  let eng = E.compile deck.netlist in
  let op = E.dc eng in
  let mid =
    match N.find_node deck.netlist "mid" with
    | Some n -> n
    | None -> Alcotest.fail "mid node missing"
  in
  check_float ~eps:1e-6 "divider solves" 7.5 (E.voltage eng op mid)

let test_comments_and_continuations () =
  let deck =
    P.parse_string
      "title\n\
       * a comment line\n\
       R1 a 0 $ trailing comment\n\
       + 2k\n\
       V1 a 0 DC 1 $ more\n"
  in
  Alcotest.(check int) "two elements" 2 (List.length (N.elements deck.netlist));
  match N.elements deck.netlist with
  | [ N.Resistor { ohms; _ }; N.Vsource _ ] -> check_float "joined value" 2000.0 ohms
  | _ -> Alcotest.fail "unexpected element shapes"

let test_case_insensitive_nodes () =
  let deck = P.parse_string "t\nR1 OUT 0 1k\nV1 out 0 DC 1\n" in
  (* OUT and out are the same node. *)
  Alcotest.(check int) "one node" 1 (N.node_count deck.netlist)

let test_pulse_source () =
  let deck =
    P.parse_string "t\nV1 a 0 PULSE(0 0.9 20p 10p 10p 60p 200p)\nR1 a 0 1k\n"
  in
  match N.elements deck.netlist with
  | [ N.Vsource { wave = W.Pulse p; _ }; _ ] ->
    check_float ~eps:1e-15 "high" 0.9 p.high;
    check_float ~eps:1e-24 "delay" 20e-12 p.delay;
    check_float ~eps:1e-24 "period" 200e-12 p.period
  | _ -> Alcotest.fail "expected pulse source"

let test_pwl_and_sin_sources () =
  let deck =
    P.parse_string
      "t\nV1 a 0 PWL(0 0 1n 1)\nV2 b 0 SIN(0.45 0.1 1meg)\nR1 a b 1k\n"
  in
  match N.elements deck.netlist with
  | [ N.Vsource { wave = W.Pwl { W.points = pts; _ }; _ }; N.Vsource { wave = W.Sine s; _ }; _ ] ->
    Alcotest.(check int) "pwl points" 2 (Array.length pts);
    check_float "sin offset" 0.45 s.offset;
    check_float "sin freq" 1e6 s.freq_hz
  | _ -> Alcotest.fail "expected PWL and SIN sources"

let test_mosfet_and_model () =
  let deck =
    P.parse_string
      "t\n\
       .model nvs vs (type=n vt0=0.42)\n\
       Vd d 0 DC 0.9\n\
       Vg g 0 DC 0.9\n\
       M1 d g 0 0 nvs W=600n L=40n\n"
  in
  (match
     List.find_opt
       (function N.Mosfet _ -> true | _ -> false)
       (N.elements deck.netlist)
   with
  | Some (N.Mosfet { dev; _ }) ->
    check_float ~eps:1e-12 "width" 600e-9 dev.width;
    check_float ~eps:1e-12 "length" 40e-9 dev.length;
    (* The overridden vt0 lowers the current vs the default card. *)
    let id = Vstat_device.Device_model.ids dev ~vg:0.9 ~vd:0.9 ~vs:0.0 ~vb:0.0 in
    let default_dev =
      Vstat_device.Cards.vs_seed_device ~polarity:Vstat_device.Device_model.Nmos
        ~w_nm:600.0 ~l_nm:40.0
    in
    let id_default =
      Vstat_device.Device_model.ids default_dev ~vg:0.9 ~vd:0.9 ~vs:0.0 ~vb:0.0
    in
    Alcotest.(check bool) "vt0 override lowers id" true (id < id_default)
  | _ -> Alcotest.fail "expected a mosfet");
  (* And the deck solves. *)
  let eng = E.compile deck.netlist in
  let op = E.dc eng in
  Alcotest.(check bool) "drain current flows" true
    (Float.abs (E.source_current eng op "vd") > 1e-5)

let test_bsim_model_family () =
  let deck =
    P.parse_string
      "t\n.model nb bsim4lite (type=n u0=0.03)\nV1 d 0 DC 0.9\nM1 d d 0 0 nb\n"
  in
  let eng = E.compile deck.netlist in
  let op = E.dc eng in
  Alcotest.(check bool) "diode-connected conducts" true
    (Float.abs (E.source_current eng op "v1") > 1e-5)

let test_analyses_parsed () =
  let deck =
    P.parse_string
      "t\n\
       V1 a 0 DC 1\n\
       R1 a 0 1k\n\
       .tran 1p 100p\n\
       .dc v1 0 1 0.1\n\
       .ac dec 10 1k 1meg v1\n"
  in
  match deck.analyses with
  | [ P.Tran t; P.Dc_sweep d; P.Ac a ] ->
    check_float ~eps:1e-24 "tstep" 1e-12 t.tstep;
    check_float "sweep stop" 1.0 d.stop;
    Alcotest.(check string) "sweep source" "v1" d.source;
    Alcotest.(check int) "ppd" 10 a.points_per_decade
  | _ -> Alcotest.fail "expected three analyses in order"

let test_errors_carry_line_numbers () =
  let expect_error text expected_line =
    match P.parse_string text with
    | _ -> Alcotest.fail "expected Parse_error"
    | exception P.Parse_error { line; _ } ->
      Alcotest.(check int) "line number" expected_line line
  in
  expect_error "t\nR1 a 0\n" 2;
  expect_error "t\nV1 a 0 DC 1\nM1 a a 0 0 nope\n" 3;
  expect_error "t\n.unknown 1 2\n" 2;
  (* Malformed numeric tokens must surface as Parse_error with the line,
     not as a bare Failure from the value parser. *)
  expect_error "t\nR1 a 0 1x0\n" 2;
  expect_error "t\nC1 a 0 bogus\n" 2;
  expect_error "t\nV1 a 0 DC oops\n" 2;
  expect_error "t\nV1 a 0 DC 1\nR1 a 0 1k\n.tran bad 100p\n" 4;
  expect_error "t\nV1 a 0 PULSE(0 1 zzz 1p 1p 10p 20p)\n" 2

let test_unknown_model_rejected () =
  match P.parse_string "t\nM1 d g 0 0 missing\n" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception P.Parse_error { message; _ } ->
    Alcotest.(check bool) "mentions model" true
      (String.length message > 0)

(* --- end-to-end: the shipped example decks parse and solve --- *)

let test_example_decks () =
  (* Locate the source tree from the test binary's location
     (_build/default/test/...) so the shipped decks are really tested. *)
  let rec find_root dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else begin
      let parent = Filename.dirname dir in
      if parent = dir then None else find_root parent
    end
  in
  let source_root =
    (* _build/default mirrors the sources; decks live under examples/. *)
    find_root (Filename.dirname Sys.executable_name)
  in
  match source_root with
  | None -> Alcotest.fail "could not locate the workspace root"
  | Some root ->
    let dir = Filename.concat root "examples/netlists" in
    let checked = ref 0 in
    List.iter
      (fun name ->
        let path = Filename.concat dir name in
        if Sys.file_exists path then begin
          incr checked;
          let deck = P.parse_file path in
          let eng = E.compile deck.netlist in
          ignore (E.dc eng)
        end)
      [ "inverter.sp"; "rc_filter.sp"; "nmos_iv.sp" ];
    (* The decks are not copied into _build, so fall back to the real source
       tree when the mirror lacks them. *)
    if !checked = 0 then begin
      let alt = "/root/repo/examples/netlists" in
      if Sys.file_exists alt then
        List.iter
          (fun name ->
            let deck = P.parse_file (Filename.concat alt name) in
            ignore (E.dc (E.compile deck.netlist)))
          [ "inverter.sp"; "rc_filter.sp"; "nmos_iv.sp" ]
    end

let () =
  Alcotest.run "vstat_spice"
    [
      ( "values",
        [
          Alcotest.test_case "engineering suffixes" `Quick test_parse_value;
          Alcotest.test_case "suffix table + units" `Quick
            test_parse_value_suffix_table;
          Alcotest.test_case "malformed" `Quick test_parse_value_malformed;
        ] );
      ( "decks",
        [
          Alcotest.test_case "divider" `Quick test_parse_divider;
          Alcotest.test_case "comments/continuations" `Quick test_comments_and_continuations;
          Alcotest.test_case "case-insensitive nodes" `Quick test_case_insensitive_nodes;
          Alcotest.test_case "pulse" `Quick test_pulse_source;
          Alcotest.test_case "pwl/sin" `Quick test_pwl_and_sin_sources;
          Alcotest.test_case "mosfet + model" `Quick test_mosfet_and_model;
          Alcotest.test_case "bsim family" `Quick test_bsim_model_family;
          Alcotest.test_case "analyses" `Quick test_analyses_parsed;
          Alcotest.test_case "error line numbers" `Quick test_errors_carry_line_numbers;
          Alcotest.test_case "unknown model" `Quick test_unknown_model_rejected;
          Alcotest.test_case "example decks" `Quick test_example_decks;
        ] );
    ]
