(* Unit and property tests for Vstat_util: RNG, special functions, float
   helpers. *)

module Rng = Vstat_util.Rng
module Special = Vstat_util.Special
module Floatx = Vstat_util.Floatx

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.copy a in
  let va = Rng.float a in
  (* advancing a must not move b *)
  let vb = Rng.float b in
  check_float "copy replays" va vb

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let xs = Array.init 100 (fun _ -> Rng.float a) in
  let ys = Array.init 100 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_rng_float_range () =
  let rng = Rng.create ~seed:99 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_rng_int_bound () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng ~bound:7 in
    if x < 0 || x >= 7 then Alcotest.fail "int out of bound"
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:4 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng ~bound:0))

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:5 in
  let n = 200_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian rng in
    sum := !sum +. g;
    sum2 := !sum2 +. (g *. g)
  done;
  let mean = !sum /. Float.of_int n in
  let var = (!sum2 /. Float.of_int n) -. (mean *. mean) in
  check_float ~eps:0.02 "gaussian mean" 0.0 mean;
  check_float ~eps:0.02 "gaussian variance" 1.0 var

let test_rng_gaussian_scaled () =
  let rng = Rng.create ~seed:6 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian_scaled rng ~mean:3.0 ~sigma:0.5) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. Float.of_int n in
  check_float ~eps:0.02 "scaled mean" 3.0 mean

let test_rng_lognormal_positive () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    if Rng.lognormal rng ~mu:0.0 ~sigma:1.0 <= 0.0 then
      Alcotest.fail "lognormal must be positive"
  done

(* --- Special --- *)

let test_erf_known_values () =
  (* Abramowitz & Stegun table values. *)
  check_float ~eps:2e-7 "erf 0" 0.0 (Special.erf 0.0);
  check_float ~eps:2e-7 "erf 0.5" 0.5204999 (Special.erf 0.5);
  check_float ~eps:2e-7 "erf 1" 0.8427008 (Special.erf 1.0);
  check_float ~eps:2e-7 "erf 2" 0.9953223 (Special.erf 2.0);
  check_float ~eps:2e-7 "erf -1 odd" (-.Special.erf 1.0) (Special.erf (-1.0))

let test_erfc_complement () =
  List.iter
    (fun x -> check_float ~eps:1e-12 "erf + erfc = 1" 1.0 (Special.erf x +. Special.erfc x))
    [ -2.0; -0.3; 0.0; 0.7; 1.9 ]

let test_normal_cdf_symmetry () =
  check_float ~eps:1e-9 "cdf 0" 0.5 (Special.normal_cdf 0.0);
  List.iter
    (fun x ->
      check_float ~eps:1e-6 "cdf symmetry" 1.0
        (Special.normal_cdf x +. Special.normal_cdf (-.x)))
    [ 0.5; 1.0; 2.5 ]

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Special.normal_quantile p in
      check_float ~eps:1e-6 "quantile/cdf roundtrip" p (Special.normal_cdf x))
    [ 0.001; 0.025; 0.31; 0.5; 0.84; 0.975; 0.999 ]

let test_normal_quantile_known () =
  check_float ~eps:1e-4 "q(0.975)" 1.959964 (Special.normal_quantile 0.975);
  check_float ~eps:1e-4 "q(0.5)" 0.0 (Special.normal_quantile 0.5);
  check_float ~eps:1e-3 "q(0.00135) ~ -3" (-3.0) (Special.normal_quantile 0.0013499)

let test_normal_quantile_domain () =
  List.iter
    (fun p ->
      match Special.normal_quantile p with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ 0.0; 1.0; -0.1; 1.5 ]

let test_log_gamma_factorials () =
  (* Gamma(n) = (n-1)! *)
  check_float ~eps:1e-9 "lgamma 1" 0.0 (Special.log_gamma 1.0);
  check_float ~eps:1e-9 "lgamma 2" 0.0 (Special.log_gamma 2.0);
  check_float ~eps:1e-8 "lgamma 5 = ln 24" (log 24.0) (Special.log_gamma 5.0);
  check_float ~eps:1e-8 "lgamma 0.5 = ln sqrt(pi)"
    (0.5 *. log Float.pi)
    (Special.log_gamma 0.5)

let test_chi2_quantile_known () =
  (* dof=2: quantile(p) = -2 ln(1-p). *)
  List.iter
    (fun p ->
      check_float ~eps:1e-6 "chi2 dof2" (-2.0 *. log (1.0 -. p))
        (Special.chi2_quantile ~p ~dof:2))
    [ 0.1; 0.393469; 0.5; 0.864665; 0.988891 ];
  (* dof=1: quantile(0.95) = 3.8415 *)
  check_float ~eps:1e-3 "chi2 dof1 0.95" 3.8415 (Special.chi2_quantile ~p:0.95 ~dof:1)

(* --- Floatx --- *)

let test_close () =
  Alcotest.(check bool) "equal" true (Floatx.close 1.0 1.0);
  Alcotest.(check bool) "tiny diff" true (Floatx.close 1.0 (1.0 +. 1e-13));
  Alcotest.(check bool) "big diff" false (Floatx.close 1.0 1.1)

let test_clamp () =
  check_float "below" 0.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 (-3.0));
  check_float "above" 1.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 5.0);
  check_float "inside" 0.5 (Floatx.clamp ~lo:0.0 ~hi:1.0 0.5)

let test_linspace () =
  let xs = Floatx.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (Array.length xs);
  check_float "first" 0.0 xs.(0);
  check_float "last" 1.0 xs.(4);
  check_float "mid" 0.5 xs.(2)

let test_logspace () =
  let xs = Floatx.logspace 0.0 2.0 3 in
  check_float ~eps:1e-9 "10^0" 1.0 xs.(0);
  check_float ~eps:1e-9 "10^1" 10.0 xs.(1);
  check_float ~eps:1e-9 "10^2" 100.0 xs.(2)

let test_interp_linear () =
  let xs = [| 0.0; 1.0; 2.0 |] and ys = [| 0.0; 10.0; 40.0 |] in
  check_float "node" 10.0 (Floatx.interp_linear ~xs ~ys 1.0);
  check_float "segment" 5.0 (Floatx.interp_linear ~xs ~ys 0.5);
  check_float "segment2" 25.0 (Floatx.interp_linear ~xs ~ys 1.5);
  (* Linear extrapolation from end segments. *)
  check_float "extrapolate right" 70.0 (Floatx.interp_linear ~xs ~ys 3.0)

let test_first_crossing () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 0.0; 0.4; 0.8; 1.0 |] in
  (match Floatx.first_crossing ~xs ~ys ~level:0.6 ~rising:true () with
  | Some t -> check_float ~eps:1e-12 "rising crossing" 1.5 t
  | None -> Alcotest.fail "expected crossing");
  (match Floatx.first_crossing ~xs ~ys ~level:0.6 ~rising:false () with
  | Some _ -> Alcotest.fail "no falling crossing expected"
  | None -> ())

let test_log10_safe () =
  check_float "normal" 2.0 (Floatx.log10_safe 100.0);
  Alcotest.(check bool) "zero is finite" true
    (Float.is_finite (Floatx.log10_safe 0.0));
  Alcotest.(check bool) "negative is finite" true
    (Float.is_finite (Floatx.log10_safe (-5.0)))

let test_softplus () =
  check_float ~eps:1e-12 "large x" 50.0 (Floatx.softplus 50.0);
  check_float ~eps:1e-12 "zero" (log 2.0) (Floatx.softplus 0.0);
  Alcotest.(check bool) "very negative ~ exp" true
    (Floatx.close ~rtol:1e-6 (exp (-50.0)) (Floatx.softplus (-50.0)))

let test_pp_table () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Floatx.pp_table ppf ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ];
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 = "a")

(* --- qcheck properties --- *)

let prop_uniform_in_range =
  QCheck.Test.make ~name:"uniform stays in [lo,hi)" ~count:200
    QCheck.(pair (int_range 0 10_000) (pair (float_range (-5.0) 5.0) (float_range 0.01 5.0)))
    (fun (seed, (lo, width)) ->
      let rng = Rng.create ~seed in
      let hi = lo +. width in
      let x = Rng.uniform rng ~lo ~hi in
      x >= lo && x < hi)

let prop_interp_at_nodes =
  QCheck.Test.make ~name:"interp reproduces nodes" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 10) (float_range (-100.0) 100.0))
    (fun ys ->
      let ys = Array.of_list ys in
      let xs = Array.init (Array.length ys) Float.of_int in
      Array.for_all
        (fun i ->
          Floatx.close ~atol:1e-9
            (Floatx.interp_linear ~xs ~ys xs.(i))
            ys.(i))
        (Array.init (Array.length ys) Fun.id))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"normal_quantile is monotone" ~count:200
    QCheck.(pair (float_range 0.01 0.98) (float_range 0.001 0.019))
    (fun (p, dp) ->
      Special.normal_quantile (p +. dp) > Special.normal_quantile p)

(* The inverse-CDF contract the rare-event machinery leans on (Wilson
   intervals, sigma-shift design points): cdf o quantile = id well into
   the tails — exercised down to p = 1e-9, i.e. past 5 sigma — and
   quantile o cdf = id over the central +-5-sigma range.  The Acklam-style
   rational approximation is good to ~1e-5 relative at the deepest tail
   probed, so that is the bound asserted. *)
let prop_quantile_cdf_roundtrip =
  QCheck.Test.make ~name:"normal_cdf (normal_quantile p) = p" ~count:500
    QCheck.(float_range (-9.0) (log10 0.5))
    (fun log10_p ->
      let p = 10.0 ** log10_p in
      let p' = Special.normal_cdf (Special.normal_quantile p) in
      Float.abs (p' -. p) <= 5e-5 *. p +. 1e-15)

let prop_cdf_quantile_roundtrip =
  QCheck.Test.make ~name:"normal_quantile (normal_cdf x) = x" ~count:500
    QCheck.(float_range (-5.0) 5.0)
    (fun x ->
      let x' = Special.normal_quantile (Special.normal_cdf x) in
      Float.abs (x' -. x) <= 1e-5 *. (1.0 +. Float.abs x))

let () =
  Alcotest.run "vstat_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed changes stream" `Quick test_rng_seed_changes_stream;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int bound" `Quick test_rng_int_bound;
          Alcotest.test_case "int rejects bad bound" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "gaussian scaled" `Quick test_rng_gaussian_scaled;
          Alcotest.test_case "lognormal positive" `Quick test_rng_lognormal_positive;
          QCheck_alcotest.to_alcotest prop_uniform_in_range;
        ] );
      ( "special",
        [
          Alcotest.test_case "erf known" `Quick test_erf_known_values;
          Alcotest.test_case "erfc complement" `Quick test_erfc_complement;
          Alcotest.test_case "cdf symmetry" `Quick test_normal_cdf_symmetry;
          Alcotest.test_case "quantile roundtrip" `Quick test_normal_quantile_roundtrip;
          Alcotest.test_case "quantile known" `Quick test_normal_quantile_known;
          Alcotest.test_case "quantile domain" `Quick test_normal_quantile_domain;
          Alcotest.test_case "log_gamma factorials" `Quick test_log_gamma_factorials;
          Alcotest.test_case "chi2 quantiles" `Quick test_chi2_quantile_known;
          QCheck_alcotest.to_alcotest prop_quantile_monotone;
          QCheck_alcotest.to_alcotest prop_quantile_cdf_roundtrip;
          QCheck_alcotest.to_alcotest prop_cdf_quantile_roundtrip;
        ] );
      ( "floatx",
        [
          Alcotest.test_case "close" `Quick test_close;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "logspace" `Quick test_logspace;
          Alcotest.test_case "interp" `Quick test_interp_linear;
          Alcotest.test_case "first_crossing" `Quick test_first_crossing;
          Alcotest.test_case "log10_safe" `Quick test_log10_safe;
          Alcotest.test_case "softplus" `Quick test_softplus;
          Alcotest.test_case "pp_table" `Quick test_pp_table;
          QCheck_alcotest.to_alcotest prop_interp_at_nodes;
        ] );
    ]
