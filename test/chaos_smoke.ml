(* @chaos: fault-injection smoke for the resilience stack.

   Two circuit-level Monte Carlo benches (INV FO3 and NAND2 FO3 delay) are
   run three ways: clean, with 5 % injected raise-faults plus a 4-attempt
   retry ladder, and with the same injection but retries disabled.  The
   bench asserts the headline resilience claims: every injected failure is
   recovered by the ladder, recovered statistics match the clean run, dead
   samples are categorized as [injected_fault], and every configuration is
   bit-identical between jobs:1 and jobs:4. *)

module Rt = Vstat_runtime.Runtime
module FI = Vstat_device.Fault_inject
module D = Vstat_stats.Descriptive
module Mc = Vstat_experiments.Mc_compare

let vdd = Vstat_device.Cards.vdd_nominal
let n = 40
let failures = ref []
let check name ok = if not ok then failures := name :: !failures

let tech_of_rng rng =
  let base = Vstat_cells.Celltech.nominal_vs_seed ~vdd () in
  let jit w = w *. (1.0 +. (0.02 *. Vstat_util.Rng.gaussian rng)) in
  {
    base with
    Vstat_cells.Celltech.label = "chaos-jitter";
    nmos = (fun ~w_nm -> base.Vstat_cells.Celltech.nmos ~w_nm:(jit w_nm));
    pmos = (fun ~w_nm -> base.Vstat_cells.Celltech.pmos ~w_nm:(jit w_nm));
  }

let inv_measure tech =
  let s =
    Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3
  in
  (Vstat_cells.Inverter.measure s).Vstat_cells.Inverter.tpd

let nand_measure tech =
  let s = Vstat_cells.Nand2.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout:3 in
  (Vstat_cells.Nand2.measure s).Vstat_cells.Nand2.tpd

let inject = { FI.rate = 0.05; kind = FI.Raise; seed = 0x1d0a }

let run ~label ~measure ?retry ?inject jobs =
  Mc.collect_run ~jobs ?retry ?inject ~label ~n ~tech_of_rng
    ~rng:(Vstat_util.Rng.create ~seed:2026) ~measure ()

let exercise name measure =
  let clean1 = run ~label:(name ^ "/clean") ~measure 1 in
  let clean4 = run ~label:(name ^ "/clean") ~measure 4 in
  check (name ^ ": clean all ok") (Rt.failed_count clean1 = 0);
  check (name ^ ": clean jobs-invariant")
    (Rt.values clean1 = Rt.values clean4);
  (* 5 % raise-fault injection, 4-attempt deterministic retry ladder. *)
  let retry = Rt.retry 4 in
  let r1 = run ~label:(name ^ "/chaos") ~measure ~retry ~inject 1 in
  let r4 = run ~label:(name ^ "/chaos") ~measure ~retry ~inject 4 in
  check (name ^ ": chaos values jobs-invariant")
    (Rt.values r1 = Rt.values r4);
  check (name ^ ": chaos attempts jobs-invariant")
    (r1.Rt.attempts = r4.Rt.attempts);
  check (name ^ ": injection actually fired")
    (r1.Rt.stats.Rt.retried_samples > 0);
  check (name ^ ": every injected failure recovered")
    (Rt.failed_count r1 = 0
    && r1.Rt.stats.Rt.recovered_samples = r1.Rt.stats.Rt.retried_samples);
  let cv = Rt.values clean1 and rv = Rt.values r1 in
  let rel a b = Float.abs (a -. b) /. Float.max (Float.abs b) 1e-30 in
  let mean_drift = rel (D.mean rv) (D.mean cv) in
  let sigma_drift = rel (D.std rv) (D.std cv) in
  check (name ^ ": recovered mean within 0.1%") (mean_drift < 1e-3);
  check (name ^ ": recovered sigma within 0.1%") (sigma_drift < 1e-3);
  (* Same injection with retries disabled: dead samples must land in the
     typed injected_fault census, and still be jobs-invariant. *)
  let d1 = run ~label:(name ^ "/norecover") ~measure ~retry:Rt.no_retry ~inject 1 in
  let d4 = run ~label:(name ^ "/norecover") ~measure ~retry:Rt.no_retry ~inject 4 in
  check (name ^ ": no-retry jobs-invariant")
    (Rt.values d1 = Rt.values d4
    && Rt.failure_census d1 = Rt.failure_census d4);
  check (name ^ ": failures categorized as injected_fault")
    (match Rt.failure_census d1 with
    | [ ("injected_fault", k) ] -> k > 0 && k = Rt.failed_count d1
    | _ -> false);
  Printf.printf
    "chaos %-5s: n=%d injected=%d recovered=%d mean-drift=%.1e sigma-drift=%.1e\n"
    name n (Rt.failed_count d1) r1.Rt.stats.Rt.recovered_samples mean_drift
    sigma_drift

let () =
  exercise "inv" inv_measure;
  exercise "nand2" nand_measure;
  match !failures with
  | [] ->
    print_endline
      "chaos: injected faults recovered deterministically (jobs 1 == jobs 4)"
  | msgs ->
    List.iter (fun m -> prerr_endline ("chaos FAILED: " ^ m)) (List.rev msgs);
    exit 1
