(* Tests for the compact models: VS, Bsim4lite, the device wrapper, cards
   and electrical metrics. *)

module Dm = Vstat_device.Device_model
module Vs = Vstat_device.Vs_model
module B = Vstat_device.Bsim4lite
module Cards = Vstat_device.Cards
module Metrics = Vstat_device.Metrics

let vdd = Cards.vdd_nominal

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let nmos_vs = Cards.vs_seed_device ~polarity:Dm.Nmos ~w_nm:600.0 ~l_nm:40.0
let pmos_vs = Cards.vs_seed_device ~polarity:Dm.Pmos ~w_nm:600.0 ~l_nm:40.0
let nmos_b = Cards.bsim_device ~polarity:Dm.Nmos ~w_nm:600.0 ~l_nm:40.0
let pmos_b = Cards.bsim_device ~polarity:Dm.Pmos ~w_nm:600.0 ~l_nm:40.0

let all_devices =
  [ ("vs-n", nmos_vs); ("vs-p", pmos_vs); ("bsim-n", nmos_b); ("bsim-p", pmos_b) ]

(* --- generic device-model laws --- *)

let test_zero_vds_zero_current () =
  List.iter
    (fun (name, d) ->
      let id = Dm.ids d ~vg:vdd ~vd:0.3 ~vs:0.3 ~vb:0.0 in
      check_float ~eps:1e-15 (name ^ ": id(vds=0)") 0.0 id)
    all_devices

let test_source_drain_antisymmetry () =
  (* Swapping drain and source must negate the current. *)
  List.iter
    (fun (name, d) ->
      let i1 = Dm.ids d ~vg:0.6 ~vd:0.5 ~vs:0.1 ~vb:0.0 in
      let i2 = Dm.ids d ~vg:0.6 ~vd:0.1 ~vs:0.5 ~vb:0.0 in
      Alcotest.(check bool)
        (name ^ ": antisymmetric")
        true
        (Vstat_util.Floatx.close ~rtol:1e-9 i1 (-.i2)))
    all_devices

let test_nmos_current_sign () =
  let id = Dm.ids nmos_vs ~vg:vdd ~vd:vdd ~vs:0.0 ~vb:0.0 in
  Alcotest.(check bool) "nmos id > 0" true (id > 0.0)

let test_pmos_current_sign () =
  (* PMOS on: source at vdd, gate low: conventional current flows from
     source to drain, i.e. *out* of the drain terminal -> negative id. *)
  let id = Dm.ids pmos_vs ~vg:0.0 ~vd:0.0 ~vs:vdd ~vb:vdd in
  Alcotest.(check bool) "pmos id < 0" true (id < 0.0)

let test_monotone_in_vgs () =
  List.iter
    (fun (name, d) ->
      let prev = ref (-1.0) in
      Array.iter
        (fun vg ->
          let id =
            match d.Dm.polarity with
            | Dm.Nmos -> Dm.ids d ~vg ~vd:vdd ~vs:0.0 ~vb:0.0
            | Dm.Pmos ->
              Float.abs (Dm.ids d ~vg:(vdd -. vg) ~vd:0.0 ~vs:vdd ~vb:vdd)
          in
          if id <= !prev then
            Alcotest.fail (name ^ ": current not monotone in vgs");
          prev := id)
        (Vstat_util.Floatx.linspace 0.0 vdd 19))
    all_devices

let test_monotone_in_vds () =
  List.iter
    (fun (name, d) ->
      let prev = ref (-1.0) in
      Array.iter
        (fun vd ->
          let id =
            match d.Dm.polarity with
            | Dm.Nmos -> Dm.ids d ~vg:vdd ~vd ~vs:0.0 ~vb:0.0
            | Dm.Pmos ->
              Float.abs (Dm.ids d ~vg:0.0 ~vd:(vdd -. vd) ~vs:vdd ~vb:vdd)
          in
          if id < !prev -. 1e-12 then
            Alcotest.fail (name ^ ": output curve non-monotone");
          prev := id)
        (Vstat_util.Floatx.linspace 0.0 vdd 19))
    all_devices

let test_charge_conservation () =
  List.iter
    (fun (name, d) ->
      List.iter
        (fun (vg, vd, vs) ->
          let st = d.Dm.eval ~vg ~vd ~vs ~vb:0.0 in
          let total = st.qg +. st.qd +. st.qs +. st.qb in
          check_float ~eps:1e-22 (name ^ ": charge neutral") 0.0 total)
        [ (0.0, vdd, 0.0); (vdd, vdd, 0.0); (0.5, 0.2, 0.1); (vdd, 0.0, 0.0) ])
    all_devices

let test_gm_positive_in_strong_inversion () =
  List.iter
    (fun (name, d) ->
      let gm =
        match d.Dm.polarity with
        | Dm.Nmos -> Dm.gm d ~vg:vdd ~vd:vdd ~vs:0.0 ~vb:0.0
        | Dm.Pmos -> Dm.gm d ~vg:0.0 ~vd:0.0 ~vs:vdd ~vb:vdd
      in
      (* For PMOS, dId/dVg is positive too (less negative current as the
         gate rises), so both polarities give gm > 0 at these corners. *)
      Alcotest.(check bool) (name ^ ": gm sign") true (Float.abs gm > 1e-6))
    all_devices

let test_cgg_positive_and_scales_with_width () =
  let narrow = Cards.vs_seed_device ~polarity:Dm.Nmos ~w_nm:300.0 ~l_nm:40.0 in
  let c_wide = Metrics.cgg nmos_vs ~vdd in
  let c_narrow = Metrics.cgg narrow ~vdd in
  Alcotest.(check bool) "positive" true (c_narrow > 0.0);
  check_float ~eps:0.02 "cgg ratio ~ width ratio" 2.0 (c_wide /. c_narrow)

let test_body_effect_reduces_current () =
  (* Reverse body bias (vb < vs for NMOS) raises VT and cuts current. *)
  List.iter
    (fun (name, d) ->
      match d.Dm.polarity with
      | Dm.Pmos -> ()
      | Dm.Nmos ->
        let i0 = Dm.ids d ~vg:0.5 ~vd:vdd ~vs:0.0 ~vb:0.0 in
        let irb = Dm.ids d ~vg:0.5 ~vd:vdd ~vs:0.0 ~vb:(-0.5) in
        Alcotest.(check bool) (name ^ ": RBB cuts current") true (irb < i0))
    all_devices

(* --- VS model specifics --- *)

let test_vs_dibl_raises_current () =
  let p = Cards.vs_seed_nmos ~w_nm:600.0 ~l_nm:40.0 in
  let strong = { p with Vs.dibl = { p.dibl with delta0 = 0.15 } } in
  let weak = { p with Vs.dibl = { p.dibl with delta0 = 0.01 } } in
  let id delta_params =
    let d = Vs.device ~polarity:Dm.Nmos delta_params in
    Dm.ids d ~vg:0.45 ~vd:vdd ~vs:0.0 ~vb:0.0
  in
  Alcotest.(check bool) "more DIBL, more current" true (id strong > id weak)

let test_vs_delta_of_length () =
  let d = { Vs.delta0 = 0.1; l_nominal = 40e-9; l_scale = 25e-9 } in
  check_float ~eps:1e-12 "nominal" 0.1 (Vs.delta_of_length d 40e-9);
  Alcotest.(check bool) "short channel raises DIBL" true
    (Vs.delta_of_length d 35e-9 > 0.1);
  Alcotest.(check bool) "long channel lowers DIBL" true
    (Vs.delta_of_length d 80e-9 < 0.03);
  Alcotest.(check bool) "clamped above" true (Vs.delta_of_length d 1e-9 <= 0.4)

let test_vs_subthreshold_slope () =
  (* In subthreshold, d(log10 Id)/dVg ~ 1/(n0 phit ln 10). *)
  let p = Cards.vs_seed_nmos ~w_nm:600.0 ~l_nm:40.0 in
  let d = Vs.device ~polarity:Dm.Nmos p in
  let id vg = Dm.ids d ~vg ~vd:vdd ~vs:0.0 ~vb:0.0 in
  let slope = (log10 (id 0.12) -. log10 (id 0.08)) /. 0.04 in
  let ideal = 1.0 /. (p.n0 *. p.phit *. log 10.0) in
  (* The Ff inversion-transition function softens the slope below the ideal
     1/(n phit ln 10) until vgs is several alpha*phit below VT. *)
  Alcotest.(check bool) "slope within (0.7, 1.05) of ideal" true
    (slope > 0.7 *. ideal && slope < 1.05 *. ideal)

let test_vs_saturation_flattens () =
  (* Fsat -> 1: current at vds = vdd should exceed vds = vdsat/2 but by far
     less than proportionally. *)
  let d = nmos_vs in
  let i_half = Dm.ids d ~vg:vdd ~vd:0.1 ~vs:0.0 ~vb:0.0 in
  let i_full = Dm.ids d ~vg:vdd ~vd:vdd ~vs:0.0 ~vb:0.0 in
  Alcotest.(check bool) "saturates" true (i_full < 3.0 *. i_half)

let test_vs_dc_parameter_count () =
  Alcotest.(check int) "headline param count" 11 Vs.dc_parameter_count

(* --- Bsim4lite specifics --- *)

let test_bsim_vth_rolloff_and_dibl () =
  let p = Cards.bsim_nmos ~w_nm:600.0 ~l_nm:40.0 in
  let vth_long = B.vth { p with B.l = 200e-9 } ~vds:0.0 ~vbs:0.0 in
  let vth_short = B.vth p ~vds:0.0 ~vbs:0.0 in
  Alcotest.(check bool) "roll-off lowers short-channel vth" true
    (vth_short < vth_long);
  let vth_dibl = B.vth p ~vds:vdd ~vbs:0.0 in
  Alcotest.(check bool) "DIBL lowers vth further" true (vth_dibl < vth_short)

let test_bsim_geometry_offsets () =
  let p = { (Cards.bsim_nmos ~w_nm:600.0 ~l_nm:40.0) with B.dl = 5e-9; dw = 10e-9 } in
  check_float ~eps:1e-15 "leff" 35e-9 (B.leff p);
  check_float ~eps:1e-15 "weff" 590e-9 (B.weff p)

let test_bsim_parameter_count () =
  Alcotest.(check bool) "bsim has more parameters than vs" true
    (B.parameter_count > Vs.dc_parameter_count)

(* --- Metrics --- *)

let test_metrics_ordering () =
  List.iter
    (fun (name, d) ->
      let on = Metrics.idsat d ~vdd in
      let off = Metrics.ioff d ~vdd in
      Alcotest.(check bool) (name ^ ": ion >> ioff") true (on > 1e3 *. off))
    all_devices

let test_metrics_polarity_symmetric_magnitudes () =
  (* N and P on-currents are both positive magnitudes. *)
  Alcotest.(check bool) "N idsat > 0" true (Metrics.idsat nmos_b ~vdd > 0.0);
  Alcotest.(check bool) "P idsat > 0" true (Metrics.idsat pmos_b ~vdd > 0.0);
  Alcotest.(check bool) "N stronger than P" true
    (Metrics.idsat nmos_b ~vdd > Metrics.idsat pmos_b ~vdd)

let test_metrics_log10_ioff_consistent () =
  let v = Metrics.log10_ioff nmos_b ~vdd in
  check_float ~eps:1e-9 "log10 of ioff"
    (log10 (Metrics.ioff nmos_b ~vdd))
    v

let test_curve_shapes () =
  let curve =
    Metrics.id_vd_curve nmos_b ~vgs:vdd
      ~vds_points:(Vstat_util.Floatx.linspace 0.0 vdd 11)
  in
  Alcotest.(check int) "points" 11 (Array.length curve);
  check_float ~eps:1e-15 "starts at 0" 0.0 (snd curve.(0))

(* --- Cards --- *)

let test_unit_conversions () =
  check_float ~eps:1e-18 "nm" 40e-9 (Cards.nm 40.0);
  check_float ~eps:1e-12 "uF/cm2" 0.017 (Cards.uf_per_cm2 1.7);
  check_float ~eps:1e-12 "cm2/Vs" 0.025 (Cards.cm2_per_vs 250.0);
  check_float ~eps:1e-9 "cm/s" 1e5 (Cards.cm_per_s 1e7)

let test_cards_current_density_sane () =
  (* On-current per micron should be hundreds of uA for a 40 nm node. *)
  let per_um = Metrics.idsat nmos_b ~vdd /. 0.6 *. 1e6 in
  Alcotest.(check bool) "0.2mA/um < Ion < 2mA/um" true
    (per_um > 2e-4 *. 1e6 /. 1e3 && per_um < 2e-3 *. 1e6)

(* --- qcheck: outputs stay finite over the full bias box --- *)

let bias_gen =
  QCheck.Gen.(
    let v = float_range (-1.2) 1.2 in
    quad v v v v)

let prop_finite_everywhere =
  QCheck.Test.make ~name:"device outputs finite over bias box" ~count:500
    (QCheck.make bias_gen)
    (fun (vg, vd, vs, vb) ->
      List.for_all
        (fun (_, d) ->
          let st = d.Dm.eval ~vg ~vd ~vs ~vb in
          Float.is_finite st.id && Float.is_finite st.qg
          && Float.is_finite st.qd && Float.is_finite st.qs)
        all_devices)

let prop_width_scaling =
  QCheck.Test.make ~name:"current scales linearly with width" ~count:50
    QCheck.(float_range 100.0 2000.0)
    (fun w_nm ->
      let d1 = Cards.vs_seed_device ~polarity:Dm.Nmos ~w_nm ~l_nm:40.0 in
      let d2 =
        Cards.vs_seed_device ~polarity:Dm.Nmos ~w_nm:(2.0 *. w_nm) ~l_nm:40.0
      in
      let i1 = Metrics.idsat d1 ~vdd and i2 = Metrics.idsat d2 ~vdd in
      Float.abs ((i2 /. i1) -. 2.0) < 1e-6)

(* --- analytic derivative path --- *)

(* Bias grid exercising subthreshold, near-threshold, saturation, triode,
   body bias and the source/drain-swapped quadrant (vd < vs). *)
let deriv_bias_grid =
  [
    (0.0, 0.9, 0.0, 0.0);
    (0.2, 0.9, 0.0, 0.0);
    (0.45, 0.45, 0.0, 0.0);
    (0.7, 0.05, 0.0, 0.0);
    (0.9, 0.9, 0.0, 0.0);
    (0.9, 0.9, 0.0, -0.3);
    (0.6, 0.3, 0.1, 0.0);
    (0.6, 0.1, 0.5, 0.0);   (* swapped: vd < vs *)
    (0.9, 0.0, 0.9, 0.3);   (* swapped, with body bias *)
  ]

(* Mirror the NMOS grid into the PMOS quadrant so both polarities see the
   same operating regions. *)
let deriv_grid_for (d : Dm.t) =
  match d.Dm.polarity with
  | Dm.Nmos -> deriv_bias_grid
  | Dm.Pmos ->
    List.map
      (fun (vg, vd, vs, vb) -> (-.vg, -.vd, -.vs, -.vb))
      deriv_bias_grid

let eval_derivs_exn (d : Dm.t) =
  match d.Dm.eval_derivs with
  | Some f -> f
  | None -> Alcotest.fail "device has no analytic derivative path"

let test_derivs_values_match_eval () =
  List.iter
    (fun (name, d) ->
      let ed = eval_derivs_exn d in
      let buf = Dm.make_derivs () in
      List.iter
        (fun (vg, vd, vs, vb) ->
          let st = d.Dm.eval ~vg ~vd ~vs ~vb in
          ed ~vg ~vd ~vs ~vb buf;
          let chk what expected actual =
            Alcotest.(check bool)
              (Printf.sprintf "%s %s at (%g,%g,%g,%g)" name what vg vd vs vb)
              true
              (Vstat_util.Floatx.close ~rtol:1e-12 ~atol:1e-30 expected actual)
          in
          chk "id" st.Dm.id buf.Dm.v_id;
          chk "qg" st.qg buf.v_qg;
          chk "qd" st.qd buf.v_qd;
          chk "qs" st.qs buf.v_qs;
          chk "qb" st.qb buf.v_qb)
        (deriv_grid_for d))
    all_devices

(* Central finite differences of the plain value path, terminal by terminal,
   must agree with the analytic conductances and transcapacitances. *)
let test_derivs_match_central_fd () =
  let dv = 1e-5 in
  List.iter
    (fun (name, d) ->
      let ed = eval_derivs_exn d in
      let buf = Dm.make_derivs () in
      List.iter
        (fun (vg, vd, vs, vb) ->
          ed ~vg ~vd ~vs ~vb buf;
          let eval_at j delta =
            let vg = if j = 0 then vg +. delta else vg in
            let vd = if j = 1 then vd +. delta else vd in
            let vs = if j = 2 then vs +. delta else vs in
            let vb = if j = 3 then vb +. delta else vb in
            d.Dm.eval ~vg ~vd ~vs ~vb
          in
          let chk what analytic fd_ref =
            (* Central-difference truncation limits agreement to ~1e-5
               relative; absolute floors separate true zeros from noise. *)
            let atol = 1e-9 *. Float.max 1.0 (Float.abs fd_ref) in
            Alcotest.(check bool)
              (Printf.sprintf "%s %s at (%g,%g,%g,%g): %g vs fd %g" name what
                 vg vd vs vb analytic fd_ref)
              true
              (Float.abs (analytic -. fd_ref)
              <= atol
                 +. (5e-4
                    *. Float.max (Float.abs analytic) (Float.abs fd_ref)))
          in
          for j = 0 to 3 do
            let hi = eval_at j dv and lo = eval_at j (-.dv) in
            let fd a b = (a -. b) /. (2.0 *. dv) in
            chk
              (Printf.sprintf "did/dV%d" j)
              buf.Dm.did.(j)
              (fd hi.Dm.id lo.Dm.id);
            chk
              (Printf.sprintf "dqg/dV%d" j)
              buf.Dm.dq.(j) (fd hi.qg lo.qg);
            chk
              (Printf.sprintf "dqd/dV%d" j)
              buf.Dm.dq.(4 + j)
              (fd hi.qd lo.qd);
            chk
              (Printf.sprintf "dqs/dV%d" j)
              buf.Dm.dq.(8 + j)
              (fd hi.qs lo.qs);
            chk
              (Printf.sprintf "dqb/dV%d" j)
              buf.Dm.dq.(12 + j)
              (fd hi.qb lo.qb)
          done)
        (deriv_grid_for d))
    all_devices

let test_without_derivs_strips_path () =
  let stripped = Dm.without_derivs nmos_vs in
  Alcotest.(check bool) "eval_derivs gone" true (stripped.Dm.eval_derivs = None);
  let st1 = nmos_vs.Dm.eval ~vg:0.7 ~vd:0.5 ~vs:0.0 ~vb:0.0 in
  let st2 = stripped.Dm.eval ~vg:0.7 ~vd:0.5 ~vs:0.0 ~vb:0.0 in
  check_float ~eps:1e-18 "value path intact" st1.Dm.id st2.Dm.id

let prop_derivs_match_fd_random =
  QCheck.Test.make
    ~name:"analytic conductances track FD on random biases" ~count:200
    QCheck.(
      quad (float_range 0.0 0.9) (float_range 0.0 0.9) (float_range 0.0 0.4)
        (float_range (-0.3) 0.2))
    (fun (vg, vd, vs, vb) ->
      let buf = Dm.make_derivs () in
      List.for_all
        (fun (_, d) ->
          let sign = match d.Dm.polarity with Dm.Nmos -> 1.0 | Dm.Pmos -> -1.0 in
          let vg = sign *. vg and vd = sign *. vd and vs = sign *. vs
          and vb = sign *. vb in
          let ed = eval_derivs_exn d in
          ed ~vg ~vd ~vs ~vb buf;
          let dv = 1e-5 in
          let gm_fd =
            (d.Dm.eval ~vg:(vg +. dv) ~vd ~vs ~vb).Dm.id
            -. (d.Dm.eval ~vg:(vg -. dv) ~vd ~vs ~vb).Dm.id
          in
          let gm_fd = gm_fd /. (2.0 *. dv) in
          let gds_fd =
            (d.Dm.eval ~vg ~vd:(vd +. dv) ~vs ~vb).Dm.id
            -. (d.Dm.eval ~vg ~vd:(vd -. dv) ~vs ~vb).Dm.id
          in
          let gds_fd = gds_fd /. (2.0 *. dv) in
          let ok a b =
            Float.abs (a -. b)
            <= 1e-9 +. (1e-3 *. Float.max (Float.abs a) (Float.abs b))
          in
          ok buf.Dm.did.(0) gm_fd && ok buf.Dm.did.(1) gds_fd)
        all_devices)

(* --- fault injection --- *)

module FI = Vstat_device.Fault_inject

let test_fault_plan_deterministic () =
  let cfg = { FI.rate = 0.3; kind = FI.Raise; seed = 99 } in
  List.iter
    (fun key ->
      Alcotest.(check bool) "same key, same plan" true
        (FI.plan cfg ~key = FI.plan cfg ~key))
    [ 0; 1; 2; 17; 1234 ];
  let none = { cfg with FI.rate = 0.0 } in
  let all = { cfg with FI.rate = 1.0 } in
  Alcotest.(check bool) "rate 0 never fires" true
    (List.for_all (fun key -> FI.plan none ~key = None) (List.init 64 Fun.id));
  Alcotest.(check bool) "rate 1 always fires" true
    (List.for_all (fun key -> FI.plan all ~key <> None) (List.init 64 Fun.id));
  let hits =
    List.length
      (List.filter (fun key -> FI.plan cfg ~key <> None) (List.init 1000 Fun.id))
  in
  Alcotest.(check bool) "hit rate near configured 30%" true
    (hits > 220 && hits < 380);
  List.iter
    (fun key ->
      match FI.plan all ~key with
      | None -> Alcotest.fail "rate 1 must fire"
      | Some p ->
        Alcotest.(check bool) "ordinal within span" true
          (p.FI.device_ordinal >= 0 && p.FI.device_ordinal < FI.ordinal_span);
        Alcotest.(check bool) "at_eval >= 1" true (p.FI.at_eval >= 1))
    (List.init 64 Fun.id)

let test_fault_plan_validates_rate () =
  (* A typo'd probability must die at the plan call, not silently skew the
     injection statistics for a whole Monte Carlo campaign. *)
  List.iter
    (fun rate ->
      let cfg = { FI.rate; kind = FI.Raise; seed = 99 } in
      match FI.plan cfg ~key:0 with
      | _ -> Alcotest.failf "rate %g accepted" rate
      | exception Invalid_argument _ -> ())
    [ -0.1; 1.5; Float.nan; Float.infinity; neg_infinity ]

let test_fault_wrap_raise_persistent () =
  let plan = { FI.device_ordinal = 0; at_eval = 3; kind = FI.Raise } in
  let dev = FI.wrap plan nmos_vs in
  let eval () = dev.Dm.eval ~vg:vdd ~vd:vdd ~vs:0.0 ~vb:0.0 in
  let honest = nmos_vs.Dm.eval ~vg:vdd ~vd:vdd ~vs:0.0 ~vb:0.0 in
  check_float ~eps:1e-15 "eval 1 honest" honest.Dm.id (eval ()).Dm.id;
  check_float ~eps:1e-15 "eval 2 honest" honest.Dm.id (eval ()).Dm.id;
  (match eval () with
  | _ -> Alcotest.fail "expected Injected at eval 3"
  | exception FI.Injected _ -> ());
  match eval () with
  | _ -> Alcotest.fail "fault must persist after engaging"
  | exception FI.Injected _ -> ()

let test_fault_wrap_nan_inf () =
  let mk kind = FI.wrap { FI.device_ordinal = 0; at_eval = 1; kind } nmos_vs in
  let st = (mk FI.Nan_current).Dm.eval ~vg:vdd ~vd:vdd ~vs:0.0 ~vb:0.0 in
  Alcotest.(check bool) "current is NaN" true (Float.is_nan st.Dm.id);
  let st = (mk FI.Inf_current).Dm.eval ~vg:vdd ~vd:vdd ~vs:0.0 ~vb:0.0 in
  Alcotest.(check bool) "current is +inf" true (st.Dm.id = Float.infinity)

let test_fault_parse_spec () =
  (match FI.parse_spec "0.05" with
  | Ok cfg ->
    check_float ~eps:1e-12 "rate" 0.05 cfg.FI.rate;
    Alcotest.(check bool) "default kind is raise" true (cfg.FI.kind = FI.Raise)
  | Error m -> Alcotest.fail m);
  (match FI.parse_spec "0.1:nan" with
  | Ok cfg ->
    Alcotest.(check bool) "nan kind" true (cfg.FI.kind = FI.Nan_current)
  | Error m -> Alcotest.fail m);
  (match FI.parse_spec "0.1:bogus" with
  | Ok _ -> Alcotest.fail "bogus kind accepted"
  | Error _ -> ());
  (match FI.parse_spec "1.5" with
  | Ok _ -> Alcotest.fail "rate > 1 accepted"
  | Error _ -> ());
  match FI.parse_spec "0.25:perturb" with
  | Ok cfg ->
    Alcotest.(check string) "round-trips" "0.25:perturb"
      (FI.spec_to_string cfg)
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "vstat_device"
    [
      ( "model-laws",
        [
          Alcotest.test_case "id(vds=0)=0" `Quick test_zero_vds_zero_current;
          Alcotest.test_case "antisymmetry" `Quick test_source_drain_antisymmetry;
          Alcotest.test_case "nmos sign" `Quick test_nmos_current_sign;
          Alcotest.test_case "pmos sign" `Quick test_pmos_current_sign;
          Alcotest.test_case "monotone vgs" `Quick test_monotone_in_vgs;
          Alcotest.test_case "monotone vds" `Quick test_monotone_in_vds;
          Alcotest.test_case "charge conservation" `Quick test_charge_conservation;
          Alcotest.test_case "gm" `Quick test_gm_positive_in_strong_inversion;
          Alcotest.test_case "cgg scaling" `Quick test_cgg_positive_and_scales_with_width;
          Alcotest.test_case "body effect" `Quick test_body_effect_reduces_current;
          QCheck_alcotest.to_alcotest prop_finite_everywhere;
          QCheck_alcotest.to_alcotest prop_width_scaling;
        ] );
      ( "vs-model",
        [
          Alcotest.test_case "DIBL raises current" `Quick test_vs_dibl_raises_current;
          Alcotest.test_case "delta(L)" `Quick test_vs_delta_of_length;
          Alcotest.test_case "subthreshold slope" `Quick test_vs_subthreshold_slope;
          Alcotest.test_case "saturation" `Quick test_vs_saturation_flattens;
          Alcotest.test_case "param count" `Quick test_vs_dc_parameter_count;
        ] );
      ( "bsim4lite",
        [
          Alcotest.test_case "vth roll-off/DIBL" `Quick test_bsim_vth_rolloff_and_dibl;
          Alcotest.test_case "geometry offsets" `Quick test_bsim_geometry_offsets;
          Alcotest.test_case "param count" `Quick test_bsim_parameter_count;
        ] );
      ( "derivatives",
        [
          Alcotest.test_case "values match eval" `Quick
            test_derivs_values_match_eval;
          Alcotest.test_case "match central FD" `Quick
            test_derivs_match_central_fd;
          Alcotest.test_case "without_derivs strips" `Quick
            test_without_derivs_strips_path;
          QCheck_alcotest.to_alcotest prop_derivs_match_fd_random;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "ion >> ioff" `Quick test_metrics_ordering;
          Alcotest.test_case "polarity magnitudes" `Quick test_metrics_polarity_symmetric_magnitudes;
          Alcotest.test_case "log10 consistency" `Quick test_metrics_log10_ioff_consistent;
          Alcotest.test_case "curve shapes" `Quick test_curve_shapes;
        ] );
      ( "cards",
        [
          Alcotest.test_case "unit conversions" `Quick test_unit_conversions;
          Alcotest.test_case "current density" `Quick test_cards_current_density_sane;
        ] );
      ( "fault-inject",
        [
          Alcotest.test_case "plan deterministic" `Quick
            test_fault_plan_deterministic;
          Alcotest.test_case "plan validates rate" `Quick
            test_fault_plan_validates_rate;
          Alcotest.test_case "raise persists" `Quick
            test_fault_wrap_raise_persistent;
          Alcotest.test_case "nan/inf currents" `Quick test_fault_wrap_nan_inf;
          Alcotest.test_case "parse_spec" `Quick test_fault_parse_spec;
        ] );
    ]
