(* @smoke: a tiny (n=50) device-level Monte Carlo pushed through the
   Vstat_runtime domain pool, so every `dune runtest` (and `dune build
   @smoke`) exercises the OCaml 5 parallel path and its determinism
   contract, not just the serial fallback. *)

let () =
  let vdd = Vstat_device.Cards.vdd_nominal in
  let run jobs =
    Vstat_core.Mc_device.of_vs Vstat_core.Vs_statistical.seed_nmos ~jobs
      ~rng:(Vstat_util.Rng.create ~seed:2026)
      ~n:50 ~w_nm:600.0 ~l_nm:40.0 ~vdd
  in
  let serial = run 1 in
  let parallel = run 4 in
  if
    not
      (serial.idsat = parallel.idsat
      && serial.log10_ioff = parallel.log10_ioff
      && serial.cgg = parallel.cgg)
  then begin
    prerr_endline "smoke: jobs:1 and jobs:4 Monte Carlo samples diverged";
    exit 1
  end;
  let acc, _, _ = Vstat_core.Mc_device.summary parallel in
  if Vstat_runtime.Accum.count acc <> 50 then begin
    prerr_endline "smoke: accumulator lost samples";
    exit 1
  end;
  print_endline
    "smoke: parallel device MC deterministic (n=50, jobs 1 == jobs 4)"
