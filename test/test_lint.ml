(* Golden tests for the vstat_lint static-analysis pass (lib/lint), plus
   the dynamic zero-allocation gate over the circuit engine's transient
   inner loop.

   The fixture corpus under lint_fixtures/ contains, per rule family, both
   positive cases (which must be reported at exactly the pinned file:line)
   and negatives (sorted censuses, explicit comparators, [@vstat.allow]
   suppressions, the [@@@vstat.allow] file floor) which must stay silent.
   An exact set comparison covers both directions: a missed violation and
   a false positive both fail the test. *)

module L = Vstat_lint_core
module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine

let fixture_root = "lint_fixtures"

(* `dune runtest` runs with the test directory as cwd; a bare
   `dune exec test/test_lint.exe` runs from the project root.  Normalize so
   diagnostic paths (and hence the golden strings) agree. *)
let () =
  if
    (not (Sys.file_exists fixture_root))
    && Sys.file_exists (Filename.concat "test" fixture_root)
  then Sys.chdir "test"

let render (d : L.Diagnostic.t) =
  Printf.sprintf "%s:%d %s" d.L.Diagnostic.file d.L.Diagnostic.line
    d.L.Diagnostic.rule

(* Sorted by (file, line): the engine's report order. *)
let expected_golden =
  [
    "lint_fixtures/fx_allowfile.ml:5 float-compare";
    "lint_fixtures/fx_allowfile.ml:7 float-compare";
    "lint_fixtures/fx_determinism.ml:5 determinism-random";
    "lint_fixtures/fx_determinism.ml:7 determinism-random";
    "lint_fixtures/fx_determinism.ml:9 determinism-wallclock";
    "lint_fixtures/fx_determinism.ml:11 determinism-wallclock";
    "lint_fixtures/fx_determinism.ml:13 determinism-hashtbl-order";
    "lint_fixtures/fx_determinism.ml:15 determinism-hashtbl-order";
    "lint_fixtures/fx_determinism.ml:26 determinism-wallclock";
    "lint_fixtures/fx_float_safety.ml:4 float-compare";
    "lint_fixtures/fx_float_safety.ml:6 float-compare";
    "lint_fixtures/fx_float_safety.ml:8 float-compare";
    "lint_fixtures/fx_float_safety.ml:10 float-compare";
    "lint_fixtures/fx_float_safety.ml:12 float-compare";
    "lint_fixtures/fx_hot.ml:3 hot-path";
    "lint_fixtures/fx_hot.ml:5 hot-path";
    "lint_fixtures/fx_hot.ml:7 hot-path";
    "lint_fixtures/fx_hot.ml:9 hot-path";
    "lint_fixtures/fx_hot.ml:12 hot-path";
    "lint_fixtures/fx_hot_array.ml:3 hot-path";
    "lint_fixtures/fx_hot_array.ml:5 hot-path";
    "lint_fixtures/fx_hot_array.ml:7 hot-path";
    "lint_fixtures/fx_hot_array.ml:9 hot-path";
    "lint_fixtures/fx_weighted_hot.ml:4 hot-path";
    "lint_fixtures/fx_weighted_hot.ml:6 hot-path";
    "lint_fixtures/fx_weighted_hot.ml:8 hot-path";
    "lint_fixtures/fx_weighted_hot.ml:11 hot-path";
    "lint_fixtures/lib/circuit/fx_exn.ml:5 exn-discipline";
    "lint_fixtures/lib/circuit/fx_exn.ml:7 exn-discipline";
    "lint_fixtures/lib/circuit/fx_exn.ml:9 exn-discipline";
    "lint_fixtures/lib/linalg/fx_failwith.ml:6 exn-discipline";
  ]

let test_golden () =
  let cfg = L.Engine.default_config () in
  let files, diags = L.Engine.run cfg [ fixture_root ] in
  Alcotest.(check int) "fixture files scanned" 10 files;
  let parse_errors, rest =
    List.partition (fun d -> d.L.Diagnostic.rule = "parse-error") diags
  in
  (match parse_errors with
  | [ d ] ->
    Alcotest.(check string)
      "parse-error pinned to the unparseable fixture"
      "lint_fixtures/fx_parse_error.ml" d.L.Diagnostic.file
  | ds ->
    Alcotest.failf "expected exactly one parse-error diagnostic, got %d"
      (List.length ds));
  Alcotest.(check (list string))
    "golden diagnostics" expected_golden (List.map render rest)

(* A line-pinned lint.allow entry sanctions exactly one of the two
   violations in fx_allowfile.ml. *)
let test_allow_line_pinned () =
  let allow =
    L.Allowlist.of_string ~file:"<synthetic>"
      "# synthetic allowlist for the test\n\
       float-compare:lint_fixtures/fx_allowfile.ml:5\n"
  in
  let cfg = L.Engine.default_config ~allow () in
  let diags = L.Engine.lint_file cfg "lint_fixtures/fx_allowfile.ml" in
  Alcotest.(check (list string))
    "only the unpinned line remains"
    [ "lint_fixtures/fx_allowfile.ml:7 float-compare" ]
    (List.map render diags)

(* A whole-file entry matches by trailing '/'-separated components, so the
   short form "fx_allowfile.ml" must cover the scanned relative path. *)
let test_allow_whole_file () =
  let allow =
    L.Allowlist.of_string ~file:"<synthetic>" "float-compare:fx_allowfile.ml\n"
  in
  let cfg = L.Engine.default_config ~allow () in
  let diags = L.Engine.lint_file cfg "lint_fixtures/fx_allowfile.ml" in
  Alcotest.(check (list string)) "whole file sanctioned" []
    (List.map render diags)

(* Every rule id exercised by the fixtures must exist in the registry that
   --list-rules and DESIGN.md document. *)
let test_rules_registry () =
  let ids = List.map (fun r -> r.L.Rules.id) L.Rules.all in
  List.iter
    (fun must ->
      Alcotest.(check bool) (must ^ " registered") true (List.mem must ids))
    [
      "determinism-random"; "determinism-hashtbl-order";
      "determinism-wallclock"; "float-compare"; "exn-discipline"; "hot-path";
      "parse-error";
    ]

(* --- the dynamic allocation gate --------------------------------------- *)

(* The [@vstat.hot] lint rules are the static half of the engine's
   zero-allocation contract; this test is the dynamic half.  It integrates
   a source-free RC circuit (independent sources are the documented
   exception: an out-of-line Waveform.value call boxes its float argument
   and result per source per iteration) twice with different step counts
   and requires the minor-heap allocation of the two runs to be *exactly*
   equal: the fixed per-call costs (the returned raw_trace buffers, boxed
   float arguments of the transient_raw call itself) cancel, so any
   per-step or per-Newton-iteration allocation would surface as a nonzero
   difference over the 100 extra accepted steps.  Both runs stay under the
   256-point initial trace capacity so no buffer growth occurs. *)
let test_zero_alloc_transient () =
  let net = N.create () in
  let gnd = N.ground net in
  let n1 = N.node net "n1" in
  N.resistor net "r1" ~a:n1 ~b:gnd ~ohms:1e3;
  N.capacitor net "c1" ~a:n1 ~b:gnd ~farads:1e-15;
  let eng = E.compile net in
  let dt = 1e-12 in
  let run steps =
    let r = E.transient_raw eng ~tstop:(Float.of_int steps *. dt) ~dt in
    if r.E.raw_len <> steps + 1 then
      Alcotest.failf "expected %d trace points, got %d" (steps + 1)
        r.E.raw_len
  in
  (* Warm-up: one-time costs (first-solve paths, trace buffer sizing). *)
  run 50;
  let m0 = Gc.minor_words () in
  run 100;
  let m1 = Gc.minor_words () in
  run 200;
  let m2 = Gc.minor_words () in
  let first = m1 -. m0 and second = m2 -. m1 in
  Alcotest.(check (float 0.0))
    "minor words for 100 extra transient steps" 0.0 (second -. first)

(* The sparse counterpart: one KLU-style numeric iteration
   (clear / stamp by precomputed slots / factor / solve) must allocate
   nothing, same methodology as the transient gate above — the 100 extra
   iterations of the second run must cost exactly zero extra minor words.
   The pattern is a periodic tridiagonal (wrap-around couplings force real
   fill-in, so the factor loop runs through fill slots too). *)
let test_zero_alloc_sparse () =
  let module S = Vstat_linalg.Sparse in
  let n = 12 in
  let entries =
    Array.init (3 * n) (fun k ->
        let i = k / 3 in
        match k mod 3 with
        | 0 -> (i, i)
        | 1 -> (i, (i + 1) mod n)
        | _ -> ((i + 1) mod n, i))
  in
  let sym = S.analyze ~n ~entries in
  let num = S.create_numeric sym in
  let diag = Array.init n (fun i -> S.slot sym ~row:i ~col:i) in
  let upper = Array.init n (fun i -> S.slot sym ~row:i ~col:((i + 1) mod n)) in
  let lower = Array.init n (fun i -> S.slot sym ~row:((i + 1) mod n) ~col:i) in
  let rhs = Array.make n 0.0 in
  let vals = S.values num in
  let run iters =
    for _ = 1 to iters do
      S.clear num;
      for i = 0 to n - 1 do
        vals.(diag.(i)) <- 4.0;
        vals.(upper.(i)) <- -1.0;
        vals.(lower.(i)) <- -1.0
      done;
      S.factor num;
      Array.fill rhs 0 n 1.0;
      S.solve_in_place num rhs
    done
  in
  run 50;
  let m0 = Gc.minor_words () in
  run 100;
  let m1 = Gc.minor_words () in
  run 200;
  let m2 = Gc.minor_words () in
  let first = m1 -. m0 and second = m2 -. m1 in
  Alcotest.(check (float 0.0))
    "minor words for 100 extra sparse factor/solve iterations" 0.0
    (second -. first)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "golden corpus" `Quick test_golden;
          Alcotest.test_case "allowlist line-pinned" `Quick
            test_allow_line_pinned;
          Alcotest.test_case "allowlist whole-file suffix" `Quick
            test_allow_whole_file;
          Alcotest.test_case "rule registry" `Quick test_rules_registry;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "transient inner loop allocates zero" `Quick
            test_zero_alloc_transient;
          Alcotest.test_case "sparse factor/solve loop allocates zero" `Quick
            test_zero_alloc_sparse;
        ] );
    ]
