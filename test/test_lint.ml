(* Golden tests for the vstat_lint static-analysis pass (lib/lint), plus
   the dynamic zero-allocation gate over the circuit engine's transient
   inner loop.

   The fixture corpus under lint_fixtures/ contains, per rule family, both
   positive cases (which must be reported at exactly the pinned file:line)
   and negatives (sorted censuses, explicit comparators, [@vstat.allow]
   suppressions, the [@@@vstat.allow] file floor) which must stay silent.
   An exact set comparison covers both directions: a missed violation and
   a false positive both fail the test. *)

module L = Vstat_lint_core
module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine

let fixture_root = "lint_fixtures"

(* `dune runtest` runs with the test directory as cwd; a bare
   `dune exec test/test_lint.exe` runs from the project root.  Normalize so
   diagnostic paths (and hence the golden strings) agree. *)
let () =
  if
    (not (Sys.file_exists fixture_root))
    && Sys.file_exists (Filename.concat "test" fixture_root)
  then Sys.chdir "test"

let render (d : L.Diagnostic.t) =
  Printf.sprintf "%s:%d %s" d.L.Diagnostic.file d.L.Diagnostic.line
    d.L.Diagnostic.rule

(* Sorted by (file, line): the engine's report order. *)
let expected_golden =
  [
    "lint_fixtures/fx_allowfile.ml:5 float-compare";
    "lint_fixtures/fx_allowfile.ml:7 float-compare";
    "lint_fixtures/fx_determinism.ml:5 determinism-random";
    "lint_fixtures/fx_determinism.ml:7 determinism-random";
    "lint_fixtures/fx_determinism.ml:9 determinism-wallclock";
    "lint_fixtures/fx_determinism.ml:11 determinism-wallclock";
    "lint_fixtures/fx_determinism.ml:13 determinism-hashtbl-order";
    "lint_fixtures/fx_determinism.ml:15 determinism-hashtbl-order";
    "lint_fixtures/fx_determinism.ml:26 determinism-wallclock";
    "lint_fixtures/fx_float_safety.ml:4 float-compare";
    "lint_fixtures/fx_float_safety.ml:6 float-compare";
    "lint_fixtures/fx_float_safety.ml:8 float-compare";
    "lint_fixtures/fx_float_safety.ml:10 float-compare";
    "lint_fixtures/fx_float_safety.ml:12 float-compare";
    "lint_fixtures/fx_hot.ml:3 hot-path";
    "lint_fixtures/fx_hot.ml:5 hot-path";
    "lint_fixtures/fx_hot.ml:7 hot-path";
    "lint_fixtures/fx_hot.ml:9 hot-path";
    "lint_fixtures/fx_hot.ml:12 hot-path";
    "lint_fixtures/fx_hot_array.ml:3 hot-path";
    "lint_fixtures/fx_hot_array.ml:5 hot-path";
    "lint_fixtures/fx_hot_array.ml:7 hot-path";
    "lint_fixtures/fx_hot_array.ml:9 hot-path";
    "lint_fixtures/fx_taint_c.ml:4 determinism-random";
    "lint_fixtures/fx_weighted_hot.ml:4 hot-path";
    "lint_fixtures/fx_weighted_hot.ml:6 hot-path";
    "lint_fixtures/fx_weighted_hot.ml:8 hot-path";
    "lint_fixtures/fx_weighted_hot.ml:11 hot-path";
    "lint_fixtures/lib/circuit/fx_exn.ml:5 exn-discipline";
    "lint_fixtures/lib/circuit/fx_exn.ml:7 exn-discipline";
    "lint_fixtures/lib/circuit/fx_exn.ml:9 exn-discipline";
    "lint_fixtures/lib/linalg/fx_failwith.ml:6 exn-discipline";
  ]

let test_golden () =
  let cfg = L.Engine.default_config () in
  let files, diags = L.Engine.run cfg [ fixture_root ] in
  Alcotest.(check int) "fixture files scanned" 17 files;
  let parse_errors, rest =
    List.partition (fun d -> d.L.Diagnostic.rule = "parse-error") diags
  in
  (match parse_errors with
  | [ d ] ->
    Alcotest.(check string)
      "parse-error pinned to the unparseable fixture"
      "lint_fixtures/fx_parse_error.ml" d.L.Diagnostic.file
  | ds ->
    Alcotest.failf "expected exactly one parse-error diagnostic, got %d"
      (List.length ds));
  Alcotest.(check (list string))
    "golden diagnostics" expected_golden (List.map render rest)

(* A line-pinned lint.allow entry sanctions exactly one of the two
   violations in fx_allowfile.ml. *)
let test_allow_line_pinned () =
  let allow =
    L.Allowlist.of_string ~file:"<synthetic>"
      "# synthetic allowlist for the test\n\
       float-compare:lint_fixtures/fx_allowfile.ml:5\n"
  in
  let cfg = L.Engine.default_config ~allow () in
  let diags = L.Engine.lint_file cfg "lint_fixtures/fx_allowfile.ml" in
  Alcotest.(check (list string))
    "only the unpinned line remains"
    [ "lint_fixtures/fx_allowfile.ml:7 float-compare" ]
    (List.map render diags)

(* A whole-file entry matches by trailing '/'-separated components, so the
   short form "fx_allowfile.ml" must cover the scanned relative path. *)
let test_allow_whole_file () =
  let allow =
    L.Allowlist.of_string ~file:"<synthetic>" "float-compare:fx_allowfile.ml\n"
  in
  let cfg = L.Engine.default_config ~allow () in
  let diags = L.Engine.lint_file cfg "lint_fixtures/fx_allowfile.ml" in
  Alcotest.(check (list string)) "whole file sanctioned" []
    (List.map render diags)

(* Every rule id exercised by the fixtures must exist in the registry that
   --list-rules and DESIGN.md document. *)
let test_rules_registry () =
  let ids = List.map (fun r -> r.L.Rules.id) L.Rules.all in
  List.iter
    (fun must ->
      Alcotest.(check bool) (must ^ " registered") true (List.mem must ids))
    [
      "determinism-random"; "determinism-hashtbl-order";
      "determinism-wallclock"; "float-compare"; "exn-discipline"; "hot-path";
      "parse-error"; "determinism-taint"; "domain-safety";
    ]


(* --- the deep (cross-module) pass --------------------------------------- *)

let render_trace (d : L.Diagnostic.t) =
  render d
  ^
  match d.L.Diagnostic.trace with
  | [] -> ""
  | steps -> " | " ^ String.concat " \xe2\x86\x92 " steps

(* The two deep rules, pinned exactly: one determinism-taint finding at the
   [@vstat.entry] binding with the full 3-module call path down to the
   Random.float, one domain-safety finding at the unguarded access with the
   full path from the Domain.spawn root.  The sanctioned entry, the
   Mutex.protect'd access and the file-floored fixture must all stay
   silent. *)
let test_deep_golden () =
  let cfg = L.Engine.default_config () in
  let r = L.Engine.run_deep cfg [ fixture_root ] in
  Alcotest.(check int) "fixture files" 17 r.L.Engine.deep_files;
  let deep_only =
    List.filter
      (fun d ->
        d.L.Diagnostic.rule = "determinism-taint"
        || d.L.Diagnostic.rule = "domain-safety")
      r.L.Engine.deep_diags
  in
  Alcotest.(check (list string))
    "deep findings with full call paths"
    [
      "lint_fixtures/fx_domain_state.ml:8 domain-safety | \
       lint_fixtures/fx_domain_root.ml:4 (domain root 'run') \xe2\x86\x92 \
       lint_fixtures/fx_domain_root.ml:5 \xe2\x86\x92 \
       lint_fixtures/fx_domain_mid.ml:3 \xe2\x86\x92 \
       lint_fixtures/fx_domain_state.ml:8";
      "lint_fixtures/fx_taint_a.ml:6 determinism-taint | \
       lint_fixtures/fx_taint_a.ml:6 \xe2\x86\x92 \
       lint_fixtures/fx_taint_b.ml:3 \xe2\x86\x92 \
       Random.float (lint_fixtures/fx_taint_c.ml:4)";
    ]
    (List.map render_trace deep_only)

(* Phase 1 fans out across the runtime pool; the report (including traces,
   which depend on BFS tie-breaking) must be identical at any jobs
   count. *)
let test_deep_jobs_invariance () =
  let cfg = L.Engine.default_config () in
  let a = L.Engine.run_deep ~jobs:1 cfg [ fixture_root ] in
  let b = L.Engine.run_deep ~jobs:4 cfg [ fixture_root ] in
  Alcotest.(check (list string))
    "jobs:1 == jobs:4 diagnostics"
    (List.map render_trace a.L.Engine.deep_diags)
    (List.map render_trace b.L.Engine.deep_diags);
  Alcotest.(check int) "same file count" a.L.Engine.deep_files
    b.L.Engine.deep_files

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Warm-cache incremental re-lint, pinned by counters the same way the
   sparse backend pins its shared symbolic analyses: cold run summarizes
   everything, warm run summarizes nothing, touching one file re-summarizes
   exactly that file. *)
let test_deep_cache_counters () =
  let dir = Filename.temp_dir "vstat_lint_deep" "" in
  let cache = Filename.concat dir "cache" in
  let src = Filename.concat dir "src" in
  Sys.mkdir src 0o755;
  let file n body = write_file (Filename.concat src n) body in
  file "m_one.ml" "let one () = 1\n";
  file "m_two.ml" "let two () = M_one.one () + 1\n";
  file "m_three.ml" "let three () = M_two.two () + 1\n";
  let cfg = L.Engine.default_config () in
  let counters (r : L.Engine.deep_result) =
    (r.L.Engine.deep_rebuilt, r.L.Engine.deep_cached)
  in
  let r1 = L.Engine.run_deep ~cache_dir:cache cfg [ src ] in
  Alcotest.(check (pair int int)) "cold cache: all rebuilt" (3, 0)
    (counters r1);
  let r2 = L.Engine.run_deep ~cache_dir:cache cfg [ src ] in
  Alcotest.(check (pair int int)) "warm cache: all hits" (0, 3) (counters r2);
  file "m_two.ml" "let two () = M_one.one () + 2\n";
  let r3 = L.Engine.run_deep ~cache_dir:cache cfg [ src ] in
  Alcotest.(check (pair int int))
    "stale digest: only the touched file re-summarizes" (1, 2) (counters r3)

(* Deleting a Mutex.protect guard must produce exactly one domain-safety
   finding — through the warm cache, whose stale source digest forces the
   edited file to re-summarize. *)
let test_guard_deletion () =
  let dir = Filename.temp_dir "vstat_lint_guard" "" in
  let cache = Filename.concat dir "cache" in
  let src = Filename.concat dir "src" in
  Sys.mkdir src 0o755;
  write_file
    (Filename.concat src "g_state.ml")
    "let total = ref 0\n\
     let lock = Mutex.create ()\n\
     let bump () = Mutex.protect lock (fun () -> incr total)\n";
  write_file
    (Filename.concat src "g_root.ml")
    "let run () = Domain.join (Domain.spawn (fun () -> G_state.bump ()))\n";
  let cfg = L.Engine.default_config () in
  let deep (r : L.Engine.deep_result) =
    List.filter
      (fun d -> d.L.Diagnostic.rule = "domain-safety")
      r.L.Engine.deep_diags
  in
  let r1 = L.Engine.run_deep ~cache_dir:cache cfg [ src ] in
  Alcotest.(check int) "guarded access: silent" 0 (List.length (deep r1));
  write_file
    (Filename.concat src "g_state.ml")
    "let total = ref 0\n\
     let lock = Mutex.create ()\n\
     let bump () = incr total\n";
  let r2 = L.Engine.run_deep ~cache_dir:cache cfg [ src ] in
  Alcotest.(check int) "stale digest re-summarizes the edited file" 1
    r2.L.Engine.deep_rebuilt;
  match deep r2 with
  | [ d ] ->
    Alcotest.(check string) "finding lands at the unguarded access"
      "g_state.ml:3 domain-safety"
      (Printf.sprintf "%s:%d %s"
         (Filename.basename d.L.Diagnostic.file)
         d.L.Diagnostic.line d.L.Diagnostic.rule);
    Alcotest.(check bool) "trace walks root -> access" true
      (List.length d.L.Diagnostic.trace >= 2)
  | ds ->
    Alcotest.failf "expected exactly one domain-safety finding, got %d"
      (List.length ds)

(* --- summary serialization ---------------------------------------------- *)

module S = L.Summary

let gen_summary =
  let open QCheck.Gen in
  let seg = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let upseg = map String.capitalize_ascii seg in
  let path = list_size (int_range 1 3) (oneof [ seg; upseg ]) in
  (* Free-form fields run the full byte range through String.escaped. *)
  let free = string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 24) in
  let gen_ref =
    map
      (fun ((p, l), (g, a)) ->
        { S.callee = p; rline = abs l; rguarded = g; rallow_ds = a })
      (pair (pair path small_nat) (pair bool bool))
  in
  let gen_nondet =
    map
      (fun ((k, l), w) ->
        let nkind =
          match k mod 3 with
          | 0 -> S.Nd_random
          | 1 -> S.Nd_wallclock
          | _ -> S.Nd_hashtbl
        in
        { S.nkind; nline = abs l; nwhat = w })
      (pair (pair small_nat small_nat) free)
  in
  let gen_func =
    map
      (fun (((n, l), (e, sp, lk)), (at, rs, ns)) ->
        {
          S.fname = n;
          fline = abs l;
          fentry = e;
          fspawner = sp;
          flocks = lk;
          fallow_taint = at;
          refs = rs;
          nondet = ns;
        })
      (pair
         (pair (pair seg small_nat) (triple bool bool bool))
         (triple bool (small_list gen_ref) (small_list gen_nondet)))
  in
  let gen_glob =
    map
      (fun ((n, l), k) -> { S.gname = n; gline = abs l; gkind = k })
      (pair (pair seg small_nat) seg)
  in
  let gen_diag =
    map
      (fun (((r, f), (l, c)), m) ->
        L.Diagnostic.make ~rule:r ~file:f ~line:(abs l) ~col:(abs c) m)
      (pair (pair (pair seg free) (pair small_nat small_nat)) free)
  in
  map
    (fun (((sfile, (sd, ed)), (modname, floors, aliases)), (opens, (gs, fs), ds)) ->
      {
        S.sfile;
        src_digest = abs sd;
        env_digest = abs ed;
        modname;
        floors;
        aliases;
        opens;
        globals = gs;
        funcs = fs;
        diags = ds;
      })
    (pair
       (pair
          (pair free (pair small_nat small_nat))
          (triple upseg (small_list seg) (small_list (pair upseg path))))
       (triple (small_list path)
          (pair (small_list gen_glob) (small_list gen_func))
          (small_list gen_diag)))

(* Round-trip: the summary cache must reproduce every field bit-exactly
   (no floats anywhere, so polymorphic equality is an honest check). *)
let prop_summary_roundtrip =
  QCheck.Test.make ~name:"summary serialize/deserialize round-trip"
    ~count:200
    (QCheck.make gen_summary)
    (fun s ->
      match S.of_string (S.to_string s) with
      | Some s' -> s' = s
      | None -> false)

(* Decoding never raises and rejects malformed input with [None]: a
   corrupt or truncated cache entry silently falls back to
   re-summarization. *)
let test_summary_corrupt () =
  List.iter
    (fun (label, s) ->
      Alcotest.(check bool) label true (S.of_string s = None))
    [
      ("empty", "");
      ("bad magic", "JUNK\nend\n");
      ("truncated (no end)", "VSUM1\nkey\t1\t2\n");
      ("ref outside fn", "VSUM1\nref\t1\t0\t0\tx\nend\n");
      ("non-numeric digest", "VSUM1\nkey\tx\ty\nend\n");
      ("bad escape", "VSUM1\nfile\t\\q\nend\n");
      ("bad bool", "VSUM1\nfn\tf\t1\t2\t0\t0\nend\n");
      ("trailing junk", "VSUM1\nend\njunk\n");
    ]

(* --- report rendering ---------------------------------------------------- *)

(* All JSON funnels through Report.json_string; a pathological message
   (quotes, backslashes, newlines, raw control bytes) must render to
   exactly this valid document. *)
let test_json_escaping () =
  let d =
    L.Diagnostic.make ~rule:"r\"1" ~file:"a\\b.ml" ~line:1 ~col:2
      "quote \" backslash \\ newline \n tab \t cr \r ctl \x01 done"
  in
  Alcotest.(check string) "pathological message"
    "{\"rule\":\"r\\\"1\",\"file\":\"a\\\\b.ml\",\"line\":1,\"col\":2,\"message\":\"quote \\\" backslash \\\\ newline \\n tab \\t cr \\r ctl \\u0001 done\"}"
    (L.Report.diagnostic_json d);
  let with_path =
    L.Diagnostic.make
      ~trace:[ "x.ml:1"; "Random.float (y.ml:2)" ]
      ~rule:"determinism-taint" ~file:"x.ml" ~line:1 ~col:0 "m"
  in
  Alcotest.(check string) "trace renders as a path array"
    "{\"rule\":\"determinism-taint\",\"file\":\"x.ml\",\"line\":1,\"col\":0,\"message\":\"m\",\"path\":[\"x.ml:1\",\"Random.float (y.ml:2)\"]}"
    (L.Report.diagnostic_json with_path)

(* --- the dynamic allocation gate --------------------------------------- *)

(* The [@vstat.hot] lint rules are the static half of the engine's
   zero-allocation contract; this test is the dynamic half.  It integrates
   a source-free RC circuit (independent sources are the documented
   exception: an out-of-line Waveform.value call boxes its float argument
   and result per source per iteration) twice with different step counts
   and requires the minor-heap allocation of the two runs to be *exactly*
   equal: the fixed per-call costs (the returned raw_trace buffers, boxed
   float arguments of the transient_raw call itself) cancel, so any
   per-step or per-Newton-iteration allocation would surface as a nonzero
   difference over the 100 extra accepted steps.  Both runs stay under the
   256-point initial trace capacity so no buffer growth occurs. *)
let test_zero_alloc_transient () =
  let net = N.create () in
  let gnd = N.ground net in
  let n1 = N.node net "n1" in
  N.resistor net "r1" ~a:n1 ~b:gnd ~ohms:1e3;
  N.capacitor net "c1" ~a:n1 ~b:gnd ~farads:1e-15;
  let eng = E.compile net in
  let dt = 1e-12 in
  let run steps =
    let r = E.transient_raw eng ~tstop:(Float.of_int steps *. dt) ~dt in
    if r.E.raw_len <> steps + 1 then
      Alcotest.failf "expected %d trace points, got %d" (steps + 1)
        r.E.raw_len
  in
  (* Warm-up: one-time costs (first-solve paths, trace buffer sizing). *)
  run 50;
  let m0 = Gc.minor_words () in
  run 100;
  let m1 = Gc.minor_words () in
  run 200;
  let m2 = Gc.minor_words () in
  let first = m1 -. m0 and second = m2 -. m1 in
  Alcotest.(check (float 0.0))
    "minor words for 100 extra transient steps" 0.0 (second -. first)

(* The sparse counterpart: one KLU-style numeric iteration
   (clear / stamp by precomputed slots / factor / solve) must allocate
   nothing, same methodology as the transient gate above — the 100 extra
   iterations of the second run must cost exactly zero extra minor words.
   The pattern is a periodic tridiagonal (wrap-around couplings force real
   fill-in, so the factor loop runs through fill slots too). *)
let test_zero_alloc_sparse () =
  let module S = Vstat_linalg.Sparse in
  let n = 12 in
  let entries =
    Array.init (3 * n) (fun k ->
        let i = k / 3 in
        match k mod 3 with
        | 0 -> (i, i)
        | 1 -> (i, (i + 1) mod n)
        | _ -> ((i + 1) mod n, i))
  in
  let sym = S.analyze ~n ~entries in
  let num = S.create_numeric sym in
  let diag = Array.init n (fun i -> S.slot sym ~row:i ~col:i) in
  let upper = Array.init n (fun i -> S.slot sym ~row:i ~col:((i + 1) mod n)) in
  let lower = Array.init n (fun i -> S.slot sym ~row:((i + 1) mod n) ~col:i) in
  let rhs = Array.make n 0.0 in
  let vals = S.values num in
  let run iters =
    for _ = 1 to iters do
      S.clear num;
      for i = 0 to n - 1 do
        vals.(diag.(i)) <- 4.0;
        vals.(upper.(i)) <- -1.0;
        vals.(lower.(i)) <- -1.0
      done;
      S.factor num;
      Array.fill rhs 0 n 1.0;
      S.solve_in_place num rhs
    done
  in
  run 50;
  let m0 = Gc.minor_words () in
  run 100;
  let m1 = Gc.minor_words () in
  run 200;
  let m2 = Gc.minor_words () in
  let first = m1 -. m0 and second = m2 -. m1 in
  Alcotest.(check (float 0.0))
    "minor words for 100 extra sparse factor/solve iterations" 0.0
    (second -. first)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "golden corpus" `Quick test_golden;
          Alcotest.test_case "allowlist line-pinned" `Quick
            test_allow_line_pinned;
          Alcotest.test_case "allowlist whole-file suffix" `Quick
            test_allow_whole_file;
          Alcotest.test_case "rule registry" `Quick test_rules_registry;
        ] );
      ( "deep",
        [
          Alcotest.test_case "deep golden (taint + domain chains)" `Quick
            test_deep_golden;
          Alcotest.test_case "jobs invariance" `Quick
            test_deep_jobs_invariance;
          Alcotest.test_case "summary cache counters" `Quick
            test_deep_cache_counters;
          Alcotest.test_case "guard deletion through warm cache" `Quick
            test_guard_deletion;
        ] );
      ( "serialization",
        [
          QCheck_alcotest.to_alcotest prop_summary_roundtrip;
          Alcotest.test_case "corrupt summaries rejected" `Quick
            test_summary_corrupt;
          Alcotest.test_case "JSON escaping" `Quick test_json_escaping;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "transient inner loop allocates zero" `Quick
            test_zero_alloc_transient;
          Alcotest.test_case "sparse factor/solve loop allocates zero" `Quick
            test_zero_alloc_sparse;
        ] );
    ]
