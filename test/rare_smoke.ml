(* Rare-event smoke: the determinism contract of both estimators on the
   real SRAM yield problem, at a sample count small enough for @runtest.

   Checks, all bit-exact:
   - importance sampling (pilot-aimed mixture proposal) is identical
     between jobs:1 and jobs:4;
   - statistical blockade is identical between jobs:1 and jobs:4;
   - a checkpointed IS run interrupted mid-flight by a deterministic
     deadline and resumed from the snapshot reproduces the uninterrupted
     run exactly.

   The statistical quality of the estimators (coverage of an exact tail,
   bounded weights, interval tightening) is covered by test_rare on an
   analytic problem; cross-validation against a brute-force golden at
   full sample counts runs in `vstat sram-yield` and `bench --rare`. *)

module Y = Vstat_experiments.Exp_sram_yield
module I = Vstat_rare.Importance
module B = Vstat_rare.Blockade
module C = Vstat_runtime.Checkpoint

let bits = Int64.bits_of_float

let failures = ref 0

let check what ok =
  if ok then Printf.printf "  ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "  FAIL: %s\n%!" what
  end

let check_bits what a b =
  check
    (if Int64.equal (bits a) (bits b) then what
     else Printf.sprintf "%s (%h vs %h)" what a b)
    (Int64.equal (bits a) (bits b))

let check_bits_array what a b =
  let same =
    Array.length a = Array.length b
    && Array.for_all2 (fun x y -> Int64.equal (bits x) (bits y)) a b
  in
  check what same

(* Cheap configuration: coarse butterfly sweep, small counts.  pilot_n
   must still clear dim + 2 = 32 rows for the per-lobe fits. *)
let n = 48
let pilot_n = 36
let points = 21
let seed = 7

let identical_importance what (a : I.result) (b : I.result) =
  check_bits (what ^ ": p_hat") a.I.p_hat b.I.p_hat;
  check_bits (what ^ ": ci_lo") a.I.ci_lo b.I.ci_lo;
  check_bits (what ^ ": ci_hi") a.I.ci_hi b.I.ci_hi;
  check_bits (what ^ ": ess") a.I.ess b.I.ess;
  check_bits (what ^ ": sum_weight") a.I.sum_weight b.I.sum_weight;
  check_bits_array (what ^ ": metrics") a.I.metrics b.I.metrics;
  check_bits_array (what ^ ": log_weights") a.I.log_weights b.I.log_weights

(* estimate_is reads its resilience knobs (checkpoint dir, deadline) from
   the Mc_compare ambient defaults — the same channel the CLI flags use —
   so the smoke drives them through the setters and resets after. *)
let with_controls ?checkpoint ?deadline f =
  Vstat_experiments.Mc_compare.set_default_checkpoint checkpoint;
  Vstat_experiments.Mc_compare.set_default_deadline deadline;
  Fun.protect
    ~finally:(fun () ->
      Vstat_experiments.Mc_compare.set_default_checkpoint None;
      Vstat_experiments.Mc_compare.set_default_deadline None)
    f

let () =
  let p = Vstat_core.Pipeline.build ~seed:42 ~mc_per_geometry:300 () in
  let is ?checkpoint ?deadline ~jobs () =
    with_controls ?checkpoint ?deadline (fun () ->
        Y.estimate_is ~jobs ~n ~pilot_n ~points ~seed p)
  in

  Printf.printf "rare_smoke: importance sampling jobs:1 vs jobs:4\n%!";
  let is1 = is ~jobs:1 () in
  let is4 = is ~jobs:4 () in
  identical_importance "is jobs" is1 is4;
  check "is complete" is1.I.complete;

  Printf.printf "rare_smoke: blockade jobs:1 vs jobs:4\n%!";
  let bl jobs = Y.estimate_blockade ~jobs ~n ~pilot_n ~points ~seed p in
  let b1 = bl 1 in
  let b4 = bl 4 in
  check_bits "blockade: p_hat" b1.B.p_hat b4.B.p_hat;
  check_bits "blockade: ci_lo" b1.B.ci_lo b4.B.ci_lo;
  check_bits "blockade: ci_hi" b1.B.ci_hi b4.B.ci_hi;
  check_bits "blockade: cutoff" b1.B.cutoff b4.B.cutoff;
  check "blockade: n_simulated" (b1.B.n_simulated = b4.B.n_simulated);
  check_bits_array "blockade: classifier coef"
    b1.B.classifier.Vstat_rare.Classifier.coef
    b4.B.classifier.Vstat_rare.Classifier.coef;

  Printf.printf "rare_smoke: checkpointed IS interrupt + resume\n%!";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vstat_rare_smoke_%d" (Unix.getpid ()))
  in
  (* The deadline is polled once per completed sample; cutting after the
     pilot (36 samples) plus part of the main phase leaves a partial
     main-phase snapshot to resume from. *)
  let calls = ref 0 in
  let cut () =
    incr calls;
    !calls > pilot_n + 20
  in
  let partial =
    is ~checkpoint:(C.settings ~every:8 dir) ~deadline:cut ~jobs:1 ()
  in
  check "interrupted mid-main-phase" (not partial.I.complete);
  let resumed =
    is ~checkpoint:(C.settings ~every:8 ~resume:true dir) ~jobs:4 ()
  in
  check "resume completes" resumed.I.complete;
  identical_importance "resumed = uninterrupted" is1 resumed;

  if !failures > 0 then begin
    Printf.printf "rare_smoke: %d check(s) FAILED\n" !failures;
    exit 1
  end;
  Printf.printf "rare_smoke: all checks passed\n"
