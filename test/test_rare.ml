(* Unit tests for the Vstat_rare rare-event engine: weighted accumulator
   round-trips, exact likelihood ratios, classifier recovery, and the
   estimator contracts (unbiasedness against an analytic tail, bounded
   defensive-mixture weights, bit-identity across jobs counts and across
   interrupt + resume).  Everything here runs on a cheap analytic linear
   problem — the SRAM workload is exercised by test_experiments and the
   rare_smoke binary. *)

module W = Vstat_rare.Wacc
module P = Vstat_rare.Proposal
module Pb = Vstat_rare.Problem
module Cl = Vstat_rare.Classifier
module I = Vstat_rare.Importance
module B = Vstat_rare.Blockade
module C = Vstat_runtime.Checkpoint
module D = Vstat_stats.Descriptive
module Rng = Vstat_util.Rng

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let bits = Int64.bits_of_float

let check_bits what a b =
  if not (Int64.equal (bits a) (bits b)) then
    Alcotest.failf "%s: %h vs %h" what a b

let check_bits_array what a b =
  Alcotest.(check int) (what ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.(i))) then
        Alcotest.failf "%s: sample %d differs: %h vs %h" what i x b.(i))
    a

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vstat_rare_test_%d_%d" (Unix.getpid ()) !counter)

(* Analytic linear problem: metric = c . z under the standard normal, so
   p(metric < t) = Phi(t / |c|) exactly. *)
let coef = [| 0.8; -0.5; 0.3; 0.1 |]
let dim = Array.length coef
let norm = sqrt (Array.fold_left (fun acc c -> acc +. (c *. c)) 0.0 coef)
let threshold = -2.5

let dot z =
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (c *. z.(i))) coef;
  !acc

let linear_problem =
  Pb.create ~label:"lin" ~dim
    ~simulate:(fun ~attempt:_ z -> dot z)
    ~tail:Pb.Lower ~threshold

let exact_p = Vstat_util.Special.normal_cdf (threshold /. norm)

(* The Lower-tail design point: the closest point of {c.z = t} to the
   origin, where the optimal mean shift lives. *)
let design_point =
  Array.map (fun c -> c *. threshold /. (norm *. norm)) coef

let aimed_proposal =
  P.mixture ~means:[| Array.make dim 0.0; design_point |] ()

(* --- Wacc --------------------------------------------------------------- *)

let test_wacc_dump_restore () =
  let w = W.create () in
  List.iter
    (fun (wt, x) -> W.add w ~w:wt x)
    [ (1.0, 3.0); (0.5, -2.0); (2.5, 7.0); (0.0, 100.0) ];
  let w' = W.restore (W.dump w) in
  Alcotest.(check int) "count" (W.count w) (W.count w');
  check_bits "sum_weights" (W.sum_weights w) (W.sum_weights w');
  check_bits "sum_sq" (W.sum_sq_weights w) (W.sum_sq_weights w');
  check_bits "mean" (W.mean w) (W.mean w');
  check_bits "variance" (W.variance w) (W.variance w');
  check_bits "max_weight" (W.max_weight w) (W.max_weight w');
  match W.restore [| 1.0 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_wacc_matches_descriptive () =
  let xs = [| 2.0; 4.0; 4.0; 5.0; 7.0; 9.0 |] in
  let ws = [| 1.0; 2.0; 0.5; 1.5; 3.0; 0.25 |] in
  let w = W.create () in
  Array.iteri (fun i x -> W.add w ~w:ws.(i) x) xs;
  check_float ~eps:1e-12 "mean" (D.weighted_mean xs ~w:ws) (W.mean w);
  check_float ~eps:1e-12 "variance"
    (D.weighted_variance xs ~w:ws)
    (W.variance w);
  check_float ~eps:1e-12 "ess" (D.effective_sample_size ws) (W.ess w);
  check_float ~eps:1e-12 "max weight" 3.0 (W.max_weight w)

let test_wacc_merge () =
  let xs = Array.init 20 (fun i -> Float.of_int i *. 0.7) in
  let ws = Array.init 20 (fun i -> 0.1 +. Float.of_int (i mod 5)) in
  let whole = W.create () and left = W.create () and right = W.create () in
  Array.iteri
    (fun i x ->
      W.add whole ~w:ws.(i) x;
      W.add (if i < 11 then left else right) ~w:ws.(i) x)
    xs;
  let merged = W.merge left right in
  Alcotest.(check int) "count" (W.count whole) (W.count merged);
  check_float ~eps:1e-12 "mean" (W.mean whole) (W.mean merged);
  check_float ~eps:1e-9 "variance" (W.variance whole) (W.variance merged);
  check_float ~eps:1e-12 "ess" (W.ess whole) (W.ess merged)

(* --- Proposal ----------------------------------------------------------- *)

let test_standard_weight_is_exactly_zero () =
  let p = P.standard ~dim in
  Alcotest.(check bool) "is_standard" true (P.is_standard p);
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 50 do
    let z = P.draw p rng in
    check_bits "log weight" 0.0 (P.log_weight p z)
  done

let test_shifted_weight_analytic () =
  (* 1-D mean shift m at scale 1: log w(z) = m^2/2 - m z. *)
  let m = 1.7 in
  let p = P.mean_shifted ~mean:[| m |] () in
  List.iter
    (fun z ->
      check_float ~eps:1e-12
        (Printf.sprintf "log LR at %g" z)
        ((0.5 *. m *. m) -. (m *. z))
        (P.log_weight p [| z |]))
    [ -2.0; -0.3; 0.0; 1.1; 4.5 ]

let test_defensive_mixture_weight_bounded () =
  (* A mixture containing the nominal component bounds every weight by
     the component count. *)
  let k = Float.of_int (P.components aimed_proposal) in
  let rng = Rng.create ~seed:12 in
  for _ = 1 to 200 do
    let z = P.draw aimed_proposal rng in
    let w = exp (P.log_weight aimed_proposal z) in
    Alcotest.(check bool) "w <= K" true (w <= k +. 1e-12)
  done

let test_draw_deterministic_and_budgeted () =
  (* Same substream, same draw. *)
  let z1 = P.draw aimed_proposal (Rng.substream ~seed:5 ~index:3) in
  let z2 = P.draw aimed_proposal (Rng.substream ~seed:5 ~index:3) in
  check_bits_array "substream draw" z1 z2;
  (* A K-component mixture consumes exactly one bounded int plus dim
     gaussians — the fixed variate budget the determinism contract needs. *)
  let a = Rng.substream ~seed:6 ~index:1 in
  let b = Rng.substream ~seed:6 ~index:1 in
  ignore (P.draw aimed_proposal a);
  ignore (Rng.int b ~bound:(P.components aimed_proposal));
  for _ = 1 to dim do
    ignore (Rng.gaussian b)
  done;
  check_bits "stream position after draw" (Rng.gaussian a) (Rng.gaussian b)

let test_mixture_rejects_bad_means () =
  (match P.mixture ~means:[||] () with
  | _ -> Alcotest.fail "expected Invalid_argument (no components)"
  | exception Invalid_argument _ -> ());
  match P.mixture ~means:[| [| 0.0; 0.0 |]; [| 1.0 |] |] () with
  | _ -> Alcotest.fail "expected Invalid_argument (ragged)"
  | exception Invalid_argument _ -> ()

(* --- Problem / Classifier ----------------------------------------------- *)

let test_problem_fails_strict () =
  Alcotest.(check bool) "below fails" true
    (Pb.fails linear_problem (threshold -. 1e-9));
  Alcotest.(check bool) "at threshold safe" false
    (Pb.fails linear_problem threshold);
  Alcotest.(check bool) "nan safe" false (Pb.fails linear_problem Float.nan)

let test_classifier_recovers_linear () =
  let rng = Rng.create ~seed:13 in
  let zs =
    Array.init 25 (fun _ -> Array.init 3 (fun _ -> Rng.gaussian rng))
  in
  let metrics =
    Array.map (fun z -> 2.0 +. (3.0 *. z.(0)) -. z.(1)) zs
  in
  let c = Cl.fit ~zs ~metrics in
  check_float ~eps:1e-8 "intercept" 2.0 c.Cl.intercept;
  check_float ~eps:1e-8 "coef0" 3.0 c.Cl.coef.(0);
  check_float ~eps:1e-8 "coef1" (-1.0) c.Cl.coef.(1);
  check_float ~eps:1e-8 "coef2" 0.0 c.Cl.coef.(2);
  check_float ~eps:1e-6 "residual" 0.0 (Cl.residual_std c ~zs ~metrics);
  check_float ~eps:1e-8 "predict" 2.0 (Cl.predict c [| 0.0; 0.0; 5.0 |])

(* --- Importance --------------------------------------------------------- *)

let test_standard_estimate_covers_exact () =
  let r =
    I.estimate
      ~proposal:(P.standard ~dim)
      ~problem:linear_problem
      ~rng:(Rng.create ~seed:21)
      ~n:4000 ()
  in
  Alcotest.(check bool) "complete" true r.I.complete;
  (* Standard proposal: every weight is exactly 1. *)
  Array.iter (fun lw -> check_bits "log weight" 0.0 lw) r.I.log_weights;
  check_bits "sum weight = n" (Float.of_int r.I.n) r.I.sum_weight;
  check_float ~eps:1e-12 "ess = n" (Float.of_int r.I.n) r.I.ess;
  Alcotest.(check bool)
    (Printf.sprintf "CI [%g, %g] covers exact %g" r.I.ci_lo r.I.ci_hi exact_p)
    true
    (r.I.ci_lo <= exact_p && exact_p <= r.I.ci_hi)

let test_aimed_estimate_is_tighter () =
  let plain =
    I.estimate
      ~proposal:(P.standard ~dim)
      ~problem:linear_problem
      ~rng:(Rng.create ~seed:21)
      ~n:4000 ()
  in
  let is =
    I.estimate ~proposal:aimed_proposal ~problem:linear_problem
      ~rng:(Rng.create ~seed:22)
      ~n:1000 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "IS CI [%g, %g] covers exact %g" is.I.ci_lo is.I.ci_hi
       exact_p)
    true
    (is.I.ci_lo <= exact_p && exact_p <= is.I.ci_hi);
  Alcotest.(check bool) "weights bounded by K" true (is.I.max_weight <= 2.0);
  let width r = r.I.ci_hi -. r.I.ci_lo in
  Alcotest.(check bool) "4x fewer samples, tighter interval" true
    (width is < width plain);
  Alcotest.(check bool) "mc-equivalent speedup > 5x" true
    (I.mc_equivalent_samples is /. 1000.0 > 5.0)

let importance_result ~jobs ~checkpoint:ck ?deadline () =
  I.estimate ~jobs ?checkpoint:ck ?deadline ~proposal:aimed_proposal
    ~problem:linear_problem
    ~rng:(Rng.create ~seed:23)
    ~n:400 ()

let check_importance_identical what (a : I.result) (b : I.result) =
  check_bits (what ^ " p_hat") a.I.p_hat b.I.p_hat;
  check_bits (what ^ " ci_lo") a.I.ci_lo b.I.ci_lo;
  check_bits (what ^ " ci_hi") a.I.ci_hi b.I.ci_hi;
  check_bits (what ^ " sn_p_hat") a.I.sn_p_hat b.I.sn_p_hat;
  check_bits (what ^ " ess") a.I.ess b.I.ess;
  check_bits (what ^ " sum_weight") a.I.sum_weight b.I.sum_weight;
  check_bits (what ^ " max_weight") a.I.max_weight b.I.max_weight;
  check_bits_array (what ^ " metrics") a.I.metrics b.I.metrics;
  check_bits_array (what ^ " log_weights") a.I.log_weights b.I.log_weights

let test_importance_jobs_identity () =
  let r1 = importance_result ~jobs:1 ~checkpoint:None () in
  let r4 = importance_result ~jobs:4 ~checkpoint:None () in
  check_importance_identical "jobs1=jobs4" r1 r4

let test_importance_resume_identity () =
  let reference = importance_result ~jobs:1 ~checkpoint:None () in
  let dir = fresh_dir () in
  (* Cut the checkpointed run mid-flight with a deterministic deadline. *)
  let calls = ref 0 in
  let cut () =
    incr calls;
    !calls > 120
  in
  let partial =
    importance_result ~jobs:1
      ~checkpoint:(Some (C.settings ~every:25 dir))
      ~deadline:cut ()
  in
  Alcotest.(check bool) "interrupted" true (not partial.I.complete);
  Alcotest.(check bool) "partial" true (partial.I.n < 400 && partial.I.n > 0);
  let resumed =
    importance_result ~jobs:4
      ~checkpoint:(Some (C.settings ~every:25 ~resume:true dir))
      ()
  in
  Alcotest.(check bool) "resume completes" true resumed.I.complete;
  check_importance_identical "resumed = uninterrupted" reference resumed

(* --- Blockade ----------------------------------------------------------- *)

let blockade_result ~jobs () =
  B.estimate ~jobs ~problem:linear_problem
    ~rng:(Rng.create ~seed:31)
    ~n:3000 ()

let test_blockade_covers_exact () =
  let r = blockade_result ~jobs:1 () in
  Alcotest.(check bool) "complete" true r.B.complete;
  Alcotest.(check bool)
    (Printf.sprintf "CI [%g, %g] covers exact %g" r.B.ci_lo r.B.ci_hi exact_p)
    true
    (r.B.ci_lo <= exact_p && exact_p <= r.B.ci_hi);
  Alcotest.(check bool) "simulates a strict subset" true
    (r.B.n_simulated < r.B.n);
  Alcotest.(check bool) "simulation fraction < 0.5" true
    (B.simulation_fraction r < 0.5)

let test_blockade_jobs_identity () =
  let r1 = blockade_result ~jobs:1 () in
  let r4 = blockade_result ~jobs:4 () in
  check_bits "p_hat" r1.B.p_hat r4.B.p_hat;
  check_bits "ci_lo" r1.B.ci_lo r4.B.ci_lo;
  check_bits "ci_hi" r1.B.ci_hi r4.B.ci_hi;
  check_bits "cutoff" r1.B.cutoff r4.B.cutoff;
  check_bits "residual" r1.B.residual_std r4.B.residual_std;
  Alcotest.(check int) "n_simulated" r1.B.n_simulated r4.B.n_simulated;
  Alcotest.(check int) "n_hits" r1.B.n_hits r4.B.n_hits;
  check_bits_array "classifier coef" r1.B.classifier.Cl.coef
    r4.B.classifier.Cl.coef

let () =
  Alcotest.run "vstat_rare"
    [
      ( "wacc",
        [
          Alcotest.test_case "dump/restore" `Quick test_wacc_dump_restore;
          Alcotest.test_case "matches descriptive" `Quick
            test_wacc_matches_descriptive;
          Alcotest.test_case "merge" `Quick test_wacc_merge;
        ] );
      ( "proposal",
        [
          Alcotest.test_case "standard weight 0" `Quick
            test_standard_weight_is_exactly_zero;
          Alcotest.test_case "shifted LR analytic" `Quick
            test_shifted_weight_analytic;
          Alcotest.test_case "defensive bound" `Quick
            test_defensive_mixture_weight_bounded;
          Alcotest.test_case "draw deterministic" `Quick
            test_draw_deterministic_and_budgeted;
          Alcotest.test_case "bad means rejected" `Quick
            test_mixture_rejects_bad_means;
        ] );
      ( "problem",
        [
          Alcotest.test_case "fails strict" `Quick test_problem_fails_strict;
          Alcotest.test_case "classifier recovery" `Quick
            test_classifier_recovers_linear;
        ] );
      ( "importance",
        [
          Alcotest.test_case "standard covers exact" `Quick
            test_standard_estimate_covers_exact;
          Alcotest.test_case "aimed is tighter" `Quick
            test_aimed_estimate_is_tighter;
          Alcotest.test_case "jobs bit-identity" `Quick
            test_importance_jobs_identity;
          Alcotest.test_case "resume bit-identity" `Quick
            test_importance_resume_identity;
        ] );
      ( "blockade",
        [
          Alcotest.test_case "covers exact" `Quick test_blockade_covers_exact;
          Alcotest.test_case "jobs bit-identity" `Quick
            test_blockade_jobs_identity;
        ] );
    ]
