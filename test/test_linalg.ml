(* Unit and property tests for Vstat_linalg. *)

module M = Vstat_linalg.Matrix
module Lu = Vstat_linalg.Lu
module Qr = Vstat_linalg.Qr
module Nnls = Vstat_linalg.Nnls
module Eigen = Vstat_linalg.Eigen_sym
module Vec = Vstat_linalg.Vec

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Matrix --- *)

let test_create_zero () =
  let m = M.create ~rows:2 ~cols:3 in
  Alcotest.(check int) "rows" 2 (M.rows m);
  Alcotest.(check int) "cols" 3 (M.cols m);
  check_float "zero" 0.0 (M.get m 1 2)

let test_init_get_set () =
  let m = M.init ~rows:3 ~cols:3 ~f:(fun i j -> Float.of_int ((10 * i) + j)) in
  check_float "get" 21.0 (M.get m 2 1);
  M.set m 2 1 5.0;
  check_float "set" 5.0 (M.get m 2 1);
  M.add_to m 2 1 1.5;
  check_float "add_to" 6.5 (M.get m 2 1)

let test_identity_mul () =
  let a = M.init ~rows:3 ~cols:3 ~f:(fun i j -> Float.of_int (i + (2 * j))) in
  Alcotest.(check bool) "I*A = A" true (M.equal (M.mul (M.identity 3) a) a);
  Alcotest.(check bool) "A*I = A" true (M.equal (M.mul a (M.identity 3)) a)

let test_transpose () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let t = M.transpose a in
  Alcotest.(check int) "rows" 2 (M.rows t);
  check_float "entry" 6.0 (M.get t 1 2)

let test_mul_vec () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = M.mul_vec a [| 1.0; 1.0 |] in
  check_float "row0" 3.0 y.(0);
  check_float "row1" 7.0 y.(1)

let test_of_rows_ragged () =
  match M.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_add_sub_scale () =
  let a = M.of_rows [| [| 1.0; 2.0 |] |] in
  let b = M.of_rows [| [| 3.0; 5.0 |] |] in
  check_float "add" 7.0 (M.get (M.add a b) 0 1);
  check_float "sub" (-2.0) (M.get (M.sub a b) 0 0);
  check_float "scale" 4.0 (M.get (M.scale 2.0 a) 0 1);
  check_float "max_abs" 5.0 (M.max_abs b)

(* --- Lu --- *)

let test_lu_solve_known () =
  let a = M.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Lu.solve a [| 5.0; 10.0 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 3.0 x.(1)

let test_lu_det () =
  let a = M.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  check_float "det" 5.0 (Lu.det (Lu.factor a));
  let perm = M.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_float "permutation det" (-1.0) (Lu.det (Lu.factor perm))

let test_lu_singular () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Lu.factor a with
  | _ -> Alcotest.fail "expected Singular"
  | exception Lu.Singular _ -> ()

let test_lu_inverse () =
  let a = M.of_rows [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Lu.inverse a in
  Alcotest.(check bool) "A * A^-1 = I" true
    (M.equal ~tol:1e-12 (M.mul a inv) (M.identity 2))

let test_lu_needs_pivoting () =
  (* Zero on the leading diagonal forces a row swap. *)
  let a = M.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve a [| 2.0; 3.0 |] in
  check_float "x0" 3.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_lu_in_place_matches_solve () =
  let rows = [| [| 2.0; 1.0; -1.0 |]; [| -3.0; -1.0; 2.0 |]; [| -2.0; 1.0; 2.0 |] |] in
  let b = [| 8.0; -11.0; -3.0 |] in
  let expected = Lu.solve (M.of_rows rows) b in
  let a = M.of_rows rows in
  let pivots = Array.make 3 0 in
  let sign = Lu.factor_in_place a ~pivots in
  Alcotest.(check bool) "sign is +-1" true (abs sign = 1);
  let x = Array.copy b in
  Lu.solve_in_place ~lu:a ~pivots x;
  Array.iteri
    (fun i e -> check_float ~eps:1e-12 (Printf.sprintf "x%d" i) e x.(i))
    expected

let test_lu_in_place_pivoting () =
  (* Leading zero forces a swap; the recorded pivots must replay it. *)
  let a = M.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let pivots = Array.make 2 0 in
  let sign = Lu.factor_in_place a ~pivots in
  Alcotest.(check int) "swap sign" (-1) sign;
  let x = [| 2.0; 3.0 |] in
  Lu.solve_in_place ~lu:a ~pivots x;
  check_float "x0" 3.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_lu_in_place_validates () =
  let a = M.of_rows [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  (match Lu.factor_in_place a ~pivots:(Array.make 3 0) with
  | _ -> Alcotest.fail "expected Invalid_argument for bad pivot length"
  | exception Invalid_argument _ -> ());
  let r = M.create ~rows:2 ~cols:3 in
  match Lu.factor_in_place r ~pivots:(Array.make 2 0) with
  | _ -> Alcotest.fail "expected Invalid_argument for non-square"
  | exception Invalid_argument _ -> ()

(* Regression (shape-guard bugfix): a non-square "factor" smuggled through
   the raw API must be rejected, not read out of bounds. *)
let test_lu_solve_in_place_shape_guard () =
  let lu = M.create ~rows:2 ~cols:3 in
  (match Lu.solve_in_place ~lu ~pivots:(Array.make 2 0) [| 1.0; 2.0 |] with
  | () -> Alcotest.fail "expected Invalid_argument for non-square factor"
  | exception Invalid_argument _ -> ());
  let lu = M.identity 2 in
  (match Lu.solve_in_place ~lu ~pivots:(Array.make 3 0) [| 1.0; 2.0 |] with
  | () -> Alcotest.fail "expected Invalid_argument for bad pivot length"
  | exception Invalid_argument _ -> ());
  match Lu.solve_in_place ~lu ~pivots:(Array.make 2 0) [| 1.0; 2.0; 3.0 |] with
  | () -> Alcotest.fail "expected Invalid_argument for bad rhs length"
  | exception Invalid_argument _ -> ()

(* Regression (pivot-threshold bugfix): a uniformly tiny but perfectly
   conditioned system used to be misclassified singular by the absolute
   1e-280 threshold; the scale-relative test factors it fine. *)
let test_lu_tiny_scale_solvable () =
  let a = M.of_rows [| [| 1e-290; 0.0 |]; [| 0.0; 2e-290 |] |] in
  let x = Lu.solve a [| 1e-290; 4e-290 |] in
  check_float ~eps:1e-12 "x0" 1.0 x.(0);
  check_float ~eps:1e-12 "x1" 2.0 x.(1)

(* The flip side: residuals of near-total cancellation far above any
   absolute threshold must now be *caught*, with the column scale
   surfaced in the payload. *)
let test_lu_relative_rank_deficiency_caught () =
  let a = M.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 1.0 +. 1e-15 |] |] in
  match Lu.factor a with
  | _ -> Alcotest.fail "expected Singular for eps-level rank deficiency"
  | exception Lu.Singular { column; scale } ->
    Alcotest.(check int) "column" 1 column;
    check_float ~eps:1e-9 "scale is the column magnitude" 1.0 scale

(* --- Sparse --- *)

module Sp = Vstat_linalg.Sparse

(* Assemble-and-solve helper over (row, col, value) triplets with
   duplicate-accumulation, mirroring how the engine stamps. *)
let sparse_solve n triplets b =
  let pattern = Array.map (fun (r, c, _) -> (r, c)) triplets in
  let sym = Sp.analyze ~n ~entries:pattern in
  let num = Sp.create_numeric sym in
  let vals = Sp.values num in
  Array.iter
    (fun (r, c, v) ->
      let s = Sp.slot sym ~row:r ~col:c in
      vals.(s) <- vals.(s) +. v)
    triplets;
  Sp.factor num;
  let x = Array.copy b in
  Sp.solve_in_place num x;
  x

let dense_of_triplets n triplets =
  let a = M.create ~rows:n ~cols:n in
  Array.iter (fun (r, c, v) -> M.add_to a r c v) triplets;
  a

let test_sparse_solve_known () =
  let t = [| (0, 0, 2.0); (0, 1, 1.0); (1, 0, 1.0); (1, 1, 3.0) |] in
  let x = sparse_solve 2 t [| 5.0; 10.0 |] in
  check_float ~eps:1e-12 "x0" 1.0 x.(0);
  check_float ~eps:1e-12 "x1" 3.0 x.(1)

(* MNA vsource shape: the branch row has a structurally zero diagonal, so
   the maximum transversal must kick in.
     [ g  1 ] [v]   [0]        v = 2, i = -g v
     [ 1  0 ] [i] = [2]  *)
let test_sparse_zero_diagonal () =
  let g = 1e-3 in
  let t = [| (0, 0, g); (0, 1, 1.0); (1, 0, 1.0) |] in
  let x = sparse_solve 2 t [| 0.0; 2.0 |] in
  check_float ~eps:1e-12 "node voltage" 2.0 x.(0);
  check_float ~eps:1e-15 "branch current" (-.g *. 2.0) x.(1)

let test_sparse_structurally_singular () =
  (* Column 1 has no entries: no transversal exists. *)
  match Sp.analyze ~n:2 ~entries:[| (0, 0); (1, 0) |] with
  | _ -> Alcotest.fail "expected Numeric_error"
  | exception Vstat_linalg.Linalg_error.Numeric_error _ -> ()

(* Numerically singular values on a healthy pattern must raise the same
   scale-carrying Singular the dense path uses. *)
let test_sparse_numeric_singular () =
  let t = [| (0, 0, 1.0); (0, 1, 1.0); (1, 0, 1.0); (1, 1, 1.0) |] in
  match sparse_solve 2 t [| 1.0; 1.0 |] with
  | _ -> Alcotest.fail "expected Singular"
  | exception Lu.Singular { scale; _ } ->
    Alcotest.(check bool) "scale positive" true (scale > 0.0)

(* The symbolic phase runs once per topology; refactorization is purely
   numeric.  Counter-based so a regression reintroducing per-solve
   analysis fails loudly. *)
let test_sparse_pattern_reuse () =
  let pattern = [| (0, 0); (0, 1); (1, 0); (1, 1) |] in
  let a0 = Sp.symbolic_analyses () in
  let sym = Sp.analyze ~n:2 ~entries:pattern in
  let num = Sp.create_numeric sym in
  let f0 = Sp.numeric_factorizations () in
  for i = 1 to 100 do
    Sp.clear num;
    let vals = Sp.values num in
    let d = Float.of_int i in
    vals.(Sp.slot sym ~row:0 ~col:0) <- 2.0 +. d;
    vals.(Sp.slot sym ~row:0 ~col:1) <- 1.0;
    vals.(Sp.slot sym ~row:1 ~col:0) <- 1.0;
    vals.(Sp.slot sym ~row:1 ~col:1) <- 3.0 +. d;
    Sp.factor num;
    let x = [| 5.0; 10.0 |] in
    Sp.solve_in_place num x;
    let a = dense_of_triplets 2
        [| (0, 0, 2.0 +. d); (0, 1, 1.0); (1, 0, 1.0); (1, 1, 3.0 +. d) |]
    in
    let r = Vec.sub (M.mul_vec a x) [| 5.0; 10.0 |] in
    if Vec.norm_inf r > 1e-9 then
      Alcotest.failf "refactorization %d: residual %g" i (Vec.norm_inf r)
  done;
  Alcotest.(check int) "symbolic analyses" 1 (Sp.symbolic_analyses () - a0);
  Alcotest.(check int) "numeric factorizations" 100
    (Sp.numeric_factorizations () - f0)

let test_sparse_cache_shares_symbolic () =
  let entries = [| (0, 0); (1, 1); (0, 1); (1, 0) |] in
  let s1 = Sp.analyze_cached ~n:2 ~entries in
  (* Same pattern presented in a different order and with duplicates. *)
  let s2 = Sp.analyze_cached ~n:2 ~entries:[| (1, 0); (0, 0); (0, 1); (1, 1); (0, 0) |] in
  Alcotest.(check bool) "physically shared" true (s1 == s2)

(* Random MNA-shaped systems: a grounded resistive chain with random extra
   conductances plus a voltage source branch (zero-diagonal row), solved
   sparse and cross-checked against the dense LU oracle. *)
let random_mna_system =
  QCheck.make
    ~print:(fun (nodes, _, _, _) -> Printf.sprintf "nodes=%d" nodes)
    QCheck.Gen.(
      int_range 2 15 >>= fun nodes ->
      list_repeat (nodes - 1) (float_range 0.1 10.0) >>= fun gchain ->
      list_repeat nodes (float_range 0.1 10.0) >>= fun gground ->
      list_repeat (nodes + 1) (float_range (-5.0) 5.0) >>= fun rhs ->
      return (nodes, gchain, gground, rhs))

let prop_sparse_matches_dense =
  QCheck.Test.make ~name:"sparse LU matches dense LU on MNA-shaped systems"
    ~count:200 random_mna_system
    (fun (nodes, gchain, gground, rhs) ->
      let n = nodes + 1 in
      let triplets = ref [] in
      let add r c v = triplets := (r, c, v) :: !triplets in
      List.iteri
        (fun i g ->
          add i i g;
          add (i + 1) (i + 1) g;
          add i (i + 1) (-.g);
          add (i + 1) i (-.g))
        gchain;
      List.iteri (fun i g -> add i i g) gground;
      (* Voltage source from node 0 to ground: branch row nodes+0. *)
      add nodes 0 1.0;
      add 0 nodes 1.0;
      let triplets = Array.of_list (List.rev !triplets) in
      let b = Array.of_list rhs in
      let x_sparse = sparse_solve n triplets b in
      let x_dense = Lu.solve (dense_of_triplets n triplets) b in
      let scale = Float.max 1.0 (Vec.norm_inf x_dense) in
      Vec.norm_inf (Vec.sub x_sparse x_dense) /. scale < 1e-12)

(* --- Qr --- *)

let test_qr_least_squares_exact () =
  (* Square consistent system behaves like solve. *)
  let a = M.of_rows [| [| 1.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let x = Qr.least_squares a [| 3.0; 1.0 |] in
  check_float "x0" 2.0 x.(0);
  check_float "x1" 1.0 x.(1)

let test_qr_least_squares_overdetermined () =
  (* Fit y = 2x + 1 through noisy-free points: exact recovery. *)
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let a = M.init ~rows:4 ~cols:2 ~f:(fun i j -> if j = 0 then xs.(i) else 1.0) in
  let b = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let c = Qr.least_squares a b in
  check_float ~eps:1e-10 "slope" 2.0 c.(0);
  check_float ~eps:1e-10 "intercept" 1.0 c.(1)

let test_qr_r_upper_triangular () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let r = Qr.r (Qr.factor a) in
  check_float "below diagonal" 0.0 (M.get r 1 0)

(* --- Nnls --- *)

let test_nnls_unconstrained_interior () =
  (* When the LS solution is positive, NNLS must match it. *)
  let a = M.of_rows [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let b = [| 1.0; 2.0; 3.0 |] in
  let x = Nnls.solve a b in
  check_float ~eps:1e-10 "x0" 1.0 x.(0);
  check_float ~eps:1e-10 "x1" 2.0 x.(1)

let test_nnls_clamps_negative () =
  (* Unconstrained solution has a negative coordinate; NNLS clamps to 0. *)
  let a = M.of_rows [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let b = [| -1.0; 2.0 |] in
  let x = Nnls.solve a b in
  check_float "clamped" 0.0 x.(0);
  check_float "free" 2.0 x.(1)

let test_nnls_zero_rhs () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let x = Nnls.solve a [| 0.0; 0.0 |] in
  check_float "x0" 0.0 x.(0);
  check_float "x1" 0.0 x.(1)

(* --- Eigen --- *)

let test_eigen_diagonal () =
  let a = M.of_rows [| [| 3.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let { Eigen.values; _ } = Eigen.decompose a in
  check_float "largest" 3.0 values.(0);
  check_float "smallest" 1.0 values.(1)

let test_eigen_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let a = M.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let { Eigen.values; vectors } = Eigen.decompose a in
  check_float ~eps:1e-10 "lambda1" 3.0 values.(0);
  check_float ~eps:1e-10 "lambda2" 1.0 values.(1);
  (* Eigenvector for 3 is (1,1)/sqrt2 up to sign. *)
  let vx = M.get vectors 0 0 and vy = M.get vectors 1 0 in
  check_float ~eps:1e-9 "eigvec ratio" 1.0 (vx /. vy)

let test_eigen_reconstruction () =
  let a =
    M.of_rows [| [| 4.0; 1.0; 0.5 |]; [| 1.0; 3.0; 0.2 |]; [| 0.5; 0.2; 1.0 |] |]
  in
  let { Eigen.values; vectors } = Eigen.decompose a in
  (* A = V diag(values) V^T *)
  let d = M.init ~rows:3 ~cols:3 ~f:(fun i j -> if i = j then values.(i) else 0.0) in
  let recon = M.mul (M.mul vectors d) (M.transpose vectors) in
  Alcotest.(check bool) "reconstruct" true (M.equal ~tol:1e-9 recon a)

(* --- Cmatrix --- *)

module Cm = Vstat_linalg.Cmatrix

let complex_close a b =
  Complex.norm (Complex.sub a b) < 1e-9

let test_cmatrix_solve_real_system () =
  (* A purely real complex system must agree with the real LU solver. *)
  let a = M.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Cm.solve (Cm.of_real a) [| Complex.{ re = 5.0; im = 0.0 }; Complex.{ re = 10.0; im = 0.0 } |] in
  Alcotest.(check bool) "x0" true (complex_close x.(0) { re = 1.0; im = 0.0 });
  Alcotest.(check bool) "x1" true (complex_close x.(1) { re = 3.0; im = 0.0 })

let test_cmatrix_solve_complex_diag () =
  (* (j) x = 1  ->  x = -j *)
  let g = M.of_rows [| [| 0.0 |] |] in
  let c = M.of_rows [| [| 1.0 |] |] in
  let a = Cm.combine ~g ~c ~omega:1.0 in
  let x = Cm.solve a [| Complex.one |] in
  Alcotest.(check bool) "x = -j" true
    (complex_close x.(0) { re = 0.0; im = -1.0 })

let test_cmatrix_residual () =
  let g = M.of_rows [| [| 1.0; 0.5 |]; [| 0.2; 2.0 |] |] in
  let c = M.of_rows [| [| 0.3; 0.0 |]; [| 0.1; 0.7 |] |] in
  let a = Cm.combine ~g ~c ~omega:3.0 in
  let b = [| Complex.{ re = 1.0; im = -2.0 }; Complex.{ re = 0.5; im = 0.25 } |] in
  let x = Cm.solve a b in
  let r = Cm.mul_vec a x in
  Array.iteri
    (fun i ri ->
      Alcotest.(check bool) "residual ~ 0" true (complex_close ri b.(i)))
    r

let test_cmatrix_singular () =
  let g = M.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  let a = Cm.of_real g in
  match Cm.solve a [| Complex.one; Complex.one |] with
  | _ -> Alcotest.fail "expected Singular"
  | exception Cm.Singular _ -> ()

(* --- Vec --- *)

let test_vec_ops () =
  check_float "dot" 11.0 (Vec.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  check_float "norm2" 5.0 (Vec.norm2 [| 3.0; 4.0 |]);
  check_float "norm_inf" 4.0 (Vec.norm_inf [| 3.0; -4.0 |]);
  let y = [| 1.0; 1.0 |] in
  Vec.axpy ~alpha:2.0 ~x:[| 1.0; 2.0 |] ~y;
  check_float "axpy" 5.0 y.(1)

(* --- qcheck --- *)

let random_dd_system =
  (* Diagonally dominant matrices are well-conditioned: LU must solve them. *)
  QCheck.make
    ~print:(fun (n, _) -> Printf.sprintf "n=%d" n)
    QCheck.Gen.(
      int_range 1 8 >>= fun n ->
      list_repeat (n * n) (float_range (-1.0) 1.0) >>= fun entries ->
      list_repeat n (float_range (-10.0) 10.0) >>= fun b ->
      return (n, (entries, b)))

let prop_lu_solves_dd =
  QCheck.Test.make ~name:"LU solves diagonally dominant systems" ~count:200
    random_dd_system
    (fun (n, (entries, b)) ->
      let entries = Array.of_list entries in
      let a =
        Vstat_linalg.Matrix.init ~rows:n ~cols:n ~f:(fun i j ->
            let v = entries.((i * n) + j) in
            if i = j then v +. Float.of_int n +. 1.0 else v)
      in
      let b = Array.of_list b in
      let x = Lu.solve a b in
      let r = Vec.sub (M.mul_vec a x) b in
      Vec.norm_inf r < 1e-8)

let prop_lu_in_place_matches_factor =
  QCheck.Test.make ~name:"in-place LU agrees with allocating LU" ~count:200
    random_dd_system
    (fun (n, (entries, b)) ->
      let entries = Array.of_list entries in
      let mk () =
        Vstat_linalg.Matrix.init ~rows:n ~cols:n ~f:(fun i j ->
            let v = entries.((i * n) + j) in
            if i = j then v +. Float.of_int n +. 1.0 else v)
      in
      let b = Array.of_list b in
      let x_ref = Lu.solve (mk ()) b in
      let a = mk () in
      let pivots = Array.make n 0 in
      ignore (Lu.factor_in_place a ~pivots);
      let x = Array.copy b in
      Lu.solve_in_place ~lu:a ~pivots x;
      Vec.norm_inf (Vec.sub x x_ref) < 1e-10)

let prop_nnls_nonnegative =
  QCheck.Test.make ~name:"NNLS solutions are non-negative" ~count:200
    random_dd_system
    (fun (n, (entries, b)) ->
      let entries = Array.of_list entries in
      let a =
        Vstat_linalg.Matrix.init ~rows:n ~cols:n ~f:(fun i j ->
            let v = entries.((i * n) + j) in
            if i = j then Float.abs v +. Float.of_int n +. 1.0 else v)
      in
      let b = Array.of_list b in
      let x = Nnls.solve a b in
      Array.for_all (fun v -> v >= 0.0) x)

let prop_qr_matches_lu_on_square =
  QCheck.Test.make ~name:"QR least squares = LU solve on square systems"
    ~count:100 random_dd_system
    (fun (n, (entries, b)) ->
      let entries = Array.of_list entries in
      let a =
        Vstat_linalg.Matrix.init ~rows:n ~cols:n ~f:(fun i j ->
            let v = entries.((i * n) + j) in
            if i = j then v +. Float.of_int n +. 1.0 else v)
      in
      let b = Array.of_list b in
      let x1 = Lu.solve a b in
      let x2 = Qr.least_squares a b in
      Vec.norm_inf (Vec.sub x1 x2) < 1e-7)

let () =
  Alcotest.run "vstat_linalg"
    [
      ( "matrix",
        [
          Alcotest.test_case "create" `Quick test_create_zero;
          Alcotest.test_case "init/get/set" `Quick test_init_get_set;
          Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec;
          Alcotest.test_case "ragged rejected" `Quick test_of_rows_ragged;
          Alcotest.test_case "add/sub/scale" `Quick test_add_sub_scale;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve known" `Quick test_lu_solve_known;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "in-place solve" `Quick test_lu_in_place_matches_solve;
          Alcotest.test_case "in-place pivoting" `Quick test_lu_in_place_pivoting;
          Alcotest.test_case "in-place validation" `Quick test_lu_in_place_validates;
          Alcotest.test_case "solve_in_place shape guard" `Quick
            test_lu_solve_in_place_shape_guard;
          Alcotest.test_case "tiny-scale solvable" `Quick
            test_lu_tiny_scale_solvable;
          Alcotest.test_case "relative rank deficiency" `Quick
            test_lu_relative_rank_deficiency_caught;
          QCheck_alcotest.to_alcotest prop_lu_solves_dd;
          QCheck_alcotest.to_alcotest prop_lu_in_place_matches_factor;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "solve known" `Quick test_sparse_solve_known;
          Alcotest.test_case "zero diagonal (vsource row)" `Quick
            test_sparse_zero_diagonal;
          Alcotest.test_case "structurally singular" `Quick
            test_sparse_structurally_singular;
          Alcotest.test_case "numerically singular" `Quick
            test_sparse_numeric_singular;
          Alcotest.test_case "pattern reuse (100 refactorizations)" `Quick
            test_sparse_pattern_reuse;
          Alcotest.test_case "symbolic cache shares analyses" `Quick
            test_sparse_cache_shares_symbolic;
          QCheck_alcotest.to_alcotest prop_sparse_matches_dense;
        ] );
      ( "qr",
        [
          Alcotest.test_case "square" `Quick test_qr_least_squares_exact;
          Alcotest.test_case "overdetermined" `Quick test_qr_least_squares_overdetermined;
          Alcotest.test_case "R upper" `Quick test_qr_r_upper_triangular;
          QCheck_alcotest.to_alcotest prop_qr_matches_lu_on_square;
        ] );
      ( "nnls",
        [
          Alcotest.test_case "interior" `Quick test_nnls_unconstrained_interior;
          Alcotest.test_case "clamps" `Quick test_nnls_clamps_negative;
          Alcotest.test_case "zero rhs" `Quick test_nnls_zero_rhs;
          QCheck_alcotest.to_alcotest prop_nnls_nonnegative;
        ] );
      ( "eigen",
        [
          Alcotest.test_case "diagonal" `Quick test_eigen_diagonal;
          Alcotest.test_case "known 2x2" `Quick test_eigen_known_2x2;
          Alcotest.test_case "reconstruction" `Quick test_eigen_reconstruction;
        ] );
      ( "cmatrix",
        [
          Alcotest.test_case "real system" `Quick test_cmatrix_solve_real_system;
          Alcotest.test_case "complex diag" `Quick test_cmatrix_solve_complex_diag;
          Alcotest.test_case "residual" `Quick test_cmatrix_residual;
          Alcotest.test_case "singular" `Quick test_cmatrix_singular;
        ] );
      ("vec", [ Alcotest.test_case "ops" `Quick test_vec_ops ]);
    ]
