(** BSIM4-lite: the "golden" baseline compact model.

    A drift–diffusion, velocity-saturation MOSFET model in the structural
    style of BSIM4 (smoothed effective overdrive, mobility degradation,
    Esat-limited linear region, channel-length modulation, DIBL and Vth
    roll-off, body effect).  It stands in for the paper's industrial 40 nm
    BSIM4 design kit: it is the *data generator* whose Monte Carlo statistics
    the BPV procedure must map onto the VS model, and the *reference
    distribution* in every validation figure.

    It deliberately uses a different transport picture (drift–diffusion with
    velocity saturation) and a larger, more redundant parameter set than the
    VS model, mirroring the paper's setup where the two models agree on
    terminal behaviour but not on internal formulation. *)

type params = {
  w : float;        (** drawn channel width, m *)
  l : float;        (** drawn channel length, m *)
  dl : float;       (** length offset: Leff = l - dl, m *)
  dw : float;       (** width offset: Weff = w - dw, m *)
  cox : float;      (** oxide capacitance, F/m^2 *)
  vth0 : float;     (** long-channel zero-bias threshold, V *)
  k1 : float;       (** body-effect coefficient, sqrt(V) *)
  phis : float;     (** surface potential, V *)
  dvt0 : float;     (** Vth roll-off amplitude, V *)
  dvt_l : float;    (** Vth roll-off characteristic length, m *)
  eta0 : float;     (** DIBL coefficient amplitude, V/V *)
  eta_l : float;    (** DIBL characteristic length, m *)
  u0 : float;       (** low-field mobility, m^2/(V.s) *)
  ua : float;       (** first-order mobility degradation, 1/V *)
  ub : float;       (** second-order mobility degradation, 1/V^2 *)
  vsat : float;     (** saturation velocity, m/s *)
  n_ss : float;     (** subthreshold swing ideality *)
  lambda : float;   (** channel-length modulation, 1/V *)
  phit : float;     (** thermal voltage, V *)
  cov : float;      (** overlap + fringe capacitance per width, F/m *)
}

val leff : params -> float
val weff : params -> float

val vth : params -> vds:float -> vbs:float -> float
(** Full threshold voltage including body effect, roll-off and DIBL. *)

val canonical : params -> Device_model.canonical_eval
(** Canonical-quadrant equations (exposed for unit tests). *)

val canonical_derivs : params -> Device_model.canonical_eval_derivs
(** Canonical equations with analytic bias derivatives (conductances and
    transcapacitances), the engine's fast Jacobian path; agrees with
    {!canonical} and with finite differences (checked in tests). *)

val device :
  ?name:string -> polarity:Device_model.polarity -> params -> Device_model.t

val parameter_count : int
(** Independent parameters of this implementation — larger than the VS
    model's, as in the paper's complexity comparison. *)
