(** The MIT Virtual Source (MVS) ultra-compact MOSFET model.

    Implements the charge-based formulation of Khakifirooz, Nayfeh &
    Antoniadis (IEEE TED 2009) used by the paper:

    - drain current [Id = W . Fsat . Qixo . vxo] (paper eq. (2));
    - empirical saturation function
      [Fsat = (Vds/Vdsat) / (1 + (Vds/Vdsat)^beta)^(1/beta)] (eq. (3));
    - virtual-source charge
      [Qixo = Cinv n phit ln(1 + exp((Vgs - (VT - alpha phit Ff)) / (n phit)))]
      with the Fermi-like inversion transition function [Ff];
    - DIBL threshold shift [VT = VT0 - delta(Leff) Vds] (eq. (4)) with an
      exponential [delta(Leff)] roll-up for short channels;
    - a simple body-effect term and a blended 50/50 -> 60/40 channel-charge
      partition plus linear overlap capacitances for the C–V behaviour.

    All parameters are SI; use {!Cards} for customary-unit construction. *)

type dibl = {
  delta0 : float;   (** DIBL coefficient at the nominal channel length, V/V *)
  l_nominal : float;(** nominal channel length the card was extracted at, m *)
  l_scale : float;  (** exponential roll-up length, m *)
}
(** Channel-length dependence of DIBL, [delta(L) = delta0 exp((Ln - L)/ls)]. *)

val delta_of_length : dibl -> float -> float
(** Evaluate [delta(Leff)]. *)

type params = {
  w : float;          (** channel width, m *)
  l : float;          (** effective channel length Leff, m *)
  cinv : float;       (** effective gate-to-channel capacitance, F/m^2 *)
  vt0 : float;        (** zero-Vds threshold voltage, V *)
  dibl : dibl;        (** DIBL model evaluated at [l] *)
  n0 : float;         (** subthreshold ideality factor *)
  nd : float;         (** punch-through ideality increase, 1/V *)
  vxo : float;        (** virtual-source injection velocity, m/s *)
  mu : float;         (** low-field carrier mobility, m^2/(V.s) *)
  beta : float;       (** saturation-transition exponent (approx 1.8) *)
  alpha_q : float;    (** charge-transition constant (approx 3.5) *)
  phit : float;       (** thermal voltage kT/q, V *)
  gamma_body : float; (** body-effect coefficient, sqrt(V) *)
  phib : float;       (** surface potential for body effect, V *)
  cov : float;        (** gate overlap + fringe capacitance per width, F/m *)
  ballistic_b : float;(** ballistic efficiency B = lambda/(lambda + 2 l),
                          used by the statistical vxo slaving (eqs. (5)-(6)) *)
}

val delta : params -> float
(** DIBL coefficient of this instance, [delta_of_length p.dibl p.l]. *)

val canonical : params -> Device_model.canonical_eval
(** Raw canonical-quadrant equations (exposed for unit tests). *)

val canonical_derivs : params -> Device_model.canonical_eval_derivs
(** Canonical equations with analytic bias derivatives (conductances and
    transcapacitances), the engine's fast Jacobian path; agrees with
    {!canonical} and with finite differences (checked in tests). *)

val device :
  ?name:string -> polarity:Device_model.polarity -> params -> Device_model.t
(** Instantiate as a circuit-ready device. *)

val dc_parameter_count : int
(** Number of independent DC parameters of the model (the paper quotes 11;
    this implementation's count, used in documentation tests). *)
