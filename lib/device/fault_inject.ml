type kind = Nan_current | Inf_current | Perturb_derivs | Raise

exception Injected of string

let kind_name = function
  | Nan_current -> "nan"
  | Inf_current -> "inf"
  | Perturb_derivs -> "perturb"
  | Raise -> "raise"

type config = { rate : float; kind : kind; seed : int }

type plan = { device_ordinal : int; at_eval : int; kind : kind }

(* Device ordinals are drawn modulo this span; wrap sites match creation
   ordinals the same way, so any circuit with at least [ordinal_span]
   transistors is guaranteed a hit when a plan fires. *)
let ordinal_span = 4

(* fmix64 finalizer (MurmurHash3): full-avalanche mixing so consecutive keys
   land on independent [0,1) draws. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xff51afd7ed558ccdL
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xc4ceb9fe1a85ec53L
  in
  Int64.logxor z (Int64.shift_right_logical z 33)

let golden = 0x9E3779B97F4A7C15L

(* Documented precondition (see mli): a config built by hand rather than
   through [parse_spec] must still carry a probability.  A NaN or
   out-of-range rate would silently bias every fault decision, so it is a
   programming error, reported as such. *)
let[@vstat.allow "exn-discipline"] validate cfg =
  if not (Float.is_finite cfg.rate && cfg.rate >= 0.0 && cfg.rate <= 1.0) then
    invalid_arg
      (Printf.sprintf "Fault_inject: rate %g is not a probability in [0,1]"
         cfg.rate)

let plan cfg ~key =
  validate cfg;
  if cfg.rate <= 0.0 then None
  else begin
    let h =
      mix64
        (Int64.add
           (Int64.mul (Int64.of_int cfg.seed) golden)
           (mix64 (Int64.of_int key)))
    in
    let u = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53 in
    if u >= cfg.rate then None
    else begin
      let h2 = mix64 (Int64.logxor h golden) in
      {
        device_ordinal =
          Int64.to_int (Int64.logand h2 (Int64.of_int (ordinal_span - 1)));
        at_eval =
          1 + Int64.to_int (Int64.logand (Int64.shift_right_logical h2 8) 255L);
        kind = cfg.kind;
      }
      |> Option.some
    end
  end

let wrap plan (dev : Device_model.t) =
  (* One counter shared by the value and derivative paths: the fault engages
     at the [at_eval]-th model evaluation of this device instance and stays
     engaged, mimicking a latched bad state rather than a one-shot glitch. *)
  let evals = ref 0 in
  let engaged () =
    incr evals;
    !evals >= plan.at_eval
  in
  let fault_msg () =
    Printf.sprintf "injected %s fault in %s at eval %d" (kind_name plan.kind)
      dev.Device_model.name !evals
  in
  let eval ~vg ~vd ~vs ~vb =
    let st = dev.Device_model.eval ~vg ~vd ~vs ~vb in
    if engaged () then
      match plan.kind with
      | Raise -> raise (Injected (fault_msg ()))
      | Nan_current -> { st with Device_model.id = Float.nan }
      | Inf_current -> { st with Device_model.id = Float.infinity }
      | Perturb_derivs -> st
    else st
  in
  let eval_derivs =
    Option.map
      (fun ed ~vg ~vd ~vs ~vb (buf : Device_model.derivs) ->
        ed ~vg ~vd ~vs ~vb buf;
        if engaged () then
          match plan.kind with
          | Raise -> raise (Injected (fault_msg ()))
          | Nan_current -> buf.Device_model.v_id <- Float.nan
          | Inf_current -> buf.Device_model.v_id <- Float.infinity
          | Perturb_derivs ->
            (* Corrupt the Jacobian only: the residual stays honest, so
               Newton either limps to the true solution or fails typed. *)
            for i = 0 to 3 do
              buf.Device_model.did.(i) <- buf.Device_model.did.(i) *. 3.0
            done)
      dev.Device_model.eval_derivs
  in
  { dev with Device_model.eval; eval_derivs }

let kind_of_string = function
  | "nan" -> Some Nan_current
  | "inf" -> Some Inf_current
  | "perturb" -> Some Perturb_derivs
  | "raise" -> Some Raise
  | _ -> None

let parse_spec ?(seed = 0x1d0a) s =
  let rate_s, kind_s =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  match float_of_string_opt (String.trim rate_s) with
  | None -> Error (Printf.sprintf "invalid fault rate %S" rate_s)
  | Some rate when not (rate >= 0.0 && rate <= 1.0) ->
    Error (Printf.sprintf "fault rate %g out of [0,1]" rate)
  | Some rate -> (
    match kind_s with
    | None -> Ok { rate; kind = Raise; seed }
    | Some k -> (
      match kind_of_string (String.lowercase_ascii (String.trim k)) with
      | Some kind -> Ok { rate; kind; seed }
      | None ->
        Error
          (Printf.sprintf "unknown fault kind %S (expected nan|inf|perturb|raise)"
             k)))

let spec_to_string cfg =
  Printf.sprintf "%g:%s" cfg.rate (kind_name cfg.kind)

(* --- service-layer faults ---------------------------------------------- *)

module Service = struct
  type action = Stall of float | Abort | Crash | Hang of float

  exception Crashed of string

  type config = {
    rate : float;
    abort_frac : float;
    crash_frac : float;
    hang_frac : float;
    stall_s : float;
    hang_s : float;
    seed : int;
  }

  let[@vstat.allow "exn-discipline"] validate cfg =
    let frac f = Float.is_finite f && f >= 0.0 && f <= 1.0 in
    if
      not
        (frac cfg.rate && frac cfg.abort_frac && frac cfg.crash_frac
        && frac cfg.hang_frac
        && cfg.abort_frac +. cfg.crash_frac +. cfg.hang_frac <= 1.0 +. 1e-12
        && Float.is_finite cfg.stall_s && cfg.stall_s >= 0.0
        && Float.is_finite cfg.hang_s && cfg.hang_s >= 0.0)
    then
      invalid_arg
        (Printf.sprintf
           "Fault_inject.Service: rate %g / abort_frac %g / crash_frac %g / \
            hang_frac %g / stall_s %g / hang_s %g out of range (fractions \
            must lie in [0,1] and sum to at most 1)"
           cfg.rate cfg.abort_frac cfg.crash_frac cfg.hang_frac cfg.stall_s
           cfg.hang_s)

  (* Same fmix64 key scheme as the device-level planner, with an extra
     golden offset so a shared seed never correlates the two fault
     streams.  Two independent draws: fire?, then which action — the
     second draw is split abort | crash | hang | stall by the configured
     fractions (stall takes the remainder). *)
  let plan cfg ~key =
    validate cfg;
    if cfg.rate <= 0.0 then None
    else begin
      let h =
        mix64
          (Int64.add
             (Int64.mul (Int64.of_int cfg.seed) golden)
             (mix64 (Int64.add (Int64.of_int key) golden)))
      in
      let u = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53 in
      if u >= cfg.rate then None
      else begin
        let h2 = mix64 (Int64.logxor h golden) in
        let v = Int64.to_float (Int64.shift_right_logical h2 11) *. 0x1p-53 in
        if v < cfg.abort_frac then Some Abort
        else if v < cfg.abort_frac +. cfg.crash_frac then Some Crash
        else if v < cfg.abort_frac +. cfg.crash_frac +. cfg.hang_frac then
          Some (Hang cfg.hang_s)
        else Some (Stall cfg.stall_s)
      end
    end

  let default_stall_s = 0.05
  let default_hang_s = 0.75

  let parse_spec ?(seed = 0x5e2c) s =
    let fields = String.split_on_char ':' s in
    match fields with
    | [] | [ "" ] -> Error "empty service fault spec"
    | rate_s :: rest -> (
      match float_of_string_opt (String.trim rate_s) with
      | None -> Error (Printf.sprintf "invalid fault rate %S" rate_s)
      | Some rate when not (rate >= 0.0 && rate <= 1.0) ->
        Error (Printf.sprintf "fault rate %g out of [0,1]" rate)
      | Some rate -> (
        (* [mk abort crash hang ~stall_s ~hang_s]: stall takes whatever
           fraction the named kinds leave. *)
        let mk abort_frac crash_frac hang_frac ~stall_s ~hang_s =
          if not (stall_s >= 0.0) then
            Error (Printf.sprintf "stall duration %g is negative" stall_s)
          else if not (hang_s >= 0.0) then
            Error (Printf.sprintf "hang duration %g is negative" hang_s)
          else
            Ok
              {
                rate;
                abort_frac;
                crash_frac;
                hang_frac;
                stall_s;
                hang_s;
                seed;
              }
        in
        let by_kind k ~sec =
          let stall_s = Option.value sec ~default:default_stall_s in
          let hang_s = Option.value sec ~default:default_hang_s in
          match k with
          | "abort" | "raise" ->
            mk 1.0 0.0 0.0 ~stall_s:default_stall_s ~hang_s:default_hang_s
          | "stall" -> mk 0.0 0.0 0.0 ~stall_s ~hang_s:default_hang_s
          | "mix" -> mk 0.5 0.0 0.0 ~stall_s ~hang_s:default_hang_s
          | "crash" ->
            mk 0.0 1.0 0.0 ~stall_s:default_stall_s ~hang_s:default_hang_s
          | "hang" -> mk 0.0 0.0 1.0 ~stall_s:default_stall_s ~hang_s
          | "chaos" ->
            (* Equal quarters of every service fault the supervisor must
               survive; SEC (when given) sets the stall length while hangs
               keep their default so a low watchdog floor still fires. *)
            mk 0.25 0.25 0.25 ~stall_s ~hang_s:default_hang_s
          | _ ->
            Error
              (Printf.sprintf
                 "unknown service fault kind %S (expected \
                  stall|abort|mix|crash|hang|chaos)"
                 k)
        in
        match rest with
        | [] -> mk 0.5 0.0 0.0 ~stall_s:default_stall_s ~hang_s:default_hang_s
        | [ kind ] | [ kind; "" ] -> (
          let k = String.lowercase_ascii (String.trim kind) in
          match float_of_string_opt k with
          | Some sec ->
            (* RATE:SECONDS shorthand for RATE:stall:SECONDS. *)
            mk 0.0 0.0 0.0 ~stall_s:sec ~hang_s:default_hang_s
          | None -> by_kind k ~sec:None)
        | [ kind; sec ] -> (
          match float_of_string_opt (String.trim sec) with
          | None -> Error (Printf.sprintf "invalid fault duration %S" sec)
          | Some s -> by_kind (String.lowercase_ascii (String.trim kind)) ~sec:(Some s))
        | _ -> Error (Printf.sprintf "malformed service fault spec %S" s)))

  let spec_to_string cfg =
    Printf.sprintf "%g:stall=%g,abort=%g,crash=%g,hang=%g(%gs)" cfg.rate
      (Float.max 0.0 (1.0 -. cfg.abort_frac -. cfg.crash_frac -. cfg.hang_frac))
      cfg.abort_frac cfg.crash_frac cfg.hang_frac cfg.hang_s
end
