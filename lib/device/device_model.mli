(** First-class MOSFET compact-model instances.

    A [t] is a fully-instantiated four-terminal transistor: geometry and
    process parameters are already bound, so the circuit simulator only sees
    node voltages.  Polarity handling (PMOS as a mirrored NMOS) and
    source–drain symmetry (swap when the applied Vds is negative) are
    implemented here once, so concrete models ({!Vs_model}, {!Bsim4lite})
    only provide equations for the canonical NMOS, Vds >= 0 quadrant. *)

type polarity = Nmos | Pmos

type terminal_state = {
  id : float;  (** drain-to-source channel current, A (into drain terminal) *)
  qg : float;  (** gate terminal charge, C *)
  qd : float;  (** drain terminal charge, C *)
  qs : float;  (** source terminal charge, C *)
  qb : float;  (** bulk terminal charge, C *)
}

type canonical_eval = vgs:float -> vds:float -> vbs:float -> terminal_state
(** Model equations in the canonical quadrant.  Caller guarantees
    [vds >= 0]; values follow NMOS sign conventions (id >= 0 for normal
    operation, charges in natural NMOS polarity). *)

type canonical_grad = {
  d_vgs : terminal_state;  (** partials of every output w.r.t. vgs *)
  d_vds : terminal_state;  (** partials w.r.t. vds *)
  d_vbs : terminal_state;  (** partials w.r.t. vbs *)
}
(** Gradient of the canonical outputs: each field reuses {!terminal_state}
    as a container of the five partial derivatives w.r.t. one canonical
    bias variable. *)

type canonical_eval_derivs =
  vgs:float -> vds:float -> vbs:float -> terminal_state * canonical_grad
(** Canonical equations evaluated together with their analytic bias
    derivatives.  Must agree with the model's {!canonical_eval} values. *)

type derivs = {
  mutable v_id : float;  (** channel current, terminal convention *)
  mutable v_qg : float;
  mutable v_qd : float;
  mutable v_qs : float;
  mutable v_qb : float;
  did : float array;
      (** length 4: dId/dV at terminals (g, d, s, b) — gm, gds, gms, gmb *)
  dq : float array;
      (** length 16, row-major transcapacitance block: row = charge terminal
          (g, d, s, b), column = voltage terminal (g, d, s, b) *)
}
(** Caller-provided output buffer for {!eval_derivs}: the circuit engine
    allocates one per compiled system and reuses it every Newton iteration,
    so the analytic hot path performs no per-evaluation allocation. *)

val make_derivs : unit -> derivs
(** Fresh zeroed buffer. *)

type eval_derivs = vg:float -> vd:float -> vs:float -> vb:float -> derivs -> unit
(** Evaluate current, charges, conductances and transcapacitances at real
    terminal voltages, writing into the supplied buffer. *)

type t = {
  name : string;
  polarity : polarity;
  width : float;    (** electrical channel width, m *)
  length : float;   (** electrical channel length, m *)
  eval : vg:float -> vd:float -> vs:float -> vb:float -> terminal_state;
  eval_derivs : eval_derivs option;
      (** Analytic derivative path; [None] falls back to the engine's
          finite-difference Jacobian (5 evals per linearization). *)
}

val make :
  name:string ->
  polarity:polarity ->
  width:float ->
  length:float ->
  ?canonical_derivs:canonical_eval_derivs ->
  canonical:canonical_eval ->
  unit ->
  t
(** Wrap canonical equations with polarity mirroring and Vds < 0 swap.
    When [canonical_derivs] is given, the same mirroring/swap chain rule is
    applied to the analytic derivatives and exposed as [eval_derivs]. *)

val without_derivs : t -> t
(** The same device with the analytic path stripped — forces the engine's
    finite-difference fallback (ablation benches and tests). *)

(** {1 Retargetable proxies}

    A proxy is a device whose evaluation functions forward to a mutable
    target.  Compiling a circuit once over proxy devices and then
    retargeting them per Monte Carlo sample lets a batched runner reuse one
    engine (and its shared sparse symbolic analysis) for every sample
    instead of rebuilding the netlist: only the numeric model behind each
    transistor changes.  A proxy is mutable shared state — use one proxy
    set per engine per worker, never across domains. *)

type proxy
(** Handle used to swap the device behind a compiled circuit. *)

val proxy : t -> proxy
(** [proxy template] is a fresh proxy initially forwarding to [template]. *)

val proxy_device : proxy -> t
(** The circuit-facing device: place this in the netlist.  Its [eval] /
    [eval_derivs] read the proxy's current target on every call.  The
    derivative path is present iff the template had one. *)

val retarget : proxy -> t -> unit
(** Point the proxy at a new target.
    @raise Invalid_argument if the new target's polarity differs from the
      template's, or if analytic-derivative availability differs (the
      engine's analytic/FD choice is fixed per compiled circuit). *)

val ids : t -> vg:float -> vd:float -> vs:float -> vb:float -> float
(** Drain current only (sign follows the real terminal convention: positive
    current flows into the drain for an NMOS in normal operation). *)

val gm : ?dv:float -> t -> vg:float -> vd:float -> vs:float -> vb:float -> float
(** Transconductance dId/dVg by central finite difference. *)

val gds : ?dv:float -> t -> vg:float -> vd:float -> vs:float -> vb:float -> float
(** Output conductance dId/dVd. *)

val cgg : ?dv:float -> t -> vg:float -> vd:float -> vs:float -> vb:float -> float
(** Total gate capacitance dQg/dVg (F), central finite difference. *)
