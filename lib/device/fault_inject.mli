(** Deterministic fault injection for compact-model instances.

    Wraps a {!Device_model.t} so that, from a chosen model-evaluation
    ordinal onward, the device misbehaves in a configured way.  The point
    is chaos testing of the solver's failure path: every fault decision is
    a pure function of [(config.seed, key)] — no global state, no clock, no
    OS randomness — so an injected run is reproducible and independent of
    worker count or scheduling.  The caller derives [key] from the Monte
    Carlo sample index (and retry attempt), making injection per-sample
    deterministic yet independent across retry attempts.

    Key scheme: [mix64 (seed * golden + mix64 key)] (fmix64 finalizer)
    yields a uniform [0,1) draw decided against [rate]; on a hit, a second
    mix selects which device (by creation ordinal modulo {!ordinal_span})
    and which evaluation ordinal the fault engages at.  Once engaged, the
    fault persists for the remaining life of the wrapped instance. *)

type kind =
  | Nan_current      (** channel current becomes NaN *)
  | Inf_current      (** channel current becomes +inf *)
  | Perturb_derivs   (** analytic conductances scaled 3x; residual honest *)
  | Raise            (** the model evaluation raises {!Injected} *)

exception Injected of string
(** Raised by a [Raise]-kind fault; classified as ["injected_fault"] by the
    runtime failure census (registration lives in [Vstat_circuit.Diag]). *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

type config = {
  rate : float;  (** probability a given key carries a fault, in [0,1] *)
  kind : kind;
  seed : int;    (** decorrelates the injection stream from the MC stream *)
}

type plan = {
  device_ordinal : int;  (** which device (creation order mod span) faults *)
  at_eval : int;         (** 1-based evaluation ordinal the fault engages at *)
  kind : kind;
}

val ordinal_span : int
(** Modulus for [device_ordinal]; wrap sites compare creation ordinals
    modulo this value. *)

val plan : config -> key:int -> plan option
(** Deterministic decision for one key: [None] (no fault — probability
    [1 - rate]) or the fault placement.  Same config and key always yield
    the same answer.
    @raise Invalid_argument when [config.rate] is NaN or outside [0,1] —
    a hand-built config bypassing {!parse_spec} is validated here. *)

val wrap : plan -> Device_model.t -> Device_model.t
(** The same device with the fault armed on both the value and analytic
    derivative paths (shared evaluation counter). *)

val parse_spec : ?seed:int -> string -> (config, string) result
(** Parse the CLI syntax [RATE[:KIND]], e.g. ["0.05"] or ["0.05:nan"];
    kind defaults to [Raise]. *)

val spec_to_string : config -> string

(** Service-layer fault injection: chaos for the {e daemon}, not the
    device.  A plan here never changes what a sample computes — a [Stall]
    only delays the worker, an [Abort] raises {!Injected} {e before} the
    sample body runs (so the retry ladder re-runs the identical substream
    and recovers the identical value), a [Crash] asks the owning worker
    domain to die at the next sample boundary (the supervisor requeues the
    job, which resumes from its checkpoint journal), and a [Hang] freezes
    the worker's heartbeat long enough for the hung-job watchdog to fire.
    That value-neutrality is what the daemon chaos drill leans on: a
    fault-injected service must still serve bit-identical results.
    Decisions use the same fmix64 [(seed, key)] scheme as the device
    planner (offset so a shared seed does not correlate the streams);
    derive [key] from [(sample index, attempt, job attempt)] so every
    requeue re-rolls its fault plan. *)
module Service : sig
  type action =
    | Stall of float  (** worker sleeps this many seconds, then proceeds *)
    | Abort           (** worker raises {!Injected} before the sample runs *)
    | Crash
        (** worker domain raises {!Crashed} out of its domain body at the
            next sample boundary — the supervisor observes the exception
            through [Domain.join] and requeues the victim job *)
    | Hang of float
        (** worker stops heartbeating for this many seconds — long enough
            (vs the watchdog budget) to be declared hung and replaced *)

  exception Crashed of string
  (** Raised by the service worker honouring a [Crash] plan; escapes the
      worker domain by design. *)

  type config = {
    rate : float;        (** probability a key carries a fault, in [0,1] *)
    abort_frac : float;  (** of fired faults, fraction that abort *)
    crash_frac : float;  (** ... fraction that kill the worker domain *)
    hang_frac : float;   (** ... fraction that freeze the heartbeat *)
    stall_s : float;     (** stall duration, seconds (remainder fraction) *)
    hang_s : float;      (** heartbeat freeze duration, seconds *)
    seed : int;
  }

  val default_stall_s : float
  val default_hang_s : float

  val plan : config -> key:int -> action option
  (** Pure function of [(config, key)].
      @raise Invalid_argument on a hand-built config with out-of-range
      fields or kind fractions summing past 1 (same contract as the
      device-level {!val:plan}). *)

  val parse_spec : ?seed:int -> string -> (config, string) result
  (** CLI syntax [RATE[:KIND[:SEC]]] with KIND one of [stall], [abort]
      (alias [raise]), [mix] (half stalls, half aborts — the default),
      [crash], [hang], or [chaos] (equal quarters of stall / abort /
      crash / hang); [SEC] sets the stall duration for [stall]/[mix]/
      [chaos], the freeze duration for [hang].  [RATE:SECONDS] is
      shorthand for [RATE:stall:SECONDS]. *)

  val spec_to_string : config -> string
end
