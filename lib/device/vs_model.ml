type dibl = { delta0 : float; l_nominal : float; l_scale : float }

(* Clamped to a physical range: DIBL beyond ~0.4 V/V means punch-through,
   outside the model's validity (also keeps extreme Monte Carlo length draws
   from producing absurd devices). *)
let delta_of_length d l =
  Vstat_util.Floatx.clamp ~lo:1e-4 ~hi:0.4
    (d.delta0 *. exp ((d.l_nominal -. l) /. d.l_scale))

type params = {
  w : float;
  l : float;
  cinv : float;
  vt0 : float;
  dibl : dibl;
  n0 : float;
  nd : float;
  vxo : float;
  mu : float;
  beta : float;
  alpha_q : float;
  phit : float;
  gamma_body : float;
  phib : float;
  cov : float;
  ballistic_b : float;
}

let delta p = delta_of_length p.dibl p.l

(* Exponentials are guarded so that wild Newton iterates (tens of volts)
   saturate smoothly instead of overflowing. *)
let exp_guard x = exp (Vstat_util.Floatx.clamp ~lo:(-60.0) ~hi:60.0 x)

let canonical p ~vgs ~vds ~vbs =
  let phit = p.phit in
  let n = p.n0 +. (p.nd *. vds) in
  let vt_body =
    p.gamma_body *. (sqrt (Float.max (p.phib -. vbs) 1e-3) -. sqrt p.phib)
  in
  let vt = p.vt0 +. vt_body -. (delta p *. vds) in
  let aphit = p.alpha_q *. phit in
  (* Inversion transition function: 1 in subthreshold, 0 in strong inversion. *)
  let ff = 1.0 /. (1.0 +. exp_guard ((vgs -. (vt -. (aphit /. 2.0))) /. aphit)) in
  let qixo =
    p.cinv *. n *. phit
    *. Vstat_util.Floatx.softplus ((vgs -. (vt -. (aphit *. ff))) /. (n *. phit))
  in
  (* Saturation voltage blends from vxo.L/mu (strong inversion) to phit. *)
  let vdsats = p.vxo *. p.l /. p.mu in
  let vdsat = (vdsats *. (1.0 -. ff)) +. (phit *. ff) in
  let ratio = vds /. vdsat in
  let fsat = ratio /. ((1.0 +. (ratio ** p.beta)) ** (1.0 /. p.beta)) in
  let id = p.w *. fsat *. qixo *. p.vxo in
  (* Channel charge with a 50/50 (linear) to 60/40 (saturation) partition. *)
  let qi = p.w *. p.l *. qixo in
  let qd_frac = 0.5 -. (0.1 *. fsat) in
  let qov_s = p.cov *. p.w *. vgs in
  let qov_d = p.cov *. p.w *. (vgs -. vds) in
  {
    Device_model.id;
    qg = qi +. qov_s +. qov_d;
    qd = (-.qd_frac *. qi) -. qov_d;
    qs = (-.(1.0 -. qd_frac) *. qi) -. qov_s;
    qb = 0.0;
  }

(* Analytic bias derivatives of [canonical].  The formula sequence mirrors
   the value path above; suffixes _g/_d/_b are partials w.r.t. vgs/vds/vbs.
   Validated against central finite differences in the device test suite. *)
let canonical_derivs p ~vgs ~vds ~vbs =
  let phit = p.phit in
  let n = p.n0 +. (p.nd *. vds) in
  let n_d = p.nd in
  let argb = p.phib -. vbs in
  let sq = sqrt (Float.max argb 1e-3) in
  let vt_body = p.gamma_body *. (sq -. sqrt p.phib) in
  (* Zero slope once the sqrt argument clamps (deep forward body bias). *)
  let vt_body_b = if argb > 1e-3 then -.p.gamma_body /. (2.0 *. sq) else 0.0 in
  let dlt = delta p in
  let vt = p.vt0 +. vt_body -. (dlt *. vds) in
  let vt_d = -.dlt and vt_b = vt_body_b in
  let aphit = p.alpha_q *. phit in
  let u = (vgs -. (vt -. (aphit /. 2.0))) /. aphit in
  let eu = exp_guard u in
  let ff = 1.0 /. (1.0 +. eu) in
  (* d/du of 1/(1+e^u); vanishes smoothly at the exp guard's saturation. *)
  let dff_du = -.ff *. ff *. eu in
  let ff_g = dff_du /. aphit in
  let ff_d = -.dff_du *. vt_d /. aphit in
  let ff_b = -.dff_du *. vt_b /. aphit in
  let numer = vgs -. (vt -. (aphit *. ff)) in
  let numer_g = 1.0 +. (aphit *. ff_g) in
  let numer_d = -.vt_d +. (aphit *. ff_d) in
  let numer_b = -.vt_b +. (aphit *. ff_b) in
  let denom = n *. phit in
  let sarg = numer /. denom in
  let sarg_g = numer_g /. denom in
  let sarg_d = (numer_d -. (sarg *. phit *. n_d)) /. denom in
  let sarg_b = numer_b /. denom in
  let sp = Vstat_util.Floatx.softplus sarg in
  let dsp = Vstat_util.Floatx.logistic sarg in
  let qixo = p.cinv *. denom *. sp in
  let qixo_g = p.cinv *. denom *. dsp *. sarg_g in
  let qixo_d = p.cinv *. ((phit *. n_d *. sp) +. (denom *. dsp *. sarg_d)) in
  let qixo_b = p.cinv *. denom *. dsp *. sarg_b in
  let vdsats = p.vxo *. p.l /. p.mu in
  let vdsat = (vdsats *. (1.0 -. ff)) +. (phit *. ff) in
  let k_vdsat = phit -. vdsats in
  let vdsat_g = k_vdsat *. ff_g in
  let vdsat_d = k_vdsat *. ff_d in
  let vdsat_b = k_vdsat *. ff_b in
  let ratio = vds /. vdsat in
  let ratio_g = -.ratio *. vdsat_g /. vdsat in
  let ratio_d = (1.0 -. (ratio *. vdsat_d)) /. vdsat in
  let ratio_b = -.ratio *. vdsat_b /. vdsat in
  let rb = ratio ** p.beta in
  let fsat = ratio /. ((1.0 +. rb) ** (1.0 /. p.beta)) in
  (* d/dr [r (1+r^b)^(-1/b)] collapses to (1+r^b)^(-(1+b)/b). *)
  let dfsat_dratio = (1.0 +. rb) ** (-.(1.0 +. p.beta) /. p.beta) in
  let fsat_g = dfsat_dratio *. ratio_g in
  let fsat_d = dfsat_dratio *. ratio_d in
  let fsat_b = dfsat_dratio *. ratio_b in
  let wv = p.w *. p.vxo in
  let id = wv *. fsat *. qixo in
  let id_g = wv *. ((fsat_g *. qixo) +. (fsat *. qixo_g)) in
  let id_d = wv *. ((fsat_d *. qixo) +. (fsat *. qixo_d)) in
  let id_b = wv *. ((fsat_b *. qixo) +. (fsat *. qixo_b)) in
  let wl = p.w *. p.l in
  let qi = wl *. qixo in
  let qi_g = wl *. qixo_g and qi_d = wl *. qixo_d and qi_b = wl *. qixo_b in
  let qd_frac = 0.5 -. (0.1 *. fsat) in
  let qdf_g = -0.1 *. fsat_g in
  let qdf_d = -0.1 *. fsat_d in
  let qdf_b = -0.1 *. fsat_b in
  let cw = p.cov *. p.w in
  let qov_s = cw *. vgs in
  let qov_d = cw *. (vgs -. vds) in
  let state =
    {
      Device_model.id;
      qg = qi +. qov_s +. qov_d;
      qd = (-.qd_frac *. qi) -. qov_d;
      qs = (-.(1.0 -. qd_frac) *. qi) -. qov_s;
      qb = 0.0;
    }
  in
  let grad =
    {
      Device_model.d_vgs =
        {
          Device_model.id = id_g;
          qg = qi_g +. (2.0 *. cw);
          qd = -.((qdf_g *. qi) +. (qd_frac *. qi_g)) -. cw;
          qs = (qdf_g *. qi) -. ((1.0 -. qd_frac) *. qi_g) -. cw;
          qb = 0.0;
        };
      d_vds =
        {
          Device_model.id = id_d;
          qg = qi_d -. cw;
          qd = -.((qdf_d *. qi) +. (qd_frac *. qi_d)) +. cw;
          qs = (qdf_d *. qi) -. ((1.0 -. qd_frac) *. qi_d);
          qb = 0.0;
        };
      d_vbs =
        {
          Device_model.id = id_b;
          qg = qi_b;
          qd = -.((qdf_b *. qi) +. (qd_frac *. qi_b));
          qs = (qdf_b *. qi) -. ((1.0 -. qd_frac) *. qi_b);
          qb = 0.0;
        };
    }
  in
  (state, grad)

let device ?(name = "vs") ~polarity p =
  Device_model.make ~name ~polarity ~width:p.w ~length:p.l
    ~canonical_derivs:(canonical_derivs p) ~canonical:(canonical p) ()

(* W, Leff, Cinv, VT0, delta0, n0, nd, vxo, mu, beta, gamma_body — matching
   the paper's "11 for DC" headline count (alpha_q and phit are universal
   constants; phib rides with gamma_body). *)
let dc_parameter_count = 11
