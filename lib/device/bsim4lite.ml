type params = {
  w : float;
  l : float;
  dl : float;
  dw : float;
  cox : float;
  vth0 : float;
  k1 : float;
  phis : float;
  dvt0 : float;
  dvt_l : float;
  eta0 : float;
  eta_l : float;
  u0 : float;
  ua : float;
  ub : float;
  vsat : float;
  n_ss : float;
  lambda : float;
  phit : float;
  cov : float;
}

let leff p = Float.max (p.l -. p.dl) 1e-9
let weff p = Float.max (p.w -. p.dw) 1e-9

let vth p ~vds ~vbs =
  let l = leff p in
  let body =
    p.k1 *. (sqrt (Float.max (p.phis -. vbs) 1e-3) -. sqrt p.phis)
  in
  let rolloff = p.dvt0 *. exp (-.l /. p.dvt_l) in
  let dibl = p.eta0 *. exp (-.l /. p.eta_l) *. vds in
  p.vth0 +. body -. rolloff -. dibl

let canonical p ~vgs ~vds ~vbs =
  let l = leff p and w = weff p in
  let phit = p.phit in
  let vth = vth p ~vds ~vbs in
  (* Smoothed effective overdrive: exponential subthreshold, linear above. *)
  let nphit = p.n_ss *. phit in
  let vgsteff = nphit *. Vstat_util.Floatx.softplus ((vgs -. vth) /. nphit) in
  (* Vertical-field mobility degradation. *)
  let mu_eff =
    p.u0 /. (1.0 +. (p.ua *. vgsteff) +. (p.ub *. vgsteff *. vgsteff))
  in
  let esat = 2.0 *. p.vsat /. mu_eff in
  let esat_l = esat *. l in
  let vdsat = esat_l *. vgsteff /. (esat_l +. vgsteff +. 1e-12) in
  let vdsat = Float.max vdsat (2.0 *. phit) in
  (* Smooth minimum of Vds and Vdsat. *)
  let m = 4.0 in
  let vdseff = vds /. ((1.0 +. ((vds /. vdsat) ** m)) ** (1.0 /. m)) in
  (* BSIM-style bulk-charge factor keeps the current positive all the way
     into subthreshold, where Vdseff saturates at ~2 phit. *)
  let charge_factor = 1.0 -. (vdseff /. (2.0 *. (vgsteff +. (2.0 *. phit)))) in
  let id_core =
    mu_eff *. p.cox *. (w /. l)
    *. vgsteff *. vdseff *. charge_factor
    /. (1.0 +. (vdseff /. esat_l))
  in
  let id = id_core *. (1.0 +. (p.lambda *. (vds -. vdseff))) in
  (* Terminal charges: inversion charge ~ W L Cox Vgsteff, partitioned
     50/50 in triode to 60/40 in saturation; linear overlap caps. *)
  let qi = w *. l *. p.cox *. vgsteff in
  let sat_ratio = Vstat_util.Floatx.clamp ~lo:0.0 ~hi:1.0 (vdseff /. vdsat) in
  let qd_frac = 0.5 -. (0.1 *. sat_ratio) in
  let qov_s = p.cov *. w *. vgs in
  let qov_d = p.cov *. w *. (vgs -. vds) in
  {
    Device_model.id;
    qg = qi +. qov_s +. qov_d;
    qd = (-.qd_frac *. qi) -. qov_d;
    qs = (-.(1.0 -. qd_frac) *. qi) -. qov_s;
    qb = 0.0;
  }

(* Analytic bias derivatives of [canonical]; suffixes _g/_d/_b are partials
   w.r.t. vgs/vds/vbs.  Everything upstream of Vdseff (mobility, Esat,
   Vdsat) depends on bias only through Vgsteff, so those stages carry a
   single scalar derivative w.r.t. Vgsteff that is chained out at the end.
   Validated against central finite differences in the device test suite. *)
let canonical_derivs p ~vgs ~vds ~vbs =
  let l = leff p and w = weff p in
  let phit = p.phit in
  let argb = p.phis -. vbs in
  let sq = sqrt (Float.max argb 1e-3) in
  let body = p.k1 *. (sq -. sqrt p.phis) in
  let body_b = if argb > 1e-3 then -.p.k1 /. (2.0 *. sq) else 0.0 in
  let rolloff = p.dvt0 *. exp (-.l /. p.dvt_l) in
  let dibl_k = p.eta0 *. exp (-.l /. p.eta_l) in
  let vth = p.vth0 +. body -. rolloff -. (dibl_k *. vds) in
  let vth_d = -.dibl_k and vth_b = body_b in
  let nphit = p.n_ss *. phit in
  let sarg = (vgs -. vth) /. nphit in
  let vgsteff = nphit *. Vstat_util.Floatx.softplus sarg in
  let dsp = Vstat_util.Floatx.logistic sarg in
  let vg_g = dsp in
  let vg_d = -.dsp *. vth_d in
  let vg_b = -.dsp *. vth_b in
  let den_mu = 1.0 +. (p.ua *. vgsteff) +. (p.ub *. vgsteff *. vgsteff) in
  let mu_eff = p.u0 /. den_mu in
  (* d mu_eff / d vgsteff *)
  let mu' = -.mu_eff *. (p.ua +. (2.0 *. p.ub *. vgsteff)) /. den_mu in
  let esat_l = 2.0 *. p.vsat *. l /. mu_eff in
  let esl' = -.esat_l *. mu' /. mu_eff in
  let dv = esat_l +. vgsteff +. 1e-12 in
  let vdsat_raw = esat_l *. vgsteff /. dv in
  let vdsat_raw' =
    ((((esl' *. vgsteff) +. esat_l) *. dv) -. (esat_l *. vgsteff *. (esl' +. 1.0)))
    /. (dv *. dv)
  in
  let clamped = vdsat_raw <= 2.0 *. phit in
  let vdsat = if clamped then 2.0 *. phit else vdsat_raw in
  let vdsat' = if clamped then 0.0 else vdsat_raw' in
  let vdsat_g = vdsat' *. vg_g in
  let vdsat_d = vdsat' *. vg_d in
  let vdsat_b = vdsat' *. vg_b in
  (* m = 4: vdseff = vds (1 + r^4)^(-1/4); the direct-vds slope collapses to
     (1 + r^4)^(-5/4) and the vdsat slope to r^5 times the same factor. *)
  let r = vds /. vdsat in
  let r2 = r *. r in
  let rm = r2 *. r2 in
  let base = 1.0 +. rm in
  let vdseff = vds *. (base ** (-0.25)) in
  let a_eff = base ** (-1.25) in
  let b_eff = r *. rm *. a_eff in
  let ve_g = b_eff *. vdsat_g in
  let ve_d = a_eff +. (b_eff *. vdsat_d) in
  let ve_b = b_eff *. vdsat_b in
  let cden = 2.0 *. (vgsteff +. (2.0 *. phit)) in
  let cf = 1.0 -. (vdseff /. cden) in
  let cf_of ve_x vg_x =
    (-.ve_x /. cden) +. (vdseff *. 2.0 *. vg_x /. (cden *. cden))
  in
  let cf_g = cf_of ve_g vg_g and cf_d = cf_of ve_d vg_d
  and cf_b = cf_of ve_b vg_b in
  let dv2 = 1.0 +. (vdseff /. esat_l) in
  let dv2_of ve_x vg_x =
    (ve_x /. esat_l) -. (vdseff *. esl' *. vg_x /. (esat_l *. esat_l))
  in
  let dv2_g = dv2_of ve_g vg_g and dv2_d = dv2_of ve_d vg_d
  and dv2_b = dv2_of ve_b vg_b in
  let kk = p.cox *. w /. l in
  let id_core = kk *. mu_eff *. vgsteff *. vdseff *. cf /. dv2 in
  let id_core_of vg_x ve_x cf_x dv2_x =
    let prod_x =
      (mu' *. vg_x *. vgsteff *. vdseff *. cf)
      +. (mu_eff *. vg_x *. vdseff *. cf)
      +. (mu_eff *. vgsteff *. ve_x *. cf)
      +. (mu_eff *. vgsteff *. vdseff *. cf_x)
    in
    (kk *. prod_x /. dv2) -. (id_core *. dv2_x /. dv2)
  in
  let idc_g = id_core_of vg_g ve_g cf_g dv2_g in
  let idc_d = id_core_of vg_d ve_d cf_d dv2_d in
  let idc_b = id_core_of vg_b ve_b cf_b dv2_b in
  let lam_t = 1.0 +. (p.lambda *. (vds -. vdseff)) in
  let id = id_core *. lam_t in
  let id_g = (idc_g *. lam_t) -. (id_core *. p.lambda *. ve_g) in
  let id_d = (idc_d *. lam_t) +. (id_core *. p.lambda *. (1.0 -. ve_d)) in
  let id_b = (idc_b *. lam_t) -. (id_core *. p.lambda *. ve_b) in
  let wlc = w *. l *. p.cox in
  let qi = wlc *. vgsteff in
  let qi_g = wlc *. vg_g and qi_d = wlc *. vg_d and qi_b = wlc *. vg_b in
  let raw_s = vdseff /. vdsat in
  let sat_ratio = Vstat_util.Floatx.clamp ~lo:0.0 ~hi:1.0 raw_s in
  (* The lower clamp never binds (vds >= 0 in the canonical quadrant), so
     only the saturation-side clamp zeroes the slope. *)
  let sat_of ve_x vdsat_x =
    if raw_s < 1.0 then (ve_x -. (raw_s *. vdsat_x)) /. vdsat else 0.0
  in
  let s_g = sat_of ve_g vdsat_g and s_d = sat_of ve_d vdsat_d
  and s_b = sat_of ve_b vdsat_b in
  let qd_frac = 0.5 -. (0.1 *. sat_ratio) in
  let qdf_g = -0.1 *. s_g and qdf_d = -0.1 *. s_d and qdf_b = -0.1 *. s_b in
  let cw = p.cov *. w in
  let qov_s = cw *. vgs in
  let qov_d = cw *. (vgs -. vds) in
  let state =
    {
      Device_model.id;
      qg = qi +. qov_s +. qov_d;
      qd = (-.qd_frac *. qi) -. qov_d;
      qs = (-.(1.0 -. qd_frac) *. qi) -. qov_s;
      qb = 0.0;
    }
  in
  let grad =
    {
      Device_model.d_vgs =
        {
          Device_model.id = id_g;
          qg = qi_g +. (2.0 *. cw);
          qd = -.((qdf_g *. qi) +. (qd_frac *. qi_g)) -. cw;
          qs = (qdf_g *. qi) -. ((1.0 -. qd_frac) *. qi_g) -. cw;
          qb = 0.0;
        };
      d_vds =
        {
          Device_model.id = id_d;
          qg = qi_d -. cw;
          qd = -.((qdf_d *. qi) +. (qd_frac *. qi_d)) +. cw;
          qs = (qdf_d *. qi) -. ((1.0 -. qd_frac) *. qi_d);
          qb = 0.0;
        };
      d_vbs =
        {
          Device_model.id = id_b;
          qg = qi_b;
          qd = -.((qdf_b *. qi) +. (qd_frac *. qi_b));
          qs = (qdf_b *. qi) -. ((1.0 -. qd_frac) *. qi_b);
          qb = 0.0;
        };
    }
  in
  (state, grad)

let device ?(name = "bsim4lite") ~polarity p =
  Device_model.make ~name ~polarity ~width:(weff p) ~length:(leff p)
    ~canonical_derivs:(canonical_derivs p) ~canonical:(canonical p) ()

let parameter_count = 20
