type polarity = Nmos | Pmos

type terminal_state = {
  id : float;
  qg : float;
  qd : float;
  qs : float;
  qb : float;
}

type canonical_eval = vgs:float -> vds:float -> vbs:float -> terminal_state

type canonical_grad = {
  d_vgs : terminal_state;
  d_vds : terminal_state;
  d_vbs : terminal_state;
}

type canonical_eval_derivs =
  vgs:float -> vds:float -> vbs:float -> terminal_state * canonical_grad

type derivs = {
  mutable v_id : float;
  mutable v_qg : float;
  mutable v_qd : float;
  mutable v_qs : float;
  mutable v_qb : float;
  did : float array;
  dq : float array;
}

let make_derivs () =
  {
    v_id = 0.0;
    v_qg = 0.0;
    v_qd = 0.0;
    v_qs = 0.0;
    v_qb = 0.0;
    did = Array.make 4 0.0;
    dq = Array.make 16 0.0;
  }

type eval_derivs = vg:float -> vd:float -> vs:float -> vb:float -> derivs -> unit

type t = {
  name : string;
  polarity : polarity;
  width : float;
  length : float;
  eval : vg:float -> vd:float -> vs:float -> vb:float -> terminal_state;
  eval_derivs : eval_derivs option;
}

(* Shared quadrant bookkeeping for [make] and the derivative wrapper:
   mirror a PMOS into the NMOS quadrant, and swap source/drain so the
   canonical equations only ever see vds >= 0. *)
let eval_of_canonical sign (canonical : canonical_eval) ~vg ~vd ~vs ~vb =
  let vg = sign *. vg and vd = sign *. vd and vs = sign *. vs
  and vb = sign *. vb in
  let swapped = vd < vs in
  let d, s = if swapped then (vs, vd) else (vd, vs) in
  let state = canonical ~vgs:(vg -. s) ~vds:(d -. s) ~vbs:(vb -. s) in
  let id = if swapped then -.state.id else state.id in
  let qd, qs = if swapped then (state.qs, state.qd) else (state.qd, state.qs) in
  {
    id = sign *. id;
    qg = sign *. state.qg;
    qd = sign *. qd;
    qs = sign *. qs;
    qb = sign *. state.qb;
  }

(* Chain rule from canonical partials (d/dvgs, d/dvds, d/dvbs) to the four
   terminal voltages.  With terminal index order (g, d, s, b) and [can_d]/
   [can_s] the physical terminals playing canonical drain/source:
     df/dVg      = f_gs
     df/dV_can_d = f_ds
     df/dVb      = f_bs
     df/dV_can_s = -(f_gs + f_ds + f_bs)
   The polarity mirror drops out entirely: outputs carry one factor of
   [sign] and the input voltages another, and sign^2 = 1. *)
let eval_derivs_of_canonical sign (cd : canonical_eval_derivs) ~vg ~vd ~vs ~vb
    (out : derivs) =
  let vg = sign *. vg and vd = sign *. vd and vs = sign *. vs
  and vb = sign *. vb in
  let swapped = vd < vs in
  let d, s = if swapped then (vs, vd) else (vd, vs) in
  let state, grad = cd ~vgs:(vg -. s) ~vds:(d -. s) ~vbs:(vb -. s) in
  let can_d = if swapped then 2 else 1 in
  let can_s = if swapped then 1 else 2 in
  let write4 arr off fgs fds fbs scale =
    arr.(off) <- scale *. fgs;
    arr.(off + can_d) <- scale *. fds;
    arr.(off + 3) <- scale *. fbs;
    arr.(off + can_s) <- -.scale *. (fgs +. fds +. fbs)
  in
  let swap_sign = if swapped then -1.0 else 1.0 in
  out.v_id <- sign *. swap_sign *. state.id;
  out.v_qg <- sign *. state.qg;
  out.v_qb <- sign *. state.qb;
  let qd, qs = if swapped then (state.qs, state.qd) else (state.qd, state.qs) in
  out.v_qd <- sign *. qd;
  out.v_qs <- sign *. qs;
  write4 out.did 0 grad.d_vgs.id grad.d_vds.id grad.d_vbs.id swap_sign;
  (* dq rows in physical terminal order g, d, s, b; the physical drain's
     charge is the canonical source's when swapped. *)
  write4 out.dq 0 grad.d_vgs.qg grad.d_vds.qg grad.d_vbs.qg 1.0;
  if swapped then begin
    write4 out.dq 4 grad.d_vgs.qs grad.d_vds.qs grad.d_vbs.qs 1.0;
    write4 out.dq 8 grad.d_vgs.qd grad.d_vds.qd grad.d_vbs.qd 1.0
  end
  else begin
    write4 out.dq 4 grad.d_vgs.qd grad.d_vds.qd grad.d_vbs.qd 1.0;
    write4 out.dq 8 grad.d_vgs.qs grad.d_vds.qs grad.d_vbs.qs 1.0
  end;
  write4 out.dq 12 grad.d_vgs.qb grad.d_vds.qb grad.d_vbs.qb 1.0

let make ~name ~polarity ~width ~length ?canonical_derivs ~canonical () =
  let sign = match polarity with Nmos -> 1.0 | Pmos -> -1.0 in
  {
    name;
    polarity;
    width;
    length;
    eval = eval_of_canonical sign canonical;
    eval_derivs =
      Option.map (fun cd -> eval_derivs_of_canonical sign cd) canonical_derivs;
  }

let without_derivs t = { t with eval_derivs = None }

type proxy = { mutable target : t; tmpl_polarity : polarity; tmpl_derivs : bool }

let proxy template =
  {
    target = template;
    tmpl_polarity = template.polarity;
    tmpl_derivs = Option.is_some template.eval_derivs;
  }

let[@vstat.allow "exn-discipline"] proxy_device p =
  let template = p.target in
  {
    name = template.name ^ ":proxy";
    polarity = template.polarity;
    width = template.width;
    length = template.length;
    eval = (fun ~vg ~vd ~vs ~vb -> p.target.eval ~vg ~vd ~vs ~vb);
    eval_derivs =
      (if p.tmpl_derivs then
         Some
           (fun ~vg ~vd ~vs ~vb buf ->
             match p.target.eval_derivs with
             | Some f -> f ~vg ~vd ~vs ~vb buf
             | None ->
               (* retarget guards against this; defend anyway so a torn
                  proxy fails loudly rather than stamping garbage. *)
               invalid_arg
                 "Device_model.proxy: target lost analytic derivatives")
       else None);
  }

let[@vstat.allow "exn-discipline"] retarget p d =
  if d.polarity <> p.tmpl_polarity then
    invalid_arg "Device_model.retarget: polarity differs from template";
  if Option.is_some d.eval_derivs <> p.tmpl_derivs then
    invalid_arg
      "Device_model.retarget: analytic-derivative availability differs \
       from template";
  p.target <- d

let ids t ~vg ~vd ~vs ~vb = (t.eval ~vg ~vd ~vs ~vb).id

let central f x dv = (f (x +. dv) -. f (x -. dv)) /. (2.0 *. dv)

let gm ?(dv = 1e-5) t ~vg ~vd ~vs ~vb =
  central (fun vg -> ids t ~vg ~vd ~vs ~vb) vg dv

let gds ?(dv = 1e-5) t ~vg ~vd ~vs ~vb =
  central (fun vd -> ids t ~vg ~vd ~vs ~vb) vd dv

let cgg ?(dv = 1e-5) t ~vg ~vd ~vs ~vb =
  central (fun vg -> (t.eval ~vg ~vd ~vs ~vb).qg) vg dv
