(** Small floating-point helpers shared across the library. *)

val close : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [close a b] holds when |a - b| <= atol + rtol * max(|a|, |b|).
    Defaults: rtol = 1e-9, atol = 1e-12. *)

val clamp : lo:float -> hi:float -> float -> float
(** Restrict a value to [lo, hi]. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b] inclusive.
    [n] must be >= 2. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] points spaced evenly in log10 from 10^a to 10^b. *)

val interp_linear : xs:float array -> ys:float array -> float -> float
(** Piecewise-linear interpolation of the sampled function (xs, ys) at a
    point; [xs] must be strictly increasing.  Extrapolates linearly from the
    end segments. *)

val first_crossing :
  ?start:int ->
  ?min_x:float ->
  xs:float array -> ys:float array -> level:float -> rising:bool -> unit ->
  float option
(** [first_crossing ~xs ~ys ~level ~rising ()] is the abscissa at which the
    sampled waveform first crosses [level] in the requested direction,
    located by linear interpolation inside the bracketing segment.  The scan
    begins at segment index [start] (default 0), and crossings interpolating
    to an abscissa below [min_x] are skipped rather than returned — the
    combination lets a caller restrict the search to "at or after a given
    time" without truncating away the segment that straddles it. *)

val log10_safe : float -> float
(** log10 clamped away from non-positive arguments (returns log10 of a tiny
    positive floor instead of nan/-inf), used for [log10 Ioff] metrics. *)

val softplus : float -> float
(** Numerically-stable ln(1 + exp x): linear for large x, exp for small. *)

val logistic : float -> float
(** 1 / (1 + exp(-x)), with branch cutovers matching {!softplus} so it is
    exactly its derivative (used by the analytic compact-model Jacobians). *)

val pp_table :
  Format.formatter -> header:string list -> rows:string list list -> unit
(** Render an aligned ASCII table (used by the experiment CLI). *)
