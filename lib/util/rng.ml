type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable cached_gaussian : float option;
}

(* SplitMix64 step, used only to expand the seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  let z = add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_gaussian = None }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

(* Golden-ratio increment, the SplitMix64 stream constant. *)
let gamma = 0x9E3779B97F4A7C15L

let substream ~seed ~index =
  if index < 0 then invalid_arg "Rng.substream: index must be >= 0";
  (* Counter-indexed stream derivation: expand the seed once, jump the
     SplitMix64 counter by [index] gammas, then expand into xoshiro state.
     A pure function of (seed, index) — no shared mutable state — so sample
     [index] sees the same stream under any scheduling of the others. *)
  let state = ref (Int64.of_int seed) in
  let key = splitmix64 state in
  (* The output mix is a bijection of the jumped counter, so distinct
     indices land on distinct, well-separated expansion counters (no
     overlapping windows between neighbouring indices). *)
  let counter = ref (Int64.add key (Int64.mul (Int64.of_int index) gamma)) in
  let state = ref (splitmix64 counter) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_gaussian = None }

let copy t =
  { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3;
    cached_gaussian = t.cached_gaussian }

let float t =
  (* Use the top 53 bits for a uniform double on [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec loop () =
    let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = raw mod bound in
    if raw - v + (bound - 1) >= 0 then v else loop ()
  in
  loop ()

let gaussian t =
  match t.cached_gaussian with
  | Some g ->
    t.cached_gaussian <- None;
    g
  | None ->
    let rec polar () =
      let u = uniform t ~lo:(-1.0) ~hi:1.0 in
      let v = uniform t ~lo:(-1.0) ~hi:1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || Float.equal s 0.0 then polar ()
      else begin
        let scale = sqrt (-2.0 *. log s /. s) in
        t.cached_gaussian <- Some (v *. scale);
        u *. scale
      end
    in
    polar ()

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

let lognormal t ~mu ~sigma = exp (gaussian_scaled t ~mean:mu ~sigma)
