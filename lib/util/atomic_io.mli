(** Crash-safe whole-file IO: write-temp → [fsync] → atomic rename →
    [fsync] of the containing directory.

    The atomicity contract (POSIX [rename(2)]) guarantees a concurrent or
    post-crash reader observes either the previous contents of [path] or
    the complete new contents, never a torn intermediate — the property
    the checkpoint {!Vstat_runtime} journal builds its recovery story on. *)

val write_file : path:string -> string -> unit
(** Replace [path] with [contents] atomically and durably.  The parent
    directory is created if missing.  @raise Unix.Unix_error on IO
    failure (the temp file is removed on a failed rename). *)

val read_file : path:string -> (string, string) result
(** Whole-file read; [Error msg] if the file is missing or unreadable. *)

val ensure_dir : string -> unit
(** [mkdir -p].  @raise Invalid_argument if [dir] exists as a non-directory. *)
