(* Crash-safe file replacement: write-temp -> fsync -> atomic rename ->
   fsync(dir).  A reader never observes a half-written file — it sees
   either the old contents or the new, which is the property the runtime's
   checkpoint snapshots rely on when a run is killed mid-flush. *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let ensure_dir dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Atomic_io.ensure_dir: %s is not a directory" dir)

let fsync_dir dir =
  (* Directory fsync makes the rename itself durable.  Not every
     filesystem supports it (and it is not required for atomicity, only
     for durability of the name), so failures are ignored. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_file ~path contents =
  let dir = Filename.dirname path in
  ensure_dir dir;
  let tmp =
    Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
  in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes = Bytes.unsafe_of_string contents in
      let len = Bytes.length bytes in
      let written = ref 0 in
      while !written < len do
        written :=
          !written + Unix.write fd bytes !written (len - !written)
      done;
      Unix.fsync fd);
  (try Unix.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  fsync_dir dir

let read_file ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Ok s
        | exception End_of_file ->
          Error (Printf.sprintf "%s: truncated while reading" path))
