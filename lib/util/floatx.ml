let close ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let linspace a b n =
  if n < 2 then invalid_arg "Floatx.linspace: need at least 2 points";
  let step = (b -. a) /. Float.of_int (n - 1) in
  Array.init n (fun i -> a +. (step *. Float.of_int i))

let logspace a b n =
  Array.map (fun e -> 10.0 ** e) (linspace a b n)

let interp_linear ~xs ~ys x =
  let n = Array.length xs in
  if n = 0 || Array.length ys <> n then
    invalid_arg "Floatx.interp_linear: arrays must be non-empty and equal";
  if n = 1 then ys.(0)
  else begin
    (* Binary search for the segment containing x. *)
    let lo = ref 0 and hi = ref (n - 1) in
    if x <= xs.(0) then hi := 1
    else if x >= xs.(n - 1) then lo := n - 2
    else
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if xs.(mid) <= x then lo := mid else hi := mid
      done;
    let x0 = xs.(!lo) and x1 = xs.(!hi) in
    let y0 = ys.(!lo) and y1 = ys.(!hi) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

let first_crossing ?(start = 0) ?min_x ~xs ~ys ~level ~rising () =
  let n = Array.length xs in
  let crossed y0 y1 =
    if rising then y0 < level && y1 >= level else y0 > level && y1 <= level
  in
  let keep x = match min_x with None -> true | Some m -> x >= m in
  let rec scan i =
    if i >= n - 1 then None
    else begin
      let y0 = ys.(i) and y1 = ys.(i + 1) in
      if crossed y0 y1 then begin
        let frac = (level -. y0) /. (y1 -. y0) in
        let x = xs.(i) +. (frac *. (xs.(i + 1) -. xs.(i))) in
        if keep x then Some x else scan (i + 1)
      end
      else scan (i + 1)
    end
  in
  scan (Int.max 0 start)

let log10_safe x = log10 (Float.max x 1e-300)

let softplus x =
  if x > 40.0 then x
  else if x < -40.0 then exp x
  else log1p (exp x)

(* Branches mirror [softplus] exactly so that logistic is its derivative
   everywhere, including across the cutover points. *)
let logistic x =
  if x > 40.0 then 1.0
  else if x < -40.0 then exp x
  else 1.0 /. (1.0 +. exp (-.x))

let pp_table ppf ~header ~rows =
  let all = header :: rows in
  let columns = List.length header in
  let width col =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row col with
        | Some cell -> Int.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let render row =
    let cells =
      List.mapi
        (fun i w ->
          let cell = match List.nth_opt row i with Some c -> c | None -> "" in
          cell ^ String.make (w - String.length cell) ' ')
        widths
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  Format.fprintf ppf "%s@\n%s@\n" (render header) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@\n" (render row)) rows
