let sqrt2 = sqrt 2.0
let sqrt_2pi = sqrt (2.0 *. Float.pi)

(* Abramowitz & Stegun 7.1.26, |error| < 1.5e-7. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
        +. (t
            *. (-0.284496736
                +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))

let erfc x = 1.0 -. erf x

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt2)

let normal_pdf x = exp (-0.5 *. x *. x) /. sqrt_2pi

(* Acklam's rational approximation for the inverse normal CDF, refined by one
   Halley step against [normal_cdf] to push the error below 1e-9. *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Special.normal_quantile: p must lie in (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
         /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
    end
  in
  (* One Halley refinement step. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt_2pi *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

(* Lanczos approximation, g = 7, n = 9. *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let log_gamma_positive x =
  let x = x -. 1.0 in
  let acc = ref lanczos_coefficients.(0) in
  for i = 1 to 8 do
    acc := !acc +. (lanczos_coefficients.(i) /. (x +. Float.of_int i))
  done;
  let t = x +. 7.5 in
  (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

let log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: x must be positive";
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma_positive (1.0 -. x)
  else log_gamma_positive x

(* Regularized lower incomplete gamma P(a, x): series for x < a+1,
   continued fraction otherwise (Numerical Recipes 6.2). *)
let gamma_p a x =
  if x < 0.0 || a <= 0.0 then invalid_arg "Special.gamma_p";
  if Float.equal x 0.0 then 0.0
  else if x < a +. 1.0 then begin
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    (try
       for _ = 1 to 200 do
         ap := !ap +. 1.0;
         del := !del *. x /. !ap;
         sum := !sum +. !del;
         if Float.abs !del < Float.abs !sum *. 1e-15 then raise Exit
       done
     with Exit -> ());
    !sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)
  end
  else begin
    let tiny = 1e-300 in
    let b = ref (x +. 1.0 -. a) in
    let c = ref (1.0 /. tiny) in
    let d = ref (1.0 /. !b) in
    let h = ref !d in
    (try
       for i = 1 to 200 do
         let an = -.Float.of_int i *. (Float.of_int i -. a) in
         b := !b +. 2.0;
         d := (an *. !d) +. !b;
         if Float.abs !d < tiny then d := tiny;
         c := !b +. (an /. !c);
         if Float.abs !c < tiny then c := tiny;
         d := 1.0 /. !d;
         let del = !d *. !c in
         h := !h *. del;
         if Float.abs (del -. 1.0) < 1e-15 then raise Exit
       done
     with Exit -> ());
    1.0 -. (exp ((-.x) +. (a *. log x) -. log_gamma a) *. !h)
  end

let chi2_quantile ~p ~dof =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Special.chi2_quantile: p must lie in (0, 1)";
  if dof <= 0 then invalid_arg "Special.chi2_quantile: dof must be positive";
  let a = Float.of_int dof /. 2.0 in
  let cdf x = gamma_p a (x /. 2.0) in
  (* Bracket then bisect; monotone CDF makes this unconditionally robust. *)
  let hi = ref (Float.of_int dof) in
  while cdf !hi < p do
    hi := !hi *. 2.0
  done;
  let lo = ref 0.0 in
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if cdf mid < p then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)
