(** CRC-32 (IEEE 802.3) checksums — the integrity footer format of the
    runtime's checkpoint snapshots.

    The 32-bit state is kept in a native [int] (always non-negative, fits
    on 64-bit OCaml), so digests compare with [Int.equal] and serialize as
    an unsigned 32-bit field. *)

val digest : string -> int
(** CRC-32 of the whole string.  [digest "123456789" = 0xCBF43926]. *)

val digest_sub : string -> pos:int -> len:int -> int
(** CRC-32 of a substring.  @raise Invalid_argument on out-of-bounds. *)

val update : int -> string -> pos:int -> len:int -> int
(** Streaming form: [update crc s ~pos ~len] extends a previous digest, so
    [digest (a ^ b) = update (digest a) b ~pos:0 ~len:(String.length b)]. *)
