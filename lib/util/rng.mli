(** Deterministic, seedable pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment is reproducible from an explicit integer seed.  The generator
    is xoshiro256++ seeded through SplitMix64, which has good statistical
    quality and a tiny state (4 words). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a fresh generator.  Two generators built with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each Monte Carlo sample its own stream so that per-sample
    results do not depend on evaluation order. *)

val substream : seed:int -> index:int -> t
(** [substream ~seed ~index] is the [index]-th member of a family of
    generators derived from [seed] by a SplitMix64 counter jump.  Unlike
    {!split}, it is a pure function of its arguments: sample [index] always
    sees the same stream regardless of how many workers evaluate the family
    or in what order, which is what makes parallel Monte Carlo results
    independent of the worker count ({!Vstat_runtime.Runtime}).
    [index] must be non-negative; streams at distinct indices are
    statistically independent. *)

val copy : t -> t
(** [copy t] is a snapshot of [t]; advancing one does not affect the other. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [0, 1) with 53 bits of precision. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi). *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform on [0, bound).  [bound] must be positive. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller, polar form, with caching). *)

val gaussian_scaled : t -> mean:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Deviate of exp(N(mu, sigma^2)). *)
