(** Levenberg–Marquardt nonlinear least squares.

    Minimizes ||r(x)||^2 for a residual vector function r, with a
    finite-difference Jacobian and the classic adaptive damping between
    Gauss–Newton (fast near the optimum) and gradient descent (robust far
    from it).  An alternative to {!Nelder_mead} for smooth fitting problems
    such as the nominal VS extraction. *)

type result = {
  x : float array;
  residual_norm : float;   (** ||r(x)||_2 at the solution *)
  iterations : int;
  converged : bool;
}

val minimize :
  ?max_iter:int ->
  ?lambda0:float ->
  ?g_tol:float ->
  ?x_tol:float ->
  ?fd_step:float ->
  residual:(float array -> float array) ->
  x0:float array ->
  unit ->
  result
(** [minimize ~residual ~x0 ()] — [residual x] must always return the same
    length m >= n.  Convergence when the gradient norm falls below [g_tol]
    (default 1e-12 relative) or the step stalls below [x_tol]
    (default 1e-12 relative).  [lambda0] is the initial damping (1e-3).
    @raise Invalid_argument on empty input.  Singular damped normal
    equations are not an error: the damping is increased and the
    iteration continues, so a persistently singular system ends with
    [converged = false] rather than an exception. *)
