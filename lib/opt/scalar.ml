let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if Float.equal flo 0.0 then lo
  else if Float.equal fhi 0.0 then hi
  else if flo *. fhi > 0.0 then
    invalid_arg "Scalar.bisect: interval does not bracket a root"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let i = ref 0 in
    while !hi -. !lo > tol *. Float.max 1.0 (Float.abs !hi) && !i < max_iter do
      incr i;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if Float.equal fmid 0.0 then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fmid < 0.0 then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    0.5 *. (!lo +. !hi)
  end

let bisect_predicate ?(tol = 1e-13) ?(max_iter = 100) ~f ~lo ~hi () =
  if f lo then invalid_arg "Scalar.bisect_predicate: f lo must be false";
  if not (f hi) then invalid_arg "Scalar.bisect_predicate: f hi must be true";
  let lo = ref lo and hi = ref hi in
  let i = ref 0 in
  while !hi -. !lo > tol *. Float.max 1.0 (Float.abs !hi) && !i < max_iter do
    incr i;
    let mid = 0.5 *. (!lo +. !hi) in
    if f mid then hi := mid else lo := mid
  done;
  !hi

let golden_max ?(tol = 1e-10) ?(max_iter = 200) ~f ~lo ~hi () =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let lo = ref lo and hi = ref hi in
  let x1 = ref (!hi -. (phi *. (!hi -. !lo))) in
  let x2 = ref (!lo +. (phi *. (!hi -. !lo))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let i = ref 0 in
  while !hi -. !lo > tol *. Float.max 1.0 (Float.abs !hi) && !i < max_iter do
    incr i;
    if !f1 >= !f2 then begin
      hi := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !hi -. (phi *. (!hi -. !lo));
      f1 := f !x1
    end
    else begin
      lo := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !lo +. (phi *. (!hi -. !lo));
      f2 := f !x2
    end
  done;
  let x = 0.5 *. (!lo +. !hi) in
  (x, f x)
