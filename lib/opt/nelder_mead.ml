type result = { x : float array; f : float; iterations : int; converged : bool }

let default_step x0 =
  Array.map
    (fun x -> if Float.equal x 0.0 then 0.01 else 0.05 *. Float.abs x)
    x0

let minimize ?(max_iter = 2000) ?(f_tol = 1e-12) ?(x_tol = 1e-10)
    ?initial_step ~f ~x0 () =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Nelder_mead.minimize: empty x0";
  let step = match initial_step with Some s -> s | None -> default_step x0 in
  if Array.length step <> n then
    invalid_arg "Nelder_mead.minimize: initial_step length";
  (* Simplex of n+1 vertices with their objective values. *)
  let vertices =
    Array.init (n + 1) (fun i ->
        let v = Array.copy x0 in
        if i > 0 then v.(i - 1) <- v.(i - 1) +. step.(i - 1);
        v)
  in
  let values = Array.map f vertices in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun i j -> Float.compare values.(i) values.(j)) idx;
    idx
  in
  let centroid_excluding worst =
    let c = Array.make n 0.0 in
    Array.iteri
      (fun k v ->
        if k <> worst then
          Array.iteri (fun i x -> c.(i) <- c.(i) +. x) v)
      vertices;
    Array.map (fun x -> x /. Float.of_int n) c
  in
  let point_along c w t =
    (* c + t * (c - w) *)
    Array.init n (fun i -> c.(i) +. (t *. (c.(i) -. w.(i))))
  in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
    let f_best = values.(best) and f_worst = values.(worst) in
    (* Convergence tests. *)
    let f_spread =
      Float.abs (f_worst -. f_best)
      /. Float.max 1e-300 (Float.abs f_worst +. Float.abs f_best)
    in
    let x_spread =
      Vstat_linalg.Vec.max_rel_diff vertices.(best) vertices.(worst)
    in
    if f_spread < f_tol || x_spread < x_tol then converged := true
    else begin
      let c = centroid_excluding worst in
      let w = vertices.(worst) in
      let reflected = point_along c w 1.0 in
      let f_reflected = f reflected in
      if f_reflected < f_best then begin
        let expanded = point_along c w 2.0 in
        let f_expanded = f expanded in
        if f_expanded < f_reflected then begin
          vertices.(worst) <- expanded;
          values.(worst) <- f_expanded
        end
        else begin
          vertices.(worst) <- reflected;
          values.(worst) <- f_reflected
        end
      end
      else if f_reflected < values.(second_worst) then begin
        vertices.(worst) <- reflected;
        values.(worst) <- f_reflected
      end
      else begin
        let contracted =
          if f_reflected < f_worst then point_along c w 0.5
          else point_along c w (-0.5)
        in
        let f_contracted = f contracted in
        if f_contracted < Float.min f_reflected f_worst then begin
          vertices.(worst) <- contracted;
          values.(worst) <- f_contracted
        end
        else begin
          (* Shrink toward the best vertex. *)
          let b = vertices.(best) in
          Array.iteri
            (fun k v ->
              if k <> best then begin
                let shrunk =
                  Array.init n (fun i -> b.(i) +. (0.5 *. (v.(i) -. b.(i))))
                in
                vertices.(k) <- shrunk;
                values.(k) <- f shrunk
              end)
            vertices
        end
      end
    end
  done;
  let idx = order () in
  {
    x = Array.copy vertices.(idx.(0));
    f = values.(idx.(0));
    iterations = !iterations;
    converged = !converged;
  }

let minimize_restarts ?(restarts = 3) ?(max_iter = 2000) ~f ~x0 () =
  let rec go k best =
    if k >= restarts then best
    else begin
      let r = minimize ~max_iter ~f ~x0:best.x () in
      let best = if r.f < best.f then r else best in
      (* Stop early when a restart makes no progress. *)
      if Float.abs (r.f -. best.f) <= 1e-15 *. Float.abs best.f && k > 0 then best
      else go (k + 1) best
    end
  in
  let first = minimize ~max_iter ~f ~x0 () in
  go 1 first
