(** Device-level Monte Carlo: sample mismatch instances and collect the
    electrical metric distributions (paper Table III, Figs. 3 and 4).

    Sampling runs on {!Vstat_runtime.Runtime}: sample [i] draws from
    [Rng.substream] index [i] (the base seed is one draw off [rng]), so the
    returned arrays are index-stable and bit-identical for any [jobs]. *)

type samples = {
  idsat : float array;        (** A *)
  log10_ioff : float array;
  cgg : float array;          (** F *)
}

val run :
  ?jobs:int ->
  ?checkpoint:Vstat_runtime.Checkpoint.settings ->
  ?deadline:(unit -> bool) ->
  ?signals:int list ->
  ?label:string ->
  ?fingerprint:string ->
  sampler:(Vstat_util.Rng.t -> Vstat_device.Device_model.t) ->
  rng:Vstat_util.Rng.t ->
  n:int ->
  vdd:float ->
  unit ->
  samples
(** Draw [n] devices and measure all three metrics on each.  [jobs]
    defaults to {!Vstat_runtime.Runtime.default_jobs}; any sampler
    exception is re-raised (zero failure budget).

    With [checkpoint]/[deadline]/[signals] the run goes through
    {!Vstat_runtime.Checkpoint.run} (label defaults to ["mc_device"]):
    completed samples are journaled and a resumed or uninterrupted run
    yields bit-identical arrays.  When the deadline fires, the arrays are
    compacted over the completed samples (shorter, still index-ordered); a
    trapped signal raises {!Vstat_runtime.Checkpoint.Interrupted} after
    the final snapshot flush. *)

val of_vs :
  ?jobs:int ->
  ?checkpoint:Vstat_runtime.Checkpoint.settings ->
  ?deadline:(unit -> bool) ->
  ?signals:int list ->
  ?label:string ->
  ?fingerprint:string ->
  Vs_statistical.t -> rng:Vstat_util.Rng.t -> n:int ->
  w_nm:float -> l_nm:float -> vdd:float -> samples

val of_bsim :
  ?jobs:int ->
  ?checkpoint:Vstat_runtime.Checkpoint.settings ->
  ?deadline:(unit -> bool) ->
  ?signals:int list ->
  ?label:string ->
  ?fingerprint:string ->
  Bsim_statistical.t -> rng:Vstat_util.Rng.t -> n:int ->
  w_nm:float -> l_nm:float -> vdd:float -> samples

val summary :
  samples ->
  Vstat_runtime.Accum.t * Vstat_runtime.Accum.t * Vstat_runtime.Accum.t
(** Streaming-accumulator summaries of (idsat, log10_ioff, cgg) — count,
    mean, unbiased std, extrema — as used by BPV observation. *)
