type t = {
  vdd : float;
  geometries : (float * float) list;
  golden_nmos : Bsim_statistical.t;
  golden_pmos : Bsim_statistical.t;
  fit_nmos : Extract_nominal.result;
  fit_pmos : Extract_nominal.result;
  observations_nmos : Bpv.observation list;
  observations_pmos : Bpv.observation list;
  bpv_nmos : Bpv.result;
  bpv_pmos : Bpv.result;
  vs_nmos : Vs_statistical.t;
  vs_pmos : Vs_statistical.t;
}

let default_geometries =
  [
    (120.0, 40.0);
    (200.0, 40.0);
    (300.0, 40.0);
    (600.0, 40.0);
    (1000.0, 40.0);
    (1500.0, 40.0);
  ]

let build ?(seed = 42) ?jobs ?checkpoint ?deadline ?signals
    ?(mc_per_geometry = 2000) ?(geometries = default_geometries)
    ?(vdd = Vstat_device.Cards.vdd_nominal) () =
  let rng = Vstat_util.Rng.create ~seed in
  let golden_nmos = Bsim_statistical.golden_nmos in
  let golden_pmos = Bsim_statistical.golden_pmos in
  Logs.info (fun m -> m "pipeline: fitting nominal VS cards");
  let fit_nmos =
    Extract_nominal.fit ~polarity:Vstat_device.Device_model.Nmos ()
  in
  let fit_pmos =
    Extract_nominal.fit ~polarity:Vstat_device.Device_model.Pmos ()
  in
  let provisional polarity label fit alphas =
    {
      Vs_statistical.label;
      polarity;
      alphas;
      nominal =
        (fun ~w_nm ~l_nm -> fit.Extract_nominal.params_of ~w_nm ~l_nm);
    }
  in
  (* Each geometry gets its own snapshot file (label = polarity +
     geometry), so an interrupted pipeline build resumes from the first
     geometry whose journal is incomplete. *)
  let observe pol golden =
    List.map
      (fun (w_nm, l_nm) ->
        Bpv.observe_golden ?jobs ?checkpoint ?deadline ?signals
          ~label:(Printf.sprintf "bpv-%s-w%g-l%g" pol w_nm l_nm)
          ~fingerprint:
            (Printf.sprintf "pipeline:seed=%d:vdd=%g:n=%d" seed vdd
               mc_per_geometry)
          golden
          ~rng:(Vstat_util.Rng.split rng)
          ~n:mc_per_geometry ~vdd ~w_nm ~l_nm)
      geometries
  in
  Logs.info (fun m -> m "pipeline: measuring golden sigmas");
  let observations_nmos = observe "nmos" golden_nmos in
  let observations_pmos = observe "pmos" golden_pmos in
  Logs.info (fun m -> m "pipeline: running BPV extraction");
  let options_n =
    { Bpv.default_options with known_cinv_alpha = golden_nmos.alphas.a_cinv }
  in
  let options_p =
    { Bpv.default_options with known_cinv_alpha = golden_pmos.alphas.a_cinv }
  in
  let pre_n =
    provisional Vstat_device.Device_model.Nmos "vs-stat-nmos" fit_nmos
      Variation.paper_alphas_nmos
  in
  let pre_p =
    provisional Vstat_device.Device_model.Pmos "vs-stat-pmos" fit_pmos
      Variation.paper_alphas_pmos
  in
  let bpv_nmos = Bpv.extract ~vs:pre_n ~vdd ~options:options_n observations_nmos in
  let bpv_pmos = Bpv.extract ~vs:pre_p ~vdd ~options:options_p observations_pmos in
  let vs_nmos = { pre_n with alphas = bpv_nmos.alphas } in
  let vs_pmos = { pre_p with alphas = bpv_pmos.alphas } in
  {
    vdd;
    geometries;
    golden_nmos;
    golden_pmos;
    fit_nmos;
    fit_pmos;
    observations_nmos;
    observations_pmos;
    bpv_nmos;
    bpv_pmos;
    vs_nmos;
    vs_pmos;
  }

let memo = ref None

let default () =
  match !memo with
  | Some t -> t
  | None ->
    let t = build () in
    memo := Some t;
    t
