type samples = {
  idsat : float array;
  log10_ioff : float array;
  cgg : float array;
}

let of_cells ~count cells =
  let idsat = Array.make count 0.0 in
  let log10_ioff = Array.make count 0.0 in
  let cgg = Array.make count 0.0 in
  let k = ref 0 in
  Array.iter
    (fun cell ->
      match cell with
      | Some (Ok (a, b, c)) ->
        idsat.(!k) <- a;
        log10_ioff.(!k) <- b;
        cgg.(!k) <- c;
        incr k
      | Some (Error _) -> assert false
      | None -> ())
    cells;
  assert (!k = count);
  { idsat; log10_ioff; cgg }

let run ?jobs ?checkpoint ?deadline ?signals ?(label = "mc_device")
    ?fingerprint ~sampler ~rng ~n ~vdd () =
  if n < 1 then invalid_arg "Mc_device.run: n >= 1";
  let f sample_rng =
    let dev = sampler sample_rng in
    ( Vstat_device.Metrics.idsat dev ~vdd,
      Vstat_device.Metrics.log10_ioff dev ~vdd,
      Vstat_device.Metrics.cgg dev ~vdd )
  in
  match (checkpoint, deadline, signals) with
  | None, None, None ->
    (* The plain fast path: no checkpoint store, no stop polling. *)
    let r = Vstat_runtime.Runtime.map_rng_samples ?jobs ~rng ~n ~f () in
    (* Device metrics are closed-form: any exception is a programming error,
       not statistical bad luck, so the budget is zero. *)
    Vstat_runtime.Runtime.reraise_first_failure r;
    of_cells ~count:n (Array.map (fun c -> Some c) r.cells)
  | _ ->
    let module C = Vstat_runtime.Checkpoint in
    let o =
      C.run ?jobs ?settings:checkpoint ?deadline
        ?signals ?fingerprint ~codec:C.float_triple_codec ~label ~rng ~n
        ~f:(fun ~attempt:_ ~index:_ sample_rng -> f sample_rng)
        ()
    in
    (match o.C.cause with
    | C.Signalled signal ->
      raise
        (C.Interrupted
           {
             label;
             signal;
             completed = o.C.completed;
             n;
             snapshot = o.C.snapshot;
           })
    | C.Finished | C.Deadline_reached -> ());
    Vstat_runtime.Runtime.reraise_first_failure (C.completed_run o);
    (* Under a deadline the arrays are compacted over the completed
       samples (index order) — a shorter but statistically valid draw. *)
    of_cells ~count:o.C.completed o.C.cells

let of_vs ?jobs ?checkpoint ?deadline ?signals ?label ?fingerprint t ~rng ~n
    ~w_nm ~l_nm ~vdd =
  run ?jobs ?checkpoint ?deadline ?signals ?label ?fingerprint
    ~sampler:(fun rng -> Vs_statistical.sample_device t rng ~w_nm ~l_nm)
    ~rng ~n ~vdd ()

let of_bsim ?jobs ?checkpoint ?deadline ?signals ?label ?fingerprint t ~rng ~n
    ~w_nm ~l_nm ~vdd =
  run ?jobs ?checkpoint ?deadline ?signals ?label ?fingerprint
    ~sampler:(fun rng -> Bsim_statistical.sample_device t rng ~w_nm ~l_nm)
    ~rng ~n ~vdd ()

let summary s =
  Vstat_runtime.Accum.
    ( of_array s.idsat,
      of_array s.log10_ioff,
      of_array s.cgg )
