type samples = {
  idsat : float array;
  log10_ioff : float array;
  cgg : float array;
}

let run ?jobs ~sampler ~rng ~n ~vdd () =
  if n < 1 then invalid_arg "Mc_device.run: n >= 1";
  let r =
    Vstat_runtime.Runtime.map_rng_samples ?jobs ~rng ~n ~f:(fun sample_rng ->
        let dev = sampler sample_rng in
        ( Vstat_device.Metrics.idsat dev ~vdd,
          Vstat_device.Metrics.log10_ioff dev ~vdd,
          Vstat_device.Metrics.cgg dev ~vdd ))
      ()
  in
  (* Device metrics are closed-form: any exception is a programming error,
     not statistical bad luck, so the budget is zero. *)
  Vstat_runtime.Runtime.reraise_first_failure r;
  let idsat = Array.make n 0.0 in
  let log10_ioff = Array.make n 0.0 in
  let cgg = Array.make n 0.0 in
  Array.iteri
    (fun i cell ->
      match cell with
      | Ok (a, b, c) ->
        idsat.(i) <- a;
        log10_ioff.(i) <- b;
        cgg.(i) <- c
      | Error _ -> assert false)
    r.cells;
  { idsat; log10_ioff; cgg }

let of_vs ?jobs t ~rng ~n ~w_nm ~l_nm ~vdd =
  run ?jobs
    ~sampler:(fun rng -> Vs_statistical.sample_device t rng ~w_nm ~l_nm)
    ~rng ~n ~vdd ()

let of_bsim ?jobs t ~rng ~n ~w_nm ~l_nm ~vdd =
  run ?jobs
    ~sampler:(fun rng -> Bsim_statistical.sample_device t rng ~w_nm ~l_nm)
    ~rng ~n ~vdd ()

let summary s =
  Vstat_runtime.Accum.
    ( of_array s.idsat,
      of_array s.log10_ioff,
      of_array s.cgg )
