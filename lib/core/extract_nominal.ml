module Vs = Vstat_device.Vs_model
module Dm = Vstat_device.Device_model

type dataset = {
  transfer : (float * float * float) array;
  output : (float * float * float) array;
  cv : (float * float) array;
  gm : (float * float) array;
}

let current dev ~vgs ~vds ~vdd =
  let curve = Vstat_device.Metrics.id_vg_curve dev ~vds ~vgs_points:[| vgs |] in
  ignore vdd;
  snd curve.(0)

let golden_dataset dev ~vdd =
  let vgs_grid = Vstat_util.Floatx.linspace 0.0 vdd 21 in
  let transfer =
    Array.concat
      (List.map
         (fun vds ->
           Array.map (fun vgs -> (vgs, vds, current dev ~vgs ~vds ~vdd)) vgs_grid)
         [ 0.05; vdd ])
  in
  let vds_grid = Vstat_util.Floatx.linspace 0.02 vdd 13 in
  let output_family =
    Array.concat
      (List.map
         (fun frac ->
           let vgs = frac *. vdd in
           Array.map (fun vds -> (vgs, vds, current dev ~vgs ~vds ~vdd)) vds_grid)
         [ 0.33; 0.41; 0.5; 0.66; 0.83; 1.0 ])
  in
  (* Strong-inversion transfer points in linear space: constrain the Id(Vg)
     shape (hence gm) at high drain bias, which the log-space transfer set
     barely weighs.  gm fidelity matters because BPV divides measured
     variances by squared sensitivities. *)
  (* Deep-triode points: the SRAM read divider (pull-down in triode vs
     access in saturation) lives at vds < 100 mV, where a handful of family
     points carry too little least-squares weight on their own. *)
  let triode_points =
    Array.concat
      (List.map
         (fun vds ->
           Array.map
             (fun frac ->
               let vgs = frac *. vdd in
               (vgs, vds, current dev ~vgs ~vds ~vdd))
             [| 0.55; 0.7; 0.85; 1.0 |])
         [ 0.03; 0.06; 0.1 ])
  in
  let gm_points =
    Array.map
      (fun vgs -> (vgs, vdd, current dev ~vgs ~vds:vdd ~vdd))
      (Vstat_util.Floatx.linspace (0.45 *. vdd) vdd 10)
  in
  let output = Array.concat [ output_family; gm_points; triode_points ] in
  (* Explicit transconductance targets: Id-value fitting leaves gm free to
     drift by 10-20 %, and BPV divides variances by squared sensitivities,
     so gm fidelity directly controls how well the extracted statistics
     transfer to circuits. *)
  let gm_of dev vgs =
    match dev.Vstat_device.Device_model.polarity with
    | Vstat_device.Device_model.Nmos ->
      Float.abs (Vstat_device.Device_model.gm dev ~vg:vgs ~vd:vdd ~vs:0.0 ~vb:0.0)
    | Vstat_device.Device_model.Pmos ->
      Float.abs
        (Vstat_device.Device_model.gm dev ~vg:(vdd -. vgs) ~vd:0.0 ~vs:vdd
           ~vb:vdd)
  in
  let gm =
    Array.map
      (fun vgs -> (vgs, gm_of dev vgs))
      (Vstat_util.Floatx.linspace (0.4 *. vdd) vdd 9)
  in
  (* Gate-capacitance curve at Vds = 0: pins the threshold/charge linkage
     that pure I-V fitting leaves degenerate (vt0 can trade against vxo for
     current but not for charge). *)
  let cv =
    Array.map
      (fun vgs ->
        let cgg =
          match dev.Vstat_device.Device_model.polarity with
          | Vstat_device.Device_model.Nmos ->
            Vstat_device.Device_model.cgg dev ~vg:vgs ~vd:0.0 ~vs:0.0 ~vb:0.0
          | Vstat_device.Device_model.Pmos ->
            Vstat_device.Device_model.cgg dev ~vg:(vdd -. vgs) ~vd:vdd ~vs:vdd
              ~vb:vdd
        in
        (vgs, Float.abs cgg))
      (Vstat_util.Floatx.linspace 0.0 vdd 13)
  in
  { transfer; output; cv; gm }

let objective ~polarity dataset (p : Vs.params) =
  let dev = Vs.device ~polarity p in
  let vdd = Vstat_device.Cards.vdd_nominal in
  let log_floor = 1e-14 in
  let n_t = Array.length dataset.transfer in
  let n_o = Array.length dataset.output in
  let acc = ref 0.0 in
  Array.iter
    (fun (vgs, vds, id_ref) ->
      let id = current dev ~vgs ~vds ~vdd in
      let e =
        log10 (Float.max id log_floor) -. log10 (Float.max id_ref log_floor)
      in
      acc := !acc +. (e *. e))
    dataset.transfer;
  let log_term = !acc /. Float.of_int n_t in
  let id_max =
    Array.fold_left (fun m (_, _, id) -> Float.max m id) 1e-12 dataset.output
  in
  acc := 0.0;
  Array.iter
    (fun (vgs, vds, id_ref) ->
      let id = current dev ~vgs ~vds ~vdd in
      let e = (id -. id_ref) /. (id_ref +. (0.02 *. id_max)) in
      acc := !acc +. (e *. e))
    dataset.output;
  let rel_term = !acc /. Float.of_int n_o in
  let cgg_max =
    Array.fold_left (fun m (_, c) -> Float.max m c) 1e-18 dataset.cv
  in
  acc := 0.0;
  Array.iter
    (fun (vgs, cgg_ref) ->
      let cgg =
        match polarity with
        | Vstat_device.Device_model.Nmos ->
          Vstat_device.Device_model.cgg dev ~vg:vgs ~vd:0.0 ~vs:0.0 ~vb:0.0
        | Vstat_device.Device_model.Pmos ->
          Vstat_device.Device_model.cgg dev ~vg:(vdd -. vgs) ~vd:vdd ~vs:vdd
            ~vb:vdd
      in
      let e = (Float.abs cgg -. cgg_ref) /. cgg_max in
      acc := !acc +. (e *. e))
    dataset.cv;
  let cv_term = !acc /. Float.of_int (Array.length dataset.cv) in
  let gm_of dev vgs =
    match polarity with
    | Vstat_device.Device_model.Nmos ->
      Float.abs (Vstat_device.Device_model.gm dev ~vg:vgs ~vd:vdd ~vs:0.0 ~vb:0.0)
    | Vstat_device.Device_model.Pmos ->
      Float.abs
        (Vstat_device.Device_model.gm dev ~vg:(vdd -. vgs) ~vd:0.0 ~vs:vdd
           ~vb:vdd)
  in
  let gm_max =
    Array.fold_left (fun m (_, g) -> Float.max m g) 1e-12 dataset.gm
  in
  acc := 0.0;
  Array.iter
    (fun (vgs, gm_ref) ->
      let e = (gm_of dev vgs -. gm_ref) /. gm_max in
      acc := !acc +. (e *. e))
    dataset.gm;
  let gm_term = !acc /. Float.of_int (Array.length dataset.gm) in
  (* Ioff anchor: the off-state point (vgs = 0, vds = Vdd) sets the absolute
     leakage scale of every circuit figure, so it gets its own term instead
     of being one of 42 log-space points. *)
  let ioff_term =
    match
      Array.find_opt
        (fun (vgs, vds, _) -> Float.equal vgs 0.0 && Float.equal vds vdd)
        dataset.transfer
    with
    | None -> 0.0
    | Some (vgs, vds, id_ref) ->
      let id = current dev ~vgs ~vds ~vdd in
      let e =
        log10 (Float.max id log_floor) -. log10 (Float.max id_ref log_floor)
      in
      e *. e
  in
  (* Weights settled empirically against circuit-level agreement: C-V
     dominates because load charge drives delay; the log (subthreshold)
     term only needs to pin the slope; the gm term is kept at zero weight by
     default (weighting it trades Id/charge accuracy for gm and degrades
     delay distributions) but remains available for ablation studies. *)
  (0.5 *. log_term) +. rel_term +. (2.0 *. cv_term) +. (0.0 *. gm_term)
  +. (8.0 *. ioff_term)

type result = {
  fitted : Vs.params;
  params_of : w_nm:float -> l_nm:float -> Vs.params;
  rms_log_error : float;
  rms_rel_error : float;
  iterations : int;
}

(* Free parameters packed as
   [vt0; log delta0; log (n0 - 1); log vxo; log mu; log beta; log l_scale]:
   the log transforms keep physically-positive quantities positive without
   constrained optimization.  l_scale (the DIBL roll-up length) is only
   observable because the fit spans several geometries. *)
(* alpha_q below ~1.5 degenerates the Ff transition into a step (bad for
   Newton); above ~6 it smears the threshold unphysically. *)
let alpha_q_floor = 1.5

let pack (p : Vs.params) =
  [|
    p.vt0;
    log p.dibl.delta0;
    log (p.n0 -. 1.0);
    log p.vxo;
    log p.mu;
    log p.beta;
    log (Float.max (p.alpha_q -. alpha_q_floor) 1e-6);
  |]

let unpack (seed : Vs.params) x =
  {
    seed with
    Vs.vt0 = x.(0);
    dibl = { seed.dibl with delta0 = exp x.(1) };
    n0 = 1.0 +. exp x.(2);
    vxo = exp x.(3);
    mu = exp x.(4);
    beta = exp x.(5);
    alpha_q = alpha_q_floor +. exp x.(6);
  }

(* The paper's BPV sweep varies width at fixed L = 40 nm (its Figs. 2-3 are
   width sweeps), and the VS card is geometry-portable in W by construction,
   so the nominal fit uses the primary device only; the DIBL length profile
   l_scale stays at its card value (characterized separately in practice). *)
let default_fit_geometries = [ (300.0, 40.0) ]

let fit ?(w_nm = 300.0) ?(l_nm = 40.0) ?(max_iter = 4000) ?geometries ~polarity
    () =
  let geometries =
    match geometries with
    | Some g -> g
    | None ->
      let base = (w_nm, l_nm) in
      base :: List.filter (( <> ) base) default_fit_geometries
  in
  let vdd = Vstat_device.Cards.vdd_nominal in
  (* A dataset per geometry: the multi-geometry fit pins the DIBL(L) profile
     so that BPV's cross-geometry sensitivity matrix is consistent. *)
  let datasets =
    List.map
      (fun (w_nm, l_nm) ->
        let golden = Vstat_device.Cards.bsim_device ~polarity ~w_nm ~l_nm in
        ((w_nm, l_nm), golden_dataset golden ~vdd))
      geometries
  in
  let seed =
    match polarity with
    | Dm.Nmos -> Vstat_device.Cards.vs_seed_nmos ~w_nm ~l_nm
    | Dm.Pmos -> Vstat_device.Cards.vs_seed_pmos ~w_nm ~l_nm
  in
  (* Take Cinv straight from the golden card ("measured" directly). *)
  let golden_cox =
    match polarity with
    | Dm.Nmos -> (Vstat_device.Cards.bsim_nmos ~w_nm ~l_nm).cox
    | Dm.Pmos -> (Vstat_device.Cards.bsim_pmos ~w_nm ~l_nm).cox
  in
  (* Body effect is characterized directly from Vt(Vsb) measurements, like
     Cinv from tox, so the golden card's values transfer verbatim. *)
  let golden_body =
    match polarity with
    | Dm.Nmos ->
      let c = Vstat_device.Cards.bsim_nmos ~w_nm ~l_nm in
      (c.k1, c.phis)
    | Dm.Pmos ->
      let c = Vstat_device.Cards.bsim_pmos ~w_nm ~l_nm in
      (c.k1, c.phis)
  in
  let seed =
    { seed with
      Vs.cinv = golden_cox;
      gamma_body = fst golden_body;
      phib = snd golden_body;
    }
  in
  let retarget p ~w_nm ~l_nm =
    { p with Vs.w = Vstat_device.Cards.nm w_nm; l = Vstat_device.Cards.nm l_nm }
  in
  let f x =
    let p = unpack seed x in
    List.fold_left
      (fun acc ((w_nm, l_nm), dataset) ->
        acc +. objective ~polarity dataset (retarget p ~w_nm ~l_nm))
      0.0 datasets
    /. Float.of_int (List.length datasets)
  in
  let r =
    Vstat_opt.Nelder_mead.minimize_restarts ~restarts:3 ~max_iter ~f
      ~x0:(pack seed) ()
  in
  let fitted = unpack seed r.x in
  (* Report errors at the primary geometry for documentation. *)
  let dataset = List.assoc (w_nm, l_nm) datasets in
  let dev = Vs.device ~polarity fitted in
  let log_errs =
    Array.map
      (fun (vgs, vds, id_ref) ->
        let id = current dev ~vgs ~vds ~vdd in
        log10 (Float.max id 1e-14) -. log10 (Float.max id_ref 1e-14))
      dataset.transfer
  in
  let id_max =
    Array.fold_left (fun m (_, _, id) -> Float.max m id) 1e-12 dataset.output
  in
  let rel_errs =
    Array.map
      (fun (vgs, vds, id_ref) ->
        let id = current dev ~vgs ~vds ~vdd in
        (id -. id_ref) /. (id_ref +. (0.02 *. id_max)))
      dataset.output
  in
  let rms xs =
    sqrt
      (Array.fold_left (fun a e -> a +. (e *. e)) 0.0 xs
      /. Float.of_int (Array.length xs))
  in
  {
    fitted;
    params_of = (fun ~w_nm ~l_nm -> retarget fitted ~w_nm ~l_nm);
    rms_log_error = rms log_errs;
    rms_rel_error = rms rel_errs;
    iterations = r.iterations;
  }
