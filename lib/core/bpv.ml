type observation = {
  w_nm : float;
  l_nm : float;
  sigma_idsat : float;
  sigma_log10_ioff : float;
  sigma_cgg : float;
}

let observe_golden ?jobs ?checkpoint ?deadline ?signals ?label ?fingerprint
    golden ~rng ~n ~vdd ~w_nm ~l_nm =
  let s =
    Mc_device.of_bsim ?jobs ?checkpoint ?deadline ?signals ?label ?fingerprint
      golden ~rng ~n ~w_nm ~l_nm ~vdd
  in
  let acc_idsat, acc_log10_ioff, acc_cgg = Mc_device.summary s in
  {
    w_nm;
    l_nm;
    sigma_idsat = Vstat_runtime.Accum.std acc_idsat;
    sigma_log10_ioff = Vstat_runtime.Accum.std acc_log10_ioff;
    sigma_cgg = Vstat_runtime.Accum.std acc_cgg;
  }

type options = {
  tie_l_w : bool;
  known_cinv_alpha : float;
  weight_idsat : float;
  weight_log10_ioff : float;
  weight_cgg : float;
}

let default_options =
  {
    tie_l_w = true;
    known_cinv_alpha = 0.29;
    weight_idsat = 2.0;
    weight_log10_ioff = 1.0;
    weight_cgg = 1.0;
  }

let metric_weight options = function
  | Sensitivity.Idsat -> options.weight_idsat
  | Sensitivity.Log10_ioff -> options.weight_log10_ioff
  | Sensitivity.Cgg -> options.weight_cgg

type result = {
  alphas : Variation.alphas;
  residual : float;
  rows : int;
  options : options;
}

let measured_sigma obs = function
  | Sensitivity.Idsat -> obs.sigma_idsat
  | Sensitivity.Log10_ioff -> obs.sigma_log10_ioff
  | Sensitivity.Cgg -> obs.sigma_cgg

(* One stacked row per (geometry, metric): the right-hand side is the
   measured variance minus the directly-measured Cinv contribution; the
   columns are the squared sensitivities times the geometry factors of
   eq. (8), so the unknowns are the squared alphas. *)
let build_system ~vs ~vdd ~options observations =
  let tie = options.tie_l_w in
  let cols = if tie then 3 else 4 in
  let rows_list =
    List.concat_map
      (fun obs ->
        let { w_nm; l_nm; _ } = obs in
        let wl = w_nm *. l_nm in
        let deriv m p = Sensitivity.vs_derivative vs ~w_nm ~l_nm ~vdd m p in
        List.map
          (fun metric ->
            let d_vt0 = deriv metric `Vt0 in
            let d_l = deriv metric `L in
            let d_w = deriv metric `W in
            let d_mu = deriv metric `Mu in
            let d_cinv = deriv metric `Cinv in
            let sigma_cinv = options.known_cinv_alpha /. sqrt wl in
            let rhs =
              (measured_sigma obs metric ** 2.0)
              -. ((d_cinv *. sigma_cinv) ** 2.0)
            in
            let col_vt0 = d_vt0 *. d_vt0 /. wl in
            let col_l = d_l *. d_l *. (l_nm /. w_nm) in
            let col_w = d_w *. d_w *. (w_nm /. l_nm) in
            let col_mu = d_mu *. d_mu /. wl in
            (* Rows span many orders of magnitude (A^2 vs decades^2 vs F^2):
               normalize each row to unit RHS, then apply the metric weight
               so it influences the least-squares compromise. *)
            let scale =
              metric_weight options metric /. Float.max (Float.abs rhs) 1e-300
            in
            let row =
              if tie then [| col_vt0; col_l +. col_w; col_mu |]
              else [| col_vt0; col_l; col_w; col_mu |]
            in
            (Array.map (fun c -> scale *. c) row, scale *. rhs))
          Sensitivity.all_metrics)
      observations
  in
  (* One list-to-array conversion up front: [List.nth] inside [Matrix.init]
     would make the fill O(rows^2). *)
  let rows_arr = Array.of_list rows_list in
  let m = Array.length rows_arr in
  let a =
    Vstat_linalg.Matrix.init ~rows:m ~cols ~f:(fun i j -> (fst rows_arr.(i)).(j))
  in
  let b = Array.map snd rows_arr in
  (a, b)

let alphas_of_solution ~options x =
  let get i = sqrt (Float.max x.(i) 0.0) in
  if options.tie_l_w then
    {
      Variation.a_vt0 = get 0;
      a_l = get 1;
      a_w = get 1;
      a_mu = get 2;
      a_cinv = options.known_cinv_alpha;
    }
  else
    {
      Variation.a_vt0 = get 0;
      a_l = get 1;
      a_w = get 2;
      a_mu = get 3;
      a_cinv = options.known_cinv_alpha;
    }

let extract ~vs ~vdd ~options observations =
  if observations = [] then invalid_arg "Bpv.extract: no observations";
  let a, b = build_system ~vs ~vdd ~options observations in
  let x = Vstat_linalg.Nnls.solve a b in
  {
    alphas = alphas_of_solution ~options x;
    residual = Vstat_linalg.Nnls.residual_norm a x b;
    rows = Array.length b;
    options;
  }

let extract_per_geometry ~vs ~vdd ~options observations =
  List.map
    (fun obs ->
      let r = extract ~vs ~vdd ~options [ obs ] in
      (obs, r.alphas))
    observations

let contribution_breakdown ~vs ~alphas ~vdd ~w_nm ~l_nm metric =
  let s = Variation.sigmas_of_alphas alphas ~w_nm ~l_nm in
  let deriv p = Sensitivity.vs_derivative vs ~w_nm ~l_nm ~vdd metric p in
  List.map
    (fun p ->
      let sigma_p =
        match p with
        | `Vt0 -> s.Variation.s_vt0
        | `L -> s.s_l
        | `W -> s.s_w
        | `Mu -> s.s_mu
        | `Cinv -> s.s_cinv
      in
      (p, Float.abs (deriv p *. sigma_p)))
    Sensitivity.all_parameters

let predicted_sigma_correlated ~vs ~alphas ~vdd ~w_nm ~l_nm ~correlation
    metric =
  let s = Variation.sigmas_of_alphas alphas ~w_nm ~l_nm in
  let sigma_of = function
    | `Vt0 -> s.Variation.s_vt0
    | `L -> s.s_l
    | `W -> s.s_w
    | `Mu -> s.s_mu
    | `Cinv -> s.s_cinv
  in
  let deriv p = Sensitivity.vs_derivative vs ~w_nm ~l_nm ~vdd metric p in
  let params = Sensitivity.all_parameters in
  let terms = List.map (fun p -> (p, deriv p, sigma_of p)) params in
  let variance = ref 0.0 in
  List.iteri
    (fun j (pj, dj, sj) ->
      List.iteri
        (fun k (pk, dk, sk) ->
          if j = k then variance := !variance +. (dj *. dj *. sj *. sj)
          else if k > j then
            variance :=
              !variance +. (2.0 *. correlation pj pk *. dj *. dk *. sj *. sk))
        terms)
    terms;
  sqrt (Float.max 0.0 !variance)

let predicted_sigma ~vs ~alphas ~vdd ~w_nm ~l_nm metric =
  let contributions = contribution_breakdown ~vs ~alphas ~vdd ~w_nm ~l_nm metric in
  sqrt
    (List.fold_left (fun acc (_, c) -> acc +. (c *. c)) 0.0 contributions)
