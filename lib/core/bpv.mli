(** Backward Propagation of Variance — the paper's Section III.

    Measured variances of the electrical metrics
    [e_i = {Idsat, log10 Ioff, Cgg@Vdd}] at several transistor geometries
    are mapped onto the variances of the independent VS parameters
    [p_j = {VT0, Leff, Weff, mu}] by solving the stacked linear system of
    eq. (10) in the squared alpha coefficients.  [Cinv] is excluded from the
    solve (its tiny, tightly-controlled variance is "measured directly" and
    subtracted from the left-hand side, exactly as the paper prescribes);
    the LER tie alpha2 = alpha3 reduces the unknowns to three. *)

type observation = {
  w_nm : float;
  l_nm : float;
  sigma_idsat : float;       (** measured, A *)
  sigma_log10_ioff : float;  (** measured, decades *)
  sigma_cgg : float;         (** measured, F *)
}

val observe_golden :
  ?jobs:int ->
  ?checkpoint:Vstat_runtime.Checkpoint.settings ->
  ?deadline:(unit -> bool) ->
  ?signals:int list ->
  ?label:string ->
  ?fingerprint:string ->
  Bsim_statistical.t ->
  rng:Vstat_util.Rng.t -> n:int -> vdd:float ->
  w_nm:float -> l_nm:float ->
  observation
(** "Measure" one geometry by Monte Carlo on the golden statistical model —
    the stand-in for the paper's silicon / design-kit measurements.  The MC
    runs on {!Vstat_runtime.Runtime} ([jobs] workers; result independent of
    the worker count).  [checkpoint]/[deadline]/[signals]/[label] are
    forwarded to {!Mc_device.of_bsim}: under a deadline the sigmas are
    computed from the samples completed so far (degraded but unbiased). *)

type options = {
  tie_l_w : bool;
      (** apply the LER tie alpha2 = alpha3 (paper default: true) *)
  known_cinv_alpha : float;
      (** alpha5, measured directly (nm.uF/cm^2) *)
  weight_idsat : float;
      (** least-squares weight of the Idsat rows (default 2: on-current
          variance drives timing distributions downstream) *)
  weight_log10_ioff : float;
  weight_cgg : float;
}

val default_options : options

type result = {
  alphas : Variation.alphas;
  residual : float;              (** NNLS residual of the stacked system *)
  rows : int;                    (** equations in the stacked system *)
  options : options;
}

val extract :
  vs:Vs_statistical.t -> vdd:float -> options:options ->
  observation list ->
  result
(** Stacked extraction over all observations (least squares, non-negative in
    the squared alphas).
    @raise Invalid_argument on an empty observation list. *)

val extract_per_geometry :
  vs:Vs_statistical.t -> vdd:float -> options:options ->
  observation list ->
  (observation * Variation.alphas) list
(** Solve each geometry's 3x3 system individually (paper Fig. 2 compares
    this against the stacked solution). *)

val predicted_sigma :
  vs:Vs_statistical.t -> alphas:Variation.alphas -> vdd:float ->
  w_nm:float -> l_nm:float ->
  Sensitivity.metric -> float
(** Forward propagation (paper eq. (9)): metric sigma implied by a set of
    alphas through the VS sensitivities — used for contribution breakdowns
    (Fig. 3) and consistency checks. *)

val predicted_sigma_correlated :
  vs:Vs_statistical.t -> alphas:Variation.alphas -> vdd:float ->
  w_nm:float -> l_nm:float ->
  correlation:(Sensitivity.parameter -> Sensitivity.parameter -> float) ->
  Sensitivity.metric -> float
(** Full second-order propagation of the paper's eq. (8), including the
    correlation cross terms 2 sum r_jk (de/dpj)(de/dpk) sigma_j sigma_k.
    With [correlation] returning 0 for j <> k this reduces to
    {!predicted_sigma}.  The paper argues for choosing p_j independent
    (r_jk = 0) — this function quantifies what correlated parameters would
    do to the propagated variance. *)

val contribution_breakdown :
  vs:Vs_statistical.t -> alphas:Variation.alphas -> vdd:float ->
  w_nm:float -> l_nm:float ->
  Sensitivity.metric ->
  (Sensitivity.parameter * float) list
(** Per-parameter sigma contributions (quadrature components of
    {!predicted_sigma}), the decomposition plotted in Fig. 3. *)
