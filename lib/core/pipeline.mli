(** End-to-end construction of the statistical VS model:

    1. fit nominal VS cards to the golden model's I–V (NMOS and PMOS);
    2. "measure" metric sigmas on the golden statistical model by Monte
       Carlo at several geometries;
    3. run BPV to extract the alpha coefficients;
    4. package the result as {!Vs_statistical.t} handles ready for device-
       and circuit-level validation.

    Building the pipeline costs a few seconds; [default] memoizes one
    instance (seed 42, 2000 samples per geometry) shared by the CLI,
    examples and benches. *)

type t = {
  vdd : float;
  geometries : (float * float) list;  (** (W, L) in nm used for BPV *)
  golden_nmos : Bsim_statistical.t;
  golden_pmos : Bsim_statistical.t;
  fit_nmos : Extract_nominal.result;
  fit_pmos : Extract_nominal.result;
  observations_nmos : Bpv.observation list;
  observations_pmos : Bpv.observation list;
  bpv_nmos : Bpv.result;
  bpv_pmos : Bpv.result;
  vs_nmos : Vs_statistical.t;
  vs_pmos : Vs_statistical.t;
}

val default_geometries : (float * float) list
(** Six geometries spanning the paper's range: W in 120..1500 nm, L = 40 nm,
    plus one long-channel point. *)

val build :
  ?seed:int ->
  ?jobs:int ->
  ?checkpoint:Vstat_runtime.Checkpoint.settings ->
  ?deadline:(unit -> bool) ->
  ?signals:int list ->
  ?mc_per_geometry:int ->
  ?geometries:(float * float) list ->
  ?vdd:float ->
  unit ->
  t
(** [jobs] is the {!Vstat_runtime.Runtime} worker count for the per-geometry
    sigma measurements (step 2); the built pipeline is bit-identical for any
    [jobs] value.  [checkpoint]/[deadline]/[signals] flow into each
    geometry's golden Monte Carlo ({!Bpv.observe_golden}): every geometry
    gets its own snapshot file, so an interrupted build resumes at the
    first incomplete one. *)

val default : unit -> t
(** Memoized [build ~seed:42 ~mc_per_geometry:2000 ()]. *)
