(* The static-analysis pass itself: parse each [.ml] with compiler-libs and
   walk the Parsetree with [Ast_iterator], emitting {!Diagnostic.t}s for
   rule violations.

   The pass is purely syntactic — no typing, no ppx rewriting of shipped
   code — so rules that are semantic at heart (e.g. "polymorphic compare on
   a float expression") are approximated by conservative syntactic
   evidence: float literals, float-returning operators/stdlib functions,
   [Float.]/[Floatx.] applications, explicit [: float] constraints, and
   tuple literals containing any of those.  The approximation is tuned to
   produce no false positives on this codebase; known blind spots (a bare
   [compare] passed as a sort argument, floats reached through record
   fields) are documented in DESIGN.md.

   The same walk doubles as phase 1 of the deep (cross-module) pass: while
   the per-file rules fire, it accumulates a {!Summary.t} per module —
   structure-level definitions with their outgoing value references,
   direct nondeterminism sources (post-suppression, so a sanctioned
   wall-clock read is not a taint source), module-level mutable state,
   aliases/opens for name resolution, and guard context (lexical
   [Mutex.protect] / [Atomic.*] / [Domain.DLS] nesting, per-function
   mutex-taking).  {!run_deep} drives phase 1 over the project — in
   parallel via the runtime pool, behind a digest-keyed summary cache —
   then hands the summaries to {!Callgraph} + {!Taint} for phase 2. *)

open Parsetree

type config = {
  allow : Allowlist.t;
  exn_strict_prefixes : string list;
      (* failwith / invalid_arg / raise Not_found all forbidden *)
  exn_failwith_prefixes : string list;
      (* only failwith forbidden (typed Numeric_error expected instead) *)
}

let default_config ?(allow = Allowlist.empty) () =
  {
    allow;
    exn_strict_prefixes = [ "lib/circuit/"; "lib/cells/"; "lib/device/" ];
    exn_failwith_prefixes = [ "lib/linalg/"; "lib/opt/" ];
  }

(* Per-function summary accumulator while the walk is inside a
   structure-level binding. *)
type fnacc = {
  a_name : string;
  a_line : int;
  a_entry : bool;
  a_allow_taint : bool;
  mutable a_spawner : bool;
  mutable a_locks : bool;
  mutable a_refs : Summary.reference list;
  mutable a_nondet : Summary.nondet list;
}

type state = {
  cfg : config;
  file : string;
  in_strict : bool;
  in_failwith_only : bool;
  mutable diags : Diagnostic.t list;
  mutable scopes : string list list;  (* [@vstat.allow] stack *)
  mutable file_allows : string list;  (* [@@@vstat.allow] floor attrs *)
  mutable hot : int;                  (* [@vstat.hot] nesting depth *)
  mutable sorted_ctx : int;
      (* bindings in scope whose body contains an explicit sort *)
  (* --- summary accumulators (phase 1 of the deep pass) --- *)
  mutable cur : fnacc option;         (* enclosing structure-level binding *)
  mutable at_struct : bool;           (* next value_binding is structure-level *)
  mutable guard : int;                (* Mutex.protect/Atomic/DLS nesting *)
  mutable mod_prefix : string list;   (* submodule path, innermost first *)
  mutable s_aliases : (string * string list) list;
  mutable s_opens : string list list;
  mutable s_globals : Summary.glob list;
  mutable s_funcs : Summary.func list;
  topdefs : (string, unit) Hashtbl.t;
      (* bare names defined at structure level anywhere in this file *)
  mfields : (string, unit) Hashtbl.t;
      (* record field names declared [mutable] in this file *)
  ifields : (string, unit) Hashtbl.t;
      (* record field names declared immutable in this file: a name — like
         the circuit engine's [work_cap] — used mutably by one type and
         immutably by another is ambiguous without typing, so it never
         classifies a binding as a mutable-record global *)
  locals : (string, int) Hashtbl.t;
      (* lexically bound value names (params, lets, cases), count-nested *)
}

(* --- path scoping ------------------------------------------------------ *)

let contains_substring ~needle hay =
  let ln = String.length needle and lh = String.length hay in
  ln = 0
  || (let found = ref false in
      let i = ref 0 in
      while (not !found) && !i <= lh - ln do
        if String.sub hay !i ln = needle then found := true;
        incr i
      done;
      !found)

let in_prefixes prefixes file =
  let f = Allowlist.normalize file in
  List.exists
    (fun p ->
      p <> ""
      && ((String.length f >= String.length p
           && String.sub f 0 (String.length p) = p)
         || contains_substring ~needle:("/" ^ p) f))
    prefixes

(* --- attribute handling ------------------------------------------------ *)

let payload_strings = function
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
    let rec strings e =
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
      | Pexp_tuple es -> List.concat_map strings es
      | _ -> []
    in
    strings e
  | _ -> []

let allow_rules attrs =
  List.concat_map
    (fun a ->
      if a.attr_name.Location.txt = "vstat.allow" then
        payload_strings a.attr_payload
      else [])
    attrs

let is_hot_attr attrs =
  List.exists (fun a -> a.attr_name.Location.txt = "vstat.hot") attrs

let is_entry_attr attrs =
  List.exists (fun a -> a.attr_name.Location.txt = "vstat.entry") attrs

(* --- emission ---------------------------------------------------------- *)

(* [emit'] reports whether the diagnostic was actually recorded: the deep
   pass needs to know, because a suppressed nondeterminism site is a
   sanctioned one and must NOT become a taint source (the runtime's
   whitelisted wall-clock reads would otherwise taint every entry
   point). *)
let emit' st ~rule ~loc message =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let col =
    loc.Location.loc_start.Lexing.pos_cnum
    - loc.Location.loc_start.Lexing.pos_bol
  in
  let suppressed =
    List.exists (List.mem rule) st.scopes
    || List.mem rule st.file_allows
    || Allowlist.allows st.cfg.allow ~rule ~file:st.file ~line
  in
  if suppressed then false
  else begin
    st.diags <-
      Diagnostic.make ~rule ~file:st.file ~line ~col message :: st.diags;
    true
  end

let emit st ~rule ~loc message = ignore (emit' st ~rule ~loc message)

let emit_nondet st ~rule ~loc ~kind ~what message =
  if emit' st ~rule ~loc message then
    match st.cur with
    | Some a ->
      a.a_nondet <-
        {
          Summary.nkind = kind;
          nline = loc.Location.loc_start.Lexing.pos_lnum;
          nwhat = what;
        }
        :: a.a_nondet
    | None -> ()

(* --- expression classification ----------------------------------------- *)

let path_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Longident.flatten txt with _ -> [])
  | _ -> []

let unqual = function "Stdlib" :: rest -> rest | p -> p

let float_operators =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_functions =
  [
    "sqrt"; "exp"; "expm1"; "log"; "log10"; "log1p"; "sin"; "cos"; "tan";
    "asin"; "acos"; "atan"; "atan2"; "sinh"; "cosh"; "tanh"; "floor";
    "ceil"; "abs_float"; "mod_float"; "hypot"; "copysign"; "ldexp";
    "float_of_int"; "float_of_string";
  ]

(* Float.* / Floatx.* calls that do NOT return a float. *)
let float_module_predicates =
  [
    "equal"; "compare"; "is_nan"; "is_finite"; "is_infinite"; "is_integer";
    "sign_bit"; "close"; "to_int"; "to_string";
  ]

let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_tuple es -> List.exists floatish es
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) -> (
    match (try Longident.flatten txt with _ -> []) with
    | [ "float" ] | [ "Stdlib"; "float" ] -> true
    | _ -> false)
  | Pexp_apply (f, args) -> (
    match unqual (path_of f) with
    | [ op ] when List.mem op float_operators -> true
    | [ fn ] when List.mem fn float_functions -> true
    | [ ("Float" | "Floatx"); fn ]
      when not (List.mem fn float_module_predicates) ->
      true
    | [ ("min" | "max") ] ->
      (* min/max propagate operand floatness; bool-returning comparisons
         never do. *)
      List.exists (fun (_, a) -> floatish a) args
    | _ -> false)
  | _ -> false

let is_tuple e =
  match e.pexp_desc with Pexp_tuple _ -> true | _ -> false

let hot_banned_list_fns =
  [
    "map"; "mapi"; "map2"; "fold_left"; "fold_right"; "fold_left2";
    "concat"; "concat_map"; "flatten"; "filter"; "filter_map"; "filteri";
    "partition"; "rev_map"; "init"; "append"; "sort"; "stable_sort";
    "sort_uniq"; "merge"; "combine"; "split";
  ]

(* Array functions that allocate a fresh array (or list/seq) per call.
   Deliberately NOT banned: fill/blit/length/get/set/unsafe_*/iter/iteri,
   which the preallocated sparse/dense assembly loops rely on. *)
let hot_banned_array_fns =
  [
    "make"; "create_float"; "init"; "copy"; "append"; "sub"; "concat";
    "of_list"; "to_list"; "of_seq"; "to_seq"; "to_seqi"; "map"; "mapi";
    "map2"; "split"; "combine"; "make_matrix";
  ]

(* --- per-expression rule checks ---------------------------------------- *)

let check_ident st loc path =
  (match unqual path with
  | "Random" :: _ as p ->
    emit_nondet st ~rule:Rules.determinism_random ~loc
      ~kind:Summary.Nd_random ~what:(String.concat "." p)
      "Random.* breaks jobs:1 == jobs:N determinism; draw from a \
       counter-indexed Vstat_util.Rng substream instead (allowed only in \
       lib/util/rng.ml)"
  | ( [ "Unix"; ("gettimeofday" | "time") ]
    | [ "Sys"; "time" ]
    | [ "Monotonic_clock"; "now" ] ) as p ->
    emit_nondet st ~rule:Rules.determinism_wallclock ~loc
      ~kind:Summary.Nd_wallclock ~what:(String.concat "." p)
      "wall-clock reads are forbidden outside the runtime stats / \
       throughput-experiment whitelist (lint.allow) and the sanctioned \
       deadline watchdog (Vstat_runtime.Deadline): sample values must be \
       pure functions of (index, substream)"
  | [ "Hashtbl"; (("iter" | "fold") as fn) ] ->
    if st.sorted_ctx = 0 then
      emit_nondet st ~rule:Rules.determinism_hashtbl ~loc
        ~kind:Summary.Nd_hashtbl
        ~what:("Hashtbl." ^ fn)
        (Printf.sprintf
           "Hashtbl.%s traverses buckets in unspecified order and no \
            adjacent List.sort/sort_uniq/Array.sort re-establishes a total \
            order in this function"
           fn)
  | _ -> ());
  (match unqual path with
  | [ (("failwith" | "invalid_arg") as fn) ] when st.in_strict ->
    emit st ~rule:Rules.exn_discipline ~loc
      (Printf.sprintf
         "%s in the circuit/cells/device layers defeats typed failure \
          classification; raise Diag.Solver_error (or mark the sanctioned \
          precondition with [@vstat.allow \"exn-discipline\"])"
         fn)
  | [ "failwith" ] when st.in_failwith_only ->
    emit st ~rule:Rules.exn_discipline ~loc
      "failwith in linalg/opt defeats typed failure classification; raise \
       Vstat_linalg.Linalg_error.Numeric_error instead"
  | _ -> ());
  if st.hot > 0 then
    match unqual path with
    | "Printf" :: _ | "Format" :: _ ->
      emit st ~rule:Rules.hot_path ~loc
        "Printf/Format in a [@vstat.hot] body allocates and formats on the \
         hot path"
    | [ "List"; fn ] when List.mem fn hot_banned_list_fns ->
      emit st ~rule:Rules.hot_path ~loc
        (Printf.sprintf
           "List.%s in a [@vstat.hot] body allocates per call; use the \
            preallocated workspace / an index loop"
           fn)
    | [ "Array"; fn ] when List.mem fn hot_banned_array_fns ->
      emit st ~rule:Rules.hot_path ~loc
        (Printf.sprintf
           "Array.%s in a [@vstat.hot] body allocates a fresh array per \
            call; reuse a preallocated workspace (Array.fill/blit and \
            index loops stay allocation-free)"
           fn)
    | [ ("@" | "^") ] ->
      emit st ~rule:Rules.hot_path ~loc
        "list/string append in a [@vstat.hot] body allocates per call"
    | _ -> ()

let check_apply st loc f args =
  (match unqual (path_of f) with
  | [ (("=" | "<>") as op) ] ->
    if List.exists (fun (_, a) -> floatish a) args then
      emit st ~rule:Rules.float_compare ~loc
        (Printf.sprintf
           "polymorphic (%s) on a float expression; use Float.equal (or \
            Floatx.close for tolerant comparison)"
           op)
  | [ (("compare" | "min" | "max") as op) ] ->
    if List.exists (fun (_, a) -> floatish a || is_tuple a) args then
      emit st ~rule:Rules.float_compare ~loc
        (Printf.sprintf
           "polymorphic %s on a float/tuple expression; use Float.compare \
            / Float.min / Float.max or an explicit field-wise comparator"
           op)
  | _ -> ());
  match (unqual (path_of f), args) with
  | ( [ ("raise" | "raise_notrace") ],
      [
        ( _,
          {
            pexp_desc =
              Pexp_construct ({ txt = Longident.Lident "Not_found"; _ }, None);
            _;
          } );
      ] )
    when st.in_strict ->
    emit st ~rule:Rules.exn_discipline ~loc
      "raise Not_found in the circuit/cells/device layers is untyped; use \
       a Diag diagnostic or Invalid_argument via a sanctioned site"
  | _ -> ()

(* --- sort adjacency ---------------------------------------------------- *)

let contains_sort expr0 =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match unqual (path_of e) with
          | [ ("List" | "Array"); ("sort" | "stable_sort" | "sort_uniq" | "fast_sort") ]
            ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr0;
  !found

(* --- summary collection helpers ----------------------------------------- *)

let is_module_seg s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'

(* Stdlib module heads never resolve to project code; dropping them here
   keeps summaries small.  No source file in the repository shares a
   basename with any of these (checked; [engine.ml] is the only duplicated
   basename and it is a project name). *)
let stdlib_modules =
  [
    "Arg"; "Array"; "ArrayLabels"; "Atomic"; "Bigarray"; "Bool"; "Buffer";
    "Bytes"; "Callback"; "Char"; "Complex"; "Condition"; "Digest"; "Domain";
    "Effect"; "Either"; "Ephemeron"; "Filename"; "Float"; "Format"; "Fun";
    "Gc"; "Hashtbl"; "In_channel"; "Int"; "Int32"; "Int64"; "Lazy";
    "Lexing"; "List"; "ListLabels"; "Map"; "Marshal"; "MoreLabels";
    "Mutex"; "Nativeint"; "Obj"; "Oo"; "Option"; "Out_channel"; "Parsing";
    "Printexc"; "Printf"; "Queue"; "Random"; "Result"; "Scanf";
    "Semaphore"; "Seq"; "Set"; "Stack"; "Stdlib"; "Str"; "String";
    "StringLabels"; "Sys"; "Type"; "Uchar"; "Unit"; "Unix"; "Weak";
  ]

let rec pat_names acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pat_names (txt :: acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pat_names acc ps
  | Ppat_construct (_, Some (_, p))
  | Ppat_variant (_, Some p)
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_open (_, p)
  | Ppat_exception p ->
    pat_names acc p
  | Ppat_record (fields, _) ->
    List.fold_left (fun acc (_, p) -> pat_names acc p) acc fields
  | Ppat_or (a, b) -> pat_names (pat_names acc a) b
  | _ -> acc

let push_locals st names =
  List.iter
    (fun n ->
      Hashtbl.replace st.locals n
        (1 + Option.value ~default:0 (Hashtbl.find_opt st.locals n)))
    names

let pop_locals st names =
  List.iter
    (fun n ->
      match Hashtbl.find_opt st.locals n with
      | Some 1 -> Hashtbl.remove st.locals n
      | Some c -> Hashtbl.replace st.locals n (c - 1)
      | None -> ())
    names

let with_locals st names f =
  push_locals st names;
  Fun.protect ~finally:(fun () -> pop_locals st names) f

let rec binding_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

let dotted st name = String.concat "." (List.rev (name :: st.mod_prefix))

(* Accesses lexically under these application heads execute inside a
   guarded region (or are themselves atomic operations). *)
let is_guard_head path =
  match unqual path with
  | [ "Mutex"; "protect" ] | [ "Domain"; "DLS"; _ ] -> true
  | "Atomic" :: _ -> true
  | _ -> false

(* Structure-level mutable state the domain-safety rule tracks.  Arrays,
   [Atomic.t] and [Lazy.t] bindings are deliberately excluded: atomics are
   the sanctioned mechanism, and flagging every preallocated array would
   drown the rule in noise the per-call-site guard analysis cannot
   resolve. *)
let rec classify_global st e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> classify_global st e
  | Pexp_apply (f, [ _ ]) when unqual (path_of f) = [ "ref" ] -> Some "ref"
  | Pexp_apply (f, _) -> (
    match unqual (path_of f) with
    | [ (("Hashtbl" | "Buffer" | "Queue" | "Stack") as m); "create" ] ->
      Some m
    | _ -> None)
  | Pexp_record (fields, _)
    when List.exists
           (fun (({ Location.txt; _ } : Longident.t Location.loc), _) ->
             match
               List.rev (try Longident.flatten txt with _ -> [])
             with
             | fld :: _ ->
               Hashtbl.mem st.mfields fld
               && not (Hashtbl.mem st.ifields fld)
             | [] -> false)
           fields ->
    Some "mutable-record"
  | _ -> None

let record_ref st loc path =
  match st.cur with
  | None -> ()
  | Some a -> (
    let p = unqual path in
    (match p with
    | [ "Domain"; "spawn" ] -> a.a_spawner <- true
    | [ "Mutex"; ("lock" | "protect") ] -> a.a_locks <- true
    | _ -> ());
    let interesting =
      match p with
      | [ x ] ->
        (not (is_module_seg x))
        && Hashtbl.mem st.topdefs x
        && not (Hashtbl.mem st.locals x)
      | m :: _ :: _ -> is_module_seg m && not (List.mem m stdlib_modules)
      | _ -> false
    in
    if interesting then
      a.a_refs <-
        {
          Summary.callee = p;
          rline = loc.Location.loc_start.Lexing.pos_lnum;
          rguarded = st.guard > 0;
          rallow_ds =
            List.exists (List.mem Rules.domain_safety) st.scopes
            || List.mem Rules.domain_safety st.file_allows;
        }
        :: a.a_refs)

let flush_cur st =
  match st.cur with
  | None -> ()
  | Some a ->
    st.s_funcs <-
      {
        Summary.fname = a.a_name;
        fline = a.a_line;
        fentry = a.a_entry;
        fspawner = a.a_spawner;
        flocks = a.a_locks;
        fallow_taint = a.a_allow_taint;
        refs = List.rev a.a_refs;
        nondet = List.rev a.a_nondet;
      }
      :: st.s_funcs;
    st.cur <- None

let rec unwrap_mod me =
  match me.pmod_desc with
  | Pmod_constraint (m, _) -> unwrap_mod m
  | _ -> me

let module_expr_path me =
  match (unwrap_mod me).pmod_desc with
  | Pmod_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

let record_open st me =
  match module_expr_path me with
  | Some p -> st.s_opens <- p :: st.s_opens
  | None -> ()

(* Pre-pass filling [topdefs] (bare structure-level value names, including
   inside inline submodules) and [mfields] (record fields declared
   [mutable] in this file) — both are needed before the main walk starts:
   bare-identifier references and mutable-record globals can appear before
   or after the definitions that make them meaningful. *)
let prepass st structure =
  let rec item si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match binding_name vb.pvb_pat with
          | Some n -> Hashtbl.replace st.topdefs n ()
          | None -> ())
        vbs
    | Pstr_type (_, decls) ->
      List.iter
        (fun d ->
          match d.ptype_kind with
          | Ptype_record fields ->
            List.iter
              (fun f ->
                if f.pld_mutable = Asttypes.Mutable then
                  Hashtbl.replace st.mfields f.pld_name.Location.txt ()
                else Hashtbl.replace st.ifields f.pld_name.Location.txt ())
              fields
          | _ -> ())
        decls
    | Pstr_module mb -> (
      match (unwrap_mod mb.pmb_expr).pmod_desc with
      | Pmod_structure items -> List.iter item items
      | _ -> ())
    | _ -> ()
  in
  List.iter item structure

(* --- the iterator ------------------------------------------------------ *)

let rec unwrap_funs_names acc e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) -> unwrap_funs_names (pat_names acc pat) body
  | Pexp_newtype (_, body) -> unwrap_funs_names acc body
  | _ -> (acc, e)

let make_iterator st =
  (* Structural recursion with scope bookkeeping: binding forms push their
     pattern names onto [st.locals] around the subtree where the binding
     is visible (so a parameter shadowing a structure-level name never
     becomes a call-graph edge), and guarded application heads bump
     [st.guard] around their arguments. *)
  let recurse self e =
    match e.pexp_desc with
    | Pexp_fun (_, dflt, pat, body) ->
      Option.iter (self.Ast_iterator.expr self) dflt;
      self.Ast_iterator.pat self pat;
      with_locals st (pat_names [] pat) (fun () ->
          self.Ast_iterator.expr self body)
    | Pexp_let (rf, vbs, body) ->
      let names = List.concat_map (fun vb -> pat_names [] vb.pvb_pat) vbs in
      if rf = Asttypes.Recursive then
        with_locals st names (fun () ->
            List.iter (self.Ast_iterator.value_binding self) vbs;
            self.Ast_iterator.expr self body)
      else begin
        List.iter (self.Ast_iterator.value_binding self) vbs;
        with_locals st names (fun () -> self.Ast_iterator.expr self body)
      end
    | Pexp_for (pat, e1, e2, _, body) ->
      self.Ast_iterator.pat self pat;
      self.Ast_iterator.expr self e1;
      self.Ast_iterator.expr self e2;
      with_locals st (pat_names [] pat) (fun () ->
          self.Ast_iterator.expr self body)
    | Pexp_apply (f, args) when is_guard_head (path_of f) ->
      self.Ast_iterator.expr self f;
      st.guard <- st.guard + 1;
      List.iter (fun (_, a) -> self.Ast_iterator.expr self a) args;
      st.guard <- st.guard - 1
    | _ -> Ast_iterator.default_iterator.expr self e
  in
  let expr self e =
    let rules = allow_rules e.pexp_attributes in
    st.scopes <- rules :: st.scopes;
    (match e.pexp_desc with
    | Pexp_ident _ ->
      let p = path_of e in
      check_ident st e.pexp_loc p;
      record_ref st e.pexp_loc p
    | Pexp_apply (f, args) -> check_apply st e.pexp_loc f args
    | Pexp_open (od, _) -> record_open st od.popen_expr
    | _ -> ());
    (if is_hot_attr e.pexp_attributes then begin
       (* An expression-level hot marker: lint its body (past the parameter
          chain) in hot context. *)
       st.hot <- st.hot + 1;
       let names, body = unwrap_funs_names [] e in
       with_locals st names (fun () -> self.Ast_iterator.expr self body);
       st.hot <- st.hot - 1
     end
     else begin
       (match e.pexp_desc with
       | Pexp_fun _ | Pexp_function _ when st.hot > 0 ->
         emit st ~rule:Rules.hot_path ~loc:e.pexp_loc
           "closure definition inside a [@vstat.hot] body allocates per \
            call; hoist it to a toplevel function taking its environment \
            as arguments"
       | _ -> ());
       recurse self e
     end);
    st.scopes <- List.tl st.scopes
  in
  let case self c =
    self.Ast_iterator.pat self c.pc_lhs;
    with_locals st (pat_names [] c.pc_lhs) (fun () ->
        Option.iter (self.Ast_iterator.expr self) c.pc_guard;
        self.Ast_iterator.expr self c.pc_rhs)
  in
  let value_binding self vb =
    let struct_level = st.at_struct in
    st.at_struct <- false;
    let rules = allow_rules vb.pvb_attributes in
    let hot = is_hot_attr vb.pvb_attributes in
    let sorted = contains_sort vb.pvb_expr in
    st.scopes <- rules :: st.scopes;
    if sorted then st.sorted_ctx <- st.sorted_ctx + 1;
    let started =
      if struct_level && Option.is_none st.cur then
        match binding_name vb.pvb_pat with
        | Some name -> (
          let line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum in
          match classify_global st vb.pvb_expr with
          | Some kind ->
            st.s_globals <-
              { Summary.gname = dotted st name; gline = line; gkind = kind }
              :: st.s_globals;
            false
          | None ->
            st.cur <-
              Some
                {
                  a_name = dotted st name;
                  a_line = line;
                  a_entry = is_entry_attr vb.pvb_attributes;
                  a_allow_taint = List.mem Rules.determinism_taint rules;
                  a_spawner = false;
                  a_locks = false;
                  a_refs = [];
                  a_nondet = [];
                };
            true)
        | None -> false
      else false
    in
    (if hot then begin
       (* Skip the binding's own parameter chain (those [fun]s are the
          function being marked, not closures allocated inside it). *)
       st.hot <- st.hot + 1;
       self.Ast_iterator.pat self vb.pvb_pat;
       let names, body = unwrap_funs_names [] vb.pvb_expr in
       with_locals st names (fun () -> self.Ast_iterator.expr self body);
       st.hot <- st.hot - 1
     end
     else Ast_iterator.default_iterator.value_binding self vb);
    if started then flush_cur st;
    if sorted then st.sorted_ctx <- st.sorted_ctx - 1;
    st.scopes <- List.tl st.scopes
  in
  let rec handle_module self mb =
    match mb.pmb_name.Location.txt with
    | None -> Ast_iterator.default_iterator.module_binding self mb
    | Some name -> (
      match (unwrap_mod mb.pmb_expr).pmod_desc with
      | Pmod_ident { txt; _ } -> (
        match (try Some (Longident.flatten txt) with _ -> None) with
        | Some p -> st.s_aliases <- (name, p) :: st.s_aliases
        | None -> ())
      | Pmod_structure items ->
        st.mod_prefix <- name :: st.mod_prefix;
        List.iter (self.Ast_iterator.structure_item self) items;
        st.mod_prefix <- List.tl st.mod_prefix
      | _ -> Ast_iterator.default_iterator.module_binding self mb)
  and structure_item self si =
    match si.pstr_desc with
    | Pstr_attribute a when a.attr_name.Location.txt = "vstat.allow" ->
      st.file_allows <- payload_strings a.attr_payload @ st.file_allows;
      Ast_iterator.default_iterator.structure_item self si
    | Pstr_value (_, vbs) ->
      (* [at_struct] is re-armed per binding: a [let a = .. and b = ..]
         group defines several structure-level values. *)
      List.iter
        (fun vb ->
          st.at_struct <- true;
          self.Ast_iterator.value_binding self vb)
        vbs;
      st.at_struct <- false
    | Pstr_module mb -> handle_module self mb
    | Pstr_recmodule mbs -> List.iter (handle_module self) mbs
    | Pstr_open od ->
      record_open st od.popen_expr;
      Ast_iterator.default_iterator.structure_item self si
    | _ -> Ast_iterator.default_iterator.structure_item self si
  in
  {
    Ast_iterator.default_iterator with
    expr;
    case;
    value_binding;
    structure_item;
  }

(* --- parsing and entry points ------------------------------------------ *)

let read_source path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* compiler-libs keeps parser state (docstring and lexer tables) in module
   globals, so parsing — and only parsing — is serialized when phase 1
   fans out across domains.  The AST walk works on immutable trees. *)
let parse_mutex = Mutex.create ()

let parse_implementation_string path src =
  Mutex.protect parse_mutex (fun () ->
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf path;
      Parse.implementation lexbuf)

let modname_of path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let analyze_src cfg ~path ~src ~env_digest =
  let st =
    {
      cfg;
      file = path;
      in_strict = in_prefixes cfg.exn_strict_prefixes path;
      in_failwith_only = in_prefixes cfg.exn_failwith_prefixes path;
      diags = [];
      scopes = [];
      file_allows = [];
      hot = 0;
      sorted_ctx = 0;
      cur = None;
      at_struct = false;
      guard = 0;
      mod_prefix = [];
      s_aliases = [];
      s_opens = [];
      s_globals = [];
      s_funcs = [];
      topdefs = Hashtbl.create 64;
      mfields = Hashtbl.create 16;
      ifields = Hashtbl.create 64;
      locals = Hashtbl.create 64;
    }
  in
  (match parse_implementation_string path src with
  | structure ->
    prepass st structure;
    let it = make_iterator st in
    it.Ast_iterator.structure it structure
  | exception exn ->
    let loc, msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
        ( report.Location.main.loc,
          Format.asprintf "%t" report.Location.main.txt )
      | _ -> (Location.none, Printexc.to_string exn)
    in
    emit st ~rule:Rules.parse_error ~loc msg);
  flush_cur st;
  let diags = List.sort Diagnostic.compare st.diags in
  let summary =
    {
      Summary.sfile = path;
      src_digest = Vstat_util.Crc32.digest src;
      env_digest;
      modname = modname_of path;
      floors = List.sort_uniq String.compare st.file_allows;
      aliases = List.rev st.s_aliases;
      opens = List.rev st.s_opens;
      globals = List.rev st.s_globals;
      funcs = List.rev st.s_funcs;
      diags;
    }
  in
  (diags, summary)

let lint_file cfg path =
  fst (analyze_src cfg ~path ~src:(read_source path) ~env_digest:0)

(* Deterministic directory walk: readdir order is unspecified, so entries
   are sorted before descent. *)
let rec collect_dir ~excludes acc path =
  let entries = Sys.readdir path in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if List.mem name excludes then acc
      else
        let child = Filename.concat path name in
        if Sys.is_directory child then collect_dir ~excludes acc child
        else if Filename.check_suffix name ".ml" then child :: acc
        else acc)
    acc entries

let collect_files ?(excludes = [ "_build"; ".git" ]) paths =
  let files =
    List.fold_left
      (fun acc p ->
        if Sys.is_directory p then collect_dir ~excludes acc p else p :: acc)
      [] paths
  in
  List.sort String.compare files

let run ?excludes cfg paths =
  let files = collect_files ?excludes paths in
  let diags = List.concat_map (lint_file cfg) files in
  (List.length files, List.sort Diagnostic.compare diags)

(* --- the deep (cross-module) pass --------------------------------------- *)

type deep_result = {
  deep_files : int;
  deep_rebuilt : int;  (* files (re-)summarized this run *)
  deep_cached : int;   (* files served from the summary cache *)
  deep_diags : Diagnostic.t list;
}

(* Bump when the summary contents or the rules deriving them change: a
   version bump invalidates every cached summary at once. *)
let deep_version = "vstat-lint-deep-1"

(* Cached summaries store post-suppression diagnostics, so anything that
   changes what is suppressed — the allowlist, the engine version, the
   per-layer exception prefixes — must be part of the cache key. *)
let env_fingerprint cfg =
  Vstat_util.Crc32.digest
    (String.concat "\x00"
       (deep_version
        :: Allowlist.fingerprint cfg.allow
        :: (cfg.exn_strict_prefixes @ ("|" :: cfg.exn_failwith_prefixes))))

let sanitize_slot s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

(* One cache file per source file: basename for readability, a digest of
   the full path to keep same-named files in different directories (the
   two engine.ml, the fixture corpus) from colliding. *)
let cache_slot cache_dir path =
  Filename.concat cache_dir
    (Printf.sprintf "%s-%08x.vsum"
       (sanitize_slot (Filename.remove_extension (Filename.basename path)))
       (Vstat_util.Crc32.digest path))

(* Returns the summary and whether it had to be rebuilt from source. *)
let summarize_file cfg ~env_digest ~cache_dir path =
  let src = read_source path in
  let digest = Vstat_util.Crc32.digest src in
  let cached =
    match cache_dir with
    | None -> None
    | Some dir -> (
      match Vstat_util.Atomic_io.read_file ~path:(cache_slot dir path) with
      | Error _ -> None
      | Ok contents -> (
        match Summary.of_string contents with
        | Some s
          when s.Summary.src_digest = digest
               && s.Summary.env_digest = env_digest
               && s.Summary.sfile = path ->
          Some s
        | _ -> None))
  in
  match cached with
  | Some s -> (s, false)
  | None ->
    let _, s = analyze_src cfg ~path ~src ~env_digest in
    (match cache_dir with
    | Some dir ->
      Vstat_util.Atomic_io.write_file ~path:(cache_slot dir path)
        (Summary.to_string s)
    | None -> ());
    (s, true)

let run_deep ?jobs ?cache_dir ?excludes cfg paths =
  let files = Array.of_list (collect_files ?excludes paths) in
  let env_digest = env_fingerprint cfg in
  let n = Array.length files in
  (* Phase 1 in parallel: summaries are independent per file (parsing
     itself is serialized behind [parse_mutex]), results land in an
     index-stable array, and phase 2 consumes them in path order — so the
     diagnostics are identical under any jobs count. *)
  let run =
    Vstat_runtime.Runtime.map_samples ?jobs ~n
      ~f:(fun i -> summarize_file cfg ~env_digest ~cache_dir files.(i))
      ()
  in
  Vstat_runtime.Runtime.reraise_first_failure run;
  let results =
    Array.map
      (function Ok r -> r | Error _ -> assert false)
      run.Vstat_runtime.Runtime.cells
  in
  let rebuilt =
    Array.fold_left
      (fun acc (_, fresh) -> if fresh then acc + 1 else acc)
      0 results
  in
  let summaries = Array.to_list (Array.map fst results) in
  let per_file = List.concat_map (fun s -> s.Summary.diags) summaries in
  let deep = Taint.analyze ~allow:cfg.allow summaries in
  {
    deep_files = n;
    deep_rebuilt = rebuilt;
    deep_cached = n - rebuilt;
    deep_diags = List.sort Diagnostic.compare (per_file @ deep);
  }
