(* The static-analysis pass itself: parse each [.ml] with compiler-libs and
   walk the Parsetree with [Ast_iterator], emitting {!Diagnostic.t}s for
   rule violations.

   The pass is purely syntactic — no typing, no ppx rewriting of shipped
   code — so rules that are semantic at heart (e.g. "polymorphic compare on
   a float expression") are approximated by conservative syntactic
   evidence: float literals, float-returning operators/stdlib functions,
   [Float.]/[Floatx.] applications, explicit [: float] constraints, and
   tuple literals containing any of those.  The approximation is tuned to
   produce no false positives on this codebase; known blind spots (a bare
   [compare] passed as a sort argument, floats reached through record
   fields) are documented in DESIGN.md. *)

open Parsetree

type config = {
  allow : Allowlist.t;
  exn_strict_prefixes : string list;
      (* failwith / invalid_arg / raise Not_found all forbidden *)
  exn_failwith_prefixes : string list;
      (* only failwith forbidden (typed Numeric_error expected instead) *)
}

let default_config ?(allow = Allowlist.empty) () =
  {
    allow;
    exn_strict_prefixes = [ "lib/circuit/"; "lib/cells/"; "lib/device/" ];
    exn_failwith_prefixes = [ "lib/linalg/"; "lib/opt/" ];
  }

type state = {
  cfg : config;
  file : string;
  in_strict : bool;
  in_failwith_only : bool;
  mutable diags : Diagnostic.t list;
  mutable scopes : string list list;  (* [@vstat.allow] stack *)
  mutable file_allows : string list;  (* [@@@vstat.allow] floor attrs *)
  mutable hot : int;                  (* [@vstat.hot] nesting depth *)
  mutable sorted_ctx : int;
      (* bindings in scope whose body contains an explicit sort *)
}

(* --- path scoping ------------------------------------------------------ *)

let contains_substring ~needle hay =
  let ln = String.length needle and lh = String.length hay in
  ln = 0
  || (let found = ref false in
      let i = ref 0 in
      while (not !found) && !i <= lh - ln do
        if String.sub hay !i ln = needle then found := true;
        incr i
      done;
      !found)

let in_prefixes prefixes file =
  let f = Allowlist.normalize file in
  List.exists
    (fun p ->
      p <> ""
      && ((String.length f >= String.length p
           && String.sub f 0 (String.length p) = p)
         || contains_substring ~needle:("/" ^ p) f))
    prefixes

(* --- attribute handling ------------------------------------------------ *)

let payload_strings = function
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
    let rec strings e =
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
      | Pexp_tuple es -> List.concat_map strings es
      | _ -> []
    in
    strings e
  | _ -> []

let allow_rules attrs =
  List.concat_map
    (fun a ->
      if a.attr_name.Location.txt = "vstat.allow" then
        payload_strings a.attr_payload
      else [])
    attrs

let is_hot_attr attrs =
  List.exists (fun a -> a.attr_name.Location.txt = "vstat.hot") attrs

(* --- emission ---------------------------------------------------------- *)

let emit st ~rule ~loc message =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let col =
    loc.Location.loc_start.Lexing.pos_cnum
    - loc.Location.loc_start.Lexing.pos_bol
  in
  let suppressed =
    List.exists (List.mem rule) st.scopes
    || List.mem rule st.file_allows
    || Allowlist.allows st.cfg.allow ~rule ~file:st.file ~line
  in
  if not suppressed then
    st.diags <-
      Diagnostic.make ~rule ~file:st.file ~line ~col message :: st.diags

(* --- expression classification ----------------------------------------- *)

let path_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Longident.flatten txt with _ -> [])
  | _ -> []

let unqual = function "Stdlib" :: rest -> rest | p -> p

let float_operators =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_functions =
  [
    "sqrt"; "exp"; "expm1"; "log"; "log10"; "log1p"; "sin"; "cos"; "tan";
    "asin"; "acos"; "atan"; "atan2"; "sinh"; "cosh"; "tanh"; "floor";
    "ceil"; "abs_float"; "mod_float"; "hypot"; "copysign"; "ldexp";
    "float_of_int"; "float_of_string";
  ]

(* Float.* / Floatx.* calls that do NOT return a float. *)
let float_module_predicates =
  [
    "equal"; "compare"; "is_nan"; "is_finite"; "is_infinite"; "is_integer";
    "sign_bit"; "close"; "to_int"; "to_string";
  ]

let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_tuple es -> List.exists floatish es
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) -> (
    match (try Longident.flatten txt with _ -> []) with
    | [ "float" ] | [ "Stdlib"; "float" ] -> true
    | _ -> false)
  | Pexp_apply (f, args) -> (
    match unqual (path_of f) with
    | [ op ] when List.mem op float_operators -> true
    | [ fn ] when List.mem fn float_functions -> true
    | [ ("Float" | "Floatx"); fn ]
      when not (List.mem fn float_module_predicates) ->
      true
    | [ ("min" | "max") ] ->
      (* min/max propagate operand floatness; bool-returning comparisons
         never do. *)
      List.exists (fun (_, a) -> floatish a) args
    | _ -> false)
  | _ -> false

let is_tuple e =
  match e.pexp_desc with Pexp_tuple _ -> true | _ -> false

let hot_banned_list_fns =
  [
    "map"; "mapi"; "map2"; "fold_left"; "fold_right"; "fold_left2";
    "concat"; "concat_map"; "flatten"; "filter"; "filter_map"; "filteri";
    "partition"; "rev_map"; "init"; "append"; "sort"; "stable_sort";
    "sort_uniq"; "merge"; "combine"; "split";
  ]

(* Array functions that allocate a fresh array (or list/seq) per call.
   Deliberately NOT banned: fill/blit/length/get/set/unsafe_*/iter/iteri,
   which the preallocated sparse/dense assembly loops rely on. *)
let hot_banned_array_fns =
  [
    "make"; "create_float"; "init"; "copy"; "append"; "sub"; "concat";
    "of_list"; "to_list"; "of_seq"; "to_seq"; "to_seqi"; "map"; "mapi";
    "map2"; "split"; "combine"; "make_matrix";
  ]

(* --- per-expression rule checks ---------------------------------------- *)

let check_ident st loc path =
  (match unqual path with
  | "Random" :: _ ->
    emit st ~rule:Rules.determinism_random ~loc
      "Random.* breaks jobs:1 == jobs:N determinism; draw from a \
       counter-indexed Vstat_util.Rng substream instead (allowed only in \
       lib/util/rng.ml)"
  | [ "Unix"; ("gettimeofday" | "time") ]
  | [ "Sys"; "time" ]
  | [ "Monotonic_clock"; "now" ] ->
    emit st ~rule:Rules.determinism_wallclock ~loc
      "wall-clock reads are forbidden outside the runtime stats / \
       throughput-experiment whitelist (lint.allow) and the sanctioned \
       deadline watchdog (Vstat_runtime.Deadline): sample values must be \
       pure functions of (index, substream)"
  | [ "Hashtbl"; (("iter" | "fold") as fn) ] ->
    if st.sorted_ctx = 0 then
      emit st ~rule:Rules.determinism_hashtbl ~loc
        (Printf.sprintf
           "Hashtbl.%s traverses buckets in unspecified order and no \
            adjacent List.sort/sort_uniq/Array.sort re-establishes a total \
            order in this function"
           fn)
  | _ -> ());
  (match unqual path with
  | [ (("failwith" | "invalid_arg") as fn) ] when st.in_strict ->
    emit st ~rule:Rules.exn_discipline ~loc
      (Printf.sprintf
         "%s in the circuit/cells/device layers defeats typed failure \
          classification; raise Diag.Solver_error (or mark the sanctioned \
          precondition with [@vstat.allow \"exn-discipline\"])"
         fn)
  | [ "failwith" ] when st.in_failwith_only ->
    emit st ~rule:Rules.exn_discipline ~loc
      "failwith in linalg/opt defeats typed failure classification; raise \
       Vstat_linalg.Linalg_error.Numeric_error instead"
  | _ -> ());
  if st.hot > 0 then
    match unqual path with
    | "Printf" :: _ | "Format" :: _ ->
      emit st ~rule:Rules.hot_path ~loc
        "Printf/Format in a [@vstat.hot] body allocates and formats on the \
         hot path"
    | [ "List"; fn ] when List.mem fn hot_banned_list_fns ->
      emit st ~rule:Rules.hot_path ~loc
        (Printf.sprintf
           "List.%s in a [@vstat.hot] body allocates per call; use the \
            preallocated workspace / an index loop"
           fn)
    | [ "Array"; fn ] when List.mem fn hot_banned_array_fns ->
      emit st ~rule:Rules.hot_path ~loc
        (Printf.sprintf
           "Array.%s in a [@vstat.hot] body allocates a fresh array per \
            call; reuse a preallocated workspace (Array.fill/blit and \
            index loops stay allocation-free)"
           fn)
    | [ ("@" | "^") ] ->
      emit st ~rule:Rules.hot_path ~loc
        "list/string append in a [@vstat.hot] body allocates per call"
    | _ -> ()

let check_apply st loc f args =
  (match unqual (path_of f) with
  | [ (("=" | "<>") as op) ] ->
    if List.exists (fun (_, a) -> floatish a) args then
      emit st ~rule:Rules.float_compare ~loc
        (Printf.sprintf
           "polymorphic (%s) on a float expression; use Float.equal (or \
            Floatx.close for tolerant comparison)"
           op)
  | [ (("compare" | "min" | "max") as op) ] ->
    if List.exists (fun (_, a) -> floatish a || is_tuple a) args then
      emit st ~rule:Rules.float_compare ~loc
        (Printf.sprintf
           "polymorphic %s on a float/tuple expression; use Float.compare \
            / Float.min / Float.max or an explicit field-wise comparator"
           op)
  | _ -> ());
  match (unqual (path_of f), args) with
  | ( [ ("raise" | "raise_notrace") ],
      [
        ( _,
          {
            pexp_desc =
              Pexp_construct ({ txt = Longident.Lident "Not_found"; _ }, None);
            _;
          } );
      ] )
    when st.in_strict ->
    emit st ~rule:Rules.exn_discipline ~loc
      "raise Not_found in the circuit/cells/device layers is untyped; use \
       a Diag diagnostic or Invalid_argument via a sanctioned site"
  | _ -> ()

(* --- sort adjacency ---------------------------------------------------- *)

let contains_sort expr0 =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match unqual (path_of e) with
          | [ ("List" | "Array"); ("sort" | "stable_sort" | "sort_uniq" | "fast_sort") ]
            ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr0;
  !found

(* --- the iterator ------------------------------------------------------ *)

let rec unwrap_funs e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> unwrap_funs body
  | Pexp_newtype (_, body) -> unwrap_funs body
  | _ -> e

let make_iterator st =
  let expr self e =
    let rules = allow_rules e.pexp_attributes in
    st.scopes <- rules :: st.scopes;
    (match e.pexp_desc with
    | Pexp_ident _ -> check_ident st e.pexp_loc (path_of e)
    | Pexp_apply (f, args) -> check_apply st e.pexp_loc f args
    | _ -> ());
    (if is_hot_attr e.pexp_attributes then begin
       (* An expression-level hot marker: lint its body (past the parameter
          chain) in hot context. *)
       st.hot <- st.hot + 1;
       Ast_iterator.default_iterator.expr self (unwrap_funs e);
       st.hot <- st.hot - 1
     end
     else begin
       (match e.pexp_desc with
       | Pexp_fun _ | Pexp_function _ when st.hot > 0 ->
         emit st ~rule:Rules.hot_path ~loc:e.pexp_loc
           "closure definition inside a [@vstat.hot] body allocates per \
            call; hoist it to a toplevel function taking its environment \
            as arguments"
       | _ -> ());
       Ast_iterator.default_iterator.expr self e
     end);
    st.scopes <- List.tl st.scopes
  in
  let value_binding self vb =
    let rules = allow_rules vb.pvb_attributes in
    let hot = is_hot_attr vb.pvb_attributes in
    let sorted = contains_sort vb.pvb_expr in
    st.scopes <- rules :: st.scopes;
    if sorted then st.sorted_ctx <- st.sorted_ctx + 1;
    (if hot then begin
       (* Skip the binding's own parameter chain (those [fun]s are the
          function being marked, not closures allocated inside it). *)
       st.hot <- st.hot + 1;
       self.Ast_iterator.pat self vb.pvb_pat;
       self.Ast_iterator.expr self (unwrap_funs vb.pvb_expr);
       st.hot <- st.hot - 1
     end
     else Ast_iterator.default_iterator.value_binding self vb);
    if sorted then st.sorted_ctx <- st.sorted_ctx - 1;
    st.scopes <- List.tl st.scopes
  in
  let structure_item self si =
    (match si.pstr_desc with
    | Pstr_attribute a when a.attr_name.Location.txt = "vstat.allow" ->
      st.file_allows <- payload_strings a.attr_payload @ st.file_allows
    | _ -> ());
    Ast_iterator.default_iterator.structure_item self si
  in
  { Ast_iterator.default_iterator with expr; value_binding; structure_item }

(* --- parsing and entry points ------------------------------------------ *)

let parse_implementation path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let src = really_input_string ic (in_channel_length ic) in
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf path;
      Parse.implementation lexbuf)

let lint_file cfg path =
  let st =
    {
      cfg;
      file = path;
      in_strict = in_prefixes cfg.exn_strict_prefixes path;
      in_failwith_only = in_prefixes cfg.exn_failwith_prefixes path;
      diags = [];
      scopes = [];
      file_allows = [];
      hot = 0;
      sorted_ctx = 0;
    }
  in
  (match parse_implementation path with
  | structure ->
    let it = make_iterator st in
    it.Ast_iterator.structure it structure
  | exception exn ->
    let loc, msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
        ( report.Location.main.loc,
          Format.asprintf "%t" report.Location.main.txt )
      | _ -> (Location.none, Printexc.to_string exn)
    in
    emit st ~rule:Rules.parse_error ~loc msg);
  List.sort Diagnostic.compare st.diags

(* Deterministic directory walk: readdir order is unspecified, so entries
   are sorted before descent. *)
let rec collect_dir ~excludes acc path =
  let entries = Sys.readdir path in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if List.mem name excludes then acc
      else
        let child = Filename.concat path name in
        if Sys.is_directory child then collect_dir ~excludes acc child
        else if Filename.check_suffix name ".ml" then child :: acc
        else acc)
    acc entries

let collect_files ?(excludes = [ "_build"; ".git" ]) paths =
  let files =
    List.fold_left
      (fun acc p ->
        if Sys.is_directory p then collect_dir ~excludes acc p else p :: acc)
      [] paths
  in
  List.sort String.compare files

let run ?excludes cfg paths =
  let files = collect_files ?excludes paths in
  let diags = List.concat_map (lint_file cfg) files in
  (List.length files, List.sort Diagnostic.compare diags)
