(* Per-module analysis summaries — phase 1 of the deep (cross-module) lint
   pass.

   One summary is extracted per [.ml] file by the engine's AST walk and
   carries everything phase 2 needs, so phase 2 never re-reads sources:

   - the structure-level value definitions (dotted through submodules),
     each with its outgoing value references (the call-graph edges before
     resolution), its direct nondeterminism sources (exactly the sites the
     per-file determinism rules reported, i.e. already filtered through
     [@vstat.allow] / lint.allow suppression), and flags: is it a
     [@vstat.entry] hot entry point, does it contain a [Domain.spawn]
     (making it a domain root), does it take a [Mutex] lock;
   - the structure-level mutable state (refs, Hashtbl / Buffer / Queue /
     Stack at toplevel, record literals with same-file mutable fields);
   - module aliases and opens, used by phase-2 name resolution;
   - the per-file rule diagnostics, cached alongside so a warm summary
     cache re-lints a file without re-parsing it.

   Summaries serialize to a line-oriented text format keyed by two CRC-32
   digests: [src_digest] over the source bytes and [env_digest] over the
   engine version, the suppression environment and the engine config.  A
   cache entry whose digests disagree with the current file or environment
   is silently discarded and the file re-summarized. *)

type nondet_kind = Nd_random | Nd_wallclock | Nd_hashtbl

let nondet_kind_to_string = function
  | Nd_random -> "random"
  | Nd_wallclock -> "wallclock"
  | Nd_hashtbl -> "hashtbl"

let nondet_kind_of_string = function
  | "random" -> Some Nd_random
  | "wallclock" -> Some Nd_wallclock
  | "hashtbl" -> Some Nd_hashtbl
  | _ -> None

type reference = {
  callee : string list;  (* path as written, [Stdlib] stripped, unresolved *)
  rline : int;
  rguarded : bool;  (* lexically under Mutex.protect / Atomic.* / Domain.DLS *)
  rallow_ds : bool;  (* "domain-safety" allowed at the reference site *)
}

type nondet = {
  nkind : nondet_kind;
  nline : int;
  nwhat : string;  (* e.g. "Random.float", "Unix.gettimeofday" *)
}

type func = {
  fname : string;  (* dotted path inside the module, e.g. "f" or "Sub.f" *)
  fline : int;
  fentry : bool;     (* [@vstat.entry] *)
  fspawner : bool;   (* body contains Domain.spawn *)
  flocks : bool;     (* body takes a Mutex (lock or protect) *)
  fallow_taint : bool;  (* binding carries [@@vstat.allow "determinism-taint"] *)
  refs : reference list;
  nondet : nondet list;
}

type glob = {
  gname : string;
  gline : int;
  gkind : string;  (* "ref" | "Hashtbl" | "Buffer" | ... | "mutable-record" *)
}

type t = {
  sfile : string;
  src_digest : int;
  env_digest : int;
  modname : string;  (* capitalized basename, the OCaml module name *)
  floors : string list;  (* [@@@vstat.allow] file-floor rules *)
  aliases : (string * string list) list;  (* module X = Path, structure level *)
  opens : string list list;
  globals : glob list;
  funcs : func list;
  diags : Diagnostic.t list;  (* per-file rule findings, post-suppression *)
}

(* --- serialization ------------------------------------------------------ *)

(* Line-oriented, tab-separated.  Free-form strings (file names, messages,
   nondet descriptions) travel through [String.escaped], so embedded tabs
   and newlines cannot break framing; identifiers and dotted paths are
   tab-free by construction but are escaped anyway for uniformity.
   Cached per-file diagnostics never carry a trace (traces only exist on
   phase-2 findings, which are recomputed every run), so the [diag] line
   has a fixed field count. *)

let magic = "VSUM1"

let bool_to_field b = if b then "1" else "0"

let add_line buf fields =
  Buffer.add_string buf (String.concat "\t" fields);
  Buffer.add_char buf '\n'

let to_string t =
  let buf = Buffer.create 1024 in
  add_line buf [ magic ];
  add_line buf [ "key"; string_of_int t.src_digest; string_of_int t.env_digest ];
  add_line buf [ "file"; String.escaped t.sfile ];
  add_line buf [ "mod"; String.escaped t.modname ];
  List.iter (fun r -> add_line buf [ "floor"; String.escaped r ]) t.floors;
  List.iter
    (fun (name, path) ->
      add_line buf
        [ "alias"; String.escaped name; String.escaped (String.concat "." path) ])
    t.aliases;
  List.iter
    (fun path ->
      add_line buf [ "open"; String.escaped (String.concat "." path) ])
    t.opens;
  List.iter
    (fun g ->
      add_line buf
        [ "global"; String.escaped g.gname; string_of_int g.gline;
          String.escaped g.gkind ])
    t.globals;
  List.iter
    (fun f ->
      add_line buf
        [ "fn"; String.escaped f.fname; string_of_int f.fline;
          bool_to_field f.fentry; bool_to_field f.fspawner;
          bool_to_field f.flocks; bool_to_field f.fallow_taint ];
      List.iter
        (fun r ->
          add_line buf
            [ "ref"; string_of_int r.rline; bool_to_field r.rguarded;
              bool_to_field r.rallow_ds;
              String.escaped (String.concat "." r.callee) ])
        f.refs;
      List.iter
        (fun n ->
          add_line buf
            [ "nd"; nondet_kind_to_string n.nkind; string_of_int n.nline;
              String.escaped n.nwhat ])
        f.nondet)
    t.funcs;
  List.iter
    (fun (d : Diagnostic.t) ->
      add_line buf
        [ "diag"; String.escaped d.Diagnostic.rule;
          string_of_int d.Diagnostic.line; string_of_int d.Diagnostic.col;
          String.escaped d.Diagnostic.file;
          String.escaped d.Diagnostic.message ])
    t.diags;
  add_line buf [ "end" ];
  Buffer.contents buf

(* Decoding never raises: any framing, escape or field anomaly yields
   [None] and the caller re-summarizes from source. *)

exception Bad

let unescape s = try Scanf.unescaped s with _ -> raise Bad
let int_field s = match int_of_string_opt s with Some n -> n | None -> raise Bad

let bool_field = function "0" -> false | "1" -> true | _ -> raise Bad

let path_field s =
  match unescape s with "" -> raise Bad | p -> String.split_on_char '.' p

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | first :: rest when first = magic -> (
    let src = ref 0 and env = ref 0 in
    let file = ref "" and modname = ref "" in
    let floors = ref [] and aliases = ref [] and opens = ref [] in
    let globals = ref [] and funcs = ref [] and diags = ref [] in
    let cur : func option ref = ref None in
    let finished = ref false in
    let flush_fn () =
      match !cur with
      | None -> ()
      | Some f ->
        funcs :=
          { f with refs = List.rev f.refs; nondet = List.rev f.nondet }
          :: !funcs;
        cur := None
    in
    let line raw =
      if !finished then (if raw <> "" then raise Bad)
      else
        match String.split_on_char '\t' raw with
        | [ "" ] -> raise Bad
        | [ "key"; a; b ] -> src := int_field a; env := int_field b
        | [ "file"; f ] -> file := unescape f
        | [ "mod"; m ] -> modname := unescape m
        | [ "floor"; r ] -> floors := unescape r :: !floors
        | [ "alias"; n; p ] -> aliases := (unescape n, path_field p) :: !aliases
        | [ "open"; p ] -> opens := path_field p :: !opens
        | [ "global"; n; l; k ] ->
          globals :=
            { gname = unescape n; gline = int_field l; gkind = unescape k }
            :: !globals
        | [ "fn"; n; l; e; sp; lk; at ] ->
          flush_fn ();
          cur :=
            Some
              {
                fname = unescape n; fline = int_field l;
                fentry = bool_field e; fspawner = bool_field sp;
                flocks = bool_field lk; fallow_taint = bool_field at;
                refs = []; nondet = [];
              }
        | [ "ref"; l; g; a; p ] -> (
          match !cur with
          | None -> raise Bad
          | Some f ->
            cur :=
              Some
                {
                  f with
                  refs =
                    { callee = path_field p; rline = int_field l;
                      rguarded = bool_field g; rallow_ds = bool_field a }
                    :: f.refs;
                })
        | [ "nd"; k; l; w ] -> (
          match (!cur, nondet_kind_of_string k) with
          | Some f, Some nkind ->
            cur :=
              Some
                {
                  f with
                  nondet =
                    { nkind; nline = int_field l; nwhat = unescape w }
                    :: f.nondet;
                }
          | _ -> raise Bad)
        | [ "diag"; r; l; c; f; m ] ->
          flush_fn ();
          diags :=
            Diagnostic.make ~rule:(unescape r) ~file:(unescape f)
              ~line:(int_field l) ~col:(int_field c) (unescape m)
            :: !diags
        | [ "end" ] -> flush_fn (); finished := true
        | _ -> raise Bad
    in
    match List.iter line rest with
    | () ->
      if not !finished then None
      else
        Some
          {
            sfile = !file;
            src_digest = !src;
            env_digest = !env;
            modname = !modname;
            floors = List.rev !floors;
            aliases = List.rev !aliases;
            opens = List.rev !opens;
            globals = List.rev !globals;
            funcs = List.rev !funcs;
            diags = List.rev !diags;
          }
    | exception Bad -> None)
  | _ -> None
