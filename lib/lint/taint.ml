(* Phase 2 of the deep lint pass, part 2: the two interprocedural rules.

   determinism-taint — a function is tainted when it contains an
   unsanctioned direct nondeterminism source (exactly the sites the
   per-file determinism rules report) or calls a tainted function; the
   taint set is the least fixpoint over the resolved call graph.  An
   error is emitted for every [@vstat.entry] hot entry point that is
   tainted, carrying the shortest call path from the entry down to the
   source (`a.ml:12 -> b.ml:40 -> Random.float`).

   domain-safety — every function that syntactically contains a
   [Domain.spawn] is a domain root: its body runs on the spawning domain
   and its closure argument on the spawned one, so anything reachable
   from it executes on at least two domains.  An error is emitted for
   every unguarded access to structure-level mutable state reachable
   from a domain root, again with the full path (root -> ... -> access).

   Both rules honour the usual suppression ladder at the *reported* site:
   a binding/expression [@vstat.allow], the [@@@vstat.allow] file floor,
   and the checked-in lint.allow. *)

module S = Summary
module C = Callgraph

let key (s : S.t) (f : S.func) = (s.S.sfile, f.S.fname)

let key_compare (fa, na) (fb, nb) =
  match String.compare fa fb with 0 -> String.compare na nb | c -> c

let loc_str file line = Printf.sprintf "%s:%d" file line

(* Shortest path by breadth-first search from [start] through [edges_of],
   stopping at the first node satisfying [is_goal].  Adjacency is visited
   in callsite order and ties resolve by queue order, so the returned
   path is deterministic.  Returns the node list from start to goal and
   the callsite line taken out of each non-goal node. *)
let bfs_path ~edges_of ~is_goal start =
  let parent = Hashtbl.create 64 in
  let visited = Hashtbl.create 64 in
  Hashtbl.replace visited start ();
  let q = Queue.create () in
  Queue.add start q;
  let goal = ref None in
  while !goal = None && not (Queue.is_empty q) do
    let node = Queue.pop q in
    if is_goal node then goal := Some node
    else
      List.iter
        (fun (line, next) ->
          if not (Hashtbl.mem visited next) then begin
            Hashtbl.replace visited next ();
            Hashtbl.replace parent next (node, line);
            Queue.add next q
          end)
        (edges_of node)
  done;
  match !goal with
  | None -> None
  | Some g ->
    let rec walk acc node =
      match Hashtbl.find_opt parent node with
      | None -> (node, acc)
      | Some (prev, line) -> walk ((line, node) :: acc) prev
    in
    let first, steps = walk [] g in
    Some (first, steps)

(* --- determinism taint -------------------------------------------------- *)

let first_nondet (f : S.func) =
  match
    List.sort
      (fun (a : S.nondet) b -> Int.compare a.S.nline b.S.nline)
      f.S.nondet
  with
  | [] -> None
  | n :: _ -> Some n

let determinism_taint ~allow cg =
  let funcs = C.funcs cg in
  (* Resolved fn->fn edges, computed once. *)
  let edges = Hashtbl.create 256 in
  List.iter
    (fun ((s : S.t), (f : S.func)) ->
      let out =
        List.filter_map
          (fun ((r : S.reference), target) ->
            match target with
            | C.Fn (ts, tf) -> Some (r.S.rline, key ts tf)
            | C.Glob _ -> None)
          (C.out_edges cg s f)
      in
      Hashtbl.replace edges (key s f) out)
    funcs;
  let node : (string * string, S.t * S.func) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun (s, f) -> Hashtbl.replace node (key s f) (s, f)) funcs;
  (* Least fixpoint by reverse propagation from the direct sources. *)
  let callers = Hashtbl.create 256 in
  List.iter
    (fun (s, f) ->
      let k = key s f in
      List.iter
        (fun (_, callee) ->
          Hashtbl.replace callers callee
            (k :: Option.value ~default:[] (Hashtbl.find_opt callers callee)))
        (Option.value ~default:[] (Hashtbl.find_opt edges k)))
    funcs;
  let tainted = Hashtbl.create 64 in
  let work = Queue.create () in
  List.iter
    (fun ((_, f) as nf) ->
      if f.S.nondet <> [] then begin
        let k = key (fst nf) f in
        Hashtbl.replace tainted k ();
        Queue.add k work
      end)
    funcs;
  while not (Queue.is_empty work) do
    let k = Queue.pop work in
    List.iter
      (fun caller ->
        if not (Hashtbl.mem tainted caller) then begin
          Hashtbl.replace tainted caller ();
          Queue.add caller work
        end)
      (List.sort key_compare
         (Option.value ~default:[] (Hashtbl.find_opt callers k)))
  done;
  (* One finding per tainted, unsuppressed entry point: the shortest path
     to a direct source. *)
  List.filter_map
    (fun ((s : S.t), (f : S.func)) ->
      let k = key s f in
      if not (f.S.fentry && Hashtbl.mem tainted k) then None
      else if
        f.S.fallow_taint
        || List.mem Rules.determinism_taint s.S.floors
        || Allowlist.allows allow ~rule:Rules.determinism_taint
             ~file:s.S.sfile ~line:f.S.fline
      then None
      else
        let edges_of k =
          List.filter
            (fun (_, next) -> Hashtbl.mem tainted next)
            (Option.value ~default:[] (Hashtbl.find_opt edges k))
        in
        let is_goal k =
          match Hashtbl.find_opt node k with
          | Some (_, g) -> g.S.nondet <> []
          | None -> false
        in
        match bfs_path ~edges_of ~is_goal k with
        | None -> None  (* tainted only through edges we cannot re-walk *)
        | Some (_, steps) ->
          let rec render at acc = function
            | [] -> (
              (* [at] is the goal node: append its direct source. *)
              match Hashtbl.find_opt node at with
              | Some (gs, gf) -> (
                match first_nondet gf with
                | Some n ->
                  List.rev
                    (Printf.sprintf "%s (%s)" n.S.nwhat
                       (loc_str gs.S.sfile n.S.nline)
                    :: acc)
                | None -> List.rev acc)
              | None -> List.rev acc)
            | (line, next) :: tl ->
              let step =
                match Hashtbl.find_opt node at with
                | Some (cs, _) -> loc_str cs.S.sfile line
                | None -> loc_str (fst at) line
              in
              render next (step :: acc) tl
          in
          let trace = render k [] steps in
          let source = match List.rev trace with last :: _ -> last | [] -> "?" in
          let msg =
            Printf.sprintf
              "hot entry point '%s' transitively reaches nondeterministic \
               %s through the project call graph (%s); sample values must \
               be pure functions of (index, substream) — sanction the \
               source with [@vstat.allow] or this entry with \
               [@@vstat.allow \"%s\"]"
              f.S.fname source
              (String.concat " \xe2\x86\x92 " trace)
              Rules.determinism_taint
          in
          Some
            (Diagnostic.make ~trace ~rule:Rules.determinism_taint
               ~file:s.S.sfile ~line:f.S.fline ~col:0 msg))
    funcs

(* --- domain safety ------------------------------------------------------ *)

let domain_safety ~allow cg =
  let funcs = C.funcs cg in
  let fn_edges = Hashtbl.create 256 in
  let state_refs = Hashtbl.create 64 in
  (* per function: resolved fn edges and resolved mutable-state accesses *)
  List.iter
    (fun ((s : S.t), (f : S.func)) ->
      let outs = C.out_edges cg s f in
      Hashtbl.replace fn_edges (key s f)
        (List.filter_map
           (fun ((r : S.reference), target) ->
             match target with
             | C.Fn (ts, tf) -> Some (r.S.rline, key ts tf)
             | C.Glob _ -> None)
           outs);
      Hashtbl.replace state_refs (key s f)
        (List.filter_map
           (fun ((r : S.reference), target) ->
             match target with
             | C.Glob (gs, g) -> Some (r, gs, g)
             | C.Fn _ -> None)
           outs))
    funcs;
  let node = Hashtbl.create 256 in
  List.iter (fun (s, f) -> Hashtbl.replace node (key s f) (s, f)) funcs;
  let roots =
    List.filter (fun ((_ : S.t), (f : S.func)) -> f.S.fspawner) funcs
  in
  (* Multi-source BFS with parent pointers: every function reachable from
     any domain root, with a deterministic shortest witness path. *)
  let parent = Hashtbl.create 128 in
  let visited = Hashtbl.create 128 in
  let q = Queue.create () in
  List.iter
    (fun (s, f) ->
      let k = key s f in
      if not (Hashtbl.mem visited k) then begin
        Hashtbl.replace visited k ();
        Queue.add k q
      end)
    roots;
  while not (Queue.is_empty q) do
    let k = Queue.pop q in
    List.iter
      (fun (line, next) ->
        if not (Hashtbl.mem visited next) then begin
          Hashtbl.replace visited next ();
          Hashtbl.replace parent next (k, line);
          Queue.add next q
        end)
      (Option.value ~default:[] (Hashtbl.find_opt fn_edges k))
  done;
  let seen_finding = Hashtbl.create 16 in
  List.concat_map
    (fun ((s : S.t), (f : S.func)) ->
      let k = key s f in
      if not (Hashtbl.mem visited k) then []
      else
        List.filter_map
          (fun ((r : S.reference), (gs : S.t), (g : S.glob)) ->
            let suppressed =
              r.S.rguarded || f.S.flocks || r.S.rallow_ds
              || List.mem Rules.domain_safety s.S.floors
              || Allowlist.allows allow ~rule:Rules.domain_safety
                   ~file:s.S.sfile ~line:r.S.rline
            in
            let fkey = (s.S.sfile, r.S.rline, gs.S.sfile, g.S.gname) in
            if suppressed || Hashtbl.mem seen_finding fkey then None
            else begin
              Hashtbl.replace seen_finding fkey ();
              (* Witness path: walk parents back to the root. *)
              let rec back acc node =
                match Hashtbl.find_opt parent node with
                | Some (prev, line) -> back ((line, node) :: acc) prev
                | None -> (node, acc)
              in
              let root_key, steps = back [] k in
              let root_step =
                match Hashtbl.find_opt node root_key with
                | Some ((rs : S.t), (rf : S.func)) ->
                  Printf.sprintf "%s (domain root '%s')"
                    (loc_str rs.S.sfile rf.S.fline)
                    rf.S.fname
                | None -> loc_str (fst root_key) 0
              in
              let rec callsites at acc = function
                | [] -> List.rev acc
                | (line, next) :: tl ->
                  let step =
                    match Hashtbl.find_opt node at with
                    | Some (cs, _) -> loc_str cs.S.sfile line
                    | None -> loc_str (fst at) line
                  in
                  callsites next (step :: acc) tl
              in
              let trace =
                (root_step :: callsites root_key [] steps)
                @ [ loc_str s.S.sfile r.S.rline ]
              in
              let msg =
                Printf.sprintf
                  "module-level mutable state '%s' (%s, %s) is accessed \
                   without an Atomic/Mutex/Domain.DLS guard on a path \
                   reachable from a domain root (%s); guard the access or \
                   sanction it with [@vstat.allow \"%s\"]"
                  g.S.gname g.S.gkind
                  (loc_str gs.S.sfile g.S.gline)
                  (String.concat " \xe2\x86\x92 " trace)
                  Rules.domain_safety
              in
              Some
                (Diagnostic.make ~trace ~rule:Rules.domain_safety
                   ~file:s.S.sfile ~line:r.S.rline ~col:0 msg)
            end)
          (Option.value ~default:[] (Hashtbl.find_opt state_refs k)))
    funcs

let analyze ~allow summaries =
  let cg = C.build summaries in
  List.sort Diagnostic.compare
    (determinism_taint ~allow cg @ domain_safety ~allow cg)
