(* Rendering of a lint run: human file:line diagnostics for terminals and
   CI logs, machine-readable JSON for the uploaded CI artifact.

   All JSON string rendering funnels through {!json_string} here — the one
   escaping routine for rule ids, paths, messages and call-path steps — so
   a diagnostic message containing quotes, backslashes, newlines or raw
   control characters can never produce an invalid document.  The unit
   test in test/test_lint.ml feeds a pathological message through it. *)

type format = Text | Json

let format_of_string = function
  | "text" | "human" -> Some Text
  | "json" -> Some Json
  | _ -> None

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ json_escape s ^ "\""

let diagnostic_json (d : Diagnostic.t) =
  let path =
    match d.Diagnostic.trace with
    | [] -> ""
    | steps ->
      Printf.sprintf {|,"path":[%s]|}
        (String.concat "," (List.map json_string steps))
  in
  Printf.sprintf {|{"rule":%s,"file":%s,"line":%d,"col":%d,"message":%s%s}|}
    (json_string d.Diagnostic.rule)
    (json_string d.Diagnostic.file)
    d.Diagnostic.line d.Diagnostic.col
    (json_string d.Diagnostic.message)
    path

(* [deep], when present, is (files re-summarized, summary-cache hits) from
   the two-phase pass. *)

let text oc ~files_scanned ?deep diags =
  List.iter (fun d -> output_string oc (Diagnostic.to_human d ^ "\n")) diags;
  let n = List.length diags in
  let cache_note =
    match deep with
    | None -> ""
    | Some (rebuilt, cached) ->
      Printf.sprintf " (deep: %d re-summarized, %d cached)" rebuilt cached
  in
  if n = 0 then
    Printf.fprintf oc "vstat_lint: %d files, clean%s\n" files_scanned
      cache_note
  else
    Printf.fprintf oc "vstat_lint: %d files, %d violation%s%s\n" files_scanned
      n
      (if n = 1 then "" else "s")
      cache_note

let json oc ~files_scanned ?deep diags =
  let rows = List.map diagnostic_json diags in
  let deep_field =
    match deep with
    | None -> ""
    | Some (rebuilt, cached) ->
      Printf.sprintf {|,"deep":{"resummarized":%d,"cached":%d}|} rebuilt
        cached
  in
  Printf.fprintf oc
    {|{"tool":"vstat_lint","files_scanned":%d,"violations":[%s],"count":%d%s}|}
    files_scanned
    (String.concat "," rows)
    (List.length diags) deep_field;
  output_string oc "\n"

let print fmt oc ~files_scanned ?deep diags =
  match fmt with
  | Text -> text oc ~files_scanned ?deep diags
  | Json -> json oc ~files_scanned ?deep diags
