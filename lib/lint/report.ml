(* Rendering of a lint run: human file:line diagnostics for terminals and
   CI logs, machine-readable JSON for the uploaded CI artifact. *)

type format = Text | Json

let format_of_string = function
  | "text" | "human" -> Some Text
  | "json" -> Some Json
  | _ -> None

let text oc ~files_scanned diags =
  List.iter (fun d -> output_string oc (Diagnostic.to_human d ^ "\n")) diags;
  let n = List.length diags in
  if n = 0 then
    Printf.fprintf oc "vstat_lint: %d files, clean\n" files_scanned
  else
    Printf.fprintf oc "vstat_lint: %d files, %d violation%s\n" files_scanned n
      (if n = 1 then "" else "s")

let json oc ~files_scanned diags =
  let rows = List.map Diagnostic.to_json diags in
  Printf.fprintf oc
    {|{"tool":"vstat_lint","files_scanned":%d,"violations":[%s],"count":%d}|}
    files_scanned
    (String.concat "," rows)
    (List.length diags);
  output_string oc "\n"

let print fmt oc ~files_scanned diags =
  match fmt with
  | Text -> text oc ~files_scanned diags
  | Json -> json oc ~files_scanned diags
