(* A single rule violation, pinned to a source position.  The linter's
   output formats (human and JSON) both render from this record. *)

type t = {
  rule : string;     (* rule identifier, e.g. "float-compare" *)
  file : string;     (* path as given to the linter *)
  line : int;        (* 1-based *)
  col : int;         (* 0-based, matching compiler convention *)
  message : string;
}

let make ~rule ~file ~line ~col message = { rule; file; line; col; message }

(* Stable report order: file, then position, then rule.  Explicit
   comparators throughout — this module must satisfy its own float/compare
   rule. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> (
        match String.compare a.rule b.rule with
        | 0 -> String.compare a.message b.message
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let to_human d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (json_escape d.rule) (json_escape d.file) d.line d.col
    (json_escape d.message)
