(* A single rule violation, pinned to a source position.  The linter's
   output formats (human and JSON, both rendered by {!Report}) work from
   this record.  Cross-module findings from the deep pass additionally
   carry [trace]: the call path from the offending entry point / domain
   root down to the nondeterministic source or unguarded state access,
   one rendered step per element (e.g. ["a.ml:12"; "b.ml:40";
   "Random.float (c.ml:3)"]). *)

type t = {
  rule : string;     (* rule identifier, e.g. "float-compare" *)
  file : string;     (* path as given to the linter *)
  line : int;        (* 1-based *)
  col : int;         (* 0-based, matching compiler convention *)
  message : string;
  trace : string list;  (* cross-module call path; [] for per-file rules *)
}

let make ?(trace = []) ~rule ~file ~line ~col message =
  { rule; file; line; col; message; trace }

(* Stable report order: file, then position, then rule.  Explicit
   comparators throughout — this module must satisfy its own float/compare
   rule. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> (
        match String.compare a.rule b.rule with
        | 0 -> String.compare a.message b.message
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let to_human d =
  let base = Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message in
  match d.trace with
  | [] -> base
  | steps -> base ^ "\n    path: " ^ String.concat " \xe2\x86\x92 " steps
