(* Phase 2 of the deep lint pass, part 1: resolving the unqualified
   reference paths recorded in per-module summaries into a project call
   graph.

   Resolution is purely name-based (the pass never types anything) and
   mirrors how this codebase actually spells cross-module calls:

   - [module X = Vstat_foo.Bar] aliases at structure level are expanded
     (the dominant idiom here);
   - a leading segment matching a dune library wrapper module (read from
     the [(library (name ...))] stanza of the directory's [dune] file)
     selects that directory, the next segment the module within it;
   - an unqualified module name resolves first within the referencing
     file's own directory, then through [open]ed wrappers, then globally
     if the name is unique across the scanned set;
   - a bare lowercase identifier resolves within the referencing file
     (the engine only records such references when the name is defined at
     structure level there), trying the caller's submodule prefix first.

   Unresolvable references (stdlib, external libraries, genuinely
   ambiguous names) are dropped — the deep rules stay conservative and
   can only miss, never invent, an edge. *)

module S = Summary

type target =
  | Fn of S.t * S.func
  | Glob of S.t * S.glob

type fileinfo = {
  summary : S.t;
  dir : string;
  defs : (string, S.func) Hashtbl.t;   (* dotted name -> binding *)
  globs : (string, S.glob) Hashtbl.t;
}

type t = {
  files : (string, fileinfo) Hashtbl.t;        (* file path -> info *)
  by_dir_mod : (string * string, string) Hashtbl.t;  (* (dir, Mod) -> file *)
  by_mod : (string, string list) Hashtbl.t;    (* Mod -> files, sorted *)
  wrapper_dir : (string, string) Hashtbl.t;    (* Wrapper -> dir *)
  order : (S.t * S.func) list;                 (* all funcs, (file, line) order *)
}

(* --- dune wrapper discovery --------------------------------------------- *)

let read_file_opt path =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

let find_substring hay needle from =
  let ln = String.length needle and lh = String.length hay in
  let rec go i =
    if i > lh - ln then None
    else if String.sub hay i ln = needle then Some i
    else go (i + 1)
  in
  go from

let ident_at s i =
  let n = String.length s in
  let rec skip i = if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t') then skip (i + 1) else i in
  let start = skip i in
  let rec stop j =
    if
      j < n
      && (match s.[j] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
         | _ -> false)
    then stop (j + 1)
    else j
  in
  let j = stop start in
  if j > start then Some (String.sub s start (j - start)) else None

(* The wrapper module of a directory's dune library, if any: the first
   [(name ...)] following the first [(library] stanza. *)
let wrapper_of_dune_dir dir =
  match read_file_opt (Filename.concat dir "dune") with
  | None -> None
  | Some contents -> (
    match find_substring contents "(library" 0 with
    | None -> None
    | Some i -> (
      match find_substring contents "(name" i with
      | None -> None
      | Some j -> (
        match ident_at contents (j + 5) with
        | Some name -> Some (String.capitalize_ascii name)
        | None -> None)))

(* --- construction ------------------------------------------------------- *)

let build (summaries : S.t list) =
  let files = Hashtbl.create 64 in
  let by_dir_mod = Hashtbl.create 64 in
  let by_mod : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let wrapper_dir = Hashtbl.create 8 in
  let seen_dirs = Hashtbl.create 8 in
  List.iter
    (fun (s : S.t) ->
      let dir = Filename.dirname s.S.sfile in
      let defs = Hashtbl.create 16 in
      let globs = Hashtbl.create 4 in
      List.iter (fun (f : S.func) -> Hashtbl.replace defs f.S.fname f) s.S.funcs;
      List.iter (fun (g : S.glob) -> Hashtbl.replace globs g.S.gname g) s.S.globals;
      Hashtbl.replace files s.S.sfile { summary = s; dir; defs; globs };
      Hashtbl.replace by_dir_mod (dir, s.S.modname) s.S.sfile;
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_mod s.S.modname) in
      Hashtbl.replace by_mod s.S.modname
        (List.sort_uniq String.compare (s.S.sfile :: prev));
      if not (Hashtbl.mem seen_dirs dir) then begin
        Hashtbl.replace seen_dirs dir ();
        match wrapper_of_dune_dir dir with
        | Some w -> Hashtbl.replace wrapper_dir w dir
        | None -> ()
      end)
    summaries;
  let order =
    List.concat_map
      (fun (s : S.t) -> List.map (fun f -> (s, f)) s.S.funcs)
      (List.sort
         (fun (a : S.t) (b : S.t) -> String.compare a.S.sfile b.S.sfile)
         summaries)
  in
  let order =
    List.sort
      (fun ((sa : S.t), (fa : S.func)) (sb, fb) ->
        match String.compare sa.S.sfile sb.S.sfile with
        | 0 -> Int.compare fa.S.fline fb.S.fline
        | c -> c)
      order
  in
  { files; by_dir_mod; by_mod; wrapper_dir; order }

let funcs t = t.order
let summary_of_file t file =
  match Hashtbl.find_opt t.files file with
  | Some fi -> Some fi.summary
  | None -> None

(* --- resolution --------------------------------------------------------- *)

let is_module_seg s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'

let rec expand_alias fuel (s : S.t) path =
  if fuel = 0 then path
  else
    match path with
    | first :: rest -> (
      match List.assoc_opt first s.S.aliases with
      | Some target -> expand_alias (fuel - 1) s (target @ rest)
      | None -> path)
    | [] -> path

let lookup_value fi dotted =
  if dotted = "" then None
  else
    match Hashtbl.find_opt fi.defs dotted with
    | Some f -> Some (Fn (fi.summary, f))
    | None -> (
      match Hashtbl.find_opt fi.globs dotted with
      | Some g -> Some (Glob (fi.summary, g))
      | None -> None)

let prefix_of_fname fname =
  match String.rindex_opt fname '.' with
  | None -> ""
  | Some i -> String.sub fname 0 i

let resolve t (from : S.t) ~(caller : S.func) path0 =
  let path =
    match expand_alias 4 from path0 with
    | "Stdlib" :: rest -> rest
    | p -> p
  in
  match path with
  | [] -> None
  | [ x ] when not (is_module_seg x) -> (
    match Hashtbl.find_opt t.files from.S.sfile with
    | None -> None
    | Some fi -> (
      let pfx = prefix_of_fname caller.S.fname in
      match
        if pfx = "" then None else lookup_value fi (pfx ^ "." ^ x)
      with
      | Some v -> Some v
      | None -> lookup_value fi x))
  | m :: rest when is_module_seg m ->
    let from_dir = Filename.dirname from.S.sfile in
    let candidates =
      (* library-wrapper-qualified: Wrapper.Module.value *)
      (match Hashtbl.find_opt t.wrapper_dir m with
      | Some dir -> (
        match rest with
        | sub :: vals when is_module_seg sub -> (
          match Hashtbl.find_opt t.by_dir_mod (dir, sub) with
          | Some file -> [ (file, vals) ]
          | None -> [])
        | _ -> [])
      | None -> [])
      (* same-directory module *)
      @ (match Hashtbl.find_opt t.by_dir_mod (from_dir, m) with
        | Some file -> [ (file, rest) ]
        | None -> [])
      (* modules of opened library wrappers *)
      @ List.concat_map
          (fun op ->
            match op with
            | [ w ] -> (
              match Hashtbl.find_opt t.wrapper_dir w with
              | Some dir -> (
                match Hashtbl.find_opt t.by_dir_mod (dir, m) with
                | Some file -> [ (file, rest) ]
                | None -> [])
              | None -> [])
            | _ -> [])
          from.S.opens
      (* globally unique module name *)
      @ (match Hashtbl.find_opt t.by_mod m with
        | Some [ file ] -> [ (file, rest) ]
        | _ -> [])
    in
    let rec first = function
      | [] -> None
      | (file, vals) :: tl -> (
        match Hashtbl.find_opt t.files file with
        | None -> first tl
        | Some fi -> (
          match lookup_value fi (String.concat "." vals) with
          | Some v -> Some v
          | None -> first tl))
    in
    first candidates
  | _ -> None

(* Resolved outgoing edges of a function, in callsite order. *)
let out_edges t (s : S.t) (f : S.func) =
  List.filter_map
    (fun (r : S.reference) ->
      match resolve t s ~caller:f r.S.callee with
      | Some target -> Some (r, target)
      | None -> None)
    (List.sort
       (fun (a : S.reference) b ->
         match Int.compare a.S.rline b.S.rline with
         | 0 -> String.compare (String.concat "." a.S.callee) (String.concat "." b.S.callee)
         | c -> c)
       f.refs)
