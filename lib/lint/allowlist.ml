(* File-based suppressions: a checked-in [lint.allow] whose lines sanction
   specific rule/path(/line) combinations.  Complements the inline
   [@vstat.allow "rule"] attribute for sites where an attribute would be
   noisy (whole-file whitelists such as the runtime's wall-clock timing).

   Line grammar (one entry per line, '#' starts a comment):

     rule:path          -- rule allowed anywhere in files matching path
     rule:path:line     -- rule allowed on that exact line only

   [path] matches by suffix on whole '/'-separated components, so
   "lib/runtime/runtime.ml" matches both the repo-relative path and the
   copy dune places under its build sandbox. *)

type entry = { rule : string; path : string; line : int option }
type t = { entries : entry list }

let empty = { entries = [] }

exception Malformed of { file : string; lineno : int; text : string }

let parse_line ~file ~lineno raw =
  let text = String.trim raw in
  if text = "" || text.[0] = '#' then None
  else
    match String.split_on_char ':' text with
    | [ rule; path ] -> Some { rule = String.trim rule; path = String.trim path; line = None }
    | [ rule; path; line ] -> (
      match int_of_string_opt (String.trim line) with
      | Some n when n > 0 ->
        Some { rule = String.trim rule; path = String.trim path; line = Some n }
      | _ -> raise (Malformed { file; lineno; text }))
    | _ -> raise (Malformed { file; lineno; text })

let of_string ~file contents =
  let entries = ref [] in
  List.iteri
    (fun i raw ->
      match parse_line ~file ~lineno:(i + 1) raw with
      | Some e -> entries := e :: !entries
      | None -> ())
    (String.split_on_char '\n' contents);
  { entries = List.rev !entries }

let load file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let contents = really_input_string ic (in_channel_length ic) in
      of_string ~file contents)

let normalize p =
  (* Strip leading "./" segments so entry paths and scanned paths agree. *)
  let rec strip p =
    if String.length p >= 2 && String.sub p 0 2 = "./" then
      strip (String.sub p 2 (String.length p - 2))
    else p
  in
  strip p

(* [path_matches ~entry file]: the entry path equals the file path or is a
   trailing sequence of its components. *)
let path_matches ~entry file =
  let e = normalize entry and f = normalize file in
  e = f
  || (let le = String.length e and lf = String.length f in
      le < lf
      && String.sub f (lf - le) le = e
      && f.[lf - le - 1] = '/')

(* A stable rendering of the whole suppression set, folded into the deep
   pass's environment digest: editing lint.allow must invalidate cached
   summaries, whose stored diagnostics are post-suppression. *)
let fingerprint t =
  String.concat ";"
    (List.map
       (fun e ->
         Printf.sprintf "%s:%s:%s" e.rule e.path
           (match e.line with None -> "*" | Some l -> string_of_int l))
       t.entries)

let allows t ~rule ~file ~line =
  List.exists
    (fun e ->
      e.rule = rule
      && path_matches ~entry:e.path file
      && match e.line with None -> true | Some l -> l = line)
    t.entries
