(* Rule registry: one entry per rule family, with the project invariant it
   protects.  DESIGN.md mirrors this table; [--list-rules] prints it. *)

type info = {
  id : string;
  summary : string;
  invariant : string;  (* which earlier guarantee the rule makes static *)
}

let determinism_random = "determinism-random"
let determinism_hashtbl = "determinism-hashtbl-order"
let determinism_wallclock = "determinism-wallclock"
let float_compare = "float-compare"
let exn_discipline = "exn-discipline"
let hot_path = "hot-path"
let parse_error = "parse-error"
let determinism_taint = "determinism-taint"
let domain_safety = "domain-safety"

let all =
  [
    {
      id = determinism_random;
      summary =
        "no Random.* / Random.State outside the counter-indexed \
         Vstat_util.Rng substream machinery (lib/util/rng.ml)";
      invariant =
        "jobs:1 == jobs:N bit-identical Monte Carlo: all variates must \
         derive from per-sample substreams, never from ambient global \
         generator state";
    };
    {
      id = determinism_hashtbl;
      summary =
        "no Hashtbl.iter/Hashtbl.fold in a function without an adjacent \
         List.sort / sort_uniq / Array.sort re-establishing a total order";
      invariant =
        "hash-bucket traversal order is unspecified; unsorted results \
         leaking out of a census or merge make output depend on hashing";
    };
    {
      id = determinism_wallclock;
      summary =
        "no Unix.gettimeofday / Unix.time / Sys.time / Monotonic_clock.now \
         outside the runtime/experiments timing whitelist (lint.allow)";
      invariant =
        "sample values must be pure functions of (index, substream); wall \
         clocks belong only in the runtime's stats, the table-4 throughput \
         experiment, and the deadline watchdog's single suppressed read \
         (Vstat_runtime.Deadline)";
    };
    {
      id = float_compare;
      summary =
        "no polymorphic = / <> / compare / min / max on float-valued \
         expressions or tuple literals; use Float.equal / Float.compare / \
         an explicit comparator";
      invariant =
        "polymorphic compare on floats orders nan inconsistently and on \
         tuples silently depends on field order; censuses and sorts must \
         use explicit total orders";
    };
    {
      id = exn_discipline;
      summary =
        "no failwith / invalid_arg / raise Not_found in lib/circuit, \
         lib/cells, lib/device outside Diag-sanctioned sites; no failwith \
         in lib/linalg, lib/opt (typed Numeric_error instead)";
      invariant =
        "every solver failure is a typed Diag.Solver_error (or \
         Linalg_error.Numeric_error) so Monte Carlo budgets and censuses \
         classify why samples die";
    };
    {
      id = hot_path;
      summary =
        "inside [@vstat.hot] bindings: no List.map/fold/filter-family \
         combinators, no allocating Array functions \
         (make/init/copy/append/map/...; fill/blit/iter stay legal), no \
         Printf/Format, no nested closure definitions";
      invariant =
        "zero minor-heap allocation per Newton iteration in the engine \
         inner loop (pinned dynamically by the Gc.minor_words gate in \
         test/test_lint.ml)";
    };
    {
      id = parse_error;
      summary = "source file failed to parse (reported as a violation)";
      invariant = "the lint pass must see every file it claims to cover";
    };
    {
      id = determinism_taint;
      summary =
        "(--deep) no [@vstat.entry] hot entry point may transitively reach \
         an unsanctioned Random.* / wall-clock / unsorted-Hashtbl site \
         through the project call graph; the finding carries the full \
         cross-module call path";
      invariant =
        "jobs:1 == jobs:N bit-identical Monte Carlo, made whole-program: \
         the per-file determinism rules only see direct uses, so a helper \
         calling a nondeterministic function two modules away must be \
         caught by interprocedural taint propagation";
    };
    {
      id = domain_safety;
      summary =
        "(--deep) no module-level mutable state (ref / Hashtbl / Buffer / \
         Queue / Stack / mutable-record binding at structure level) may be \
         accessed without an Atomic.* / Mutex / Domain.DLS guard from code \
         reachable from a domain root (a function containing Domain.spawn)";
      invariant =
        "the runtime pool and the vstatd worker share module state across \
         domains; an unguarded access reachable from a spawn site is a \
         data race waiting for the multi-worker scheduler to widen it";
    };
  ]

let pp_list ppf () =
  List.iter
    (fun r ->
      Format.fprintf ppf "%-26s %s@." r.id r.summary;
      Format.fprintf ppf "%-26s   invariant: %s@." "" r.invariant)
    all
