(** Ring oscillator: an odd chain of inverters whose oscillation frequency
    is the canonical silicon speed monitor.  Within-die mismatch spreads the
    frequency across dies exactly as the paper's frequency-vs-leakage plot
    (Fig. 6) illustrates; this cell measures it directly from a transient. *)

type sample = {
  vdd : float;
  stages : Gates.inverter_devices array;  (** odd count *)
}

type result = {
  frequency_hz : float;     (** steady-state oscillation frequency *)
  period_s : float;
  stage_delay_s : float;    (** period / (2 * stages) *)
  leakage : float;          (** static supply current with the ring broken *)
}

val sample :
  ?stages:int -> ?wp_nm:float -> ?wn_nm:float -> Celltech.t -> sample
(** Default: 5 stages of P/N = 600/300 nm.
    @raise Invalid_argument if [stages] is even or < 3. *)

val measure : ?cycles:float -> sample -> result
(** Run a transient long enough for ~[cycles] oscillation periods
    (default 6; the first two are discarded as startup) and measure the
    average period from successive rising crossings of one node.
    @raise Vstat_circuit.Diag.Solver_error ([Measure_no_crossing]) if the ring fails to oscillate in the window. *)
