(** Inverter-chain timing path: the minimal SSTA benchmark.

    A chain of N identical inverters driven by a shaped edge; the path
    delay is the 50 %-to-50 % delay from the first stage's input to the
    last stage's output.  Each stage carries independent within-die
    mismatch, so the path delay is a sum of per-stage random delays —
    exactly the object statistical static timing analysis models. *)

type sample = {
  vdd : float;
  stages : Gates.inverter_devices array;
  driver : Gates.inverter_devices;
}

val sample :
  ?stages:int -> ?wp_nm:float -> ?wn_nm:float -> Celltech.t -> sample
(** Default: 8 stages of P/N = 600/300 nm. *)

val measure : ?window:float -> ?steps:int -> sample -> float
(** Path delay in seconds (input edge at the first stage's input to the
    final output's matching-polarity crossing).
    @raise Vstat_circuit.Diag.Solver_error ([Measure_no_crossing]) if the edge never propagates within the window. *)

(** {1 Batched evaluation}

    {!measure} rebuilds and recompiles the netlist for every sample.
    {!prepare} compiles the chain once over retargetable device proxies
    ({!Vstat_device.Device_model.proxy}); {!measure_prepared} then swaps
    the per-sample devices in and reuses the compiled engine — its
    workspaces, slot-resolved stamp plan and (on the sparse backend) the
    shared symbolic factorization.  A [prepared] engine is mutable state:
    use one per worker domain. *)

type prepared

val prepare :
  ?stages:int ->
  ?wp_nm:float ->
  ?wn_nm:float ->
  ?window:float ->
  ?backend:Vstat_circuit.Engine.backend ->
  Celltech.t ->
  prepared
(** Compile the chain topology once (defaults match {!sample} /
    {!measure}: 8 stages of P/N = 600/300 nm, auto-sized window).  The
    technology supplies only the template devices; per-sample devices come
    from {!measure_prepared}. *)

val prepared_backend : prepared -> Vstat_circuit.Engine.backend
(** Which linear-solver backend the compiled engine resolved to. *)

val measure_prepared : ?steps:int -> prepared -> sample -> float
(** Retarget the proxies to [sample]'s devices and measure the path delay
    on the prepared engine.  Equivalent to {!measure} on the same sample
    (same topology, stimulus and step policy).
    @raise Invalid_argument if the sample's stage count or vdd differ from
      [prepare]'s.
    @raise Vstat_circuit.Diag.Solver_error as {!measure}. *)
