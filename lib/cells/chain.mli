(** Inverter-chain timing path: the minimal SSTA benchmark.

    A chain of N identical inverters driven by a shaped edge; the path
    delay is the 50 %-to-50 % delay from the first stage's input to the
    last stage's output.  Each stage carries independent within-die
    mismatch, so the path delay is a sum of per-stage random delays —
    exactly the object statistical static timing analysis models. *)

type sample = {
  vdd : float;
  stages : Gates.inverter_devices array;
  driver : Gates.inverter_devices;
}

val sample :
  ?stages:int -> ?wp_nm:float -> ?wn_nm:float -> Celltech.t -> sample
(** Default: 8 stages of P/N = 600/300 nm. *)

val measure : ?window:float -> ?steps:int -> sample -> float
(** Path delay in seconds (input edge at the first stage's input to the
    final output's matching-polarity crossing).
    @raise Vstat_circuit.Diag.Solver_error ([Measure_no_crossing]) if the edge never propagates within the window. *)
