module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine
module W = Vstat_circuit.Waveform

type sample = { vdd : float; stages : Gates.inverter_devices array }

type result = {
  frequency_hz : float;
  period_s : float;
  stage_delay_s : float;
  leakage : float;
}

let sample ?(stages = 5) ?(wp_nm = 600.0) ?(wn_nm = 300.0) (tech : Celltech.t) =
  if stages < 3 || stages mod 2 = 0 then
    invalid_arg "Ring_oscillator.sample: stages must be odd and >= 3"
    [@vstat.allow "exn-discipline"];
  {
    vdd = tech.vdd;
    stages = Array.init stages (fun _ -> Gates.sample_inverter tech ~wp_nm ~wn_nm);
  }

(* The DC operating point of a free ring is its metastable midpoint, and a
   perfectly symmetric integrator can sit there forever.  A brief kick-start
   current pulse on stage 0 breaks the symmetry. *)
let build s =
  let net = N.create () in
  let gnd = N.ground net in
  let nvdd = N.node net "vdd" in
  N.vsource net "vvdd" ~plus:nvdd ~minus:gnd ~wave:(W.Dc s.vdd);
  let n = Array.length s.stages in
  let nodes = Array.init n (fun i -> N.node net (Printf.sprintf "s%d" i)) in
  Array.iteri
    (fun i devices ->
      Gates.add_inverter net
        ~name:(Printf.sprintf "x%d" i)
        ~devices ~input:nodes.(i)
        ~output:nodes.((i + 1) mod n)
        ~vdd_node:nvdd ~gnd)
    s.stages;
  N.isource net "ikick" ~from_:nodes.(0) ~to_:gnd
    ~wave:
      (W.pwl
         [| (0.0, 0.0); (1e-12, 50e-6); (15e-12, 50e-6); (16e-12, 0.0) |]);
  (net, nodes.(0))

let measure ?(cycles = 6.0) s =
  let net, probe = build s in
  let eng = E.compile net in
  (* Rough period estimate: 2 * stages * (a generous FO1 stage delay). *)
  let stage_guess = 12e-12 *. (0.9 /. s.vdd) ** 2.0 in
  let period_guess = 2.0 *. Float.of_int (Array.length s.stages) *. stage_guess in
  let tstop = cycles *. period_guess *. 2.0 in
  let trace = E.transient eng ~tstop ~dt:(period_guess /. 60.0) in
  let times = trace.E.times in
  let wave = E.node_wave eng trace probe in
  (* Collect rising v50 crossings after the startup transient. *)
  let v50 = s.vdd /. 2.0 in
  let crossings = ref [] in
  for i = 0 to Array.length times - 2 do
    if wave.(i) < v50 && wave.(i + 1) >= v50 then begin
      let frac = (v50 -. wave.(i)) /. (wave.(i + 1) -. wave.(i)) in
      crossings := (times.(i) +. (frac *. (times.(i + 1) -. times.(i)))) :: !crossings
    end
  done;
  let crossings = Array.of_list (List.rev !crossings) in
  let n = Array.length crossings in
  if n < 4 then
    Vstat_circuit.Diag.fail ~analysis:"measure:ring_oscillator"
      Measure_no_crossing "did not oscillate (%d crossings)" n;
  (* Average period over the post-startup crossings. *)
  let first = Int.min 2 (n - 2) in
  let period =
    (crossings.(n - 1) -. crossings.(first)) /. Float.of_int (n - 1 - first)
  in
  let stages = Float.of_int (Array.length s.stages) in
  (* Leakage: measure a broken-ring DC (all stages driven low via a copy)
     approximated by the running ring's average supply current being
     dominated by switching; instead report the DC op current of the ring
     before the kick (metastable) scaled is wrong — use a simple static
     estimate: sum of per-stage off currents at the rails. *)
  let leakage =
    Array.fold_left
      (fun acc (d : Gates.inverter_devices) ->
        let off_n =
          Float.abs
            (Vstat_device.Device_model.ids d.nmos ~vg:0.0 ~vd:s.vdd ~vs:0.0
               ~vb:0.0)
        in
        let off_p =
          Float.abs
            (Vstat_device.Device_model.ids d.pmos ~vg:s.vdd ~vd:0.0 ~vs:s.vdd
               ~vb:s.vdd)
        in
        acc +. (0.5 *. (off_n +. off_p)))
      0.0 s.stages
  in
  {
    frequency_hz = 1.0 /. period;
    period_s = period;
    stage_delay_s = period /. (2.0 *. stages);
    leakage;
  }
