module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine
module W = Vstat_circuit.Waveform
module M = Vstat_circuit.Measure

type sample = {
  vdd : float;
  stages : Gates.inverter_devices array;
  driver : Gates.inverter_devices;
}

let sample ?(stages = 8) ?(wp_nm = 600.0) ?(wn_nm = 300.0) (tech : Celltech.t) =
  if stages < 1 then
    invalid_arg "Chain.sample: stages >= 1" [@vstat.allow "exn-discipline"];
  {
    vdd = tech.vdd;
    stages =
      Array.init stages (fun _ -> Gates.sample_inverter tech ~wp_nm ~wn_nm);
    driver = Gates.sample_inverter tech ~wp_nm ~wn_nm;
  }

let measure ?window ?(steps = 600) s =
  let n = Array.length s.stages in
  let window =
    match window with
    | Some w -> w
    | None ->
      Inverter.default_window ~vdd:s.vdd *. Float.of_int (Int.max 1 (n / 3))
  in
  let net = N.create () in
  let gnd = N.ground net in
  let nvdd = N.node net "vdd" in
  let nin = N.node net "in" in
  N.vsource net "vvdd" ~plus:nvdd ~minus:gnd ~wave:(W.Dc s.vdd);
  N.vsource net "vin" ~plus:nin ~minus:gnd
    ~wave:(W.pwl [| (0.06 *. window, 0.0); (0.06 *. window *. 1.3, s.vdd) |]);
  let first = N.node net "s0" in
  Gates.add_inverter net ~name:"xdrv" ~devices:s.driver ~input:nin
    ~output:first ~vdd_node:nvdd ~gnd;
  let last = ref first in
  Array.iteri
    (fun i devices ->
      let out = N.node net (Printf.sprintf "s%d" (i + 1)) in
      Gates.add_inverter net
        ~name:(Printf.sprintf "x%d" i)
        ~devices ~input:!last ~output:out ~vdd_node:nvdd ~gnd;
      last := out)
    s.stages;
  (* A final gate load keeps the last stage realistic. *)
  N.capacitor net "cl" ~a:!last ~b:gnd ~farads:1e-15;
  let eng = E.compile net in
  let trace = E.transient eng ~tstop:window ~dt:(window /. Float.of_int steps) in
  let times = trace.E.times in
  let w_first = E.node_wave eng trace first in
  let w_last = E.node_wave eng trace !last in
  let v50 = s.vdd /. 2.0 in
  (* Driver inverts the input rise, so the first stage's input falls; the
     final output polarity depends on chain parity. *)
  let output_rising = n mod 2 = 1 in
  match
    M.propagation_delay ~times ~input:w_first ~output:w_last ~v50
      ~input_rising:false ~output_rising
  with
  | Some d -> d
  | None ->
    Vstat_circuit.Diag.fail ~analysis:"measure:chain" Measure_no_crossing
      "edge did not propagate (window too short)"
