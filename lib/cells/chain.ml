module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine
module W = Vstat_circuit.Waveform
module M = Vstat_circuit.Measure

type sample = {
  vdd : float;
  stages : Gates.inverter_devices array;
  driver : Gates.inverter_devices;
}

let sample ?(stages = 8) ?(wp_nm = 600.0) ?(wn_nm = 300.0) (tech : Celltech.t) =
  if stages < 1 then
    invalid_arg "Chain.sample: stages >= 1" [@vstat.allow "exn-discipline"];
  {
    vdd = tech.vdd;
    stages =
      Array.init stages (fun _ -> Gates.sample_inverter tech ~wp_nm ~wn_nm);
    driver = Gates.sample_inverter tech ~wp_nm ~wn_nm;
  }

(* Build the chain netlist once for a given stage count and stimulus.
   [devices i] supplies the inverter pair for position [i] (0 = driver,
   then stages in order); returns the compiled engine and the probe
   nodes. *)
let build ?backend ~vdd ~stages ~window (devices : int -> Gates.inverter_devices)
    =
  let net = N.create () in
  let gnd = N.ground net in
  let nvdd = N.node net "vdd" in
  let nin = N.node net "in" in
  N.vsource net "vvdd" ~plus:nvdd ~minus:gnd ~wave:(W.Dc vdd);
  N.vsource net "vin" ~plus:nin ~minus:gnd
    ~wave:(W.pwl [| (0.06 *. window, 0.0); (0.06 *. window *. 1.3, vdd) |]);
  let first = N.node net "s0" in
  Gates.add_inverter net ~name:"xdrv" ~devices:(devices 0) ~input:nin
    ~output:first ~vdd_node:nvdd ~gnd;
  let last = ref first in
  for i = 0 to stages - 1 do
    let out = N.node net (Printf.sprintf "s%d" (i + 1)) in
    Gates.add_inverter net
      ~name:(Printf.sprintf "x%d" i)
      ~devices:(devices (i + 1))
      ~input:!last ~output:out ~vdd_node:nvdd ~gnd;
    last := out
  done;
  (* A final gate load keeps the last stage realistic. *)
  N.capacitor net "cl" ~a:!last ~b:gnd ~farads:1e-15;
  let eng =
    match backend with
    | None -> E.compile net
    | Some b -> E.compile ~backend:b net
  in
  (eng, first, !last)

let default_window ~vdd ~stages =
  Inverter.default_window ~vdd *. Float.of_int (Int.max 1 (stages / 3))

(* Extract the 50%-to-50% path delay from a finished transient. *)
let delay_of_trace ~vdd ~stages eng trace ~first ~last =
  let times = trace.E.times in
  let w_first = E.node_wave eng trace first in
  let w_last = E.node_wave eng trace last in
  let v50 = vdd /. 2.0 in
  (* Driver inverts the input rise, so the first stage's input falls; the
     final output polarity depends on chain parity. *)
  let output_rising = stages mod 2 = 1 in
  match
    M.propagation_delay ~times ~input:w_first ~output:w_last ~v50
      ~input_rising:false ~output_rising
  with
  | Some d -> d
  | None ->
    Vstat_circuit.Diag.fail ~analysis:"measure:chain" Measure_no_crossing
      "edge did not propagate (window too short)"

let measure ?window ?(steps = 600) s =
  let n = Array.length s.stages in
  let window =
    match window with
    | Some w -> w
    | None -> default_window ~vdd:s.vdd ~stages:n
  in
  let devices i = if i = 0 then s.driver else s.stages.(i - 1) in
  let eng, first, last = build ~vdd:s.vdd ~stages:n ~window devices in
  let trace = E.transient eng ~tstop:window ~dt:(window /. Float.of_int steps) in
  delay_of_trace ~vdd:s.vdd ~stages:n eng trace ~first ~last

(* Batched evaluation: one compiled engine whose transistors are
   Device_model proxies, retargeted per sample.  The topology (and so the
   sparse symbolic analysis) is shared by construction; only numeric model
   state changes between samples. *)
type prepared = {
  p_vdd : float;
  p_stages : int;
  p_window : float;
  p_engine : E.t;
  p_first : N.node;
  p_last : N.node;
  p_proxies : (Vstat_device.Device_model.proxy
              * Vstat_device.Device_model.proxy)
      array;  (* (pmos, nmos) at position i; 0 = driver *)
}

let prepare ?(stages = 8) ?(wp_nm = 600.0) ?(wn_nm = 300.0) ?window ?backend
    (tech : Celltech.t) =
  if stages < 1 then
    invalid_arg "Chain.prepare: stages >= 1" [@vstat.allow "exn-discipline"];
  let window =
    match window with
    | Some w -> w
    | None -> default_window ~vdd:tech.vdd ~stages
  in
  let template = Gates.sample_inverter tech ~wp_nm ~wn_nm in
  let proxies =
    Array.init (stages + 1) (fun _ ->
        ( Vstat_device.Device_model.proxy template.Gates.pmos,
          Vstat_device.Device_model.proxy template.Gates.nmos ))
  in
  let devices i =
    let pp, pn = proxies.(i) in
    {
      Gates.pmos = Vstat_device.Device_model.proxy_device pp;
      nmos = Vstat_device.Device_model.proxy_device pn;
    }
  in
  let eng, first, last = build ?backend ~vdd:tech.vdd ~stages ~window devices in
  {
    p_vdd = tech.vdd;
    p_stages = stages;
    p_window = window;
    p_engine = eng;
    p_first = first;
    p_last = last;
    p_proxies = proxies;
  }

let prepared_backend p = E.resolved_backend p.p_engine

let measure_prepared ?(steps = 600) p s =
  if Array.length s.stages <> p.p_stages then
    invalid_arg "Chain.measure_prepared: stage count differs from prepare"
    [@vstat.allow "exn-discipline"];
  if not (Float.equal s.vdd p.p_vdd) then
    invalid_arg "Chain.measure_prepared: sample vdd differs from prepare"
    [@vstat.allow "exn-discipline"];
  for i = 0 to p.p_stages do
    let devs = if i = 0 then s.driver else s.stages.(i - 1) in
    let pp, pn = p.p_proxies.(i) in
    Vstat_device.Device_model.retarget pp devs.Gates.pmos;
    Vstat_device.Device_model.retarget pn devs.Gates.nmos
  done;
  let window = p.p_window in
  let eng = p.p_engine in
  let trace = E.transient eng ~tstop:window ~dt:(window /. Float.of_int steps) in
  delay_of_trace ~vdd:p.p_vdd ~stages:p.p_stages eng trace ~first:p.p_first
    ~last:p.p_last
