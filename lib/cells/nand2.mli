(** Fanout-of-N NAND2 delay harness (paper Fig. 7).

    Worst-case single-input switching: input A (the series-stack transistor
    nearest the output) switches while input B is held at Vdd.  The driver
    is a NAND2 wired as an inverter; each load is an identical NAND2 with
    its A input on the DUT output and B at Vdd. *)

type sample = {
  vdd : float;
  driver : Gates.nand2_devices;
  dut : Gates.nand2_devices;
  loads : Gates.nand2_devices array;
}

type result = {
  tphl : float;
  tplh : float;
  tpd : float;
  leakage : float;  (** static supply current with A low, B high, A *)
}

val sample : Celltech.t -> wp_nm:float -> wn_nm:float -> fanout:int -> sample

val measure : ?window:float -> ?steps:int -> sample -> result
(** @raise Vstat_circuit.Diag.Solver_error ([Measure_no_crossing]) if the output never crosses 50 % within the window. *)

val measure_nominal :
  Celltech.t -> wp_nm:float -> wn_nm:float -> fanout:int -> result
