module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine
module W = Vstat_circuit.Waveform
module M = Vstat_circuit.Measure

type mode = Read | Hold

type half_devices = {
  pullup : Vstat_device.Device_model.t;
  pulldown : Vstat_device.Device_model.t;
  access : Vstat_device.Device_model.t;
}

type sample = { vdd : float; left : half_devices; right : half_devices }

let sample ?(pu_w_nm = 80.0) ?(pd_w_nm = 150.0) ?(acc_w_nm = 105.0)
    (tech : Celltech.t) =
  let half () =
    {
      pullup = tech.pmos ~w_nm:pu_w_nm;
      pulldown = tech.nmos ~w_nm:pd_w_nm;
      access = tech.nmos ~w_nm:acc_w_nm;
    }
  in
  { vdd = tech.vdd; left = half (); right = half () }

(* Half-cell VTC: the input source drives the gates of the inverter pair,
   the output node also sees the access transistor to a bitline at Vdd. *)
let vtc s ~side ~mode ~points =
  let devices = match side with `Left -> s.left | `Right -> s.right in
  let net = N.create () in
  let gnd = N.ground net in
  let nvdd = N.node net "vdd" in
  let nin = N.node net "in" in
  let nout = N.node net "out" in
  let nbl = N.node net "bl" in
  let nwl = N.node net "wl" in
  let vin_ref = ref 0.0 in
  N.vsource net "vvdd" ~plus:nvdd ~minus:gnd ~wave:(W.Dc s.vdd);
  N.vsource net "vin" ~plus:nin ~minus:gnd ~wave:(W.Var vin_ref);
  N.vsource net "vbl" ~plus:nbl ~minus:gnd ~wave:(W.Dc s.vdd);
  let wl = match mode with Read -> s.vdd | Hold -> 0.0 in
  N.vsource net "vwl" ~plus:nwl ~minus:gnd ~wave:(W.Dc wl);
  N.mosfet net "mpu" ~d:nout ~g:nin ~s:nvdd ~b:nvdd ~dev:devices.pullup;
  N.mosfet net "mpd" ~d:nout ~g:nin ~s:gnd ~b:gnd ~dev:devices.pulldown;
  N.mosfet net "macc" ~d:nbl ~g:nwl ~s:nout ~b:gnd ~dev:devices.access;
  let eng = E.compile net in
  let values = Vstat_util.Floatx.linspace 0.0 s.vdd points in
  let outs =
    M.dc_sweep eng
      ~set:(fun v -> vin_ref := v)
      ~values
      ~probe:(fun op -> E.voltage eng op nout)
  in
  Array.init points (fun i -> (values.(i), outs.(i)))

type butterfly = {
  curve1 : (float * float) array;
  curve2 : (float * float) array;
}

let butterfly ?(points = 81) s ~mode =
  (* curve1: left half-cell, input = q, output = qb -> points (q, qb).
     curve2: right half-cell, input = qb, output = q -> points (q, qb). *)
  let left = vtc s ~side:`Left ~mode ~points in
  let right = vtc s ~side:`Right ~mode ~points in
  {
    curve1 = left;
    curve2 = Array.map (fun (input, output) -> (output, input)) right;
  }

(* Largest axis-parallel square embedded in each butterfly lobe.  Both
   curves are strictly decreasing functions qb(q), so from a base point on
   the lower curve the 45-degree ray (q0 + t, qb0 + t) meets the upper curve
   at a unique t > 0; that t is the side of the square whose opposite
   corners touch the two curves.  The lobe SNM is the maximum such t; the
   cell SNM is the smaller lobe's value (Seevinck's method restated in the
   original coordinates, which stays single-valued). *)
let snm_lobes_of_butterfly { curve1; curve2 } =
  let as_function curve =
    let pairs = Array.copy curve in
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) pairs;
    let xs = Array.map fst pairs and ys = Array.map snd pairs in
    fun q -> Vstat_util.Floatx.interp_linear ~xs ~ys q
  in
  let f1 = as_function curve1 in
  let f2 = as_function curve2 in
  let q_lo =
    Float.max
      (Array.fold_left (fun acc (q, _) -> Float.min acc q) infinity curve1)
      (Array.fold_left (fun acc (q, _) -> Float.min acc q) infinity curve2)
  in
  let q_hi =
    Float.min
      (Array.fold_left (fun acc (q, _) -> Float.max acc q) neg_infinity curve1)
      (Array.fold_left (fun acc (q, _) -> Float.max acc q) neg_infinity curve2)
  in
  let span = q_hi -. q_lo in
  if span <= 0.0 then (0.0, 0.0)
  else begin
    (* Maximum square from the lower curve [low] up-right to [high]. *)
    let lobe ~low ~high =
      let best = ref 0.0 in
      let samples = 201 in
      for i = 0 to samples - 1 do
        let q0 =
          q_lo +. (span *. Float.of_int i /. Float.of_int (samples - 1))
        in
        let y0 = low q0 in
        if high q0 > y0 then begin
          (* h(t) = high(q0+t) - (y0+t): positive at 0, decreasing. *)
          let t_max = q_hi -. q0 in
          if t_max > 0.0 then begin
            let h t = high (q0 +. t) -. (y0 +. t) in
            if h t_max <= 0.0 then begin
              let t =
                Vstat_opt.Scalar.bisect ~tol:1e-9 ~f:h ~lo:0.0 ~hi:t_max ()
              in
              best := Float.max !best t
            end
            else best := Float.max !best t_max
          end
        end
      done;
      !best
    in
    let lobe1 = lobe ~low:f2 ~high:f1 in
    let lobe2 = lobe ~low:f1 ~high:f2 in
    (lobe1, lobe2)
  end

let snm_of_butterfly b =
  let lobe1, lobe2 = snm_lobes_of_butterfly b in
  Float.min lobe1 lobe2

let snm_lobes ?(points = 81) s ~mode =
  snm_lobes_of_butterfly (butterfly ~points s ~mode)

let snm ?(points = 81) s ~mode = snm_of_butterfly (butterfly ~points s ~mode)
