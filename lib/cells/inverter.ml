module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine
module W = Vstat_circuit.Waveform
module M = Vstat_circuit.Measure

type sample = {
  vdd : float;
  driver : Gates.inverter_devices;
  dut : Gates.inverter_devices;
  loads : Gates.inverter_devices array;
}

type result = { tphl : float; tplh : float; tpd : float; leakage : float }

let sample (tech : Celltech.t) ~wp_nm ~wn_nm ~fanout =
  if fanout < 1 then
    invalid_arg "Inverter.sample: fanout >= 1" [@vstat.allow "exn-discipline"];
  {
    vdd = tech.vdd;
    driver = Gates.sample_inverter tech ~wp_nm ~wn_nm;
    dut = Gates.sample_inverter tech ~wp_nm ~wn_nm;
    loads =
      Array.init fanout (fun _ -> Gates.sample_inverter tech ~wp_nm ~wn_nm);
  }

let default_window ~vdd =
  if vdd >= 0.8 then 400e-12 else if vdd >= 0.65 then 1200e-12 else 4000e-12

let build s ~window =
  let net = N.create () in
  let gnd = N.ground net in
  let nvdd = N.node net "vdd" in
  let nin = N.node net "in" in
  let na = N.node net "a" in
  let ny = N.node net "y" in
  N.vsource net "vvdd" ~plus:nvdd ~minus:gnd ~wave:(W.Dc s.vdd);
  let edge = 0.02 *. window in
  let t_rise = 0.08 *. window in
  let t_fall = 0.54 *. window in
  N.vsource net "vin" ~plus:nin ~minus:gnd
    ~wave:
      (W.pwl
         [|
           (t_rise, 0.0); (t_rise +. edge, s.vdd);
           (t_fall, s.vdd); (t_fall +. edge, 0.0);
         |]);
  Gates.add_inverter net ~name:"xdrv" ~devices:s.driver ~input:nin ~output:na
    ~vdd_node:nvdd ~gnd;
  Gates.add_inverter net ~name:"xdut" ~devices:s.dut ~input:na ~output:ny
    ~vdd_node:nvdd ~gnd;
  Array.iteri
    (fun i devices ->
      let out = N.node net (Printf.sprintf "l%d" i) in
      Gates.add_inverter net ~name:(Printf.sprintf "xload%d" i) ~devices
        ~input:ny ~output:out ~vdd_node:nvdd ~gnd)
    s.loads;
  (net, na, ny)

let measure ?window ?(steps = 400) s =
  let window =
    match window with Some w -> w | None -> default_window ~vdd:s.vdd
  in
  let net, na, ny = build s ~window in
  let eng = E.compile net in
  let op = E.dc eng in
  let leakage = Float.abs (E.source_current eng op "vvdd") in
  let trace = E.transient eng ~tstop:window ~dt:(window /. Float.of_int steps) in
  let times = trace.E.times in
  let wa = E.node_wave eng trace na in
  let wy = E.node_wave eng trace ny in
  let v50 = s.vdd /. 2.0 in
  (* Input pulse rises then falls; node a falls then rises; y mirrors in. *)
  let tplh =
    M.propagation_delay ~times ~input:wa ~output:wy ~v50 ~input_rising:false
      ~output_rising:true
  in
  let tphl =
    M.propagation_delay ~times ~input:wa ~output:wy ~v50 ~input_rising:true
      ~output_rising:false
  in
  match (tplh, tphl) with
  | Some tplh, Some tphl ->
    { tphl; tplh; tpd = 0.5 *. (tphl +. tplh); leakage }
  | _ ->
    Vstat_circuit.Diag.fail ~analysis:"measure:inverter" Measure_no_crossing
      "output never crossed 50%% (window %.3e s too short)" window

let measure_nominal tech ~wp_nm ~wn_nm ~fanout =
  measure (sample tech ~wp_nm ~wn_nm ~fanout)
