(** 6T SRAM cell: butterfly curves and static noise margins (paper Fig. 9).

    The butterfly plot is built from the two half-cell voltage transfer
    curves obtained by breaking the cross-coupled loop; the SNM is the side
    of the largest square embedded in each butterfly lobe (computed with the
    classic 45-degree rotation method).  READ mode has the wordline high and
    both bitlines held at Vdd; HOLD mode has the wordline low. *)

type mode = Read | Hold

type half_devices = {
  pullup : Vstat_device.Device_model.t;    (** PMOS to Vdd *)
  pulldown : Vstat_device.Device_model.t;  (** NMOS to ground *)
  access : Vstat_device.Device_model.t;    (** NMOS pass to the bitline *)
}

type sample = {
  vdd : float;
  left : half_devices;
  right : half_devices;
}

val sample :
  ?pu_w_nm:float -> ?pd_w_nm:float -> ?acc_w_nm:float -> Celltech.t -> sample
(** Draw one cell (defaults: pull-down 150 nm — the paper's "N 150 nm" —
    pull-up 80 nm, access 105 nm). *)

val vtc : sample -> side:[ `Left | `Right ] -> mode:mode -> points:int ->
  (float * float) array
(** Half-cell transfer curve: (input, output) pairs with the input swept
    over [0, Vdd]. *)

type butterfly = {
  curve1 : (float * float) array;  (** (q, qb) from the left half-cell *)
  curve2 : (float * float) array;  (** (q, qb) from the mirrored right one *)
}

val butterfly : ?points:int -> sample -> mode:mode -> butterfly

val snm_of_butterfly : butterfly -> float
(** Static noise margin: min over the two lobes of the largest embedded
    square's side (V). *)

val snm_lobes_of_butterfly : butterfly -> float * float
(** Per-lobe largest-square sides (lobe 1, lobe 2); the cell SNM is their
    min.  The individual lobes are smooth, near-linear functions of the
    mismatch shifts — unlike their min, whose kink defeats linear response
    surfaces — which is what rare-event pilots want to regress on. *)

val snm : ?points:int -> sample -> mode:mode -> float

val snm_lobes : ?points:int -> sample -> mode:mode -> float * float
