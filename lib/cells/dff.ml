module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine
module W = Vstat_circuit.Waveform
module M = Vstat_circuit.Measure

type sample = {
  vdd : float;
  inverters : Gates.inverter_devices array;
  passes : Vstat_device.Device_model.t array;
}

let sample ?(inv_wp_nm = 600.0) ?(inv_wn_nm = 300.0) ?(pass_w_nm = 300.0)
    (tech : Celltech.t) =
  {
    vdd = tech.vdd;
    inverters =
      Array.init 4 (fun _ ->
          Gates.sample_inverter tech ~wp_nm:inv_wp_nm ~wn_nm:inv_wn_nm);
    passes = Array.init 4 (fun _ -> tech.nmos ~w_nm:pass_w_nm);
  }

let edge = 10e-12

(* Build the register with explicit CLK / CLKB / D waveforms and return the
   engine plus the Q node. *)
let build s ~clk ~clkb ~d_wave =
  let net = N.create () in
  let gnd = N.ground net in
  let nvdd = N.node net "vdd" in
  let nclk = N.node net "clk" in
  let nclkb = N.node net "clkb" in
  let nd = N.node net "d" in
  let m_in = N.node net "m_in" in
  let m_out = N.node net "m_out" in
  let m_fb = N.node net "m_fb" in
  let s_in = N.node net "s_in" in
  let s_out = N.node net "s_out" in
  let s_fb = N.node net "s_fb" in
  N.vsource net "vvdd" ~plus:nvdd ~minus:gnd ~wave:(W.Dc s.vdd);
  N.vsource net "vclk" ~plus:nclk ~minus:gnd ~wave:clk;
  N.vsource net "vclkb" ~plus:nclkb ~minus:gnd ~wave:clkb;
  N.vsource net "vd" ~plus:nd ~minus:gnd ~wave:d_wave;
  Gates.add_nmos_pass net ~name:"m1" ~dev:s.passes.(0) ~a:nd ~b:m_in ~gate:nclk
    ~gnd;
  Gates.add_inverter net ~name:"i1" ~devices:s.inverters.(0) ~input:m_in
    ~output:m_out ~vdd_node:nvdd ~gnd;
  Gates.add_inverter net ~name:"i2" ~devices:s.inverters.(1) ~input:m_out
    ~output:m_fb ~vdd_node:nvdd ~gnd;
  Gates.add_nmos_pass net ~name:"m2" ~dev:s.passes.(1) ~a:m_fb ~b:m_in
    ~gate:nclkb ~gnd;
  Gates.add_nmos_pass net ~name:"m3" ~dev:s.passes.(2) ~a:m_out ~b:s_in
    ~gate:nclkb ~gnd;
  Gates.add_inverter net ~name:"i3" ~devices:s.inverters.(2) ~input:s_in
    ~output:s_out ~vdd_node:nvdd ~gnd;
  Gates.add_inverter net ~name:"i4" ~devices:s.inverters.(3) ~input:s_out
    ~output:s_fb ~vdd_node:nvdd ~gnd;
  Gates.add_nmos_pass net ~name:"m4" ~dev:s.passes.(3) ~a:s_fb ~b:s_in
    ~gate:nclk ~gnd;
  (net, s_out)

let capture_ok ?(t_clk = 200e-12) ?(settle = 300e-12) s ~t_d ~data_rising =
  let vdd = s.vdd in
  let clk = W.pwl [| (t_clk, vdd); (t_clk +. edge, 0.0) |] in
  let clkb = W.pwl [| (t_clk, 0.0); (t_clk +. edge, vdd) |] in
  let d_wave =
    if data_rising then W.pwl [| (t_d, 0.0); (t_d +. edge, vdd) |]
    else W.pwl [| (t_d, vdd); (t_d +. edge, 0.0) |]
  in
  let net, q_node = build s ~clk ~clkb ~d_wave in
  let eng = E.compile net in
  let tstop = t_clk +. settle in
  let trace = E.transient eng ~tstop ~dt:(tstop /. 500.0) in
  let q = E.node_wave eng trace q_node in
  let final = M.settled_value ~values:q ~tail_fraction:0.05 in
  (* Q follows D through two pass stages and two inversions each, so the
     captured Q equals the data value before the falling clock edge; a
     successful capture of a rising D ends high, of a falling D ends high
     too (the falling edge must NOT be captured in a hold test). *)
  final > 0.6 *. vdd

let setup_time ?(t_clk = 200e-12) ?(search = 150e-12) s =
  (* Later data arrival -> capture fails; find the boundary. *)
  let fails t_d = not (capture_ok ~t_clk s ~t_d ~data_rising:true) in
  let lo = t_clk -. search in
  let hi = t_clk +. (0.3 *. search) in
  if fails lo then
    Vstat_circuit.Diag.fail ~analysis:"measure:dff.setup_time"
      Measure_no_crossing "capture fails even for very early data";
  if not (fails hi) then
    Vstat_circuit.Diag.fail ~analysis:"measure:dff.setup_time"
      Measure_no_crossing "capture succeeds even for very late data";
  let boundary =
    Vstat_opt.Scalar.bisect_predicate ~tol:1e-15 ~f:fails ~lo ~hi ()
  in
  t_clk -. boundary

let hold_time ?(t_clk = 200e-12) ?(search = 150e-12) s =
  (* Data falls at t_d after having been high; if it falls too early the
     captured 1 is corrupted.  Earlier fall -> corruption. *)
  let ok t_d = capture_ok ~t_clk s ~t_d ~data_rising:false in
  let lo = t_clk -. (0.3 *. search) in
  let hi = t_clk +. search in
  if ok lo then
    Vstat_circuit.Diag.fail ~analysis:"measure:dff.hold_time"
      Measure_no_crossing "capture survives very early data fall";
  if not (ok hi) then
    Vstat_circuit.Diag.fail ~analysis:"measure:dff.hold_time"
      Measure_no_crossing "capture fails even for very late data fall";
  let boundary = Vstat_opt.Scalar.bisect_predicate ~tol:1e-15 ~f:ok ~lo ~hi () in
  boundary -. t_clk
