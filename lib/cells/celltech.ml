type t = {
  label : string;
  vdd : float;
  l_nm : float;
  nmos : w_nm:float -> Vstat_device.Device_model.t;
  pmos : w_nm:float -> Vstat_device.Device_model.t;
}

let nominal_bsim ?(vdd = Vstat_device.Cards.vdd_nominal) () =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  {
    label = "bsim-nominal";
    vdd;
    l_nm;
    nmos =
      (fun ~w_nm ->
        Vstat_device.Cards.bsim_device ~polarity:Vstat_device.Device_model.Nmos
          ~w_nm ~l_nm);
    pmos =
      (fun ~w_nm ->
        Vstat_device.Cards.bsim_device ~polarity:Vstat_device.Device_model.Pmos
          ~w_nm ~l_nm);
  }

let nominal_vs_seed ?(vdd = Vstat_device.Cards.vdd_nominal) () =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  {
    label = "vs-seed-nominal";
    vdd;
    l_nm;
    nmos =
      (fun ~w_nm ->
        Vstat_device.Cards.vs_seed_device
          ~polarity:Vstat_device.Device_model.Nmos ~w_nm ~l_nm);
    pmos =
      (fun ~w_nm ->
        Vstat_device.Cards.vs_seed_device
          ~polarity:Vstat_device.Device_model.Pmos ~w_nm ~l_nm);
  }

let with_vdd t vdd = { t with vdd }

module FI = Vstat_device.Fault_inject

let with_fault_injection cfg ~key t =
  match FI.plan cfg ~key with
  | None -> t
  | Some plan ->
    (* One shared creation counter across both polarities: the plan's
       device ordinal (mod span) picks which transistor of the cell gets
       the fault, deterministically in netlist build order. *)
    let created = ref 0 in
    let maybe_wrap dev =
      let ord = !created mod FI.ordinal_span in
      incr created;
      if ord = plan.FI.device_ordinal then FI.wrap plan dev else dev
    in
    {
      t with
      nmos = (fun ~w_nm -> maybe_wrap (t.nmos ~w_nm));
      pmos = (fun ~w_nm -> maybe_wrap (t.pmos ~w_nm));
    }
