module N = Vstat_circuit.Netlist
module E = Vstat_circuit.Engine
module W = Vstat_circuit.Waveform
module M = Vstat_circuit.Measure

type sample = {
  vdd : float;
  driver : devices;
  dut : devices;
  loads : devices array;
}

and devices = {
  pmos_a : Vstat_device.Device_model.t;
  pmos_b : Vstat_device.Device_model.t;
  nmos_a : Vstat_device.Device_model.t;
  nmos_b : Vstat_device.Device_model.t;
}

type result = { tphl : float; tplh : float; tpd : float; leakage : float }

let sample_devices (tech : Celltech.t) ~wp_nm ~wn_nm =
  {
    pmos_a = tech.pmos ~w_nm:wp_nm;
    pmos_b = tech.pmos ~w_nm:wp_nm;
    nmos_a = tech.nmos ~w_nm:wn_nm;
    nmos_b = tech.nmos ~w_nm:wn_nm;
  }

let sample (tech : Celltech.t) ~wp_nm ~wn_nm ~fanout =
  if fanout < 1 then
    invalid_arg "Nor2.sample: fanout >= 1" [@vstat.allow "exn-discipline"];
  {
    vdd = tech.vdd;
    driver = sample_devices tech ~wp_nm ~wn_nm;
    dut = sample_devices tech ~wp_nm ~wn_nm;
    loads = Array.init fanout (fun _ -> sample_devices tech ~wp_nm ~wn_nm);
  }

let add_nor2 net ~name ~devices ~input_a ~input_b ~output ~vdd_node ~gnd =
  let mid = N.node net (name ^ ".mid") in
  (* Series PMOS stack: B at the supply side, A nearest the output. *)
  N.mosfet net (name ^ ".mpb") ~d:mid ~g:input_b ~s:vdd_node ~b:vdd_node
    ~dev:devices.pmos_b;
  N.mosfet net (name ^ ".mpa") ~d:output ~g:input_a ~s:mid ~b:vdd_node
    ~dev:devices.pmos_a;
  N.mosfet net (name ^ ".mna") ~d:output ~g:input_a ~s:gnd ~b:gnd
    ~dev:devices.nmos_a;
  N.mosfet net (name ^ ".mnb") ~d:output ~g:input_b ~s:gnd ~b:gnd
    ~dev:devices.nmos_b

let build s ~window =
  let net = N.create () in
  let gnd = N.ground net in
  let nvdd = N.node net "vdd" in
  let nin = N.node net "in" in
  let na = N.node net "a" in
  let ny = N.node net "y" in
  N.vsource net "vvdd" ~plus:nvdd ~minus:gnd ~wave:(W.Dc s.vdd);
  let edge = 0.02 *. window in
  let t_rise = 0.08 *. window in
  let t_fall = 0.54 *. window in
  N.vsource net "vin" ~plus:nin ~minus:gnd
    ~wave:
      (W.pwl
         [|
           (t_rise, 0.0); (t_rise +. edge, s.vdd);
           (t_fall, s.vdd); (t_fall +. edge, 0.0);
         |]);
  add_nor2 net ~name:"xdrv" ~devices:s.driver ~input_a:nin ~input_b:gnd
    ~output:na ~vdd_node:nvdd ~gnd;
  add_nor2 net ~name:"xdut" ~devices:s.dut ~input_a:na ~input_b:gnd ~output:ny
    ~vdd_node:nvdd ~gnd;
  Array.iteri
    (fun i devices ->
      let out = N.node net (Printf.sprintf "l%d" i) in
      add_nor2 net
        ~name:(Printf.sprintf "xload%d" i)
        ~devices ~input_a:ny ~input_b:gnd ~output:out ~vdd_node:nvdd ~gnd)
    s.loads;
  (net, na, ny)

let measure ?window ?(steps = 400) s =
  let window =
    match window with
    | Some w -> w
    | None -> Inverter.default_window ~vdd:s.vdd
  in
  let net, na, ny = build s ~window in
  let eng = E.compile net in
  let op = E.dc eng in
  let leakage = Float.abs (E.source_current eng op "vvdd") in
  let trace = E.transient eng ~tstop:window ~dt:(window /. Float.of_int steps) in
  let times = trace.E.times in
  let wa = E.node_wave eng trace na in
  let wy = E.node_wave eng trace ny in
  let v50 = s.vdd /. 2.0 in
  let tplh =
    M.propagation_delay ~times ~input:wa ~output:wy ~v50 ~input_rising:false
      ~output_rising:true
  in
  let tphl =
    M.propagation_delay ~times ~input:wa ~output:wy ~v50 ~input_rising:true
      ~output_rising:false
  in
  match (tplh, tphl) with
  | Some tplh, Some tphl ->
    { tphl; tplh; tpd = 0.5 *. (tphl +. tplh); leakage }
  | _ ->
    Vstat_circuit.Diag.fail ~analysis:"measure:nor2" Measure_no_crossing
      "output never crossed 50%% (window too short)"

let measure_nominal tech ~wp_nm ~wn_nm ~fanout =
  measure (sample tech ~wp_nm ~wn_nm ~fanout)
