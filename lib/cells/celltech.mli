(** Technology handle consumed by the benchmark cells.

    A [t] yields transistor instances on demand.  A *nominal* technology
    returns the same deterministic device every call; a *statistical*
    technology (built by [Vstat_core.Mc_circuit]) draws a fresh mismatch
    sample per call, so every transistor in a cell gets independent
    within-die variations — exactly the sampling model of the paper. *)

type t = {
  label : string;  (** e.g. "bsim-golden" or "vs-statistical" *)
  vdd : float;     (** supply voltage for cells built on this handle, V *)
  l_nm : float;    (** drawn channel length for all transistors, nm *)
  nmos : w_nm:float -> Vstat_device.Device_model.t;
  pmos : w_nm:float -> Vstat_device.Device_model.t;
}

val nominal_bsim : ?vdd:float -> unit -> t
(** Deterministic golden technology at the synthetic 40 nm node. *)

val nominal_vs_seed : ?vdd:float -> unit -> t
(** Deterministic VS technology using the hand-written seed cards (the
    extracted statistical technology lives in [Vstat_core]). *)

val with_vdd : t -> float -> t
(** Same device source at a different supply (the paper's Vdd scaling). *)

val with_fault_injection :
  Vstat_device.Fault_inject.config -> key:int -> t -> t
(** Chaos harness: decide deterministically from [(config.seed, key)]
    whether this technology handle carries a fault, and if so arm it on the
    transistor whose creation ordinal (netlist build order, both polarities
    counted together, modulo {!Vstat_device.Fault_inject.ordinal_span})
    matches the plan.  [key] should mix the Monte Carlo sample index and
    the retry attempt, so injection is per-sample reproducible,
    jobs-independent, and independent across attempts.  Returns the handle
    unchanged when the draw decides no fault. *)
