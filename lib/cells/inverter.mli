(** Fanout-of-N inverter delay/leakage harness (paper Figs. 5 and 6).

    Topology: an ideal pulse drives a same-sized *driver* inverter that
    shapes a realistic edge at node [a]; the DUT inverter drives node [y],
    which is loaded by [fanout] identical inverters (their gate capacitance
    is the load, as in a standard-cell FO-N characterization). *)

type sample = {
  vdd : float;
  driver : Gates.inverter_devices;
  dut : Gates.inverter_devices;
  loads : Gates.inverter_devices array;
}
(** All transistor instances of one Monte Carlo draw. *)

type result = {
  tphl : float;    (** output falling propagation delay, s *)
  tplh : float;    (** output rising propagation delay, s *)
  tpd : float;     (** (tphl + tplh) / 2 *)
  leakage : float; (** static supply current with the input low, A *)
}

val sample : Celltech.t -> wp_nm:float -> wn_nm:float -> fanout:int -> sample
(** Draw all devices for one harness instance. *)

val default_window : vdd:float -> float
(** Simulation window heuristic; grows as the supply drops (low-Vdd delays
    are an order of magnitude longer). *)

val measure : ?window:float -> ?steps:int -> sample -> result
(** Build the netlist, run one transient with a rise+fall input pulse, and
    one DC solve for leakage.
    @raise Vstat_circuit.Diag.Solver_error ([Measure_no_crossing]) if a 50 % crossing is never observed (window too short). *)

val measure_nominal :
  Celltech.t -> wp_nm:float -> wn_nm:float -> fanout:int -> result
(** Convenience: one deterministic measurement on a nominal technology. *)
