let require_samples xs n name =
  let got = Array.length xs in
  if got < n then
    invalid_arg
      (Printf.sprintf
         "Descriptive.%s: need at least %d sample%s, got %d — partial or \
          empty runs must be reported, not summarized"
         name n
         (if n = 1 then "" else "s")
         got)

let mean xs =
  require_samples xs 1 "mean";
  Array.fold_left ( +. ) 0.0 xs /. Float.of_int (Array.length xs)

let central_moment xs ~order ~mu =
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. ((x -. mu) ** Float.of_int order)) xs;
  !acc /. Float.of_int (Array.length xs)

let variance xs =
  require_samples xs 2 "variance";
  let mu = mean xs in
  let n = Float.of_int (Array.length xs) in
  central_moment xs ~order:2 ~mu *. n /. (n -. 1.0)

let std xs = sqrt (variance xs)

let sigma_over_mu xs = std xs /. Float.abs (mean xs)

let min_max xs =
  require_samples xs 1 "min_max";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let skewness xs =
  require_samples xs 3 "skewness";
  let mu = mean xs in
  let n = Float.of_int (Array.length xs) in
  let m2 = central_moment xs ~order:2 ~mu in
  let m3 = central_moment xs ~order:3 ~mu in
  let g1 = m3 /. (m2 ** 1.5) in
  g1 *. sqrt (n *. (n -. 1.0)) /. (n -. 2.0)

let excess_kurtosis xs =
  require_samples xs 4 "excess_kurtosis";
  let mu = mean xs in
  let m2 = central_moment xs ~order:2 ~mu in
  let m4 = central_moment xs ~order:4 ~mu in
  (m4 /. (m2 *. m2)) -. 3.0

let quantile_of_sorted sorted p =
  require_samples sorted 1 "quantile_of_sorted";
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p in [0,1]";
  let n = Array.length sorted in
  let h = p *. Float.of_int (n - 1) in
  let lo = Float.to_int (Float.floor h) in
  let hi = Int.min (lo + 1) (n - 1) in
  let frac = h -. Float.of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let quantile xs p =
  require_samples xs 1 "quantile";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  quantile_of_sorted sorted p

let quantiles xs ps =
  require_samples xs 1 "quantiles";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  List.map (quantile_of_sorted sorted) ps

let median xs = quantile xs 0.5

(* Normal-approximation two-sided confidence interval on the mean.  The
   half-width scales as 1/sqrt(n), so the interval a deadline-degraded
   partial run reports is honestly wider than the full run's would be. *)
let mean_ci ?(confidence = 0.95) xs =
  require_samples xs 2 "mean_ci";
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg
      (Printf.sprintf "Descriptive.mean_ci: confidence %g outside (0,1)"
         confidence);
  let mu = mean xs in
  let n = Float.of_int (Array.length xs) in
  let z = Vstat_util.Special.normal_quantile (0.5 +. (confidence /. 2.0)) in
  let half = z *. std xs /. sqrt n in
  (mu -. half, mu +. half)

(* --- weighted statistics (importance-sampling support) ----------------- *)

let check_weights xs ~w name =
  require_samples xs 1 name;
  if Array.length xs <> Array.length w then
    invalid_arg
      (Printf.sprintf "Descriptive.%s: %d samples but %d weights" name
         (Array.length xs) (Array.length w));
  let sum = ref 0.0 in
  Array.iter
    (fun wi ->
      if (not (Float.is_finite wi)) || wi < 0.0 then
        invalid_arg
          (Printf.sprintf
             "Descriptive.%s: weights must be finite and non-negative, got %g"
             name wi);
      sum := !sum +. wi)
    w;
  if not (!sum > 0.0) then
    invalid_arg
      (Printf.sprintf "Descriptive.%s: weight vector sums to zero" name);
  !sum

let weighted_mean xs ~w =
  let s1 = check_weights xs ~w "weighted_mean" in
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (w.(i) *. x)) xs;
  !acc /. s1

let weighted_variance xs ~w =
  let s1 = check_weights xs ~w "weighted_variance" in
  let s2 = Array.fold_left (fun acc wi -> acc +. (wi *. wi)) 0.0 w in
  let ess = s1 *. s1 /. s2 in
  if not (ess > 1.0) then
    invalid_arg
      (Printf.sprintf
         "Descriptive.weighted_variance: effective sample size %.3g <= 1 — \
          the weight mass sits on a single sample"
         ess);
  let mu = weighted_mean xs ~w in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. mu in
      acc := !acc +. (w.(i) *. d *. d))
    xs;
  !acc /. (s1 -. (s2 /. s1))

let weighted_std xs ~w = sqrt (weighted_variance xs ~w)

let weighted_quantile xs ~w p =
  let s1 = check_weights xs ~w "weighted_quantile" in
  if p < 0.0 || p > 1.0 then
    invalid_arg "Descriptive.weighted_quantile: p in [0,1]";
  (* Sort (value, weight) pairs by value, dropping zero-weight entries. *)
  let pairs =
    Array.of_seq
      (Seq.filter
         (fun (_, wi) -> wi > 0.0)
         (Seq.mapi (fun i x -> (x, w.(i))) (Array.to_seq xs)))
  in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) pairs;
  let m = Array.length pairs in
  if m = 1 then fst pairs.(0)
  else begin
    (* Plotting position of sorted sample i: (c_i - w_i/2) / S1 with c_i
       the cumulative weight through i. *)
    let positions = Array.make m 0.0 in
    let cum = ref 0.0 in
    Array.iteri
      (fun i (_, wi) ->
        positions.(i) <- (!cum +. (0.5 *. wi)) /. s1;
        cum := !cum +. wi)
      pairs;
    if p <= positions.(0) then fst pairs.(0)
    else if p >= positions.(m - 1) then fst pairs.(m - 1)
    else begin
      (* Binary search for the bracketing positions, then interpolate. *)
      let lo = ref 0 and hi = ref (m - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if positions.(mid) <= p then lo := mid else hi := mid
      done;
      let x0 = fst pairs.(!lo) and x1 = fst pairs.(!hi) in
      let p0 = positions.(!lo) and p1 = positions.(!hi) in
      let frac = if p1 > p0 then (p -. p0) /. (p1 -. p0) else 0.0 in
      x0 +. (frac *. (x1 -. x0))
    end
  end

let effective_sample_size w =
  let s1 = check_weights w ~w "effective_sample_size" in
  let s2 = Array.fold_left (fun acc wi -> acc +. (wi *. wi)) 0.0 w in
  s1 *. s1 /. s2

let covariance xs ys =
  require_samples xs 2 "covariance";
  if Array.length xs <> Array.length ys then
    invalid_arg "Descriptive.covariance: length mismatch";
  let mx = mean xs and my = mean ys in
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. ((x -. mx) *. (ys.(i) -. my))) xs;
  !acc /. Float.of_int (Array.length xs - 1)

let correlation xs ys =
  covariance xs ys /. (std xs *. std ys)

let summary_to_string ~name xs =
  let lo, hi = min_max xs in
  Printf.sprintf "%s: n=%d mean=%.6g std=%.6g min=%.6g max=%.6g" name
    (Array.length xs) (mean xs) (std xs) lo hi
