type t = { edges : float array; counts : int array; total : int }

(* Interquartile range with a single copy-and-sort (each Descriptive.quantile
   call would re-sort the sample). *)
let iqr xs =
  match Descriptive.quantiles xs [ 0.25; 0.75 ] with
  | [ q1; q3 ] -> q3 -. q1
  | _ -> assert false

let freedman_diaconis xs =
  let n = Array.length xs in
  let iqr = iqr xs in
  let lo, hi = Descriptive.min_max xs in
  if iqr <= 0.0 || hi <= lo then 16
  else begin
    let width = 2.0 *. iqr /. (Float.of_int n ** (1.0 /. 3.0)) in
    let bins = Float.to_int (Float.ceil ((hi -. lo) /. width)) in
    Int.max 8 (Int.min 128 bins)
  end

let build ?bins xs =
  if Array.length xs = 0 then
    invalid_arg
      "Histogram.build: empty sample (0 of the requested samples \
       completed — nothing to bin)";
  let bins = match bins with Some b -> Int.max 1 b | None -> freedman_diaconis xs in
  let lo, hi = Descriptive.min_max xs in
  let hi = if hi > lo then hi else lo +. 1.0 in
  let edges =
    Array.init (bins + 1) (fun i ->
        lo +. ((hi -. lo) *. Float.of_int i /. Float.of_int bins))
  in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let raw =
        Float.to_int (Float.of_int bins *. (x -. lo) /. (hi -. lo))
      in
      let b = Int.max 0 (Int.min (bins - 1) raw) in
      counts.(b) <- counts.(b) + 1)
    xs;
  { edges; counts; total = Array.length xs }

let density { edges; counts; total } =
  Array.mapi
    (fun i c ->
      let width = edges.(i + 1) -. edges.(i) in
      let center = 0.5 *. (edges.(i) +. edges.(i + 1)) in
      (center, Float.of_int c /. (Float.of_int total *. width)))
    counts

let silverman xs =
  let n = Float.of_int (Array.length xs) in
  let sigma = Descriptive.std xs in
  let iqr = iqr xs in
  let spread =
    if iqr > 0.0 then Float.min sigma (iqr /. 1.349) else sigma
  in
  let spread = if spread > 0.0 then spread else 1.0 in
  0.9 *. spread *. (n ** (-0.2))

let kde ?bandwidth ?(points = 101) xs =
  if Array.length xs < 2 then
    invalid_arg
      (Printf.sprintf
         "Histogram.kde: need at least 2 samples for a bandwidth, got %d"
         (Array.length xs));
  let h = match bandwidth with Some h -> h | None -> silverman xs in
  let lo, hi = Descriptive.min_max xs in
  let lo = lo -. (3.0 *. h) and hi = hi +. (3.0 *. h) in
  let grid = Vstat_util.Floatx.linspace lo hi points in
  let n = Float.of_int (Array.length xs) in
  Array.map
    (fun x ->
      let acc = ref 0.0 in
      Array.iter
        (fun xi -> acc := !acc +. Vstat_util.Special.normal_pdf ((x -. xi) /. h))
        xs;
      (x, !acc /. (n *. h)))
    grid

let wilson_interval ?(confidence = 0.95) ~k n =
  if n <= 0 then invalid_arg "Histogram.wilson_interval: n must be positive";
  if k < 0 || k > n then
    invalid_arg
      (Printf.sprintf "Histogram.wilson_interval: k=%d outside [0, %d]" k n);
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg
      (Printf.sprintf "Histogram.wilson_interval: confidence %g outside (0,1)"
         confidence);
  let z = Vstat_util.Special.normal_quantile (0.5 +. (confidence /. 2.0)) in
  let nf = Float.of_int n in
  let p = Float.of_int k /. nf in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. nf) in
  let center = (p +. (z2 /. (2.0 *. nf))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf)))
  in
  (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))

type tail_estimate = {
  t_prob : float;
  t_count : int;
  t_n : int;
  t_lo : float;
  t_hi : float;
}

let exceedance ?confidence ?(tail = `Upper) xs threshold =
  let n = Array.length xs in
  if n = 0 then
    invalid_arg "Histogram.exceedance: empty sample — nothing to count";
  let k = ref 0 in
  (match tail with
  | `Upper -> Array.iter (fun x -> if x > threshold then incr k) xs
  | `Lower -> Array.iter (fun x -> if x < threshold then incr k) xs);
  let k = !k in
  let lo, hi = wilson_interval ?confidence ~k n in
  { t_prob = Float.of_int k /. Float.of_int n; t_count = k; t_n = n;
    t_lo = lo; t_hi = hi }

let sparkline ?(width = 60) ys =
  if Array.length ys = 0 then ""
  else begin
    let glyphs = [| " "; "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
    let n = Array.length ys in
    let sampled =
      Array.init (Int.min width n) (fun i ->
          ys.(i * n / Int.min width n))
    in
    let lo, hi = Descriptive.min_max sampled in
    let span = if hi > lo then hi -. lo else 1.0 in
    let buf = Buffer.create width in
    Array.iter
      (fun y ->
        let level = Float.to_int (8.0 *. (y -. lo) /. span) in
        Buffer.add_string buf glyphs.(Int.max 0 (Int.min 8 level)))
      sampled;
    Buffer.contents buf
  end
