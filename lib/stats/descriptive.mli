(** Descriptive statistics over float-array samples.

    These are the quantities the paper reports for every Monte Carlo run:
    mean, standard deviation, sigma/mu ratios, quantiles, and the
    skewness/kurtosis used to detect the non-Gaussian low-Vdd regime. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Unbiased sample variance (n - 1 denominator).
    @raise Invalid_argument if fewer than 2 samples. *)

val std : float array -> float
(** Unbiased sample standard deviation. *)

val sigma_over_mu : float array -> float
(** std / |mean| — the paper's mismatch ratio. *)

val min_max : float array -> float * float

val skewness : float array -> float
(** Adjusted Fisher–Pearson sample skewness (g1 with bias correction). *)

val excess_kurtosis : float array -> float
(** Sample excess kurtosis (0 for a Gaussian). *)

val quantile : float array -> float -> float
(** [quantile xs p] for p in [0, 1]; linear interpolation between order
    statistics (type-7, the numpy default).  Input need not be sorted. *)

val quantiles : float array -> float list -> float list
(** [quantiles xs ps] evaluates several quantiles over a single copy-and-sort
    of [xs] — use this instead of repeated {!quantile} calls when more than
    one quantile of the same sample is needed (each [quantile] call re-sorts). *)

val quantile_of_sorted : float array -> float -> float
(** {!quantile} without the copy/sort: the input must already be sorted
    ascending (not checked). *)

val median : float array -> float

val mean_ci : ?confidence:float -> float array -> float * float
(** [(lo, hi)] two-sided normal-approximation confidence interval on the
    mean ([confidence] defaults to 0.95).  The half-width scales as
    [1/sqrt n]: partial (deadline-degraded) runs naturally report wider,
    honest intervals.  @raise Invalid_argument if fewer than 2 samples or
    [confidence] outside (0,1). *)

val covariance : float array -> float array -> float
(** Unbiased sample covariance of paired samples. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient. *)

val summary_to_string : name:string -> float array -> string
(** One-line "name: mean=… std=… min=… max=…" report used by examples. *)
