(** Descriptive statistics over float-array samples.

    These are the quantities the paper reports for every Monte Carlo run:
    mean, standard deviation, sigma/mu ratios, quantiles, and the
    skewness/kurtosis used to detect the non-Gaussian low-Vdd regime. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Unbiased sample variance (n - 1 denominator).
    @raise Invalid_argument if fewer than 2 samples. *)

val std : float array -> float
(** Unbiased sample standard deviation. *)

val sigma_over_mu : float array -> float
(** std / |mean| — the paper's mismatch ratio. *)

val min_max : float array -> float * float

val skewness : float array -> float
(** Adjusted Fisher–Pearson sample skewness (g1 with bias correction). *)

val excess_kurtosis : float array -> float
(** Sample excess kurtosis (0 for a Gaussian). *)

val quantile : float array -> float -> float
(** [quantile xs p] for p in [0, 1]; linear interpolation between order
    statistics (type-7, the numpy default).  Input need not be sorted. *)

val quantiles : float array -> float list -> float list
(** [quantiles xs ps] evaluates several quantiles over a single copy-and-sort
    of [xs] — use this instead of repeated {!quantile} calls when more than
    one quantile of the same sample is needed (each [quantile] call re-sorts). *)

val quantile_of_sorted : float array -> float -> float
(** {!quantile} without the copy/sort: the input must already be sorted
    ascending (not checked). *)

val median : float array -> float

val mean_ci : ?confidence:float -> float array -> float * float
(** [(lo, hi)] two-sided normal-approximation confidence interval on the
    mean ([confidence] defaults to 0.95).  The half-width scales as
    [1/sqrt n]: partial (deadline-degraded) runs naturally report wider,
    honest intervals.  @raise Invalid_argument if fewer than 2 samples or
    [confidence] outside (0,1). *)

val weighted_mean : float array -> w:float array -> float
(** [weighted_mean xs ~w] is sum(w x) / sum(w) for non-negative weights.
    Zero-weight samples are ignored entirely (an importance-sampling run
    may legitimately carry weight-0 entries).  @raise Invalid_argument on
    empty input, a length mismatch, a negative/non-finite weight, or an
    all-zero weight vector. *)

val weighted_variance : float array -> w:float array -> float
(** Reliability-weighted unbiased sample variance:
    sum(w (x - mu)^2) / (S1 - S2/S1) with S1 = sum(w), S2 = sum(w^2) —
    the estimator that reduces to the (n-1)-denominator variance for unit
    weights.  @raise Invalid_argument under the {!weighted_mean}
    conditions, or when the effective sample size S1^2/S2 is <= 1 (a
    single sample carrying all the weight has no spread information). *)

val weighted_std : float array -> w:float array -> float

val weighted_quantile : float array -> w:float array -> float -> float
(** [weighted_quantile xs ~w p] for p in [0, 1]: linear interpolation on
    the weighted plotting positions ((c_i - w_i/2) / S1, with c_i the
    cumulative weight through sample i of the value-sorted data) — the
    weighted generalization of the type-7 rule that {!quantile} reduces
    to under unit weights up to position convention.  Clamps to the
    extreme values outside the covered position range.
    @raise Invalid_argument under the {!weighted_mean} conditions or for
    p outside [0, 1]. *)

val effective_sample_size : float array -> float
(** Kish effective sample size of a weight vector: (sum w)^2 / sum(w^2).
    Equals n for uniform weights and degrades toward 1 as the weight mass
    concentrates — the standard health metric for an importance-sampling
    run.  Zero-weight entries count for nothing.  @raise Invalid_argument
    on empty input, negative/non-finite weights, or all-zero weights. *)

val covariance : float array -> float array -> float
(** Unbiased sample covariance of paired samples. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient. *)

val summary_to_string : name:string -> float array -> string
(** One-line "name: mean=… std=… min=… max=…" report used by examples. *)
