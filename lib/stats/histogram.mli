(** Histograms and kernel density estimates.

    The paper's delay/SNM "probability density" figures are reproduced as
    density series: bin centers (or evaluation points) paired with estimated
    density values. *)

type t = {
  edges : float array;    (** n+1 bin edges, ascending *)
  counts : int array;     (** n bin occupation counts *)
  total : int;            (** number of samples binned *)
}

val build : ?bins:int -> float array -> t
(** [build xs] bins the samples into [bins] equal-width bins spanning
    [min xs, max xs].  Default bin count follows the Freedman–Diaconis rule
    clamped to [8, 128].  @raise Invalid_argument on empty input. *)

val density : t -> (float * float) array
(** Bin centers paired with normalized density (integrates to 1). *)

val kde : ?bandwidth:float -> ?points:int -> float array -> (float * float) array
(** Gaussian kernel density estimate evaluated on an even grid spanning the
    sample range extended by 3 bandwidths.  Default bandwidth is Silverman's
    rule of thumb; default 101 evaluation points. *)

val sparkline : ?width:int -> float array -> string
(** Unicode mini-plot of a density/series, for terminal output. *)

val wilson_interval : ?confidence:float -> k:int -> int -> float * float
(** Wilson score interval for a binomial proportion [k]/[n] — the interval
    of choice for tail probabilities, where the normal (Wald) interval
    collapses to a point at k = 0 and routinely escapes [0, 1].
    [confidence] defaults to 0.95.  @raise Invalid_argument when [n <= 0],
    [k] outside [0, n], or [confidence] outside (0, 1). *)

type tail_estimate = {
  t_prob : float;          (** empirical exceedance k/n *)
  t_count : int;           (** samples beyond the threshold *)
  t_n : int;               (** total samples *)
  t_lo : float;            (** Wilson interval lower bound *)
  t_hi : float;            (** Wilson interval upper bound *)
}

val exceedance :
  ?confidence:float -> ?tail:[ `Upper | `Lower ] -> float array -> float ->
  tail_estimate
(** [exceedance xs t] estimates P(X > t) ([`Upper], the default) or
    P(X < t) ([`Lower]) with its Wilson interval — the plain-MC baseline
    every rare-event estimator is validated against.  Strict inequalities
    on both sides, so a sample exactly at the threshold is never counted
    as failing.  @raise Invalid_argument on empty input. *)
