type tail = Lower | Upper

type t = {
  label : string;
  dim : int;
  simulate : attempt:int -> float array -> float;
  tail : tail;
  threshold : float;
}

let create ~label ~dim ~simulate ~tail ~threshold =
  if dim < 1 then
    invalid_arg (Printf.sprintf "Problem.create: dimension %d must be >= 1" dim);
  if not (Float.is_finite threshold) then
    invalid_arg
      (Printf.sprintf "Problem.create: threshold %g must be finite" threshold);
  { label; dim; simulate; tail; threshold }

let fails t metric =
  match t.tail with
  | Lower -> metric < t.threshold
  | Upper -> metric > t.threshold

let qq_tail t = match t.tail with Lower -> `Lower | Upper -> `Upper

let fingerprint t =
  Printf.sprintf "problem:%s|dim:%d|tail:%s|threshold:%.17g" t.label t.dim
    (match t.tail with Lower -> "lower" | Upper -> "upper")
    t.threshold
