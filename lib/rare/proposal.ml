type t = { dim : int; means : float array array; scale : float }

let check_dim dim =
  if dim < 1 then
    invalid_arg (Printf.sprintf "Proposal: dimension %d must be >= 1" dim)

let check_scale scale =
  if (not (Float.is_finite scale)) || scale <= 0.0 then
    invalid_arg
      (Printf.sprintf "Proposal: scale %g must be finite and positive" scale)

let check_mean ~what mean =
  Array.iter
    (fun m ->
      if not (Float.is_finite m) then
        invalid_arg
          (Printf.sprintf "Proposal.%s: non-finite mean entry %g" what m))
    mean

let standard ~dim =
  check_dim dim;
  { dim; means = [| Array.make dim 0.0 |]; scale = 1.0 }

let sigma_scaled ~dim ~scale =
  check_dim dim;
  check_scale scale;
  { dim; means = [| Array.make dim 0.0 |]; scale }

let mean_shifted ?(scale = 1.0) ~mean () =
  check_dim (Array.length mean);
  check_scale scale;
  check_mean ~what:"mean_shifted" mean;
  { dim = Array.length mean; means = [| Array.copy mean |]; scale }

let mixture ?(scale = 1.0) ~means () =
  let k = Array.length means in
  if k = 0 then invalid_arg "Proposal.mixture: no components";
  let dim = Array.length means.(0) in
  check_dim dim;
  check_scale scale;
  Array.iter
    (fun m ->
      if Array.length m <> dim then
        invalid_arg "Proposal.mixture: ragged component means";
      check_mean ~what:"mixture" m)
    means;
  { dim; means = Array.map Array.copy means; scale }

let from_pilot ~zs ~metrics ~tail ~threshold ?(fraction = 0.05) ?(scale = 1.0)
    () =
  let n = Array.length zs in
  if n = 0 then invalid_arg "Proposal.from_pilot: empty pilot";
  if Array.length metrics <> n then
    invalid_arg
      (Printf.sprintf
         "Proposal.from_pilot: %d coordinate vectors but %d metrics" n
         (Array.length metrics));
  if not (fraction > 0.0 && fraction <= 1.0) then
    invalid_arg
      (Printf.sprintf "Proposal.from_pilot: fraction %g outside (0,1]"
         fraction);
  let dim = Array.length zs.(0) in
  check_dim dim;
  (* Rank pilot samples by how deep into the tail they sit; take everything
     beyond the threshold, padded to the worst [fraction] so a pilot with
     no failures still yields a direction. *)
  let order = Array.init n (fun i -> i) in
  let deeper a b =
    match tail with
    | `Upper -> Float.compare metrics.(b) metrics.(a)
    | `Lower -> Float.compare metrics.(a) metrics.(b)
  in
  Array.sort deeper order;
  let crossed =
    let k = ref 0 in
    Array.iter
      (fun m ->
        match tail with
        | `Upper -> if m > threshold then incr k
        | `Lower -> if m < threshold then incr k)
      metrics;
    !k
  in
  let floor_k = Int.max 1 (Float.to_int (Float.of_int n *. fraction)) in
  let k = Int.min n (Int.max crossed floor_k) in
  let mean = Array.make dim 0.0 in
  for r = 0 to k - 1 do
    let z = zs.(order.(r)) in
    if Array.length z <> dim then
      invalid_arg "Proposal.from_pilot: ragged coordinate vectors";
    for j = 0 to dim - 1 do
      mean.(j) <- mean.(j) +. z.(j)
    done
  done;
  for j = 0 to dim - 1 do
    mean.(j) <- mean.(j) /. Float.of_int k
  done;
  check_scale scale;
  { dim; means = [| mean |]; scale }

let components t = Array.length t.means

let is_standard t =
  Array.length t.means = 1
  && Float.equal t.scale 1.0
  && Array.for_all (fun m -> Float.equal m 0.0) t.means.(0)

(* Determinism contract: a single-component proposal consumes exactly
   [dim] Gaussian variates; a K-component mixture consumes one bounded
   int (the component pick) plus [dim] Gaussians.  Per proposal the
   count is fixed, so a sample stays a pure function of its substream. *)
let draw t rng =
  let mean =
    if Array.length t.means = 1 then t.means.(0)
    else t.means.(Vstat_util.Rng.int rng ~bound:(Array.length t.means))
  in
  Array.init t.dim (fun i ->
      Vstat_util.Rng.gaussian_scaled rng ~mean:mean.(i) ~sigma:t.scale)

(* log f(z)/g(z) for f = N(0, I) against one component
   g = N(mean, scale^2 I):
     sum_i [ -z_i^2/2 + ((z_i - m_i)/s)^2/2 + log s ].
   The standard proposal must return exactly 0.0 (its estimators are
   documented to *be* plain MC bit for bit), so it short-circuits before
   any arithmetic can introduce roundoff. *)
let log_weight_single ~scale ~mean z =
  let dim = Array.length z in
  let log_s = log scale in
  let inv_s2 = 1.0 /. (scale *. scale) in
  let acc = ref 0.0 in
  for i = 0 to dim - 1 do
    let zi = z.(i) in
    let d = zi -. mean.(i) in
    acc := !acc +. (0.5 *. ((d *. d *. inv_s2) -. (zi *. zi))) +. log_s
  done;
  !acc

(* For a K-component equal-weight mixture, log f/g =
   log K - logsumexp_k [ -(log f/g_k) ]; computed through the per-component
   single ratios so the K = 1 case degenerates to the exact same
   arithmetic as [log_weight_single]. *)
let log_weight t z =
  if Array.length z <> t.dim then
    invalid_arg
      (Printf.sprintf "Proposal.log_weight: got %d coordinates, expected %d"
         (Array.length z) t.dim);
  if is_standard t then 0.0
  else if Array.length t.means = 1 then
    log_weight_single ~scale:t.scale ~mean:t.means.(0) z
  else begin
    let k = Array.length t.means in
    (* a_k = log g_k(z) - log f(z) = -(log f/g_k) *)
    let a =
      Array.map
        (fun mean -> -.log_weight_single ~scale:t.scale ~mean z)
        t.means
    in
    let hi = Array.fold_left Float.max neg_infinity a in
    let sum =
      Array.fold_left (fun acc ak -> acc +. exp (ak -. hi)) 0.0 a
    in
    log (Float.of_int k) -. (hi +. log sum)
  end

let to_string t =
  let shift2 =
    Array.fold_left
      (fun acc mean ->
        Float.max acc
          (Array.fold_left (fun s m -> s +. (m *. m)) 0.0 mean))
      0.0 t.means
  in
  let digest =
    let k = Array.length t.means in
    let b = Bytes.create (k * t.dim * 8) in
    Array.iteri
      (fun ki mean ->
        Array.iteri
          (fun i m ->
            Bytes.set_int64_le b (((ki * t.dim) + i) * 8)
              (Int64.bits_of_float m))
          mean)
      t.means;
    Vstat_util.Crc32.digest (Bytes.unsafe_to_string b)
  in
  Printf.sprintf "is(dim=%d,scale=%g,k=%d,shift=%g,means=%08x)" t.dim t.scale
    (Array.length t.means) (sqrt shift2) digest
