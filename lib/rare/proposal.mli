(** Proposal distributions over the standardized variation space.

    Every statistical quantity in the repository is driven by independent
    standard-normal coordinates (the per-parameter mismatch shifts divided
    by their Pelgrom sigmas).  A proposal replaces the nominal N(0, I)
    sampling density with an equal-weight mixture of K Gaussian
    components N(mean_k, scale^2 I) — sigma-scaled to fatten every tail
    at once when the failure direction is unknown, mean-shifted toward a
    known failure region, or a multi-cone mixture when the failure set
    has several modes (an SRAM cell fails through either butterfly lobe)
    — and supplies the exact log likelihood ratio log(f(z)/g(z)) that
    reweights each sample back to the nominal distribution.  Including
    the zero mean as one mixture component makes the proposal
    {e defensive}: every weight is then bounded by K, so no single
    sample can dominate the estimate.

    Determinism contract: {!draw} consumes exactly [dim] Gaussian
    variates from the given RNG for a single-component proposal, and one
    bounded int (the component pick) plus [dim] Gaussians for a mixture —
    a fixed count per proposal, so a sample's coordinates stay a pure
    function of its substream regardless of worker count. *)

type t = private {
  dim : int;  (** standard-normal coordinates per sample *)
  means : float array array;
      (** per-component coordinate means, each of length [dim] *)
  scale : float;  (** common sigma multiplier, > 0 *)
}

val standard : dim:int -> t
(** The nominal N(0, I) density itself: every weight is exactly 1
    ({!log_weight} returns exactly 0.0), so an estimator driven by
    [standard] {e is} plain Monte Carlo, bit for bit. *)

val sigma_scaled : dim:int -> scale:float -> t
(** N(0, scale^2 I): widen every coordinate.  @raise Invalid_argument
    when [scale] is not finite and positive or [dim < 1]. *)

val mean_shifted : ?scale:float -> mean:float array -> unit -> t
(** N(mean, scale^2 I) ([scale] defaults to 1.0).
    @raise Invalid_argument on empty/non-finite [mean] or bad [scale]. *)

val mixture : ?scale:float -> means:float array array -> unit -> t
(** Equal-weight mixture of N(mean_k, scale^2 I) components.  Pass the
    zero vector as one component for a defensive mixture (weights
    bounded by the component count).  @raise Invalid_argument on an
    empty component list, ragged or non-finite means, or bad [scale]. *)

val from_pilot :
  zs:float array array -> metrics:float array ->
  tail:[ `Upper | `Lower ] -> threshold:float ->
  ?fraction:float -> ?scale:float -> unit -> t
(** Build a mean-shifted proposal from a pilot run: average the
    coordinates of the pilot samples in (or nearest) the failure region —
    the samples beyond [threshold], padded to the worst [fraction]
    (default 0.05) of the pilot when fewer crossed — giving the
    center-of-gravity shift of Kanj-style mean-shift importance sampling.
    [scale] (default 1.0) additionally widens the proposal.
    @raise Invalid_argument on empty/mismatched pilot data. *)

val components : t -> int
(** Number of mixture components (1 for the plain constructors). *)

val is_standard : t -> bool
(** True when the proposal is exactly the nominal density (weight ≡ 1). *)

val draw : t -> Vstat_util.Rng.t -> float array
(** Fresh coordinate vector of length [dim]; consumes exactly [dim]
    Gaussian variates (plus one bounded int for a mixture). *)

val log_weight : t -> float array -> float
(** Exact log likelihood ratio log(f(z)/g(z)) of the nominal density f
    over this proposal g at the drawn coordinates [z].  Exactly 0.0 for a
    {!standard} proposal.  @raise Invalid_argument on a length
    mismatch. *)

val to_string : t -> string
(** Compact description for run labels and checkpoint fingerprints, e.g.
    ["is(dim=30,scale=1,k=3,shift=3.2,means=1a2b3c4d)"].  Mean vectors
    are digested, not printed elementwise. *)
