(** Cheap linear tail classifier for statistical blockade.

    Statistical blockade (Singhee & Rutenbar) needs only a {e ranking}
    surrogate: a model accurate enough near the tail to decide which
    candidate samples are worth a full circuit simulation.  An ordinary
    least-squares fit of the metric on the standardized variation
    coordinates is exactly that — fit once on a pilot run, evaluated in a
    handful of flops per candidate, deterministic, and serializable into
    the checkpoint fingerprint so a resumed blockade run is guaranteed to
    filter with the same model it started with. *)

type t = {
  intercept : float;
  coef : float array;   (** one slope per coordinate *)
}

val fit : zs:float array array -> metrics:float array -> t
(** Least-squares fit of [metrics] on [[1; z]] (QR, full rank).
    @raise Invalid_argument when inputs are empty, mismatched or ragged,
    or when there are fewer samples than coefficients.
    @raise Vstat_linalg.Linalg_error.Numeric_error on rank deficiency. *)

val predict : t -> float array -> float
(** @raise Invalid_argument on a coordinate-count mismatch. *)

val residual_std : t -> zs:float array array -> metrics:float array -> float
(** Unbiased residual standard deviation of the fit on the given data
    (denominator n - dim - 1) — the safety margin unit for blockade
    cutoffs.  @raise Invalid_argument as {!fit}, or when n <= dim + 1. *)

val fingerprint : t -> string
(** Bit-exact digest of the coefficients (CRC-32 over their IEEE-754
    images), for checkpoint run identities. *)
