module C = Vstat_runtime.Checkpoint
module R = Vstat_runtime.Runtime

let log_src =
  Logs.Src.create "vstat.rare.blockade" ~doc:"Statistical blockade estimator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  label : string;
  n_requested : int;
  n : int;
  n_pilot : int;
  n_simulated : int;
  n_hits : int;
  p_hat : float;
  confidence : float;
  ci_lo : float;
  ci_hi : float;
  cutoff : float;
  margin : float;
  classifier : Classifier.t;
  residual_std : float;
  pilot_metrics : float array;
  stats : R.stats;
  complete : bool;
}

let handle_cause ~label ~n (o : _ C.outcome) =
  match o.C.cause with
  | C.Signalled signal ->
    raise
      (C.Interrupted
         { label; signal; completed = o.C.completed; n; snapshot = o.C.snapshot })
  | C.Deadline_reached when o.C.completed < 2 ->
    failwith
      (Printf.sprintf
         "Blockade:%s: deadline expired after %d/%d samples — nothing to \
          report"
         label o.C.completed n)
  | C.Deadline_reached ->
    Log.warn (fun m ->
        m "%s: partial result (%d/%d samples) — deadline reached" label
          o.C.completed n)
  | C.Finished -> ()

let estimate ?jobs ?(retry = R.no_retry) ?(max_failure_frac = 0.2) ?checkpoint
    ?deadline ?signals ?(confidence = 0.95) ?(margin = 0.90) ?pilot_n
    ~(problem : Problem.t) ~rng ~n () =
  if n < 2 then
    invalid_arg
      (Printf.sprintf "Blockade.estimate: need at least 2 samples, got %d" n);
  if not (margin > 0.0 && margin < 1.0) then
    invalid_arg
      (Printf.sprintf "Blockade.estimate: margin %g outside (0,1)" margin);
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg
      (Printf.sprintf "Blockade.estimate: confidence %g outside (0,1)"
         confidence);
  let dim = problem.Problem.dim in
  let pilot_n =
    match pilot_n with Some p -> p | None -> Int.max 100 (n / 20)
  in
  (* The OLS fit needs dim+1 coefficients plus residual headroom. *)
  if pilot_n < dim + 2 then
    invalid_arg
      (Printf.sprintf
         "Blockade.estimate: pilot of %d cannot train a %d-coefficient \
          classifier (need at least %d)"
         pilot_n (dim + 1) (dim + 2));
  let proposal = Proposal.standard ~dim in
  let base_fingerprint = Problem.fingerprint problem in
  (* Two deterministic substream families derived from the caller's RNG:
     one draw each, in a fixed order, exactly as two consecutive
     Checkpoint.run calls consume them. *)
  let pilot_label = problem.Problem.label ^ "-blockade-pilot" in
  let main_label = problem.Problem.label ^ "-blockade-main" in

  (* --- phase 1: pilot --------------------------------------------------- *)
  let pilot_o =
    C.run ?jobs ~retry ?deadline ?settings:checkpoint ?signals
      ~fingerprint:(base_fingerprint ^ "|phase:pilot")
      ~codec:C.float_array_codec ~label:pilot_label ~rng ~n:pilot_n
      ~f:(fun ~attempt ~index:_ sample_rng ->
        let z = Proposal.draw proposal sample_rng in
        let metric = problem.Problem.simulate ~attempt z in
        Array.append [| metric |] z)
      ()
  in
  handle_cause ~label:pilot_label ~n:pilot_n pilot_o;
  let pilot_r = C.completed_run pilot_o in
  R.check_budget ~label:("Blockade:" ^ pilot_label) ~max_failure_frac pilot_r;
  let pilot_rows = R.values pilot_r in
  if Array.length pilot_rows < dim + 2 then
    failwith
      (Printf.sprintf
         "Blockade:%s: only %d surviving pilot samples — cannot train the \
          classifier"
         pilot_label (Array.length pilot_rows));
  let pilot_metrics = Array.map (fun row -> row.(0)) pilot_rows in
  let pilot_zs = Array.map (fun row -> Array.sub row 1 dim) pilot_rows in
  let classifier = Classifier.fit ~zs:pilot_zs ~metrics:pilot_metrics in
  let residual_std =
    Classifier.residual_std classifier ~zs:pilot_zs ~metrics:pilot_metrics
  in
  (* Blockade cutoff: the pilot quantile at the margin, buffered by one
     residual sigma on the safe side.  Everything the classifier predicts
     past the cutoff gets a real simulation. *)
  let cutoff =
    match problem.Problem.tail with
    | Problem.Lower ->
      Vstat_stats.Descriptive.quantile pilot_metrics (1.0 -. margin)
      +. residual_std
    | Problem.Upper ->
      Vstat_stats.Descriptive.quantile pilot_metrics margin -. residual_std
  in
  let is_candidate predicted =
    match problem.Problem.tail with
    | Problem.Lower -> predicted < cutoff
    | Problem.Upper -> predicted > cutoff
  in

  (* --- phase 2: blockade-filtered main run ------------------------------ *)
  let main_fingerprint =
    String.concat "|"
      [
        base_fingerprint;
        "phase:main";
        "classifier:" ^ Classifier.fingerprint classifier;
        Printf.sprintf "cutoff:%.17g" cutoff;
        Printf.sprintf "margin:%.17g" margin;
      ]
  in
  let main_o =
    C.run ?jobs ~retry ?deadline ?settings:checkpoint ?signals
      ~fingerprint:main_fingerprint ~codec:C.float_triple_codec
      ~label:main_label ~rng ~n
      ~f:(fun ~attempt ~index:_ sample_rng ->
        let z = Proposal.draw proposal sample_rng in
        let predicted = Classifier.predict classifier z in
        if is_candidate predicted then
          let metric = problem.Problem.simulate ~attempt z in
          (predicted, 1.0, metric)
        else (predicted, 0.0, Float.nan))
      ()
  in
  handle_cause ~label:main_label ~n main_o;
  let main_r = C.completed_run main_o in
  R.check_budget ~label:("Blockade:" ^ main_label) ~max_failure_frac main_r;
  let rows = R.values main_r in
  let n_ok = Array.length rows in
  if n_ok < 2 then
    failwith
      (Printf.sprintf "Blockade:%s: only %d surviving samples" main_label n_ok);
  let n_simulated = ref 0 and n_hits = ref 0 in
  Array.iter
    (fun (_, simulated, metric) ->
      if simulated > 0.5 then begin
        incr n_simulated;
        if Problem.fails problem metric then incr n_hits
      end)
    rows;
  let k = !n_hits in
  let ci_lo, ci_hi =
    Vstat_stats.Histogram.wilson_interval ~confidence ~k n_ok
  in
  let result =
    {
      label = main_label;
      n_requested = n;
      n = n_ok;
      n_pilot = Array.length pilot_rows;
      n_simulated = !n_simulated;
      n_hits = k;
      p_hat = Float.of_int k /. Float.of_int n_ok;
      confidence;
      ci_lo;
      ci_hi;
      cutoff;
      margin;
      classifier;
      residual_std;
      pilot_metrics;
      stats = main_r.R.stats;
      complete =
        (match (pilot_o.C.cause, main_o.C.cause) with
        | C.Finished, C.Finished -> true
        | _ -> false);
    }
  in
  Log.info (fun m ->
      m "%s: p=%.3e [%.3e, %.3e] hits=%d sims=%d+%d/%d cutoff=%.4g" main_label
        result.p_hat ci_lo ci_hi k result.n_pilot result.n_simulated n_ok
        cutoff);
  result

let simulation_fraction r =
  Float.of_int (r.n_pilot + r.n_simulated) /. Float.of_int (r.n_pilot + r.n)

let pp ppf r =
  Format.fprintf ppf
    "%s: n=%d (%d requested%s) pilot=%d candidates=%d hits=%d@\n\
    \  p_hat = %.4e  [%.4e, %.4e] (%.0f%% Wilson)@\n\
    \  cutoff = %.4g (margin %.2f, residual sigma %.3g)  full sims = %.1f%% \
     of plain MC@\n"
    r.label r.n r.n_requested
    (if r.complete then "" else ", partial")
    r.n_pilot r.n_simulated r.n_hits r.p_hat r.ci_lo r.ci_hi
    (100.0 *. r.confidence)
    r.cutoff r.margin r.residual_std
    (100.0 *. simulation_fraction r)
