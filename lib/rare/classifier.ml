type t = { intercept : float; coef : float array }

let check ~zs ~metrics name =
  let n = Array.length zs in
  if n = 0 then invalid_arg (Printf.sprintf "Classifier.%s: empty pilot" name);
  if Array.length metrics <> n then
    invalid_arg
      (Printf.sprintf "Classifier.%s: %d coordinate vectors but %d metrics"
         name n (Array.length metrics));
  let dim = Array.length zs.(0) in
  if dim < 1 then
    invalid_arg (Printf.sprintf "Classifier.%s: empty coordinate vectors" name);
  Array.iter
    (fun z ->
      if Array.length z <> dim then
        invalid_arg
          (Printf.sprintf "Classifier.%s: ragged coordinate vectors" name))
    zs;
  (n, dim)

let fit ~zs ~metrics =
  let n, dim = check ~zs ~metrics "fit" in
  if n < dim + 1 then
    invalid_arg
      (Printf.sprintf
         "Classifier.fit: %d pilot samples cannot determine %d coefficients"
         n (dim + 1));
  let a =
    Vstat_linalg.Matrix.init ~rows:n ~cols:(dim + 1) ~f:(fun i j ->
        if j = 0 then 1.0 else zs.(i).(j - 1))
  in
  let x = Vstat_linalg.Qr.least_squares a metrics in
  { intercept = x.(0); coef = Array.sub x 1 dim }

let predict t z =
  if Array.length z <> Array.length t.coef then
    invalid_arg
      (Printf.sprintf "Classifier.predict: got %d coordinates, expected %d"
         (Array.length z) (Array.length t.coef));
  let acc = ref t.intercept in
  for i = 0 to Array.length t.coef - 1 do
    acc := !acc +. (t.coef.(i) *. z.(i))
  done;
  !acc

let residual_std t ~zs ~metrics =
  let n, dim = check ~zs ~metrics "residual_std" in
  if n <= dim + 1 then
    invalid_arg
      (Printf.sprintf
         "Classifier.residual_std: %d samples leave no residual degrees of \
          freedom for %d coefficients"
         n (dim + 1));
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let r = metrics.(i) -. predict t zs.(i) in
    acc := !acc +. (r *. r)
  done;
  sqrt (!acc /. Float.of_int (n - dim - 1))

let fingerprint t =
  let coeffs = Array.append [| t.intercept |] t.coef in
  let b = Bytes.create (8 * Array.length coeffs) in
  Array.iteri
    (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float v))
    coeffs;
  Printf.sprintf "linear-ols:%d:%08x" (Array.length t.coef)
    (Vstat_util.Crc32.digest (Bytes.unsafe_to_string b))
