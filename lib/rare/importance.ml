module C = Vstat_runtime.Checkpoint
module R = Vstat_runtime.Runtime

let log_src =
  Logs.Src.create "vstat.rare" ~doc:"Rare-event estimation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  label : string;
  proposal : Proposal.t;
  n_requested : int;
  n : int;
  n_hits : int;
  p_hat : float;
  confidence : float;
  ci_lo : float;
  ci_hi : float;
  sn_p_hat : float;
  ess : float;
  sum_weight : float;
  max_weight : float;
  metrics : float array;
  log_weights : float array;
  stats : R.stats;
  complete : bool;
}

(* Fold the index-ordered per-sample results into the estimator sums.
   Serial by construction — bit-identity across jobs counts depends on
   this single fold order, not on any merged accumulator.  One pass per
   Monte Carlo sample over plain float arrays: hot. *)
let[@vstat.hot] fold_weighted ~(metrics : float array)
    ~(log_weights : float array) ~(hits : Bytes.t) (wacc : Wacc.t) =
  let n = Array.length metrics in
  (* Plain Welford over y_i = w_i * 1{fail}: mean is the unbiased
     estimate, m2/(n-1) its variance. *)
  let y_mean = ref 0.0 in
  let y_m2 = ref 0.0 in
  let n_hits = ref 0 in
  let i = ref 0 in
  while !i < n do
    let w = exp log_weights.(!i) in
    let hit = Bytes.unsafe_get hits !i <> '\000' in
    if hit then incr n_hits;
    let y = if hit then w else 0.0 in
    let k = Float.of_int (!i + 1) in
    let d = y -. !y_mean in
    y_mean := !y_mean +. (d /. k);
    y_m2 := !y_m2 +. (d *. (y -. !y_mean));
    Wacc.add wacc ~w (if hit then 1.0 else 0.0);
    incr i
  done;
  (!y_mean, !y_m2, !n_hits)

let estimate ?jobs ?(retry = R.no_retry) ?(max_failure_frac = 0.2) ?checkpoint
    ?deadline ?signals ?(confidence = 0.95) ~(proposal : Proposal.t)
    ~(problem : Problem.t) ~rng ~n () =
  if n < 2 then
    invalid_arg
      (Printf.sprintf "Importance.estimate: need at least 2 samples, got %d" n);
  if proposal.Proposal.dim <> problem.Problem.dim then
    invalid_arg
      (Printf.sprintf
         "Importance.estimate: proposal dimension %d but problem dimension %d"
         proposal.Proposal.dim problem.Problem.dim);
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg
      (Printf.sprintf "Importance.estimate: confidence %g outside (0,1)"
         confidence);
  let label = problem.Problem.label ^ "-is" in
  let fingerprint =
    String.concat "|"
      [ Problem.fingerprint problem; "proposal:" ^ Proposal.to_string proposal ]
  in
  let o =
    C.run ?jobs ~retry ?deadline ?settings:checkpoint
      ?signals ~fingerprint ~codec:C.float_pair_codec ~label ~rng ~n
      ~f:(fun ~attempt ~index:_ sample_rng ->
        let z = Proposal.draw proposal sample_rng in
        let metric = problem.Problem.simulate ~attempt z in
        (metric, Proposal.log_weight proposal z))
      ()
  in
  (match o.C.cause with
  | C.Signalled signal ->
    raise
      (C.Interrupted
         { label; signal; completed = o.C.completed; n; snapshot = o.C.snapshot })
  | C.Deadline_reached when o.C.completed < 2 ->
    failwith
      (Printf.sprintf
         "Importance:%s: deadline expired after %d/%d samples — nothing to \
          report"
         label o.C.completed n)
  | C.Deadline_reached ->
    Log.warn (fun m ->
        m "%s: partial result (%d/%d samples) — deadline reached" label
          o.C.completed n)
  | C.Finished -> ());
  let r = C.completed_run o in
  R.check_budget ~label:("Importance:" ^ label) ~max_failure_frac r;
  let pairs = R.values r in
  let n_ok = Array.length pairs in
  if n_ok < 2 then
    failwith
      (Printf.sprintf "Importance:%s: only %d surviving samples" label n_ok);
  let metrics = Array.map fst pairs in
  let log_weights = Array.map snd pairs in
  let hits = Bytes.make n_ok '\000' in
  Array.iteri
    (fun i m -> if Problem.fails problem m then Bytes.set hits i '\001')
    metrics;
  let wacc = Wacc.create () in
  let y_mean, y_m2, n_hits = fold_weighted ~metrics ~log_weights ~hits wacc in
  let nf = Float.of_int n_ok in
  let p_hat = y_mean in
  let y_var = if n_ok > 1 then y_m2 /. (nf -. 1.0) else 0.0 in
  let z = Vstat_util.Special.normal_quantile (0.5 +. (confidence /. 2.0)) in
  let half = z *. sqrt (y_var /. nf) in
  let result =
    {
      label;
      proposal;
      n_requested = n;
      n = n_ok;
      n_hits;
      p_hat;
      confidence;
      ci_lo = Float.max 0.0 (p_hat -. half);
      ci_hi = Float.min 1.0 (p_hat +. half);
      sn_p_hat = (let m = Wacc.mean wacc in if Float.is_nan m then 0.0 else m);
      ess = Wacc.ess wacc;
      sum_weight = Wacc.sum_weights wacc;
      max_weight = Wacc.max_weight wacc;
      metrics;
      log_weights;
      stats = r.R.stats;
      complete = (match o.C.cause with C.Finished -> true | _ -> false);
    }
  in
  Log.info (fun m ->
      m "%s: p=%.3e [%.3e, %.3e] hits=%d/%d ess=%.1f" label result.p_hat
        result.ci_lo result.ci_hi n_hits n_ok result.ess);
  result

let mc_equivalent_samples r =
  let half = 0.5 *. (r.ci_hi -. r.ci_lo) in
  if half > 0.0 && r.p_hat > 0.0 then begin
    let z = Vstat_util.Special.normal_quantile (0.5 +. (r.confidence /. 2.0)) in
    r.p_hat *. (1.0 -. r.p_hat) *. (z /. half) *. (z /. half)
  end
  else Float.nan

let pp ppf r =
  Format.fprintf ppf
    "%s: n=%d (%d requested%s) hits=%d@\n\
    \  p_hat = %.4e  [%.4e, %.4e] (%.0f%% LR-aware)@\n\
    \  self-normalized = %.4e  ESS = %.1f  sum(w) = %.4g  max(w) = %.4g@\n"
    r.label r.n r.n_requested
    (if r.complete then "" else ", partial")
    r.n_hits r.p_hat r.ci_lo r.ci_hi
    (100.0 *. r.confidence)
    r.sn_p_hat r.ess r.sum_weight r.max_weight
