(** Weighted streaming accumulator for importance-sampled estimators.

    The weighted analogue of {!Vstat_runtime.Accum}: a single pass over
    (value, weight) pairs maintains the weight sums S1 = sum(w) and
    S2 = sum(w^2), the self-normalized weighted mean, the weighted M2
    (West's incremental update — the weighted Welford recurrence), and
    value/weight extrema.  From one accumulator the importance-sampling
    layer reads the self-normalized estimate, the reliability-weighted
    variance, and the Kish effective sample size S1^2/S2.

    Like [Accum], merging is associative up to floating-point roundoff —
    but the rare-event estimators never rely on merge order for their
    published numbers: they fold the index-stable per-sample arrays
    serially, so results stay bit-identical across [--jobs] counts.  The
    merge exists for streaming/monitoring consumers. *)

type t

val create : unit -> t

val add : t -> w:float -> float -> unit
(** Fold one weighted sample.  Zero-weight samples still count toward
    {!count} (the trial happened; its weight kills its contribution).
    [w] must be non-negative and finite (not checked here — the hot loop
    trusts the proposal layer, which validates its parameters). *)

val merge : t -> t -> t
(** Fresh accumulator equivalent to folding both operands' streams. *)

val count : t -> int
(** Samples folded in, including zero-weight ones. *)

val sum_weights : t -> float
val sum_sq_weights : t -> float

val mean : t -> float
(** Self-normalized weighted mean sum(w x)/sum(w); [nan] when no weight
    has arrived. *)

val variance : t -> float
(** Reliability-weighted unbiased variance
    sum(w (x - mean)^2) / (S1 - S2/S1); [nan] when the effective sample
    size is <= 1. *)

val std : t -> float
val min_value : t -> float
val max_value : t -> float
val max_weight : t -> float

val ess : t -> float
(** Kish effective sample size S1^2/S2; 0 when empty or weightless. *)

val dump : t -> float array
(** Full internal state as a flat vector (count, S1, S2, mean, M2 and
    extrema) — what a checkpoint payload would persist.  [restore (dump
    t)] is state-identical to [t]. *)

val restore : float array -> t
(** @raise Invalid_argument on a vector that {!dump} cannot have
    produced. *)
