(** A rare-event estimation problem: a deterministic map from standardized
    variation coordinates to a scalar metric, plus the tail event whose
    probability is wanted.

    [simulate] must be a pure function of the coordinate vector — all the
    randomness lives in how [z] is drawn (see {!Proposal}) — and may raise
    typed solver diagnostics; the runtime's failure machinery (budgets,
    retry ladder, censuses) applies unchanged. *)

type tail = Lower | Upper

type t = {
  label : string;  (** run-label/checkpoint stem *)
  dim : int;       (** coordinates consumed per sample *)
  simulate : attempt:int -> float array -> float;
      (** [simulate ~attempt z] maps a coordinate vector (length [dim])
          to the metric.  [attempt] is the runtime's 0-based retry
          counter: circuit-backed problems thread it into
          [Engine.escalate] exactly like {!Vstat_experiments.Mc_compare}
          so the deterministic retry ladder applies unchanged; analytic
          problems ignore it. *)
  tail : tail;
  threshold : float;  (** failure boundary on the metric *)
}

val create :
  label:string -> dim:int ->
  simulate:(attempt:int -> float array -> float) ->
  tail:tail -> threshold:float -> t
(** @raise Invalid_argument when [dim < 1] or [threshold] is not
    finite. *)

val fails : t -> float -> bool
(** Strict inequality on the tail side: [metric < threshold] for
    [Lower], [metric > threshold] for [Upper]. *)

val qq_tail : t -> [ `Upper | `Lower ]
(** The tail as the polymorphic variant {!Vstat_stats.Histogram} uses. *)

val fingerprint : t -> string
(** Identity string mixed into checkpoint fingerprints: label, dimension,
    tail side and threshold.  The simulate closure itself cannot be
    digested — callers running different circuits under one label get the
    usual {!Vstat_runtime.Journal.Mismatch} protection only from what is
    recorded here. *)
