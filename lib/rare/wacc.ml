type t = {
  mutable n : int;          (* samples folded in, zero-weight included *)
  mutable s1 : float;       (* sum of weights *)
  mutable s2 : float;       (* sum of squared weights *)
  mutable wmean : float;    (* self-normalized weighted mean *)
  mutable wm2 : float;      (* weighted sum of squared deviations *)
  mutable lo : float;       (* smallest value seen *)
  mutable hi : float;       (* largest value seen *)
  mutable wmax : float;     (* largest single weight seen *)
}

let create () =
  {
    n = 0;
    s1 = 0.0;
    s2 = 0.0;
    wmean = 0.0;
    wm2 = 0.0;
    lo = infinity;
    hi = neg_infinity;
    wmax = 0.0;
  }

(* West (1979) incremental weighted mean/M2: the weighted Welford update.
   This is the importance-sampling inner loop — one call per Monte Carlo
   sample — so it must not allocate. *)
let[@vstat.hot] add t ~w x =
  t.n <- t.n + 1;
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  if w > 0.0 then begin
    if w > t.wmax then t.wmax <- w;
    let s1' = t.s1 +. w in
    let delta = x -. t.wmean in
    let r = delta *. w /. s1' in
    t.wmean <- t.wmean +. r;
    t.wm2 <- t.wm2 +. (t.s1 *. delta *. r);
    t.s1 <- s1';
    t.s2 <- t.s2 +. (w *. w)
  end

let merge a b =
  if a.s1 <= 0.0 then
    { b with n = a.n + b.n;
      lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
  else if b.s1 <= 0.0 then
    { a with n = a.n + b.n;
      lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
  else begin
    let s1 = a.s1 +. b.s1 in
    let delta = b.wmean -. a.wmean in
    {
      n = a.n + b.n;
      s1;
      s2 = a.s2 +. b.s2;
      wmean = a.wmean +. (delta *. b.s1 /. s1);
      wm2 = a.wm2 +. b.wm2 +. (delta *. delta *. a.s1 *. b.s1 /. s1);
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
      wmax = Float.max a.wmax b.wmax;
    }
  end

let count t = t.n
let sum_weights t = t.s1
let sum_sq_weights t = t.s2
let mean t = if t.s1 > 0.0 then t.wmean else Float.nan

let ess t = if t.s2 > 0.0 then t.s1 *. t.s1 /. t.s2 else 0.0

let variance t =
  let e = ess t in
  if e > 1.0 then t.wm2 /. (t.s1 -. (t.s2 /. t.s1)) else Float.nan

let std t = sqrt (variance t)
let min_value t = t.lo
let max_value t = t.hi
let max_weight t = t.wmax

let dump t =
  [| Float.of_int t.n; t.s1; t.s2; t.wmean; t.wm2; t.lo; t.hi; t.wmax |]

let restore v =
  if Array.length v <> 8 then
    invalid_arg
      (Printf.sprintf "Wacc.restore: expected 8 state fields, got %d"
         (Array.length v));
  let n = Float.to_int v.(0) in
  if (not (Float.equal (Float.of_int n) v.(0))) || n < 0 then
    invalid_arg
      (Printf.sprintf "Wacc.restore: count %g is not a sample count" v.(0));
  if (not (Float.is_finite v.(1))) || v.(1) < 0.0 then
    invalid_arg
      (Printf.sprintf "Wacc.restore: weight sum %g must be finite and >= 0"
         v.(1));
  {
    n;
    s1 = v.(1);
    s2 = v.(2);
    wmean = v.(3);
    wm2 = v.(4);
    lo = v.(5);
    hi = v.(6);
    wmax = v.(7);
  }
