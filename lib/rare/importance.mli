(** Importance-sampling rare-event estimator with likelihood-ratio
    reweighting.

    Sample [i] draws its coordinate vector from the proposal on its own
    counter-indexed substream, simulates the metric, and records the exact
    log likelihood ratio; the estimator is the sample mean of
    w_i · 1{fail_i} — unbiased for the true tail probability under the
    nominal density, with a normal-approximation confidence interval built
    from the sample variance of the {e weighted} indicators (so fat
    proposal tails honestly widen the interval).  A self-normalized
    variant and the Kish effective sample size are reported as
    diagnostics.

    Invariants inherited from the runtime, all covered by tests:
    - bit-identical results for any [--jobs] count (per-sample arrays are
      folded serially in index order);
    - a {!Proposal.standard} proposal reproduces plain Monte Carlo bit
      for bit (weights are exactly 1);
    - checkpointable: per-sample (metric, log-weight) pairs persist via
      {!Vstat_runtime.Checkpoint.float_pair_codec} under a fingerprint
      binding the problem and proposal, so interrupt+resume is
      bit-identical to an uninterrupted run. *)

type result = {
  label : string;
  proposal : Proposal.t;
  n_requested : int;
  n : int;             (** samples evaluated successfully *)
  n_hits : int;        (** unweighted tail-event count among them *)
  p_hat : float;       (** unbiased LR-reweighted tail probability *)
  confidence : float;  (** the level the interval below was built at *)
  ci_lo : float;       (** interval on [p_hat], clamped to [0, 1] *)
  ci_hi : float;
  sn_p_hat : float;    (** self-normalized estimate sum(wI)/sum(w) *)
  ess : float;         (** Kish effective sample size of the weights *)
  sum_weight : float;
  max_weight : float;
  metrics : float array;      (** per-sample metric, index order *)
  log_weights : float array;  (** per-sample log LR, index order *)
  stats : Vstat_runtime.Runtime.stats;
  complete : bool;     (** false when a deadline truncated the run *)
}

val estimate :
  ?jobs:int ->
  ?retry:Vstat_runtime.Runtime.retry_policy ->
  ?max_failure_frac:float ->
  ?checkpoint:Vstat_runtime.Checkpoint.settings ->
  ?deadline:(unit -> bool) ->
  ?signals:int list ->
  ?confidence:float ->
  proposal:Proposal.t ->
  problem:Problem.t ->
  rng:Vstat_util.Rng.t ->
  n:int ->
  unit ->
  result
(** Run the estimator.  [max_failure_frac] (default 0.2) is the usual
    failure budget over simulate exceptions; [confidence] (default 0.95)
    sizes the interval.  Checkpoint labels derive from
    [problem.label ^ "-is"]; the snapshot fingerprint binds the problem
    identity and the proposal, so resuming under different rare-event
    parameters is rejected with a typed
    {!Vstat_runtime.Journal.Mismatch}.
    @raise Invalid_argument when [n < 2] or the proposal dimension
    disagrees with the problem.
    @raise Failure when the failure budget is exceeded or a deadline
    leaves fewer than 2 samples.
    @raise Vstat_runtime.Checkpoint.Interrupted on a trapped signal. *)

val mc_equivalent_samples : result -> float
(** Plain-MC sample count that would match this run's interval half-width
    at the same confidence: p(1-p) · (z / half_width)², using the run's
    own [p_hat].  The ratio of this to [n] is the variance-reduction
    speedup recorded by [bench --rare].  [nan] when the interval is
    degenerate (no hits). *)

val pp : Format.formatter -> result -> unit
