(** Statistical blockade: classifier-filtered Monte Carlo for tail events.

    Two deterministic phases on disjoint segments of one substream family:

    1. {b Pilot.}  [pilot_n] plain Monte Carlo samples (substream indices
       [0 .. pilot_n-1]) are fully simulated; an OLS linear model of the
       metric on the coordinates is fitted ({!Classifier}), along with a
       blockade cutoff: the classifier must predict a sample {e safer}
       than the pilot's [margin] quantile (default 0.90 of the relevant
       tail mass) for the simulation to be skipped.  The gap between the
       cutoff and the true threshold is the safety margin absorbing
       classifier error — the Singhee–Rutenbar recipe.
    2. {b Main.}  [n] samples (substream indices [pilot_n ..
       pilot_n+n-1]) draw coordinates only; candidates past the cutoff
       are simulated, the rest are counted as non-failing without a
       simulation.  The estimate is k / n over {e all} [n] trials — the
       blockade correction that keeps the denominator honest — with a
       Wilson interval.

    Because the filter decision is a pure function of the coordinates and
    the pilot-trained classifier, the whole procedure is bit-identical
    across [--jobs] counts, and both phases checkpoint independently
    (labels [<label>-blockade-pilot] / [<label>-blockade-main]); the main
    phase's fingerprint embeds the classifier digest, so a resume with a
    different classifier (different pilot) is rejected as a typed
    identity mismatch — the journal carries the classifier state. *)

type result = {
  label : string;
  n_requested : int;
  n : int;              (** main-phase trials evaluated *)
  n_pilot : int;        (** pilot simulations (all full simulations) *)
  n_simulated : int;    (** main-phase full simulations (candidates) *)
  n_hits : int;         (** confirmed tail events among candidates *)
  p_hat : float;        (** k / n over all main-phase trials *)
  confidence : float;
  ci_lo : float;        (** Wilson interval *)
  ci_hi : float;
  cutoff : float;       (** classifier prediction that triggers simulation *)
  margin : float;       (** quantile the cutoff was placed at *)
  classifier : Classifier.t;
  residual_std : float; (** pilot residual sigma of the classifier *)
  pilot_metrics : float array;
  stats : Vstat_runtime.Runtime.stats;  (** main-phase pool statistics *)
  complete : bool;
}

val estimate :
  ?jobs:int ->
  ?retry:Vstat_runtime.Runtime.retry_policy ->
  ?max_failure_frac:float ->
  ?checkpoint:Vstat_runtime.Checkpoint.settings ->
  ?deadline:(unit -> bool) ->
  ?signals:int list ->
  ?confidence:float ->
  ?margin:float ->
  ?pilot_n:int ->
  problem:Problem.t ->
  rng:Vstat_util.Rng.t ->
  n:int ->
  unit ->
  result
(** [margin] (default 0.90) places the blockade cutoff at the pilot
    metric's tail quantile: for a lower-tail problem the cutoff is the
    pilot's (1 - margin) quantile minus one classifier residual sigma, so
    roughly the unsafest 10% of predicted metrics — plus a model-error
    buffer — get simulated.  [pilot_n] defaults to [max 100 (n/20)].
    @raise Invalid_argument when [n < 2], [pilot_n] is too small to fit
    the classifier, [margin] is outside (0, 1), or [confidence] is
    outside (0, 1).
    @raise Failure on budget blow-ups or a deadline with nothing done.
    @raise Vstat_runtime.Checkpoint.Interrupted on a trapped signal. *)

val simulation_fraction : result -> float
(** (pilot + candidate simulations) / (pilot + n): the fraction of full
    simulations a plain-MC run of the same trial count would have paid —
    the blockade speedup is its inverse. *)

val pp : Format.formatter -> result -> unit
