(** Extension — why low-Vdd variation breaks Gaussian SSTA (the paper's
    Sec. IV-B remark, made quantitative).

    An 8-stage inverter-chain path is Monte-Carlo'd at transistor level
    with the statistical VS model.  A first-order Gaussian SSTA model of
    the same path (sum of independent per-stage Gaussian delays, moments
    taken from single-stage Monte Carlo) predicts the path distribution.
    At nominal Vdd the two agree; near threshold the per-stage
    distributions skew right and Gaussian SSTA underestimates the slow
    tail — the exact failure mode the paper warns about. *)

type per_vdd = {
  vdd : float;
  mc_delays : float array;        (** transistor-level path MC *)
  ssta_mean : float;              (** n * per-stage mean *)
  ssta_sigma : float;             (** sqrt(n) * per-stage sigma *)
  mc_q999 : float;                (** empirical 99.9th percentile *)
  ssta_q999 : float;              (** Gaussian prediction of the same *)
  tail_underestimate_pct : float; (** (mc - ssta)/mc * 100 at q99.9 *)
  stage_skew : float;             (** per-stage delay skewness *)
}

type t = { stages : int; n : int; results : per_vdd list }

val run :
  ?jobs:int -> ?vdds:float list -> ?stages:int -> ?n:int -> ?seed:int ->
  Vstat_core.Pipeline.t -> t
(** Both Monte Carlo passes run on {!Vstat_runtime.Runtime} with a 20 %
    failure budget; results are independent of [jobs]. *)

val pp : Format.formatter -> t -> unit
