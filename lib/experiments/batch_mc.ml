module E = Vstat_circuit.Engine
module Chain = Vstat_cells.Chain
module Gates = Vstat_cells.Gates
module Vs = Vstat_core.Vs_statistical
module Rng = Vstat_util.Rng
module Runtime = Vstat_runtime.Runtime

type result = {
  delays : float array;
  by_index : float option array;
  backend : E.backend;
  batched : bool;
  stats : Runtime.stats;
}

(* SoA layout: per sample, [stages + 1] inverter positions (0 = driver), 2
   devices per position (pmos then nmos), 5 shift floats per device in
   Vs_statistical.shifts field order. *)
let shift_slots = 5

let put (buf : float array) o (s : Vs.shifts) =
  buf.(o) <- s.dvt0;
  buf.(o + 1) <- s.dl_nm;
  buf.(o + 2) <- s.dw_nm;
  buf.(o + 3) <- s.dmu;
  buf.(o + 4) <- s.dcinv

let get (buf : float array) o : Vs.shifts =
  {
    dvt0 = buf.(o);
    dl_nm = buf.(o + 1);
    dw_nm = buf.(o + 2);
    dmu = buf.(o + 3);
    dcinv = buf.(o + 4);
  }

let wp_nm = 600.0
let wn_nm = 300.0

let[@vstat.entry] chain_tpd ?jobs ?(backend = E.Auto) ?(batched = true) ?(stages = 8)
    ?(steps = 600) ~n ~seed ~vdd (p : Vstat_core.Pipeline.t) =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  let positions = stages + 1 in
  let per_sample = positions * 2 * shift_slots in
  (* Serial prefill from counter-indexed substreams: the whole batch's
     variation draws, jobs-invariant by construction. *)
  let buf = Array.make (Int.max 1 (n * per_sample)) 0.0 in
  for i = 0 to n - 1 do
    let rng = Rng.substream ~seed ~index:i in
    for pos = 0 to positions - 1 do
      let o = (i * per_sample) + (pos * 2 * shift_slots) in
      put buf o (Vs.draw_shifts p.vs_pmos rng ~w_nm:wp_nm ~l_nm);
      put buf (o + shift_slots) (Vs.draw_shifts p.vs_nmos rng ~w_nm:wn_nm ~l_nm)
    done
  done;
  let device_of (vs : Vs.t) shifts ~w_nm =
    Vstat_device.Vs_model.device ~name:vs.label ~polarity:vs.polarity
      (Vs.apply_shifts (vs.nominal ~w_nm ~l_nm) shifts)
  in
  let inverter_of i pos =
    let o = (i * per_sample) + (pos * 2 * shift_slots) in
    {
      Gates.pmos = device_of p.vs_pmos (get buf o) ~w_nm:wp_nm;
      nmos = device_of p.vs_nmos (get buf (o + shift_slots)) ~w_nm:wn_nm;
    }
  in
  let sample_of i : Chain.sample =
    {
      vdd;
      stages = Array.init stages (fun s -> inverter_of i (s + 1));
      driver = inverter_of i 0;
    }
  in
  let tech = Vstat_core.Techs.nominal_vs p ~vdd in
  (* One prepared engine per worker domain: engines are not thread-safe,
     and a fresh domain-local compile per worker still shares the sparse
     symbolic analysis through the process-wide pattern cache. *)
  let dls : Chain.prepared option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)
  in
  let prepared () =
    match Domain.DLS.get dls with
    | Some prep -> prep
    | None ->
      let prep = Chain.prepare ~stages ~wp_nm ~wn_nm ~backend tech in
      Domain.DLS.set dls (Some prep);
      prep
  in
  let resolved = Chain.prepared_backend (prepared ()) in
  let f i =
    let s = sample_of i in
    if batched then Chain.measure_prepared ~steps (prepared ()) s
    else Chain.measure ~steps s
  in
  let r = Runtime.map_samples ?jobs ~n ~f () in
  Runtime.check_budget ~label:"Batch_mc.chain_tpd" ~max_failure_frac:0.2 r;
  {
    delays = Runtime.values r;
    by_index =
      Array.map (function Ok d -> Some d | Error _ -> None) r.Runtime.cells;
    backend = resolved;
    batched;
    stats = r.Runtime.stats;
  }
