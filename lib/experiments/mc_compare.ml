type pair = {
  label : string;
  golden : float array;
  vs : float array;
  ks : float;
  ks_p : float;
  rel_mean_diff : float;
  rel_std_diff : float;
  overlap : float;
}

let log_src =
  Logs.Src.create "vstat.mc_compare"
    ~doc:"Monte Carlo comparison scaffolding"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Default failure budget: the 80 %-must-survive rule the serial loop used
   to hard-code.  Rare extreme-mismatch samples legitimately fail to
   converge or to switch; anything beyond the budget is a modeling bug. *)
let default_max_failure_frac = 0.2

(* Process-wide resilience defaults, set by the CLIs (--retry,
   --inject-fault) before any experiment runs; explicit arguments win. *)
let default_retry = ref Vstat_runtime.Runtime.no_retry
let set_default_retry p = default_retry := p
let default_inject : Vstat_device.Fault_inject.config option ref = ref None
let set_default_inject c = default_inject := c

(* Checkpoint/deadline defaults likewise come from the CLIs
   (--checkpoint-dir/--resume, --deadline): one process-wide watchdog so a
   whole experiment batch shares a single wall-clock budget. *)
let default_checkpoint : Vstat_runtime.Checkpoint.settings option ref =
  ref None

let set_default_checkpoint c = default_checkpoint := c

let default_deadline : (unit -> bool) option ref = ref None
let set_default_deadline d = default_deadline := d
let default_signals : int list ref = ref []
let set_default_signals s = default_signals := s
let ambient_retry () = !default_retry
let ambient_checkpoint () = !default_checkpoint
let ambient_deadline () = !default_deadline
let ambient_signals () = !default_signals
let warned_no_codec = Atomic.make false

(* Injection key for (sample, attempt): injective for < 64 attempts, so
   each retry attempt rolls an independent fault decision while staying a
   pure function of the sample index — jobs-independent. *)
let inject_key ~index ~attempt = (index * 64) + attempt

(* Circuit-engine work attributable to one Monte Carlo run, from snapshots
   of the process-wide counters (exact: workers flush at the end of every
   solve and the pool has joined before [after] is read). *)
let engine_tallies ~before ~after =
  let d = Vstat_circuit.Engine.counters_diff after before in
  let f = Float.of_int in
  [
    ("newton", f d.Vstat_circuit.Engine.newton_iterations);
    ("model_evals", f d.model_evaluations);
    ("analytic", f d.analytic_evaluations);
    ("fd", f d.fd_evaluations);
    ("assemblies", f d.assemblies);
    ("lu", f d.lu_factorizations);
    ("steps", f d.accepted_steps);
    ("rejected", f d.rejected_steps);
    ("bp_hits", f d.breakpoint_hits);
  ]

let collect_run ?jobs ?(max_failure_frac = default_max_failure_frac) ?retry
    ?inject ?codec ~label ~n ~tech_of_rng ~rng ~measure () =
  let module C = Vstat_runtime.Checkpoint in
  let retry = match retry with Some r -> r | None -> !default_retry in
  let inject =
    match inject with Some i -> Some i | None -> !default_inject
  in
  (* Persistence needs a payload codec; without one, deadline and signal
     handling stay active but nothing is journaled. *)
  let codec, settings =
    match (codec, !default_checkpoint) with
    | Some c, s -> (c, s)
    | None, None -> (C.opaque_codec label, None)
    | None, Some _ ->
      if not (Atomic.exchange warned_no_codec true) then
        Log.warn (fun m ->
            m
              "%s: measurement has no payload codec; checkpoint persistence \
               disabled (deadline/signal handling still active)"
              label);
      (C.opaque_codec label, None)
  in
  (* The injection config changes sample values, so it is part of the run
     identity a resume must match. *)
  let fingerprint =
    match inject with
    | None -> "inject:none"
    | Some cfg ->
      Printf.sprintf "inject:%s:seed=%d"
        (Vstat_device.Fault_inject.spec_to_string cfg)
        cfg.Vstat_device.Fault_inject.seed
  in
  let before = Vstat_circuit.Engine.global_counters () in
  let o =
    C.run ?jobs ~retry ?deadline:!default_deadline ?settings
      ~signals:!default_signals ~fingerprint ~codec ~label ~rng ~n
      ~f:(fun ~attempt ~index sample_rng ->
        let tech = tech_of_rng sample_rng in
        let tech =
          match inject with
          | None -> tech
          | Some cfg ->
            Vstat_cells.Celltech.with_fault_injection cfg
              ~key:(inject_key ~index ~attempt) tech
        in
        (* Attempt 0 escalates to exactly the defaults, so the plain path
           is untouched; retries re-run the whole measurement under
           progressively more forgiving ambient solver options. *)
        let opts =
          Vstat_circuit.Engine.escalate ~attempt
            Vstat_circuit.Engine.default_options
        in
        Vstat_circuit.Engine.with_options opts (fun () -> measure tech))
      ()
  in
  let after = Vstat_circuit.Engine.global_counters () in
  (match o.C.cause with
  | C.Signalled signal ->
    (* The final snapshot is already flushed; unwind to the CLI. *)
    raise
      (C.Interrupted
         {
           label;
           signal;
           completed = o.C.completed;
           n;
           snapshot = o.C.snapshot;
         })
  | C.Deadline_reached when o.C.completed < 2 ->
    failwith
      (Printf.sprintf
         "Mc_compare:%s: deadline expired after %d/%d samples — nothing to \
          report"
         label o.C.completed n)
  | C.Deadline_reached ->
    Log.warn (fun m ->
        m "%s: partial result (%d/%d samples) — deadline reached" label
          o.C.completed n)
  | C.Finished -> ());
  (* Under a deadline this compacts to the completed subset: downstream
     statistics see a smaller but index-ordered, bit-reproducible run. *)
  let r = C.completed_run o in
  let stats =
    Vstat_runtime.Runtime.with_tallies (engine_tallies ~before ~after) r.stats
  in
  Log.info (fun m ->
      m "%s: %a" label Vstat_runtime.Runtime.pp_stats stats);
  Vstat_runtime.Runtime.check_budget ~label:("Mc_compare:" ^ label)
    ~max_failure_frac r;
  { r with stats }

let collect ?jobs ?max_failure_frac ?retry ?inject ?codec ~label ~n
    ~tech_of_rng ~rng ~measure () =
  Vstat_runtime.Runtime.values
    (collect_run ?jobs ?max_failure_frac ?retry ?inject ?codec ~label ~n
       ~tech_of_rng ~rng ~measure ())

let summarize ~label golden vs =
  {
    label;
    golden;
    vs;
    ks = Vstat_stats.Compare.ks_statistic golden vs;
    ks_p = Vstat_stats.Compare.ks_p_value golden vs;
    rel_mean_diff = Vstat_stats.Compare.relative_mean_diff vs golden;
    rel_std_diff = Vstat_stats.Compare.relative_std_diff vs golden;
    overlap = Vstat_stats.Compare.density_overlap golden vs;
  }

let run_lists ?jobs ?max_failure_frac ?retry ?inject p ~label ~vdd ~n ~seed
    ~measure =
  let rng_g = Vstat_util.Rng.create ~seed in
  let rng_v = Vstat_util.Rng.create ~seed:(seed + 1) in
  (* Measurements here return float lists, so checkpoint persistence is
     available whenever the CLI armed a checkpoint directory. *)
  let codec = Vstat_runtime.Checkpoint.float_list_codec in
  let golden =
    collect ?jobs ?max_failure_frac ?retry ?inject ~codec
      ~label:(label ^ "/golden") ~n
      ~tech_of_rng:(fun rng -> Vstat_core.Techs.stochastic_bsim p ~rng ~vdd)
      ~rng:rng_g ~measure ()
  in
  let vs =
    collect ?jobs ?max_failure_frac ?retry ?inject ~codec
      ~label:(label ^ "/vs") ~n
      ~tech_of_rng:(fun rng -> Vstat_core.Techs.stochastic_vs p ~rng ~vdd)
      ~rng:rng_v ~measure ()
  in
  (label, golden, vs)

let run ?jobs ?max_failure_frac ?retry ?inject p ~label ~vdd ~n ~seed ~measure
    =
  let label, golden, vs =
    run_lists ?jobs ?max_failure_frac ?retry ?inject p ~label ~vdd ~n ~seed
      ~measure:(fun tech -> [ measure tech ])
  in
  summarize ~label (Array.map (fun l -> List.hd l) golden)
    (Array.map (fun l -> List.hd l) vs)

let run_many ?jobs ?max_failure_frac ?retry ?inject p ~label ~vdd ~n ~seed
    ~measure =
  let label, golden, vs =
    run_lists ?jobs ?max_failure_frac ?retry ?inject p ~label ~vdd ~n ~seed
      ~measure
  in
  if Array.length golden = 0 then []
  else begin
    let arity = List.length golden.(0) in
    List.init arity (fun k ->
        summarize
          ~label:(Printf.sprintf "%s[%d]" label k)
          (Array.map (fun l -> List.nth l k) golden)
          (Array.map (fun l -> List.nth l k) vs))
  end

let pp_pair ppf t =
  let d = Vstat_stats.Descriptive.mean in
  let s = Vstat_stats.Descriptive.std in
  Format.fprintf ppf "%s:@\n" t.label;
  Format.fprintf ppf "  golden: mean=%.4g std=%.4g  skew=%+.2f@\n" (d t.golden)
    (s t.golden)
    (Vstat_stats.Descriptive.skewness t.golden);
  Format.fprintf ppf "  vs    : mean=%.4g std=%.4g  skew=%+.2f@\n" (d t.vs)
    (s t.vs)
    (Vstat_stats.Descriptive.skewness t.vs);
  Format.fprintf ppf
    "  agreement: |dmean|=%.2f%% |dstd|=%.2f%% KS=%.3f (p=%.2f) overlap=%.3f@\n"
    (100.0 *. t.rel_mean_diff) (100.0 *. t.rel_std_diff) t.ks t.ks_p t.overlap;
  (* The interval half-width scales as 1/sqrt(n): a deadline-degraded
     partial run shows an honestly wider interval here. *)
  if Array.length t.golden >= 2 && Array.length t.vs >= 2 then begin
    let glo, ghi = Vstat_stats.Descriptive.mean_ci t.golden in
    let vlo, vhi = Vstat_stats.Descriptive.mean_ci t.vs in
    Format.fprintf ppf
      "  mean 95%%-CI: golden [%.4g, %.4g] (n=%d)  vs [%.4g, %.4g] (n=%d)@\n"
      glo ghi (Array.length t.golden) vlo vhi (Array.length t.vs)
  end;
  let spark xs =
    Vstat_stats.Histogram.sparkline
      (Array.map snd (Vstat_stats.Histogram.kde ~points:60 xs))
  in
  Format.fprintf ppf "  golden |%s|@\n  vs     |%s|@\n" (spark t.golden)
    (spark t.vs)
