(** Shared scaffolding for circuit-level VS-vs-golden Monte Carlo
    comparisons: run the same measurement n times on each statistical
    technology and summarize how close the two distributions are. *)

type pair = {
  label : string;
  golden : float array;
  vs : float array;
  ks : float;                (** two-sample Kolmogorov–Smirnov distance *)
  ks_p : float;
  rel_mean_diff : float;
  rel_std_diff : float;
  overlap : float;           (** KDE overlap in [0,1] *)
}

val set_default_retry : Vstat_runtime.Runtime.retry_policy -> unit
(** Process-wide default retry policy for every comparison run (the CLIs'
    [--retry N]); explicit [?retry] arguments win.  Default:
    {!Vstat_runtime.Runtime.no_retry}. *)

val ambient_retry : unit -> Vstat_runtime.Runtime.retry_policy
val ambient_checkpoint : unit -> Vstat_runtime.Checkpoint.settings option
val ambient_deadline : unit -> (unit -> bool) option

val ambient_signals : unit -> int list
(** Read back the process-wide defaults above, for experiments (e.g. the
    rare-event ones) that drive {!Vstat_rare} estimators directly instead
    of going through {!collect_run} but must honor the same CLI-installed
    resilience knobs. *)

val set_default_inject : Vstat_device.Fault_inject.config option -> unit
(** Process-wide default fault-injection config (the CLIs'
    [--inject-fault RATE[:KIND]]); explicit [?inject] arguments win.
    Default: no injection. *)

val set_default_checkpoint : Vstat_runtime.Checkpoint.settings option -> unit
(** Process-wide checkpoint settings (the CLIs' [--checkpoint-dir] /
    [--checkpoint-every] / [--resume]).  Persistence only engages for
    measurements that declare a payload codec ([?codec] below, wired for
    {!run}/{!run_many}); others warn once and run unjournaled. *)

val set_default_deadline : (unit -> bool) option -> unit
(** Process-wide wall-clock watchdog (the CLIs' [--deadline SEC], built
    with {!Vstat_runtime.Deadline.watchdog}).  One watchdog instance is
    shared by every subsequent run, so a batch of experiments degrades
    together: the run in flight when the budget expires stops at a sample
    boundary, checkpoints, and reports a partial result; later runs report
    what little they evaluate or fail fast with a clear message. *)

val set_default_signals : int list -> unit
(** Signals trapped for graceful shutdown during runs (the CLIs install
    [SIGINT; SIGTERM]).  On delivery the run drains, flushes a final
    snapshot and raises {!Vstat_runtime.Checkpoint.Interrupted}. *)

val collect :
  ?jobs:int ->
  ?max_failure_frac:float ->
  ?retry:Vstat_runtime.Runtime.retry_policy ->
  ?inject:Vstat_device.Fault_inject.config ->
  ?codec:'a Vstat_runtime.Checkpoint.codec ->
  label:string ->
  n:int ->
  tech_of_rng:(Vstat_util.Rng.t -> Vstat_cells.Celltech.t) ->
  rng:Vstat_util.Rng.t ->
  measure:(Vstat_cells.Celltech.t -> 'a) ->
  unit ->
  'a array
(** One Monte Carlo sweep: sample [i] builds a technology from its own RNG
    substream, optionally arms a deterministic injected fault
    ({!Vstat_cells.Celltech.with_fault_injection}, keyed by sample index
    and retry attempt), and measures under ambient solver options
    escalated per attempt ({!Vstat_circuit.Engine.escalate} inside
    {!Vstat_circuit.Engine.with_options}).  Surviving values are returned
    in sample order after {!Vstat_runtime.Runtime.check_budget} enforces
    [max_failure_frac] (default 0.2) with a per-category census. *)

val collect_run :
  ?jobs:int ->
  ?max_failure_frac:float ->
  ?retry:Vstat_runtime.Runtime.retry_policy ->
  ?inject:Vstat_device.Fault_inject.config ->
  ?codec:'a Vstat_runtime.Checkpoint.codec ->
  label:string ->
  n:int ->
  tech_of_rng:(Vstat_util.Rng.t -> Vstat_cells.Celltech.t) ->
  rng:Vstat_util.Rng.t ->
  measure:(Vstat_cells.Celltech.t -> 'a) ->
  unit ->
  'a Vstat_runtime.Runtime.run
(** {!collect} returning the full run record (per-sample cells, attempt
    counts, retry/recovery stats, engine tallies) — what the chaos benches
    and failure-path tests inspect.

    Checkpointing/deadlines: runs route through
    {!Vstat_runtime.Checkpoint.run}.  When checkpoint settings are armed
    and a [codec] is given, completed samples are journaled under [label]
    and a resumed run replays only incomplete indices (bit-identical
    results).  When the process deadline expires mid-run the returned run
    is the completed subset ([stats.n] = evaluated count, logged as
    partial); with fewer than 2 completed samples it raises [Failure]
    instead.  A trapped signal raises
    {!Vstat_runtime.Checkpoint.Interrupted} after the final flush. *)

val run :
  ?jobs:int ->
  ?max_failure_frac:float ->
  ?retry:Vstat_runtime.Runtime.retry_policy ->
  ?inject:Vstat_device.Fault_inject.config ->
  Vstat_core.Pipeline.t ->
  label:string ->
  vdd:float ->
  n:int ->
  seed:int ->
  measure:(Vstat_cells.Celltech.t -> float) ->
  pair
(** [measure tech] must draw fresh devices from [tech] (each call is one
    Monte Carlo sample).  Sampling runs on {!Vstat_runtime.Runtime}
    ([jobs] workers; sample [i] always sees substream [i], so results do
    not depend on the worker count).  Failed samples (convergence or
    measurement failures) are captured, optionally retried under escalated
    solver options, and skipped once dead; if more than [max_failure_frac]
    (default 0.2) of either model's samples fail, the run raises [Failure]
    with per-category failure counts in the message. *)

val run_many :
  ?jobs:int ->
  ?max_failure_frac:float ->
  ?retry:Vstat_runtime.Runtime.retry_policy ->
  ?inject:Vstat_device.Fault_inject.config ->
  Vstat_core.Pipeline.t ->
  label:string ->
  vdd:float ->
  n:int ->
  seed:int ->
  measure:(Vstat_cells.Celltech.t -> float list) ->
  pair list
(** Like {!run} for measurements that return several observables per sample
    (e.g. delay and leakage); returns one pair per observable position. *)

val pp_pair : Format.formatter -> pair -> unit
(** One summary block: moments of both distributions, agreement metrics and
    density sparklines. *)
