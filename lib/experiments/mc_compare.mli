(** Shared scaffolding for circuit-level VS-vs-golden Monte Carlo
    comparisons: run the same measurement n times on each statistical
    technology and summarize how close the two distributions are. *)

type pair = {
  label : string;
  golden : float array;
  vs : float array;
  ks : float;                (** two-sample Kolmogorov–Smirnov distance *)
  ks_p : float;
  rel_mean_diff : float;
  rel_std_diff : float;
  overlap : float;           (** KDE overlap in [0,1] *)
}

val run :
  ?jobs:int ->
  ?max_failure_frac:float ->
  Vstat_core.Pipeline.t ->
  label:string ->
  vdd:float ->
  n:int ->
  seed:int ->
  measure:(Vstat_cells.Celltech.t -> float) ->
  pair
(** [measure tech] must draw fresh devices from [tech] (each call is one
    Monte Carlo sample).  Sampling runs on {!Vstat_runtime.Runtime}
    ([jobs] workers; sample [i] always sees substream [i], so results do
    not depend on the worker count).  Failed samples (convergence or
    measurement failures) are captured and skipped; if more than
    [max_failure_frac] (default 0.2) of either model's samples fail, the
    run raises [Failure] with per-exception-constructor failure counts in
    the message. *)

val run_many :
  ?jobs:int ->
  ?max_failure_frac:float ->
  Vstat_core.Pipeline.t ->
  label:string ->
  vdd:float ->
  n:int ->
  seed:int ->
  measure:(Vstat_cells.Celltech.t -> float list) ->
  pair list
(** Like {!run} for measurements that return several observables per sample
    (e.g. delay and leakage); returns one pair per observable position. *)

val pp_pair : Format.formatter -> pair -> unit
(** One summary block: moments of both distributions, agreement metrics and
    density sparklines. *)
