module Rare = Vstat_rare
module Vs = Vstat_core.Vs_statistical

let log_src =
  Logs.Src.create "vstat.exp.sram_yield" ~doc:"SRAM rare-event yield"

module Log = (val Logs.src_log log_src : Logs.LOG)

let params_per_device = 5
let devices_per_cell = 6
let dim = params_per_device * devices_per_cell

(* One device from 5 explicit standard-normal coordinates: the same
   Pelgrom sigmas and model couplings as [Vs_statistical.sample_device],
   but with the Gaussian draw replaced by [sigma * z].  Coordinate order
   matches [draw_shifts]: VT0, Leff, Weff, mu, Cinv. *)
let device_of_z (m : Vs.t) ~w_nm ~l_nm (z : float array) off =
  let s = Vstat_core.Variation.sigmas_of_alphas m.Vs.alphas ~w_nm ~l_nm in
  let shifts =
    {
      Vs.dvt0 = s.Vstat_core.Variation.s_vt0 *. z.(off);
      dl_nm = s.s_l *. z.(off + 1);
      dw_nm = s.s_w *. z.(off + 2);
      dmu = s.s_mu *. z.(off + 3);
      dcinv = s.s_cinv *. z.(off + 4);
    }
  in
  Vstat_device.Vs_model.device ~name:m.Vs.label ~polarity:m.Vs.polarity
    (Vs.apply_shifts (m.Vs.nominal ~w_nm ~l_nm) shifts)

let z_tech (p : Vstat_core.Pipeline.t) ~vdd (z : float array) =
  let l_nm = Vstat_device.Cards.l_nominal_nm in
  let cursor = ref 0 in
  let next_off () =
    let o = !cursor in
    if o + params_per_device > Array.length z then
      invalid_arg
        (Printf.sprintf
           "Exp_sram_yield.z_tech: coordinate vector of %d exhausted at \
            offset %d (5 per transistor)"
           (Array.length z) o);
    cursor := o + params_per_device;
    o
  in
  {
    Vstat_cells.Celltech.label = "vs-z-driven";
    vdd;
    l_nm;
    nmos = (fun ~w_nm -> device_of_z p.vs_nmos ~w_nm ~l_nm z (next_off ()));
    pmos = (fun ~w_nm -> device_of_z p.vs_pmos ~w_nm ~l_nm z (next_off ()));
  }

let problem ?(mode = Vstat_cells.Sram6t.Read) ?(points = 41)
    (p : Vstat_core.Pipeline.t) ~vdd ~threshold =
  let mode_label =
    match mode with Vstat_cells.Sram6t.Read -> "read" | Hold -> "hold"
  in
  Rare.Problem.create
    ~label:
      (Printf.sprintf "sram-%s-snm-vdd%.2f-pts%d" mode_label vdd points)
    ~dim
    ~simulate:(fun ~attempt z ->
      let tech = z_tech p ~vdd z in
      let opts =
        Vstat_circuit.Engine.escalate ~attempt
          Vstat_circuit.Engine.default_options
      in
      Vstat_circuit.Engine.with_options opts (fun () ->
          Vstat_cells.Sram6t.snm ~points (Vstat_cells.Sram6t.sample tech)
            ~mode))
    ~tail:Rare.Problem.Lower ~threshold

type t = {
  vdd : float;
  threshold : float;
  sigma_shift : float;
  plain : Rare.Importance.result;
  is : Rare.Importance.result;
  blockade : Rare.Blockade.result;
  is_agrees : bool;
  blockade_agrees : bool;
}

let intervals_overlap (lo1, hi1) (lo2, hi2) = lo1 <= hi2 && lo2 <= hi1

(* Mean-shift pilot: a small plain-MC run over explicit coordinates,
   journaled like any other run (payload = lobe1 :: lobe2 :: z), that
   aims the proposal.  A sigma-scaled-only proposal is a poor fit here:
   widening all 30 coordinates at once collapses the effective sample
   size exponentially in the dimension.  And a single response surface
   on the cell SNM is poor too — the SNM is the min of the two butterfly
   lobes, and that kink defeats a linear fit (and leaves the mirror
   lobe's failures carrying enormous likelihood ratios).  So the pilot
   records the {e per-lobe} noise margins, fits one linear response
   surface per lobe, and shifts at each lobe's design point — the
   smallest-norm coordinate vector the fit predicts exactly at the
   failure threshold, z* = w (T - c) / |w|^2.  The proposal is the
   defensive mixture of the nominal density with both lobe cones, so
   every likelihood ratio is bounded by the component count (3): no
   single sample can dominate the estimate, whatever the fits missed. *)
let pilot_proposal ?jobs ~retry ?checkpoint ?deadline ~signals ~scale ~mode
    ~points ~vdd ~(prob : Rare.Problem.t) ~(p : Vstat_core.Pipeline.t) ~rng
    ~n () =
  let module C = Vstat_runtime.Checkpoint in
  let std = Rare.Proposal.standard ~dim in
  let o =
    C.run ?jobs ~retry ?deadline ?settings:checkpoint ~signals
      ~fingerprint:(Rare.Problem.fingerprint prob ^ "|phase:is-pilot")
      ~codec:C.float_array_codec
      ~label:(prob.Rare.Problem.label ^ "-is-pilot")
      ~rng ~n
      ~f:(fun ~attempt ~index:_ sample_rng ->
        let z = Rare.Proposal.draw std sample_rng in
        let tech = z_tech p ~vdd z in
        let opts =
          Vstat_circuit.Engine.escalate ~attempt
            Vstat_circuit.Engine.default_options
        in
        let lobe1, lobe2 =
          Vstat_circuit.Engine.with_options opts (fun () ->
              Vstat_cells.Sram6t.snm_lobes ~points
                (Vstat_cells.Sram6t.sample tech)
                ~mode)
        in
        Array.append [| lobe1; lobe2 |] z)
      ()
  in
  (match o.C.cause with
  | C.Signalled signal ->
    raise
      (C.Interrupted
         {
           label = prob.Rare.Problem.label ^ "-is-pilot";
           signal;
           completed = o.C.completed;
           n;
           snapshot = o.C.snapshot;
         })
  | C.Deadline_reached | C.Finished -> ());
  let rows = C.values o in
  if Array.length rows < dim + 2 then
    failwith
      (Printf.sprintf "Exp_sram_yield: IS pilot left %d samples — too few \
                       to aim the proposal"
         (Array.length rows));
  let zs = Array.map (fun row -> Array.sub row 2 dim) rows in
  let design lobe_metrics =
    let clf = Rare.Classifier.fit ~zs ~metrics:lobe_metrics in
    let norm2 =
      Array.fold_left
        (fun acc c -> acc +. (c *. c))
        0.0 clf.Rare.Classifier.coef
    in
    if norm2 > 0.0 then
      let t =
        (prob.Rare.Problem.threshold -. clf.Rare.Classifier.intercept)
        /. norm2
      in
      Some (Array.map (fun c -> c *. t) clf.Rare.Classifier.coef)
    else None
  in
  let d1 = design (Array.map (fun row -> row.(0)) rows) in
  let d2 = design (Array.map (fun row -> row.(1)) rows) in
  match (d1, d2) with
  | Some m1, Some m2 ->
    Rare.Proposal.mixture ~scale ~means:[| Array.make dim 0.0; m1; m2 |] ()
  | _ ->
    (* Degenerate fits (constant lobes) — fall back to the
       center-of-gravity shift over the min metric. *)
    let metrics = Array.map (fun row -> Float.min row.(0) row.(1)) rows in
    Rare.Proposal.from_pilot ~zs ~metrics
      ~tail:(Rare.Problem.qq_tail prob)
      ~threshold:prob.Rare.Problem.threshold ~scale ()

(* Substream-family seeds: golden on [seed], IS on [seed+1], blockade on
   [seed+2], the IS pilot on [seed+3] — all derived deterministically so
   the three estimators stay independent yet reproducible. *)

let default_vdd = 0.80
let default_threshold = 0.025
let default_mode = Vstat_cells.Sram6t.Read
let default_points = 41
let default_is_pilot = 200

let estimate_plain ?jobs ?(n = 4000) ?(seed = 61) ?(mode = default_mode)
    ?(points = default_points) ?(vdd = default_vdd)
    ?(threshold = default_threshold) (p : Vstat_core.Pipeline.t) =
  let prob = problem ~mode ~points p ~vdd ~threshold in
  Rare.Importance.estimate ?jobs
    ~retry:(Mc_compare.ambient_retry ())
    ?checkpoint:(Mc_compare.ambient_checkpoint ())
    ?deadline:(Mc_compare.ambient_deadline ())
    ~signals:(Mc_compare.ambient_signals ())
    ~proposal:(Rare.Proposal.standard ~dim) ~problem:prob
    ~rng:(Vstat_util.Rng.create ~seed) ~n ()

let estimate_is ?jobs ?(n = 4000) ?(seed = 61) ?(mode = default_mode)
    ?(points = default_points) ?(vdd = default_vdd)
    ?(threshold = default_threshold) ?(sigma_shift = 1.0)
    ?(pilot_n = default_is_pilot) (p : Vstat_core.Pipeline.t) =
  let prob = problem ~mode ~points p ~vdd ~threshold in
  let retry = Mc_compare.ambient_retry () in
  let checkpoint = Mc_compare.ambient_checkpoint () in
  let deadline = Mc_compare.ambient_deadline () in
  let signals = Mc_compare.ambient_signals () in
  let proposal =
    pilot_proposal ?jobs ~retry ?checkpoint ?deadline ~signals
      ~scale:sigma_shift ~mode ~points ~vdd ~prob ~p
      ~rng:(Vstat_util.Rng.create ~seed:(seed + 3))
      ~n:pilot_n ()
  in
  Log.info (fun m -> m "IS proposal: %s" (Rare.Proposal.to_string proposal));
  Rare.Importance.estimate ?jobs ~retry ?checkpoint ?deadline ~signals
    ~proposal ~problem:prob
    ~rng:(Vstat_util.Rng.create ~seed:(seed + 1))
    ~n ()

let estimate_blockade ?jobs ?(n = 4000) ?(seed = 61) ?(mode = default_mode)
    ?(points = default_points) ?(vdd = default_vdd)
    ?(threshold = default_threshold) ?pilot_n (p : Vstat_core.Pipeline.t) =
  let prob = problem ~mode ~points p ~vdd ~threshold in
  Rare.Blockade.estimate ?jobs
    ~retry:(Mc_compare.ambient_retry ())
    ?checkpoint:(Mc_compare.ambient_checkpoint ())
    ?deadline:(Mc_compare.ambient_deadline ())
    ~signals:(Mc_compare.ambient_signals ())
    ?pilot_n ~problem:prob
    ~rng:(Vstat_util.Rng.create ~seed:(seed + 2))
    ~n ()

let run ?jobs ?(n = 4000) ?n_accel ?(seed = 61) ?mode ?points
    ?(vdd = default_vdd) ?(threshold = default_threshold)
    ?(sigma_shift = 1.0) ?pilot_n (p : Vstat_core.Pipeline.t) =
  let n_accel = match n_accel with Some m -> m | None -> n in
  let plain = estimate_plain ?jobs ~n ~seed ?mode ?points ~vdd ~threshold p in
  Log.info (fun m -> m "golden: %a" Rare.Importance.pp plain);
  let is =
    estimate_is ?jobs ~n:n_accel ~seed ?mode ?points ~vdd ~threshold
      ~sigma_shift ?pilot_n p
  in
  Log.info (fun m -> m "is: %a" Rare.Importance.pp is);
  let blockade =
    estimate_blockade ?jobs ~n:n_accel ~seed ?mode ?points ~vdd ~threshold
      ?pilot_n p
  in
  Log.info (fun m -> m "blockade: %a" Rare.Blockade.pp blockade);
  {
    vdd;
    threshold;
    sigma_shift;
    plain;
    is;
    blockade;
    is_agrees =
      intervals_overlap (plain.ci_lo, plain.ci_hi) (is.ci_lo, is.ci_hi);
    blockade_agrees =
      intervals_overlap
        (plain.ci_lo, plain.ci_hi)
        (blockade.ci_lo, blockade.ci_hi);
  }

let pp ppf t =
  Format.fprintf ppf
    "SRAM yield: P(SNM < %.0f mV) at Vdd = %.2f V, 30-dim BPV space@\n"
    (t.threshold *. 1e3) t.vdd;
  Format.fprintf ppf "  golden   %a" Rare.Importance.pp t.plain;
  Format.fprintf ppf "  IS(x%.2f) %a" t.sigma_shift Rare.Importance.pp t.is;
  Format.fprintf ppf "  blockade %a" Rare.Blockade.pp t.blockade;
  Format.fprintf ppf "  agreement vs golden: IS %s, blockade %s@\n"
    (if t.is_agrees then "OK" else "DISAGREES")
    (if t.blockade_agrees then "OK" else "DISAGREES")
