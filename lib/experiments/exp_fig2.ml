type row = {
  w_nm : float;
  l_nm : float;
  diff_vt0_pct : float;
  diff_leff_pct : float;
  diff_weff_pct : float;
}

type t = { rows : row list; max_abs_diff_pct : float }

let run ?(polarity = `N) (p : Vstat_core.Pipeline.t) =
  let vs, observations, options =
    match polarity with
    | `N -> (p.vs_nmos, p.observations_nmos, p.bpv_nmos.options)
    | `P -> (p.vs_pmos, p.observations_pmos, p.bpv_pmos.options)
  in
  let stacked =
    match polarity with `N -> p.bpv_nmos.alphas | `P -> p.bpv_pmos.alphas
  in
  let per_geometry =
    Vstat_core.Bpv.extract_per_geometry ~vs ~vdd:p.vdd ~options observations
  in
  let pct individual reference =
    if Float.equal reference 0.0 then 0.0
    else 100.0 *. (individual -. reference) /. reference
  in
  let rows =
    List.map
      (fun ((obs : Vstat_core.Bpv.observation), (a : Vstat_core.Variation.alphas)) ->
        (* sigma ratios at a fixed geometry equal the alpha ratios. *)
        {
          w_nm = obs.w_nm;
          l_nm = obs.l_nm;
          diff_vt0_pct = pct a.a_vt0 stacked.a_vt0;
          diff_leff_pct = pct a.a_l stacked.a_l;
          diff_weff_pct = pct a.a_w stacked.a_w;
        })
      per_geometry
  in
  let max_abs_diff_pct =
    List.fold_left
      (fun acc r ->
        List.fold_left Float.max acc
          (List.map Float.abs
             [ r.diff_vt0_pct; r.diff_leff_pct; r.diff_weff_pct ]))
      0.0 rows
  in
  { rows; max_abs_diff_pct }

let pp ppf t =
  Format.fprintf ppf
    "Fig.2: per-geometry vs stacked BPV extraction (%% difference)@\n";
  let rows =
    List.map
      (fun r ->
        [
          Printf.sprintf "%.0f/%.0f" r.w_nm r.l_nm;
          Printf.sprintf "%+.2f" r.diff_vt0_pct;
          Printf.sprintf "%+.2f" r.diff_leff_pct;
          Printf.sprintf "%+.2f" r.diff_weff_pct;
        ])
      t.rows
  in
  Vstat_util.Floatx.pp_table ppf
    ~header:[ "W/L (nm)"; "dVT0 %"; "dLeff %"; "dWeff %" ]
    ~rows;
  Format.fprintf ppf "max |diff| = %.2f%%  (paper: < 10%%)@\n"
    t.max_abs_diff_pct
