(** Batched Monte Carlo over a precompiled circuit.

    The classic per-sample loop ({!Exp_ssta}, {!Mc_compare}) rebuilds and
    recompiles the netlist for every sample.  This module restructures the
    hot path the other way around:

    - all per-device variation draws for the whole batch are prefilled
      {e serially} into one flat structure-of-arrays buffer, sample [i]
      drawing from [Rng.substream ~seed ~index:i] — so the parameter set is
      a pure function of [(seed, i)] and results are bit-identical under
      any [jobs] count;
    - each worker domain compiles the circuit {e once} over retargetable
      device proxies ({!Vstat_cells.Chain.prepare}) and then evaluates its
      samples by swapping parameters in, reusing the engine workspaces and
      the process-wide sparse symbolic analysis.

    The unbatched reference path ([batched:false]) evaluates the very same
    parameter buffer through per-sample netlist compilation, so the two
    modes are value-comparable sample by sample. *)

type result = {
  delays : float array;
      (** successful path delays (s), sample-index order *)
  by_index : float option array;
      (** length [n], indexed by sample: [None] = that sample failed.
          Use this to compare runs sample-by-sample (different backends
          may drop different samples, so [delays] alone can misalign). *)
  backend : Vstat_circuit.Engine.backend;
      (** resolved backend actually used ([Dense] or [Sparse]) *)
  batched : bool;
  stats : Vstat_runtime.Runtime.stats;
}

val chain_tpd :
  ?jobs:int ->
  ?backend:Vstat_circuit.Engine.backend ->
  ?batched:bool ->
  ?stages:int ->
  ?steps:int ->
  n:int ->
  seed:int ->
  vdd:float ->
  Vstat_core.Pipeline.t ->
  result
(** Path-delay Monte Carlo over an inverter chain (defaults: [batched],
    [backend:Auto], 8 stages, 600 transient steps).  Sample [i]'s mismatch
    shifts depend only on [(seed, i)]; for fixed parameters the returned
    delays are bit-identical across [jobs] and across [batched] modes up to
    solver-backend choice.  Failures (non-propagating corners) are dropped
    under a 20 % budget, as in {!Exp_ssta}. *)
