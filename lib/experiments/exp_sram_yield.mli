(** SRAM yield at deep-sigma failure levels: the rare-event experiment.

    The failure event is [SNM < threshold] for a 6T cell at a (typically
    lowered) supply voltage — the classic read-stability yield question
    the paper's statistical VS model exists to answer cheaply.  The
    variation space is the BPV coordinate vector: 6 transistors x 5
    independent Gaussian parameters (VT0, Leff, Weff, mu, Cinv) = 30
    standard-normal coordinates.  {!problem} maps a coordinate vector to
    an SNM through a {e z-driven} technology handle — the same Pelgrom
    sigmas and {!Vstat_core.Vs_statistical.apply_shifts} couplings as the
    stochastic Monte Carlo technology, but driven by explicit coordinates
    so importance sampling can reweight the draw.

    {!run} cross-validates three estimators of the same tail probability:
    plain Monte Carlo (importance sampling under the standard proposal,
    which is bit-identical to it), sigma-scaled importance sampling, and
    statistical blockade.  Agreement means the 95% intervals of the two
    accelerated estimators each overlap the brute-force interval. *)

val params_per_device : int
(** 5: VT0, Leff, Weff, mu, Cinv — the BPV parameter set, consumed in
    {!Vstat_core.Vs_statistical.draw_shifts} order. *)

val devices_per_cell : int
(** 6: left then right half-cell, each pull-up (PMOS), pull-down (NMOS),
    access (NMOS) — the {!Vstat_cells.Sram6t.sample} build order. *)

val dim : int
(** [params_per_device * devices_per_cell] = 30. *)

val z_tech :
  Vstat_core.Pipeline.t -> vdd:float -> float array ->
  Vstat_cells.Celltech.t
(** A technology handle that spends 5 coordinates of the given vector per
    transistor, in creation order, instead of drawing from an RNG.
    Single-use: build one per cell sample.
    @raise Invalid_argument when the vector runs out of coordinates. *)

val problem :
  ?mode:Vstat_cells.Sram6t.mode ->
  ?points:int ->
  Vstat_core.Pipeline.t ->
  vdd:float ->
  threshold:float ->
  Vstat_rare.Problem.t
(** The rare-event problem [SNM(mode) < threshold] at [vdd].  [mode]
    defaults to READ (the stability-limiting one), [points] (default 41)
    is the butterfly sweep resolution.  The simulate closure escalates
    solver options with the retry attempt, exactly like
    {!Mc_compare.collect_run}, so the runtime retry ladder applies. *)

type t = {
  vdd : float;
  threshold : float;
  sigma_shift : float;
      (** scale of the IS proposal around its pilot-derived mean shift *)
  plain : Vstat_rare.Importance.result;
      (** standard proposal — bit-identical to plain Monte Carlo *)
  is : Vstat_rare.Importance.result;
      (** mean-shifted proposal aimed by a small pilot run *)
  blockade : Vstat_rare.Blockade.result;
  is_agrees : bool;        (** IS interval overlaps the plain interval *)
  blockade_agrees : bool;  (** blockade interval overlaps likewise *)
}

val estimate_plain :
  ?jobs:int ->
  ?n:int ->
  ?seed:int ->
  ?mode:Vstat_cells.Sram6t.mode ->
  ?points:int ->
  ?vdd:float ->
  ?threshold:float ->
  Vstat_core.Pipeline.t ->
  Vstat_rare.Importance.result
(** Brute-force Monte Carlo (standard-proposal importance sampling —
    bit-identical to plain MC, weights exactly 1). *)

val estimate_is :
  ?jobs:int ->
  ?n:int ->
  ?seed:int ->
  ?mode:Vstat_cells.Sram6t.mode ->
  ?points:int ->
  ?vdd:float ->
  ?threshold:float ->
  ?sigma_shift:float ->
  ?pilot_n:int ->
  Vstat_core.Pipeline.t ->
  Vstat_rare.Importance.result
(** Importance sampling under the pilot-aimed defensive mixture: a
    [pilot_n]-sample pilot (default 200) records per-lobe noise margins,
    one linear response surface per butterfly lobe yields that lobe's
    design point, and the proposal mixes the nominal density with both
    lobe cones ([sigma_shift], default 1.0, scales the cones). *)

val estimate_blockade :
  ?jobs:int ->
  ?n:int ->
  ?seed:int ->
  ?mode:Vstat_cells.Sram6t.mode ->
  ?points:int ->
  ?vdd:float ->
  ?threshold:float ->
  ?pilot_n:int ->
  Vstat_core.Pipeline.t ->
  Vstat_rare.Blockade.result
(** Statistical blockade on the cell SNM ({!Vstat_rare.Blockade}). *)

val run :
  ?jobs:int ->
  ?n:int ->
  ?n_accel:int ->
  ?seed:int ->
  ?mode:Vstat_cells.Sram6t.mode ->
  ?points:int ->
  ?vdd:float ->
  ?threshold:float ->
  ?sigma_shift:float ->
  ?pilot_n:int ->
  Vstat_core.Pipeline.t ->
  t
(** Brute-force golden with [n] samples (default 4000), then importance
    sampling and blockade with [n_accel] samples each (default [n]).
    The IS proposal is mean-shifted: a [pilot_n]-sample pilot (default
    200, journaled like every other run) locates the failure direction
    with {!Vstat_rare.Proposal.from_pilot}, and [sigma_shift] (default
    1.0) additionally widens the proposal around that shift.  [pilot_n]
    also sizes the blockade pilot.  Defaults [vdd] 0.80 V and
    [threshold] 0.025 V put the failure probability near 2e-3 for the
    default pipeline, so the cross-validation stays affordable on one
    core.  All estimators run on independent deterministic substream
    families derived from [seed] (default 61). *)

val pp : Format.formatter -> t -> unit
