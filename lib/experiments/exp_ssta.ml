type per_vdd = {
  vdd : float;
  mc_delays : float array;
  ssta_mean : float;
  ssta_sigma : float;
  mc_q999 : float;
  ssta_q999 : float;
  tail_underestimate_pct : float;
  stage_skew : float;
}

type t = { stages : int; n : int; results : per_vdd list }

(* Rare extreme-mismatch samples fail to switch near threshold; the runtime
   captures them and enforces the same 20 % failure budget as Mc_compare. *)
let collect ?jobs ~label ~n ~rng ~measure () =
  let r = Vstat_runtime.Runtime.map_rng_samples ?jobs ~rng ~n ~f:measure () in
  Vstat_runtime.Runtime.check_budget ~label:("Exp_ssta:" ^ label)
    ~max_failure_frac:0.2 r;
  Vstat_runtime.Runtime.values r

let run ?jobs ?(vdds = [ 0.9; 0.55 ]) ?(stages = 8) ?(n = 300) ?(seed = 59)
    (p : Vstat_core.Pipeline.t) =
  let results =
    List.map
      (fun vdd ->
        let rng = Vstat_util.Rng.create ~seed in
        (* Transistor-level path Monte Carlo. *)
        let mc_delays =
          collect ?jobs ~label:"path-mc" ~n ~rng
            ~measure:(fun sample_rng ->
              let tech =
                Vstat_core.Techs.stochastic_vs p ~rng:sample_rng ~vdd
              in
              Vstat_cells.Chain.measure (Vstat_cells.Chain.sample ~stages tech))
            ()
        in
        (* Per-stage characterization: FO1 inverter delays. *)
        let stage_delays =
          collect ?jobs ~label:"stage-mc" ~n ~rng
            ~measure:(fun sample_rng ->
              let tech =
                Vstat_core.Techs.stochastic_vs p ~rng:sample_rng ~vdd
              in
              let s =
                Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0
                  ~fanout:1
              in
              (Vstat_cells.Inverter.measure s).tpd)
            ()
        in
        let stage_mean = Vstat_stats.Descriptive.mean stage_delays in
        let stage_sigma = Vstat_stats.Descriptive.std stage_delays in
        let k = Float.of_int stages in
        let ssta_mean = k *. stage_mean in
        let ssta_sigma = sqrt k *. stage_sigma in
        let z999 = Vstat_util.Special.normal_quantile 0.999 in
        let ssta_q999 = ssta_mean +. (z999 *. ssta_sigma) in
        let mc_q999 = Vstat_stats.Descriptive.quantile mc_delays 0.999 in
        (* The SSTA model is built from FO1 stages while the path's inner
           stages see FO1-equivalent loading, so the means line up to first
           order; the tail comparison is normalized to remove any residual
           mean offset. *)
        let mc_mean = Vstat_stats.Descriptive.mean mc_delays in
        let ssta_q999_aligned = ssta_q999 *. (mc_mean /. ssta_mean) in
        {
          vdd;
          mc_delays;
          ssta_mean;
          ssta_sigma;
          mc_q999;
          ssta_q999 = ssta_q999_aligned;
          tail_underestimate_pct =
            100.0 *. (mc_q999 -. ssta_q999_aligned) /. mc_q999;
          stage_skew = Vstat_stats.Descriptive.skewness stage_delays;
        })
      vdds
  in
  { stages; n; results }

let pp ppf t =
  Format.fprintf ppf
    "Extension: Gaussian SSTA vs transistor-level MC, %d-stage path, n=%d@\n"
    t.stages t.n;
  Vstat_util.Floatx.pp_table ppf
    ~header:
      [
        "Vdd"; "MC mean (ps)"; "MC q99.9 (ps)"; "SSTA q99.9 (ps)";
        "tail underest %"; "stage skew";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Printf.sprintf "%.2f" r.vdd;
             Printf.sprintf "%.1f"
               (1e12 *. Vstat_stats.Descriptive.mean r.mc_delays);
             Printf.sprintf "%.1f" (1e12 *. r.mc_q999);
             Printf.sprintf "%.1f" (1e12 *. r.ssta_q999);
             Printf.sprintf "%+.1f" r.tail_underestimate_pct;
             Printf.sprintf "%+.2f" r.stage_skew;
           ])
         t.results);
  Format.fprintf ppf
    "(positive tail underestimation at low Vdd = Gaussian SSTA is optimistic@\n\
    \ about the slow corner, the paper's Sec. IV-B warning)@\n"
