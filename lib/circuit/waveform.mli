(** Time-dependent source values for independent V/I sources. *)

type pulse_shape = {
  low : float;
  high : float;
  delay : float;     (** time the first edge starts, s *)
  rise : float;      (** rise time, s *)
  fall : float;      (** fall time, s *)
  width : float;     (** time spent at [high] between edges, s *)
  period : float;    (** repetition period; 0 or less = single pulse *)
}

type pwl_shape = private {
  points : (float * float) array;  (** original (time, value) pairs *)
  xs : float array;                (** times, precomputed at construction *)
  ys : float array;                (** values, precomputed at construction *)
}
(** Piecewise-linear point set with the time/value arrays split once at
    construction — [value] runs inside every Newton iteration of every
    transient step, so it must not allocate.  Build with {!pwl}. *)

type t =
  | Dc of float
      (** Constant value. *)
  | Var of float ref
      (** Mutable constant — the handle used by DC sweeps, which update the
          ref between operating-point solves. *)
  | Pulse of pulse_shape
  | Pwl of pwl_shape
      (** Piecewise-linear (time, value) points, times ascending; clamps to
          the end values outside the covered range.  Construct with {!pwl}. *)
  | Sine of sine_shape

and sine_shape = {
  offset : float;
  amplitude : float;
  freq_hz : float;
  phase : float;  (** radians *)
}

val pwl : (float * float) array -> t
(** Smart constructor for {!Pwl}: splits the pairs into the xs/ys arrays.
    @raise Invalid_argument on an empty point list. *)

val value : t -> float -> float
(** Evaluate at a time (negative times clamp to the initial value). *)

val breakpoints : t -> tstop:float -> float list
(** Corner times of the waveform strictly inside (0, [tstop]), in ascending
    order: PWL point times, pulse edge start/end times (repeated per period
    for periodic pulses, up to a safety cap).  Smooth or constant waveforms
    ([Dc], [Var], [Sine]) have none.  The transient stepper lands on these
    instead of halving into discontinuous source derivatives. *)

val step : ?delay:float -> ?rise:float -> low:float -> high:float -> unit -> t
(** Single rising edge: low until [delay], then a linear ramp of duration
    [rise] (default 10 ps) to [high]. *)

val falling_step : ?delay:float -> ?fall:float -> high:float -> low:float -> unit -> t
